// bench_serve_load — open-loop Poisson load driver for the dpmd serving
// stack (docs/serving.md, "Limits & overload").
//
// The closed-loop transcript replay (scripts/test_serve_cli.sh) keeps
// exactly one request in flight, so its latency numbers say nothing
// about overload.  This driver offers load at a *rate*: Poisson
// arrivals — deterministic via sim::derive_seed — are pushed over a
// small pool of persistent TCP connections without waiting for
// responses, exactly the traffic a fleet of independent clients
// produces.  Three levels run back to back at 0.5x / 1x / 2x of a
// measured closed-loop saturation estimate, and the report separates
// offered vs sent vs admitted vs completed and prints p50/p99/max
// latency of the *admitted* requests per level.  A dedicated probe
// connection round-trips `{"op":"stats"}` throughout, asserting the
// daemon stays responsive while it sheds.
//
// Default target is an in-process PolicyServer on an ephemeral port
// with a deliberately small admission budget, so `--smoke` exercises
// typed `overloaded` shedding end to end with no external setup;
// `--connect HOST:PORT` drives a live external daemon instead (the
// serve CLI smoke uses this against dpmd --max-inflight 2).
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/engine.h"
#include "serve/fleet.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

int connect_to(const std::string& host, const std::string& port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &resolved) != 0) {
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  return fd;
}

/// Blocking read of one response line with an overall timeout.
bool read_line(int fd, std::string& pending, std::string& line,
               int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  char buf[4096];
  while (true) {
    const std::size_t nl = pending.find('\n');
    if (nl != std::string::npos) {
      line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      return true;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    pending.append(buf, static_cast<std::size_t>(n));
  }
}

/// One fleet solve request line (same shape the serve scenario drives).
std::string solve_line(std::size_t variant, double bound,
                       std::size_t capacity, const std::string& id) {
  dpm::serve::Request r;
  r.id = id;
  r.op = dpm::serve::Op::kOptimize;
  r.model = dpm::serve::fleet_model_spec(variant, capacity);
  r.discount = 0.999;
  r.objective = "power";
  dpm::serve::ConstraintSpec c;
  c.metric = "queue_length";
  c.bound = bound;
  r.constraints.push_back(c);
  return format_request(r);
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

/// Per-connection work and results; sender and reader threads share the
/// send-timestamp queue under `mu`, everything else is owned by exactly
/// one thread until both are joined.
struct ConnWork {
  int fd = -1;
  std::vector<const std::string*> lines;
  std::vector<double> at_ms;

  std::mutex mu;
  std::deque<Clock::time_point> sends;
  bool io_error = false;

  std::size_t sent = 0;       // sender-owned
  std::size_t responses = 0;  // reader-owned below
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  std::size_t failed = 0;
  std::vector<double> latencies_ms;
};

void run_sender(ConnWork& w, Clock::time_point t0) {
  for (std::size_t i = 0; i < w.lines.size(); ++i) {
    std::this_thread::sleep_until(
        t0 + std::chrono::microseconds(
                 static_cast<long long>(w.at_ms[i] * 1000.0)));
    std::string out = *w.lines[i];
    out.push_back('\n');
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.sends.push_back(Clock::now());
    }
    if (!send_all(w.fd, out.data(), out.size())) {
      std::lock_guard<std::mutex> lock(w.mu);
      w.io_error = true;
      break;
    }
    ++w.sent;
  }
  // Half-close: the server drains every complete line (answering each)
  // before recv reports EOF, so the reader still sees all responses.
  ::shutdown(w.fd, SHUT_WR);
}

void run_reader(ConnWork& w) {
  std::string pending;
  char buf[4096];
  Clock::time_point last_progress = Clock::now();
  while (true) {
    pollfd pfd{w.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      // Stalled-server guard only: the normal exit is EOF after the
      // sender's half-close.
      if (ms_between(last_progress, Clock::now()) > 10000.0) break;
      continue;
    }
    const ssize_t n = ::recv(w.fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    last_progress = Clock::now();
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n'); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      const std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      const Clock::time_point now = Clock::now();
      Clock::time_point sent_at{};
      bool have_send_time = false;
      {
        std::lock_guard<std::mutex> lock(w.mu);
        if (!w.sends.empty()) {
          sent_at = w.sends.front();
          w.sends.pop_front();
          have_send_time = true;
        }
      }
      ++w.responses;
      if (line.find("\"code\":\"overloaded\"") != std::string::npos) {
        ++w.overloaded;
      } else if (line.find("\"status\":\"ok\"") != std::string::npos) {
        ++w.ok;
        if (have_send_time) w.latencies_ms.push_back(ms_between(sent_at, now));
      } else {
        ++w.failed;
      }
    }
    pending.erase(0, start);
  }
}

struct LevelResult {
  double offered_rate = 0.0;
  double achieved_rate = 0.0;
  std::size_t arrivals = 0;
  std::size_t sent = 0;
  std::size_t responses = 0;
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  std::size_t failed = 0;
  std::size_t lost = 0;
  bool io_error = false;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::size_t stats_roundtrips = 0;
};

struct LevelConfig {
  double rate = 100.0;         // offered arrivals per second
  double duration_ms = 500.0;  // arrival window
  std::size_t connections = 4;
  std::size_t capacity = 6;      // fleet queue capacity (model size)
  std::size_t max_arrivals = 2000;
  std::uint64_t seed = 0;
  std::size_t level_index = 0;
};

LevelResult run_level(const std::string& host, const std::string& port,
                      const LevelConfig& cfg,
                      const std::vector<std::string>& warm_pool) {
  // Deterministic arrival schedule and request mix, computed before the
  // clock starts: Poisson gaps at cfg.rate; ~70% replays of the warmed
  // pool (exact hits), ~30% moved bounds (near-hit warm starts).
  dpm::sim::Rng rng(
      dpm::sim::derive_seed("bench_serve_load", cfg.level_index, cfg.seed));
  std::vector<double> at_ms;
  std::vector<std::string> lines;
  double t = 0.0;
  while (at_ms.size() < cfg.max_arrivals) {
    t += -std::log(1.0 - rng.uniform()) * 1000.0 / cfg.rate;
    if (t >= cfg.duration_ms) break;
    at_ms.push_back(t);
    const std::string id = "L" + std::to_string(cfg.level_index) + "-" +
                           std::to_string(at_ms.size());
    if (rng.uniform() < 0.7) {
      std::string line = warm_pool[rng.uniform_index(warm_pool.size())];
      lines.push_back(std::move(line));
    } else {
      const double bound =
          0.9 + 0.002 * static_cast<double>(1 + rng.uniform_index(120));
      lines.push_back(solve_line(rng.uniform_index(2), bound, cfg.capacity, id));
    }
  }

  LevelResult result;
  result.offered_rate = cfg.rate;
  result.arrivals = at_ms.size();
  if (at_ms.empty()) return result;

  std::vector<std::unique_ptr<ConnWork>> conns;
  for (std::size_t c = 0; c < cfg.connections; ++c) {
    auto work = std::make_unique<ConnWork>();
    work->fd = connect_to(host, port);
    if (work->fd < 0) {
      result.io_error = true;
      break;
    }
    conns.push_back(std::move(work));
  }
  if (conns.size() < cfg.connections) {
    for (auto& c : conns) ::close(c->fd);
    return result;
  }
  for (std::size_t i = 0; i < at_ms.size(); ++i) {
    ConnWork& w = *conns[i % conns.size()];
    w.lines.push_back(&lines[i]);
    w.at_ms.push_back(at_ms[i]);
  }

  // Stats probe: its own connection, one stats round trip every 100 ms
  // for the whole level.  A typed overloaded answer still counts — the
  // property under test is that the daemon answers *something* quickly.
  std::atomic<bool> probe_stop{false};
  std::size_t probe_roundtrips = 0;
  std::thread probe([&] {
    const int fd = connect_to(host, port);
    if (fd < 0) return;
    std::string pending;
    static const std::string kStats = "{\"id\":\"probe\",\"op\":\"stats\"}\n";
    while (!probe_stop.load()) {
      if (!send_all(fd, kStats.data(), kStats.size())) break;
      std::string line;
      if (!read_line(fd, pending, line, 5000)) break;
      ++probe_roundtrips;
      for (int i = 0; i < 10 && !probe_stop.load(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    ::close(fd);
  });

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (auto& c : conns) {
    threads.emplace_back([&c, t0] { run_sender(*c, t0); });
    threads.emplace_back([&c] { run_reader(*c); });
  }
  for (std::thread& th : threads) th.join();
  const double elapsed_ms = ms_between(t0, Clock::now());
  probe_stop.store(true);
  probe.join();

  std::vector<double> latencies;
  for (auto& c : conns) {
    ::close(c->fd);
    result.sent += c->sent;
    result.responses += c->responses;
    result.ok += c->ok;
    result.overloaded += c->overloaded;
    result.failed += c->failed;
    result.io_error = result.io_error || c->io_error;
    latencies.insert(latencies.end(), c->latencies_ms.begin(),
                     c->latencies_ms.end());
  }
  result.lost = result.sent - std::min(result.sent, result.responses);
  result.achieved_rate =
      elapsed_ms > 0.0
          ? 1000.0 * static_cast<double>(result.responses) / elapsed_ms
          : 0.0;
  result.p50_ms = percentile(latencies, 0.50);
  result.p99_ms = percentile(latencies, 0.99);
  for (const double l : latencies) result.max_ms = std::max(result.max_ms, l);
  result.stats_roundtrips = probe_roundtrips;
  return result;
}

/// Closed-loop saturation estimate: warm every pool line (cold solves +
/// session registration), then time a steady replay+moved-bound mix one
/// request at a time.  1000/mean-ms is the rate past which an open-loop
/// offered load must queue or shed.
double calibrate_saturation(const std::string& host, const std::string& port,
                            const std::vector<std::string>& warm_pool,
                            std::size_t capacity, bool* ok) {
  *ok = false;
  const int fd = connect_to(host, port);
  if (fd < 0) return 0.0;
  std::string pending;
  std::string line;
  const auto roundtrip = [&](const std::string& request) {
    std::string out = request;
    out.push_back('\n');
    return send_all(fd, out.data(), out.size()) &&
           read_line(fd, pending, line, 30000);
  };
  // Warm pass: pays the cold solves, fills cache and sessions.
  for (const std::string& request : warm_pool) {
    if (!roundtrip(request)) {
      ::close(fd);
      return 0.0;
    }
  }
  // Measured passes: the same exact-hit/near-hit mix the levels offer.
  std::size_t count = 0;
  const Clock::time_point t0 = Clock::now();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < warm_pool.size(); ++i) {
      if (!roundtrip(warm_pool[i])) {
        ::close(fd);
        return 0.0;
      }
      ++count;
    }
    const double moved = 0.9 + 0.002 * static_cast<double>(pass + 1);
    if (!roundtrip(solve_line(0, moved, capacity, "cal"))) {
      ::close(fd);
      return 0.0;
    }
    ++count;
  }
  const double elapsed_ms = ms_between(t0, Clock::now());
  ::close(fd);
  if (elapsed_ms <= 0.0 || count == 0) return 0.0;
  *ok = true;
  return 1000.0 * static_cast<double>(count) / elapsed_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = dpm::bench::smoke_mode(argc, argv);
  std::string connect_endpoint;
  std::size_t connections = smoke ? 4 : 8;
  double duration_ms = smoke ? 500.0 : 2000.0;
  double forced_rate = 0.0;
  std::uint64_t seed = 0;
  bool expect_sheds = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_serve_load: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      connect_endpoint = next();
    } else if (arg == "--connections") {
      connections = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--duration-ms") {
      duration_ms = std::atof(next());
    } else if (arg == "--rate") {
      forced_rate = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--expect-sheds") {
      expect_sheds = true;
    } else if (arg != "--smoke") {
      std::fprintf(stderr,
                   "usage: bench_serve_load [--smoke] [--connect HOST:PORT]\n"
                   "         [--connections N] [--duration-ms X] [--rate R]\n"
                   "         [--seed N] [--expect-sheds]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  // In-process target unless --connect: small admission budget so the
  // 2x level demonstrably sheds instead of queuing.
  dpm::serve::PolicyEngine* engine = nullptr;
  std::unique_ptr<dpm::serve::PolicyEngine> owned_engine;
  std::unique_ptr<dpm::serve::PolicyServer> owned_server;
  std::string host;
  std::string port;
  if (connect_endpoint.empty()) {
    dpm::serve::EngineOptions eo;
    eo.max_inflight = 2;
    dpm::serve::ServerOptions so;
    so.max_connections = 32;
    owned_engine = std::make_unique<dpm::serve::PolicyEngine>(eo);
    owned_server =
        std::make_unique<dpm::serve::PolicyServer>(*owned_engine, so);
    std::string error;
    if (!owned_server->start(&error)) {
      std::fprintf(stderr, "bench_serve_load: cannot start server: %s\n",
                   error.c_str());
      return 1;
    }
    engine = owned_engine.get();
    host = "127.0.0.1";
    port = std::to_string(owned_server->port());
    expect_sheds = true;
  } else {
    const std::size_t colon = connect_endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == connect_endpoint.size()) {
      std::fprintf(stderr, "bench_serve_load: --connect expects HOST:PORT\n");
      return 2;
    }
    host = connect_endpoint.substr(0, colon);
    port = connect_endpoint.substr(colon + 1);
  }

  dpm::bench::banner(
      "serve open-loop load (bench_serve_load)",
      "Poisson arrivals at 0.5x/1x/2x saturation; offered vs admitted vs "
      "completed; p50/p99/max of admitted requests");

  const std::size_t capacity = smoke ? 6 : 8;
  std::vector<std::string> warm_pool;
  for (std::size_t variant = 0; variant < 2; ++variant) {
    warm_pool.push_back(solve_line(variant, 0.9, capacity, "warm"));
    warm_pool.push_back(solve_line(variant, 0.95, capacity, "warm"));
  }

  bool calibrated = false;
  double sat_rate = forced_rate;
  if (sat_rate <= 0.0) {
    sat_rate = calibrate_saturation(host, port, warm_pool, capacity,
                                    &calibrated);
    if (!calibrated) {
      std::fprintf(stderr,
                   "bench_serve_load: calibration against %s:%s failed\n",
                   host.c_str(), port.c_str());
      return 1;
    }
  } else {
    // Still warm the pool so level one is not dominated by cold solves.
    bool warm_ok = false;
    calibrate_saturation(host, port, warm_pool, capacity, &warm_ok);
    if (!warm_ok) {
      std::fprintf(stderr, "bench_serve_load: warmup against %s:%s failed\n",
                   host.c_str(), port.c_str());
      return 1;
    }
  }
  dpm::bench::section("calibration");
  dpm::bench::fact("closed-loop saturation estimate (req/s)", sat_rate);

  const double kLevels[] = {0.5, 1.0, 2.0};
  std::vector<LevelResult> results;
  for (std::size_t level = 0; level < 3; ++level) {
    LevelConfig cfg;
    cfg.rate = std::max(1.0, sat_rate * kLevels[level]);
    cfg.duration_ms = duration_ms;
    cfg.connections = connections;
    cfg.capacity = capacity;
    cfg.max_arrivals = smoke ? 2000 : 20000;
    cfg.seed = seed;
    cfg.level_index = level;
    results.push_back(run_level(host, port, cfg, warm_pool));
    const LevelResult& r = results.back();
    dpm::bench::section(
        std::to_string(kLevels[level]).substr(0, 3) + "x saturation (" +
        std::to_string(static_cast<long>(cfg.rate)) + " req/s offered)");
    std::printf(
        "  arrivals %5zu  sent %5zu  responses %5zu  ok %5zu  "
        "overloaded %5zu  failed %4zu  lost %3zu\n",
        r.arrivals, r.sent, r.responses, r.ok, r.overloaded, r.failed,
        r.lost);
    std::printf(
        "  completed %7.0f req/s   latency p50 %8.3f ms  p99 %8.3f ms  "
        "max %8.3f ms   stats round-trips %zu\n",
        r.achieved_rate, r.p50_ms, r.p99_ms, r.max_ms, r.stats_roundtrips);
  }

  // Acceptance checks (ISSUE 10): responsive at every level, typed sheds
  // at 2x, and shedding — not queuing — keeps the admitted-request p99
  // at 2x within 5x of the 0.5x p99 (floored against timer noise on
  // tiny smoke runs).
  std::vector<std::string> problems;
  for (std::size_t level = 0; level < results.size(); ++level) {
    const LevelResult& r = results[level];
    const std::string tag = "level " + std::to_string(kLevels[level]) + "x: ";
    if (r.io_error) problems.push_back(tag + "socket error");
    if (r.arrivals == 0) problems.push_back(tag + "no arrivals scheduled");
    if (r.responses == 0) problems.push_back(tag + "no responses");
    if (r.lost > 0) {
      problems.push_back(tag + std::to_string(r.lost) + " requests unanswered");
    }
    if (r.stats_roundtrips == 0) {
      problems.push_back(tag + "stats probe got no round trips");
    }
  }
  if (expect_sheds && !results.empty()) {
    const std::uint64_t engine_sheds =
        engine != nullptr ? engine->counters().sheds : 0;
    if (results.back().overloaded == 0 && engine_sheds == 0) {
      problems.push_back(
          "2x saturation produced no overloaded sheds (expected with a "
          "small admission budget)");
    }
  }
  if (results.size() == 3 && results[0].ok >= 20 && results[2].ok >= 20) {
    const double base = std::max(results[0].p99_ms, 10.0);
    if (results[2].p99_ms > 5.0 * base) {
      problems.push_back(
          "admitted p99 at 2x (" + std::to_string(results[2].p99_ms) +
          " ms) exceeds 5x the 0.5x p99 (base " + std::to_string(base) +
          " ms): shedding is not protecting admitted latency");
    }
  }

  dpm::bench::section("verdict");
  for (const std::string& p : problems) {
    std::printf("  FAIL %s\n", p.c_str());
  }
  if (problems.empty()) std::printf("  all load-level checks passed\n");

  {
    dpm::bench::JsonReport report("serve_load", /*enabled=*/!smoke);
    for (std::size_t level = 0; level < results.size(); ++level) {
      const LevelResult& r = results[level];
      report.add("load " + std::to_string(kLevels[level]) + "x p99",
                 r.p99_ms, r.ok, r.achieved_rate);
    }
  }

  if (owned_server) owned_server->stop();
  return problems.empty() ? 0 : 1;
}
