// Extension: adaptive policy re-optimization (the paper's future-work
// direction, Sec. VIII) evaluated on the Fig. 10 nonstationary
// workload.
//
// A sliding-window controller re-extracts the SR and re-solves the
// policy LP every few thousand slices.  The static stationary-fit
// optimum looks efficient on the mixture but silently violates its
// penalty bound during the editing regime; the adaptive controller
// keeps every regime within spec.
#include <cstdio>

#include "bench_util.h"
#include "cases/cpu_sa1100.h"
#include "dpm/optimizer.h"
#include "sim/adaptive_controller.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/sr_extractor.h"

using namespace dpm;
using cases::CpuSa1100;

namespace {

sim::AdaptiveController make_adaptive(double penalty_bound) {
  sim::AdaptiveController::Options o;
  o.warmup = 2000;
  o.window = 15000;
  o.reoptimize_every = 4000;
  return sim::AdaptiveController(
      [](const std::vector<unsigned>& w) {
        return trace::extract_sr(w, {.memory = 1, .smoothing = 1.0});
      },
      [](ServiceRequester sr) {
        ServiceProvider sp = CpuSa1100::make_provider();
        SpTransitionOverride ov = CpuSa1100::make_override(sp);
        return SystemModel::compose(std::move(sp), std::move(sr), 0,
                                    std::move(ov));
      },
      [penalty_bound](const SystemModel& mm) -> std::optional<Policy> {
        const PolicyOptimizer oo(mm, CpuSa1100::make_config(mm, 0.9999));
        OptimizationResult r =
            oo.minimize(metrics::power(mm),
                        {{CpuSa1100::penalty(mm), penalty_bound, "pen"}});
        if (!r.feasible) return std::nullopt;
        return std::move(r.policy);
      },
      CpuSa1100::kRun, o);
}

}  // namespace

int main() {
  bench::banner("Extension: adaptive re-optimization (Sec. VIII future work)",
                "sliding-window SR re-fit + LP re-solve vs the static "
                "stationary-fit optimum, on the Fig. 10 workload");

  const double bound = 0.01;
  const std::vector<unsigned> edit = trace::editing_stream(120000, 5);
  const std::vector<unsigned> comp = trace::compilation_stream(120000, 6);
  const std::vector<unsigned> mix = trace::concat_streams(edit, comp);
  const SystemModel m = CpuSa1100::make_model_from_stream(mix);

  const PolicyOptimizer opt(m, CpuSa1100::make_config(m, 0.9999));
  const StateActionMetric pen = CpuSa1100::penalty(m);
  const OptimizationResult st =
      opt.minimize(metrics::power(m), {{pen, bound, "pen"}});
  if (!st.feasible) {
    std::printf("static optimization infeasible (unexpected)\n");
    return 1;
  }

  sim::Simulator simulator(m);
  const auto run_on = [&](sim::Controller& c,
                          const std::vector<unsigned>& t) {
    sim::SimulationConfig cfg;
    cfg.slices = t.size();
    cfg.initial_state = {CpuSa1100::kActive, 0, 0};
    cfg.seed = 41;
    return simulator.run_trace(c, t, cfg);
  };

  std::printf("\n  penalty bound per regime: %.3f\n", bound);
  std::printf("  %-22s %12s %12s %10s\n", "controller / regime", "power[W]",
              "penalty", "in spec?");
  const struct {
    const char* name;
    const std::vector<unsigned>* t;
  } regimes[] = {{"editing", &edit}, {"compilation", &comp},
                 {"mixture", &mix}};
  for (const auto& reg : regimes) {
    sim::PolicyController sc(m, *st.policy);
    const sim::SimulationResult r = run_on(sc, *reg.t);
    std::printf("  static  %-14s %12.4f %12.4f %10s\n", reg.name,
                r.avg_power, r.metric(pen),
                r.metric(pen) <= bound * 1.05 ? "yes" : "NO");
  }
  for (const auto& reg : regimes) {
    sim::AdaptiveController ac = make_adaptive(bound);
    const sim::SimulationResult r = run_on(ac, *reg.t);
    std::printf("  adaptive %-13s %12.4f %12.4f %10s   (refits: %zu)\n",
                reg.name, r.avg_power, r.metric(pen),
                r.metric(pen) <= bound * 1.05 ? "yes" : "NO",
                ac.refit_count());
  }

  bench::note("the static fit is dominated by the compilation half and "
              "overshoots the penalty bound during editing; the adaptive "
              "controller re-fits within ~1 window and honours the bound "
              "in every regime while spending its budget (sleeping in "
              "compilation's short gaps) where the static policy cannot");
  return 0;
}
