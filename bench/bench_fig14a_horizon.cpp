// Fig. 14(a): sensitivity to the time horizon (discount factor).
//
// The trap-state probability 1 - gamma is swept (longer horizons to the
// LEFT in the paper's plot); 4-sleep SP, queue <= 0.5, two request-loss
// constraints.  Expected shape: longer horizons -> lower optimal power
// (more time to amortize transition costs / wrong decisions).
#include <cstdio>

#include "bench_util.h"
#include "cases/sensitivity.h"
#include "dpm/optimizer.h"

using namespace dpm;
namespace sens = cases::sensitivity;

int main() {
  bench::banner("Figure 14(a) (Appendix B)",
                "power vs time horizon; 4-sleep SP, queue <= 0.5");

  const std::vector<double> horizons{1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5};

  std::printf("\n  %-14s", "loss \\ horizon");
  for (const double h : horizons) std::printf(" %9.0f", h);
  std::printf("\n");

  for (const double loss : {0.01, 0.05}) {
    std::printf("  loss <= %-5.2f ", loss);
    for (const double h : horizons) {
      const SystemModel m =
          sens::make_model(sens::standard_sleep_states(), 0.01, 2);
      const PolicyOptimizer opt(m, sens::make_config(m, h));
      const OptimizationResult r = opt.minimize(
          metrics::power(m), {{metrics::queue_length(m), 0.5, "perf"},
                              {metrics::request_loss(m), loss, "loss"}});
      if (r.feasible) {
        std::printf(" %9.4f", r.objective_per_step);
      } else {
        std::printf(" %9s", "infeas");
      }
    }
    std::printf("\n");
  }

  bench::note("REPRODUCTION DEVIATION: the paper reports power falling "
              "toward longer horizons; under the stopping-time model as "
              "formalized (zero cost after the trap state, Fig. 5) the "
              "optimum instead falls slightly toward SHORT horizons, "
              "because shutting down near the session end is free — the "
              "optimizer exploits the end-game.  The effect is small "
              "(<6%) and vanishes as the horizon grows; see "
              "EXPERIMENTS.md for the analysis");
  return 0;
}
