// Ablation: the cost of forcing determinism (Theorem A.2).
//
// The paper proves that with an active constraint the optimal policy is
// randomized.  This harness quantifies what is lost by rounding the
// randomized optimum to its argmax deterministic policy, across the
// example system's Pareto range: the rounded policy either violates the
// queue constraint or pays more power — there is no free determinism.
#include <cstdio>

#include "bench_util.h"
#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"

using namespace dpm;
using cases::ExampleSystem;

int main() {
  bench::banner("Ablation: determinizing the randomized optimum "
                "(Theorem A.2)",
                "argmax-rounded optimal policies vs the true optimum, "
                "example system, gamma = 0.999");

  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, ExampleSystem::make_config(m, gamma));
  const linalg::Vector& p0 = opt.config().initial_distribution;

  std::printf("\n  %-10s %12s | %12s %12s %10s\n", "q bound", "opt power",
              "rnd power", "rnd queue", "violates?");
  for (const double q : {0.2, 0.3, 0.4, 0.5, 0.6}) {
    const OptimizationResult r = opt.minimize_power(q);
    if (!r.feasible) {
      std::printf("  %-10.2f %12s\n", q, "infeasible");
      continue;
    }
    const Policy rounded = cases::determinize(*r.policy);
    const PolicyEvaluation ev(m, rounded, gamma, p0);
    const double rq = ev.per_step(metrics::queue_length(m));
    const double rp = ev.per_step(metrics::power(m));
    std::printf("  %-10.2f %12.4f | %12.4f %12.4f %10s\n", q,
                r.objective_per_step, rp, rq,
                rq > q + 1e-9 ? "YES" : "no");
  }

  bench::note("every rounded policy either breaks its constraint or "
              "costs at least the optimum — randomization is exactly the "
              "mechanism that lets the optimum sit ON the constraint "
              "boundary (Theorem A.2)");

  bench::section("how much randomization does the optimum actually use?");
  const OptimizationResult r = opt.minimize_power(0.4);
  if (r.feasible) {
    std::size_t randomized_rows = 0;
    for (std::size_t s = 0; s < m.num_states(); ++s) {
      // Skip states the optimal frequencies never visit: their uniform
      // placeholder decisions are not "used" randomization.
      double reach = 0.0;
      for (std::size_t a = 0; a < m.num_commands(); ++a) {
        reach += r.frequencies[s * m.num_commands() + a];
      }
      if (reach < 1e-9) continue;
      double max_p = 0.0;
      for (std::size_t a = 0; a < m.num_commands(); ++a) {
        max_p = std::max(max_p, r.policy->probability(s, a));
      }
      if (max_p < 1.0 - 1e-6) ++randomized_rows;
    }
    bench::fact("states with randomized decisions",
                static_cast<double>(randomized_rows));
    bench::fact("of total states", static_cast<double>(m.num_states()));
    bench::note("consistent with LP theory: one active constraint beyond "
                "the balance equations adds (at most) one randomized "
                "state per constraint");
  }
  return 0;
}
