// Fig. 14(b): sensitivity to the queue capacity.
//
// Queue capacity swept 1..8; 4-sleep SP; performance penalty <= 0.5 for
// all series; three request-loss constraints.  Expected shape (the
// paper's "more involved" interpretation): when the loss constraint
// dominates, a longer queue reduces power (fewer arrivals find the
// queue full even under aggressive shutdown); when the performance
// (waiting-time) constraint dominates, shorter queues do better.
#include <cstdio>

#include "bench_util.h"
#include "cases/sensitivity.h"
#include "dpm/optimizer.h"

using namespace dpm;
namespace sens = cases::sensitivity;

int main() {
  bench::banner("Figure 14(b) (Appendix B)",
                "power vs maximum queue length; 4-sleep SP, queue <= 0.5, "
                "horizon 1e3 slices");

  std::printf("\n  %-14s", "loss \\ cap");
  for (int cap = 1; cap <= 8; ++cap) std::printf(" %8d", cap);
  std::printf("\n");

  for (const double loss : {0.002, 0.01, 0.05}) {
    std::printf("  loss <= %-6.3f", loss);
    for (int cap = 1; cap <= 8; ++cap) {
      const SystemModel m = sens::make_model(
          sens::standard_sleep_states(), 0.01,
          static_cast<std::size_t>(cap));
      const PolicyOptimizer opt(m, sens::make_config(m, 1e3));
      const OptimizationResult r = opt.minimize(
          metrics::power(m), {{metrics::queue_length(m), 0.5, "perf"},
                              {metrics::request_loss(m), loss, "loss"}});
      if (r.feasible) {
        std::printf(" %8.4f", r.objective_per_step);
      } else {
        std::printf(" %8s", "infeas");
      }
    }
    std::printf("\n");
  }

  bench::note("tight-loss rows fall with capacity (buffering compensates "
              "shutdown); once the performance constraint dominates, "
              "larger queues stop helping");
  return 0;
}
