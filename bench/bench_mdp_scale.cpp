// Sparse-MDP pipeline scaling: CSR chain construction, policy mixing +
// discounted evaluation, and O(nnz) LP assembly at state-action counts
// past 50k — sizes where the former dense representation (one n x n
// matrix per command) would not even fit in memory, let alone be scanned
// per LP build.
//
// Stages measured per size (n states, na commands, ~succ successors per
// (s, a) pair):
//   chain    CSR SparseControlledChain construction + row validation
//   mix+eval under_policy_csr (fused rows, reused capacity) + power-
//            accumulation occupancy (the PolicyEvaluation hot path:
//            O(nnz * iters), no factorization)
//   assembly balance-equation LP build straight off the CSR rows
//   solve    sparse revised simplex on that LP (largest size included —
//            partial pricing + Markowitz LU keep it tractable)
//
// `--smoke` (or DPMOPT_BENCH_SMOKE=1) shrinks sizes for `ctest -L bench`.
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.h"
#include "lp/revised_simplex.h"
#include "markov/occupancy.h"
#include "markov/sparse_chain.h"

using namespace dpm;

namespace {

markov::SparseControlledChain random_chain(std::size_t n, std::size_t na,
                                           std::size_t succ,
                                           std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.05, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::vector<std::vector<markov::TransitionRow>> rows(
      na, std::vector<markov::TransitionRow>(n));
  for (std::size_t a = 0; a < na; ++a) {
    for (std::size_t s = 0; s < n; ++s) {
      markov::TransitionRow& row = rows[a][s];
      row.reserve(succ);
      double total = 0.0;
      for (std::size_t k = 0; k < succ; ++k) {
        row.emplace_back(pick(gen), u(gen));
        total += row.back().second;
      }
      for (auto& [to, w] : row) w /= total;
    }
  }
  return markov::SparseControlledChain(n, std::move(rows));
}

/// Balance-equation LP over the chain's CSR rows (the build_lp shape:
/// one equality row per state, one capacity metric row).
lp::LpProblem assemble_lp(const markov::SparseControlledChain& chain,
                          double gamma, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::size_t n = chain.num_states();
  const std::size_t na = chain.num_commands();
  lp::LpProblem p;
  lp::Constraint cap;
  cap.sense = lp::Sense::kLe;
  cap.terms.reserve(n * na);
  double max_metric = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      p.add_variable(5.0 * u(gen));
      const double m = 3.0 * u(gen);
      cap.terms.emplace_back(s * na + a, m);
      max_metric = std::max(max_metric, m);
    }
  }
  std::vector<lp::Constraint> balance(n);
  for (std::size_t j = 0; j < n; ++j) {
    balance[j].sense = lp::Sense::kEq;
    balance[j].rhs = 1.0 / static_cast<double>(n);
    balance[j].terms.reserve(na * 8);
  }
  for (std::size_t a = 0; a < na; ++a) {
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t col = s * na + a;
      balance[s].terms.emplace_back(col, 1.0);
      for (const auto& [j, w] : chain.row(a, s)) {
        balance[j].terms.emplace_back(col, -gamma * w);
      }
    }
  }
  for (auto& c : balance) p.add_constraint(std::move(c));
  cap.rhs = 0.8 * max_metric / (1.0 - gamma);
  p.add_constraint(std::move(cap));
  return p;
}

struct SizeSpec {
  std::size_t n, na, succ;
  bool solve;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  bench::banner("MDP pipeline scaling (sparse chains past n*na = 50k)",
                "CSR chain build, sparse policy evaluation, O(nnz) LP "
                "assembly, revised-simplex solve; gamma = 0.999");
  bench::JsonReport report("mdp_scale", /*enabled=*/!smoke);
  const double gamma = 0.999;

  // Solves stop at 20k columns: the random-successor bases beyond that
  // fill heavily enough (expander-like sparsity has no low-fill
  // elimination order) that a solve is minutes, not seconds; the
  // pipeline stages upstream of the solve are the point of the largest
  // size and stay sub-second at 56k.
  const std::vector<SizeSpec> sizes =
      smoke ? std::vector<SizeSpec>{{50, 2, 3, true}}
            : std::vector<SizeSpec>{{1000, 8, 4, true},
                                    {2500, 8, 4, true},
                                    {7000, 8, 4, false}};

  std::printf("  %-12s %10s %12s %12s %10s %12s %10s\n", "size n*na",
              "chain_ms", "mix+eval_ms", "assembly_ms", "nnz_k", "solve_ms",
              "pivots");
  for (const SizeSpec& spec : sizes) {
    const std::size_t nna = spec.n * spec.na;

    bench::WallTimer t_chain;
    const markov::SparseControlledChain chain =
        random_chain(spec.n, spec.na, spec.succ, /*seed=*/29);
    const double chain_ms = t_chain.elapsed_ms();

    // Deterministic round-robin policy (optimal policies are mostly
    // deterministic): the mixed chain keeps ~succ nonzeros per row.  A
    // fully randomized policy would union every command's successor set
    // and the occupancy factorization would densify.
    linalg::Matrix policy(spec.n, spec.na);
    for (std::size_t s = 0; s < spec.n; ++s) policy(s, s % spec.na) = 1.0;
    linalg::Vector p0(spec.n, 1.0 / static_cast<double>(spec.n));
    bench::WallTimer t_eval;
    markov::MixedChainCsr mixed;
    chain.under_policy_csr(policy, mixed);
    markov::OccupancyWorkspace ws;
    const linalg::Vector& occupancy =
        markov::discounted_occupancy_power(mixed, p0, gamma, ws);
    const double eval_ms = t_eval.elapsed_ms();
    const double occ_mass = linalg::sum(occupancy) * (1.0 - gamma);

    bench::WallTimer t_asm;
    const lp::LpProblem p = assemble_lp(chain, gamma, /*seed=*/31);
    const double asm_ms = t_asm.elapsed_ms();
    std::size_t nnz = 0;
    for (const auto& c : p.constraints()) nnz += c.terms.size();

    double solve_ms = 0.0;
    std::size_t pivots = 0;
    if (spec.solve) {
      lp::SimplexStats stats;
      lp::RevisedSimplexOptions opt;
      opt.stats = &stats;
      bench::WallTimer t_solve;
      const lp::LpSolution sol = lp::solve_revised_simplex(p, opt);
      solve_ms = t_solve.elapsed_ms();
      pivots = sol.iterations;
      report.add("solve n*na=" + std::to_string(nna), solve_ms, pivots,
                 sol.objective * (1.0 - gamma));
      report.add("refactor n*na=" + std::to_string(nna), stats.refactor_ms,
                 stats.refactorizations,
                 stats.refactor_ms / std::max(solve_ms, 1e-9));
      // Update-vs-sweep split: what each pivot pays to *apply* the
      // factorization (triangular sweeps) vs to *maintain* it (FT
      // updates; refactorizations are the record above).
      report.add("sweep n*na=" + std::to_string(nna), stats.sweep_ms, pivots,
                 stats.sweep_ms / std::max(solve_ms, 1e-9));
      report.add("ft-update n*na=" + std::to_string(nna), stats.update_ms,
                 stats.ft_updates,
                 stats.update_ms / std::max(solve_ms, 1e-9));
    }

    std::printf("  %-12zu %10.2f %12.2f %12.2f %10.1f %12.2f %10zu\n", nna,
                chain_ms, eval_ms, asm_ms,
                static_cast<double>(nnz) / 1000.0, solve_ms, pivots);
    report.add("chain n*na=" + std::to_string(nna), chain_ms,
               chain.nonzeros(), occ_mass);
    report.add("mix+eval n*na=" + std::to_string(nna), eval_ms,
               ws.used_lu ? 0 : ws.iterations, occ_mass);
    report.add("assembly n*na=" + std::to_string(nna), asm_ms, nnz,
               static_cast<double>(nnz));
  }

  bench::section("criteria");
  bench::note("chain build and LP assembly should scale with nnz (linear "
              "in n*na at fixed successor count), not (n*na)^2");
  bench::note("mix+eval is O(nnz * iters) power accumulation — linear in "
              "n*na at fixed successor count and iteration count (the "
              "former LU route was superlinear on these expander chains)");
  bench::note("occupancy mass (objective column of the chain records) "
              "should be 1.0 to solver precision");
  return 0;
}
