// Extension: average-cost (infinite-horizon) policy optimization — the
// paper's Eq. 7 formulation solved directly, without a discount.
//
// Two studies:
//   1. discounted vs average-cost optima on the example system and the
//      disk drive: as gamma -> 1 the discounted optimum converges to
//      the average-cost one (on ergodic supports);
//   2. Fig. 14(a) revisited: the average-cost formulation has no
//      session end, so the end-game artifact analyzed in EXPERIMENTS.md
//      disappears — there is one horizon-free optimum, which the
//      discounted curve approaches from below.
#include <cstdio>

#include "bench_util.h"
#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "cases/sensitivity.h"
#include "dpm/average_optimizer.h"
#include "dpm/optimizer.h"

using namespace dpm;
namespace sens = cases::sensitivity;

int main() {
  bench::banner("Extension: average-cost optimization (paper Eq. 7)",
                "stationary-distribution LP vs the discounted (Eq. 9) "
                "formulation");

  bench::JsonReport report("average_cost");

  bench::section("example system: discounted -> average convergence "
                 "(queue <= 0.45, loss <= 0.25)");
  {
    const SystemModel m = cases::ExampleSystem::make_model();
    const AverageCostOptimizer avg(m);
    bench::WallTimer timer;
    const OptimizationResult a = avg.minimize_power(0.45, 0.25);
    report.add("example average-cost", timer.elapsed_ms(), a.lp_iterations,
               a.objective_per_step);
    std::printf("  %-22s %12.5f W\n", "average-cost optimum",
                a.objective_per_step);
    for (const double gamma : {0.99, 0.999, 0.9999, 0.99999, 0.9999999}) {
      const PolicyOptimizer d(
          m, cases::ExampleSystem::make_config(m, gamma));
      const OptimizationResult r = d.minimize_power(0.45, 0.25);
      std::printf("  discounted gamma=%-9.7f %10.5f W\n", gamma,
                  r.feasible ? r.objective_per_step : -1.0);
    }
  }

  bench::section("disk drive: the two formulations agree at gamma ~ 1 "
                 "(queue <= 0.4, loss <= 0.05)");
  {
    const SystemModel m = cases::DiskDrive::make_model();
    const AverageCostOptimizer avg(m);
    bench::WallTimer t_avg;
    const OptimizationResult a = avg.minimize_power(0.4, 0.05);
    report.add("disk average-cost", t_avg.elapsed_ms(), a.lp_iterations,
               a.feasible ? a.objective_per_step : -1.0);
    std::printf("  %-22s %12.5f W\n", "average-cost optimum",
                a.feasible ? a.objective_per_step : -1.0);
    const PolicyOptimizer d(m, cases::DiskDrive::make_config(m, 0.99999));
    bench::WallTimer t_disc;
    const OptimizationResult r = d.minimize_power(0.4, 0.05);
    report.add("disk discounted 1e5", t_disc.elapsed_ms(), r.lp_iterations,
               r.feasible ? r.objective_per_step : -1.0);
    std::printf("  %-22s %12.5f W\n", "discounted (1e5)",
                r.feasible ? r.objective_per_step : -1.0);
  }

  bench::section("Fig. 14(a) revisited without the end-game artifact");
  {
    const SystemModel m =
        sens::make_model(sens::standard_sleep_states(), 0.01, 2);
    const AverageCostOptimizer avg(m);
    const OptimizationResult a = avg.minimize(
        metrics::power(m), {{metrics::queue_length(m), 0.5, "perf"},
                            {metrics::request_loss(m), 0.05, "loss"}});
    std::printf("  %-26s %10.4f W (horizon-free)\n",
                "average-cost optimum", a.objective_per_step);
    std::printf("  %-26s", "discounted, by horizon:");
    for (const double h : {1e2, 1e3, 1e4, 1e5}) {
      const PolicyOptimizer d(m, sens::make_config(m, h));
      const OptimizationResult r = d.minimize(
          metrics::power(m), {{metrics::queue_length(m), 0.5, "perf"},
                              {metrics::request_loss(m), 0.05, "loss"}});
      std::printf(" %8.4f", r.feasible ? r.objective_per_step : -1.0);
    }
    std::printf("   (horizons 1e2..1e5)\n");
  }

  bench::note("the discounted optima lie below the average-cost optimum "
              "at short horizons (free end-of-session shutdown) and "
              "converge to it as the horizon grows — quantifying the "
              "Fig. 14(a) deviation discussed in EXPERIMENTS.md");
  return 0;
}
