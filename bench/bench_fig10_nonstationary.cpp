// Fig. 10 / Example 7.1: nonstationary, non-Markovian workload.
//
// A single two-state Markov SR is fitted to the concatenation of two
// very different real-world-like traces (interactive editing, then a
// long compilation burst).  Policies that are provably optimal for the
// fitted model are then simulated against the raw trace, alongside
// timeout heuristics.  Expected shape: the stochastic policies remain
// good but are NOT guaranteed to dominate — for some penalty levels the
// timeout heuristic wins, because the stationary-Markov modeling
// assumption is violated (the paper's cautionary result).
#include <cstdio>

#include "bench_util.h"
#include "cases/cpu_sa1100.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/sr_extractor.h"

using namespace dpm;
using cases::CpuSa1100;

int main() {
  bench::banner("Figure 10 / Example 7.1 (Sec. VII)",
                "CPU model under a nonstationary editing+compilation "
                "workload; stationary-fit optimal vs timeout, both "
                "simulated on the raw trace");

  const std::vector<unsigned> mix = trace::concat_streams(
      trace::editing_stream(300000, 5), trace::compilation_stream(300000, 6));
  const trace::StreamStats edit_stats =
      trace::analyze_stream({mix.begin(), mix.begin() + 300000});
  const trace::StreamStats comp_stats =
      trace::analyze_stream({mix.begin() + 300000, mix.end()});
  bench::section("the two halves have very different statistics");
  bench::fact("editing    request rate", edit_stats.request_rate);
  bench::fact("compilation request rate", comp_stats.request_rate);

  const SystemModel m = CpuSa1100::make_model_from_stream(mix);
  const double gamma = 0.9999;
  const PolicyOptimizer opt(m, CpuSa1100::make_config(m, gamma));
  const StateActionMetric pen = CpuSa1100::penalty(m);
  bench::fact("fitted SR P[idle->active]",
              m.requester().chain().transition(0, 1));
  bench::fact("fitted SR P[active->active]",
              m.requester().chain().transition(1, 1));

  sim::Simulator simulator(m);
  const auto simulate_on_trace = [&](sim::Controller& ctl) {
    sim::SimulationConfig cfg;
    cfg.slices = mix.size();
    cfg.initial_state = {CpuSa1100::kActive, 0, 0};
    cfg.seed = 17;
    return simulator.run_trace(ctl, mix, cfg);
  };

  bench::section("stochastic policies (optimal for the FITTED model)");
  std::printf("  %-16s %12s %12s %14s %14s\n", "penalty bound",
              "model power", "model pen", "trace power", "trace pen");
  for (const double bound : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    const OptimizationResult r =
        opt.minimize(metrics::power(m), {{pen, bound, "penalty"}});
    if (!r.feasible) {
      std::printf("  %-16.4f %12s\n", bound, "infeasible");
      continue;
    }
    sim::PolicyController ctl(m, *r.policy);
    const sim::SimulationResult s = simulate_on_trace(ctl);
    std::printf("  %-16.4f %12.4f %12.4f %14.4f %14.4f\n", bound,
                r.objective_per_step, r.constraint_per_step[0], s.avg_power,
                s.metric(pen));
  }

  bench::section("timeout heuristics on the same raw trace");
  std::printf("  %-16s %14s %14s\n", "timeout", "trace power", "trace pen");
  for (const std::size_t timeout : {0ul, 2ul, 5ul, 10ul, 20ul, 50ul}) {
    sim::TimeoutController ctl(timeout, CpuSa1100::kShutdown,
                               CpuSa1100::kRun);
    const sim::SimulationResult s = simulate_on_trace(ctl);
    std::printf("  %-16zu %14.4f %14.4f\n", timeout, s.avg_power,
                s.metric(pen));
  }

  bench::note("trace-measured points drift off the model predictions; "
              "timeouts can match or beat the stationary-fit optimum at "
              "some penalty levels — Markovian optimality does not "
              "survive a nonstationary workload");
  return 0;
}
