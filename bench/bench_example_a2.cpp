// Reproduces the paper's running example end to end:
//   * the SP/SR/system Markov chains of Examples 3.1-3.5 (Figs. 2-4),
//   * the constrained optimization of Example A.2 (LP4: min power,
//     avg queue <= 0.5, request loss <= 0.2, gamma = 0.99999),
//   * the optimal randomized policy matrix and its comparison with the
//     trivial always-on and eager policies.
//
// Paper reference values: optimal power 1.798 W (vs 3 W always-on,
// "almost a factor of two"), with a randomized decision in state
// (on, 0, 0) of roughly {0.774 s_on, 0.226 s_off}.  Exact matrix entries
// in the paper scan are partly illegible, so the shape — near-2x saving,
// randomized decisions only where constraints bind — is the target.
#include <cstdio>

#include "bench_util.h"
#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"

using namespace dpm;
using cases::ExampleSystem;

int main() {
  bench::banner("Example A.2 (running example, Sections III-IV, Appendix A)",
                "min power s.t. E[queue] <= 0.5, E[loss] <= 0.2, "
                "gamma = 0.99999, start (on, idle, empty)");

  const SystemModel m = ExampleSystem::make_model();
  const ServiceProvider& sp = m.provider();

  bench::section("Service provider (Example 3.1)");
  for (std::size_t a = 0; a < sp.commands().size(); ++a) {
    std::printf("  P[%s]:\n", sp.commands().name(a).c_str());
    for (std::size_t i = 0; i < sp.num_states(); ++i) {
      std::printf("    %-4s", sp.state_name(i).c_str());
      for (std::size_t j = 0; j < sp.num_states(); ++j) {
        std::printf(" %8.3f", sp.chain().transition(i, j, a));
      }
      std::printf("\n");
    }
  }
  bench::fact("expected off->on wake time (Eq. 2, slices)",
              sp.expected_transition_time(ExampleSystem::kSpOff,
                                          ExampleSystem::kSpOn,
                                          ExampleSystem::kCmdOn));

  bench::section("Service requester (Example 3.2)");
  const ServiceRequester& sr = m.requester();
  std::printf("  P[SR]:\n");
  for (std::size_t i = 0; i < sr.num_states(); ++i) {
    std::printf("    %-8s", sr.state_name(i).c_str());
    for (std::size_t j = 0; j < sr.num_states(); ++j) {
      std::printf(" %8.3f", sr.chain().transition(i, j));
    }
    std::printf("\n");
  }
  bench::fact("mean burst length (slices)",
              1.0 / sr.chain().transition(1, 0));
  bench::fact("offered load (requests/slice)", sr.mean_arrival_rate());

  bench::section("Composed system (Example 3.5: 8 states, 2 commands)");
  bench::fact("states", static_cast<double>(m.num_states()));
  const std::size_t from = m.index_of({ExampleSystem::kSpOn, 0, 0});
  const std::size_t to = m.index_of({ExampleSystem::kSpOn, 1, 0});
  bench::fact("P[(on,0,0)->(on,1,0) | s_on] (served on arrival)",
              m.chain().transition(from, to, ExampleSystem::kCmdOn));

  bench::section("Optimization (LP4 of Appendix A)");
  const PolicyOptimizer opt(m, ExampleSystem::make_config(m));
  const OptimizationResult r = opt.minimize_power(0.5, 0.2);
  if (!r.feasible) {
    std::printf("  INFEASIBLE (unexpected)\n");
    return 1;
  }
  bench::fact("optimal expected power [W]  (paper: 1.798)",
              r.objective_per_step);
  bench::fact("achieved E[queue]   (bound 0.5)", r.constraint_per_step[0]);
  bench::fact("achieved E[loss]    (bound 0.2)", r.constraint_per_step[1]);
  bench::fact("LP iterations", static_cast<double>(r.lp_iterations));
  bench::fact("policy deterministic?",
              r.policy->is_deterministic(1e-6) ? "yes" : "no (randomized)");

  std::printf("\n  Optimal policy matrix (rows: system states):\n");
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    std::printf("    %-22s s_on=%7.4f  s_off=%7.4f\n",
                m.state_label(s).c_str(), r.policy->probability(s, 0),
                r.policy->probability(s, 1));
  }

  bench::section("Reference policies (same start, same gamma)");
  const double gamma = opt.config().discount;
  const linalg::Vector& p0 = opt.config().initial_distribution;
  const PolicyEvaluation on(m, cases::always_on_policy(m, ExampleSystem::kCmdOn),
                            gamma, p0);
  const PolicyEvaluation eager(
      m, cases::eager_policy(m, ExampleSystem::kCmdOff, ExampleSystem::kCmdOn),
      gamma, p0);
  std::printf("  %-14s %10s %10s %10s\n", "policy", "power[W]", "queue",
              "loss");
  std::printf("  %-14s %10.4f %10.4f %10.4f\n", "optimal",
              r.objective_per_step, r.constraint_per_step[0],
              r.constraint_per_step[1]);
  std::printf("  %-14s %10.4f %10.4f %10.4f\n", "always-on",
              on.per_step(metrics::power(m)),
              on.per_step(metrics::queue_length(m)),
              on.per_step(metrics::request_loss(m)));
  std::printf("  %-14s %10.4f %10.4f %10.4f\n", "eager",
              eager.per_step(metrics::power(m)),
              eager.per_step(metrics::queue_length(m)),
              eager.per_step(metrics::request_loss(m)));
  bench::fact("saving vs always-on (paper: ~1.67x)",
              on.per_step(metrics::power(m)) / r.objective_per_step);

  bench::section("Monte Carlo cross-check (session-restart, Fig. 5 model)");
  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig cfg;
  cfg.slices = 1000000;
  cfg.initial_state = {ExampleSystem::kSpOn, 0, 0};
  cfg.session_restart_prob = 1.0 - gamma;
  cfg.seed = 2024;
  const sim::SimulationResult s = simulator.run(ctl, cfg);
  bench::fact("simulated power [W]", s.avg_power);
  bench::fact("simulated queue", s.avg_queue_length);
  bench::fact("simulated loss-state rate", s.loss_state_rate);
  return 0;
}
