// Shared formatting helpers for the paper-reproduction harnesses.
//
// Every bench prints self-describing aligned tables: one table per
// figure series, matching the rows/series the paper reports.
// Deterministic from fixed seeds.  Each bench additionally drops a
// BENCH_<bench>.json file into the current working directory with one
// shared record schema — {"name", "wall_ms", "iterations", "objective"}
// — so per-PR trajectories stay machine-comparable.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace dpm::bench {

/// True when the bench should run tiny problem sizes: either `--smoke`
/// was passed or DPMOPT_BENCH_SMOKE is set (the `ctest -L bench` smoke
/// suite uses this so every bench compiles *and* runs in tier-1 without
/// burning minutes).
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  const char* env = std::getenv("DPMOPT_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline void banner(const std::string& experiment, const std::string& what) {
  std::printf("\n");
  std::printf("=====================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  %s\n", what.c_str());
  std::printf("=====================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

/// Prints "  label = value" for scalar summary facts.
inline void fact(const std::string& label, double value) {
  std::printf("  %-44s %12.5f\n", label.c_str(), value);
}

inline void fact(const std::string& label, const std::string& value) {
  std::printf("  %-44s %12s\n", label.c_str(), value.c_str());
}

/// Wall-clock stopwatch for bench timings.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One measurement in the shared cross-bench schema.
struct JsonRecord {
  std::string name;        // what was measured ("revised n=2000", ...)
  double wall_ms = 0.0;    // wall time spent
  std::size_t iterations = 0;  // algorithm iterations (0 when n/a)
  double objective = 0.0;  // headline numeric result (0 when n/a)
};

/// Collects records and writes BENCH_<bench>.json on destruction; every
/// bench main emits exactly this schema so trajectories across PRs are
/// comparable with one jq expression.
///
/// Pass `enabled = false` (benches with smoke-scaled sizes pass
/// `!smoke`) to skip the write: a `ctest -L bench` smoke run must not
/// overwrite benchmark-grade trajectory records with tiny-size numbers.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name, bool enabled = true)
      : bench_name_(std::move(bench_name)), enabled_(enabled) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(std::string name, double wall_ms, std::size_t iterations,
           double objective) {
    records_.push_back({std::move(name), wall_ms, iterations, objective});
  }

  ~JsonReport() {
    if (!enabled_) return;
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"wall_ms\": %.6f, "
                   "\"iterations\": %zu, \"objective\": %.12g}",
                   i == 0 ? "" : ",", r.name.c_str(), r.wall_ms,
                   r.iterations, r.objective);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

 private:
  std::string bench_name_;
  bool enabled_;
  std::vector<JsonRecord> records_;
};

}  // namespace dpm::bench
