// Shared formatting helpers for the paper-reproduction harnesses.
//
// Every bench prints self-describing aligned tables: one table per
// figure series, matching the rows/series the paper reports.
// Deterministic from fixed seeds.  Each bench additionally drops a
// BENCH_<bench>.json file into the current working directory with one
// shared record schema — {"name", "wall_ms", "iterations", "objective"}
// — so per-PR trajectories stay machine-comparable.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "scenario/report.h"

namespace dpm::bench {

/// True when the bench should run tiny problem sizes: either `--smoke`
/// was passed or DPMOPT_BENCH_SMOKE is set (the `ctest -L bench` smoke
/// suite uses this so every bench compiles *and* runs in tier-1 without
/// burning minutes).
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  const char* env = std::getenv("DPMOPT_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline void banner(const std::string& experiment, const std::string& what) {
  std::printf("\n");
  std::printf("=====================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  %s\n", what.c_str());
  std::printf("=====================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

/// Prints "  label = value" for scalar summary facts.
inline void fact(const std::string& label, double value) {
  std::printf("  %-44s %12.5f\n", label.c_str(), value);
}

inline void fact(const std::string& label, const std::string& value) {
  std::printf("  %-44s %12s\n", label.c_str(), value.c_str());
}

/// Wall-clock stopwatch for bench timings.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The shared cross-bench record/report schema now lives in
/// src/scenario/report.h (the scenario runner emits the same files);
/// these aliases keep the solver-scaling benches unchanged.
using JsonRecord = scenario::JsonRecord;
using JsonReport = scenario::JsonReport;

}  // namespace dpm::bench
