// Shared formatting helpers for the paper-reproduction harnesses.
//
// Every bench prints self-describing aligned tables: one table per
// figure series, matching the rows/series the paper reports.  No files
// are read or written; everything is deterministic from fixed seeds.
#pragma once

#include <cstdio>
#include <string>

namespace dpm::bench {

inline void banner(const std::string& experiment, const std::string& what) {
  std::printf("\n");
  std::printf("=====================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  %s\n", what.c_str());
  std::printf("=====================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

/// Prints "  label = value" for scalar summary facts.
inline void fact(const std::string& label, double value) {
  std::printf("  %-44s %12.5f\n", label.c_str(), value);
}

inline void fact(const std::string& label, const std::string& value) {
  std::printf("  %-44s %12s\n", label.c_str(), value.c_str());
}

}  // namespace dpm::bench
