// Fig. 13(b): sensitivity to SR model memory.
//
// A k-memory Markov SR (2^k states) is extracted from a synthetic
// workload whose idle-time distribution is NOT memoryless (mixture of
// short and long idles), for k = 1..4, and the optimizer runs on each.
// Two SPs (baseline one-sleep and two-sleep) x three performance
// constraints.  Expected shape: more memory lets the optimizer separate
// long idle periods from short ones -> lower power; the gain is larger
// when there are multiple sleep states to match to idle-period lengths.
#include <cstdio>

#include "bench_util.h"
#include "cases/sensitivity.h"
#include "dpm/optimizer.h"
#include "trace/generators.h"
#include "trace/sr_extractor.h"

using namespace dpm;
namespace sens = cases::sensitivity;

int main() {
  bench::banner("Figure 13(b) (Appendix B)",
                "power vs SR memory k (2^k states), horizon 1e4 slices");

  // Idle lengths are a mixture of two geometrics: short intra-burst gaps
  // and long think times — exactly the structure extra memory can
  // exploit.
  trace::OnOffParams wp;
  wp.mean_burst = 4.0;
  wp.mean_idle_short = 3.0;
  wp.mean_idle_long = 60.0;
  wp.long_idle_fraction = 0.3;
  const std::vector<unsigned> stream = trace::on_off_stream(400000, wp, 99);

  const auto& sleeps = sens::standard_sleep_states();
  const std::vector<sens::SleepStateSpec> one_sleep{sleeps[0]};
  const std::vector<sens::SleepStateSpec> two_sleep{sleeps[0], sleeps[1]};

  for (const auto& [sp_name, specs] :
       {std::pair{"baseline SP {s1}", one_sleep},
        std::pair{"two-sleep SP {s1,s2}", two_sleep}}) {
    bench::section(sp_name);
    std::printf("  %-14s", "perf \\ k");
    for (int k = 1; k <= 4; ++k) std::printf(" %10d", k);
    std::printf("\n");
    for (const double q_bound : {0.1, 0.3, 0.6}) {
      std::printf("  queue <= %-4.1f", q_bound);
      for (int k = 1; k <= 4; ++k) {
        const ServiceRequester sr = trace::extract_sr(
            stream, {.memory = static_cast<std::size_t>(k), .smoothing = 0.5});
        const SystemModel m =
            SystemModel::compose(sens::make_sp(specs), sr, 2);
        const PolicyOptimizer opt(m, sens::make_config(m, 1e4));
        const OptimizationResult r = opt.minimize_power(q_bound);
        if (r.feasible) {
          std::printf(" %10.4f", r.objective_per_step);
        } else {
          std::printf(" %10s", "infeas");
        }
      }
      std::printf("\n");
    }
  }

  bench::note("power falls (or stays flat) as k grows; the drop is larger "
              "with two sleep states, which can be matched to idle-period "
              "lengths");
  return 0;
}
