// Fig. 6: Pareto curves of the example system.
//
// The paper plots three curves of optimal expected power vs the average
// queue-length constraint, one per request-loss constraint setting:
//   * loose loss bound  -> performance constraint dominates everywhere;
//   * tight loss bound  -> loss dominates; the resource can never sleep
//     and power stays at its maximum (flat topmost curve);
//   * intermediate      -> a flat loss-dominated region that bends into
//     a performance-dominated region.
// There is also an infeasible region: no policy achieves an average
// queue below the workload's floor.
#include <cstdio>

#include "bench_util.h"
#include "cases/example_system.h"
#include "dpm/optimizer.h"

using namespace dpm;
using cases::ExampleSystem;

int main() {
  bench::banner("Figure 6 (Sec. IV-A)",
                "power/performance Pareto curves under three request-loss "
                "constraint settings; gamma = 0.99999");

  bench::JsonReport report("fig06_pareto");
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, ExampleSystem::make_config(m));

  const std::vector<double> queue_bounds{0.10, 0.14, 0.18, 0.22, 0.26,
                                         0.30, 0.35, 0.40, 0.45, 0.50,
                                         0.55, 0.60, 0.70, 0.80};
  struct Series {
    const char* name;
    double loss_bound;
  };
  const Series series[] = {
      {"loose  loss <= 0.35", 0.35},
      {"middle loss <= 0.22", 0.22},
      {"tight  loss <= 0.165", 0.165},
  };

  std::printf("\n  %-10s", "queue<=");
  for (const double q : queue_bounds) std::printf(" %8.2f", q);
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("  %-10s", s.name);
    std::vector<OptimizationConstraint> fixed{
        {metrics::request_loss(m), s.loss_bound, "loss"}};
    bench::WallTimer timer;
    const auto curve = opt.sweep(metrics::power(m), metrics::queue_length(m),
                                 "queue", queue_bounds, fixed);
    const double wall_ms = timer.elapsed_ms();
    std::printf("\n    power:  ");
    std::size_t pivots = 0;
    double last_power = 0.0;
    for (const auto& pt : curve) {
      pivots += pt.lp_iterations;
      if (pt.feasible) {
        last_power = pt.objective;
        std::printf(" %8.4f", pt.objective);
      } else {
        std::printf(" %8s", "infeas");
      }
    }
    std::printf("\n");
    report.add(s.name, wall_ms, pivots, last_power);
  }

  bench::section("shape checks");
  bench::note("infeasible region exists below the workload queue floor");
  bench::note("tight-loss curve is flat at max power; middle curve has a "
              "loss-dominated plateau before bending down");
  return 0;
}
