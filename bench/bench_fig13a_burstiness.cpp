// Fig. 13(a): sensitivity to SR burstiness.
//
// The SR flip probability p (both directions) is swept; the request
// probability stays 0.5 for every point, so burstiness changes with the
// offered load held constant.  Bursty receivers are to the LEFT (small
// p: long runs of requests and long idle runs).  Four-sleep SP, loss
// <= 0.01, horizon 1e3, two performance constraints.  Expected shape:
// burstier SR -> lower optimal power (long idle runs are exploitable),
// even though the workload volume is identical.
#include <cstdio>

#include "bench_util.h"
#include "cases/sensitivity.h"
#include "dpm/optimizer.h"

using namespace dpm;
namespace sens = cases::sensitivity;

int main() {
  bench::banner("Figure 13(a) (Appendix B)",
                "power vs SR burstiness at constant load 0.5; 4-sleep SP, "
                "horizon 1e3 slices");
  bench::note("the paper also holds loss <= 0.01; with a capacity-2 queue "
              "and 0/1 arrivals that bound pins the system near always-on "
              "for every flip probability, so the burstiness effect is "
              "shown under the performance constraints alone (see "
              "EXPERIMENTS.md)");

  const std::vector<double> flips{0.005, 0.01, 0.02, 0.05,
                                  0.1,   0.2,  0.35, 0.5};

  std::printf("\n  %-18s", "perf \\ flip p");
  for (const double p : flips) std::printf(" %8.3f", p);
  std::printf("\n");

  for (const double q_bound : {0.1, 0.5}) {
    std::printf("  queue <= %-9.1f", q_bound);
    for (const double p : flips) {
      const SystemModel m =
          sens::make_model(sens::standard_sleep_states(), p, 2);
      const PolicyOptimizer opt(m, sens::make_config(m, 1e3));
      const OptimizationResult r = opt.minimize_power(q_bound);
      if (r.feasible) {
        std::printf(" %8.4f", r.objective_per_step);
      } else {
        std::printf(" %8s", "infeas");
      }
    }
    std::printf("\n");
  }

  bench::note("power increases to the right: less burstiness (shorter "
              "idle runs) leaves less to exploit at the same load");
  return 0;
}
