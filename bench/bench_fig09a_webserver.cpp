// Fig. 9(a): two-processor web server.
//
// Solid line: minimum expected power vs required expected throughput.
// Circles: simulation of the optimal policies driven by the raw traffic
// trace the SR was extracted from.  Also verifies the paper's structural
// observation that the faster-but-hungrier CPU2 is never used alone.
#include <cstdio>

#include "bench_util.h"
#include "cases/web_server.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"

using namespace dpm;
using cases::WebServer;

int main() {
  bench::banner("Figure 9(a) (Sec. VI-B)",
                "two-processor web server, tau = 10 s, horizon one day "
                "(8640 slices)");

  const SystemModel m = WebServer::make_model(/*seed=*/7);
  const PolicyOptimizer opt(m, WebServer::make_config(m));
  const double gamma = opt.config().discount;

  bench::section("workload (synthetic diurnal web traffic)");
  bench::fact("SR P[quiet->busy]", m.requester().chain().transition(0, 1));
  bench::fact("SR P[busy->busy]", m.requester().chain().transition(1, 1));
  bench::fact("offered load", m.requester().mean_arrival_rate());

  bench::section("optimal power vs throughput constraint");
  std::printf("  %-12s %12s %12s %12s %14s\n", "min thpt", "power[W]",
              "E[thpt]", "sim power", "cpu2-alone freq");
  sim::Simulator simulator(m);
  const std::vector<unsigned> stream =
      WebServer::make_trace(400000, /*seed=*/7);
  for (const double target :
       {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const OptimizationResult r = opt.minimize(
        metrics::power(m), {WebServer::min_throughput_constraint(m, target)});
    if (!r.feasible) {
      std::printf("  %-12.2f %12s\n", target, "infeasible");
      continue;
    }
    // How often does the optimum run the fast CPU alone?  (Paper: never.)
    double cpu2_alone = 0.0;
    const std::size_t na = m.num_commands();
    for (std::size_t s = 0; s < m.num_states(); ++s) {
      if (m.decompose(s).sp != WebServer::kCpu2Only) continue;
      for (std::size_t a = 0; a < na; ++a) {
        cpu2_alone += r.frequencies[s * na + a];
      }
    }
    cpu2_alone *= 1.0 - gamma;

    // Trace-driven session simulation (the circles).
    sim::PolicyController ctl(m, *r.policy);
    sim::SimulationConfig cfg;
    cfg.slices = stream.size();
    cfg.initial_state = {WebServer::kBothOn, 0, 0};
    cfg.session_restart_prob = 1.0 - gamma;
    cfg.seed = 5;
    const sim::SimulationResult s = simulator.run_trace(ctl, stream, cfg);

    std::printf("  %-12.2f %12.4f %12.4f %12.4f %14.5f\n", target,
                r.objective_per_step, -r.constraint_per_step[0], s.avg_power,
                cpu2_alone);
  }

  bench::note("power rises with the throughput requirement; simulated "
              "points track the curve; cpu2-alone frequency ~ 0 "
              "(2x power for 1.5x performance never pays off alone)");
  return 0;
}
