// Fig. 12(b): sensitivity to the sleep-state transition speed.
//
// Single-sleep SP; the wake probability per slice is swept (abscissa;
// faster transitions to the right), for four series: sleep power
// {2 W, 0 W} x dominating constraint {request loss, performance}.
// Transition power is 4 W (above the 3 W active power).  Expected
// shape: strong sensitivity to transition speed; for very slow
// transitions the sleep state cannot be used at all (power pegs at the
// always-on level); a leaky-but-fast sleep state can beat a
// deep-but-slow one.
#include <cstdio>

#include "bench_util.h"
#include "cases/sensitivity.h"
#include "dpm/optimizer.h"

using namespace dpm;
namespace sens = cases::sensitivity;

int main() {
  bench::banner("Figure 12(b) (Appendix B)",
                "power vs SP transition speed, horizon 1e5 slices");

  const std::vector<double> wake_probs{0.001, 0.003, 0.01, 0.03,
                                       0.1,   0.3,   1.0};

  std::printf("\n  %-26s", "series \\ wake prob");
  for (const double p : wake_probs) std::printf(" %8.3f", p);
  std::printf("\n");

  for (const double sleep_power : {2.0, 0.0}) {
    for (const bool loss_constrained : {true, false}) {
      std::printf("  sleep %.0fW, %-13s", sleep_power,
                  loss_constrained ? "loss<=0.02" : "queue<=0.3");
      for (const double p : wake_probs) {
        // The loss-dominated series uses a shorter-burst workload and a
        // deeper queue (flip 0.05, capacity 4): the queue then absorbs a
        // burst while the SP wakes, so losses — and hence power — hinge
        // directly on the wake speed.  The performance-dominated series
        // uses the Appendix B baseline (flip 0.01, capacity 2).
        const SystemModel m =
            loss_constrained
                ? sens::make_model({{"sleep", sleep_power, p}}, 0.05, 4)
                : sens::make_model({{"sleep", sleep_power, p}}, 0.01, 2);
        const PolicyOptimizer opt(m, sens::make_config(m, 1e5));
        OptimizationResult r =
            loss_constrained
                ? opt.minimize(metrics::power(m),
                               {{metrics::request_loss(m), 0.02, "loss"},
                                {metrics::queue_length(m), 2.0, "perf"}})
                : opt.minimize_power(/*max_avg_queue=*/0.3);
        if (r.feasible) {
          std::printf(" %8.4f", r.objective_per_step);
        } else {
          std::printf(" %8s", "infeas");
        }
      }
      std::printf("\n");
    }
  }

  bench::note("power falls toward faster transitions (right); for slow "
              "transitions the sleep state is effectively unusable; the "
              "2 W fast sleep beats the 0 W slow sleep (crossover)");
  return 0;
}
