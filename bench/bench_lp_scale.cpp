// LP-solver scaling: dense tableau vs. sparse revised simplex, plus
// crash-seeded vs. from-scratch cold solves, warm-started vs. cold
// Pareto sweeps, and bound-tightened dual restarts.
//
// Four experiments back the revised-simplex backend:
//   1. synthetic MDP policy LPs at n_states * n_commands in
//      {500, 2000, 8000, 20000, 50000} (the balance-equation structure
//      of LP2 with a handful of successors per state-action pair).
//      Each size is solved three ways — crash-seeded revised simplex
//      (a few modified-policy-iteration sweeps nominate the greedy
//      policy's occupation-measure columns, see dpm/crash.h), plain
//      cold revised simplex, and the dense tableau (capped) — same
//      statuses/objectives, wall-clock compared.  Assembly time,
//      constraint nonzeros, pivot counts, refactorization counts, the
//      update-vs-sweep cost split, hypersparsity and dense-block
//      telemetry are recorded so the sparse-pipeline story stays
//      machine-comparable across PRs.  The headline "revised" record
//      is the crash-seeded solve (what PolicyOptimizer runs at scale);
//      the no-crash solve is kept as its own record;
//   2. the disk-drive power/performance Pareto sweep (Fig. 6 protocol on
//      the Sec. VI disk model): per-point pivot counts of the
//      warm-started sweep() against independent cold solves;
//   3. bound-tightened warm restart: the largest synthetic LP with
//      loose per-variable upper bounds is solved once, every bound is
//      tightened 10%, and the saved basis warm-starts the re-solve —
//      the boxed dual simplex repairs the primal infeasibility in a
//      few dozen pivots where a cold solve replays thousands.
//
// `--smoke` (or DPMOPT_BENCH_SMOKE=1) shrinks every size so the bench
// runs in milliseconds under `ctest -L bench`; it also *asserts* that
// tiny instances keep the dense-block machinery off (block_sweeps must
// stay 0 below BasisFactorization::kBlockMinBasis — the n*na = 500
// small-size regression guard).
//
// `--tail-smoke` runs a single deterministic mid-size instance and
// prints one machine-parsable line (block telemetry + crash/cold pivot
// counts) for scripts/verify.sh --perf-smoke to gate on.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "bench_util.h"
#include "cases/disk_drive.h"
#include "dpm/crash.h"
#include "dpm/optimizer.h"
#include "lp/solver.h"
#include "markov/sparse_chain.h"

using namespace dpm;

namespace {

/// A synthetic discounted MDP: random controlled chain with `succ`
/// successors per (s, a), a per-pair "power" cost, and a per-pair
/// capacity metric.  The LP below is its balance-equation LP2; keeping
/// the chain around (instead of emitting constraints directly) is what
/// lets the crash heuristic run its value sweeps.
struct SyntheticMdp {
  markov::SparseControlledChain chain;
  std::vector<double> cost;    // n * na, the objective
  std::vector<double> metric;  // n * na, the kLe capacity row
};

SyntheticMdp synthetic_mdp(std::size_t n, std::size_t na, std::size_t succ,
                           std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::vector<double> cost(n * na), metric(n * na);
  std::vector<std::vector<markov::TransitionRow>> rows(
      na, std::vector<markov::TransitionRow>(n));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      cost[s * na + a] = 5.0 * u(gen);
      metric[s * na + a] = 3.0 * u(gen);
      markov::TransitionRow& row = rows[a][s];
      row.resize(succ);
      double total = 0.0;
      for (auto& [to, w] : row) {
        to = pick(gen);
        w = 0.05 + u(gen);
        total += w;
      }
      for (auto& [to, w] : row) w /= total;
    }
  }
  return {markov::SparseControlledChain(n, std::move(rows)), std::move(cost),
          std::move(metric)};
}

/// Balance equations sum_a x(j,a) - gamma sum_{s,a} P_a(s,j) x(s,a) =
/// p0_j plus one loose capacity row over `metric`.
lp::LpProblem assemble_lp(const SyntheticMdp& mdp, double gamma) {
  const std::size_t n = mdp.chain.num_states();
  const std::size_t na = mdp.chain.num_commands();
  lp::LpProblem p;
  for (const double c : mdp.cost) p.add_variable(c);

  std::vector<lp::Constraint> balance(n);
  for (std::size_t j = 0; j < n; ++j) {
    balance[j].sense = lp::Sense::kEq;
    balance[j].rhs = 1.0 / static_cast<double>(n);
  }
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      const std::size_t col = s * na + a;
      balance[s].terms.emplace_back(col, 1.0);
      for (const auto& [j, w] : mdp.chain.row(a, s)) {
        balance[j].terms.emplace_back(col, -gamma * w);
      }
    }
  }
  for (auto& c : balance) p.add_constraint(std::move(c));

  lp::Constraint cap;
  cap.sense = lp::Sense::kLe;
  cap.name = "metric";
  cap.terms.reserve(n * na);
  double max_metric = 0.0;
  for (std::size_t col = 0; col < n * na; ++col) {
    cap.terms.emplace_back(col, mdp.metric[col]);
    max_metric = std::max(max_metric, mdp.metric[col]);
  }
  cap.rhs = 0.8 * max_metric / (1.0 - gamma);
  p.add_constraint(std::move(cap));
  return p;
}

std::vector<std::size_t> crash_for(const SyntheticMdp& mdp, double gamma,
                                   std::size_t num_rows) {
  const std::size_t na = mdp.chain.num_commands();
  const std::vector<std::size_t> actions = greedy_crash_actions(
      mdp.chain,
      [&](std::size_t s, std::size_t a) { return mdp.cost[s * na + a]; },
      gamma);
  return crash_columns_for_lp(actions, na, num_rows);
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct SizeSpec {
  std::size_t n, na, succ;
};

/// `--tail-smoke`: one deterministic mid-size instance, solved crash
/// and cold, telemetry printed on a single greppable line.  Exits
/// nonzero on objective disagreement so verify.sh fails loudly.
int run_tail_smoke() {
  const double gamma = 0.999;
  const SyntheticMdp mdp = synthetic_mdp(1000, 8, 4, /*seed=*/17);
  const lp::LpProblem p = assemble_lp(mdp, gamma);

  lp::SimplexStats cold_stats;
  lp::RevisedSimplexOptions cold_opt;
  cold_opt.stats = &cold_stats;
  const lp::LpSolution cold = lp::solve_revised_simplex(p, cold_opt);

  const std::vector<std::size_t> crash_cols =
      crash_for(mdp, gamma, p.num_constraints());
  lp::SimplexStats crash_stats;
  lp::RevisedSimplexOptions crash_opt;
  crash_opt.stats = &crash_stats;
  crash_opt.crash_columns = &crash_cols;
  const lp::LpSolution crash = lp::solve_revised_simplex(p, crash_opt);

  // Tiny-instance guard: below kBlockMinBasis the dense block (and its
  // bookkeeping) must never engage.
  const SyntheticMdp tiny = synthetic_mdp(40, 2, 3, /*seed=*/17);
  lp::SimplexStats tiny_stats;
  lp::RevisedSimplexOptions tiny_opt;
  tiny_opt.stats = &tiny_stats;
  (void)lp::solve_revised_simplex(assemble_lp(tiny, gamma), tiny_opt);

  const double sweeps = static_cast<double>(cold_stats.sparse_sweeps +
                                            cold_stats.dense_sweeps);
  const double block_pct =
      sweeps > 0.0
          ? 100.0 * static_cast<double>(cold_stats.block_sweeps) / sweeps
          : 0.0;
  const bool objectives_match =
      cold.status == lp::LpStatus::kOptimal &&
      crash.status == lp::LpStatus::kOptimal &&
      std::abs(cold.objective - crash.objective) <=
          1e-7 * (1.0 + std::abs(cold.objective));
  std::printf(
      "tail-smoke: size=8000 cold_pivots=%zu crash_pivots=%zu "
      "crash_saved=%zu block_sweeps=%zu block_entries=%zu block_pct=%.1f "
      "tiny_block_sweeps=%zu objectives_match=%d\n",
      cold.iterations, crash.iterations, crash_stats.crash_pivots_saved,
      static_cast<std::size_t>(cold_stats.block_sweeps),
      static_cast<std::size_t>(cold_stats.block_entries), block_pct,
      static_cast<std::size_t>(tiny_stats.block_sweeps),
      objectives_match ? 1 : 0);
  if (!objectives_match) {
    std::fprintf(stderr,
                 "tail-smoke: crash/cold objective mismatch (%.12g vs %.12g)\n",
                 crash.objective, cold.objective);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--tail-smoke")) return run_tail_smoke();

  const bool smoke = bench::smoke_mode(argc, argv);
  bench::banner("LP scaling (revised simplex vs dense tableau)",
                "synthetic MDP balance-equation LPs; gamma = 0.999; "
                "crash-seeded vs cold solves; plus warm vs cold Pareto "
                "sweeps on the disk model");
  bench::JsonReport report("lp_scale", /*enabled=*/!smoke);

  const std::vector<SizeSpec> sizes =
      smoke ? std::vector<SizeSpec>{{40, 2, 3}}
            : std::vector<SizeSpec>{{125, 4, 4},
                                    {500, 4, 4},
                                    {1000, 8, 4},
                                    {2500, 8, 4},
                                    {6250, 8, 4}};
  // The dense tableau is O(rows x cols) per pivot: past this size it
  // contributes hours, not a comparison — the revised backend still
  // runs and reports its own cost split + hypersparsity telemetry.
  const std::size_t tableau_cap = 8000;
  const double gamma = 0.999;

  bench::section("solver scaling");
  std::printf("  %-10s %9s %8s %9s %8s %10s %7s %8s %8s %8s\n", "size n*na",
              "backend", "asm_ms", "wall_ms", "pivots", "objective", "refac",
              "refac_ms", "swp_ms", "upd_ms");
  for (const SizeSpec& spec : sizes) {
    const std::size_t nna = spec.n * spec.na;

    bench::WallTimer t_asm;
    const SyntheticMdp mdp = synthetic_mdp(spec.n, spec.na, spec.succ,
                                           /*seed=*/17);
    const lp::LpProblem p = assemble_lp(mdp, gamma);
    const double asm_ms = t_asm.elapsed_ms();
    std::size_t nnz = 0;
    for (const auto& c : p.constraints()) nnz += c.terms.size();

    // Crash-seeded solve: derive the policy-iteration seed, then solve.
    // Derivation is counted in the crash wall time — that is the
    // end-to-end price a cold PolicyOptimizer::minimize pays.
    bench::WallTimer t_crash;
    const std::vector<std::size_t> crash_cols =
        crash_for(mdp, gamma, p.num_constraints());
    const double derive_ms = t_crash.elapsed_ms();
    lp::SimplexStats crash_stats;
    lp::RevisedSimplexOptions crash_opt;
    crash_opt.stats = &crash_stats;
    crash_opt.crash_columns = &crash_cols;
    const lp::LpSolution crash = lp::solve_revised_simplex(p, crash_opt);
    const double crash_ms = t_crash.elapsed_ms();

    // Plain cold solve (no seed) — the across-PR comparable record and
    // the source of the sweep/update/hypersparsity telemetry.
    lp::SimplexStats stats;
    lp::RevisedSimplexOptions rev_opt;
    rev_opt.stats = &stats;
    bench::WallTimer t_rev;
    const lp::LpSolution rev = lp::solve_revised_simplex(p, rev_opt);
    const double rev_ms = t_rev.elapsed_ms();

    const bool run_tableau = nna <= tableau_cap;
    bench::WallTimer t_tab;
    const lp::LpSolution tab =
        run_tableau ? lp::solve_simplex(p) : lp::LpSolution{};
    const double tab_ms = t_tab.elapsed_ms();

    const double scaled_rev = rev.objective * (1.0 - gamma);
    const double scaled_crash = crash.objective * (1.0 - gamma);
    const double scaled_tab = tab.objective * (1.0 - gamma);
    std::printf("  %-10zu %9s %8.2f %9.2f %8zu %10.6f %7zu %8.2f %8.2f %8.2f\n",
                nna, "crash", asm_ms, crash_ms, crash.iterations, scaled_crash,
                crash_stats.refactorizations, crash_stats.refactor_ms,
                crash_stats.sweep_ms, crash_stats.update_ms);
    std::printf("  %-10zu %9s %8.2f %9.2f %8zu %10.6f %7zu %8.2f %8.2f %8.2f\n",
                nna, "cold", asm_ms, rev_ms, rev.iterations, scaled_rev,
                stats.refactorizations, stats.refactor_ms, stats.sweep_ms,
                stats.update_ms);
    std::printf("  %-10s %9s   seed derive %.1f ms, %zu seeded columns "
                "survive to optimality, %.2fx fewer pivots, %.2fx wall\n",
                "", "crash", derive_ms, crash_stats.crash_pivots_saved,
                static_cast<double>(rev.iterations) /
                    static_cast<double>(std::max<std::size_t>(
                        crash.iterations, 1)),
                rev_ms / std::max(crash_ms, 1e-9));
    if (run_tableau) {
      std::printf("  %-10zu %9s %8.2f %9.2f %8zu %10.6f\n", nna, "tableau",
                  asm_ms, tab_ms, tab.iterations, scaled_tab);
    } else {
      std::printf("  %-10zu %9s   (skipped above n*na=%zu)\n", nna, "tableau",
                  tableau_cap);
    }
    // The per-iteration cost split: triangular sweeps (applying the
    // factorization) vs maintaining it (FT updates + refactorizations).
    const double iters = static_cast<double>(std::max<std::size_t>(
        rev.iterations, 1));
    const double sweep_per_iter = stats.sweep_ms / iters;
    const double maint_per_iter = (stats.update_ms + stats.refactor_ms) / iters;
    if (run_tableau) {
      std::printf("  %-10s %9s %8.2fx   nnz %.1fk, per-iter: sweep %.1f us, "
                  "update+refactor %.1f us, ft/refac %zu/%zu\n",
                  "", "speedup", tab_ms / rev_ms,
                  static_cast<double>(nnz) / 1000.0, 1e3 * sweep_per_iter,
                  1e3 * maint_per_iter, stats.ft_updates,
                  stats.refactorizations);
    }
    // Hypersparsity telemetry: what fraction of the triangular sweeps
    // stayed on the Gilbert-Peierls reachability path, and the mean
    // vector entries touched per sweep (a dense sweep touches the full
    // basis dimension; sparse sweeps only their reach).  Dense-block
    // telemetry: how many sweeps routed their tail through the
    // contiguous block kernels, and what share of all touched entries
    // the block carried.
    const double total_sweeps = static_cast<double>(
        stats.sparse_sweeps + stats.dense_sweeps);
    const double sparse_frac =
        total_sweeps > 0.0 ? static_cast<double>(stats.sparse_sweeps) /
                                 total_sweeps
                           : 0.0;
    const double touched_per_sweep =
        total_sweeps > 0.0 ? static_cast<double>(stats.touched_entries) /
                                 total_sweeps
                           : 0.0;
    const double block_pct =
        total_sweeps > 0.0
            ? 100.0 * static_cast<double>(stats.block_sweeps) / total_sweeps
            : 0.0;
    std::printf("  %-10s %9s   sparse %zu / dense %zu sweeps (%.1f%% sparse), "
                "%.1f entries touched/sweep\n",
                "", "hypersp", static_cast<std::size_t>(stats.sparse_sweeps),
                static_cast<std::size_t>(stats.dense_sweeps),
                100.0 * sparse_frac, touched_per_sweep);
    std::printf("  %-10s %9s   %zu block sweeps (%.1f%% of all sweeps), "
                "%.1fM block nonzeros processed\n",
                "", "block", static_cast<std::size_t>(stats.block_sweeps),
                block_pct,
                static_cast<double>(stats.block_entries) / 1e6);
    if (smoke && stats.block_sweeps + crash_stats.block_sweeps != 0) {
      std::fprintf(stderr,
                   "FAIL: dense block engaged on a tiny instance "
                   "(block_sweeps=%zu) — the small-size gate regressed\n",
                   static_cast<std::size_t>(stats.block_sweeps +
                                            crash_stats.block_sweeps));
      return 1;
    }
    if (crash.status != rev.status ||
        std::abs(crash.objective - rev.objective) >
            1e-7 * (1.0 + std::abs(rev.objective))) {
      std::fprintf(stderr,
                   "FAIL: crash/cold disagreement at n*na=%zu "
                   "(%.12g vs %.12g)\n",
                   nna, crash.objective, rev.objective);
      return 1;
    }
    // Headline record: the crash-seeded solve (what the optimizer runs
    // at scale).  The plain cold solve keeps its own record.
    report.add("revised n*na=" + std::to_string(nna), crash_ms,
               crash.iterations, scaled_crash);
    report.add("nocrash revised n*na=" + std::to_string(nna), rev_ms,
               rev.iterations, scaled_rev);
    report.add("crash-derive n*na=" + std::to_string(nna), derive_ms,
               crash_stats.crash_pivots_saved, scaled_crash);
    report.add("tableau n*na=" + std::to_string(nna), tab_ms, tab.iterations,
               scaled_tab);
    report.add("assembly n*na=" + std::to_string(nna), asm_ms, nnz,
               static_cast<double>(nnz));
    report.add("refactor n*na=" + std::to_string(nna), stats.refactor_ms,
               stats.refactorizations,
               stats.refactor_ms / std::max(rev_ms, 1e-9));
    report.add("sweep n*na=" + std::to_string(nna), stats.sweep_ms,
               rev.iterations, sweep_per_iter);
    report.add("ft-update n*na=" + std::to_string(nna), stats.update_ms,
               stats.ft_updates, maint_per_iter);
    std::printf("  %-10s %9s   %zu rows / %zu cols removed before the solve\n",
                "", "presolve", stats.presolve_rows_removed,
                stats.presolve_cols_removed);
    report.add("hypersparse n*na=" + std::to_string(nna),
               100.0 * sparse_frac,
               static_cast<std::size_t>(stats.sparse_sweeps),
               touched_per_sweep);
    report.add("dense-block n*na=" + std::to_string(nna), block_pct,
               static_cast<std::size_t>(stats.block_sweeps),
               static_cast<double>(stats.block_entries));
    report.add("presolve n*na=" + std::to_string(nna),
               static_cast<double>(stats.presolve_rows_removed),
               stats.presolve_cols_removed,
               static_cast<double>(stats.presolve_rows_removed +
                                   stats.presolve_cols_removed));
    report.add("end-to-end revised n*na=" + std::to_string(nna),
               asm_ms + crash_ms, crash.iterations, scaled_crash);
  }

  bench::section("warm-started Pareto sweep (disk model, Fig. 6 protocol)");
  const SystemModel m = cases::DiskDrive::make_model();
  const PolicyOptimizer opt(m, cases::DiskDrive::make_config(m, 0.999));
  const std::vector<double> queue_bounds =
      smoke ? std::vector<double>{0.5, 1.0, 2.0}
            : std::vector<double>{0.3, 0.4, 0.5, 0.6, 0.8,
                                  1.0, 1.2, 1.5, 2.0, 2.5};

  bench::WallTimer t_warm;
  const auto warm_curve = opt.sweep(
      metrics::power(m), metrics::queue_length(m), "queue", queue_bounds);
  const double warm_ms = t_warm.elapsed_ms();

  bench::WallTimer t_cold;
  std::vector<std::size_t> cold_iters;
  std::size_t cold_total = 0;
  double cold_last_objective = 0.0;
  for (const double bound : queue_bounds) {
    const OptimizationResult r = opt.minimize(
        metrics::power(m), {{metrics::queue_length(m), bound, "queue"}});
    cold_iters.push_back(r.lp_iterations);
    cold_total += r.lp_iterations;
    if (r.feasible) cold_last_objective = r.objective_per_step;
  }
  const double cold_ms = t_cold.elapsed_ms();

  std::printf("  %-10s", "queue<=");
  for (const double b : queue_bounds) std::printf(" %7.2f", b);
  std::printf("\n  %-10s", "warm its");
  std::size_t warm_total = 0;
  for (const auto& pt : warm_curve) {
    std::printf(" %7zu", pt.lp_iterations);
    warm_total += pt.lp_iterations;
  }
  std::printf("\n  %-10s", "cold its");
  for (const std::size_t it : cold_iters) std::printf(" %7zu", it);
  std::printf("\n");
  bench::fact("warm sweep total pivots", static_cast<double>(warm_total));
  bench::fact("cold sweep total pivots", static_cast<double>(cold_total));
  bench::fact("warm sweep wall_ms", warm_ms);
  bench::fact("cold sweep wall_ms", cold_ms);
  report.add("sweep warm (disk)", warm_ms, warm_total,
             warm_curve.back().objective);
  report.add("sweep cold (disk)", cold_ms, cold_total, cold_last_objective);

  bench::section("bound-tightened warm restart (boxed dual simplex)");
  {
    // Loose per-variable caps, solve, tighten every cap 10%, re-solve
    // warm from the saved basis.  The tightening leaves the basis dual
    // feasible (costs unchanged) but primal infeasible wherever a
    // basic or at-bound variable now violates its cap — exactly the
    // boxed dual simplex's job.
    const SizeSpec spec = smoke ? SizeSpec{40, 2, 3} : SizeSpec{1000, 8, 4};
    const std::size_t nna = spec.n * spec.na;
    lp::LpProblem p =
        assemble_lp(synthetic_mdp(spec.n, spec.na, spec.succ, /*seed=*/17),
                    gamma);
    const double loose =
        2.0 / ((1.0 - gamma) * static_cast<double>(spec.n));
    for (std::size_t j = 0; j < nna; ++j) p.set_upper_bound(j, loose);

    lp::SimplexBasis basis;
    bench::WallTimer t_loose;
    const lp::LpSolution sl = lp::solve_revised_simplex(p, {}, nullptr, &basis);
    const double loose_ms = t_loose.elapsed_ms();

    for (std::size_t j = 0; j < nna; ++j) p.set_upper_bound(j, 0.9 * loose);
    lp::SimplexStats warm_stats;
    lp::RevisedSimplexOptions warm_opt;
    warm_opt.stats = &warm_stats;
    bench::WallTimer t_warm2;
    const lp::LpSolution sw = lp::solve_revised_simplex(p, warm_opt, &basis);
    const double warm2_ms = t_warm2.elapsed_ms();

    bench::WallTimer t_cold2;
    const lp::LpSolution sc = lp::solve_revised_simplex(p);
    const double cold2_ms = t_cold2.elapsed_ms();

    std::printf("  loose solve: %zu pivots (%.1f ms); after 10%% tightening: "
                "warm %zu pivots (%zu dual, %zu flips, %.1f ms) vs cold %zu "
                "pivots (%.1f ms)\n",
                sl.iterations, loose_ms, sw.iterations,
                warm_stats.dual_iterations, warm_stats.bound_flips, warm2_ms,
                sc.iterations, cold2_ms);
    bench::fact("objective agreement (warm - cold)",
                (sw.objective - sc.objective) * (1.0 - gamma));
    report.add("tighten warm n*na=" + std::to_string(nna), warm2_ms,
               sw.iterations, sw.objective * (1.0 - gamma));
    report.add("tighten cold n*na=" + std::to_string(nna), cold2_ms,
               sc.iterations, sc.objective * (1.0 - gamma));
  }

  bench::section("criteria");
  bench::note("crash-seeded solves should match the cold objective exactly "
              "and spend a small fraction of the cold pivot count on these "
              "structured models (the seed is the greedy policy's "
              "occupation-measure basis)");
  bench::note("revised simplex should be >= 3x faster than the tableau at "
              "n*na = 8000, and >= 1.5x end-to-end (assembly + solve) over "
              "the PR 1 baseline (1953 ms solve at n*na = 8000)");
  bench::note("per-iteration factorization cost at n*na = 8000: the FT "
              "update grows the transform ~3x slower per pivot than the "
              "eta file (PR 2 baseline reached its 2x-fill trigger every "
              "~70 pivots / 30 refactorizations; FT stays within half "
              "that budget for 80+ pivots / ~26 refactorizations), with "
              "per-iter sweep cost at or below the eta baseline on these "
              "adversarial expander bases and well below it on "
              "structured models");
  bench::note("warm-started sweep should spend fewer pivots per point than "
              "cold solves after the first bound");
  bench::note("bound-tightened warm restart should finish in an order of "
              "magnitude fewer pivots than the cold re-solve, with equal "
              "objectives (the boxed dual phase)");
  return 0;
}
