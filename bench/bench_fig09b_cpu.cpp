// Fig. 9(b): SA-1100 CPU — optimum stochastic control vs timeouts.
//
// Solid line: the Pareto curve of minimum power vs the penalty
// constraint Pr{SR active while SP sleeping}.  Dashed line: the tradeoff
// spanned by timeout-based shutdown, measured by simulation.  Expected
// shape: the optimal curve dominates the timeout curve even though the
// only controllable decision is when to shut down — timeouts waste
// power while waiting for the timer to expire.
#include <cstdio>

#include "bench_util.h"
#include "cases/cpu_sa1100.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"

using namespace dpm;
using cases::CpuSa1100;

int main() {
  bench::banner("Figure 9(b) (Sec. VI-C)",
                "ARM SA-1100 CPU, tau = 50 ms, reactive wake-up, "
                "penalty = Pr{request while sleeping}");

  const SystemModel m = CpuSa1100::make_model(/*seed=*/11);
  const double gamma = 0.9999;
  const PolicyOptimizer opt(m, CpuSa1100::make_config(m, gamma));
  const StateActionMetric pen = CpuSa1100::penalty(m);

  bench::section("workload (synthetic interactive-editing trace)");
  bench::fact("SR P[idle->active]", m.requester().chain().transition(0, 1));
  bench::fact("SR P[active->active]", m.requester().chain().transition(1, 1));

  bench::section("optimum stochastic control (solid line)");
  std::printf("  %-14s %12s %12s\n", "penalty<=", "power[W]", "penalty");
  for (const double bound :
       {0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.04, 0.06}) {
    const OptimizationResult r =
        opt.minimize(metrics::power(m), {{pen, bound, "penalty"}});
    if (!r.feasible) {
      std::printf("  %-14.4f %12s\n", bound, "infeasible");
      continue;
    }
    std::printf("  %-14.4f %12.4f %12.4f\n", bound, r.objective_per_step,
                r.constraint_per_step[0]);
  }

  bench::section("timeout heuristic (dashed line), simulated");
  std::printf("  %-14s %12s %12s\n", "timeout", "power[W]", "penalty");
  sim::Simulator simulator(m);
  for (const std::size_t timeout : {0ul, 2ul, 5ul, 10ul, 20ul, 50ul, 100ul}) {
    sim::TimeoutController ctl(timeout, CpuSa1100::kShutdown,
                               CpuSa1100::kRun);
    sim::SimulationConfig cfg;
    cfg.slices = 400000;
    cfg.warmup = 2000;
    cfg.initial_state = {CpuSa1100::kActive, 0, 0};
    cfg.seed = 9;
    const sim::SimulationResult s = simulator.run(ctl, cfg);
    std::printf("  %-14zu %12.4f %12.4f\n", timeout, s.avg_power,
                s.metric(pen));
  }

  bench::note("at every penalty level the optimal curve needs less power "
              "than the timeout achieving that penalty");
  return 0;
}
