// Table I + Fig. 8(b): the disk-drive case study.
//
// Prints Table I, then reproduces the Fig. 8(b) comparison:
//   * the optimal power/performance tradeoff curve (solid line),
//   * simulation of the optimal policies — Markov-driven and driven by
//     the raw request trace the SR was extracted from (the "circles"),
//   * heuristics: greedy shutdown into each inactive state (upward
//     triangles), timeout policies (downward triangles), and randomized
//     timeout policies (boxes).
// Expected shape: heuristics lie on or above the optimal curve; the
// simulated points sit close to it (faithful SR model).
#include <cstdio>

#include "bench_util.h"
#include "cases/disk_drive.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"

using namespace dpm;
using cases::DiskDrive;

int main() {
  bench::banner("Table I + Figure 8(b) (Sec. VI-A)",
                "IBM Travelstar VP disk drive, 66-state model, tau = 1 ms");

  bench::section("Table I (datasheet)");
  std::printf("  %-10s %14s %10s\n", "state", "T(->active)", "power");
  for (const auto& row : DiskDrive::table_i()) {
    if (row.wake_time_ms == 0.0) {
      std::printf("  %-10s %14s %9.1fW\n", row.name, "-", row.power_w);
    } else if (row.wake_time_ms >= 1000.0) {
      std::printf("  %-10s %13.1fs %9.1fW\n", row.name,
                  row.wake_time_ms / 1000.0, row.power_w);
    } else {
      std::printf("  %-10s %12.1fms %9.1fW\n", row.name, row.wake_time_ms,
                  row.power_w);
    }
  }

  const SystemModel m = DiskDrive::make_model(/*seed=*/42);
  // A 1e3-slice expected session keeps every run in this harness fast
  // while preserving the figure's shape; the paper uses 1e6 slices.
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, DiskDrive::make_config(m, gamma));
  const double loss_bound = 0.05;

  bench::section("workload (synthetic bursty file-access trace)");
  const ServiceRequester& sr = m.requester();
  bench::fact("SR P[idle->busy]", sr.chain().transition(0, 1));
  bench::fact("SR P[busy->busy]", sr.chain().transition(1, 1));
  bench::fact("offered load", sr.mean_arrival_rate());

  bench::section(
      "optimal tradeoff curve (min power s.t. E[queue] <= q, loss <= 0.05)");
  const std::vector<double> bounds{0.15, 0.2, 0.3, 0.4, 0.6, 0.9, 1.3};
  std::printf("  %-10s %12s %12s %12s\n", "q bound", "power[W]", "queue",
              "sim power");
  sim::Simulator simulator(m);
  for (const double q : bounds) {
    const OptimizationResult r = opt.minimize_power(q, loss_bound);
    if (!r.feasible) {
      std::printf("  %-10.3f %12s\n", q, "infeasible");
      continue;
    }
    // Session-restart Monte Carlo of the optimal policy ("circles").
    sim::PolicyController ctl(m, *r.policy);
    sim::SimulationConfig cfg;
    cfg.slices = 400000;
    cfg.initial_state = {DiskDrive::kActive, 0, 0};
    cfg.session_restart_prob = 1.0 - gamma;
    cfg.seed = 7;
    const sim::SimulationResult s = simulator.run(ctl, cfg);
    std::printf("  %-10.3f %12.4f %12.4f %12.4f\n", q, r.objective_per_step,
                r.constraint_per_step[0], s.avg_power);
  }

  bench::section("trace-driven simulation of one optimal policy (circle)");
  {
    const OptimizationResult r = opt.minimize_power(0.4, loss_bound);
    if (r.feasible) {
      const std::vector<unsigned> stream = DiskDrive::make_trace(400000, 42);
      sim::PolicyController ctl(m, *r.policy);
      sim::SimulationConfig cfg;
      cfg.slices = stream.size();
      cfg.initial_state = {DiskDrive::kActive, 0, 0};
      cfg.session_restart_prob = 1.0 - gamma;
      cfg.seed = 8;
      const sim::SimulationResult s = simulator.run_trace(ctl, stream, cfg);
      bench::fact("optimizer expected power [W]", r.objective_per_step);
      bench::fact("trace-driven simulated power [W]", s.avg_power);
      bench::fact("trace-driven simulated queue", s.avg_queue_length);
    }
  }

  bench::section("greedy heuristics (upward triangles): exact evaluation");
  std::printf("  %-24s %12s %12s %12s\n", "policy", "power[W]", "queue",
              "loss");
  const struct {
    const char* name;
    std::size_t sleep_cmd;
  } greedy[] = {
      {"greedy -> idle", DiskDrive::kGoIdle},
      {"greedy -> LPidle", DiskDrive::kGoLpIdle},
      {"greedy -> standby", DiskDrive::kGoStandby},
      {"greedy -> sleep", DiskDrive::kGoSleep},
  };
  const linalg::Vector& p0 = opt.config().initial_distribution;
  for (const auto& g : greedy) {
    const Policy pol = cases::eager_policy(m, g.sleep_cmd,
                                           DiskDrive::kGoActive);
    const PolicyEvaluation ev(m, pol, gamma, p0);
    std::printf("  %-24s %12.4f %12.4f %12.4f\n", g.name,
                ev.per_step(metrics::power(m)),
                ev.per_step(metrics::queue_length(m)),
                ev.per_step(metrics::request_loss(m)));
  }

  bench::section("timeout heuristics (downward triangles): simulation");
  std::printf("  %-26s %12s %12s %12s\n", "policy", "power[W]", "queue",
              "loss");
  const struct {
    const char* target;
    std::size_t cmd;
    std::size_t timeouts[3];
  } families[] = {
      {"LPidle", DiskDrive::kGoLpIdle, {0, 50, 500}},
      {"standby", DiskDrive::kGoStandby, {200, 2000, 10000}},
      {"sleep", DiskDrive::kGoSleep, {2000, 10000, 40000}},
  };
  for (const auto& fam : families) {
    for (const std::size_t timeout : fam.timeouts) {
      sim::TimeoutController ctl(timeout, fam.cmd, DiskDrive::kGoActive);
      sim::SimulationConfig cfg;
      cfg.slices = 800000;
      cfg.initial_state = {DiskDrive::kActive, 0, 0};
      // Same stopping-time measure as the optimizer, so the optimal
      // curve is a true lower bound for these points.
      cfg.session_restart_prob = 1.0 - gamma;
      cfg.seed = 11;
      const sim::SimulationResult s = simulator.run(ctl, cfg);
      std::printf("  timeout %-8zu->%-8s %12.4f %12.4f %12.4f\n", timeout,
                  fam.target, s.avg_power, s.avg_queue_length,
                  s.loss_state_rate);
    }
  }

  bench::section("randomized timeout heuristics (boxes): simulation");
  {
    sim::RandomizedTimeoutController ctl(
        {{50, DiskDrive::kGoLpIdle, 0.5},
         {2000, DiskDrive::kGoStandby, 0.3},
         {10000, DiskDrive::kGoSleep, 0.2}},
        DiskDrive::kGoActive);
    sim::SimulationConfig cfg;
    cfg.slices = 400000;
    cfg.initial_state = {DiskDrive::kActive, 0, 0};
    cfg.session_restart_prob = 1.0 - gamma;
    cfg.seed = 12;
    const sim::SimulationResult s = simulator.run(ctl, cfg);
    std::printf("  %-24s %12.4f %12.4f %12.4f\n", "randomized mix",
                s.avg_power, s.avg_queue_length, s.loss_state_rate);
  }

  bench::note("optimal curve should lower-bound all heuristic points at "
              "matching performance");
  return 0;
}
