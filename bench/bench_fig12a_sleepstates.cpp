// Fig. 12(a): sensitivity to the set of available sleep states.
//
// Six SP structures built from the standard sleep states (sleep1 =
// baseline 2 W/instant ... sleep4 = 0 W/1000-slice wake), optimized for
// minimum power under a tight and a loose performance constraint.
// Expected shape: more/deeper sleep states reduce power with diminishing
// returns; deep states help less when the constraint is tight; the
// {active, sleep4} system beats the baseline {active, sleep1}.
#include <cstdio>

#include "bench_util.h"
#include "cases/sensitivity.h"
#include "dpm/optimizer.h"

using namespace dpm;
namespace sens = cases::sensitivity;

int main() {
  bench::banner("Figure 12(a) (Appendix B)",
                "power vs available sleep states, horizon 1e5 slices, "
                "baseline SR (flip 0.01), queue capacity 2");

  const auto& all = sens::standard_sleep_states();
  struct Structure {
    const char* name;
    std::vector<std::size_t> pick;  // indices into standard_sleep_states
  };
  const Structure structures[] = {
      {"{s1}           (baseline)", {0}},
      {"{s4}", {3}},
      {"{s1,s2}", {0, 1}},
      {"{s2,s3}", {1, 2}},
      {"{s1,s2,s3}", {0, 1, 2}},
      {"{s1,s2,s3,s4}", {0, 1, 2, 3}},
  };

  std::printf("\n  %-28s %16s %16s\n", "sleep states",
              "tight (q<=0.05)", "loose (q<=0.5)");
  for (const Structure& st : structures) {
    std::vector<sens::SleepStateSpec> specs;
    for (const std::size_t i : st.pick) specs.push_back(all[i]);
    const SystemModel m = sens::make_model(specs, 0.01, 2);
    const PolicyOptimizer opt(m, sens::make_config(m, 1e5));
    std::printf("  %-28s", st.name);
    for (const double q : {0.05, 0.5}) {
      const OptimizationResult r = opt.minimize_power(q);
      if (r.feasible) {
        std::printf(" %16.4f", r.objective_per_step);
      } else {
        std::printf(" %16s", "infeasible");
      }
    }
    std::printf("\n");
  }

  bench::note("deeper/more sleep states lower power; gains shrink under "
              "the tight constraint; {s4} alone beats the baseline {s1}");
  return 0;
}
