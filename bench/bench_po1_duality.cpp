// Appendix A completeness: PO1 (LP3, performance minimization under a
// power budget) and its equivalence with PO2 (LP4).
//
// The paper proves the two problems trace the same Pareto frontier:
// feeding LP4's optimal power back into LP3 as the budget recovers the
// original performance bound.  This harness walks the frontier both
// ways on the running example and on the disk drive.
#include <cstdio>

#include "bench_util.h"
#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "dpm/optimizer.h"

using namespace dpm;

namespace {

void round_trip(const char* name, const SystemModel& m,
                const PolicyOptimizer& opt,
                const std::vector<double>& queue_bounds,
                bench::JsonReport& report) {
  bench::section(name);
  bench::WallTimer timer;
  std::size_t lp_iterations = 0;
  double last_power = 0.0;
  std::printf("  %-12s %14s %18s %12s\n", "queue bound", "LP4 power[W]",
              "LP3 queue @budget", "round-trip?");
  for (const double q : queue_bounds) {
    const OptimizationResult lp4 = opt.minimize_power(q);
    if (!lp4.feasible) {
      std::printf("  %-12.3f %14s\n", q, "infeasible");
      continue;
    }
    const OptimizationResult lp3 =
        opt.minimize_penalty(lp4.objective_per_step + 1e-9);
    const bool ok =
        lp3.feasible && std::abs(lp3.objective_per_step - q) < 1e-5;
    lp_iterations += lp4.lp_iterations + lp3.lp_iterations;
    last_power = lp4.objective_per_step;
    std::printf("  %-12.3f %14.5f %18.5f %12s\n", q,
                lp4.objective_per_step,
                lp3.feasible ? lp3.objective_per_step : -1.0,
                ok ? "yes" : "NO");
  }
  report.add(name, timer.elapsed_ms(), lp_iterations, last_power);
  (void)m;
}

}  // namespace

int main() {
  bench::banner("PO1 <-> PO2 duality (Appendix A, LP3 vs LP4)",
                "LP4's optimal power, used as LP3's power budget, "
                "recovers the original performance bound");

  bench::JsonReport report("po1_duality");
  {
    const SystemModel m = cases::ExampleSystem::make_model();
    const PolicyOptimizer opt(m, cases::ExampleSystem::make_config(m));
    round_trip("running example (gamma = 0.99999)", m, opt,
               {0.25, 0.3, 0.35, 0.4, 0.45, 0.5}, report);
  }
  {
    const SystemModel m = cases::DiskDrive::make_model();
    const PolicyOptimizer opt(m, cases::DiskDrive::make_config(m, 0.999));
    round_trip("disk drive (gamma = 0.999)", m, opt,
               {0.15, 0.2, 0.3, 0.4}, report);
  }

  bench::note("every feasible point round-trips: the two constrained "
              "formulations are numerically as well as theoretically "
              "equivalent");
  return 0;
}
