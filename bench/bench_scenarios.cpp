// bench_scenarios: the one experiment multiplexer.
//
// Every paper figure, ablation, and extension is a registered Scenario
// (src/scenario/); this driver lists, filters, and executes them on the
// parallel ExperimentRunner.  Replaces the former per-figure binaries
// (bench_fig06_pareto ... bench_average_cost).
//
//   bench_scenarios --list                 # what is registered
//   bench_scenarios                        # run everything, --jobs 1
//   bench_scenarios --jobs 8               # saturate the machine
//   bench_scenarios --filter fig1          # substring selection
//   bench_scenarios --exact fig08_disk     # exact-name selection
//   bench_scenarios --smoke                # tiny grids (ctest smoke)
//   bench_scenarios --telemetry            # + hypersparsity odometer line
//   bench_scenarios --list --expect a,b,c  # registry drift gate (ctest)
//   bench_scenarios --cache                # content-addressed result
//                                          # cache: replay unchanged
//                                          # units, execute the rest
//   bench_scenarios --cache-dir D          # cache location (default
//                                          # .scenario_cache)
//   bench_scenarios --no-cache             # force the cache off (wins
//                                          # over --cache and the
//                                          # DPMOPT_SCENARIO_CACHE env)
//   bench_scenarios --baseline-out DIR     # write <DIR>/<name>.json
//                                          # baselines after the run
//   bench_scenarios --compare PATH         # regression mode: diff this
//                                          # run against baseline JSON
//                                          # (a file, or a directory of
//                                          # <name>.json) under each
//                                          # scenario's declared
//                                          # tolerances; nonzero exit
//                                          # on any mismatch
//   bench_scenarios --fault-inject SPEC    # arm one fault per unit:
//                                          # SITE[:WINDOW[:COUNT]], e.g.
//                                          # lu-factorize, ftran:8,
//                                          # deadline:4:2 (sites in
//                                          # docs/robustness.md)
//   bench_scenarios --unit-deadline-ms X   # cooperative per-unit
//                                          # wall-clock deadline
//   bench_scenarios --unit-retries N       # re-run a failed unit up to
//                                          # N more times
//   bench_scenarios --retry-backoff-ms X   # sleep attempt*X ms between
//                                          # retry attempts
//
// Determinism contract: all randomness derives from (scenario name,
// unit index), and results are assembled in unit order, so stdout and
// the emitted BENCH_<scenario>.json files are byte-identical for any
// --jobs value — and for any mix of cached and executed units.  Full
// runs write JSON; --smoke runs never overwrite benchmark-grade
// records.  Exit status: 1 on shape-check or --compare failures, 2 on
// usage errors (including an unknown --exact name, which suggests
// near-miss registered names).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "lp/revised_simplex.h"
#include "robust/fault_injection.h"
#include "robust/probe.h"
#include "robust/supervisor.h"
#include "scenario/compare.h"
#include "scenario/json.h"
#include "scenario/registry.h"
#include "scenario/runner.h"

namespace {

using dpm::scenario::Scenario;

struct CliOptions {
  bool list = false;
  bool smoke = false;
  bool quiet = false;
  std::size_t jobs = 1;
  std::vector<std::string> filters;  // substring matches, OR-ed
  std::vector<std::string> exact;    // exact names, OR-ed
  std::string expect;                // comma-separated registry gate
  bool cache = false;
  bool no_cache = false;             // wins over --cache and the env
  std::string cache_dir = ".scenario_cache";
  std::string compare_path;          // --compare PATH (empty = off)
  std::string baseline_out;          // --baseline-out DIR (empty = off)
  bool telemetry = false;            // print the hypersparsity odometer
  std::optional<dpm::robust::FaultSpec> fault;  // --fault-inject SPEC
  double unit_deadline_ms = 0.0;     // --unit-deadline-ms (0 = none)
  std::size_t unit_retries = 0;      // --unit-retries
  double retry_backoff_ms = 0.0;     // --retry-backoff-ms
};

bool parse_args(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_scenarios: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--telemetry") {
      opt.telemetry = true;
    } else if (arg == "--cache") {
      opt.cache = true;
    } else if (arg == "--no-cache") {
      opt.no_cache = true;
    } else if (arg == "--cache-dir") {
      const char* v = next("--cache-dir");
      if (v == nullptr) return false;
      opt.cache_dir = v;
    } else if (arg == "--compare") {
      const char* v = next("--compare");
      if (v == nullptr) return false;
      opt.compare_path = v;
    } else if (arg == "--baseline-out") {
      const char* v = next("--baseline-out");
      if (v == nullptr) return false;
      opt.baseline_out = v;
    } else if (arg == "--fault-inject") {
      const char* v = next("--fault-inject");
      if (v == nullptr) return false;
      opt.fault = dpm::robust::parse_fault_spec(v);
      if (!opt.fault.has_value()) {
        std::fprintf(stderr,
                     "bench_scenarios: bad fault spec '%s' (want "
                     "SITE[:WINDOW[:COUNT]]; sites: lu-factorize, "
                     "ft-update, ftran, btran, warm-basis, cholesky, "
                     "cache-line, deadline)\n",
                     v);
        return false;
      }
    } else if (arg == "--unit-deadline-ms") {
      const char* v = next("--unit-deadline-ms");
      if (v == nullptr) return false;
      opt.unit_deadline_ms = std::strtod(v, nullptr);
    } else if (arg == "--unit-retries") {
      const char* v = next("--unit-retries");
      if (v == nullptr) return false;
      opt.unit_retries = static_cast<std::size_t>(
          std::strtoul(v, nullptr, 10));
    } else if (arg == "--retry-backoff-ms") {
      const char* v = next("--retry-backoff-ms");
      if (v == nullptr) return false;
      opt.retry_backoff_ms = std::strtod(v, nullptr);
    } else if (arg == "--jobs" || arg == "-j") {
      const char* v = next("--jobs");
      if (v == nullptr) return false;
      opt.jobs = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--filter") {
      const char* v = next("--filter");
      if (v == nullptr) return false;
      opt.filters.emplace_back(v);
    } else if (arg == "--exact") {
      const char* v = next("--exact");
      if (v == nullptr) return false;
      opt.exact.emplace_back(v);
    } else if (arg == "--expect") {
      const char* v = next("--expect");
      if (v == nullptr) return false;
      opt.expect = v;
    } else {
      std::fprintf(stderr, "bench_scenarios: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  // The ctest smoke environment variable mirrors the historical
  // per-bench behaviour (bench_util.h).
  if (const char* env = std::getenv("DPMOPT_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    opt.smoke = true;
  }
  // Opt into caching per environment (CI images, developer shells);
  // --no-cache wins over both the env and an explicit --cache.
  if (const char* env = std::getenv("DPMOPT_SCENARIO_CACHE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    opt.cache = true;
  }
  if (opt.no_cache) opt.cache = false;
  return true;
}

bool selected(const Scenario& sc, const CliOptions& opt) {
  if (opt.filters.empty() && opt.exact.empty()) return true;
  for (const std::string& e : opt.exact) {
    if (sc.name == e) return true;
  }
  for (const std::string& f : opt.filters) {
    if (sc.name.find(f) != std::string::npos) return true;
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',' || c == ';') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// Unknown --exact names are usage errors (exit 2), not silent empty
/// runs: print the near misses (edit distance and substring hits) so a
/// typo costs one retry, then the full registry.
bool validate_exact_names(const CliOptions& opt) {
  bool ok = true;
  for (const std::string& name : opt.exact) {
    if (dpm::scenario::find(name) != nullptr) continue;
    ok = false;
    std::vector<std::pair<std::size_t, std::string>> ranked;
    for (const Scenario& sc : dpm::scenario::all()) {
      std::size_t d = edit_distance(name, sc.name);
      if (sc.name.find(name) != std::string::npos ||
          name.find(sc.name) != std::string::npos) {
        d = std::min<std::size_t>(d, 2);  // substring hits rank high
      }
      ranked.emplace_back(d, sc.name);
    }
    std::sort(ranked.begin(), ranked.end());
    std::string suggestions;
    for (const auto& [d, candidate] : ranked) {
      if (d > std::max<std::size_t>(3, name.size() / 3)) break;
      if (suggestions.size() >= 3 * 24) break;
      if (!suggestions.empty()) suggestions += ", ";
      suggestions += candidate;
    }
    std::fprintf(stderr, "bench_scenarios: unknown scenario '%s'",
                 name.c_str());
    if (!suggestions.empty()) {
      std::fprintf(stderr, " — did you mean: %s?", suggestions.c_str());
    }
    std::fprintf(stderr, "\n");
  }
  if (!ok) {
    std::fprintf(stderr,
                 "bench_scenarios: run --list for the registered names\n");
  }
  return ok;
}

/// Registry drift gate: the build system registers one smoke test per
/// scenario from a literal list; this check fails the suite when the
/// two go out of sync instead of silently dropping coverage.
int check_expected(const std::string& csv) {
  const std::vector<std::string> expected = split_csv(csv);
  int mismatches = 0;
  for (const std::string& name : expected) {
    if (dpm::scenario::find(name) == nullptr) {
      std::fprintf(stderr,
                   "EXPECTED scenario '%s' is not registered "
                   "(update register_builtin or the CMake list)\n",
                   name.c_str());
      ++mismatches;
    }
  }
  for (const Scenario& sc : dpm::scenario::all()) {
    bool found = false;
    for (const std::string& name : expected) {
      if (name == sc.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "REGISTERED scenario '%s' is missing from the CMake "
                   "DPMOPT_SCENARIOS list (no smoke test will run it)\n",
                   sc.name.c_str());
      ++mismatches;
    }
  }
  return mismatches;
}

/// Resolves the baseline file for one scenario under --compare PATH:
/// a directory looks for <PATH>/<name>.json, then
/// <PATH>/BENCH_<name>.json; a plain file is the baseline itself (only
/// meaningful when a single scenario was selected — enforced by the
/// caller).  Empty return = not found.
std::string baseline_file_for(const std::string& compare_path,
                              const std::string& scenario_name) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(compare_path, ec)) {
    const fs::path dir(compare_path);
    for (const std::string candidate :
         {scenario_name + ".json", "BENCH_" + scenario_name + ".json"}) {
      if (fs::exists(dir / candidate, ec)) return (dir / candidate).string();
    }
    return {};
  }
  return fs::exists(compare_path, ec) ? compare_path : std::string{};
}

/// Runs the comparator for every executed scenario; returns the number
/// of scenarios with mismatches (missing baselines count).
std::size_t compare_results(
    const std::vector<dpm::scenario::ScenarioRunResult>& results,
    const CliOptions& opt) {
  std::size_t bad = 0;
  for (const auto& r : results) {
    const Scenario* sc = dpm::scenario::find(r.name);
    const std::string file = baseline_file_for(opt.compare_path, r.name);
    if (sc == nullptr || file.empty()) {
      std::fprintf(stderr,
                   "compare %-22s FAIL: no baseline found under '%s' "
                   "(expected %s.json)\n",
                   r.name.c_str(), opt.compare_path.c_str(), r.name.c_str());
      ++bad;
      continue;
    }
    std::ifstream in(file);
    std::ostringstream text;
    text << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "compare %-22s FAIL: cannot read '%s'\n",
                   r.name.c_str(), file.c_str());
      ++bad;
      continue;
    }
    try {
      std::string bench_name;
      const std::vector<dpm::scenario::Record> baseline =
          dpm::scenario::parse_baseline(text.str(), &bench_name);
      if (bench_name != r.name) {
        std::fprintf(stderr,
                     "compare %-22s FAIL: baseline '%s' is for scenario "
                     "'%s', not '%s'\n",
                     r.name.c_str(), file.c_str(), bench_name.c_str(),
                     r.name.c_str());
        ++bad;
        continue;
      }
      const dpm::scenario::CompareReport report =
          dpm::scenario::compare_records(*sc, baseline, r.records);
      std::printf("%s\n", dpm::scenario::format_report(report).c_str());
      if (!report.ok()) ++bad;
    } catch (const dpm::scenario::JsonError& e) {
      std::fprintf(stderr, "compare %-22s FAIL: malformed baseline %s: %s\n",
                   r.name.c_str(), file.c_str(), e.what());
      ++bad;
    }
  }
  return bad;
}

/// Writes <dir>/<name>.json baselines for every executed scenario.
bool write_baselines(
    const std::vector<dpm::scenario::ScenarioRunResult>& results,
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "bench_scenarios: cannot create '%s'\n",
                 dir.c_str());
    return false;
  }
  bool ok = true;
  for (const auto& r : results) {
    const std::string path =
        (std::filesystem::path(dir) / (r.name + ".json")).string();
    if (!dpm::scenario::write_json_report_to(path, r.name, r.records)) {
      std::fprintf(stderr, "bench_scenarios: cannot write '%s'\n",
                   path.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!parse_args(argc, argv, opt)) return 2;

  dpm::scenario::register_builtin();

  // An unknown --exact name is a usage error in every mode (it would
  // otherwise silently select nothing under --list and trip the generic
  // "no scenario matches" path without suggestions).
  if (!validate_exact_names(opt)) return 2;

  if (opt.list) {
    std::printf("%-22s %5s  %s\n", "scenario", "units", "description");
    for (const Scenario& sc : dpm::scenario::all()) {
      if (!selected(sc, opt)) continue;
      std::printf("%-22s %5zu  %s\n", sc.name.c_str(),
                  sc.units(opt.smoke).size(), sc.what.c_str());
    }
    if (!opt.expect.empty()) {
      const int mismatches = check_expected(opt.expect);
      if (mismatches != 0) return 1;
      std::printf("registry matches the expected scenario list (%zu)\n",
                  dpm::scenario::all().size());
    }
    return 0;
  }

  std::vector<const Scenario*> run_list;
  for (const Scenario& sc : dpm::scenario::all()) {
    if (selected(sc, opt)) run_list.push_back(&sc);
  }
  if (run_list.empty()) {
    std::fprintf(stderr, "bench_scenarios: no scenario matches\n");
    return 2;
  }
  if (!opt.compare_path.empty() && run_list.size() > 1) {
    namespace fs = std::filesystem;
    std::error_code ec;
    if (fs::exists(opt.compare_path, ec) &&
        !fs::is_directory(opt.compare_path, ec)) {
      std::fprintf(stderr,
                   "bench_scenarios: --compare with a baseline *file* needs "
                   "exactly one selected scenario (%zu selected); pass a "
                   "baseline directory instead\n",
                   run_list.size());
      return 2;
    }
  }

  dpm::scenario::RunnerOptions ropts;
  ropts.jobs = opt.jobs;
  ropts.smoke = opt.smoke;
  ropts.print = !opt.quiet;
  // Smoke grids must never overwrite benchmark-grade JSON records.
  ropts.write_json = !opt.smoke;
  ropts.cache = opt.cache;
  ropts.cache_dir = opt.cache_dir;
  ropts.fault = opt.fault;
  ropts.unit_deadline_ms = opt.unit_deadline_ms;
  ropts.unit_retries = opt.unit_retries;
  ropts.retry_backoff_ms = opt.retry_backoff_ms;

  const dpm::bench::WallTimer timer;
  const dpm::scenario::ExperimentRunner runner(ropts);
  const auto results = runner.run(run_list);
  const double wall_ms = timer.elapsed_ms();

  std::printf("\n%-22s %6s %7s %8s %10s %12s  %s\n", "scenario", "units",
              "cached", "records", "iterations", "unit ms", "shape");
  std::size_t failures = 0;
  for (const auto& r : results) {
    const std::string shape =
        r.failures.empty() ? "ok"
                           : std::to_string(r.failures.size()) + " FAIL";
    std::printf("%-22s %6zu %7zu %8zu %10zu %12.1f  %s\n", r.name.c_str(),
                r.units, r.units_cached, r.records.size(), r.iterations,
                r.wall_ms, shape.c_str());
    failures += r.failures.size();
  }
  std::printf("\ntotal wall %.1f ms with --jobs %zu on %u hardware "
              "thread(s) (%zu scenarios)%s%s\n",
              wall_ms, opt.jobs == 0 ? std::size_t{1} : opt.jobs,
              std::thread::hardware_concurrency(), results.size(),
              opt.cache ? "  [result cache on]" : "",
              opt.smoke ? "  [smoke — no JSON written]" : "");

  if (opt.telemetry) {
    // Machine-parseable hypersparsity odometer (process-wide, so it
    // covers exactly the scenarios this invocation ran).  verify.sh's
    // --perf-smoke gate greps sparse_pct to assert the Gilbert-Peierls
    // path stays the common case on the case-study LPs.
    const dpm::lp::SweepTelemetry t = dpm::lp::sweep_telemetry();
    const std::uintmax_t total =
        static_cast<std::uintmax_t>(t.sparse_sweeps + t.dense_sweeps);
    std::printf("telemetry: sparse_sweeps=%ju dense_sweeps=%ju "
                "touched_entries=%ju sparse_pct=%.1f\n",
                static_cast<std::uintmax_t>(t.sparse_sweeps),
                static_cast<std::uintmax_t>(t.dense_sweeps),
                static_cast<std::uintmax_t>(t.touched_entries),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(t.sparse_sweeps) /
                                 static_cast<double>(total));
    // Recovery odometer (robust/supervisor.h): every supervised solve
    // this invocation ran, how many needed the escalation ladder, and
    // how many injected faults actually fired.
    const dpm::robust::RecoveryTelemetry rt =
        dpm::robust::recovery_telemetry();
    std::printf("telemetry: supervised=%ju first_try=%ju recovered=%ju "
                "unrecovered=%ju faults_fired=%ju",
                static_cast<std::uintmax_t>(rt.supervised),
                static_cast<std::uintmax_t>(rt.first_try),
                static_cast<std::uintmax_t>(rt.recovered),
                static_cast<std::uintmax_t>(rt.unrecovered),
                static_cast<std::uintmax_t>(dpm::robust::faults_fired()));
    for (std::size_t r = 0; r < dpm::robust::kNumRecoveryRungs; ++r) {
      std::string key =
          dpm::robust::to_string(static_cast<dpm::robust::RecoveryRung>(r));
      std::replace(key.begin(), key.end(), '-', '_');
      std::printf(" rung_%s=%ju", key.c_str(),
                  static_cast<std::uintmax_t>(rt.rung_attempts[r]));
    }
    std::printf("\n");
  }

  bool bad = false;
  if (!opt.baseline_out.empty() && !write_baselines(results, opt.baseline_out)) {
    bad = true;
  }
  if (!opt.compare_path.empty()) {
    std::printf("\n");
    const std::size_t mismatched = compare_results(results, opt);
    if (mismatched != 0) {
      std::fprintf(stderr,
                   "bench_scenarios: %zu scenario(s) drifted from the "
                   "baseline\n",
                   mismatched);
      bad = true;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "bench_scenarios: %zu shape-check failure(s)\n",
                 failures);
    bad = true;
  }
  return bad ? 1 : 0;
}
