// bench_scenarios: the one experiment multiplexer.
//
// Every paper figure, ablation, and extension is a registered Scenario
// (src/scenario/); this driver lists, filters, and executes them on the
// parallel ExperimentRunner.  Replaces the former per-figure binaries
// (bench_fig06_pareto ... bench_average_cost).
//
//   bench_scenarios --list                 # what is registered
//   bench_scenarios                        # run everything, --jobs 1
//   bench_scenarios --jobs 8               # saturate the machine
//   bench_scenarios --filter fig1          # substring selection
//   bench_scenarios --exact fig08_disk     # exact-name selection
//   bench_scenarios --smoke                # tiny grids (ctest smoke)
//   bench_scenarios --list --expect a,b,c  # registry drift gate (ctest)
//
// Determinism contract: all randomness derives from (scenario name,
// unit index), and results are assembled in unit order, so stdout and
// the emitted BENCH_<scenario>.json files are byte-identical for any
// --jobs value.  Full runs write JSON; --smoke runs never overwrite
// benchmark-grade records.  Exit status is nonzero when any
// expected-shape assertion fails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "scenario/registry.h"
#include "scenario/runner.h"

namespace {

using dpm::scenario::Scenario;

struct CliOptions {
  bool list = false;
  bool smoke = false;
  bool quiet = false;
  std::size_t jobs = 1;
  std::vector<std::string> filters;  // substring matches, OR-ed
  std::vector<std::string> exact;    // exact names, OR-ed
  std::string expect;                // comma-separated registry gate
};

bool parse_args(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_scenarios: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--jobs" || arg == "-j") {
      const char* v = next("--jobs");
      if (v == nullptr) return false;
      opt.jobs = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--filter") {
      const char* v = next("--filter");
      if (v == nullptr) return false;
      opt.filters.emplace_back(v);
    } else if (arg == "--exact") {
      const char* v = next("--exact");
      if (v == nullptr) return false;
      opt.exact.emplace_back(v);
    } else if (arg == "--expect") {
      const char* v = next("--expect");
      if (v == nullptr) return false;
      opt.expect = v;
    } else {
      std::fprintf(stderr, "bench_scenarios: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  // The ctest smoke environment variable mirrors the historical
  // per-bench behaviour (bench_util.h).
  if (const char* env = std::getenv("DPMOPT_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    opt.smoke = true;
  }
  return true;
}

bool selected(const Scenario& sc, const CliOptions& opt) {
  if (opt.filters.empty() && opt.exact.empty()) return true;
  for (const std::string& e : opt.exact) {
    if (sc.name == e) return true;
  }
  for (const std::string& f : opt.filters) {
    if (sc.name.find(f) != std::string::npos) return true;
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',' || c == ';') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Registry drift gate: the build system registers one smoke test per
/// scenario from a literal list; this check fails the suite when the
/// two go out of sync instead of silently dropping coverage.
int check_expected(const std::string& csv) {
  const std::vector<std::string> expected = split_csv(csv);
  int mismatches = 0;
  for (const std::string& name : expected) {
    if (dpm::scenario::find(name) == nullptr) {
      std::fprintf(stderr,
                   "EXPECTED scenario '%s' is not registered "
                   "(update register_builtin or the CMake list)\n",
                   name.c_str());
      ++mismatches;
    }
  }
  for (const Scenario& sc : dpm::scenario::all()) {
    bool found = false;
    for (const std::string& name : expected) {
      if (name == sc.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "REGISTERED scenario '%s' is missing from the CMake "
                   "DPMOPT_SCENARIOS list (no smoke test will run it)\n",
                   sc.name.c_str());
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!parse_args(argc, argv, opt)) return 2;

  dpm::scenario::register_builtin();

  if (opt.list) {
    std::printf("%-22s %5s  %s\n", "scenario", "units", "description");
    for (const Scenario& sc : dpm::scenario::all()) {
      if (!selected(sc, opt)) continue;
      std::printf("%-22s %5zu  %s\n", sc.name.c_str(),
                  sc.units(opt.smoke).size(), sc.what.c_str());
    }
    if (!opt.expect.empty()) {
      const int mismatches = check_expected(opt.expect);
      if (mismatches != 0) return 1;
      std::printf("registry matches the expected scenario list (%zu)\n",
                  dpm::scenario::all().size());
    }
    return 0;
  }

  std::vector<const Scenario*> run_list;
  for (const Scenario& sc : dpm::scenario::all()) {
    if (selected(sc, opt)) run_list.push_back(&sc);
  }
  if (run_list.empty()) {
    std::fprintf(stderr, "bench_scenarios: no scenario matches\n");
    return 2;
  }

  dpm::scenario::RunnerOptions ropts;
  ropts.jobs = opt.jobs;
  ropts.smoke = opt.smoke;
  ropts.print = !opt.quiet;
  // Smoke grids must never overwrite benchmark-grade JSON records.
  ropts.write_json = !opt.smoke;

  const dpm::bench::WallTimer timer;
  const dpm::scenario::ExperimentRunner runner(ropts);
  const auto results = runner.run(run_list);
  const double wall_ms = timer.elapsed_ms();

  std::printf("\n%-22s %6s %8s %10s %12s  %s\n", "scenario", "units",
              "records", "iterations", "unit ms", "shape");
  std::size_t failures = 0;
  for (const auto& r : results) {
    const std::string shape =
        r.failures.empty() ? "ok"
                           : std::to_string(r.failures.size()) + " FAIL";
    std::printf("%-22s %6zu %8zu %10zu %12.1f  %s\n", r.name.c_str(),
                r.units, r.records.size(), r.iterations, r.wall_ms,
                shape.c_str());
    failures += r.failures.size();
  }
  std::printf("\ntotal wall %.1f ms with --jobs %zu on %u hardware "
              "thread(s) (%zu scenarios)%s\n",
              wall_ms, opt.jobs == 0 ? std::size_t{1} : opt.jobs,
              std::thread::hardware_concurrency(), results.size(),
              opt.smoke ? "  [smoke — no JSON written]" : "");
  if (failures != 0) {
    std::fprintf(stderr, "bench_scenarios: %zu shape-check failure(s)\n",
                 failures);
    return 1;
  }
  return 0;
}
