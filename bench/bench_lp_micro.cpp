// google-benchmark microbenchmarks backing the paper's computational
// claims: "the solution of PO is computed in polynomial time by solving
// a linear optimization problem" and "its computation took less than
// 1 min" for the 66-state disk model (on a 1998 workstation; here it is
// milliseconds).
#include <benchmark/benchmark.h>

#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "cases/sensitivity.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "dpm/value_iteration.h"
#include "lp/solver.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/sr_extractor.h"

namespace {

using namespace dpm;

void BM_ComposeDiskModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cases::DiskDrive::make_provider());
  }
}
BENCHMARK(BM_ComposeDiskModel);

void BM_BuildPolicyLp_Disk(benchmark::State& state) {
  const SystemModel m = cases::DiskDrive::make_model();
  const PolicyOptimizer opt(m, cases::DiskDrive::make_config(m, 0.999));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.build_lp(
        metrics::power(m), {{metrics::queue_length(m), 0.5, "perf"}}));
  }
}
BENCHMARK(BM_BuildPolicyLp_Disk);

void BM_SolveDiskPolicy_Simplex(benchmark::State& state) {
  const SystemModel m = cases::DiskDrive::make_model();
  const PolicyOptimizer opt(m, cases::DiskDrive::make_config(m, 0.999));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.minimize_power(0.5, 0.05));
  }
}
BENCHMARK(BM_SolveDiskPolicy_Simplex)->Unit(benchmark::kMillisecond);

void BM_SolveDiskPolicy_InteriorPoint(benchmark::State& state) {
  const SystemModel m = cases::DiskDrive::make_model();
  OptimizerConfig cfg = cases::DiskDrive::make_config(m, 0.999);
  cfg.backend = lp::Backend::kInteriorPoint;
  const PolicyOptimizer opt(m, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.minimize_power(0.5, 0.05));
  }
}
BENCHMARK(BM_SolveDiskPolicy_InteriorPoint)->Unit(benchmark::kMillisecond);

// Polynomial scaling in the state count: SR memory k doubles the states.
void BM_SolvePolicy_ScalingInStates(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::vector<unsigned> stream =
      trace::gilbert_stream(100000, 0.05, 0.2, 3);
  const ServiceRequester sr =
      trace::extract_sr(stream, {.memory = k, .smoothing = 0.5});
  const SystemModel m = SystemModel::compose(
      cases::sensitivity::make_sp(cases::sensitivity::standard_sleep_states()),
      sr, 2);
  const PolicyOptimizer opt(m, cases::sensitivity::make_config(m, 1e3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.minimize_power(0.5));
  }
  state.counters["states"] = static_cast<double>(m.num_states());
}
BENCHMARK(BM_SolvePolicy_ScalingInStates)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ValueIteration_Example(benchmark::State& state) {
  const SystemModel m = cases::ExampleSystem::make_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        value_iteration(m, metrics::power(m), 0.99));
  }
}
BENCHMARK(BM_ValueIteration_Example);

void BM_ExactEvaluation_Disk(benchmark::State& state) {
  const SystemModel m = cases::DiskDrive::make_model();
  const Policy p = Policy::constant(m.num_states(), m.num_commands(),
                                    cases::DiskDrive::kGoActive);
  const linalg::Vector p0 = m.point_distribution({0, 0, 0});
  for (auto _ : state) {
    const PolicyEvaluation ev(m, p, 0.999, p0);
    benchmark::DoNotOptimize(ev.per_step(metrics::power(m)));
  }
}
BENCHMARK(BM_ExactEvaluation_Disk)->Unit(benchmark::kMillisecond);

void BM_Simulation_DiskSlices(benchmark::State& state) {
  const SystemModel m = cases::DiskDrive::make_model();
  sim::Simulator simulator(m);
  sim::GreedyController ctl(cases::DiskDrive::kGoStandby,
                            cases::DiskDrive::kGoActive);
  sim::SimulationConfig cfg;
  cfg.slices = 100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(ctl, cfg));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cfg.slices));
}
BENCHMARK(BM_Simulation_DiskSlices)->Unit(benchmark::kMillisecond);

void BM_SrExtraction(benchmark::State& state) {
  const std::vector<unsigned> stream =
      trace::gilbert_stream(200000, 0.05, 0.2, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::extract_sr(stream, {.memory = 2}));
  }
}
BENCHMARK(BM_SrExtraction);

}  // namespace

BENCHMARK_MAIN();
