// dpmd — the policy-optimization serving daemon (docs/serving.md).
//
// Server mode (default): bind a TCP port, serve line-delimited JSON
// optimize / reoptimize / evaluate / stats requests through one
// PolicyEngine until SIGTERM/SIGINT or a shutdown request, then flush
// the response cache and exit 0.
//
//   dpmd [--port N] [--bind ADDR] [--cache-dir DIR] [--no-cache]
//        [--cache-entries N] [--deadline-ms X] [--batch-window-us N]
//        [--max-inflight N] [--max-connections N] [--max-sessions N]
//        [--max-line-bytes N]
//
// Client mode: replay a request transcript against a running server and
// print one response line per request (the serve smoke test's driver).
//
//   dpmd --connect HOST:PORT --transcript FILE
//
// Transcript helper: emit the canned example transcript (serve/fleet.h)
// so scripts need no embedded model JSON.
//
//   dpmd --print-example-transcript

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.h"
#include "serve/fleet.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--bind ADDR] [--cache-dir DIR]\n"
               "          [--no-cache] [--cache-entries N] [--deadline-ms X]\n"
               "          [--batch-window-us N] [--max-inflight N]\n"
               "          [--max-connections N] [--max-sessions N]\n"
               "          [--max-line-bytes N]\n"
               "       %s --connect HOST:PORT --transcript FILE\n"
               "       %s --print-example-transcript\n",
               argv0, argv0, argv0);
  return 2;
}

/// Client mode: send every transcript line, print every response line.
int run_client(const std::string& endpoint, const std::string& transcript) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    std::fprintf(stderr, "dpmd: --connect expects HOST:PORT\n");
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const std::string port_str = endpoint.substr(colon + 1);
  if (port_str.find_first_not_of("0123456789") != std::string::npos ||
      port_str.size() > 5) {
    std::fprintf(stderr, "dpmd: bad port in '%s'\n", endpoint.c_str());
    return 2;
  }
  const long port = std::strtol(port_str.c_str(), nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "dpmd: bad port in '%s'\n", endpoint.c_str());
    return 2;
  }

  std::ifstream in(transcript);
  if (!in) {
    std::fprintf(stderr, "dpmd: cannot read transcript '%s'\n",
                 transcript.c_str());
    return 2;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }

  // Resolve hostnames (incl. "localhost") and IPv4/IPv6 literals alike.
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                               &resolved);
  if (rc != 0) {
    std::fprintf(stderr, "dpmd: cannot resolve '%s': %s\n", endpoint.c_str(),
                 ::gai_strerror(rc));
    return 1;
  }
  int fd = -1;
  for (const addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) {
    std::fprintf(stderr, "dpmd: cannot connect to %s\n", endpoint.c_str());
    return 1;
  }

  std::string pending;
  char buf[4096];
  std::size_t answered = 0;
  for (const std::string& line : lines) {
    std::string out = line;
    out.push_back('\n');
    for (std::size_t sent = 0; sent < out.size();) {
      const ssize_t n =
          ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::perror("dpmd: send");
        ::close(fd);
        return 1;
      }
      sent += static_cast<std::size_t>(n);
    }
    // One response line per request, in order.
    while (answered < lines.size()) {
      const std::size_t nl = pending.find('\n');
      if (nl != std::string::npos) {
        std::fwrite(pending.data(), 1, nl, stdout);
        std::fputc('\n', stdout);
        pending.erase(0, nl + 1);
        ++answered;
        break;
      }
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        std::fprintf(stderr, "dpmd: server closed mid-transcript\n");
        ::close(fd);
        return 1;
      }
      pending.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  std::fflush(stdout);
  return answered == lines.size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Belt and braces next to MSG_NOSIGNAL: a peer disconnect must never
  // deliver a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  dpm::serve::EngineOptions engine_options;
  dpm::serve::ServerOptions server_options;
  std::string connect_endpoint;
  std::string transcript_path;
  bool print_transcript = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dpmd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      server_options.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--bind") {
      server_options.bind_address = next();
    } else if (arg == "--cache-dir") {
      engine_options.cache_dir = next();
    } else if (arg == "--no-cache") {
      engine_options.cache = false;
    } else if (arg == "--cache-entries") {
      engine_options.cache_entries = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--max-inflight") {
      engine_options.max_inflight = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--max-connections") {
      server_options.max_connections =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--max-sessions") {
      engine_options.max_sessions = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--max-line-bytes") {
      server_options.max_line_bytes =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--deadline-ms") {
      engine_options.request_deadline_ms = std::atof(next());
    } else if (arg == "--batch-window-us") {
      engine_options.batch_window_us =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--connect") {
      connect_endpoint = next();
    } else if (arg == "--transcript") {
      transcript_path = next();
    } else if (arg == "--print-example-transcript") {
      print_transcript = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "dpmd: unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (print_transcript) {
    for (const std::string& line : dpm::serve::example_transcript()) {
      std::puts(line.c_str());
    }
    return 0;
  }
  if (!connect_endpoint.empty() || !transcript_path.empty()) {
    if (connect_endpoint.empty() || transcript_path.empty()) {
      std::fprintf(stderr,
                   "dpmd: client mode needs both --connect and --transcript\n");
      return 2;
    }
    return run_client(connect_endpoint, transcript_path);
  }

  dpm::serve::PolicyEngine engine(engine_options);
  dpm::serve::PolicyServer server(engine, server_options);
  std::string error;
  dpm::serve::PolicyServer::StartFailure failure;
  if (!server.start(&error, &failure)) {
    std::fprintf(stderr, "dpmd: %s\n", error.c_str());
    // Unresolvable --bind is a usage error; socket/bind trouble is not.
    return failure == dpm::serve::PolicyServer::StartFailure::kResolve ? 2 : 1;
  }
  std::printf("dpmd: listening on %s:%u\n", server_options.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  while (g_signal == 0 && !engine.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.stop();
  engine.flush_cache();
  std::printf("dpmd: shutdown clean\n");
  std::fflush(stdout);
  return 0;
}
