// Tests for Howard policy iteration (the third independent solver for
// unconstrained POU, alongside LP2 and value iteration).
#include <gtest/gtest.h>

#include <random>

#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "dpm/policy_iteration.h"
#include "dpm/value_iteration.h"

namespace dpm {
namespace {

using cases::ExampleSystem;

TEST(PolicyIteration, ValidatesGamma) {
  const SystemModel m = ExampleSystem::make_model();
  EXPECT_THROW(policy_iteration(m, metrics::power(m), 1.0), ModelError);
  EXPECT_THROW(policy_iteration(m, metrics::power(m), 0.0), ModelError);
}

TEST(PolicyIteration, ConvergesInFewRounds) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyIterationResult r =
      policy_iteration(m, metrics::power(m), 0.99);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.improvements, 10u);  // Howard PI is famously fast
  EXPECT_TRUE(r.policy.is_deterministic());
}

TEST(PolicyIteration, MatchesValueIteration) {
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.99;
  const PolicyIterationResult pi =
      policy_iteration(m, metrics::queue_length(m), gamma);
  const ValueIterationResult vi =
      value_iteration(m, metrics::queue_length(m), gamma);
  ASSERT_TRUE(pi.converged);
  ASSERT_TRUE(vi.converged);
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    EXPECT_NEAR(pi.values[s], vi.values[s], 1e-6) << "state " << s;
  }
}

TEST(PolicyIteration, MatchesLp2) {
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.999;
  const PolicyIterationResult pi =
      policy_iteration(m, metrics::power(m), gamma);
  ASSERT_TRUE(pi.converged);

  const PolicyOptimizer opt(m, ExampleSystem::make_config(m, gamma));
  const OptimizationResult lp = opt.minimize(metrics::power(m));
  ASSERT_TRUE(lp.feasible);
  const std::size_t s0 = m.index_of({ExampleSystem::kSpOn, 0, 0});
  EXPECT_NEAR(lp.objective_per_step, (1.0 - gamma) * pi.values[s0], 1e-6);
}

TEST(PolicyIteration, ValuesAreExactForReturnedPolicy) {
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.97;
  const PolicyIterationResult r =
      policy_iteration(m, metrics::power(m), gamma);
  ASSERT_TRUE(r.converged);
  for (std::size_t s0 = 0; s0 < m.num_states(); ++s0) {
    linalg::Vector p0(m.num_states(), 0.0);
    p0[s0] = 1.0;
    const PolicyEvaluation ev(m, r.policy, gamma, p0);
    EXPECT_NEAR(ev.total(metrics::power(m)), r.values[s0], 1e-8);
  }
}

TEST(PolicyIteration, WorksOnDiskModel) {
  const SystemModel m = cases::DiskDrive::make_model();
  const PolicyIterationResult r =
      policy_iteration(m, metrics::power(m), 0.999);
  EXPECT_TRUE(r.converged);
  // Unconstrained minimum power on the disk: deepest usable sleep wins;
  // the value must be below the always-active 2.5 W.
  const std::size_t s0 = m.index_of({cases::DiskDrive::kActive, 0, 0});
  EXPECT_LT((1.0 - 0.999) * r.values[s0], 2.5);
}

// Property: on random composed models, PI and VI agree.
class PiViAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PiViAgreement, RandomModels) {
  std::mt19937_64 gen(GetParam());
  std::uniform_real_distribution<double> u(0.05, 0.95);

  // Random 2-state SP / 2-command model with random rates and powers.
  CommandSet commands({"a", "b"});
  ServiceProvider::Builder b(2, commands);
  for (std::size_t cmd = 0; cmd < 2; ++cmd) {
    for (std::size_t s = 0; s < 2; ++s) {
      const double p = u(gen);
      b.transition(cmd, s, 0, p);
      b.transition(cmd, s, 1, 1.0 - p);
      b.service_rate(s, cmd, u(gen));
      b.power(s, cmd, 3.0 * u(gen));
    }
  }
  const SystemModel m = SystemModel::compose(
      std::move(b).build(), ServiceRequester::two_state(u(gen), u(gen)), 1);

  const double gamma = 0.95;
  const PolicyIterationResult pi =
      policy_iteration(m, metrics::power(m), gamma);
  const ValueIterationResult vi =
      value_iteration(m, metrics::power(m), gamma);
  ASSERT_TRUE(pi.converged);
  ASSERT_TRUE(vi.converged);
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    EXPECT_NEAR(pi.values[s], vi.values[s], 1e-6)
        << "seed " << GetParam() << " state " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PiViAgreement, ::testing::Range(0, 15));

}  // namespace
}  // namespace dpm
