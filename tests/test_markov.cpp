// Unit tests for Markov chains and controlled Markov chains.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "markov/controlled_chain.h"
#include "markov/markov_chain.h"

namespace dpm::markov {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix bursty2() { return Matrix{{0.85, 0.15}, {0.15, 0.85}}; }

TEST(Validation, AcceptsStochastic) {
  EXPECT_NO_THROW(validate_stochastic(bursty2(), "p"));
}

TEST(Validation, RejectsNonSquare) {
  EXPECT_THROW(validate_stochastic(Matrix(2, 3), "p"), MarkovError);
}

TEST(Validation, RejectsBadRowSum) {
  EXPECT_THROW(validate_stochastic(Matrix{{0.5, 0.4}, {0.0, 1.0}}, "p"),
               MarkovError);
}

TEST(Validation, RejectsNegativeEntry) {
  EXPECT_THROW(validate_stochastic(Matrix{{1.2, -0.2}, {0.0, 1.0}}, "p"),
               MarkovError);
}

TEST(Chain, EvolvePreservesMass) {
  const MarkovChain mc(bursty2());
  Vector d{0.3, 0.7};
  d = mc.evolve(d);
  EXPECT_NEAR(d[0] + d[1], 1.0, 1e-12);
  EXPECT_NEAR(d[0], 0.3 * 0.85 + 0.7 * 0.15, 1e-12);
}

TEST(Chain, EvolveSizeChecked) {
  const MarkovChain mc(bursty2());
  EXPECT_THROW(mc.evolve(Vector{1.0}), MarkovError);
}

TEST(Chain, MultiStepEvolutionConverges) {
  const MarkovChain mc(bursty2());
  const Vector d = mc.evolve(Vector{1.0, 0.0}, 1000);
  EXPECT_NEAR(d[0], 0.5, 1e-9);  // symmetric chain -> uniform
}

TEST(Chain, StationaryDistributionSymmetric) {
  const MarkovChain mc(bursty2());
  const Vector pi = mc.stationary_distribution();
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
  EXPECT_NEAR(pi[1], 0.5, 1e-12);
}

TEST(Chain, StationaryDistributionAsymmetric) {
  // p01 = 0.2, p10 = 0.1  ->  pi = (1/3, 2/3).
  const MarkovChain mc(Matrix{{0.8, 0.2}, {0.1, 0.9}});
  const Vector pi = mc.stationary_distribution();
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(Chain, StationaryIsFixedPoint) {
  const MarkovChain mc(
      Matrix{{0.5, 0.3, 0.2}, {0.1, 0.8, 0.1}, {0.3, 0.3, 0.4}});
  const Vector pi = mc.stationary_distribution();
  const Vector next = mc.evolve(pi);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(next[i], pi[i], 1e-12);
}

TEST(Chain, DiscountedOccupancyTotalsHorizon) {
  const MarkovChain mc(bursty2());
  const double gamma = 0.99;
  const Vector u = mc.discounted_occupancy({1.0, 0.0}, gamma);
  // sum_t gamma^t = 1 / (1 - gamma).
  EXPECT_NEAR(u[0] + u[1], 1.0 / (1.0 - gamma), 1e-9);
}

TEST(Chain, DiscountedOccupancyMatchesSeries) {
  const MarkovChain mc(Matrix{{0.8, 0.2}, {0.1, 0.9}});
  const double gamma = 0.9;
  const Vector u = mc.discounted_occupancy({1.0, 0.0}, gamma);
  // Direct truncated series.
  Vector d{1.0, 0.0};
  Vector acc{0.0, 0.0};
  double w = 1.0;
  for (int t = 0; t < 2000; ++t) {
    acc[0] += w * d[0];
    acc[1] += w * d[1];
    d = mc.evolve(d);
    w *= gamma;
  }
  EXPECT_NEAR(u[0], acc[0], 1e-8);
  EXPECT_NEAR(u[1], acc[1], 1e-8);
}

TEST(Chain, DiscountedOccupancyValidatesGamma) {
  const MarkovChain mc(bursty2());
  EXPECT_THROW(mc.discounted_occupancy({1.0, 0.0}, 0.0), MarkovError);
  EXPECT_THROW(mc.discounted_occupancy({1.0, 0.0}, 1.0), MarkovError);
  EXPECT_THROW(mc.discounted_occupancy({1.0}, 0.5), MarkovError);
}

TEST(Chain, Irreducibility) {
  EXPECT_TRUE(MarkovChain(bursty2()).is_irreducible());
  // Absorbing state 1: not irreducible.
  EXPECT_FALSE(
      MarkovChain(Matrix{{0.5, 0.5}, {0.0, 1.0}}).is_irreducible());
}

TEST(Chain, ExpectedTransitionTime) {
  EXPECT_DOUBLE_EQ(MarkovChain::expected_transition_time(0.1), 10.0);
  EXPECT_TRUE(std::isinf(MarkovChain::expected_transition_time(0.0)));
  EXPECT_THROW(MarkovChain::expected_transition_time(1.5), MarkovError);
}

// ---------------------------------------------------------------------
// Controlled chains
// ---------------------------------------------------------------------

ControlledMarkovChain example_controlled() {
  // Example 3.1-like SP: command 0 wakes, command 1 sleeps.
  Matrix on{{1.0, 0.0}, {0.1, 0.9}};
  Matrix off{{0.2, 0.8}, {0.0, 1.0}};
  return ControlledMarkovChain({on, off});
}

TEST(Controlled, BasicAccessors) {
  const ControlledMarkovChain c = example_controlled();
  EXPECT_EQ(c.num_states(), 2u);
  EXPECT_EQ(c.num_commands(), 2u);
  EXPECT_DOUBLE_EQ(c.transition(1, 0, 0), 0.1);
  EXPECT_DOUBLE_EQ(c.transition(0, 1, 1), 0.8);
}

TEST(Controlled, RejectsEmpty) {
  EXPECT_THROW(ControlledMarkovChain({}), MarkovError);
}

TEST(Controlled, RejectsMismatchedOrders) {
  EXPECT_THROW(
      ControlledMarkovChain({Matrix::identity(2), Matrix::identity(3)}),
      MarkovError);
}

TEST(Controlled, RejectsNonStochasticCommandMatrix) {
  EXPECT_THROW(
      ControlledMarkovChain({Matrix{{0.5, 0.4}, {0.0, 1.0}}}),
      MarkovError);
}

TEST(Controlled, UnderDeterministicPolicyPicksMatrix) {
  const ControlledMarkovChain c = example_controlled();
  Matrix pick_off(2, 2);
  pick_off(0, 1) = 1.0;
  pick_off(1, 1) = 1.0;
  const MarkovChain mixed = c.under_policy(pick_off);
  EXPECT_DOUBLE_EQ(mixed.transition(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(mixed.transition(1, 1), 1.0);
}

TEST(Controlled, UnderRandomizedPolicyMixesRows) {
  // Example 3.6: 80% s_on, 20% s_off.
  const ControlledMarkovChain c = example_controlled();
  Matrix mix(2, 2);
  mix(0, 0) = 0.8;
  mix(0, 1) = 0.2;
  mix(1, 0) = 0.8;
  mix(1, 1) = 0.2;
  const MarkovChain mixed = c.under_policy(mix);
  EXPECT_NEAR(mixed.transition(0, 0), 0.8 * 1.0 + 0.2 * 0.2, 1e-12);
  EXPECT_NEAR(mixed.transition(1, 0), 0.8 * 0.1 + 0.2 * 0.0, 1e-12);
}

TEST(Controlled, UnderPolicyValidatesShape) {
  const ControlledMarkovChain c = example_controlled();
  EXPECT_THROW(c.under_policy(Matrix(3, 2)), MarkovError);
  Matrix bad(2, 2);
  bad(0, 0) = 0.5;  // row does not sum to 1
  bad(1, 0) = 1.0;
  EXPECT_THROW(c.under_policy(bad), MarkovError);
}

// Property: mixing under any valid randomized policy yields a stochastic
// matrix.
class MixPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MixPropertyTest, MixedMatrixIsStochastic) {
  std::mt19937_64 gen(GetParam());
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::size_t n = 4, na = 3;
  std::vector<Matrix> ms;
  for (std::size_t a = 0; a < na; ++a) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        m(i, j) = u(gen) + 1e-3;
        total += m(i, j);
      }
      for (std::size_t j = 0; j < n; ++j) m(i, j) /= total;
    }
    ms.push_back(std::move(m));
  }
  const ControlledMarkovChain c(ms);
  Matrix pol(n, na);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      pol(i, a) = u(gen) + 1e-3;
      total += pol(i, a);
    }
    for (std::size_t a = 0; a < na; ++a) pol(i, a) /= total;
  }
  EXPECT_NO_THROW(validate_stochastic(
      c.under_policy(pol).transition_matrix(), "mixed", 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace dpm::markov
