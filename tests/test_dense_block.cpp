// Bitwise agreement property tests for the dense-block tail: with
// set_dense_block_enabled(false) the factorization emits its dense
// tail into sparse pair storage (the pre-block representation) and
// every sweep walks pair lists; with the block enabled the same tail
// lives in contiguous dense storage and the sweeps run the kernels in
// dense_block.cpp.  The two configurations must be *bit-identical* —
// same ftran/btran/ftran_sparse/btran_sparse results, same
// Forrest–Tomlin accept/refuse decisions, same refactorization cadence
// — across long FT update chains.  memcmp, not tolerance: the kernels
// execute the same floating-point operations in the same order, only
// the storage walked differs.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "linalg/dense_block.h"
#include "linalg/indexed_vector.h"
#include "linalg/sparse_lu.h"

namespace dpm::linalg {
namespace {

testing::AssertionResult bitwise_equal(const Vector& a, const Vector& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return testing::AssertionFailure()
             << "entry " << i << ": block=" << a[i] << " sparse=" << b[i];
    }
  }
  return testing::AssertionSuccess();
}

// A basis whose trailing block is dense enough to trip the dense-tail
// elimination switch (and therefore the retained DenseBlock).
std::vector<SparseColumn> dense_tail_basis(std::mt19937& rng, std::size_t n,
                                           std::size_t tail) {
  std::uniform_real_distribution<double> uval(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> urow(0, n - 1);
  std::vector<SparseColumn> cols(n);
  for (std::size_t j = 0; j < n; ++j) {
    cols[j].emplace_back(j, 4.0 + uval(rng));
    const int extra = static_cast<int>(rng() % 4);
    for (int e = 0; e < extra; ++e) cols[j].emplace_back(urow(rng), uval(rng));
  }
  for (std::size_t j = n - tail; j < n; ++j) {
    cols[j].clear();
    cols[j].emplace_back(j, 4.0 + uval(rng));
    for (std::size_t i = n - tail; i < n; ++i)
      if (i != j) cols[j].emplace_back(i, uval(rng));
  }
  return cols;
}

// Drives two factorizations of the same basis — dense block on vs off —
// through identical ftran/btran traffic and a long FT update chain,
// asserting bitwise agreement at every step on all four sweep paths.
TEST(DenseBlock, BitwiseMatchesSparseStorageAcrossFtChains) {
  std::mt19937 rng(4321);
  std::uniform_real_distribution<double> uval(-1.0, 1.0);
  for (int trial = 0; trial < 6; ++trial) {
    // Sizes start above BasisFactorization::kBlockMinBasis — smaller
    // bases never retain a block (see the SizeGate test below).
    const std::size_t n = 400 + trial * 60;
    const std::size_t tail = 150 + trial * 20;
    std::uniform_int_distribution<std::size_t> urow(0, n - 1);
    std::vector<SparseColumn> cols = dense_tail_basis(rng, n, tail);

    BasisFactorization on(64, 1e-11, 1.0);
    BasisFactorization off(64, 1e-11, 1.0);
    on.set_dense_block_enabled(true);
    off.set_dense_block_enabled(false);
    ASSERT_TRUE(on.refactorize(n, cols));
    ASSERT_TRUE(off.refactorize(n, cols));
    ASSERT_GT(on.block_dim(), 0u) << "tail not retained: test is vacuous";
    ASSERT_EQ(off.block_dim(), 0u);

    for (int step = 0; step < 80; ++step) {
      // Dense-path ftran/btran.
      Vector fd_on(n, 0.0), fd_off(n, 0.0);
      IndexedVector fs_on(n), fs_off(n);
      const int k = 1 + static_cast<int>(rng() % 3);
      for (int e = 0; e < k; ++e) {
        const std::size_t r = urow(rng);
        const double v = uval(rng);
        fd_on[r] += v;
        fd_off[r] += v;
        fs_on.add(r, v);
        fs_off.add(r, v);
      }
      on.ftran(fd_on, false);
      off.ftran(fd_off, false);
      ASSERT_TRUE(bitwise_equal(fd_on, fd_off))
          << "ftran trial=" << trial << " step=" << step;
      on.ftran_sparse(fs_on, false);
      off.ftran_sparse(fs_off, false);
      ASSERT_TRUE(bitwise_equal(fs_on.values, fs_off.values))
          << "ftran_sparse trial=" << trial << " step=" << step;

      const std::size_t slot = urow(rng);
      Vector bd_on(n, 0.0), bd_off(n, 0.0);
      bd_on[slot] = bd_off[slot] = 1.0;
      IndexedVector bs_on(n), bs_off(n);
      bs_on.set(slot, 1.0);
      bs_off.set(slot, 1.0);
      on.btran(bd_on);
      off.btran(bd_off);
      ASSERT_TRUE(bitwise_equal(bd_on, bd_off))
          << "btran trial=" << trial << " step=" << step;
      on.btran_sparse(bs_on);
      off.btran_sparse(bs_off);
      ASSERT_TRUE(bitwise_equal(bs_on.values, bs_off.values))
          << "btran_sparse trial=" << trial << " step=" << step;

      // FT update: both must take the same accept/refuse decision and
      // stay on the same refactorization cadence (the nonzero
      // accounting feeding needs_refactor must agree exactly).
      SparseColumn enter;
      enter.emplace_back(urow(rng), 4.0 + uval(rng));
      enter.emplace_back(urow(rng), uval(rng));
      Vector d_on(n, 0.0), d_off(n, 0.0);
      for (const auto& [r, v] : enter) {
        d_on[r] += v;
        d_off[r] += v;
      }
      on.ftran(d_on, /*cache_spike=*/true);
      off.ftran(d_off, /*cache_spike=*/true);
      ASSERT_TRUE(bitwise_equal(d_on, d_off));
      const std::size_t leave = urow(rng);
      const bool ok_on = on.update(leave, d_on);
      const bool ok_off = off.update(leave, d_off);
      ASSERT_EQ(ok_on, ok_off) << "update decision diverged, trial=" << trial
                               << " step=" << step;
      if (ok_on) {
        cols[leave] = enter;
        ASSERT_EQ(on.needs_refactor(), off.needs_refactor())
            << "refactor cadence diverged, trial=" << trial
            << " step=" << step;
        if (on.needs_refactor()) {
          if (!on.refactorize(n, cols)) break;
          ASSERT_TRUE(off.refactorize(n, cols));
        }
      } else {
        if (!on.refactorize(n, cols)) break;
        ASSERT_TRUE(off.refactorize(n, cols));
      }
    }
  }
}

// The retained-tail SparseLu solves (standalone ftran/btran, used by
// scenario evaluation) must match the sparse-emission configuration
// bit for bit as well.
TEST(DenseBlock, RetainedTailLuSolvesBitwiseMatchEmitted) {
  std::mt19937 rng(77);
  std::uniform_real_distribution<double> uval(-1.0, 1.0);
  const std::size_t n = 380, tail = 160;
  std::vector<SparseColumn> cols = dense_tail_basis(rng, n, tail);

  SparseLu keep, emit;
  emit.set_emit_tail_sparse(true);
  ASSERT_TRUE(keep.factorize(n, cols));
  ASSERT_TRUE(emit.factorize(n, cols));
  ASSERT_TRUE(keep.tail_retained());
  ASSERT_FALSE(emit.tail_retained());
  // The retained representation must not change the nonzero accounting
  // (refactorization cadence depends on it).
  ASSERT_EQ(keep.factor_nonzeros(), emit.factor_nonzeros());

  std::uniform_int_distribution<std::size_t> urow(0, n - 1);
  for (int rep = 0; rep < 30; ++rep) {
    Vector b(n, 0.0);
    for (int e = 0; e < 4; ++e) b[urow(rng)] += uval(rng);
    Vector x_keep = b, x_emit = b;
    keep.ftran(x_keep);
    emit.ftran(x_emit);
    ASSERT_TRUE(bitwise_equal(x_keep, x_emit)) << "ftran rep " << rep;
    Vector y_keep = b, y_emit = b;
    keep.btran(y_keep);
    emit.btran(y_emit);
    ASSERT_TRUE(bitwise_equal(y_keep, y_emit)) << "btran rep " << rep;
  }
}

// Size gate: a basis below kBlockMinBasis keeps the sparse tail even
// with the block enabled — tiny instances must not pay the block's
// bookkeeping (the n*na = 500 bench regression this PR fixes).
TEST(DenseBlock, SmallBasesSkipTheBlock) {
  std::mt19937 rng(99);
  const std::size_t n = BasisFactorization::kBlockMinBasis - 60;
  const std::size_t tail = 140;
  std::vector<SparseColumn> cols = dense_tail_basis(rng, n, tail);
  BasisFactorization f(64, 1e-11, 1.0);
  f.set_dense_block_enabled(true);
  ASSERT_TRUE(f.refactorize(n, cols));
  EXPECT_EQ(f.block_dim(), 0u);
  EXPECT_EQ(f.block_sweeps(), 0u);
  Vector x(n, 0.0);
  x[n / 2] = 1.0;
  f.ftran(x, false);
  EXPECT_EQ(f.block_sweeps(), 0u);
}

// DenseBlock bookkeeping unit checks: nnz accounting through
// set/zero_col/zero_row is exact, and the extent hints never exclude a
// nonzero (the kernels iterate only the hinted range).
TEST(DenseBlock, NonzeroAccountingAndHints) {
  DenseBlock blk;
  blk.reset(10, 5);
  EXPECT_TRUE(blk.active());
  EXPECT_EQ(blk.nonzeros(), 0u);
  blk.set(0, 3, 2.0);
  blk.set(1, 3, -1.0);
  blk.set(4, 4, 5.0);
  EXPECT_EQ(blk.nonzeros(), 3u);
  blk.set(0, 3, 0.0);  // overwrite with zero removes
  EXPECT_EQ(blk.nonzeros(), 2u);
  blk.set(1, 3, 7.0);  // overwrite nonzero with nonzero keeps count
  EXPECT_EQ(blk.nonzeros(), 2u);
  EXPECT_EQ(blk.zero_col(3), 1u);
  EXPECT_EQ(blk.nonzeros(), 1u);
  EXPECT_EQ(blk.zero_row(4), 1u);
  EXPECT_EQ(blk.nonzeros(), 0u);

  // Kernels see entries written after a zero_col/zero_row reset.
  blk.set(2, 4, 3.0);
  Vector z(5, 0.0);
  blk.col_axpy_sub(4, 2.0, z.data());
  EXPECT_EQ(z[2], -6.0);
  Vector v(5, 0.0);
  blk.row_axpy_sub(2, 1.0, v.data());
  EXPECT_EQ(v[4], -3.0);
}

}  // namespace
}  // namespace dpm::linalg
