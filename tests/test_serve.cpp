// dpmd serving tier, single-threaded contracts (src/serve/):
//   * protocol JSON round-trips: parse(format(r)) == r field-for-field,
//     and wire member order does not matter;
//   * malformed requests come back as typed "error" responses with the
//     stable codes from docs/serving.md, never as crashes;
//   * request-key properties: any single perturbation of a request
//     ingredient changes its key, and structurally identical requests
//     written in different field orders share one;
//   * the exact-hit tier replays byte-identical responses with zero
//     additional simplex pivots.
//
// The multi-client admission/batching contracts live in
// test_serve_concurrency.cpp; injected-fault behaviour in
// test_fault_injection.cpp.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "dpm/optimizer.h"
#include "scenario/json.h"
#include "serve/engine.h"
#include "serve/fleet.h"
#include "serve/protocol.h"

namespace dpm {
namespace {

using scenario::JsonValue;
using serve::ConstraintSpec;
using serve::EngineCounters;
using serve::EngineOptions;
using serve::ModelSpec;
using serve::Op;
using serve::PolicyEngine;
using serve::ProtocolError;
using serve::Request;

// A fully-populated optimize request (ge + le constraints, explicit
// initial distribution, policy echo) over the smallest fleet design.
Request rich_optimize() {
  Request r;
  r.id = "r1";
  r.op = Op::kOptimize;
  r.model = serve::fleet_model_spec(0, /*queue_capacity=*/2);
  r.discount = 0.999;
  const SystemModel model = r.model->compose();
  r.initial.assign(model.num_states(),
                   1.0 / static_cast<double>(model.num_states()));
  r.objective = "power";
  ConstraintSpec queue;
  queue.metric = "queue_length";
  queue.bound = 0.5;
  r.constraints.push_back(queue);
  ConstraintSpec floor;
  floor.metric = "throughput";
  floor.lower_bound = true;  // wire sense "ge"
  floor.bound = 0.01;
  floor.name = "min-work";
  r.constraints.push_back(floor);
  r.want_policy = true;
  return r;
}

std::string expect_error_code(PolicyEngine& engine, const std::string& line) {
  const std::string response = engine.handle_line(line);
  const JsonValue parsed = JsonValue::parse(response);
  EXPECT_EQ(parsed.string_at("status"), "error") << response;
  return parsed.get("error")->string_at("code");
}

// --- protocol round trips ---------------------------------------------

TEST(ServeProtocol, FormatParseRoundTripsEveryOp) {
  const Request opt = rich_optimize();
  const Request back = serve::parse_request(serve::format_request(opt));
  EXPECT_EQ(serve::format_request(back), serve::format_request(opt));
  EXPECT_EQ(back.id, opt.id);
  EXPECT_EQ(back.op, Op::kOptimize);
  EXPECT_EQ(back.discount, opt.discount);
  EXPECT_EQ(back.initial, opt.initial);
  ASSERT_EQ(back.constraints.size(), 2u);
  EXPECT_EQ(back.constraints[1].metric, "throughput");
  EXPECT_TRUE(back.constraints[1].lower_bound);
  EXPECT_EQ(back.constraints[1].bound, 0.01);
  EXPECT_EQ(back.constraints[1].name, "min-work");
  EXPECT_TRUE(back.want_policy);
  ASSERT_TRUE(back.model.has_value());
  EXPECT_EQ(back.model->queue_capacity, 2u);

  Request reopt;
  reopt.id = "r2";
  reopt.op = Op::kReoptimize;
  reopt.model_ref = "00ff00ff00ff00ff";
  reopt.discount = 0.999;
  reopt.constraints.push_back(opt.constraints[0]);
  const Request reopt_back =
      serve::parse_request(serve::format_request(reopt));
  EXPECT_EQ(serve::format_request(reopt_back), serve::format_request(reopt));
  EXPECT_EQ(reopt_back.model_ref, reopt.model_ref);

  Request eval;
  eval.id = "r3";
  eval.op = Op::kEvaluate;
  eval.model = serve::fleet_model_spec(1, 2);
  eval.discount = 0.9;
  const SystemModel model = eval.model->compose();
  eval.policy.assign(model.num_states(),
                     std::vector<double>(model.num_commands(), 0.0));
  for (auto& row : eval.policy) row[1] = 1.0;
  eval.metrics = {"power", "request_loss"};
  const Request eval_back = serve::parse_request(serve::format_request(eval));
  EXPECT_EQ(serve::format_request(eval_back), serve::format_request(eval));
  EXPECT_EQ(eval_back.policy, eval.policy);
  EXPECT_EQ(eval_back.metrics, eval.metrics);

  for (const Op op : {Op::kStats, Op::kShutdown}) {
    Request admin;
    admin.id = "a";
    admin.op = op;
    const Request admin_back =
        serve::parse_request(serve::format_request(admin));
    EXPECT_EQ(admin_back.op, op);
    EXPECT_EQ(serve::format_request(admin_back), serve::format_request(admin));
  }
}

TEST(ServeProtocol, WireFieldOrderDoesNotMatter) {
  // The same request with members permuted parses to the same Request
  // (and therefore the same keys — the engine never sees raw bytes).
  const std::string a =
      R"({"id":"x","op":"optimize","discount":0.999,"objective":"power",)"
      R"("constraints":[{"metric":"queue_length","bound":0.5}],)"
      R"("model_ref":"00ff00ff00ff00ff"})";
  const std::string b =
      R"({"constraints":[{"bound":0.5,"metric":"queue_length"}],)"
      R"("objective":"power","op":"optimize","discount":0.999,)"
      R"("model_ref":"00ff00ff00ff00ff","id":"x"})";
  // optimize normally requires an inline model; use reoptimize so the
  // permuted lines stay self-contained.
  const std::string a2 = a, b2 = b;
  Request ra = serve::parse_request(
      std::string(a2).replace(a2.find("optimize"), 8, "reoptimize"));
  Request rb = serve::parse_request(
      std::string(b2).replace(b2.find("optimize"), 8, "reoptimize"));
  EXPECT_EQ(serve::format_request(ra), serve::format_request(rb));
}

TEST(ServeProtocol, OpAndKeyHelpersRoundTrip) {
  for (std::size_t i = 0; i < serve::kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    const char* name = serve::to_string(op);
    ASSERT_NE(name, nullptr);
    const std::optional<Op> back = serve::parse_op(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(serve::parse_op("solve").has_value());

  const std::uint64_t key = 0x0123456789ABCDEFull;
  const std::string hex = serve::key_to_hex(key);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(serve::key_from_hex(hex), key);
  EXPECT_FALSE(serve::key_from_hex("not-a-key").has_value());
  EXPECT_FALSE(serve::key_from_hex("0123456789abcde").has_value());   // short
  EXPECT_FALSE(serve::key_from_hex("0123456789abcdefff").has_value());
}

// --- typed rejections -------------------------------------------------

TEST(ServeProtocol, MalformedRequestsAreTypedRejections) {
  PolicyEngine engine{EngineOptions{}};
  EXPECT_EQ(expect_error_code(engine, "{truncated"), "bad-json");
  EXPECT_EQ(expect_error_code(engine, R"({"op":"teleport"})"), "unknown-op");
  // optimize without a model.
  EXPECT_EQ(expect_error_code(engine, R"({"op":"optimize"})"), "bad-request");
  // discount outside (0, 1).
  Request r = rich_optimize();
  r.discount = 1.0;
  EXPECT_EQ(expect_error_code(engine, serve::format_request(r)),
            "bad-request");
  // unknown metric names are caught at parse time.
  r = rich_optimize();
  r.objective = "entropy";
  EXPECT_EQ(expect_error_code(engine, serve::format_request(r)),
            "unknown-metric");
  r = rich_optimize();
  r.constraints[0].metric = "entropy";
  EXPECT_EQ(expect_error_code(engine, serve::format_request(r)),
            "unknown-metric");
  // reoptimize against a key nobody registered.
  Request miss;
  miss.op = Op::kReoptimize;
  miss.model_ref = "00ff00ff00ff00ff";
  miss.constraints.push_back(rich_optimize().constraints[0]);
  EXPECT_EQ(expect_error_code(engine, serve::format_request(miss)),
            "unknown-model");
  // a model that fails composition (non-stochastic transition row).
  r = rich_optimize();
  r.model->transitions[0](0, 0) = 0.25;  // row no longer sums to 1
  EXPECT_EQ(expect_error_code(engine, serve::format_request(r)), "bad-model");

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.rejections, 8u);
  EXPECT_EQ(counters.cold_solves, 0u);
}

// --- request-key properties -------------------------------------------

std::uint64_t structural_key_of(const Request& r) {
  return serve::structural_request_key(r.model->compose(), r.discount,
                                       r.objective, r.constraints);
}

TEST(ServeKeys, EverySinglePerturbationChangesTheStructuralKey) {
  const Request base = rich_optimize();
  const std::uint64_t key = structural_key_of(base);

  std::vector<std::pair<const char*, Request>> variants;
  const auto add = [&](const char* what, Request r) {
    variants.emplace_back(what, std::move(r));
  };
  {
    Request r = base;
    r.discount = 0.9991;
    add("discount", r);
  }
  {
    Request r = base;
    r.objective = "queue_length";
    add("objective metric", r);
  }
  {
    Request r = base;
    r.constraints[0].metric = "request_loss";
    add("constraint metric", r);
  }
  {
    Request r = base;
    r.constraints[1].lower_bound = false;
    add("constraint sense", r);
  }
  {
    Request r = base;
    r.constraints.pop_back();
    add("constraint count", r);
  }
  {
    Request r = base;
    r.model->service_rate(0, 0) = 0.81;
    add("service rate", r);
  }
  {
    Request r = base;
    r.model->power(0, 0) = 3.01;
    add("power entry", r);
  }
  {
    Request r = base;
    r.model->requester_transitions(0, 0) = 0.94;
    r.model->requester_transitions(0, 1) = 0.06;
    add("requester transition", r);
  }
  {
    Request r = base;
    r.model->queue_capacity = 3;
    add("queue capacity", r);
  }
  for (const auto& [what, r] : variants) {
    EXPECT_NE(structural_key_of(r), key) << "perturbing " << what
                                         << " must change the key";
  }
  // ...while a pure rhs move (bound, initial distribution) must NOT:
  // that is exactly the data a warm basis survives.
  Request moved = base;
  moved.constraints[0].bound = 0.75;
  moved.initial.assign(moved.initial.size(), 0.0);
  moved.initial[0] = 1.0;
  EXPECT_EQ(structural_key_of(moved), key);
}

TEST(ServeKeys, SolveKeySeparatesBoundsAndResponseShape) {
  const Request base = rich_optimize();
  const SystemModel model = base.model->compose();
  OptimizerConfig config;
  config.discount = base.discount;
  PolicyOptimizer optimizer(model, config);
  std::vector<OptimizationConstraint> cons;
  for (const auto& c : base.constraints) {
    cons.push_back({serve::metric_by_name(model, c.metric), c.bound, c.name});
  }
  lp::LpProblem lp =
      optimizer.build_lp(serve::metric_by_name(model, base.objective), cons);

  const std::uint64_t structural = structural_key_of(base);
  const std::uint64_t full = serve::solve_request_key(structural, lp, false);
  EXPECT_NE(serve::solve_request_key(structural, lp, true), full);

  lp::LpProblem moved = lp;
  moved.set_rhs(0, lp.constraints()[0].rhs + 0.125);
  EXPECT_NE(serve::solve_request_key(structural, moved, false), full);
}

TEST(ServeKeys, EvaluateKeyCoversPolicyAndMetricList) {
  const ModelSpec spec = serve::fleet_model_spec(0, 2);
  const SystemModel model = spec.compose();
  const linalg::Vector p0 = model.uniform_distribution();
  linalg::Matrix policy(model.num_states(), model.num_commands());
  for (std::size_t s = 0; s < model.num_states(); ++s) policy(s, 0) = 1.0;

  const std::uint64_t key =
      serve::evaluate_request_key(model, 0.999, p0, policy, {"power"});
  EXPECT_NE(serve::evaluate_request_key(model, 0.998, p0, policy, {"power"}),
            key);
  EXPECT_NE(serve::evaluate_request_key(model, 0.999, p0, policy,
                                        {"power", "queue_length"}),
            key);
  linalg::Matrix flipped = policy;
  flipped(0, 0) = 0.0;
  flipped(0, 1) = 1.0;
  EXPECT_NE(serve::evaluate_request_key(model, 0.999, p0, flipped, {"power"}),
            key);
  linalg::Vector skewed(p0.size(), 0.0);
  skewed[0] = 1.0;
  EXPECT_NE(serve::evaluate_request_key(model, 0.999, skewed, policy,
                                        {"power"}),
            key);
}

// --- exact-hit tier ---------------------------------------------------

TEST(ServeEngine, ExactHitReplaysByteIdenticalWithZeroPivots) {
  PolicyEngine engine{EngineOptions{}};
  Request r = rich_optimize();
  r.constraints[0].bound = 0.45;  // feasible at capacity 2 for variant 0
  const std::string line = serve::format_request(r);

  const std::string cold = engine.handle_line(line);
  EXPECT_NE(cold.find("\"status\":\"ok\""), std::string::npos) << cold;
  const EngineCounters after_cold = engine.counters();
  EXPECT_EQ(after_cold.cold_solves, 1u);
  EXPECT_EQ(after_cold.exact_hits, 0u);
  EXPECT_GT(after_cold.cold_pivots, 0u);

  const std::string replay = engine.handle_line(line);
  EXPECT_EQ(replay, cold);  // byte-identical, id included
  const EngineCounters after_replay = engine.counters();
  EXPECT_EQ(after_replay.exact_hits, 1u);
  EXPECT_EQ(after_replay.cold_pivots, after_cold.cold_pivots);
  EXPECT_EQ(after_replay.repair_pivots, after_cold.repair_pivots);

  // A different request id replays the same cached body: the responses
  // differ only in the id field.
  Request renamed = r;
  renamed.id = "r9";
  const std::string other = engine.handle_line(serve::format_request(renamed));
  EXPECT_EQ(engine.counters().exact_hits, 2u);
  const std::string cold_body = cold.substr(cold.find("\"status\""));
  const std::string other_body = other.substr(other.find("\"status\""));
  EXPECT_EQ(other_body, cold_body);
  EXPECT_NE(other, cold);
}

TEST(ServeEngine, ModelRefReoptimizeWarmStartsTheSession) {
  PolicyEngine engine{EngineOptions{}};
  Request r = rich_optimize();
  r.constraints[0].bound = 0.45;
  const std::string cold = engine.handle_line(serve::format_request(r));
  const JsonValue parsed = JsonValue::parse(cold);
  ASSERT_NE(parsed.get("model_ref"), nullptr) << cold;
  const std::string ref = parsed.get("model_ref")->as_string();

  Request reopt;
  reopt.id = "warm";
  reopt.op = Op::kReoptimize;
  reopt.model_ref = ref;
  reopt.discount = r.discount;
  reopt.objective = r.objective;
  reopt.constraints = r.constraints;
  reopt.constraints[0].bound = 0.55;
  reopt.want_policy = true;
  const std::string warm = engine.handle_line(serve::format_request(reopt));
  EXPECT_NE(warm.find("\"status\":\"ok\""), std::string::npos) << warm;

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.cold_solves, 1u);
  EXPECT_EQ(counters.near_hits, 1u);
  EXPECT_EQ(engine.num_sessions(), 1u);
}

TEST(ServeEngine, ModelRefMismatchedDiscountOrObjectiveIsRejected) {
  PolicyEngine engine{EngineOptions{}};
  Request r = rich_optimize();
  r.constraints[0].bound = 0.45;
  const std::string cold = engine.handle_line(serve::format_request(r));
  const JsonValue parsed = JsonValue::parse(cold);
  ASSERT_NE(parsed.get("model_ref"), nullptr) << cold;
  const std::string ref = parsed.get("model_ref")->as_string();

  Request reopt;
  reopt.op = Op::kReoptimize;
  reopt.model_ref = ref;
  reopt.discount = r.discount;
  reopt.objective = r.objective;
  reopt.constraints = r.constraints;
  reopt.constraints[0].bound = 0.55;

  // An explicit discount or objective that disagrees with the session
  // would silently answer a different problem: typed rejection instead.
  Request bad = reopt;
  bad.discount = 0.9;
  EXPECT_EQ(expect_error_code(engine, serve::format_request(bad)),
            "bad-request");
  bad = reopt;
  bad.objective = "queue_length";
  EXPECT_EQ(expect_error_code(engine, serve::format_request(bad)),
            "bad-request");
  EXPECT_EQ(engine.counters().near_hits, 0u);

  // Omitting the fields reuses the session's values: still a near hit.
  const std::string sparse =
      "{\"op\":\"reoptimize\",\"model_ref\":\"" + ref +
      "\",\"constraints\":[{\"metric\":\"queue_length\",\"bound\":0.55},"
      "{\"metric\":\"throughput\",\"bound\":0.01,\"sense\":\"ge\"}]}";
  const std::string warm = engine.handle_line(sparse);
  EXPECT_NE(warm.find("\"status\":\"ok\""), std::string::npos) << warm;
  EXPECT_EQ(engine.counters().near_hits, 1u);
}

// --- session eviction -------------------------------------------------

TEST(ServeEngine, EvictedSessionRecomputesByteIdenticalColdSolve) {
  EngineOptions opts;
  opts.max_sessions = 1;
  PolicyEngine engine(opts);

  Request a = rich_optimize();  // variant 0
  a.constraints[0].bound = 0.45;
  const std::string a_line = serve::format_request(a);
  Request b = a;  // distinct structure: different design
  b.model = serve::fleet_model_spec(1, 2);
  const std::string b_line = serve::format_request(b);
  // The would-be near hit: same structure as `a`, moved bound.
  Request a_moved = a;
  a_moved.constraints[0].bound = 0.55;
  const std::string a_moved_line = serve::format_request(a_moved);

  EXPECT_NE(engine.handle_line(a_line).find("\"status\":\"ok\""),
            std::string::npos);
  EXPECT_EQ(engine.num_sessions(), 1u);
  EXPECT_NE(engine.handle_line(b_line).find("\"status\":\"ok\""),
            std::string::npos);
  // The LRU bound held: b's insert evicted a's session.
  EXPECT_EQ(engine.num_sessions(), 1u);
  EXPECT_EQ(engine.counters().session_evictions, 1u);

  // The moved bound would have warm-started from a's basis; with the
  // session evicted it must demote to a cold solve — and the canonical
  // finish makes that cold solve byte-identical to one on a fresh
  // engine that never had the warm state.
  const std::string demoted = engine.handle_line(a_moved_line);
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.cold_solves, 3u);
  EXPECT_EQ(counters.near_hits, 0u);
  EngineOptions fresh_opts;
  fresh_opts.cache = false;
  PolicyEngine fresh(fresh_opts);
  EXPECT_EQ(demoted, fresh.handle_line(a_moved_line));

  // Eviction drops only the warm-start state: the response cache still
  // replays a's original bytes as an exact hit.
  const std::string replay = engine.handle_line(a_line);
  EXPECT_EQ(engine.counters().exact_hits, 1u);
  PolicyEngine fresh2(fresh_opts);
  EXPECT_EQ(replay, fresh2.handle_line(a_line));
}

TEST(ServeEngine, SessionEvictionIsLeastRecentlyUsed) {
  EngineOptions opts;
  opts.max_sessions = 2;
  PolicyEngine engine(opts);

  const auto line = [](std::size_t variant, double bound) {
    Request r;
    r.op = Op::kOptimize;
    r.model = serve::fleet_model_spec(variant, 2);
    r.discount = 0.999;
    r.objective = "power";
    ConstraintSpec c;
    c.metric = "queue_length";
    c.bound = bound;
    r.constraints.push_back(c);
    return serve::format_request(r);
  };

  engine.handle_line(line(0, 0.45));  // session A
  engine.handle_line(line(1, 0.45));  // session B
  engine.handle_line(line(0, 0.50));  // near hit touches A: B is now LRU
  engine.handle_line(line(2, 0.45));  // session C evicts B, not A
  EXPECT_EQ(engine.counters().session_evictions, 1u);

  engine.handle_line(line(0, 0.55));  // A survived: near hit
  EXPECT_EQ(engine.counters().near_hits, 2u);
  engine.handle_line(line(1, 0.55));  // B was evicted: cold again
  EXPECT_EQ(engine.counters().cold_solves, 4u);
}

TEST(ServeEngine, ServerEventNotesLandInStats) {
  PolicyEngine engine{EngineOptions{}};
  engine.note_shed_connection();
  engine.note_oversized_line();
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.conn_sheds, 1u);
  EXPECT_EQ(counters.rejections, 1u);

  const std::string stats = engine.handle_line(R"({"id":"s","op":"stats"})");
  const JsonValue parsed = JsonValue::parse(stats);
  ASSERT_NE(parsed.get("counters"), nullptr);
  EXPECT_EQ(parsed.get("counters")->number_at("conn_sheds"), 1.0);
  EXPECT_EQ(parsed.get("counters")->number_at("sheds"), 0.0);
  EXPECT_EQ(parsed.get("counters")->number_at("session_evictions"), 0.0);
}

TEST(ServeEngine, StatsAndShutdownAreServed) {
  PolicyEngine engine{EngineOptions{}};
  const std::string stats = engine.handle_line(R"({"id":"s","op":"stats"})");
  const JsonValue parsed = JsonValue::parse(stats);
  EXPECT_EQ(parsed.string_at("status"), "ok");
  ASSERT_NE(parsed.get("counters"), nullptr);
  EXPECT_NE(parsed.get("counters")->get("requests"), nullptr);
  ASSERT_NE(parsed.get("latency"), nullptr);

  EXPECT_FALSE(engine.shutdown_requested());
  const std::string bye = engine.handle_line(R"({"id":"q","op":"shutdown"})");
  EXPECT_NE(bye.find("\"status\":\"ok\""), std::string::npos) << bye;
  EXPECT_TRUE(engine.shutdown_requested());
}

}  // namespace
}  // namespace dpm
