// Forrest–Tomlin basis-update machinery: agreement with from-scratch
// factorizations across long update runs and adversarial permutation
// patterns, plus degenerate-pivot stress on the simplex that drives it.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/sparse_lu.h"
#include "lp/solver.h"

namespace dpm {
namespace {

using linalg::BasisFactorization;
using linalg::SparseColumn;
using linalg::Vector;

SparseColumn random_column(std::mt19937_64& gen, int n, int nnz,
                           std::size_t diag, double diag_boost) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<int> pick(0, n - 1);
  SparseColumn col;
  std::vector<char> used(n, 0);
  for (int k = 0; k < nnz; ++k) {
    const int r = pick(gen);
    if (!used[r]) {
      used[r] = 1;
      col.emplace_back(static_cast<std::size_t>(r), u(gen));
    }
  }
  bool has_diag = false;
  for (auto& [r, v] : col) {
    if (r == diag) {
      v += diag_boost;
      has_diag = true;
    }
  }
  if (!has_diag) col.emplace_back(diag, diag_boost);
  return col;
}

/// Long Forrest–Tomlin chains at several orders: after every update,
/// ftran and btran must agree with a fresh factorization of the updated
/// basis to the drift bound that motivates periodic refactorization.
class FtChainTest : public ::testing::TestWithParam<int> {};

TEST_P(FtChainTest, LongUpdateRunsTrackFreshFactorization) {
  const int n = GetParam();
  std::mt19937_64 gen(911 + n);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<int> pick(0, n - 1);

  std::vector<SparseColumn> cols(n);
  for (int j = 0; j < n; ++j) {
    cols[j] = random_column(gen, n, 4, static_cast<std::size_t>(j), 6.0);
  }
  // A large interval so the FT chain, not the cap, is what is tested.
  BasisFactorization fac(/*refactor_interval=*/512);
  ASSERT_TRUE(fac.refactorize(n, cols));

  Vector b(n);
  for (auto& v : b) v = u(gen);
  const int steps = 3 * n;
  for (int step = 0; step < steps; ++step) {
    const std::size_t r = static_cast<std::size_t>(pick(gen));
    SparseColumn incoming =
        random_column(gen, n, 4, r, 6.0);

    Vector d(n, 0.0);
    for (const auto& [row, v] : incoming) d[row] += v;
    fac.ftran(d, /*cache_spike=*/true);  // the production update path
    if (!fac.update(r, d)) {
      cols[r] = incoming;
      ASSERT_TRUE(fac.refactorize(n, cols));
      continue;
    }
    cols[r] = incoming;

    Vector via_updates = b;
    fac.ftran(via_updates);
    BasisFactorization fresh(512);
    ASSERT_TRUE(fresh.refactorize(n, cols));
    Vector via_fresh = b;
    fresh.ftran(via_fresh);
    for (int i = 0; i < n; ++i) {
      ASSERT_NEAR(via_updates[i], via_fresh[i], 1e-7)
          << "ftran, step " << step << " entry " << i;
    }
    Vector bt_updates = b;
    fac.btran(bt_updates);
    Vector bt_fresh = b;
    fresh.btran(bt_fresh);
    for (int i = 0; i < n; ++i) {
      ASSERT_NEAR(bt_updates[i], bt_fresh[i], 1e-7)
          << "btran, step " << step << " entry " << i;
    }
  }
  EXPECT_GT(fac.updates_since_refactor(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Orders, FtChainTest, ::testing::Values(5, 17, 60));

TEST(FtUpdate, RepeatedSameSlotReplacement) {
  // Re-spiking the same column drives the cyclic permutation's
  // worst-case bookkeeping: the spiked label returns to the end of the
  // order every time while the rest rotates around it.
  const int n = 24;
  std::mt19937_64 gen(77);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<SparseColumn> cols(n);
  for (int j = 0; j < n; ++j) {
    cols[j] = random_column(gen, n, 3, static_cast<std::size_t>(j), 5.0);
  }
  BasisFactorization fac(256);
  ASSERT_TRUE(fac.refactorize(n, cols));
  Vector b(n);
  for (auto& v : b) v = u(gen);
  for (int step = 0; step < 40; ++step) {
    const std::size_t r = static_cast<std::size_t>(step % 3);  // slots 0..2
    SparseColumn incoming = random_column(gen, n, 3, r, 5.0);
    Vector d(n, 0.0);
    for (const auto& [row, v] : incoming) d[row] += v;
    fac.ftran(d, /*cache_spike=*/true);
    if (!fac.update(r, d)) {
      cols[r] = incoming;
      ASSERT_TRUE(fac.refactorize(n, cols));
      continue;
    }
    cols[r] = incoming;
    BasisFactorization fresh(256);
    ASSERT_TRUE(fresh.refactorize(n, cols));
    Vector x1 = b, x2 = b;
    fac.ftran(x1);
    fresh.ftran(x2);
    for (int i = 0; i < n; ++i) {
      ASSERT_NEAR(x1[i], x2[i], 1e-7) << "step " << step;
    }
  }
}

TEST(FtUpdate, AmortizedTriggerFiresUnderSweepLoad) {
  // The work-based trigger integrates update fill over sweeps: enough
  // ftrans against a grown transform must eventually demand a rebuild
  // even when the update-count cap is far away.
  const int n = 30;
  std::mt19937_64 gen(13);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<int> pick(0, n - 1);
  std::vector<SparseColumn> cols(n);
  for (int j = 0; j < n; ++j) {
    cols[j] = random_column(gen, n, 5, static_cast<std::size_t>(j), 6.0);
  }
  BasisFactorization fac(/*refactor_interval=*/100000, /*pivot_tol=*/1e-11,
                         /*work_ratio=*/1.0);
  ASSERT_TRUE(fac.refactorize(n, cols));
  Vector b(n);
  for (auto& v : b) v = u(gen);
  bool fired = false;
  for (int step = 0; step < 2000 && !fired; ++step) {
    const std::size_t r = static_cast<std::size_t>(pick(gen));
    SparseColumn incoming = random_column(gen, n, 5, r, 6.0);
    Vector d(n, 0.0);
    for (const auto& [row, v] : incoming) d[row] += v;
    fac.ftran(d);
    if (!fac.update(r, d)) {
      cols[r] = incoming;
      ASSERT_TRUE(fac.refactorize(n, cols));
      continue;
    }
    cols[r] = incoming;
    Vector x = b;
    fac.ftran(x);  // sweep traffic feeds the work accumulator
    fired = fac.needs_refactor();
  }
  EXPECT_TRUE(fired) << "amortized trigger never fired";
}

// ---------------------------------------------------------------------
// Degenerate-pivot stress on the revised simplex driving the FT update
// ---------------------------------------------------------------------

TEST(DegenerateStress, BealeCyclingExampleSolvesUnderEveryPricingRule) {
  // Beale's classic example cycles forever under naive Dantzig pricing
  // with fixed tie-breaking; the stall detection + Bland fallback must
  // terminate it at the known optimum under every pricing rule.
  using Pricing = lp::RevisedSimplexOptions::Pricing;
  for (const Pricing pricing :
       {Pricing::kDantzig, Pricing::kPartial, Pricing::kPartialDevex,
        Pricing::kSteepestEdge}) {
    lp::LpProblem p;
    p.add_variable(-0.75);
    p.add_variable(150.0);
    p.add_variable(-0.02);
    p.add_variable(6.0);
    p.add_constraint(
        {{{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, lp::Sense::kLe, 0.0});
    p.add_constraint(
        {{{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, lp::Sense::kLe, 0.0});
    p.add_constraint({{{2, 1.0}}, lp::Sense::kLe, 1.0});
    lp::RevisedSimplexOptions opt;
    opt.pricing = pricing;
    const lp::LpSolution s = lp::solve_revised_simplex(p, opt);
    ASSERT_EQ(s.status, lp::LpStatus::kOptimal)
        << "pricing " << static_cast<int>(pricing);
    EXPECT_NEAR(s.objective, -0.05, 1e-9)
        << "pricing " << static_cast<int>(pricing);
  }
}

TEST(DegenerateStress, ConcentratedInitialDistributionPolicyLp) {
  // A balance-equation LP with p0 concentrated on one state: all but
  // one rhs entry is zero, so almost every basis is degenerate — long
  // zero-step pivot runs exercise the FT update + stall machinery.
  const std::size_t n = 40, na = 3, succ = 2;
  const double gamma = 0.999;
  std::mt19937_64 gen(4242);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  lp::LpProblem p;
  for (std::size_t col = 0; col < n * na; ++col) p.add_variable(u(gen));
  std::vector<lp::Constraint> balance(n);
  for (std::size_t j = 0; j < n; ++j) {
    balance[j].sense = lp::Sense::kEq;
    balance[j].rhs = j == 0 ? 1.0 : 0.0;  // concentrated p0
  }
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      const std::size_t col = s * na + a;
      balance[s].terms.emplace_back(col, 1.0);
      double total = 0.0;
      std::vector<std::pair<std::size_t, double>> row(succ);
      for (auto& [to, w] : row) {
        to = pick(gen);
        w = 0.1 + u(gen);
        total += w;
      }
      for (const auto& [to, w] : row) {
        balance[to].terms.emplace_back(col, -gamma * w / total);
      }
    }
  }
  for (auto& c : balance) p.add_constraint(std::move(c));

  const lp::LpSolution reference = lp::solve_simplex(p);
  ASSERT_EQ(reference.status, lp::LpStatus::kOptimal);
  using Pricing = lp::RevisedSimplexOptions::Pricing;
  for (const Pricing pricing :
       {Pricing::kDantzig, Pricing::kPartial, Pricing::kPartialDevex}) {
    lp::RevisedSimplexOptions opt;
    opt.pricing = pricing;
    const lp::LpSolution s = lp::solve_revised_simplex(p, opt);
    ASSERT_EQ(s.status, lp::LpStatus::kOptimal)
        << "pricing " << static_cast<int>(pricing);
    EXPECT_NEAR(s.objective, reference.objective,
                1e-6 * (1.0 + std::abs(reference.objective)))
        << "pricing " << static_cast<int>(pricing);
    EXPECT_LT(p.max_violation(s.x), 1e-7);
  }
}

}  // namespace
}  // namespace dpm
