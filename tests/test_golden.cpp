// Golden-baseline regression tier.
//
// Five representative scenarios (the running example, disk, CPU, and
// web-server case studies, plus the dpmd serving tier) have smoke-size
// baseline JSON checked in
// under tests/golden/.  Each test runs its scenario in-process on the
// ExperimentRunner and drives the --compare comparator
// (scenario/compare.h) against the baseline under the scenario's
// declared tolerances — so a build whose results drift (a solver
// change landing on a different vertex, a simulation semantics change,
// a lost record) fails here mechanically instead of being caught by
// hand-widened smoke tolerances.
//
// Regenerating baselines (after a *deliberate* result change — see
// docs/bench-format.md, "Golden baselines"):
//   build/bench_scenarios --smoke --quiet \
//     --exact example_a2 --exact fig08_disk \
//     --exact fig09b_cpu --exact fig09a_webserver \
//     --exact serve --baseline-out tests/golden
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/compare.h"
#include "scenario/json.h"
#include "scenario/registry.h"
#include "scenario/runner.h"

#ifndef DPMOPT_GOLDEN_DIR
#error "DPMOPT_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace dpm {
namespace {

using scenario::CompareReport;
using scenario::ExperimentRunner;
using scenario::Record;
using scenario::RunnerOptions;
using scenario::ScenarioRunResult;

constexpr const char* kGoldenScenarios[] = {
    "example_a2",
    "fig08_disk",
    "fig09b_cpu",
    "fig09a_webserver",
    "serve",
};

std::string golden_path(const std::string& name) {
  return std::string(DPMOPT_GOLDEN_DIR) + "/" + name + ".json";
}

std::vector<Record> load_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in) << "missing golden baseline " << golden_path(name);
  std::ostringstream text;
  text << in.rdbuf();
  return scenario::parse_baseline(text.str());
}

ScenarioRunResult run_smoke(const scenario::Scenario& sc) {
  RunnerOptions opts;
  opts.jobs = 2;
  opts.smoke = true;  // baselines are recorded at --smoke sizes
  opts.print = false;
  opts.write_json = false;
  return ExperimentRunner(opts).run_one(sc);
}

class GoldenScenario : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenScenario, MatchesCheckedInBaseline) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find(GetParam());
  ASSERT_NE(sc, nullptr);
  const ScenarioRunResult res = run_smoke(*sc);
  for (const std::string& failure : res.failures) {
    ADD_FAILURE() << sc->name << " shape check: " << failure;
  }
  const std::vector<Record> baseline = load_golden(sc->name);
  ASSERT_FALSE(baseline.empty());
  const CompareReport report =
      scenario::compare_records(*sc, baseline, res.records);
  EXPECT_TRUE(report.ok()) << scenario::format_report(report);
  EXPECT_EQ(report.compared, baseline.size());
}

INSTANTIATE_TEST_SUITE_P(Registry, GoldenScenario,
                         ::testing::ValuesIn(kGoldenScenarios),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// The golden directory and the test parameter list must agree in both
// directions: a baseline nobody compares is dead weight, a compared
// scenario without a baseline is a hole.
TEST(GoldenScenario, DirectoryMatchesParameterList) {
  std::set<std::string> on_disk;
  for (const auto& entry :
       std::filesystem::directory_iterator(DPMOPT_GOLDEN_DIR)) {
    if (entry.path().extension() == ".json") {
      on_disk.insert(entry.path().stem().string());
    }
  }
  std::set<std::string> expected;
  for (const char* name : kGoldenScenarios) expected.insert(name);
  EXPECT_EQ(on_disk, expected);
}

// The comparator itself must catch every structural drift class: a
// moved objective, a missing record, an extra record.  Exercised on
// real baseline data so the failure paths stay wired to the formats
// the golden tier actually uses.
TEST(GoldenComparator, DetectsInjectedDrift) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("example_a2");
  ASSERT_NE(sc, nullptr);
  const std::vector<Record> baseline = load_golden("example_a2");
  ASSERT_GE(baseline.size(), 2u);

  // Identity compares clean.
  EXPECT_TRUE(scenario::compare_records(*sc, baseline, baseline).ok());

  // Objective drift beyond every declared tolerance.
  std::vector<Record> drifted = baseline;
  drifted.front().objective += 1.0;
  const CompareReport drift =
      scenario::compare_records(*sc, baseline, drifted);
  ASSERT_FALSE(drift.ok());
  EXPECT_NE(scenario::format_report(drift).find("objective drifted"),
            std::string::npos);

  // A record that disappeared from the fresh run.
  std::vector<Record> shrunk = baseline;
  shrunk.pop_back();
  const CompareReport missing =
      scenario::compare_records(*sc, baseline, shrunk);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(scenario::format_report(missing).find("missing record"),
            std::string::npos);

  // A record the baseline does not know.
  std::vector<Record> grown = baseline;
  grown.push_back({"new record", 0.0, 1, 2.0});
  const CompareReport extra = scenario::compare_records(*sc, baseline, grown);
  ASSERT_FALSE(extra.ok());
  EXPECT_NE(scenario::format_report(extra).find("extra record"),
            std::string::npos);

  // Iteration blowup (a lost warm start), beyond abs 50 + rel 1.0.
  std::vector<Record> slow = baseline;
  slow.front().iterations = slow.front().iterations * 3 + 200;
  const CompareReport iters = scenario::compare_records(*sc, baseline, slow);
  ASSERT_FALSE(iters.ok());
  EXPECT_NE(scenario::format_report(iters).find("iterations blew up"),
            std::string::npos);
}

}  // namespace
}  // namespace dpm
