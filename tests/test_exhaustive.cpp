// Exhaustive global-optimality checks on small random models.
//
// The cardinality of the deterministic stationary Markov class D is
// A^S (paper Sec. III-B); for S = 8, A = 2 that is 256 policies — small
// enough to enumerate.  These tests brute-force ALL of D and verify the
// library's optimality theorems against it:
//   * LP2's optimum equals the best deterministic policy (Theorem A.1);
//   * with constraints, the LP optimum lower-bounds every *feasible*
//     deterministic policy, and when some deterministic policy is
//     infeasible-but-cheaper, randomization closes the gap
//     (Theorem A.2);
//   * the average-cost optimizer lower-bounds every unichain
//     deterministic policy's stationary cost.
#include <gtest/gtest.h>

#include <random>

#include "dpm/average_optimizer.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "markov/markov_chain.h"

namespace dpm {
namespace {

// Random 2-state SP x 2-state SR x queue-1 model => 8 states, 2 commands.
SystemModel random_model(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.05, 0.95);
  CommandSet commands({"a", "b"});
  ServiceProvider::Builder b(2, commands);
  for (std::size_t cmd = 0; cmd < 2; ++cmd) {
    for (std::size_t s = 0; s < 2; ++s) {
      const double p = u(gen);
      b.transition(cmd, s, 0, p);
      b.transition(cmd, s, 1, 1.0 - p);
      b.service_rate(s, cmd, u(gen));
      b.power(s, cmd, 3.0 * u(gen));
    }
  }
  return SystemModel::compose(std::move(b).build(),
                              ServiceRequester::two_state(u(gen), u(gen)),
                              1);
}

std::vector<Policy> all_deterministic(const SystemModel& m) {
  const std::size_t n = m.num_states();
  const std::size_t na = m.num_commands();
  std::size_t count = 1;
  for (std::size_t s = 0; s < n; ++s) count *= na;
  std::vector<Policy> out;
  out.reserve(count);
  for (std::size_t code = 0; code < count; ++code) {
    std::vector<std::size_t> actions(n);
    std::size_t c = code;
    for (std::size_t s = 0; s < n; ++s) {
      actions[s] = c % na;
      c /= na;
    }
    out.push_back(Policy::deterministic(actions, na));
  }
  return out;
}

class ExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveTest, Lp2EqualsBestDeterministic) {
  const SystemModel m = random_model(1000 + GetParam());
  const double gamma = 0.9;
  OptimizerConfig cfg;
  cfg.discount = gamma;
  cfg.initial_distribution = m.point_distribution({0, 0, 0});
  const PolicyOptimizer opt(m, cfg);
  const OptimizationResult lp = opt.minimize(metrics::power(m));
  ASSERT_TRUE(lp.feasible);

  double best = 1e300;
  for (const Policy& p : all_deterministic(m)) {
    const PolicyEvaluation ev(m, p, gamma, cfg.initial_distribution);
    best = std::min(best, ev.per_step(metrics::power(m)));
  }
  // Theorem A.1: the unconstrained optimum is attained in D.
  EXPECT_NEAR(lp.objective_per_step, best, 1e-7) << "seed " << GetParam();
}

TEST_P(ExhaustiveTest, ConstrainedLpLowerBoundsFeasibleDeterministic) {
  const SystemModel m = random_model(2000 + GetParam());
  const double gamma = 0.9;
  OptimizerConfig cfg;
  cfg.discount = gamma;
  cfg.initial_distribution = m.point_distribution({0, 0, 0});
  const PolicyOptimizer opt(m, cfg);

  // Pick a bound between the unconstrained queue and the min queue so
  // the constraint is meaningful for this random instance.
  double min_queue = 1e300, max_queue = -1e300;
  for (const Policy& p : all_deterministic(m)) {
    const PolicyEvaluation ev(m, p, gamma, cfg.initial_distribution);
    const double ql = ev.per_step(metrics::queue_length(m));
    min_queue = std::min(min_queue, ql);
    max_queue = std::max(max_queue, ql);
  }
  const double bound = 0.5 * (min_queue + max_queue);

  const OptimizationResult lp = opt.minimize_power(bound);
  ASSERT_TRUE(lp.feasible) << "seed " << GetParam();

  double best_feasible_det = 1e300;
  for (const Policy& p : all_deterministic(m)) {
    const PolicyEvaluation ev(m, p, gamma, cfg.initial_distribution);
    if (ev.per_step(metrics::queue_length(m)) > bound + 1e-12) continue;
    best_feasible_det =
        std::min(best_feasible_det, ev.per_step(metrics::power(m)));
  }
  // Theorem A.2: the (possibly randomized) LP optimum can only improve
  // on the best feasible deterministic policy.
  EXPECT_LE(lp.objective_per_step, best_feasible_det + 1e-7)
      << "seed " << GetParam();
}

TEST_P(ExhaustiveTest, AverageCostLowerBoundsUnichainDeterministic) {
  const SystemModel m = random_model(3000 + GetParam());
  const AverageCostOptimizer opt(m);
  const OptimizationResult lp = opt.minimize(metrics::power(m));
  ASSERT_TRUE(lp.feasible);

  double best = 1e300;
  for (const Policy& p : all_deterministic(m)) {
    const markov::MarkovChain mixed = m.chain().under_policy(p.matrix());
    if (!mixed.is_irreducible()) continue;  // skip multichain cases
    const linalg::Vector pi = mixed.stationary_distribution();
    double power = 0.0;
    for (std::size_t s = 0; s < m.num_states(); ++s) {
      for (std::size_t a = 0; a < m.num_commands(); ++a) {
        power += pi[s] * p.probability(s, a) * m.power(s, a);
      }
    }
    best = std::min(best, power);
  }
  EXPECT_LE(lp.objective_per_step, best + 1e-7) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomModels, ExhaustiveTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace dpm
