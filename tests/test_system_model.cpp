// Tests for SP/SR construction and the SP x SR x SQ composition
// (paper Eqs. 3-4, Example 3.5).
#include <gtest/gtest.h>

#include <cmath>

#include "cases/example_system.h"
#include "dpm/system_model.h"
#include "markov/markov_chain.h"

namespace dpm {
namespace {

using cases::ExampleSystem;

// ---------------------------------------------------------------------
// CommandSet
// ---------------------------------------------------------------------

TEST(CommandSet, LookupByName) {
  const CommandSet c({"s_on", "s_off"});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.index("s_off"), 1u);
  EXPECT_TRUE(c.contains("s_on"));
  EXPECT_FALSE(c.contains("nope"));
  EXPECT_THROW(c.index("nope"), ModelError);
}

TEST(CommandSet, RejectsEmptyAndDuplicates) {
  EXPECT_THROW(CommandSet({}), ModelError);
  EXPECT_THROW(CommandSet({""}), ModelError);
  EXPECT_THROW(CommandSet({"a", "a"}), ModelError);
}

// ---------------------------------------------------------------------
// ServiceProvider builder
// ---------------------------------------------------------------------

TEST(ServiceProvider, ExampleSystemStructure) {
  const ServiceProvider sp = ExampleSystem::make_provider();
  EXPECT_EQ(sp.num_states(), 2u);
  EXPECT_EQ(sp.commands().size(), 2u);
  EXPECT_EQ(sp.state_name(0), "on");
  EXPECT_EQ(sp.state_index("off"), 1u);
  EXPECT_THROW(sp.state_index("zzz"), ModelError);
}

TEST(ServiceProvider, WakeTimeMatchesEquation2) {
  // Example 3.1: off->on under s_on has p = 0.1 => expected 10 slices.
  const ServiceProvider sp = ExampleSystem::make_provider();
  EXPECT_NEAR(sp.expected_transition_time(ExampleSystem::kSpOff,
                                          ExampleSystem::kSpOn,
                                          ExampleSystem::kCmdOn),
              10.0, 1e-12);
  EXPECT_TRUE(std::isinf(sp.expected_transition_time(
      ExampleSystem::kSpOff, ExampleSystem::kSpOn, ExampleSystem::kCmdOff)));
}

TEST(ServiceProvider, SleepStateDetection) {
  const ServiceProvider sp = ExampleSystem::make_provider();
  EXPECT_FALSE(sp.is_sleep_state(ExampleSystem::kSpOn));
  EXPECT_TRUE(sp.is_sleep_state(ExampleSystem::kSpOff));
}

TEST(ServiceProvider, BuilderValidation) {
  CommandSet c({"go"});
  ServiceProvider::Builder b(2, c);
  EXPECT_THROW(b.transition(0, 5, 0, 1.0), ModelError);
  EXPECT_THROW(b.service_rate(0, 0, 1.5), ModelError);
  EXPECT_THROW(b.service_rate(0, 9, 0.5), ModelError);
  EXPECT_THROW(b.power(9, 0, 1.0), ModelError);
  EXPECT_THROW(b.transition_matrix(0, linalg::Matrix(3, 3)), ModelError);
}

TEST(ServiceProvider, UntouchedRowsBecomeSelfLoops) {
  CommandSet c({"go"});
  ServiceProvider::Builder b(2, c);
  b.transition(0, 0, 1, 1.0);  // row 1 untouched
  const ServiceProvider sp = std::move(b).build();
  EXPECT_DOUBLE_EQ(sp.chain().transition(1, 1, 0), 1.0);
}

TEST(ServiceProvider, NonStochasticRowRejectedAtBuild) {
  CommandSet c({"go"});
  ServiceProvider::Builder b(1, c);
  b.transition(0, 0, 0, 0.4);  // row sums to 0.4
  EXPECT_THROW(std::move(b).build(), markov::MarkovError);
}

// ---------------------------------------------------------------------
// ServiceRequester
// ---------------------------------------------------------------------

TEST(ServiceRequester, TwoStateExample) {
  const ServiceRequester sr = ExampleSystem::make_requester();
  EXPECT_EQ(sr.num_states(), 2u);
  EXPECT_EQ(sr.requests(0), 0u);
  EXPECT_EQ(sr.requests(1), 1u);
  EXPECT_EQ(sr.max_requests_per_slice(), 1u);
  // Example 3.2: burst persistence 0.85.
  EXPECT_NEAR(sr.chain().transition(1, 1), 0.85, 1e-12);
}

TEST(ServiceRequester, MeanArrivalRate) {
  // Symmetric chain: stationary (0.5, 0.5); one request in state 1.
  const ServiceRequester sr = ServiceRequester::two_state(0.15, 0.15);
  EXPECT_NEAR(sr.mean_arrival_rate(), 0.5, 1e-12);
}

TEST(ServiceRequester, SizeValidation) {
  EXPECT_THROW(
      ServiceRequester(linalg::Matrix::identity(2), {0u}),
      ModelError);
  EXPECT_THROW(ServiceRequester(linalg::Matrix::identity(2), {0u, 1u},
                                {"only-one"}),
               ModelError);
}

// ---------------------------------------------------------------------
// Queue transition distribution (Eq. 3 incl. corner cases)
// ---------------------------------------------------------------------

TEST(Queue, EmptyNoArrivalsStaysEmpty) {
  const auto d = queue_transition_distribution(0, 0, 0.8, 2);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].first, 0u);
  EXPECT_DOUBLE_EQ(d[0].second, 1.0);
}

TEST(Queue, ZeroRateOnlyFills) {
  const auto d = queue_transition_distribution(1, 1, 0.0, 2);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].first, 2u);
}

TEST(Queue, ServiceSplitsOutcomes) {
  const auto d = queue_transition_distribution(1, 0, 0.8, 2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].first, 0u);
  EXPECT_DOUBLE_EQ(d[0].second, 0.8);
  EXPECT_EQ(d[1].first, 1u);
  EXPECT_DOUBLE_EQ(d[1].second, 0.2);
}

TEST(Queue, FullWithArrivalStaysFull) {
  // Paper corner case: full queue + arrival stays full w.p. 1 (loss),
  // because even a completed service leaves >= capacity requests.
  const auto d = queue_transition_distribution(2, 1, 0.8, 2);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].first, 2u);
}

TEST(Queue, FullNoArrivalCanDrain) {
  const auto d = queue_transition_distribution(2, 0, 0.8, 2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].first, 1u);
  EXPECT_DOUBLE_EQ(d[0].second, 0.8);
}

TEST(Queue, OverflowClampsToCapacity) {
  const auto d = queue_transition_distribution(1, 3, 0.0, 2);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].first, 2u);
}

TEST(Queue, IncomingRequestServedDirectly) {
  // Empty queue, one arrival, service succeeds -> stays empty.
  const auto d = queue_transition_distribution(0, 1, 0.8, 2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].first, 0u);
  EXPECT_DOUBLE_EQ(d[0].second, 0.8);
  EXPECT_EQ(d[1].first, 1u);
}

TEST(Queue, ZeroCapacity) {
  const auto d = queue_transition_distribution(0, 1, 0.5, 0);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].first, 0u);  // either served or lost; queue stays empty
}

TEST(Queue, Validation) {
  EXPECT_THROW(queue_transition_distribution(3, 0, 0.5, 2), ModelError);
  EXPECT_THROW(queue_transition_distribution(0, 0, 1.5, 2), ModelError);
}

// Property: the distribution always sums to 1 and respects capacity.
struct QueueCase {
  std::size_t q;
  unsigned arrivals;
  double rate;
  std::size_t capacity;
};

class QueueProperty : public ::testing::TestWithParam<QueueCase> {};

TEST_P(QueueProperty, ValidDistribution) {
  const QueueCase c = GetParam();
  const auto d =
      queue_transition_distribution(c.q, c.arrivals, c.rate, c.capacity);
  double total = 0.0;
  for (const auto& [q2, p] : d) {
    EXPECT_LE(q2, c.capacity);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QueueProperty,
    ::testing::Values(QueueCase{0, 0, 0.0, 0}, QueueCase{0, 2, 0.5, 1},
                      QueueCase{1, 1, 1.0, 1}, QueueCase{2, 2, 0.3, 3},
                      QueueCase{3, 0, 0.9, 3}, QueueCase{0, 5, 0.5, 2},
                      QueueCase{2, 0, 0.0, 4}, QueueCase{4, 1, 0.7, 4}));

// ---------------------------------------------------------------------
// Composition (Eq. 4)
// ---------------------------------------------------------------------

TEST(Compose, ExampleSystemHasEightStates) {
  const SystemModel m = ExampleSystem::make_model();
  EXPECT_EQ(m.num_states(), 8u);  // 2 SP x 2 SR x 2 SQ (Example 3.5)
  EXPECT_EQ(m.num_commands(), 2u);
  EXPECT_EQ(m.queue_capacity(), 1u);
}

TEST(Compose, IndexRoundTrip) {
  const SystemModel m = ExampleSystem::make_model();
  for (std::size_t i = 0; i < m.num_states(); ++i) {
    EXPECT_EQ(m.index_of(m.decompose(i)), i);
  }
  EXPECT_THROW(m.decompose(8), ModelError);
  EXPECT_THROW(m.index_of({9, 0, 0}), ModelError);
}

TEST(Compose, MatricesAreStochastic) {
  const SystemModel m = ExampleSystem::make_model();
  for (std::size_t a = 0; a < m.num_commands(); ++a) {
    EXPECT_NO_THROW(
        markov::validate_stochastic(m.chain().matrix(a), "composed", 1e-9));
  }
}

TEST(Compose, Example35Transition) {
  // (on, 0, 0) -> (on, 1, 0) under s_on:
  //   p^R(0->1) * b(on, s_on) * p^S(on->on | s_on) = 0.05 * 0.8 * 1.0.
  const SystemModel m = ExampleSystem::make_model();
  const std::size_t from = m.index_of({ExampleSystem::kSpOn, 0, 0});
  const std::size_t to = m.index_of({ExampleSystem::kSpOn, 1, 0});
  EXPECT_NEAR(m.chain().transition(from, to, ExampleSystem::kCmdOn),
              0.05 * 0.8 * 1.0, 1e-12);
  // Under s_off the service rate is zero: the request must queue.
  EXPECT_NEAR(m.chain().transition(from, to, ExampleSystem::kCmdOff), 0.0,
              1e-12);
}

TEST(Compose, CostIngredients) {
  const SystemModel m = ExampleSystem::make_model();
  const std::size_t on00 = m.index_of({ExampleSystem::kSpOn, 0, 0});
  EXPECT_DOUBLE_EQ(m.power(on00, ExampleSystem::kCmdOn), 3.0);
  EXPECT_DOUBLE_EQ(m.power(on00, ExampleSystem::kCmdOff), 4.0);
  EXPECT_DOUBLE_EQ(m.queue_length(on00), 0.0);
  EXPECT_FALSE(m.is_loss_state(on00));
  const std::size_t off11 = m.index_of({ExampleSystem::kSpOff, 1, 1});
  EXPECT_DOUBLE_EQ(m.queue_length(off11), 1.0);
  EXPECT_TRUE(m.is_loss_state(off11));  // requester active, queue full
  const std::size_t off01 = m.index_of({ExampleSystem::kSpOff, 0, 1});
  EXPECT_FALSE(m.is_loss_state(off01));  // no incoming requests
}

TEST(Compose, Distributions) {
  const SystemModel m = ExampleSystem::make_model();
  const linalg::Vector p0 = m.point_distribution({0, 0, 0});
  EXPECT_DOUBLE_EQ(p0[m.index_of({0, 0, 0})], 1.0);
  EXPECT_DOUBLE_EQ(linalg::sum(p0), 1.0);
  EXPECT_NEAR(linalg::sum(m.uniform_distribution()), 1.0, 1e-12);
}

TEST(Compose, StateLabel) {
  const SystemModel m = ExampleSystem::make_model();
  EXPECT_EQ(m.state_label(m.index_of({ExampleSystem::kSpOn, 1, 0})),
            "(on,request,q=0)");
}

TEST(Compose, OverrideChangesDynamics) {
  // Force the SP to stay put regardless of commands whenever the SR
  // moves to its request state.
  ServiceProvider sp = ExampleSystem::make_provider();
  const markov::ControlledMarkovChain base = sp.chain();
  SpTransitionOverride ov = [base](std::size_t f, std::size_t t,
                                   std::size_t a, std::size_t sr_to) {
    if (sr_to == 1) return f == t ? 1.0 : 0.0;
    return base.transition(f, t, a);
  };
  const SystemModel m = SystemModel::compose(
      std::move(sp), ExampleSystem::make_requester(), 1, std::move(ov));
  // From (off, 0, 0) under s_on: reaching (on, 1, *) requires the SP to
  // move while the SR moves to "request" -- forbidden by the override.
  const std::size_t from = m.index_of({ExampleSystem::kSpOff, 0, 0});
  for (std::size_t q = 0; q <= 1; ++q) {
    EXPECT_DOUBLE_EQ(m.chain().transition(
                         from, m.index_of({ExampleSystem::kSpOn, 1, q}),
                         ExampleSystem::kCmdOn),
                     0.0);
  }
  // Still row-stochastic.
  EXPECT_NO_THROW(
      markov::validate_stochastic(m.chain().matrix(0), "override", 1e-9));
}

TEST(Compose, NonStochasticOverrideRejected) {
  ServiceProvider sp = ExampleSystem::make_provider();
  SpTransitionOverride bad = [](std::size_t, std::size_t, std::size_t,
                                std::size_t) { return 0.3; };
  EXPECT_THROW(SystemModel::compose(std::move(sp),
                                    ExampleSystem::make_requester(), 1,
                                    std::move(bad)),
               markov::MarkovError);
}

}  // namespace
}  // namespace dpm
