// End-to-end integration tests: extract -> compose -> optimize ->
// evaluate -> simulate, the full pipeline of the paper's tool (Fig. 7),
// on all three case studies.
#include <gtest/gtest.h>

#include "cases/cpu_sa1100.h"
#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "cases/web_server.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/sr_extractor.h"

namespace dpm {
namespace {

using cases::CpuSa1100;
using cases::DiskDrive;
using cases::ExampleSystem;
using cases::WebServer;

TEST(Integration, ExampleA2EndToEnd) {
  // The Appendix A.2 workflow: minimize power with queue <= 0.5 and
  // loss <= 0.2 at gamma = 0.99999 from (on, idle, empty).
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, ExampleSystem::make_config(m));
  const OptimizationResult r = opt.minimize_power(0.5, 0.2);
  ASSERT_TRUE(r.feasible);

  // The optimal policy beats the trivial always-on policy (paper:
  // "almost a factor of two" with their exact matrices).
  EXPECT_LT(r.objective_per_step, 3.0);
  EXPECT_GT(r.objective_per_step, 0.0);

  // Session-restart simulation of the extracted policy (the Fig. 5
  // stopping-time construction) agrees with the LP prediction.
  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig cfg;
  cfg.slices = 2000000;
  cfg.initial_state = {ExampleSystem::kSpOn, 0, 0};
  cfg.session_restart_prob = 1.0 - opt.config().discount;
  const sim::SimulationResult s = simulator.run(ctl, cfg);
  EXPECT_NEAR(s.avg_power, r.objective_per_step, 0.08);
  EXPECT_NEAR(s.avg_queue_length, r.constraint_per_step[0], 0.05);
}

TEST(Integration, DiskDriveOptimizationRunsAndDominates) {
  const SystemModel m = DiskDrive::make_model();
  const double gamma = 0.9999;  // shorter horizon keeps the test fast
  const PolicyOptimizer opt(m, DiskDrive::make_config(m, gamma));
  const OptimizationResult r =
      opt.minimize_power(/*max_avg_queue=*/0.6, /*max_loss=*/0.05);
  ASSERT_TRUE(r.feasible);
  // Must beat always-active (2.5 W) under the same constraints.
  EXPECT_LT(r.objective_per_step, 2.5);

  // Exact evaluation of greedy-to-sleep under the same start must not
  // beat the optimum while meeting the constraints (global optimality).
  const Policy greedy = cases::eager_policy(m, DiskDrive::kGoSleep,
                                            DiskDrive::kGoActive);
  const PolicyEvaluation ev(m, greedy, gamma,
                            opt.config().initial_distribution);
  const double greedy_queue = ev.per_step(metrics::queue_length(m));
  const double greedy_loss = ev.per_step(metrics::request_loss(m));
  if (greedy_queue <= 0.6 && greedy_loss <= 0.05) {
    EXPECT_GE(ev.per_step(metrics::power(m)),
              r.objective_per_step - 1e-8);
  }
}

TEST(Integration, DiskDriveSimulationMatchesOptimizer) {
  // The Fig. 8b consistency check: simulate the optimal policy with the
  // Markov SR model, under the stopping-time construction matching the
  // optimizer's discount, and compare expected vs measured.
  const SystemModel m = DiskDrive::make_model();
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, DiskDrive::make_config(m, gamma));
  const OptimizationResult r = opt.minimize_power(0.6, 0.05);
  ASSERT_TRUE(r.feasible);

  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig cfg;
  cfg.slices = 2000000;
  cfg.initial_state = {DiskDrive::kActive, 0, 0};
  cfg.session_restart_prob = 1.0 - gamma;
  const sim::SimulationResult s = simulator.run(ctl, cfg);
  EXPECT_NEAR(s.avg_power, r.objective_per_step,
              0.05 + 0.1 * r.objective_per_step);
}

TEST(Integration, DiskDriveTraceDrivenStaysClose) {
  // Trace-driven simulation (the workload the SR was extracted from)
  // lands near the model-driven expectation — the "circles on the
  // curve" observation.
  const SystemModel m = DiskDrive::make_model(/*seed=*/42);
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, DiskDrive::make_config(m, gamma));
  const OptimizationResult r = opt.minimize_power(0.6, 0.05);
  ASSERT_TRUE(r.feasible);

  const std::vector<unsigned> stream = DiskDrive::make_trace(2000000, 42);
  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig cfg;
  cfg.slices = stream.size();
  cfg.initial_state = {DiskDrive::kActive, 0, 0};
  cfg.session_restart_prob = 1.0 - gamma;
  const sim::SimulationResult s = simulator.run_trace(ctl, stream, cfg);
  // The on/off trace is not exactly Markov, so allow a wider band.
  EXPECT_NEAR(s.avg_power, r.objective_per_step,
              0.15 + 0.2 * r.objective_per_step);
}

TEST(Integration, DiskDriveBackendsAgree) {
  // Regression guard for the 330-variable disk LP: the dense simplex
  // and the interior-point method must land on the same optimum (they
  // once disagreed through a tiny-pivot tableau drift and an
  // over-regularized normal-equation solve respectively).
  const SystemModel m = DiskDrive::make_model();
  OptimizerConfig cfg = DiskDrive::make_config(m, 0.999);
  const PolicyOptimizer simplex(m, cfg);
  cfg.backend = lp::Backend::kInteriorPoint;
  const PolicyOptimizer ipm(m, cfg);
  for (const double q : {0.3, 0.6}) {
    const OptimizationResult a = simplex.minimize_power(q, 0.05);
    const OptimizationResult b = ipm.minimize_power(q, 0.05);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_NEAR(a.objective_per_step, b.objective_per_step, 1e-5);
  }
}

TEST(Integration, WebServerNeverUsesFastCpuAlone) {
  // Paper Sec. VI-B: "the processor with higher performance was never
  // used alone" — CPU2 costs 2x for 1.5x performance.
  const SystemModel m = WebServer::make_model();
  const PolicyOptimizer opt(m, WebServer::make_config(m));
  const OptimizationResult r = opt.minimize(
      metrics::power(m), {WebServer::min_throughput_constraint(m, 0.3)});
  ASSERT_TRUE(r.feasible);
  const std::size_t na = m.num_commands();
  double cpu2_alone_freq = 0.0;
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    if (m.decompose(s).sp != WebServer::kCpu2Only) continue;
    for (std::size_t a = 0; a < na; ++a) {
      cpu2_alone_freq += r.frequencies[s * na + a];
    }
  }
  const double horizon = 1.0 / (1.0 - opt.config().discount);
  EXPECT_LT(cpu2_alone_freq / horizon, 0.01);
}

TEST(Integration, WebServerThroughputConstraintMet) {
  const SystemModel m = WebServer::make_model();
  const PolicyOptimizer opt(m, WebServer::make_config(m));
  for (const double target : {0.2, 0.5, 0.8}) {
    const OptimizationResult r = opt.minimize(
        metrics::power(m),
        {WebServer::min_throughput_constraint(m, target)});
    ASSERT_TRUE(r.feasible) << "target " << target;
    // constraint_per_step holds E[-throughput] <= -target.
    EXPECT_LE(r.constraint_per_step[0], -target + 1e-6);
  }
}

TEST(Integration, WebServerPowerMonotoneInThroughput) {
  const SystemModel m = WebServer::make_model();
  const PolicyOptimizer opt(m, WebServer::make_config(m));
  double last = -1.0;
  for (const double target : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const OptimizationResult r = opt.minimize(
        metrics::power(m),
        {WebServer::min_throughput_constraint(m, target)});
    ASSERT_TRUE(r.feasible);
    EXPECT_GE(r.objective_per_step, last - 1e-8);
    last = r.objective_per_step;
  }
}

TEST(Integration, CpuOptimalDominatesTimeoutCurve) {
  // Fig. 9b: optimal stochastic control lies below the timeout curve.
  const SystemModel m = CpuSa1100::make_model();
  const double gamma = 0.9999;
  const PolicyOptimizer opt(m, CpuSa1100::make_config(m, gamma));
  const StateActionMetric pen = CpuSa1100::penalty(m);

  sim::Simulator simulator(m);
  sim::SimulationConfig cfg;
  cfg.slices = 300000;
  cfg.warmup = 2000;
  cfg.initial_state = {CpuSa1100::kActive, 0, 0};

  for (const std::size_t timeout : {0ul, 10ul, 50ul}) {
    sim::TimeoutController ctl(timeout, CpuSa1100::kShutdown,
                               CpuSa1100::kRun);
    const sim::SimulationResult t = simulator.run(ctl, cfg);
    const double t_pen = t.metric(pen);
    // Optimal policy at the same penalty level must not need more power.
    const OptimizationResult r = opt.minimize(
        metrics::power(m), {{pen, t_pen + 0.005, "penalty"}});
    ASSERT_TRUE(r.feasible) << "timeout " << timeout;
    EXPECT_LE(r.objective_per_step, t.avg_power + 0.02)
        << "timeout " << timeout;
  }
}

TEST(Integration, CpuNonstationaryWorkloadModelMismatch) {
  // Fig. 10 mechanism: fit a stationary SR to a nonstationary
  // editing+compilation mixture, then simulate on the raw trace.  The
  // policy remains valid, but its trace-measured penalty deviates from
  // the model prediction far more than on a stationary workload.
  const std::vector<unsigned> mix = trace::concat_streams(
      trace::editing_stream(150000, 5), trace::compilation_stream(150000, 6));
  const SystemModel m = CpuSa1100::make_model_from_stream(mix);
  const double gamma = 0.9999;
  const PolicyOptimizer opt(m, CpuSa1100::make_config(m, gamma));
  const StateActionMetric pen = CpuSa1100::penalty(m);
  const OptimizationResult r =
      opt.minimize(metrics::power(m), {{pen, 0.02, "penalty"}});
  ASSERT_TRUE(r.feasible);

  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig cfg;
  cfg.slices = mix.size();
  cfg.initial_state = {CpuSa1100::kActive, 0, 0};
  const sim::SimulationResult s = simulator.run_trace(ctl, mix, cfg);
  // No assertion that it matches (the paper's point is that it need
  // not); assert the pipeline runs and produces sane numbers.
  EXPECT_GE(s.avg_power, 0.0);
  EXPECT_LE(s.avg_power, 0.9);
}

TEST(Integration, ExtractOptimizeSimulateOnSyntheticGilbert) {
  // Full Fig. 7 pipeline with a *known* generator: extract an SR from a
  // Gilbert stream, optimize, then verify trace-driven simulation
  // matches the optimizer's expectation (the model is exact here).
  const std::vector<unsigned> stream =
      trace::gilbert_stream(2000000, 0.1, 0.2, 31);
  const ServiceRequester sr = trace::extract_sr(stream, {.memory = 1});
  SystemModel m = SystemModel::compose(ExampleSystem::make_provider(), sr, 1);

  OptimizerConfig cfg;
  cfg.discount = 0.999;
  cfg.initial_distribution = m.point_distribution({0, 0, 0});
  const PolicyOptimizer opt(m, cfg);
  const OptimizationResult r = opt.minimize_power(0.4, 0.2);
  ASSERT_TRUE(r.feasible);

  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig scfg;
  scfg.slices = stream.size();
  scfg.session_restart_prob = 1.0 - cfg.discount;
  const sim::SimulationResult s = simulator.run_trace(ctl, stream, scfg);
  EXPECT_NEAR(s.avg_power, r.objective_per_step,
              0.08 + 0.05 * r.objective_per_step);
  EXPECT_NEAR(s.avg_queue_length, r.constraint_per_step[0], 0.06);
}

}  // namespace
}  // namespace dpm
