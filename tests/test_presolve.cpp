// Round-trip tests for the structural presolve (src/lp/presolve.h):
// the reduced problem must solve to the same optimum, and postsolve
// must restore a *complete* certificate on the original problem —
// primal point, row duals satisfying KKT, and a basis that warm-starts
// the unreduced problem in a handful of pivots.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lp/presolve.h"
#include "lp/revised_simplex.h"

namespace dpm::lp {
namespace {

// Random bounded-box LP that is feasible and bounded by construction
// (rhs generated from a random interior point; every variable has a
// finite upper bound), seeded with structure the presolve rules fire
// on: singleton <=/= rows, duplicate columns, an empty column, and a
// redundant wide row.
LpProblem random_presolvable_lp(std::uint64_t seed, std::size_t n,
                                std::size_t m) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  LpProblem p;
  linalg::Vector xstar(n);
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(2.0 * u(gen) - 1.0);
    p.set_upper_bound(j, 1.0 + 3.0 * u(gen));
    xstar[j] = u(gen) * p.upper_bounds()[j];
  }
  for (std::size_t i = 0; i < m; ++i) {
    Constraint c;
    const std::size_t terms = 2 + pick(gen) % 4;
    double act = 0.0;
    for (std::size_t t = 0; t < terms; ++t) {
      const std::size_t j = pick(gen);
      const double v = 0.2 + u(gen);
      c.terms.emplace_back(j, v);
      act += v * xstar[j];
    }
    if (u(gen) < 0.3) {
      c.sense = Sense::kEq;
      c.rhs = act;
    } else {
      c.sense = Sense::kLe;
      c.rhs = act + u(gen);
    }
    p.add_constraint(std::move(c));
  }
  // Singleton rows: a bound fold (<=) and an outright fix (=).
  const std::size_t s1 = pick(gen);
  p.add_constraint({{{s1, 1.0}}, Sense::kLe, 0.9 * xstar[s1] + 0.05, ""});
  const std::size_t s2 = (s1 + 1) % n;
  p.add_constraint({{{s2, 2.0}}, Sense::kEq, 2.0 * xstar[s2], ""});
  // Redundant row: huge rhs, never binding.
  {
    Constraint wide;
    wide.sense = Sense::kLe;
    wide.rhs = 1e6;
    for (std::size_t j = 0; j < n; j += 2) wide.terms.emplace_back(j, 1.0);
    p.add_constraint(std::move(wide));
  }
  // Duplicate column pair: equal column, equal cost -> merged; and one
  // empty column (appears in no row) fixed at its cost-preferred bound.
  const std::size_t dup = p.add_variable(p.costs()[0]);
  p.set_upper_bound(dup, 1.0 + u(gen));
  const std::size_t empty = p.add_variable(u(gen) < 0.5 ? 0.7 : -0.7);
  p.set_upper_bound(empty, 2.0);
  {
    // Mirror column 0's rows onto `dup` with identical coefficients.
    LpProblem q;
    for (std::size_t j = 0; j < p.num_variables(); ++j) {
      q.add_variable(p.costs()[j]);
      q.set_upper_bound(j, p.upper_bounds()[j]);
    }
    for (const Constraint& c : p.constraints()) {
      Constraint cc = c;
      for (const auto& [j, v] : c.terms)
        if (j == 0) cc.terms.emplace_back(dup, v);
      q.add_constraint(std::move(cc));
    }
    p = std::move(q);
  }
  return p;
}

// KKT check for min c'x, Ax {<=,=} b, 0 <= x <= u given row duals y:
// rc_j = c_j - a_j'y must be >= -tol when x_j is at its lower bound,
// <= tol at its upper bound, and ~0 strictly between; binding-direction
// sign on y for inequality rows; y_i ~ 0 on slack rows.
void expect_kkt(const LpProblem& p, const LpSolution& sol, double tol) {
  ASSERT_EQ(sol.duals.size(), p.num_constraints());
  linalg::Vector rc(p.costs().begin(), p.costs().end());
  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    const Constraint& c = p.constraints()[i];
    double act = 0.0;
    for (const auto& [j, v] : c.terms) {
      act += v * sol.x[j];
      rc[j] -= v * sol.duals[i];
    }
    if (c.sense == Sense::kLe) {
      EXPECT_LE(sol.duals[i], tol) << "row " << i;
      if (act < c.rhs - 1e-5)
        EXPECT_NEAR(sol.duals[i], 0.0, tol) << "slack row " << i;
    } else if (c.sense == Sense::kGe) {
      EXPECT_GE(sol.duals[i], -tol) << "row " << i;
      if (act > c.rhs + 1e-5)
        EXPECT_NEAR(sol.duals[i], 0.0, tol) << "slack row " << i;
    }
  }
  for (std::size_t j = 0; j < p.num_variables(); ++j) {
    const double uj = p.upper_bounds()[j];
    const bool at_lo = sol.x[j] <= 1e-6;
    const bool at_up = std::isfinite(uj) && sol.x[j] >= uj - 1e-6;
    if (!at_lo) EXPECT_LE(rc[j], tol) << "col " << j;
    if (!at_up) EXPECT_GE(rc[j], -tol) << "col " << j;
  }
}

TEST(Presolve, RandomizedRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const LpProblem p = random_presolvable_lp(seed, 24, 14);
    RevisedSimplexOptions off;
    off.presolve = false;
    const LpSolution ref = solve_revised_simplex(p, off);
    ASSERT_EQ(ref.status, LpStatus::kOptimal) << "seed " << seed;

    RevisedSimplexOptions on;
    on.presolve = true;
    SimplexStats st;
    on.stats = &st;
    const LpSolution sol = solve_revised_simplex(p, on);
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << "seed " << seed;
    EXPECT_GT(st.presolve_rows_removed + st.presolve_cols_removed, 0u)
        << "seed " << seed << ": instance was built to be presolvable";
    EXPECT_NEAR(sol.objective, ref.objective,
                1e-7 * (1.0 + std::abs(ref.objective)))
        << "seed " << seed;
    // The restored primal point must be feasible on the *original*
    // problem and reproduce the reported objective exactly.
    EXPECT_LE(p.max_violation(sol.x), 1e-6) << "seed " << seed;
    EXPECT_NEAR(p.objective(sol.x), sol.objective, 1e-9) << "seed " << seed;
    expect_kkt(p, sol, 1e-6);
  }
}

TEST(Presolve, RecoveredBasisWarmStartsOriginal) {
  std::size_t warm_pivots_total = 0, cold_pivots_total = 0;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const LpProblem p = random_presolvable_lp(seed, 24, 14);
    Presolve ps;
    const PresolveStatus status = ps.reduce(p);
    ASSERT_EQ(status, PresolveStatus::kReduced) << "seed " << seed;
    RevisedSimplexOptions o;
    o.presolve = false;
    SimplexBasis red_basis;
    const LpSolution red =
        solve_revised_simplex(ps.reduced(), o, nullptr, &red_basis);
    ASSERT_EQ(red.status, LpStatus::kOptimal) << "seed " << seed;
    SimplexBasis full_basis;
    const LpSolution sol = ps.postsolve(red, &red_basis, &full_basis);
    ASSERT_FALSE(full_basis.empty());
    // The mapped basis must warm-start the unreduced problem: same
    // optimum, and only a short dual repair (presolve-removed rows
    // re-enter with exactly reconstructed multipliers, so the basis is
    // already dual feasible and near-optimal).
    const LpSolution warm = solve_revised_simplex(p, o, &full_basis);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(warm.objective, sol.objective,
                1e-7 * (1.0 + std::abs(sol.objective)))
        << "seed " << seed;
    const LpSolution cold = solve_revised_simplex(p, o);
    EXPECT_LE(warm.iterations, 15u) << "seed " << seed;
    EXPECT_LE(warm.iterations, cold.iterations) << "seed " << seed;
    warm_pivots_total += warm.iterations;
    cold_pivots_total += cold.iterations;
  }
  // Across the batch the recovered bases should be near-optimal as-is:
  // far fewer pivots than solving from scratch.
  EXPECT_LE(2 * warm_pivots_total, cold_pivots_total);
}

TEST(Presolve, FullyEliminatedLp) {
  // Every row and column falls to the reduction rules: two singleton
  // rows (one fold, one fix), a redundant row, and a then-empty third
  // column -> kEmpty, and postsolve({}) is the whole solution.
  LpProblem p;
  const std::size_t a = p.add_variable(-1.0);  // wants its upper bound
  const std::size_t b = p.add_variable(2.0);
  const std::size_t c = p.add_variable(0.5);  // wants zero
  p.set_upper_bound(a, 5.0);
  p.set_upper_bound(b, 5.0);
  p.set_upper_bound(c, 5.0);
  p.add_constraint({{{a, 1.0}}, Sense::kLe, 2.0, ""});
  p.add_constraint({{{b, 2.0}}, Sense::kEq, 3.0, ""});
  p.add_constraint({{{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kLe, 100.0, ""});

  Presolve ps;
  ASSERT_EQ(ps.reduce(p), PresolveStatus::kEmpty);
  const LpSolution sol = ps.postsolve(LpSolution{});
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  ASSERT_EQ(sol.x.size(), 3u);
  EXPECT_NEAR(sol.x[a], 2.0, 1e-12);  // negative cost -> folded bound
  EXPECT_NEAR(sol.x[b], 1.5, 1e-12);  // fixed by the equality singleton
  EXPECT_NEAR(sol.x[c], 0.0, 1e-12);  // empty column, positive cost
  EXPECT_NEAR(sol.objective, -2.0 + 3.0 + 0.0, 1e-12);
  expect_kkt(p, sol, 1e-9);

  // End-to-end through the solver entry point (presolve on by default).
  const LpSolution end = solve_revised_simplex(p);
  ASSERT_EQ(end.status, LpStatus::kOptimal);
  EXPECT_NEAR(end.objective, sol.objective, 1e-12);
}

TEST(Presolve, DetectsInfeasibleSingleton) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, -1.0, ""});  // x >= 0 always
  Presolve ps;
  EXPECT_EQ(ps.reduce(p), PresolveStatus::kInfeasible);
}

TEST(Presolve, DetectsUnboundedRay) {
  LpProblem p;
  p.add_variable(-1.0);  // no upper bound, no constraint -> ray
  Presolve ps;
  EXPECT_EQ(ps.reduce(p), PresolveStatus::kUnbounded);
}

}  // namespace
}  // namespace dpm::lp
