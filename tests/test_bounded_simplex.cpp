// Bounded-variable revised simplex: native upper-bound handling (bound
// flips, two-sided ratio test, singleton-row absorption) against the
// explicit-row reformulation solved by the reference backends.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "lp/solver.h"

namespace dpm::lp {
namespace {

constexpr double kTol = 1e-6;

/// Random bounded instance: the feasible core of the agreement suite
/// plus finite upper bounds on a random subset of variables, tight
/// enough that some bind at the optimum.
LpProblem random_bounded(std::mt19937_64& gen) {
  std::uniform_real_distribution<double> u(0.1, 2.0);
  std::uniform_int_distribution<int> dim(2, 9);
  std::uniform_int_distribution<int> coin(0, 1);
  const int n = dim(gen);
  const int m = dim(gen);
  LpProblem p;
  for (int j = 0; j < n; ++j) p.add_variable(u(gen) - 1.0);  // mixed signs
  for (int i = 0; i < m; ++i) {
    Constraint c;
    for (int j = 0; j < n; ++j) c.terms.emplace_back(j, u(gen));
    c.sense = Sense::kLe;
    c.rhs = 1.0 + u(gen) * static_cast<double>(n);
    p.add_constraint(std::move(c));
  }
  for (int j = 0; j < n; ++j) {
    if (coin(gen)) p.set_upper_bound(j, u(gen));
  }
  return p;
}

TEST(BoundedSimplex, NativeBoundsAgreeWithExplicitRowFormulation) {
  for (int trial = 0; trial < 25; ++trial) {
    std::mt19937_64 gen(4000 + trial);
    const LpProblem p = random_bounded(gen);
    const LpProblem rows = bounds_as_rows(p);
    ASSERT_FALSE(rows.has_finite_upper_bounds());

    const LpSolution native = solve_revised_simplex(p);
    const LpSolution reference = solve_revised_simplex(rows);
    const LpSolution tableau = solve_simplex(p);  // reformulates inside

    ASSERT_EQ(native.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(reference.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(tableau.status, LpStatus::kOptimal) << "trial " << trial;
    const double scale = 1.0 + std::abs(reference.objective);
    EXPECT_NEAR(native.objective, reference.objective, kTol * scale)
        << "trial " << trial;
    EXPECT_NEAR(native.objective, tableau.objective, kTol * scale)
        << "trial " << trial;
    // The native solution respects the bounds of the original problem.
    EXPECT_LT(p.max_violation(native.x), 1e-7) << "trial " << trial;
  }
}

TEST(BoundedSimplex, OptimumAtUpperBoundsViaBoundFlips) {
  // min -x - 2y with x <= 1.5, y <= 2.5 and no other rows: the whole
  // solve is two bound flips (the basis is empty after absorption).
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t y = p.add_variable(-2.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 1.5, ""});
  p.add_constraint({{{y, 1.0}}, Sense::kLe, 2.5, ""});
  SimplexStats stats;
  RevisedSimplexOptions opt;
  opt.stats = &stats;
  // Presolve would solve this instance outright (it empties the LP);
  // this test targets the engine's bound-flip path, so bypass it.
  opt.presolve = false;
  const LpSolution s = solve_revised_simplex(p, opt);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 1.5, 1e-12);
  EXPECT_NEAR(s.x[y], 2.5, 1e-12);
  EXPECT_NEAR(s.objective, -6.5, 1e-12);
  EXPECT_EQ(stats.bound_flips, 2u);
}

TEST(BoundedSimplex, SingletonRowsAbsorbedIntoBounds) {
  // The degenerate instance of the tableau suite: two of the four rows
  // are singletons and vanish from the basis.
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t y = p.add_variable(-1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0, ""});
  p.add_constraint({{{x, 2.0}, {y, 2.0}}, Sense::kLe, 4.0, ""});
  p.add_constraint({{{y, 1.0}}, Sense::kLe, 1.0, ""});
  const LpSolution s = solve_revised_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);

  // Turning absorption off must give the same answer through explicit
  // rows.
  RevisedSimplexOptions no_absorb;
  no_absorb.absorb_singleton_rows = false;
  const LpSolution s2 = solve_revised_simplex(p, no_absorb);
  ASSERT_EQ(s2.status, LpStatus::kOptimal);
  EXPECT_NEAR(s2.objective, -2.0, 1e-9);
}

TEST(BoundedSimplex, InfeasibleByContradictoryBound) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.set_upper_bound(x, 1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kGe, 2.0, ""});  // needs x >= 2
  EXPECT_EQ(solve_revised_simplex(p).status, LpStatus::kInfeasible);
  EXPECT_EQ(solve_simplex(p).status, LpStatus::kInfeasible);
}

TEST(BoundedSimplex, NegativeSingletonRhsIsInfeasible) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, -0.5, ""});  // x <= -0.5
  EXPECT_EQ(solve_revised_simplex(p).status, LpStatus::kInfeasible);
  EXPECT_EQ(solve_simplex(p).status, LpStatus::kInfeasible);
}

TEST(BoundedSimplex, UpperBoundTamesUnboundedInstance) {
  // Without the bound this is unbounded (negative cost, no ceiling).
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kGe, 0.5, ""});
  EXPECT_EQ(solve_revised_simplex(p).status, LpStatus::kUnbounded);
  p.set_upper_bound(x, 3.0);
  const LpSolution s = solve_revised_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
}

TEST(BoundedSimplex, WarmStartOnBoundedProblemRepricesInPlace) {
  std::mt19937_64 gen(99);
  const LpProblem p = random_bounded(gen);
  SimplexBasis basis;
  const LpSolution first = solve_revised_simplex(p, {}, nullptr, &basis);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  EXPECT_FALSE(basis.at_upper.empty());  // bound flags travel with it
  // Unchanged problem: the warm basis is still optimal, so the re-solve
  // is zero pivots.
  const LpSolution warm = solve_revised_simplex(p, {}, &basis, nullptr);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_EQ(warm.iterations, 0u);
  EXPECT_NEAR(warm.objective, first.objective,
              kTol * (1.0 + std::abs(first.objective)));
}

TEST(BoundedSimplex, DualRestartAfterBoundTighteningMatchesColdSolve) {
  // The boxed dual simplex: tightening bounds keeps the basis dual
  // feasible (costs unchanged), so the warm re-solve repairs any primal
  // violation and must land on the cold optimum.  (On these loose
  // random instances the old basis often stays feasible — at-bound
  // variables just follow their bounds, zero pivots; the dedicated
  // instance below forces actual dual pivots.)
  for (int trial = 0; trial < 25; ++trial) {
    std::mt19937_64 gen(7000 + trial);
    LpProblem p = random_bounded(gen);
    SimplexBasis basis;
    const LpSolution loose = solve_revised_simplex(p, {}, nullptr, &basis);
    if (loose.status != LpStatus::kOptimal) continue;

    // Tighten every finite bound by 25% (keep zero-fixed ones fixed).
    for (std::size_t j = 0; j < p.num_variables(); ++j) {
      const double u = p.upper_bounds()[j];
      if (std::isfinite(u)) p.set_upper_bound(j, 0.75 * u);
    }
    const LpSolution warm = solve_revised_simplex(p, {}, &basis, nullptr);
    const LpSolution cold = solve_revised_simplex(p);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (cold.status != LpStatus::kOptimal) continue;
    EXPECT_NEAR(warm.objective, cold.objective,
                kTol * (1.0 + std::abs(cold.objective)))
        << "trial " << trial;
    EXPECT_LT(p.max_violation(warm.x), 1e-7) << "trial " << trial;
  }
}

TEST(BoundedSimplex, TighteningForcesDualPivotsThroughBasisChange) {
  // Fill a fixed demand from unit-capacity sources, cheapest first:
  //   min sum c_j x_j  s.t.  sum x_j = 3.5,  0 <= x_j <= 1.
  // Optimum: x1..x3 at upper, x4 = 0.5 basic.  Tightening every cap to
  // 0.75 leaves only 2.25 at the bounds, so the basic must grow past
  // its own cap — a genuine dual pivot (x5 enters), not a reprice.
  LpProblem p;
  for (int j = 0; j < 6; ++j) {
    p.add_variable(1.0 + static_cast<double>(j));
    p.set_upper_bound(static_cast<std::size_t>(j), 1.0);
  }
  p.add_constraint({{{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0},
                     {5, 1.0}},
                    Sense::kEq,
                    3.5,
                    ""});
  SimplexBasis basis;
  const LpSolution loose = solve_revised_simplex(p, {}, nullptr, &basis);
  ASSERT_EQ(loose.status, LpStatus::kOptimal);
  EXPECT_NEAR(loose.objective, 1.0 + 2.0 + 3.0 + 0.5 * 4.0, 1e-9);

  for (int j = 0; j < 6; ++j) p.set_upper_bound(static_cast<std::size_t>(j), 0.75);
  SimplexStats stats;
  RevisedSimplexOptions opt;
  opt.stats = &stats;
  const LpSolution warm = solve_revised_simplex(p, opt, &basis, nullptr);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  // New optimum: x1..x4 = 0.75 (3.0 total), x5 = 0.5.
  EXPECT_NEAR(warm.objective,
              0.75 * (1.0 + 2.0 + 3.0 + 4.0) + 0.5 * 5.0, 1e-9);
  EXPECT_GT(stats.dual_iterations, 0u);  // repaired by the dual phase
  const LpSolution cold = solve_revised_simplex(p);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(BoundedSimplex, DualRestartAfterBoundRelaxationMatchesColdSolve) {
  // Relaxing (or removing) bounds also preserves dual feasibility only
  // when the at-upper flags stay consistent — a column resting at a
  // bound that moved away must follow it, and one whose bound became
  // +inf drops to the lower bound (possibly costing a cold fallback,
  // never a wrong answer).
  for (int trial = 0; trial < 25; ++trial) {
    std::mt19937_64 gen(8000 + trial);
    LpProblem p = random_bounded(gen);
    SimplexBasis basis;
    const LpSolution tight = solve_revised_simplex(p, {}, nullptr, &basis);
    if (tight.status != LpStatus::kOptimal) continue;
    for (std::size_t j = 0; j < p.num_variables(); ++j) {
      const double u = p.upper_bounds()[j];
      if (!std::isfinite(u)) continue;
      p.set_upper_bound(j, trial % 2 == 0
                               ? 1.5 * u
                               : std::numeric_limits<double>::infinity());
    }
    const LpSolution warm = solve_revised_simplex(p, {}, &basis, nullptr);
    const LpSolution cold = solve_revised_simplex(p);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (cold.status != LpStatus::kOptimal) continue;
    EXPECT_NEAR(warm.objective, cold.objective,
                kTol * (1.0 + std::abs(cold.objective)))
        << "trial " << trial;
  }
}

TEST(BoundedSimplex, RhsMoveWithActiveBoundsWarmRestarts) {
  // Pareto-sweep shape on a bounded problem: same matrix, same bounds,
  // moving rhs — previously these fell back cold; the boxed dual phase
  // now reuses the basis.
  std::mt19937_64 gen(55);
  LpProblem p = random_bounded(gen);
  SimplexBasis basis;
  const LpSolution first = solve_revised_simplex(p, {}, nullptr, &basis);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  for (const double scale : {0.9, 0.8, 0.7}) {
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      p.set_rhs(i, p.constraints()[i].rhs * scale);
    }
    SimplexBasis next;
    const LpSolution warm = solve_revised_simplex(p, {}, &basis, &next);
    const LpSolution cold = solve_revised_simplex(p);
    ASSERT_EQ(warm.status, cold.status) << "scale " << scale;
    if (cold.status == LpStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, cold.objective,
                  kTol * (1.0 + std::abs(cold.objective)))
          << "scale " << scale;
      basis = next;
    }
  }
}

TEST(BoundedSimplex, SetUpperBoundValidates) {
  LpProblem p;
  p.add_variable(1.0);
  EXPECT_THROW(p.set_upper_bound(3, 1.0), LpError);
  EXPECT_THROW(p.set_upper_bound(0, -1.0), LpError);
  p.set_upper_bound(0, 0.0);  // fixing at zero is legal
  p.add_constraint({{{0, 1.0}}, Sense::kGe, 0.0, ""});
  const LpSolution s = solve_revised_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 0.0, 1e-12);
}

TEST(BoundedSimplex, BoundsAsRowsKeepsShape) {
  LpProblem p;
  p.add_variable(1.0);
  p.add_variable(1.0);
  p.set_upper_bound(1, 2.0);
  p.add_constraint({{{0, 1.0}, {1, 1.0}}, Sense::kGe, 1.0, ""});
  const LpProblem rows = bounds_as_rows(p);
  EXPECT_EQ(rows.num_variables(), 2u);
  EXPECT_EQ(rows.num_constraints(), 2u);
  EXPECT_FALSE(rows.has_finite_upper_bounds());
  EXPECT_NEAR(rows.constraints()[1].rhs, 2.0, 1e-15);
}

TEST(BoundedSimplex, InteriorPointSolvesReformulatedBounds) {
  std::mt19937_64 gen(123);
  const LpProblem p = random_bounded(gen);
  const LpSolution ref = solve_revised_simplex(p);
  ASSERT_EQ(ref.status, LpStatus::kOptimal);
  const LpSolution ip = solve_interior_point(p);
  ASSERT_EQ(ip.status, LpStatus::kOptimal);
  EXPECT_NEAR(ip.objective, ref.objective,
              kTol * (1.0 + std::abs(ref.objective)));
}

TEST(InteriorPoint, SizeGuardFallsBackToRevisedSimplex) {
  // Three columns with a limit of two: the guard must reroute to the
  // revised simplex and still return the right answer.
  LpProblem p;
  for (int j = 0; j < 3; ++j) p.add_variable(1.0);
  p.add_constraint(
      {{{0, 1.0}, {1, 1.0}, {2, 1.0}}, Sense::kGe, 1.0, ""});
  InteriorPointOptions opt;
  opt.dense_column_limit = 2;
  const LpSolution s = solve_interior_point(p, opt);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-8);
}

TEST(RevisedSimplexStats, CountsRefactorizationsAndIterations) {
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> u(0.1, 2.0);
  LpProblem p;
  for (int j = 0; j < 30; ++j) p.add_variable(u(gen));
  linalg::Vector x0(30);
  for (auto& v : x0) v = u(gen);
  for (int i = 0; i < 20; ++i) {
    Constraint c;
    double rhs = 0.1;
    for (int j = 0; j < 30; ++j) {
      const double a = u(gen);
      c.terms.emplace_back(j, a);
      rhs += a * x0[j];
    }
    c.sense = Sense::kLe;
    c.rhs = rhs;
    p.add_constraint(std::move(c));
  }
  SimplexStats stats;
  RevisedSimplexOptions opt;
  opt.stats = &stats;
  const LpSolution s = solve_revised_simplex(p, opt);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_GE(stats.refactorizations, 1u);
  EXPECT_EQ(stats.iterations, s.iterations);
  EXPECT_GT(stats.factor_nonzeros, 0u);
  EXPECT_GE(stats.solve_ms, stats.refactor_ms);
}

}  // namespace
}  // namespace dpm::lp
