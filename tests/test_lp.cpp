// Unit and property tests for the LP solvers (simplex and interior
// point).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lp/solver.h"

namespace dpm::lp {
namespace {

// min -x - y  s.t.  x + y <= 4, x <= 2, y <= 3  -> optimum -4 on a face.
LpProblem box_problem() {
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0, "x");
  const std::size_t y = p.add_variable(-1.0, "y");
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, "cap"});
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 2.0, "xmax"});
  p.add_constraint({{{y, 1.0}}, Sense::kLe, 3.0, "ymax"});
  return p;
}

TEST(Problem, VariableNamesAndCosts) {
  LpProblem p;
  EXPECT_EQ(p.add_variable(1.5, "a"), 0u);
  EXPECT_EQ(p.add_variable(-2.0), 1u);
  EXPECT_EQ(p.variable_name(0), "a");
  EXPECT_EQ(p.variable_name(1), "x1");
  EXPECT_EQ(p.costs()[1], -2.0);
}

TEST(Problem, RejectsUnknownVariable) {
  LpProblem p;
  p.add_variable(1.0);
  EXPECT_THROW(p.add_constraint({{{5, 1.0}}, Sense::kEq, 0.0, ""}), LpError);
}

TEST(Problem, MergesDuplicateTerms) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}, {x, 2.0}}, Sense::kEq, 3.0, ""});
  ASSERT_EQ(p.constraints()[0].terms.size(), 1u);
  EXPECT_EQ(p.constraints()[0].terms[0].second, 3.0);
}

TEST(Problem, DenseConstraintSizeChecked) {
  LpProblem p;
  p.add_variable(1.0);
  EXPECT_THROW(p.add_dense_constraint({1.0, 2.0}, Sense::kLe, 1.0), LpError);
}

TEST(Problem, MaxViolation) {
  LpProblem p = box_problem();
  EXPECT_NEAR(p.max_violation({2.0, 3.0}), 1.0, 1e-12);  // cap exceeded by 1
  EXPECT_NEAR(p.max_violation({1.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(p.max_violation({-0.5, 0.0}), 0.5, 1e-12);  // x >= 0
}

TEST(Problem, StatusToString) {
  EXPECT_STREQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(LpStatus::kIterationLimit), "iteration-limit");
}

// ---------------------------------------------------------------------
// Simplex
// ---------------------------------------------------------------------

TEST(Simplex, SolvesBoxProblem) {
  const LpSolution s = solve_simplex(box_problem());
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 4.0, 1e-9);
}

TEST(Simplex, SolvesEqualityProblem) {
  // min x + 2y s.t. x + y = 3  -> x = 3, y = 0, obj = 3.
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(2.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 3.0, ""});
  const LpSolution s = solve_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(Simplex, SolvesGeConstraints) {
  // min 2x + 3y s.t. x + y >= 5, x >= 1 -> (4, 1)?  cost 2x+3y minimized
  // by pushing y to 0: (5, 0) violates nothing, cost 10.
  LpProblem p;
  const std::size_t x = p.add_variable(2.0);
  const std::size_t y = p.add_variable(3.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kGe, 5.0, ""});
  p.add_constraint({{{x, 1.0}}, Sense::kGe, 1.0, ""});
  const LpSolution s = solve_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
  EXPECT_NEAR(s.x[0], 5.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{x, 1.0}}, Sense::kGe, 2.0, ""});
  EXPECT_EQ(solve_simplex(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);  // min -x, x free upward
  p.add_variable(1.0);
  p.add_constraint({{{x, -1.0}}, Sense::kLe, 0.0, ""});  // -x <= 0 always
  EXPECT_EQ(solve_simplex(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsHandled) {
  // x - y <= -2 with min x + y  ->  y >= x + 2, best (0, 2).
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}, {y, -1.0}}, Sense::kLe, -2.0, ""});
  const LpSolution s = solve_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: several redundant constraints through the
  // optimum.
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t y = p.add_variable(-1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0, ""});
  p.add_constraint({{{x, 2.0}, {y, 2.0}}, Sense::kLe, 4.0, ""});
  p.add_constraint({{{y, 1.0}}, Sense::kLe, 1.0, ""});
  const LpSolution s = solve_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Simplex, EmptyProblemThrows) {
  EXPECT_THROW(solve_simplex(LpProblem{}), LpError);
}

TEST(Simplex, RedundantEqualityRowsAreHarmless) {
  // x + y = 2 listed twice; min x -> (0, 2).
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(0.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 2.0, ""});
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 2.0, ""});
  const LpSolution s = solve_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

// ---------------------------------------------------------------------
// Interior point
// ---------------------------------------------------------------------

TEST(InteriorPoint, SolvesBoxProblem) {
  const LpSolution s = solve_interior_point(box_problem());
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-6);
}

TEST(InteriorPoint, SolvesEqualityProblem) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(2.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 3.0, ""});
  const LpSolution s = solve_interior_point(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
}

TEST(InteriorPoint, EmptyProblemThrows) {
  EXPECT_THROW(solve_interior_point(LpProblem{}), LpError);
}

TEST(SolverFacade, DispatchesBackends) {
  const LpProblem p = box_problem();
  const LpSolution a = solve(p, Backend::kSimplex);
  const LpSolution b = solve(p, Backend::kInteriorPoint);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-5);
}

// Property: on random feasible bounded LPs, the two backends agree on
// the optimal objective and both satisfy the constraints.
class SolverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreementTest, SimplexMatchesInteriorPoint) {
  const int seed = GetParam();
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.1, 2.0);
  std::uniform_int_distribution<int> dim(2, 8);

  const int n = dim(gen);
  const int m = dim(gen);
  LpProblem p;
  for (int j = 0; j < n; ++j) p.add_variable(u(gen));
  // Feasible by construction: A x <= A x0 + slack with x0 > 0, A >= 0,
  // and one >= row keeping the problem bounded away from 0.
  linalg::Vector x0(n);
  for (int j = 0; j < n; ++j) x0[j] = u(gen);
  for (int i = 0; i < m; ++i) {
    Constraint c;
    double rhs = 0.1;
    for (int j = 0; j < n; ++j) {
      const double a = u(gen);
      c.terms.emplace_back(j, a);
      rhs += a * x0[j];
    }
    c.sense = Sense::kLe;
    c.rhs = rhs;
    p.add_constraint(std::move(c));
  }
  {
    Constraint c;
    for (int j = 0; j < n; ++j) c.terms.emplace_back(j, 1.0);
    c.sense = Sense::kGe;
    c.rhs = 0.5 * linalg::sum(x0);
    p.add_constraint(std::move(c));
  }

  const LpSolution s1 = solve_simplex(p);
  const LpSolution s2 = solve_interior_point(p);
  ASSERT_EQ(s1.status, LpStatus::kOptimal) << "seed " << seed;
  ASSERT_EQ(s2.status, LpStatus::kOptimal) << "seed " << seed;
  EXPECT_NEAR(s1.objective, s2.objective,
              1e-5 * (1.0 + std::abs(s1.objective)))
      << "seed " << seed;
  EXPECT_LT(p.max_violation(s1.x), 1e-7);
  EXPECT_LT(p.max_violation(s2.x), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SolverAgreementTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace dpm::lp
