// Bitwise agreement property tests for the hypersparse triangular
// sweeps: the Gilbert–Peierls sparse-rhs ftran/btran must produce
// *bit-identical* results to the dense sweeps over the same factor —
// including across long Forrest–Tomlin update chains, cached-spike
// replays (the u_replayed regression), and factors whose trailing block
// was eliminated by the dense-tail kernel.  Bitwise (memcmp), not
// approximate: both paths execute the same floating-point operations in
// the same order, only the traversal that *finds* the nonzeros differs.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "linalg/indexed_vector.h"
#include "linalg/sparse_lu.h"

namespace dpm::linalg {
namespace {

testing::AssertionResult bitwise_equal(const Vector& dense,
                                       const IndexedVector& sparse) {
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (std::memcmp(&dense[i], &sparse.values[i], sizeof(double)) != 0) {
      return testing::AssertionFailure()
             << "entry " << i << ": dense=" << dense[i]
             << " sparse=" << sparse.values[i];
    }
  }
  return testing::AssertionSuccess();
}

std::vector<SparseColumn> random_sparse_basis(std::mt19937& rng,
                                              std::size_t n) {
  std::uniform_real_distribution<double> uval(-2.0, 2.0);
  std::uniform_int_distribution<std::size_t> urow(0, n - 1);
  std::vector<SparseColumn> cols(n);
  for (std::size_t j = 0; j < n; ++j) {
    cols[j].emplace_back(j, 3.0 + uval(rng));  // diagonally dominant-ish
    const int extra = static_cast<int>(rng() % 4);
    for (int e = 0; e < extra; ++e) cols[j].emplace_back(urow(rng), uval(rng));
  }
  return cols;
}

// Dense vs sparse ftran/btran across random bases and long FT chains.
// Every update ftran runs with cache_spike=true, so the sparse replay
// path (including the u_replayed bookkeeping) is exercised on each
// subsequent update.
TEST(Hypersparse, SparseSweepsBitwiseMatchDenseAcrossFtChains) {
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> uval(-2.0, 2.0);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 50 + (trial % 5) * 173;
    std::uniform_int_distribution<std::size_t> urow(0, n - 1);
    std::vector<SparseColumn> cols = random_sparse_basis(rng, n);
    BasisFactorization bf(64, 1e-11, 1.0);
    if (!bf.refactorize(n, cols)) continue;  // singular draw: skip trial

    for (int step = 0; step < 60; ++step) {
      // ftran on a sparse rhs with 1-3 entries (an entering column).
      Vector fd(n, 0.0);
      IndexedVector fs(n);
      const int k = 1 + static_cast<int>(rng() % 3);
      for (int e = 0; e < k; ++e) {
        const std::size_t r = urow(rng);
        const double v = uval(rng);
        fd[r] += v;
        fs.add(r, v);
      }
      bf.ftran(fd, false);
      bf.ftran_sparse(fs, false);
      ASSERT_TRUE(bitwise_equal(fd, fs))
          << "ftran trial=" << trial << " step=" << step;

      // btran on a unit vector (a pricing row).
      const std::size_t slot = urow(rng);
      Vector bd(n, 0.0);
      bd[slot] = 1.0;
      IndexedVector bs(n);
      bs.set(slot, 1.0);
      bf.btran(bd);
      bf.btran_sparse(bs);
      ASSERT_TRUE(bitwise_equal(bd, bs))
          << "btran trial=" << trial << " step=" << step;

      // Forrest-Tomlin update with a cached spike, growing the chain.
      SparseColumn enter;
      enter.emplace_back(urow(rng), 3.0 + uval(rng));
      enter.emplace_back(urow(rng), uval(rng));
      Vector d(n, 0.0);
      for (const auto& [r, v] : enter) d[r] += v;
      bf.ftran(d, /*cache_spike=*/true);
      const std::size_t leave = urow(rng);
      if (bf.update(leave, d)) {
        cols[leave] = enter;
        if (bf.needs_refactor() && !bf.refactorize(n, cols)) break;
      } else if (!bf.refactorize(n, cols)) {
        break;
      }
    }
  }
}

// The dense-tail elimination kernel (SparseLu::factorize switches to a
// dense right-looking block once the active submatrix fills in) must
// produce a correct factorization: residual check A_B x = b, plus the
// usual bitwise sparse/dense sweep agreement over the hybrid factor.
TEST(Hypersparse, DenseTailFactorizationSolves) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> uval(-1.0, 1.0);
  const std::size_t n = 400, tail = 150;
  std::vector<SparseColumn> cols = random_sparse_basis(rng, n);
  // Make the trailing block genuinely dense so the factorization's
  // tail-density switch (>= 15% over >= 96 remaining rows) fires.
  for (std::size_t j = n - tail; j < n; ++j) {
    cols[j].clear();
    cols[j].emplace_back(j, 4.0 + uval(rng));
    for (std::size_t i = n - tail; i < n; ++i)
      if (i != j) cols[j].emplace_back(i, uval(rng));
  }
  BasisFactorization bf(64, 1e-11, 1.0);
  ASSERT_TRUE(bf.refactorize(n, cols));

  std::uniform_int_distribution<std::size_t> urow(0, n - 1);
  for (int rep = 0; rep < 20; ++rep) {
    Vector b(n, 0.0);
    IndexedVector bsp(n);
    for (int e = 0; e < 3; ++e) {
      const std::size_t r = urow(rng);
      const double v = uval(rng);
      b[r] += v;
      bsp.add(r, v);
    }
    const Vector rhs = b;
    bf.ftran(b, false);
    bf.ftran_sparse(bsp, false);
    ASSERT_TRUE(bitwise_equal(b, bsp)) << "rep " << rep;
    // Residual: the solve must invert the basis we factorized.
    Vector ax(n, 0.0);
    for (std::size_t j = 0; j < n; ++j)
      for (const auto& [r, v] : cols[j]) ax[r] += v * b[j];
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(ax[i], rhs[i], 1e-9) << "rep " << rep << " row " << i;
  }
}

}  // namespace
}  // namespace dpm::linalg
