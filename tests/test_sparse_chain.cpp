// CSR SparseControlledChain: validation, sparse/dense agreement on
// randomized instances, sparse policy evaluation, and the sparse LP
// assembly path.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "cases/example_system.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "markov/controlled_chain.h"
#include "markov/sparse_chain.h"

namespace dpm::markov {
namespace {

/// Random sparse controlled chain: `succ` successors per (s, a), weights
/// normalized to 1.  Returns per-command dense matrices (the reference
/// representation the sparse chain is checked against).
std::vector<linalg::Matrix> random_dense_chain(std::size_t n, std::size_t na,
                                               std::size_t succ,
                                               std::mt19937_64& gen) {
  std::uniform_real_distribution<double> u(0.05, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::vector<linalg::Matrix> dense(na, linalg::Matrix(n, n));
  for (std::size_t a = 0; a < na; ++a) {
    for (std::size_t s = 0; s < n; ++s) {
      linalg::Vector row(n, 0.0);
      for (std::size_t k = 0; k < succ; ++k) row[pick(gen)] += u(gen);
      const double total = linalg::sum(row);
      for (std::size_t t = 0; t < n; ++t) dense[a](s, t) = row[t] / total;
    }
  }
  return dense;
}

linalg::Matrix random_policy(std::size_t n, std::size_t na,
                             std::mt19937_64& gen) {
  std::uniform_real_distribution<double> u(0.05, 1.0);
  linalg::Matrix pi(n, na);
  for (std::size_t s = 0; s < n; ++s) {
    double total = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      pi(s, a) = u(gen);
      total += pi(s, a);
    }
    for (std::size_t a = 0; a < na; ++a) pi(s, a) /= total;
  }
  return pi;
}

TEST(SparseChain, ValidatesRowStochastic) {
  // Row sums to 0.9, not 1.
  std::vector<std::vector<TransitionRow>> bad{{{{0, 0.9}}}};
  EXPECT_THROW(SparseControlledChain(1, bad), MarkovError);
  // Negative probability.
  std::vector<std::vector<TransitionRow>> neg{{{{0, 1.5}, {0, -0.5}}}};
  EXPECT_NO_THROW(SparseControlledChain(1, neg));  // merged to 1.0
  std::vector<std::vector<TransitionRow>> neg2{
      {{{0, 1.2}}, {{0, 1.0}}}};  // 2 rows for n=1
  EXPECT_THROW(SparseControlledChain(1, neg2), MarkovError);
  // Successor out of range.
  std::vector<std::vector<TransitionRow>> oor{{{{3, 1.0}}}};
  EXPECT_THROW(SparseControlledChain(1, oor), MarkovError);
  // No commands.
  EXPECT_THROW(SparseControlledChain(1, {}), MarkovError);
  // Wrong row count for the order.
  std::vector<std::vector<TransitionRow>> short_rows{{{{0, 1.0}}}};
  EXPECT_THROW(SparseControlledChain(2, short_rows), MarkovError);
}

TEST(SparseChain, MergesDuplicateSuccessorsAndDropsZeros) {
  std::vector<std::vector<TransitionRow>> rows{
      {{{1, 0.3}, {0, 0.0}, {1, 0.2}, {0, 0.5}}}};
  // n = 2 needs 2 rows per command.
  rows[0].push_back({{0, 1.0}});
  const SparseControlledChain c(2, std::move(rows));
  EXPECT_EQ(c.row(0, 0).size(), 2u);  // {0: 0.5, 1: 0.5}; zero dropped
  EXPECT_NEAR(c.transition(0, 1, 0), 0.5, 1e-15);
  EXPECT_NEAR(c.transition(0, 0, 0), 0.5, 1e-15);
  EXPECT_EQ(c.transition(1, 1, 0), 0.0);
  EXPECT_EQ(c.nonzeros(), 3u);
}

TEST(SparseChain, DenseRoundTrip) {
  std::mt19937_64 gen(11);
  const auto dense = random_dense_chain(12, 3, 4, gen);
  const SparseControlledChain sparse =
      SparseControlledChain::from_dense(dense);
  ASSERT_EQ(sparse.num_states(), 12u);
  ASSERT_EQ(sparse.num_commands(), 3u);
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_NEAR(linalg::Matrix::max_abs_diff(sparse.to_dense(a), dense[a]),
                0.0, 1e-15);
  }
}

TEST(SparseChain, UnderPolicyAgreesWithDenseOnRandomInstances) {
  std::mt19937_64 gen(23);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 5 + static_cast<std::size_t>(trial) * 3;
    const std::size_t na = 2 + trial % 3;
    const auto dense = random_dense_chain(n, na, 3, gen);
    const ControlledMarkovChain chain(dense);
    const linalg::Matrix pi = random_policy(n, na, gen);

    // Dense reference: explicit mix of the dense matrices.
    linalg::Matrix want(n, n);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        for (std::size_t t = 0; t < n; ++t) {
          want(s, t) += pi(s, a) * dense[a](s, t);
        }
      }
    }
    const MarkovChain mixed = chain.under_policy(pi);
    EXPECT_LT(linalg::Matrix::max_abs_diff(mixed.transition_matrix(), want),
              1e-12);

    // Workspace variant agrees and reuses buffers across calls.
    std::vector<TransitionRow> rows;
    chain.sparse().under_policy_rows(pi, rows);
    chain.sparse().under_policy_rows(pi, rows);  // reuse
    linalg::Matrix again(n, n);
    for (std::size_t s = 0; s < n; ++s) {
      for (const auto& [t, p] : rows[s]) again(s, t) = p;
    }
    EXPECT_LT(linalg::Matrix::max_abs_diff(again, want), 1e-12);
  }
}

TEST(SparseChain, UnderPolicyRejectsBadDecisions) {
  std::mt19937_64 gen(3);
  const auto dense = random_dense_chain(4, 2, 2, gen);
  const SparseControlledChain sparse =
      SparseControlledChain::from_dense(dense);
  std::vector<TransitionRow> rows;
  linalg::Matrix bad_shape(4, 3);
  EXPECT_THROW(sparse.under_policy_rows(bad_shape, rows), MarkovError);
  linalg::Matrix not_summing(4, 2, 0.3);
  EXPECT_THROW(sparse.under_policy_rows(not_summing, rows), MarkovError);
  linalg::Matrix negative(4, 2);
  for (std::size_t s = 0; s < 4; ++s) {
    negative(s, 0) = 1.5;
    negative(s, 1) = -0.5;
  }
  EXPECT_THROW(sparse.under_policy_rows(negative, rows), MarkovError);
}

TEST(SparseChain, SparseOccupancyMatchesDenseSolve) {
  std::mt19937_64 gen(47);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 6 + static_cast<std::size_t>(trial) * 5;
    const auto dense = random_dense_chain(n, 2, 3, gen);
    const ControlledMarkovChain chain(dense);
    const linalg::Matrix pi = random_policy(n, 2, gen);
    const double gamma = 0.97;
    linalg::Vector p0(n, 0.0);
    p0[0] = 0.4;
    p0[n - 1] = 0.6;

    const MarkovChain mixed = chain.under_policy(pi);
    const linalg::Vector dense_u = mixed.discounted_occupancy(p0, gamma);

    std::vector<TransitionRow> rows;
    chain.sparse().under_policy_rows(pi, rows);
    const linalg::Vector sparse_u = discounted_occupancy_sparse(rows, p0,
                                                                gamma);
    ASSERT_EQ(sparse_u.size(), n);
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_NEAR(sparse_u[s], dense_u[s], 1e-8 * (1.0 + dense_u[s]));
    }
  }
}

TEST(SparseChain, LazyDenseMatrixMatchesSparse) {
  std::mt19937_64 gen(5);
  const auto dense = random_dense_chain(9, 2, 3, gen);
  ControlledMarkovChain sparse_first{
      SparseControlledChain::from_dense(dense)};
  for (std::size_t a = 0; a < 2; ++a) {
    EXPECT_NEAR(
        linalg::Matrix::max_abs_diff(sparse_first.matrix(a), dense[a]), 0.0,
        1e-15);
  }
  // Copies drop the cache but keep the chain.
  const ControlledMarkovChain copy = sparse_first;
  EXPECT_NEAR(linalg::Matrix::max_abs_diff(copy.matrix(1), dense[1]), 0.0,
              1e-15);
}

// ---------------------------------------------------------------------
// Sparse LP assembly: build_lp against a dense reference formulation.
// ---------------------------------------------------------------------

TEST(SparseChain, BuildLpMatchesDenseReferenceFormulation) {
  const SystemModel model = cases::ExampleSystem::make_model();
  const OptimizerConfig config =
      cases::ExampleSystem::make_config(model, 0.999);
  const PolicyOptimizer opt(model, config);
  const StateActionMetric power = metrics::power(model);
  const StateActionMetric queue = metrics::queue_length(model);
  std::vector<OptimizationConstraint> constraints{{queue, 0.5, "queue"}};
  const lp::LpProblem lp = opt.build_lp(power, constraints);

  const std::size_t n = model.num_states();
  const std::size_t na = model.num_commands();
  const double gamma = config.discount;
  ASSERT_EQ(lp.num_variables(), n * na);
  ASSERT_EQ(lp.num_constraints(), n + 1);

  // Dense reference: balance coefficient of x_{s,a} in row j is
  // [s == j] - gamma * P_a(s, j), assembled from the densified chain.
  for (std::size_t j = 0; j < n; ++j) {
    linalg::Vector row(n * na, 0.0);
    for (const auto& [col, v] : lp.constraints()[j].terms) row[col] = v;
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        const double want = (s == j ? 1.0 : 0.0) -
                            gamma * model.chain().matrix(a)(s, j);
        EXPECT_NEAR(row[s * na + a], want, 1e-12)
            << "row " << j << " col (" << s << "," << a << ")";
      }
    }
  }
  // Metric row: queue_length per (s, a), scaled bound.
  const lp::Constraint& metric_row = lp.constraints()[n];
  EXPECT_EQ(metric_row.sense, lp::Sense::kLe);
  EXPECT_NEAR(metric_row.rhs, 0.5 / (1.0 - gamma), 1e-6);
}

// End-to-end: the optimizer (sparse assembly + bounded simplex) still
// matches exact policy evaluation of its own output.
TEST(SparseChain, OptimizerPolicyConsistentWithSparseEvaluation) {
  const SystemModel model = cases::ExampleSystem::make_model();
  const OptimizerConfig config =
      cases::ExampleSystem::make_config(model, 0.999);
  const PolicyOptimizer opt(model, config);
  const OptimizationResult r = opt.minimize_power(0.6);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.policy.has_value());
  const PolicyEvaluation eval(model, *r.policy, config.discount,
                              config.initial_distribution);
  EXPECT_NEAR(eval.per_step(metrics::power(model)), r.objective_per_step,
              1e-5);
}

}  // namespace
}  // namespace dpm::markov
