// Tests for exact discounted policy evaluation.
#include <gtest/gtest.h>

#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"

namespace dpm {
namespace {

using cases::ExampleSystem;

TEST(Evaluation, ValidatesInputs) {
  const SystemModel m = ExampleSystem::make_model();
  const Policy p = cases::always_on_policy(m, ExampleSystem::kCmdOn);
  const linalg::Vector p0 = m.point_distribution({0, 0, 0});
  EXPECT_THROW(PolicyEvaluation(m, p, 1.0, p0), ModelError);
  EXPECT_THROW(PolicyEvaluation(m, p, 0.0, p0), ModelError);
  EXPECT_THROW(PolicyEvaluation(m, p, 0.9, linalg::Vector(8, 0.0)),
               ModelError);
  EXPECT_THROW(PolicyEvaluation(m, Policy::constant(3, 2, 0), 0.9, p0),
               ModelError);
}

TEST(Evaluation, OccupancySumsToHorizon) {
  const SystemModel m = ExampleSystem::make_model();
  const Policy p = cases::always_on_policy(m, ExampleSystem::kCmdOn);
  const double gamma = 0.99;
  const PolicyEvaluation ev(m, p, gamma, m.point_distribution({0, 0, 0}));
  EXPECT_NEAR(linalg::sum(ev.occupancy()), 1.0 / (1.0 - gamma), 1e-8);
}

TEST(Evaluation, ConstantMetricEvaluatesToConstant) {
  const SystemModel m = ExampleSystem::make_model();
  const Policy p = cases::eager_policy(m, ExampleSystem::kCmdOff,
                                       ExampleSystem::kCmdOn);
  const PolicyEvaluation ev(m, p, 0.999, m.point_distribution({0, 0, 0}));
  EXPECT_NEAR(ev.per_step(metrics::constant(2.5)), 2.5, 1e-9);
}

TEST(Evaluation, AlwaysOnPowerApproachesActivePower) {
  // Always-on with long horizon: the chain stays in SP=on where
  // c(on, s_on) = 3 W.
  const SystemModel m = ExampleSystem::make_model();
  const Policy p = cases::always_on_policy(m, ExampleSystem::kCmdOn);
  const PolicyEvaluation ev(m, p, 0.99999,
                            m.point_distribution({0, 0, 0}));
  EXPECT_NEAR(ev.per_step(metrics::power(m)), 3.0, 1e-3);
}

TEST(Evaluation, StateActionFrequenciesMatchOccupancyTimesPolicy) {
  const SystemModel m = ExampleSystem::make_model();
  const Policy p = cases::randomized_shutdown_policy(
      m, ExampleSystem::kCmdOff, ExampleSystem::kCmdOn, 0.3);
  const PolicyEvaluation ev(m, p, 0.999, m.point_distribution({0, 0, 0}));
  const linalg::Vector x = ev.state_action_frequencies();
  ASSERT_EQ(x.size(), m.num_states() * m.num_commands());
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    double row = 0.0;
    for (std::size_t a = 0; a < m.num_commands(); ++a) {
      row += x[s * m.num_commands() + a];
    }
    EXPECT_NEAR(row, ev.occupancy()[s], 1e-10);
  }
}

TEST(Evaluation, FrequenciesSatisfyBalanceEquations) {
  // The discounted frequencies of *any* stationary policy satisfy the
  // LP2 balance constraints: sum_a x_{j,a} - gamma sum_{s,a} P x = p0_j.
  const SystemModel m = ExampleSystem::make_model();
  const Policy p = cases::randomized_shutdown_policy(
      m, ExampleSystem::kCmdOff, ExampleSystem::kCmdOn, 0.5);
  const double gamma = 0.995;
  const linalg::Vector p0 = m.point_distribution({0, 0, 0});
  const PolicyEvaluation ev(m, p, gamma, p0);
  const linalg::Vector x = ev.state_action_frequencies();
  const std::size_t na = m.num_commands();
  for (std::size_t j = 0; j < m.num_states(); ++j) {
    double lhs = 0.0;
    for (std::size_t a = 0; a < na; ++a) lhs += x[j * na + a];
    for (std::size_t s = 0; s < m.num_states(); ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        lhs -= gamma * m.chain().transition(s, j, a) * x[s * na + a];
      }
    }
    EXPECT_NEAR(lhs, p0[j], 1e-9) << "state " << j;
  }
}

TEST(Evaluation, EagerPolicySavesPowerVsAlwaysOn) {
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.9999;
  const linalg::Vector p0 = m.point_distribution({0, 0, 0});
  const PolicyEvaluation on(
      m, cases::always_on_policy(m, ExampleSystem::kCmdOn), gamma, p0);
  const PolicyEvaluation eager(
      m,
      cases::eager_policy(m, ExampleSystem::kCmdOff, ExampleSystem::kCmdOn),
      gamma, p0);
  EXPECT_LT(eager.per_step(metrics::power(m)),
            on.per_step(metrics::power(m)));
  // ... but the eager policy pays in queueing delay.
  EXPECT_GT(eager.per_step(metrics::queue_length(m)),
            on.per_step(metrics::queue_length(m)));
}

// Property: per-step metric of a convex policy blend is bracketed by the
// per-policy... (not true in general for MDP costs, which are nonlinear
// in the policy; instead check a linearity that IS guaranteed: per_step
// is linear in the metric for a fixed policy).
TEST(Evaluation, LinearInMetric) {
  const SystemModel m = ExampleSystem::make_model();
  const Policy p = cases::eager_policy(m, ExampleSystem::kCmdOff,
                                       ExampleSystem::kCmdOn);
  const PolicyEvaluation ev(m, p, 0.999, m.point_distribution({0, 0, 0}));
  const double a = ev.per_step(metrics::power(m));
  const double b = ev.per_step(metrics::queue_length(m));
  const StateActionMetric combo = [&m](std::size_t s, std::size_t c) {
    return 2.0 * m.power(s, c) + 3.0 * m.queue_length(s);
  };
  EXPECT_NEAR(ev.per_step(combo), 2.0 * a + 3.0 * b, 1e-9);
}

}  // namespace
}  // namespace dpm
