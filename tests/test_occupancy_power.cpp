// Power-accumulation occupancy evaluator: correctness against the
// exact LU route, the small-size and non-convergence LU gates, and the
// zero-steady-state-allocation guarantee of the mix+eval hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>

#include "markov/occupancy.h"
#include "markov/sparse_chain.h"

// Global allocation counter: counts every operator new while armed.
// Used to prove the power loop (and a reused under_policy_csr mix)
// performs no per-iteration allocations once the workspace is warm.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dpm::markov {
namespace {

SparseControlledChain random_chain(std::size_t n, std::size_t na,
                                   std::size_t succ, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.05, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::vector<std::vector<TransitionRow>> rows(n > 0 ? na : 0,
                                               std::vector<TransitionRow>(n));
  for (std::size_t a = 0; a < na; ++a) {
    for (std::size_t s = 0; s < n; ++s) {
      TransitionRow& row = rows[a][s];
      double total = 0.0;
      for (std::size_t k = 0; k < succ; ++k) {
        row.emplace_back(pick(gen), u(gen));
        total += row.back().second;
      }
      for (auto& [to, w] : row) w /= total;
    }
  }
  return SparseControlledChain(n, std::move(rows));
}

linalg::Matrix round_robin_policy(std::size_t n, std::size_t na) {
  linalg::Matrix policy(n, na);
  for (std::size_t s = 0; s < n; ++s) policy(s, s % na) = 1.0;
  return policy;
}

// Power accumulation must agree with the exact LU solve to solver
// precision, and conserve mass: sum(u) = 1 / (1 - gamma).
TEST(OccupancyPower, MatchesLuSolveAboveTheSizeGate) {
  const std::size_t n = 700, na = 4;  // above kPowerMinStates
  const double gamma = 0.99;
  const SparseControlledChain chain = random_chain(n, na, 4, 11);
  const linalg::Matrix policy = round_robin_policy(n, na);
  linalg::Vector p0(n, 1.0 / static_cast<double>(n));

  MixedChainCsr mixed;
  chain.under_policy_csr(policy, mixed);
  OccupancyWorkspace ws;
  const linalg::Vector& u = discounted_occupancy_power(mixed, p0, gamma, ws);
  EXPECT_FALSE(ws.used_lu);
  EXPECT_GT(ws.iterations, 0u);

  std::vector<TransitionRow> rows;
  chain.under_policy_rows(policy, rows);
  const linalg::Vector exact = discounted_occupancy_sparse(rows, p0, gamma);
  double mass = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_NEAR(u[s], exact[s], 1e-9 * (1.0 + std::abs(exact[s])))
        << "state " << s;
    mass += u[s];
  }
  EXPECT_NEAR(mass * (1.0 - gamma), 1.0, 1e-9);
}

// under_policy_csr must produce exactly the rows of under_policy_rows,
// fused.
TEST(OccupancyPower, FusedMixMatchesRowMix) {
  const std::size_t n = 60, na = 3;
  const SparseControlledChain chain = random_chain(n, na, 3, 5);
  // A genuinely mixed (stochastic) policy exercises the merge.
  linalg::Matrix policy(n, na);
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t a = 0; a < na; ++a)
      policy(s, a) = 1.0 / static_cast<double>(na);

  MixedChainCsr fused;
  chain.under_policy_csr(policy, fused);
  std::vector<TransitionRow> rows;
  chain.under_policy_rows(policy, rows);
  ASSERT_EQ(fused.num_states(), n);
  for (std::size_t s = 0; s < n; ++s) {
    const TransitionRowView fr = fused.row(s);
    ASSERT_EQ(fr.size(), rows[s].size()) << "row " << s;
    for (std::size_t k = 0; k < fr.size(); ++k) {
      EXPECT_EQ(fr[k].first, rows[s][k].first) << "row " << s;
      EXPECT_EQ(fr[k].second, rows[s][k].second) << "row " << s;
    }
  }
}

// Below the size gate the evaluator takes the exact LU route — small
// case-study models keep their historic byte-for-byte results.
TEST(OccupancyPower, SmallSystemsUseLu) {
  const std::size_t n = 40, na = 2;
  const SparseControlledChain chain = random_chain(n, na, 3, 7);
  MixedChainCsr mixed;
  chain.under_policy_csr(round_robin_policy(n, na), mixed);
  linalg::Vector p0(n, 1.0 / static_cast<double>(n));
  OccupancyWorkspace ws;
  const linalg::Vector& u = discounted_occupancy_power(mixed, p0, 0.95, ws);
  EXPECT_TRUE(ws.used_lu);
  EXPECT_EQ(ws.iterations, 0u);

  std::vector<TransitionRow> rows;
  chain.under_policy_rows(round_robin_policy(n, na), rows);
  const linalg::Vector exact = discounted_occupancy_sparse(rows, p0, 0.95);
  for (std::size_t s = 0; s < n; ++s) {
    // Same mix content + same solver: identical bits.
    EXPECT_EQ(u[s], exact[s]) << "state " << s;
  }
}

// The hot path allocates nothing once warm: re-evaluating with a warm
// workspace (and re-mixing into warm fused arrays) performs zero heap
// allocations regardless of iteration count.
TEST(OccupancyPower, WarmEvaluationDoesNotAllocate) {
  const std::size_t n = 800, na = 4;
  const double gamma = 0.995;
  const SparseControlledChain chain = random_chain(n, na, 4, 13);
  const linalg::Matrix policy = round_robin_policy(n, na);
  linalg::Vector p0(n, 1.0 / static_cast<double>(n));

  MixedChainCsr mixed;
  OccupancyWorkspace ws;
  chain.under_policy_csr(policy, mixed);  // warm the fused arrays
  discounted_occupancy_power(mixed, p0, gamma, ws);  // warm the workspace
  ASSERT_FALSE(ws.used_lu);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  chain.under_policy_csr(policy, mixed);
  discounted_occupancy_power(mixed, p0, gamma, ws);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "mix+eval hot path allocated with a warm workspace";
  EXPECT_GT(ws.iterations, 0u);
}

}  // namespace
}  // namespace dpm::markov
