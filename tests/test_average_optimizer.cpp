// Tests for the average-cost optimizer (the paper's Eq. 7 formulation).
#include <gtest/gtest.h>

#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/average_optimizer.h"
#include "markov/markov_chain.h"
#include "sim/simulator.h"

namespace dpm {
namespace {

using cases::ExampleSystem;

TEST(AverageOptimizer, LpShape) {
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer opt(m);
  const lp::LpProblem p = opt.build_lp(
      metrics::power(m), {{metrics::queue_length(m), 0.5, "perf"}});
  // 16 unknowns; 8 stationarity + 1 normalization + 1 metric rows.
  EXPECT_EQ(p.num_variables(), 16u);
  EXPECT_EQ(p.num_constraints(), 10u);
}

TEST(AverageOptimizer, FrequenciesFormDistribution) {
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer opt(m);
  const OptimizationResult r = opt.minimize_power(0.5, 0.2);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(linalg::sum(r.frequencies), 1.0, 1e-8);
  for (const double x : r.frequencies) EXPECT_GE(x, -1e-10);
}

TEST(AverageOptimizer, ConstraintsHold) {
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer opt(m);
  const OptimizationResult r = opt.minimize_power(0.4, 0.25);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.constraint_per_step[0], 0.4 + 1e-8);
  EXPECT_LE(r.constraint_per_step[1], 0.25 + 1e-8);
}

TEST(AverageOptimizer, MatchesDiscountedLimit) {
  // On this ergodic model the discounted optimum converges to the
  // average-cost optimum as gamma -> 1.
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer avg(m);
  const OptimizationResult a = avg.minimize_power(0.45, 0.25);
  ASSERT_TRUE(a.feasible);

  const PolicyOptimizer disc(m, ExampleSystem::make_config(m, 0.9999999));
  const OptimizationResult d = disc.minimize_power(0.45, 0.25);
  ASSERT_TRUE(d.feasible);
  EXPECT_NEAR(a.objective_per_step, d.objective_per_step, 1e-3);
}

TEST(AverageOptimizer, InfeasibleDetected) {
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer opt(m);
  const OptimizationResult r = opt.minimize_power(0.0001);
  EXPECT_FALSE(r.feasible);
}

TEST(AverageOptimizer, StationaryEvaluationMatchesLp) {
  // The extracted policy's stationary averages (computed from the mixed
  // chain's stationary distribution) must reproduce the LP's objective
  // when the optimal chain is ergodic on its support.
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer opt(m);
  const OptimizationResult r = opt.minimize_power(0.45, 0.25);
  ASSERT_TRUE(r.feasible);

  // Long-run simulation from a supported state.
  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig cfg;
  cfg.slices = 800000;
  cfg.warmup = 5000;
  cfg.seed = 3;
  // Start inside the support of the stationary solution.
  std::size_t start = 0;
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    double mass = 0.0;
    for (std::size_t a = 0; a < m.num_commands(); ++a) {
      mass += r.frequencies[s * m.num_commands() + a];
    }
    if (mass > 0.1) {
      start = s;
      break;
    }
  }
  cfg.initial_state = m.decompose(start);
  const sim::SimulationResult s = simulator.run(ctl, cfg);
  EXPECT_NEAR(s.avg_power, r.objective_per_step, 0.05);
  EXPECT_NEAR(s.avg_queue_length, r.constraint_per_step[0], 0.05);
}

TEST(AverageOptimizer, BeatsHeuristicsUnderSameConstraints) {
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer opt(m);
  const OptimizationResult r = opt.minimize_power(0.5, 0.25);
  ASSERT_TRUE(r.feasible);
  // Stationary averages of the eager policy.
  const Policy eager = cases::eager_policy(m, ExampleSystem::kCmdOff,
                                           ExampleSystem::kCmdOn);
  const markov::MarkovChain mixed = m.chain().under_policy(eager.matrix());
  const linalg::Vector pi = mixed.stationary_distribution();
  double eager_power = 0.0, eager_queue = 0.0, eager_loss = 0.0;
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    for (std::size_t a = 0; a < m.num_commands(); ++a) {
      eager_power += pi[s] * eager.probability(s, a) * m.power(s, a);
    }
    eager_queue += pi[s] * m.queue_length(s);
    eager_loss += pi[s] * (m.is_loss_state(s) ? 1.0 : 0.0);
  }
  if (eager_queue <= 0.5 && eager_loss <= 0.25) {
    EXPECT_LE(r.objective_per_step, eager_power + 1e-8);
  }
}

TEST(AverageOptimizer, SingleClassDiagnostic) {
  // Unconstrained: the optimum is a plain deterministic policy whose
  // support is one recurrent class.
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer opt(m);
  const OptimizationResult unconstrained =
      opt.minimize(metrics::power(m));
  ASSERT_TRUE(unconstrained.feasible);
  EXPECT_TRUE(opt.support_is_single_class(unconstrained));

  // An infeasible result is never a single class.
  const OptimizationResult infeasible = opt.minimize_power(0.0001);
  EXPECT_FALSE(opt.support_is_single_class(infeasible));
}

TEST(AverageOptimizer, MultichainMixDetectedOnDisk) {
  // The constrained disk optimum mixes recurrent classes (see
  // examples/average_vs_discounted.cpp); the diagnostic must flag it.
  const SystemModel m = cases::DiskDrive::make_model();
  const AverageCostOptimizer opt(m);
  const OptimizationResult r = opt.minimize_power(0.4, 0.05);
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(opt.support_is_single_class(r));
}

TEST(AverageOptimizer, NoEndGameExploit) {
  // Unlike the discounted problem, the average-cost optimum cannot
  // profit from "shut down forever" unless that satisfies the
  // constraints at stationarity; with a queue bound, permanently-off
  // (stationary queue = capacity) is excluded for tight bounds.
  const SystemModel m = ExampleSystem::make_model();
  const AverageCostOptimizer opt(m);
  const OptimizationResult r = opt.minimize_power(0.3, 0.2);
  ASSERT_TRUE(r.feasible);
  // The all-off absorbing pattern would give ~0 power; the true optimum
  // under these stationary constraints is well above it.
  EXPECT_GT(r.objective_per_step, 1.0);
}

}  // namespace
}  // namespace dpm
