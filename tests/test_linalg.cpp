// Unit tests for the dense linear-algebra substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace dpm::linalg {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), LinalgError);
}

TEST(Matrix, Identity) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3(0, 0), 1.0);
  EXPECT_EQ(i3(1, 2), 0.0);
  const Matrix m{{1.0, 2.0, 1.0}, {0.0, 1.0, 5.0}, {2.0, 3.0, 4.0}};
  EXPECT_EQ(Matrix::max_abs_diff(m * i3, m), 0.0);
  EXPECT_EQ(Matrix::max_abs_diff(i3 * m, m), 0.0);
}

TEST(Matrix, Diagonal) {
  const Matrix d = Matrix::diagonal({2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), LinalgError);
  EXPECT_THROW(m.at(0, 2), LinalgError);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, Transpose) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(Matrix::max_abs_diff(t.transposed(), m), 0.0);
}

TEST(Matrix, AddSubScale) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 5.0);
  EXPECT_EQ(sum(1, 1), 5.0);
  const Matrix diff = sum - b;
  EXPECT_EQ(Matrix::max_abs_diff(diff, a), 0.0);
  const Matrix scaled = a * 2.0;
  EXPECT_EQ(scaled(1, 0), 6.0);
  EXPECT_EQ(Matrix::max_abs_diff(scaled, 2.0 * a), 0.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, LinalgError);
  EXPECT_THROW(a - b, LinalgError);
  EXPECT_THROW(b * b, LinalgError);
  EXPECT_THROW(Matrix::max_abs_diff(a, b), LinalgError);
}

TEST(Matrix, Product) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix ab = a * b;
  EXPECT_EQ(ab(0, 0), 2.0);
  EXPECT_EQ(ab(0, 1), 1.0);
  EXPECT_EQ(ab(1, 0), 4.0);
  EXPECT_EQ(ab(1, 1), 3.0);
}

TEST(Matrix, MatVec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector v{1.0, 1.0};
  const Vector av = a * v;
  EXPECT_EQ(av[0], 3.0);
  EXPECT_EQ(av[1], 7.0);
  EXPECT_THROW(a * Vector{1.0}, LinalgError);
}

TEST(Matrix, LeftMultiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector v{1.0, 2.0};
  const Vector va = left_multiply(v, a);
  EXPECT_EQ(va[0], 7.0);
  EXPECT_EQ(va[1], 10.0);
  EXPECT_THROW(left_multiply(Vector{1.0}, a), LinalgError);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotAndNorms) {
  const Vector a{1.0, 2.0, 2.0};
  const Vector b{2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{-5.0, 2.0}), 5.0);
  EXPECT_DOUBLE_EQ(sum(a), 5.0);
  EXPECT_THROW(dot(a, Vector{1.0}), LinalgError);
}

TEST(VectorOps, Axpy) {
  const Vector a{1.0, 2.0};
  const Vector b{10.0, 20.0};
  const Vector r = axpy(a, 0.5, b);
  EXPECT_DOUBLE_EQ(r[0], 6.0);
  EXPECT_DOUBLE_EQ(r[1], 12.0);
  EXPECT_THROW(axpy(a, 1.0, Vector{1.0}), LinalgError);
}

// ---------------------------------------------------------------------
// LU decomposition
// ---------------------------------------------------------------------

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{3.0, 5.0};
  const Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RequiresSquare) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), LinalgError);
}

TEST(Lu, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition{a}, LinalgError);
}

TEST(Lu, RhsSizeMismatchThrows) {
  const LuDecomposition lu(Matrix::identity(2));
  EXPECT_THROW(lu.solve(Vector{1.0, 2.0, 3.0}), LinalgError);
  EXPECT_THROW(lu.solve_transposed(Vector{1.0}), LinalgError);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, Determinant) {
  const Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), 6.0, 1e-12);
  const Matrix swap{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(swap).determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseRoundTrip) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = LuDecomposition(a).inverse();
  EXPECT_LT(Matrix::max_abs_diff(a * inv, Matrix::identity(2)), 1e-12);
}

TEST(Lu, SolveTransposedMatchesExplicitTranspose) {
  const Matrix a{{3.0, 1.0, 2.0}, {1.0, 4.0, 0.0}, {2.0, 0.0, 5.0}};
  const Vector b{1.0, 2.0, 3.0};
  const Vector x1 = LuDecomposition(a).solve_transposed(b);
  const Vector x2 = LuDecomposition(a.transposed()).solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-12);
}

// Property sweep: random diagonally-dominant systems solve with tiny
// residuals for a range of orders.
class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, ResidualIsSmall) {
  const int n = GetParam();
  std::mt19937_64 gen(1234 + n);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(n, n);
  Vector b(n);
  for (int i = 0; i < n; ++i) {
    double row_abs = 0.0;
    for (int j = 0; j < n; ++j) {
      a(i, j) = u(gen);
      row_abs += std::abs(a(i, j));
    }
    a(i, i) += row_abs + 1.0;  // ensure nonsingular
    b[i] = u(gen);
  }
  const Vector x = solve(a, b);
  const Vector r = a * x;
  for (int i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, LuRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

// ---------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------

TEST(Cholesky, SolvesSpdSystem) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const CholeskyDecomposition chol(a);
  const Vector x = chol.solve({1.0, 2.0});
  const Vector r = a * x;
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 2.0, 1e-12);
}

TEST(Cholesky, FactorIsLowerTriangular) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const CholeskyDecomposition chol(a);
  const Matrix& l = chol.factor();
  EXPECT_EQ(l(0, 1), 0.0);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyDecomposition{a}, LinalgError);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(CholeskyDecomposition(Matrix(2, 3)), LinalgError);
}

TEST(Cholesky, ShiftRegularizesSemidefinite) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};  // rank 1
  EXPECT_THROW(CholeskyDecomposition{a}, LinalgError);
  EXPECT_NO_THROW(CholeskyDecomposition(a, /*shift=*/1e-6));
}

class CholeskyRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRandomTest, GramMatrixRoundTrip) {
  const int n = GetParam();
  std::mt19937_64 gen(99 + n);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix g(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) g(i, j) = u(gen);
  }
  Matrix a = g * g.transposed();
  for (int i = 0; i < n; ++i) a(i, i) += 0.5;  // SPD for sure
  const CholeskyDecomposition chol(a);
  Vector b(n);
  for (int i = 0; i < n; ++i) b[i] = u(gen);
  const Vector x = chol.solve(b);
  const Vector r = a * x;
  for (int i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, CholeskyRandomTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace dpm::linalg
