// Randomized cross-backend agreement suite: the dense tableau simplex,
// the sparse revised simplex, and the interior-point solver must tell
// the same story on the same instance.
//
// Statuses must match exactly between the two simplex variants on every
// instance class (feasible, infeasible, unbounded); the interior-point
// method is only held to the feasible-bounded instances, which is the
// regime it is specified for (see lp/interior_point.h).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lp/solver.h"

namespace dpm::lp {
namespace {

constexpr double kTol = 1e-6;

// Feasible bounded instance: A >= 0, rhs = A x0 + slack with x0 > 0,
// positive costs, plus one >= row bounding the optimum away from zero.
LpProblem random_feasible(std::mt19937_64& gen) {
  std::uniform_real_distribution<double> u(0.1, 2.0);
  std::uniform_int_distribution<int> dim(2, 9);
  const int n = dim(gen);
  const int m = dim(gen);
  LpProblem p;
  for (int j = 0; j < n; ++j) p.add_variable(u(gen));
  linalg::Vector x0(n);
  for (int j = 0; j < n; ++j) x0[j] = u(gen);
  for (int i = 0; i < m; ++i) {
    Constraint c;
    double rhs = 0.1;
    for (int j = 0; j < n; ++j) {
      const double a = u(gen);
      c.terms.emplace_back(j, a);
      rhs += a * x0[j];
    }
    c.sense = Sense::kLe;
    c.rhs = rhs;
    p.add_constraint(std::move(c));
  }
  Constraint floor_row;
  for (int j = 0; j < n; ++j) floor_row.terms.emplace_back(j, 1.0);
  floor_row.sense = Sense::kGe;
  floor_row.rhs = 0.5 * linalg::sum(x0);
  p.add_constraint(std::move(floor_row));
  return p;
}

// Infeasible instance: a random feasible core plus a contradictory pair
// sum(x) <= t, sum(x) >= t + gap.
LpProblem random_infeasible(std::mt19937_64& gen) {
  std::uniform_real_distribution<double> u(0.1, 2.0);
  LpProblem p = random_feasible(gen);
  const int n = static_cast<int>(p.num_variables());
  const double t = u(gen);
  Constraint le, ge;
  for (int j = 0; j < n; ++j) {
    le.terms.emplace_back(j, 1.0);
    ge.terms.emplace_back(j, 1.0);
  }
  le.sense = Sense::kLe;
  le.rhs = t;
  ge.sense = Sense::kGe;
  ge.rhs = t + 0.5 + u(gen);
  p.add_constraint(std::move(le));
  p.add_constraint(std::move(ge));
  return p;
}

// Unbounded instance: negative cost on a variable that appears only in
// >= rows with nonnegative coefficients — it can grow forever.
LpProblem random_unbounded(std::mt19937_64& gen) {
  std::uniform_real_distribution<double> u(0.1, 2.0);
  std::uniform_int_distribution<int> dim(2, 6);
  const int n = dim(gen);
  const int m = dim(gen);
  LpProblem p;
  p.add_variable(-u(gen));  // the escape direction
  for (int j = 1; j < n; ++j) p.add_variable(u(gen));
  for (int i = 0; i < m; ++i) {
    Constraint c;
    for (int j = 0; j < n; ++j) c.terms.emplace_back(j, u(gen));
    c.sense = Sense::kGe;
    c.rhs = u(gen);
    p.add_constraint(std::move(c));
  }
  return p;
}

class AgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(AgreementTest, FeasibleInstancesAgreeAcrossAllThreeBackends) {
  std::mt19937_64 gen(1000 + GetParam());
  const LpProblem p = random_feasible(gen);

  const LpSolution tab = solve_simplex(p);
  const LpSolution rev = solve_revised_simplex(p);
  const LpSolution ip = solve_interior_point(p);

  ASSERT_EQ(tab.status, LpStatus::kOptimal);
  ASSERT_EQ(rev.status, LpStatus::kOptimal);
  ASSERT_EQ(ip.status, LpStatus::kOptimal);
  const double scale = 1.0 + std::abs(tab.objective);
  EXPECT_NEAR(tab.objective, rev.objective, kTol * scale);
  EXPECT_NEAR(tab.objective, ip.objective, kTol * scale);
  EXPECT_LT(p.max_violation(tab.x), 1e-7);
  EXPECT_LT(p.max_violation(rev.x), 1e-7);
  EXPECT_LT(p.max_violation(ip.x), 1e-5);
}

TEST_P(AgreementTest, InfeasibleInstancesAgreeAcrossSimplexVariants) {
  std::mt19937_64 gen(2000 + GetParam());
  const LpProblem p = random_infeasible(gen);
  EXPECT_EQ(solve_simplex(p).status, LpStatus::kInfeasible);
  EXPECT_EQ(solve_revised_simplex(p).status, LpStatus::kInfeasible);
}

TEST_P(AgreementTest, UnboundedInstancesAgreeAcrossSimplexVariants) {
  std::mt19937_64 gen(3000 + GetParam());
  const LpProblem p = random_unbounded(gen);
  EXPECT_EQ(solve_simplex(p).status, LpStatus::kUnbounded);
  EXPECT_EQ(solve_revised_simplex(p).status, LpStatus::kUnbounded);
}

// 17 seeds x {feasible, infeasible, unbounded} = 51 random instances.
INSTANTIATE_TEST_SUITE_P(RandomLps, AgreementTest, ::testing::Range(0, 17));

// ---------------------------------------------------------------------
// Revised-simplex specifics: pricing rules and warm starts.
// ---------------------------------------------------------------------

TEST(RevisedSimplex, AllPricingRulesAgree) {
  std::mt19937_64 gen(42);
  for (int trial = 0; trial < 10; ++trial) {
    const LpProblem p = random_feasible(gen);
    RevisedSimplexOptions dantzig;
    dantzig.pricing = RevisedSimplexOptions::Pricing::kDantzig;
    RevisedSimplexOptions devex;
    devex.pricing = RevisedSimplexOptions::Pricing::kSteepestEdge;
    RevisedSimplexOptions partial;
    partial.pricing = RevisedSimplexOptions::Pricing::kPartial;
    partial.partial_section = 3;  // force several sections even when tiny
    const LpSolution a = solve_revised_simplex(p, dantzig);
    const LpSolution b = solve_revised_simplex(p, devex);
    const LpSolution c = solve_revised_simplex(p, partial);
    ASSERT_EQ(a.status, LpStatus::kOptimal);
    ASSERT_EQ(b.status, LpStatus::kOptimal);
    ASSERT_EQ(c.status, LpStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective,
                kTol * (1.0 + std::abs(a.objective)));
    EXPECT_NEAR(a.objective, c.objective,
                kTol * (1.0 + std::abs(a.objective)));
  }
}

TEST(RevisedSimplex, WarmStartAfterRhsChangeMatchesColdSolve) {
  std::mt19937_64 gen(77);
  for (int trial = 0; trial < 10; ++trial) {
    LpProblem p = random_feasible(gen);
    SimplexBasis basis;
    const LpSolution first = solve_revised_simplex(p, {}, nullptr, &basis);
    ASSERT_EQ(first.status, LpStatus::kOptimal);
    ASSERT_FALSE(basis.empty());

    // Tighten the >= floor row (the last of the feasible core): the old
    // basis stays dual feasible, the dual simplex restores primal
    // feasibility.
    const std::size_t floor_row = p.num_constraints() - 1;
    const double old_rhs = p.constraints()[floor_row].rhs;
    p.set_rhs(floor_row, old_rhs * 1.3);

    const LpSolution warm = solve_revised_simplex(p, {}, &basis, nullptr);
    const LpSolution cold = solve_revised_simplex(p);
    ASSERT_EQ(cold.status, warm.status) << "trial " << trial;
    if (cold.status == LpStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, cold.objective,
                  kTol * (1.0 + std::abs(cold.objective)))
          << "trial " << trial;
      EXPECT_LT(p.max_violation(warm.x), 1e-7);
    }
  }
}

TEST(RevisedSimplex, WarmStartRefusesBasisWithArtificialPlaceholder) {
  // A redundant equality row parks an artificial in the optimal basis
  // (at value zero).  Changing that row's rhs afterwards makes the rows
  // inconsistent; a warm start from the artificial-carrying basis must
  // not report optimal for the now-infeasible problem — it has to fall
  // back to a cold phase-1 solve and agree with it.
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(0.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 1.0, ""});
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 1.0, ""});
  SimplexBasis basis;
  const LpSolution first = solve_revised_simplex(p, {}, nullptr, &basis);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  EXPECT_NEAR(first.objective, 0.0, 1e-9);

  p.set_rhs(1, 2.0);  // rows now contradict each other
  const LpSolution warm = solve_revised_simplex(p, {}, &basis, nullptr);
  EXPECT_EQ(warm.status, LpStatus::kInfeasible);
  EXPECT_EQ(solve_revised_simplex(p).status, LpStatus::kInfeasible);
}

TEST(RevisedSimplex, WarmStartWithGarbageBasisFallsBackToCold) {
  std::mt19937_64 gen(5);
  const LpProblem p = random_feasible(gen);
  SimplexBasis junk;
  junk.basic.assign(p.num_constraints(), 0);  // singular: same column twice
  const LpSolution s = solve_revised_simplex(p, {}, &junk, nullptr);
  const LpSolution cold = solve_revised_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, cold.objective, kTol);
}

TEST(RevisedSimplex, EmptyProblemThrows) {
  EXPECT_THROW(solve_revised_simplex(LpProblem{}), LpError);
}

TEST(RevisedSimplex, SolvesDegenerateProblem) {
  // Redundant constraints through the optimum (same instance the
  // tableau suite uses).
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t y = p.add_variable(-1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0, ""});
  p.add_constraint({{{x, 2.0}, {y, 2.0}}, Sense::kLe, 4.0, ""});
  p.add_constraint({{{y, 1.0}}, Sense::kLe, 1.0, ""});
  const LpSolution s = solve_revised_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(RevisedSimplex, NegativeRhsHandled) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}, {y, -1.0}}, Sense::kLe, -2.0, ""});
  const LpSolution s = solve_revised_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(RevisedSimplex, RedundantEqualityRowsAreHarmless) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(0.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 2.0, ""});
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 2.0, ""});
  const LpSolution s = solve_revised_simplex(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(SolverFacade, DispatchesRevisedSimplex) {
  std::mt19937_64 gen(9);
  const LpProblem p = random_feasible(gen);
  const LpSolution a = solve(p, Backend::kRevisedSimplex);
  const LpSolution b = solve(p, Backend::kSimplex);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, kTol * (1.0 + std::abs(b.objective)));
}

}  // namespace
}  // namespace dpm::lp
