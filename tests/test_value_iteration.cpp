// Tests for value iteration on the optimality equations (Eq. 12).
#include <gtest/gtest.h>

#include "cases/example_system.h"
#include "dpm/evaluation.h"
#include "dpm/value_iteration.h"

namespace dpm {
namespace {

using cases::ExampleSystem;

TEST(ValueIteration, ValidatesGamma) {
  const SystemModel m = ExampleSystem::make_model();
  EXPECT_THROW(value_iteration(m, metrics::power(m), 1.0), ModelError);
  EXPECT_THROW(value_iteration(m, metrics::power(m), 0.0), ModelError);
}

TEST(ValueIteration, Converges) {
  const SystemModel m = ExampleSystem::make_model();
  const ValueIterationResult r =
      value_iteration(m, metrics::power(m), 0.99);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_EQ(r.values.size(), m.num_states());
}

TEST(ValueIteration, SatisfiesOptimalityEquations) {
  // v*(s) = min_a [ m(s,a) + gamma sum_t P_a(s,t) v*(t) ]  (Eq. 12).
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.99;
  const StateActionMetric cost = metrics::queue_length(m);
  const ValueIterationResult r = value_iteration(m, cost, gamma);
  ASSERT_TRUE(r.converged);
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    double best = 1e300;
    for (std::size_t a = 0; a < m.num_commands(); ++a) {
      double q = cost(s, a);
      for (std::size_t t = 0; t < m.num_states(); ++t) {
        q += gamma * m.chain().transition(s, t, a) * r.values[t];
      }
      best = std::min(best, q);
    }
    EXPECT_NEAR(r.values[s], best, 1e-7) << "state " << s;
  }
}

TEST(ValueIteration, GreedyPolicyAchievesItsValues) {
  // Evaluating the returned deterministic policy exactly must give the
  // same discounted cost as the value function predicts.
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.99;
  const ValueIterationResult r =
      value_iteration(m, metrics::power(m), gamma);
  ASSERT_TRUE(r.converged);
  for (std::size_t s0 = 0; s0 < m.num_states(); ++s0) {
    linalg::Vector p0(m.num_states(), 0.0);
    p0[s0] = 1.0;
    const PolicyEvaluation ev(m, r.policy, gamma, p0);
    EXPECT_NEAR(ev.total(metrics::power(m)), r.values[s0], 1e-6)
        << "start state " << s0;
  }
}

TEST(ValueIteration, PolicyIsDeterministic) {
  const SystemModel m = ExampleSystem::make_model();
  const ValueIterationResult r =
      value_iteration(m, metrics::power(m), 0.95);
  EXPECT_TRUE(r.policy.is_deterministic());
}

TEST(ValueIteration, ZeroCostGivesZeroValues) {
  const SystemModel m = ExampleSystem::make_model();
  const ValueIterationResult r =
      value_iteration(m, metrics::constant(0.0), 0.9);
  ASSERT_TRUE(r.converged);
  for (const double v : r.values) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(ValueIteration, ConstantCostGivesGeometricSum) {
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.9;
  const ValueIterationResult r =
      value_iteration(m, metrics::constant(2.0), gamma);
  ASSERT_TRUE(r.converged);
  for (const double v : r.values) EXPECT_NEAR(v, 2.0 / (1.0 - gamma), 1e-7);
}

TEST(ValueIteration, IterationLimitReported) {
  const SystemModel m = ExampleSystem::make_model();
  ValueIterationOptions opt;
  opt.max_iterations = 2;
  const ValueIterationResult r =
      value_iteration(m, metrics::power(m), 0.999, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2u);
}

// Parameterized discount sweep: values grow like the horizon.
class ViDiscountTest : public ::testing::TestWithParam<double> {};

TEST_P(ViDiscountTest, ValuesScaleWithHorizon) {
  const double gamma = GetParam();
  const SystemModel m = ExampleSystem::make_model();
  const ValueIterationResult r =
      value_iteration(m, metrics::constant(1.0), gamma);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0], 1.0 / (1.0 - gamma), 1e-5 / (1.0 - gamma));
}

INSTANTIATE_TEST_SUITE_P(Discounts, ViDiscountTest,
                         ::testing::Values(0.5, 0.9, 0.99, 0.999));

}  // namespace
}  // namespace dpm
