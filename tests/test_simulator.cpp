// Tests for the simulation engine and the heuristic controllers.
#include <gtest/gtest.h>

#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "trace/generators.h"

namespace dpm::sim {
namespace {

using cases::ExampleSystem;

SimulationConfig long_run(std::uint64_t seed = 3) {
  SimulationConfig cfg;
  cfg.slices = 400000;
  cfg.warmup = 1000;
  cfg.seed = seed;
  return cfg;
}

TEST(RunningStats, WelfordMatchesDirect) {
  RunningStats st;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) st.add(x);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_NEAR(st.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(st.sem(), st.stddev() / 2.0, 1e-12);
}

TEST(Rng, Reproducible) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(5);
  std::size_t ones = 0;
  for (int i = 0; i < 20000; ++i) {
    ones += rng.categorical({1.0, 3.0}) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / 20000.0, 0.75, 0.02);
}

TEST(Rng, Validation) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(Simulator, MatchesExactEvaluationForMarkovPolicy) {
  // Monte Carlo long-run averages must agree with the closed-form
  // discounted averages as gamma -> 1 (ergodic chain).
  const SystemModel m = ExampleSystem::make_model();
  const Policy policy = cases::randomized_shutdown_policy(
      m, ExampleSystem::kCmdOff, ExampleSystem::kCmdOn, 0.4);
  const PolicyEvaluation exact(m, policy, 0.999999,
                               m.point_distribution({0, 0, 0}));

  Simulator sim(m);
  PolicyController ctl(m, policy);
  const SimulationResult r = sim.run(ctl, long_run());

  EXPECT_NEAR(r.avg_power, exact.per_step(metrics::power(m)), 0.02);
  EXPECT_NEAR(r.avg_queue_length,
              exact.per_step(metrics::queue_length(m)), 0.02);
  EXPECT_NEAR(r.loss_state_rate,
              exact.per_step(metrics::request_loss(m)), 0.02);
}

TEST(Simulator, VisitFrequenciesNormalized) {
  const SystemModel m = ExampleSystem::make_model();
  const Policy policy = cases::always_on_policy(m, ExampleSystem::kCmdOn);
  Simulator sim(m);
  PolicyController ctl(m, policy);
  SimulationConfig cfg;
  cfg.slices = 10000;
  const SimulationResult r = sim.run(ctl, cfg);
  EXPECT_NEAR(linalg::sum(r.visit_frequencies), 1.0, 1e-9);
  EXPECT_EQ(r.slices, 10000u);
  // metric() through the empirical distribution reproduces avg_power.
  EXPECT_NEAR(r.metric(metrics::power(m)), r.avg_power, 1e-9);
}

TEST(Simulator, WarmupValidation) {
  const SystemModel m = ExampleSystem::make_model();
  Simulator sim(m);
  PolicyController ctl(m, cases::always_on_policy(m, ExampleSystem::kCmdOn));
  SimulationConfig cfg;
  cfg.slices = 10;
  cfg.warmup = 10;
  EXPECT_THROW(sim.run(ctl, cfg), ModelError);
}

TEST(Simulator, SeedReproducibility) {
  const SystemModel m = ExampleSystem::make_model();
  Simulator sim(m);
  PolicyController c1(m, cases::eager_policy(m, ExampleSystem::kCmdOff,
                                             ExampleSystem::kCmdOn));
  SimulationConfig cfg;
  cfg.slices = 5000;
  cfg.seed = 99;
  const SimulationResult a = sim.run(c1, cfg);
  const SimulationResult b = sim.run(c1, cfg);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.serviced, b.serviced);
  EXPECT_DOUBLE_EQ(a.avg_power, b.avg_power);
}

TEST(Simulator, RequestAccountingBalances) {
  const SystemModel m = ExampleSystem::make_model();
  Simulator sim(m);
  PolicyController ctl(m, cases::eager_policy(m, ExampleSystem::kCmdOff,
                                              ExampleSystem::kCmdOn));
  SimulationConfig cfg;
  cfg.slices = 50000;
  const SimulationResult r = sim.run(ctl, cfg);
  // arrivals = serviced + lost + (still enqueued <= capacity).
  EXPECT_GE(r.arrivals, r.serviced + r.lost);
  EXPECT_LE(r.arrivals - r.serviced - r.lost, m.queue_capacity());
  EXPECT_GE(r.request_loss_rate, 0.0);
  EXPECT_LE(r.request_loss_rate, 1.0);
}

TEST(Simulator, TraceDrivenMatchesMarkovForGilbertStream) {
  // A Gilbert stream with the SR's own parameters is statistically the
  // same workload, so trace-driven results must agree with Markov-driven
  // ones.
  const SystemModel m = ExampleSystem::make_model();
  const Policy policy = cases::eager_policy(m, ExampleSystem::kCmdOff,
                                            ExampleSystem::kCmdOn);
  Simulator sim(m);

  PolicyController c1(m, policy);
  const SimulationResult markov = sim.run(c1, long_run(21));

  const std::vector<unsigned> stream =
      trace::gilbert_stream(400000, 0.05, 0.15, 77);
  PolicyController c2(m, policy);
  const SimulationResult traced = sim.run_trace(c2, stream, long_run(22));

  EXPECT_NEAR(markov.avg_power, traced.avg_power, 0.05);
  EXPECT_NEAR(markov.avg_queue_length, traced.avg_queue_length, 0.05);
}

TEST(Simulator, TraceShorterThanConfigTruncates) {
  const SystemModel m = ExampleSystem::make_model();
  Simulator sim(m);
  PolicyController ctl(m, cases::always_on_policy(m, ExampleSystem::kCmdOn));
  SimulationConfig cfg;
  cfg.slices = 1000000;
  const std::vector<unsigned> stream(500, 1u);
  const SimulationResult r = sim.run_trace(ctl, stream, cfg);
  EXPECT_EQ(r.slices, 500u);
}

// ---------------------------------------------------------------------
// Controllers
// ---------------------------------------------------------------------

TEST(Controllers, GreedySleepsWhenIdle) {
  GreedyController g(/*sleep=*/1, /*wake=*/0);
  Rng rng(1);
  EXPECT_EQ(g.decide({0, 0, 0}, 0, rng), 1u);
  EXPECT_EQ(g.decide({0, 0, 1}, 0, rng), 0u);  // queued work
  EXPECT_EQ(g.decide({0, 1, 0}, 1, rng), 0u);  // arrivals
}

TEST(Controllers, TimeoutWaitsBeforeSleeping) {
  TimeoutController t(/*timeout=*/3, /*sleep=*/1, /*wake=*/0);
  t.reset();
  Rng rng(1);
  const SystemState idle{0, 0, 0};
  EXPECT_EQ(t.decide(idle, 0, rng), 0u);  // idle run 1
  EXPECT_EQ(t.decide(idle, 0, rng), 0u);  // 2
  EXPECT_EQ(t.decide(idle, 0, rng), 0u);  // 3
  EXPECT_EQ(t.decide(idle, 0, rng), 1u);  // exceeded: sleep
  EXPECT_EQ(t.decide(idle, 1, rng), 0u);  // arrival resets
  EXPECT_EQ(t.decide(idle, 0, rng), 0u);  // counting again
}

TEST(Controllers, ZeroTimeoutIsEager) {
  TimeoutController t(0, 1, 0);
  t.reset();
  Rng rng(1);
  EXPECT_EQ(t.decide({0, 0, 0}, 0, rng), 1u);
}

TEST(Controllers, RandomizedTimeoutDrawsPerIdlePeriod) {
  RandomizedTimeoutController r(
      {{0, /*sleep=*/1, 1.0}}, /*wake=*/0);  // always timeout 0 -> eager
  r.reset();
  Rng rng(1);
  EXPECT_EQ(r.decide({0, 0, 0}, 0, rng), 1u);
  EXPECT_EQ(r.decide({0, 0, 0}, 1, rng), 0u);  // busy
}

TEST(Controllers, RandomizedTimeoutValidation) {
  EXPECT_THROW(RandomizedTimeoutController({}, 0), ModelError);
  EXPECT_THROW(RandomizedTimeoutController({{1, 1, -1.0}}, 0), ModelError);
}

TEST(Controllers, PolicyControllerShapeChecked) {
  const SystemModel m = ExampleSystem::make_model();
  EXPECT_THROW(PolicyController(m, Policy::constant(3, 2, 0)), ModelError);
}

TEST(Controllers, ConstantController) {
  ConstantController c(1);
  Rng rng(1);
  EXPECT_EQ(c.decide({0, 0, 0}, 0, rng), 1u);
}

TEST(Controllers, InvalidCommandCaught) {
  const SystemModel m = ExampleSystem::make_model();
  Simulator sim(m);
  ConstantController bad(7);
  SimulationConfig cfg;
  cfg.slices = 10;
  EXPECT_THROW(sim.run(bad, cfg), ModelError);
}

// Timeout sweep property: longer timeouts cannot increase queueing
// penalty (they keep the SP awake longer) and never decrease power, on
// the example system.
class TimeoutMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(TimeoutMonotonicityTest, PowerRisesQueueFallsWithTimeout) {
  const SystemModel m = ExampleSystem::make_model();
  Simulator sim(m);
  const int t1 = GetParam();
  const int t2 = t1 + 20;
  TimeoutController short_t(t1, ExampleSystem::kCmdOff, ExampleSystem::kCmdOn);
  TimeoutController long_t(t2, ExampleSystem::kCmdOff, ExampleSystem::kCmdOn);
  const SimulationResult rs = sim.run(short_t, long_run(100 + t1));
  const SimulationResult rl = sim.run(long_t, long_run(100 + t1));
  EXPECT_LE(rs.avg_power, rl.avg_power + 0.05);
  EXPECT_GE(rs.avg_queue_length, rl.avg_queue_length - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Timeouts, TimeoutMonotonicityTest,
                         ::testing::Values(0, 5, 15, 40));

}  // namespace
}  // namespace dpm::sim
