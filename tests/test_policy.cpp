// Tests for the Policy class (Defs. 3.5-3.7).
#include <gtest/gtest.h>

#include "dpm/policy.h"

namespace dpm {
namespace {

TEST(Policy, DeterministicConstruction) {
  const Policy p = Policy::deterministic({1, 0, 1}, 2);
  EXPECT_EQ(p.num_states(), 3u);
  EXPECT_EQ(p.num_commands(), 2u);
  EXPECT_DOUBLE_EQ(p.probability(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.probability(0, 0), 0.0);
  EXPECT_TRUE(p.is_deterministic());
  EXPECT_EQ(p.command_for(0), 1u);
  EXPECT_EQ(p.command_for(1), 0u);
}

TEST(Policy, DeterministicRejectsBadCommand) {
  EXPECT_THROW(Policy::deterministic({2}, 2), ModelError);
}

TEST(Policy, ConstantPolicy) {
  const Policy p = Policy::constant(4, 3, 2);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(p.command_for(s), 2u);
}

TEST(Policy, RandomizedConstruction) {
  linalg::Matrix d{{0.4, 0.6}, {1.0, 0.0}};
  const Policy p = Policy::randomized(d);
  EXPECT_FALSE(p.is_deterministic());
  EXPECT_DOUBLE_EQ(p.probability(0, 1), 0.6);
  EXPECT_EQ(p.command_for(0), 1u);  // argmax
}

TEST(Policy, RandomizedValidatesRows) {
  EXPECT_THROW(Policy::randomized(linalg::Matrix{{0.5, 0.4}}), ModelError);
  EXPECT_THROW(Policy::randomized(linalg::Matrix{{1.2, -0.2}}), ModelError);
}

TEST(Policy, NearDeterministicTolerance) {
  linalg::Matrix d{{1.0 - 1e-12, 1e-12}};
  const Policy p = Policy::randomized(d);
  EXPECT_TRUE(p.is_deterministic(1e-9));
  EXPECT_FALSE(p.is_deterministic(1e-15));
}

TEST(Policy, ToStringContainsCommandNames) {
  const CommandSet cs({"s_on", "s_off"});
  const Policy p = Policy::deterministic({0, 1}, 2);
  const std::string s = p.to_string(&cs);
  EXPECT_NE(s.find("s_on"), std::string::npos);
  EXPECT_NE(s.find("s_off"), std::string::npos);
  // Without a command set, generic headers appear.
  EXPECT_NE(p.to_string().find("a0"), std::string::npos);
}

TEST(Policy, MatrixAccessor) {
  const Policy p = Policy::deterministic({1}, 2);
  EXPECT_EQ(p.matrix().rows(), 1u);
  EXPECT_DOUBLE_EQ(p.matrix()(0, 1), 1.0);
}

}  // namespace
}  // namespace dpm
