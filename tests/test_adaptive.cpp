// Tests for the adaptive controller (paper future-work extension) and
// the determinization helper.
#include <gtest/gtest.h>

#include "cases/cpu_sa1100.h"
#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "sim/adaptive_controller.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/sr_extractor.h"

namespace dpm {
namespace {

using cases::CpuSa1100;
using cases::ExampleSystem;

sim::AdaptiveController::SrFitter default_fitter() {
  return [](const std::vector<unsigned>& window) {
    return trace::extract_sr(window, {.memory = 1, .smoothing = 1.0});
  };
}

sim::AdaptiveController make_cpu_adaptive(double penalty_bound,
                                          sim::AdaptiveController::Options o) {
  sim::AdaptiveController::ModelFactory factory =
      [](ServiceRequester sr) {
        ServiceProvider sp = CpuSa1100::make_provider();
        SpTransitionOverride ov = CpuSa1100::make_override(sp);
        return SystemModel::compose(std::move(sp), std::move(sr), 0,
                                    std::move(ov));
      };
  sim::AdaptiveController::OptimizeFn optimize =
      [penalty_bound](const SystemModel& m) -> std::optional<Policy> {
    OptimizerConfig cfg = CpuSa1100::make_config(m, 0.9999);
    const PolicyOptimizer opt(m, cfg);
    OptimizationResult r = opt.minimize(
        metrics::power(m),
        {{CpuSa1100::penalty(m), penalty_bound, "penalty"}});
    if (!r.feasible) return std::nullopt;
    return std::move(r.policy);
  };
  return sim::AdaptiveController(default_fitter(), std::move(factory),
                                 std::move(optimize), CpuSa1100::kRun, o);
}

TEST(Adaptive, Validation) {
  EXPECT_THROW(
      sim::AdaptiveController(nullptr, nullptr, nullptr, 0),
      ModelError);
  sim::AdaptiveController::Options bad;
  bad.window = 2;
  EXPECT_THROW(make_cpu_adaptive(0.02, bad), ModelError);
}

TEST(Adaptive, FallsBackBeforeWarmup) {
  sim::AdaptiveController::Options o;
  o.warmup = 1000;
  sim::AdaptiveController ctl = make_cpu_adaptive(0.02, o);
  ctl.reset();
  sim::Rng rng(1);
  // Until warmup observations accumulate, the fallback (run) is issued.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ctl.decide({CpuSa1100::kActive, 0, 0}, 0, rng),
              CpuSa1100::kRun);
  }
  EXPECT_EQ(ctl.refit_count(), 0u);
}

TEST(Adaptive, RefitsOnSchedule) {
  const SystemModel m = CpuSa1100::make_model();
  sim::AdaptiveController::Options o;
  o.warmup = 500;
  o.window = 4000;
  o.reoptimize_every = 1000;
  sim::AdaptiveController ctl = make_cpu_adaptive(0.05, o);
  sim::Simulator simulator(m);
  sim::SimulationConfig cfg;
  cfg.slices = 10000;
  cfg.initial_state = {CpuSa1100::kActive, 0, 0};
  simulator.run(ctl, cfg);
  EXPECT_GE(ctl.refit_count(), 5u);
}

TEST(Adaptive, KeepsConstraintInEveryRegime) {
  // The value of adaptation on the Fig. 10 editing+compilation mixture
  // is *per-regime constraint compliance*: the stationary-fit optimum
  // violates its penalty bound during the editing regime (the fit is
  // dominated by the compilation half), whereas the adaptive controller
  // re-fits and stays within spec in both regimes.
  const double bound = 0.01;
  const std::vector<unsigned> edit = trace::editing_stream(120000, 5);
  const std::vector<unsigned> comp = trace::compilation_stream(120000, 6);
  const std::vector<unsigned> mix = trace::concat_streams(edit, comp);
  const SystemModel m = CpuSa1100::make_model_from_stream(mix);

  const PolicyOptimizer opt(m, CpuSa1100::make_config(m, 0.9999));
  const StateActionMetric pen = CpuSa1100::penalty(m);
  const OptimizationResult st =
      opt.minimize(metrics::power(m), {{pen, bound, "penalty"}});
  ASSERT_TRUE(st.feasible);

  sim::Simulator simulator(m);
  const auto run_on = [&](sim::Controller& c,
                          const std::vector<unsigned>& t) {
    sim::SimulationConfig cfg;
    cfg.slices = t.size();
    cfg.initial_state = {CpuSa1100::kActive, 0, 0};
    return simulator.run_trace(c, t, cfg);
  };

  sim::PolicyController static_ctl(m, *st.policy);
  const sim::SimulationResult static_edit = run_on(static_ctl, edit);
  // Model mismatch: the bound is violated on the editing regime.
  EXPECT_GT(static_edit.metric(pen), bound * 1.1);

  sim::AdaptiveController::Options o;
  o.warmup = 2000;
  o.window = 15000;
  o.reoptimize_every = 4000;
  sim::AdaptiveController a_edit = make_cpu_adaptive(bound, o);
  const sim::SimulationResult adaptive_edit = run_on(a_edit, edit);
  sim::AdaptiveController a_comp = make_cpu_adaptive(bound, o);
  const sim::SimulationResult adaptive_comp = run_on(a_comp, comp);

  EXPECT_GT(a_edit.refit_count(), 10u);
  // The adaptive controller keeps the penalty within spec (small slack
  // for the warmup and Monte Carlo noise) in BOTH regimes.
  EXPECT_LE(adaptive_edit.metric(pen), bound * 1.05);
  EXPECT_LE(adaptive_comp.metric(pen), bound * 1.05);
}

TEST(Determinize, RoundsToArgmax) {
  linalg::Matrix d{{0.4, 0.6}, {0.9, 0.1}};
  const Policy rounded = cases::determinize(Policy::randomized(d));
  EXPECT_TRUE(rounded.is_deterministic());
  EXPECT_EQ(rounded.command_for(0), 1u);
  EXPECT_EQ(rounded.command_for(1), 0u);
}

TEST(Determinize, CostOfDeterminizationUnderActiveConstraint) {
  // Theorem A.2 ablation: with an active constraint the optimum is
  // randomized; its argmax rounding must either violate the constraint
  // or cost at least as much power.
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, ExampleSystem::make_config(m, gamma));
  const OptimizationResult r = opt.minimize_power(0.4);
  ASSERT_TRUE(r.feasible);
  ASSERT_FALSE(r.policy->is_deterministic(1e-6));

  const Policy rounded = cases::determinize(*r.policy);
  const PolicyEvaluation ev(m, rounded, gamma,
                            opt.config().initial_distribution);
  const double rounded_queue = ev.per_step(metrics::queue_length(m));
  const double rounded_power = ev.per_step(metrics::power(m));
  const bool violates = rounded_queue > 0.4 + 1e-9;
  const bool costs_more = rounded_power >= r.objective_per_step - 1e-9;
  EXPECT_TRUE(violates || costs_more);
}

}  // namespace
}  // namespace dpm
