// Fault-matrix suite for the robustness subsystem (src/robust/):
//
//  * FaultPlan derivation is deterministic and window-bounded; the CLI
//    spec parser round-trips every probe site name;
//  * probes fire exactly on the planned ordinals, consume their budget,
//    and FaultScope nesting saves/restores the enclosing plan;
//  * the SolveSupervisor fault matrix: under every single-fault plan the
//    supervised solve returns either a bitwise-correct determination or
//    a typed SolveFailure — never an escaping exception — and recovered
//    solves match the fault-free objective, vertex, and iteration count
//    exactly (the kRetryRefactorize rung replays the identical pivot
//    trajectory once the single-shot fault is consumed);
//  * the scenario result cache's crash-safe flush: atomic rename leaves
//    no temp file, a stale temp file from a simulated crash is ignored,
//    and a poisoned line (kCacheLine injection) is dropped on load and
//    turns into a recompute instead of a wrong replay;
//  * the ExperimentRunner converts injected faults into structured
//    UnitFailure records (recovered via bounded retry, byte-identical
//    records) and keeps --jobs invariance under injection;
//  * the serving tier (src/serve/): a kDeadline fault inside a dpmd
//    worker degrades to a typed {"status":"failed"} response and the
//    worker's next answer is byte-identical to an uninjected run; a
//    kCacheLine-poisoned response cache recomputes instead of
//    replaying garbage.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "lp/solver.h"
#include "robust/fault_injection.h"
#include "robust/outcome.h"
#include "robust/probe.h"
#include "robust/supervisor.h"
#include "scenario/cache.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "serve/engine.h"
#include "serve/fleet.h"
#include "serve/protocol.h"

namespace dpm {
namespace {

using robust::FaultPlan;
using robust::FaultScope;
using robust::FaultSite;
using robust::FaultSpec;
using robust::RecoveryRung;
using robust::SolveOutcome;
using robust::SolveSupervisor;
using robust::SupervisorOptions;

// Deterministic feasible bounded LP, big enough that one solve crosses
// every simplex probe site (refactorize, ftran, btran, FT updates):
// minimize sum c_j x_j over A x <= b (A >= 0, interior point strictly
// feasible) plus a >= floor row that bounds the optimum away from zero.
lp::LpProblem probe_rich_problem() {
  constexpr int n = 14;
  constexpr int m = 10;
  lp::LpProblem p;
  // Fixed pseudo-random data via a tiny LCG: no <random> needed and the
  // instance is identical on every platform.
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  const auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return 0.1 + 1.9 * static_cast<double>(s >> 11) /
                     static_cast<double>(1ull << 53);
  };
  for (int j = 0; j < n; ++j) p.add_variable(next());
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) x0[j] = next();
  for (int i = 0; i < m; ++i) {
    lp::Constraint c;
    double rhs = 0.1;
    for (int j = 0; j < n; ++j) {
      const double a = next();
      c.terms.emplace_back(j, a);
      rhs += a * x0[j];
    }
    c.sense = lp::Sense::kLe;
    c.rhs = rhs;
    p.add_constraint(std::move(c));
  }
  lp::Constraint floor_row;
  double total = 0.0;
  for (int j = 0; j < n; ++j) {
    floor_row.terms.emplace_back(j, 1.0);
    total += x0[j];
  }
  floor_row.sense = lp::Sense::kGe;
  floor_row.rhs = 0.5 * total;
  p.add_constraint(std::move(floor_row));
  return p;
}

// Bitwise solution equality: status, objective, iteration count, and
// every primal coordinate must match exactly — recovery is only real
// if the recovered answer is indistinguishable from the fault-free one.
void expect_bitwise_equal(const lp::LpSolution& got,
                          const lp::LpSolution& want, const char* site) {
  EXPECT_EQ(got.status, want.status) << site;
  EXPECT_EQ(got.objective, want.objective) << site;
  EXPECT_EQ(got.iterations, want.iterations) << site;
  ASSERT_EQ(got.x.size(), want.x.size()) << site;
  for (std::size_t j = 0; j < got.x.size(); ++j) {
    EXPECT_EQ(got.x[j], want.x[j]) << site << " x[" << j << "]";
  }
}

TEST(FaultPlanDerive, DeterministicAndWindowBounded) {
  const FaultPlan a =
      FaultPlan::derive(FaultSite::kFtranSpike, "fig08_disk", 3, 16, 2);
  const FaultPlan b =
      FaultPlan::derive(FaultSite::kFtranSpike, "fig08_disk", 3, 16, 2);
  EXPECT_EQ(a.fire_at, b.fire_at);  // pure function of (site, scope, index)
  EXPECT_EQ(a.count, 2u);
  EXPECT_GE(a.fire_at, 1u);
  EXPECT_LE(a.fire_at, 16u);

  // Window 0 / 1 pin the fault to the very first probe.
  EXPECT_EQ(FaultPlan::derive(FaultSite::kLuFactorize, "x", 0, 0).fire_at, 1u);
  EXPECT_EQ(FaultPlan::derive(FaultSite::kLuFactorize, "x", 0, 1).fire_at, 1u);

  // The derived ordinals actually spread over the window (they are a
  // seeded hash, not a constant).
  std::set<std::uint64_t> seen;
  for (std::uint64_t u = 0; u < 64; ++u) {
    const FaultPlan p =
        FaultPlan::derive(FaultSite::kBtranSpike, "spread", u, 1024);
    EXPECT_GE(p.fire_at, 1u);
    EXPECT_LE(p.fire_at, 1024u);
    seen.insert(p.fire_at);
  }
  EXPECT_GT(seen.size(), 8u);
}

TEST(FaultSpecParse, RoundTripsEverySiteAndRejectsJunk) {
  for (std::size_t i = 0; i < robust::kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const char* name = robust::to_string(site);
    ASSERT_NE(name, nullptr) << i;
    const auto spec = robust::parse_fault_spec(name);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_EQ(spec->site, site) << name;
    EXPECT_EQ(spec->window, 16u) << name;  // documented default
    EXPECT_EQ(spec->count, 1u) << name;
  }
  const auto full = robust::parse_fault_spec("ft-update:4:3");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->site, FaultSite::kFtUpdate);
  EXPECT_EQ(full->window, 4u);
  EXPECT_EQ(full->count, 3u);

  EXPECT_FALSE(robust::parse_fault_spec("no-such-site").has_value());
  EXPECT_FALSE(robust::parse_fault_spec("ftran:abc").has_value());
  EXPECT_FALSE(robust::parse_fault_spec("ftran:1:xyz").has_value());
  EXPECT_FALSE(robust::parse_fault_spec("").has_value());
}

TEST(Probe, FiresOnPlannedOrdinalsAndConsumesBudget) {
  // No scope armed anywhere: probes are inert.
  EXPECT_FALSE(robust::probe(FaultSite::kLuFactorize));

  FaultPlan plan;
  plan.site = FaultSite::kLuFactorize;
  plan.fire_at = 2;
  plan.count = 2;
  FaultScope scope(plan);
  EXPECT_FALSE(robust::probe(FaultSite::kLuFactorize));  // ordinal 1
  EXPECT_TRUE(robust::probe(FaultSite::kLuFactorize));   // 2: fires
  EXPECT_TRUE(robust::probe(FaultSite::kLuFactorize));   // 3: storm
  EXPECT_FALSE(robust::probe(FaultSite::kLuFactorize));  // 4: spent
  EXPECT_EQ(scope.hits(), 4u);
  EXPECT_EQ(scope.fired(), 2u);
  // Other sites never fire off this plan.
  EXPECT_FALSE(robust::probe(FaultSite::kFtUpdate));
}

TEST(Probe, ScopesNestAndRestoreTheEnclosingPlan) {
  FaultPlan outer;
  outer.site = FaultSite::kFtranSpike;
  outer.fire_at = 3;
  FaultScope outer_scope(outer);
  EXPECT_FALSE(robust::probe(FaultSite::kFtranSpike));  // 1
  EXPECT_FALSE(robust::probe(FaultSite::kFtranSpike));  // 2
  {
    FaultPlan inner;
    inner.site = FaultSite::kFtranSpike;
    inner.fire_at = 1;
    FaultScope inner_scope(inner);
    EXPECT_TRUE(robust::probe(FaultSite::kFtranSpike));  // inner fires fresh
    EXPECT_EQ(inner_scope.fired(), 1u);
  }
  // The outer scope's counters survived the nested scope: its third
  // ordinal is next and fires.
  EXPECT_EQ(outer_scope.hits(), 2u);
  EXPECT_TRUE(robust::probe(FaultSite::kFtranSpike));
  EXPECT_EQ(outer_scope.fired(), 1u);
}

TEST(Probe, DeadlineFaultTripsTheCooperativeDeadline) {
  EXPECT_FALSE(robust::deadline_expired());  // nothing armed
  FaultPlan plan;
  plan.site = FaultSite::kDeadline;
  plan.fire_at = 1;
  FaultScope scope(plan);
  EXPECT_TRUE(robust::deadline_expired());   // injected expiry
  EXPECT_FALSE(robust::deadline_expired());  // single shot: consumed
}

// The tentpole acceptance test: every simplex-path fault site, injected
// at each of the first few probe ordinals, must end in a determination
// whose bytes match the fault-free solve.  The supervisor's
// kRetryRefactorize rung replays the identical configuration, so a
// consumed single-shot fault recovers pivot-for-pivot.
TEST(SupervisorFaultMatrix, SimplexSitesRecoverBitwise) {
  const lp::LpProblem problem = probe_rich_problem();
  const SolveSupervisor supervisor;
  const SolveOutcome clean = supervisor.solve(problem);
  ASSERT_TRUE(clean.determined());
  ASSERT_EQ(clean.solution.status, lp::LpStatus::kOptimal);
  ASSERT_EQ(clean.steps.size(), 1u);

  const FaultSite sites[] = {FaultSite::kLuFactorize, FaultSite::kFtUpdate,
                             FaultSite::kFtranSpike, FaultSite::kBtranSpike};
  for (const FaultSite site : sites) {
    for (std::uint64_t fire_at = 1; fire_at <= 4; ++fire_at) {
      FaultPlan plan;
      plan.site = site;
      plan.fire_at = fire_at;
      FaultScope scope(plan);
      const SolveOutcome out = supervisor.solve(problem);
      const char* name = robust::to_string(site);
      ASSERT_TRUE(out.determined())
          << name << " fire_at=" << fire_at << " reason="
          << (out.failure ? robust::to_string(out.failure->reason) : "none");
      expect_bitwise_equal(out.solution, clean.solution, name);
      if (scope.fired() > 0) {
        // The fault actually fired, so the answer came from a recovery
        // rung; the attempt history shows the typed first failure.
        EXPECT_TRUE(out.recovered()) << name << " fire_at=" << fire_at;
        ASSERT_GE(out.steps.size(), 2u);
        EXPECT_EQ(out.steps[0].status, lp::LpStatus::kNumericalFailure);
        EXPECT_EQ(out.steps[1].rung, RecoveryRung::kRetryRefactorize);
      }
    }
  }
}

TEST(SupervisorFaultMatrix, CorruptedWarmBasisRecoversBitwise) {
  const lp::LpProblem problem = probe_rich_problem();
  const SolveSupervisor supervisor;
  lp::SimplexBasis basis;
  ASSERT_TRUE(supervisor.solve(problem, nullptr, &basis).determined());
  ASSERT_FALSE(basis.basic.empty());

  const SolveOutcome clean = supervisor.solve(problem, &basis);
  ASSERT_TRUE(clean.determined());

  FaultPlan plan;
  plan.site = FaultSite::kWarmBasis;
  plan.fire_at = 1;
  FaultScope scope(plan);
  const SolveOutcome out = supervisor.solve(problem, &basis);
  ASSERT_TRUE(out.determined());
  expect_bitwise_equal(out.solution, clean.solution, "warm-basis");
  ASSERT_EQ(scope.fired(), 1u);
  EXPECT_TRUE(out.recovered());
  EXPECT_EQ(out.steps[0].status, lp::LpStatus::kNumericalFailure);
}

// IPM Cholesky breakdown becomes a simplex-style recovery, not an
// escaping exception: the retry rung replays the interior point clean
// (the single-shot fault is consumed) and matches the fault-free IPM
// answer bitwise.
TEST(SupervisorFaultMatrix, CholeskyBreakdownRecoversOntoTheLadder) {
  const lp::LpProblem problem = probe_rich_problem();
  SupervisorOptions options;
  options.backend = lp::Backend::kInteriorPoint;
  const SolveSupervisor supervisor(options);
  const SolveOutcome clean = supervisor.solve(problem);
  ASSERT_TRUE(clean.determined());

  FaultPlan plan;
  plan.site = FaultSite::kCholesky;
  plan.fire_at = 1;
  FaultScope scope(plan);
  const SolveOutcome out = supervisor.solve(problem);
  ASSERT_TRUE(out.determined());
  expect_bitwise_equal(out.solution, clean.solution, "cholesky");
  ASSERT_EQ(scope.fired(), 1u);
  EXPECT_TRUE(out.recovered());
  ASSERT_GE(out.steps.size(), 2u);
  EXPECT_EQ(out.steps[0].status, lp::LpStatus::kNumericalFailure);
}

// An expired deadline is a hard stop: retrying inside the same deadline
// cannot help, so the ladder reports a typed failure immediately
// instead of burning the remaining budget on doomed rungs.
TEST(SupervisorFaultMatrix, DeadlineExpiryIsATypedHardStop) {
  const lp::LpProblem problem = probe_rich_problem();
  const SolveSupervisor supervisor;
  FaultPlan plan;
  plan.site = FaultSite::kDeadline;
  plan.fire_at = 1;
  FaultScope scope(plan);
  const SolveOutcome out = supervisor.solve(problem);
  EXPECT_FALSE(out.determined());
  ASSERT_TRUE(out.failure.has_value());
  EXPECT_EQ(out.failure->reason, robust::FailureReason::kDeadlineExpired);
  EXPECT_EQ(out.steps.size(), 1u);  // no escalation past the hard stop
  EXPECT_EQ(out.solution.status, lp::LpStatus::kDeadline);
}

// A malformed model is typed kBadModel and never retried — escalation
// cannot heal bad input, and the caller gets the validation message.
TEST(SupervisorFaultMatrix, BadModelIsTypedAndNotRetried) {
  const lp::LpProblem empty;  // "problem has no variables" at solve time
  const SolveSupervisor supervisor;
  const SolveOutcome out = supervisor.solve(empty);
  EXPECT_FALSE(out.determined());
  ASSERT_TRUE(out.failure.has_value());
  EXPECT_EQ(out.failure->reason, robust::FailureReason::kBadModel);
  EXPECT_EQ(out.steps.size(), 1u);
  EXPECT_TRUE(out.steps[0].threw);
}

// ---------------------------------------------------------------------
// Crash-safe result cache.

class TempCacheDir {
 public:
  TempCacheDir() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("dpm_fault_cache_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  ~TempCacheDir() { std::filesystem::remove_all(dir_); }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

scenario::UnitOutput small_output() {
  scenario::UnitOutput out;
  out.lines.push_back("row one");
  out.values.emplace_back("objective", 42.5);
  return out;
}

TEST(CrashSafeCache, AtomicRenameFlushLeavesNoTempFile) {
  TempCacheDir tmp;
  scenario::ResultCache cache(tmp.path());
  cache.store(0xABCDEFull, "sc", "unit", small_output());
  ASSERT_TRUE(cache.flush());
  EXPECT_TRUE(std::filesystem::exists(cache.path()));
  EXPECT_FALSE(std::filesystem::exists(cache.path() + ".tmp"));

  scenario::ResultCache reload(tmp.path());
  reload.load();
  scenario::UnitOutput got;
  EXPECT_TRUE(reload.lookup(0xABCDEFull, got));
  EXPECT_EQ(got.lines, small_output().lines);
  EXPECT_EQ(reload.stats().rejected, 0u);
}

// A crash mid-flush leaves `<file>.tmp` behind and the previous store
// intact.  The loader must read the intact store and the next flush
// must replace the stale temp file.
TEST(CrashSafeCache, StaleTempFileFromACrashIsIgnored) {
  TempCacheDir tmp;
  {
    scenario::ResultCache cache(tmp.path());
    cache.store(1ull, "sc", "unit", small_output());
    ASSERT_TRUE(cache.flush());
  }
  {  // simulate a crash that died mid-write of the temp file
    std::ofstream half(std::filesystem::path(tmp.path()) / "cache.jsonl.tmp");
    half << "{\"truncated";
  }
  scenario::ResultCache cache(tmp.path());
  cache.load();
  scenario::UnitOutput got;
  EXPECT_TRUE(cache.lookup(1ull, got));  // intact store, not the wreck
  cache.store(2ull, "sc", "unit2", small_output());
  ASSERT_TRUE(cache.flush());
  EXPECT_FALSE(std::filesystem::exists(cache.path() + ".tmp"));
}

// kCacheLine injection poisons one byte of the serialized store on
// flush; the self-checksummed lines turn that into a dropped entry and
// a recompute, never a wrong replay.
TEST(CrashSafeCache, PoisonedLineIsDroppedOnLoad) {
  TempCacheDir tmp;
  {
    scenario::ResultCache cache(tmp.path());
    cache.store(99ull, "sc", "unit", small_output());
    FaultPlan plan;
    plan.site = FaultSite::kCacheLine;
    plan.fire_at = 1;
    FaultScope scope(plan);
    ASSERT_TRUE(cache.flush());
    EXPECT_EQ(scope.fired(), 1u);
  }
  scenario::ResultCache reload(tmp.path());
  reload.load();
  EXPECT_GE(reload.stats().rejected, 1u);
  scenario::UnitOutput got;
  EXPECT_FALSE(reload.lookup(99ull, got));  // poisoned -> miss -> recompute
}

// ---------------------------------------------------------------------
// ExperimentRunner: structured unit failures and retry recovery.

scenario::RunnerOptions quiet_smoke(std::size_t jobs) {
  scenario::RunnerOptions opts;
  opts.jobs = jobs;
  opts.smoke = true;
  opts.print = false;
  opts.write_json = false;
  return opts;
}

void expect_same_records(const scenario::ScenarioRunResult& got,
                         const scenario::ScenarioRunResult& want) {
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    EXPECT_EQ(got.records[i].name, want.records[i].name);
    EXPECT_EQ(got.records[i].iterations, want.records[i].iterations);
    EXPECT_EQ(got.records[i].objective, want.records[i].objective)
        << got.records[i].name;
  }
  EXPECT_EQ(got.values, want.values);
}

// A deadline fault is unrecoverable inside one attempt (the supervisor
// hard-stops on it), so it exercises the runner's bounded retry: the
// fault scope is armed once OUTSIDE the attempt loop, the consumed
// fault stays consumed, and the retry reproduces the fault-free records
// byte-for-byte — with a structured UnitFailure{recovered=true} record.
TEST(RunnerFaults, RetryRecoversAnInjectedDeadlineByteIdentically) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("example_a2");
  ASSERT_NE(sc, nullptr);
  const scenario::ScenarioRunResult clean =
      scenario::ExperimentRunner(quiet_smoke(1)).run_one(*sc);
  ASSERT_TRUE(clean.failures.empty());

  scenario::RunnerOptions opts = quiet_smoke(1);
  opts.fault = FaultSpec{FaultSite::kDeadline, /*window=*/1, /*count=*/1};
  opts.unit_retries = 2;
  const std::uint64_t fired_before = robust::faults_fired();
  const scenario::ScenarioRunResult out =
      scenario::ExperimentRunner(opts).run_one(*sc);

  EXPECT_TRUE(out.failures.empty());  // every unit ended clean
  expect_same_records(out, clean);
  if (robust::faults_fired() > fired_before) {
    ASSERT_FALSE(out.unit_failures.empty());
    for (const scenario::UnitFailure& uf : out.unit_failures) {
      EXPECT_TRUE(uf.recovered) << uf.unit;
      EXPECT_GE(uf.attempts, 2u) << uf.unit;
      EXPECT_FALSE(uf.detail.empty()) << uf.unit;
    }
  }
}

// --jobs N must reproduce --jobs 1 even under injection: plans are
// derived from the unit's identity, never from the worker thread.
TEST(RunnerFaults, JobsInvariantUnderInjection) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("fig09b_cpu");
  ASSERT_NE(sc, nullptr);
  scenario::RunnerOptions serial = quiet_smoke(1);
  serial.fault = FaultSpec{FaultSite::kFtranSpike, /*window=*/4, /*count=*/1};
  serial.unit_retries = 2;
  scenario::RunnerOptions parallel = serial;
  parallel.jobs = 4;
  const scenario::ScenarioRunResult a =
      scenario::ExperimentRunner(serial).run_one(*sc);
  const scenario::ScenarioRunResult b =
      scenario::ExperimentRunner(parallel).run_one(*sc);
  EXPECT_EQ(a.failures, b.failures);
  expect_same_records(a, b);
  ASSERT_EQ(a.unit_failures.size(), b.unit_failures.size());
  for (std::size_t i = 0; i < a.unit_failures.size(); ++i) {
    EXPECT_EQ(a.unit_failures[i].unit, b.unit_failures[i].unit);
    EXPECT_EQ(a.unit_failures[i].attempts, b.unit_failures[i].attempts);
    EXPECT_EQ(a.unit_failures[i].recovered, b.unit_failures[i].recovered);
  }
}

// An impossible per-unit wall-clock deadline with no retries must yield
// structured failures — a report, never a crashed pool.
TEST(RunnerFaults, ExpiredDeadlineYieldsStructuredUnitFailures) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("example_a2");
  ASSERT_NE(sc, nullptr);
  scenario::RunnerOptions opts = quiet_smoke(1);
  opts.unit_deadline_ms = 1e-6;  // expires at the first cooperative poll
  const scenario::ScenarioRunResult out =
      scenario::ExperimentRunner(opts).run_one(*sc);
  ASSERT_FALSE(out.unit_failures.empty());
  for (const scenario::UnitFailure& uf : out.unit_failures) {
    EXPECT_FALSE(uf.recovered) << uf.unit;
    EXPECT_EQ(uf.attempts, 1u) << uf.unit;
    EXPECT_NE(uf.detail.find("deadline"), std::string::npos) << uf.detail;
  }
}


// ---------------------------------------------------------------------
// Serving tier: faults fired inside a dpmd worker (ISSUE PR 9).

// One feasible fleet optimize request (variant 0, capacity 2, queue
// bound 0.45 — comfortably above the ~0.28 achievable minimum).
std::string fleet_optimize_line() {
  serve::Request r;
  r.id = "f0";
  r.op = serve::Op::kOptimize;
  r.model = serve::fleet_model_spec(0, /*queue_capacity=*/2);
  r.discount = 0.999;
  r.objective = "power";
  serve::ConstraintSpec queue;
  queue.metric = "queue_length";
  queue.bound = 0.45;
  r.constraints.push_back(queue);
  r.want_policy = true;
  return serve::format_request(r);
}

// A kDeadline fault fired inside a serve worker is a hard stop for that
// one request: the response is a typed "failed" body (never cached),
// the engine survives, and its next answer for the same line is
// byte-identical to an engine that never saw the fault.
TEST(ServeFaults, InjectedDeadlineIsATypedResponseAndTheWorkerSurvives) {
  const std::string line = fleet_optimize_line();
  serve::PolicyEngine clean{serve::EngineOptions{}};
  const std::string want = clean.handle_line(line);
  ASSERT_NE(want.find("\"status\":\"ok\""), std::string::npos) << want;

  serve::PolicyEngine engine{serve::EngineOptions{}};
  {
    FaultPlan plan;
    plan.site = FaultSite::kDeadline;
    plan.fire_at = 1;
    FaultScope scope(plan);
    const std::string failed = engine.handle_line(line);
    EXPECT_NE(failed.find("\"status\":\"failed\""), std::string::npos)
        << failed;
    EXPECT_NE(failed.find("deadline-expired"), std::string::npos) << failed;
    EXPECT_GE(scope.fired(), 1u);
  }
  EXPECT_EQ(engine.counters().failures, 1u);
  EXPECT_EQ(engine.counters().cold_solves, 0u);

  // Retry on the surviving engine: the failure was not cached, the
  // session basis was not corrupted, and the recomputed response is
  // indistinguishable from the uninjected engine's.
  EXPECT_EQ(engine.handle_line(line), want);
  EXPECT_EQ(engine.counters().failures, 1u);
  EXPECT_EQ(engine.counters().cold_solves, 1u);
}

// kCacheLine poisons the serialized response store on flush; on the
// next boot the checksummed loader drops the poisoned entry and the
// engine recomputes the response — byte-identical, never a wrong
// replay.
TEST(ServeFaults, PoisonedResponseCacheRecomputesByteIdentically) {
  TempCacheDir tmp;
  const std::string line = fleet_optimize_line();
  std::string first;
  {
    serve::EngineOptions opts;
    opts.cache_dir = tmp.path();
    serve::PolicyEngine engine(opts);
    first = engine.handle_line(line);
    ASSERT_NE(first.find("\"status\":\"ok\""), std::string::npos) << first;

    FaultPlan plan;
    plan.site = FaultSite::kCacheLine;
    plan.fire_at = 1;
    FaultScope scope(plan);
    ASSERT_TRUE(engine.flush_cache());
    EXPECT_EQ(scope.fired(), 1u);
  }

  serve::EngineOptions opts;
  opts.cache_dir = tmp.path();
  serve::PolicyEngine reload(opts);
  EXPECT_GE(reload.cache_stats().rejected, 1u);
  const std::string again = reload.handle_line(line);
  EXPECT_EQ(again, first);
  EXPECT_EQ(reload.counters().exact_hits, 0u);  // recomputed, not replayed
  EXPECT_EQ(reload.counters().cold_solves, 1u);
}

}  // namespace
}  // namespace dpm
