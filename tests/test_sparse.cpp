// Unit tests for the CSC sparse matrix and the LU basis factorization
// behind the revised simplex.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/lu.h"
#include "linalg/sparse.h"
#include "linalg/sparse_lu.h"

namespace dpm::linalg {
namespace {

TEST(SparseCsc, EmptyByDefault) {
  SparseMatrixCsc m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.nonzeros(), 0u);
}

TEST(SparseCsc, TripletRoundTrip) {
  const SparseMatrixCsc m = SparseMatrixCsc::from_triplets(
      3, 4, {{0, 0, 1.0}, {2, 0, -2.0}, {1, 2, 3.0}, {2, 3, 4.0}});
  EXPECT_EQ(m.nonzeros(), 4u);
  EXPECT_EQ(m.coeff(0, 0), 1.0);
  EXPECT_EQ(m.coeff(2, 0), -2.0);
  EXPECT_EQ(m.coeff(1, 2), 3.0);
  EXPECT_EQ(m.coeff(2, 3), 4.0);
  EXPECT_EQ(m.coeff(0, 1), 0.0);
  const Matrix d = m.to_dense();
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.cols(), 4u);
  EXPECT_EQ(d(2, 0), -2.0);
  EXPECT_EQ(d(1, 1), 0.0);
}

TEST(SparseCsc, DuplicatesSummedAndZerosDropped) {
  const SparseMatrixCsc m = SparseMatrixCsc::from_triplets(
      2, 2, {{0, 0, 1.5}, {0, 0, 0.5}, {1, 1, 1.0}, {1, 1, -1.0}});
  EXPECT_EQ(m.coeff(0, 0), 2.0);
  EXPECT_EQ(m.coeff(1, 1), 0.0);
  EXPECT_EQ(m.nonzeros(), 1u);  // the cancelled entry leaves the pattern
}

TEST(SparseCsc, RowsSortedWithinColumns) {
  const SparseMatrixCsc m = SparseMatrixCsc::from_triplets(
      4, 1, {{3, 0, 3.0}, {0, 0, 1.0}, {2, 0, 2.0}});
  ASSERT_EQ(m.nonzeros(), 3u);
  EXPECT_EQ(m.row_indices()[0], 0u);
  EXPECT_EQ(m.row_indices()[1], 2u);
  EXPECT_EQ(m.row_indices()[2], 3u);
}

TEST(SparseCsc, RejectsOutOfRange) {
  EXPECT_THROW(SparseMatrixCsc::from_triplets(2, 2, {{2, 0, 1.0}}),
               LinalgError);
  EXPECT_THROW(SparseMatrixCsc::from_triplets(2, 2, {{0, 2, 1.0}}),
               LinalgError);
}

TEST(SparseCsc, MultiplyMatchesDense) {
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, 9);
  std::vector<Triplet> trips;
  for (int k = 0; k < 30; ++k) trips.push_back({pick(gen), pick(gen), u(gen)});
  const SparseMatrixCsc s = SparseMatrixCsc::from_triplets(10, 10, trips);
  const Matrix d = s.to_dense();
  Vector x(10);
  for (auto& v : x) v = u(gen);
  const Vector y1 = s.multiply(x);
  const Vector y2 = d * x;
  const Vector z1 = s.multiply_transposed(x);
  const Vector z2 = left_multiply(x, d);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-12);
    EXPECT_NEAR(z1[i], z2[i], 1e-12);
  }
  EXPECT_THROW(s.multiply(Vector(3)), LinalgError);
  EXPECT_THROW(s.multiply_transposed(Vector(3)), LinalgError);
}

// ---------------------------------------------------------------------
// SparseLu
// ---------------------------------------------------------------------

std::vector<SparseColumn> columns_of(const Matrix& a) {
  std::vector<SparseColumn> cols(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (a(i, j) != 0.0) cols[j].emplace_back(i, a(i, j));
    }
  }
  return cols;
}

TEST(SparseLuTest, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(2, columns_of(a)));
  Vector x{3.0, 5.0};  // rhs
  lu.ftran(x);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(SparseLuTest, PivotsOnZeroDiagonal) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(2, columns_of(a)));
  Vector x{2.0, 3.0};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLuTest, DetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  SparseLu lu;
  EXPECT_FALSE(lu.factorize(2, columns_of(a)));
  EXPECT_FALSE(lu.valid());
}

TEST(SparseLuTest, BtranMatchesDenseTransposedSolve) {
  const Matrix a{{3.0, 1.0, 2.0}, {1.0, 4.0, 0.0}, {2.0, 0.0, 5.0}};
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(3, columns_of(a)));
  Vector c{1.0, 2.0, 3.0};
  lu.btran(c);
  const Vector want = LuDecomposition(a.transposed()).solve({1.0, 2.0, 3.0});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(c[i], want[i], 1e-12);
}

// Random sparse systems: ftran/btran residuals stay tiny across orders.
class SparseLuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseLuRandomTest, ResidualsAreSmall) {
  const int n = GetParam();
  std::mt19937_64 gen(321 + n);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<int> pick(0, n - 1);
  // Sparse + diagonally dominant: ~4 off-diagonals per column.
  Matrix a(n, n);
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < 4; ++k) a(pick(gen), j) = u(gen);
  }
  for (int i = 0; i < n; ++i) {
    double row_abs = 0.0;
    for (int j = 0; j < n; ++j) row_abs += std::abs(a(i, j));
    a(i, i) = row_abs + 1.0;
  }
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(static_cast<std::size_t>(n), columns_of(a)));

  Vector b(n);
  for (auto& v : b) v = u(gen);
  Vector x = b;
  lu.ftran(x);
  const Vector ax = a * x;
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);

  Vector y = b;
  lu.btran(y);
  const Vector aty = left_multiply(y, a);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(aty[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, SparseLuRandomTest,
                         ::testing::Values(1, 2, 5, 10, 25, 60, 150));

TEST(SparseLuTest, MarkowitzKeepsArrowheadFillLinear) {
  // Arrowhead matrix with the dense row/column FIRST: naive in-order
  // elimination fills the whole matrix (O(n^2) entries); Markowitz
  // pivoting defers the dense row and keeps the factors linear.
  const int n = 200;
  std::vector<SparseColumn> cols(n);
  for (int j = 1; j < n; ++j) {
    cols[0].emplace_back(j, 0.5);                        // dense column 0
    cols[j] = {{0, 0.5}, {static_cast<std::size_t>(j), 4.0}};  // dense row 0
  }
  cols[0].emplace_back(0, 4.0);
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(n, cols));
  // Linear fill: a handful of entries per pivot, nowhere near n^2/2.
  EXPECT_LT(lu.factor_nonzeros(), static_cast<std::size_t>(6 * n));

  std::mt19937_64 gen(9);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Vector b(n);
  for (auto& v : b) v = u(gen);
  Vector x = b;
  lu.ftran(x);
  Matrix dense(n, n);
  for (int j = 0; j < n; ++j) {
    for (const auto& [r, v] : cols[j]) dense(r, j) = v;
  }
  const Vector ax = dense * x;
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(SparseLuTest, SumsDuplicateEntriesWithinColumn) {
  // The factorize contract merges duplicate (row, value) pairs.
  std::vector<SparseColumn> cols = {{{0, 1.0}, {0, 1.0}}, {{1, 2.0}}};
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(2, cols));
  Vector x{4.0, 6.0};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLuTest, StructurallySingularEmptyColumn) {
  std::vector<SparseColumn> cols = {{{0, 1.0}}, {}};
  SparseLu lu;
  EXPECT_FALSE(lu.factorize(2, cols));
}

// ---------------------------------------------------------------------
// BasisFactorization (Forrest–Tomlin updates)
// ---------------------------------------------------------------------

TEST(BasisFactorizationTest, UpdateMatchesFreshRefactorization) {
  const int n = 40;
  std::mt19937_64 gen(2024);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<int> pick(0, n - 1);

  auto random_column = [&] {
    SparseColumn col;
    std::vector<char> used(n, 0);
    for (int k = 0; k < 4; ++k) {
      const int r = pick(gen);
      if (!used[r]) {
        used[r] = 1;
        col.emplace_back(static_cast<std::size_t>(r), u(gen));
      }
    }
    return col;
  };
  // Start from a well-conditioned basis: identity plus noise.
  std::vector<SparseColumn> cols(n);
  for (int j = 0; j < n; ++j) {
    cols[j] = random_column();
    bool has_diag = false;
    for (auto& [r, v] : cols[j]) {
      if (r == static_cast<std::size_t>(j)) {
        v += 6.0;
        has_diag = true;
      }
    }
    if (!has_diag) cols[j].emplace_back(j, 6.0);
  }

  BasisFactorization fac(/*refactor_interval=*/64);
  ASSERT_TRUE(fac.refactorize(n, cols));

  // Apply 20 random column replacements through Forrest–Tomlin updates;
  // after each, ftran must agree with a from-scratch factorization of
  // the updated basis to ~1e-8 (the drift bound that motivates periodic
  // refactorization).
  Vector b(n);
  for (auto& v : b) v = u(gen);
  for (int step = 0; step < 20; ++step) {
    SparseColumn incoming = random_column();
    const std::size_t r = static_cast<std::size_t>(pick(gen));
    incoming.emplace_back(r, 6.0);  // keep the basis well conditioned

    Vector d(n, 0.0);
    for (const auto& [row, v] : incoming) d[row] += v;
    fac.ftran(d);
    if (!fac.update(r, d)) {
      cols[r] = incoming;
      ASSERT_TRUE(fac.refactorize(n, cols));
      continue;
    }
    cols[r] = incoming;

    Vector via_updates = b;
    fac.ftran(via_updates);
    BasisFactorization fresh(64);
    ASSERT_TRUE(fresh.refactorize(n, cols));
    Vector via_fresh = b;
    fresh.ftran(via_fresh);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(via_updates[i], via_fresh[i], 1e-8)
          << "step " << step << " entry " << i;
    }
    Vector bt_updates = b;
    fac.btran(bt_updates);
    Vector bt_fresh = b;
    fresh.btran(bt_fresh);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(bt_updates[i], bt_fresh[i], 1e-8)
          << "step " << step << " entry " << i;
    }
  }
  EXPECT_GT(fac.updates_since_refactor(), 0u);
}

TEST(BasisFactorizationTest, RefusesTinyUpdatePivot) {
  BasisFactorization fac(8);
  std::vector<SparseColumn> eye = {{{0, 1.0}}, {{1, 1.0}}};
  ASSERT_TRUE(fac.refactorize(2, eye));
  Vector d{1e-12, 1.0};  // pivot at position 0 far below tolerance
  EXPECT_FALSE(fac.update(0, d));
  EXPECT_EQ(fac.updates_since_refactor(), 0u);
}

TEST(BasisFactorizationTest, SignalsRefactorAtUpdateCountCap) {
  BasisFactorization fac(/*refactor_interval=*/2);
  std::vector<SparseColumn> eye = {{{0, 1.0}}, {{1, 1.0}}};
  ASSERT_TRUE(fac.refactorize(2, eye));
  Vector d{1.0, 0.5};
  EXPECT_TRUE(fac.update(0, d));
  EXPECT_TRUE(fac.update(1, d));
  EXPECT_TRUE(fac.needs_refactor());
  EXPECT_FALSE(fac.update(0, d));  // at cap: caller must refactorize
}

}  // namespace
}  // namespace dpm::linalg
