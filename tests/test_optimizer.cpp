// Tests for the policy optimizer: LP construction (Appendix A),
// optimality (Theorems A.1/A.2), constraint handling, Pareto structure
// (Theorem 4.1).
#include <gtest/gtest.h>

#include <random>

#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "dpm/value_iteration.h"

namespace dpm {
namespace {

using cases::ExampleSystem;

OptimizerConfig example_config(const SystemModel& m, double gamma = 0.999) {
  return ExampleSystem::make_config(m, gamma);
}

TEST(Optimizer, ConfigValidation) {
  const SystemModel m = ExampleSystem::make_model();
  OptimizerConfig bad = example_config(m);
  bad.discount = 1.0;
  EXPECT_THROW(PolicyOptimizer(m, bad), ModelError);
  bad = example_config(m);
  bad.initial_distribution = linalg::Vector(3, 0.0);
  EXPECT_THROW(PolicyOptimizer(m, bad), ModelError);
  bad = example_config(m);
  bad.initial_distribution = linalg::Vector(8, 0.0);  // sums to 0
  EXPECT_THROW(PolicyOptimizer(m, bad), ModelError);
}

TEST(Optimizer, DefaultInitialDistributionIsUniform) {
  const SystemModel m = ExampleSystem::make_model();
  OptimizerConfig cfg;
  cfg.discount = 0.99;
  const PolicyOptimizer opt(m, cfg);
  EXPECT_NEAR(opt.config().initial_distribution[0], 1.0 / 8.0, 1e-12);
}

TEST(Optimizer, LpHasExpectedShape) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  const lp::LpProblem p = opt.build_lp(
      metrics::power(m), {{metrics::queue_length(m), 0.5, "perf"}});
  // 8 states x 2 commands = 16 unknowns (Example A.1); 8 balance rows +
  // 1 metric row.
  EXPECT_EQ(p.num_variables(), 16u);
  EXPECT_EQ(p.num_constraints(), 9u);
}

TEST(Optimizer, UnconstrainedFrequenciesSumToHorizon) {
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, example_config(m, gamma));
  const OptimizationResult r = opt.minimize(metrics::power(m));
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(linalg::sum(r.frequencies), 1.0 / (1.0 - gamma), 1e-6);
}

TEST(Optimizer, UnconstrainedOptimumIsDeterministic) {
  // Theorem A.1/A.2: with no (active) side constraints the optimal
  // policy is deterministic on all reachable states.
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  const OptimizationResult r = opt.minimize(metrics::power(m));
  ASSERT_TRUE(r.feasible);
  const std::size_t na = m.num_commands();
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    double reach = 0.0;
    for (std::size_t a = 0; a < na; ++a) reach += r.frequencies[s * na + a];
    if (reach < 1e-9) continue;  // unreachable states are unconstrained
    double max_p = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      max_p = std::max(max_p, r.policy->probability(s, a));
    }
    EXPECT_GT(max_p, 1.0 - 1e-6) << "state " << s;
  }
}

TEST(Optimizer, MatchesValueIterationUnconstrained) {
  // LP2 and value iteration must agree on the optimal discounted cost.
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.99;
  const PolicyOptimizer opt(m, example_config(m, gamma));
  const OptimizationResult lp = opt.minimize(metrics::queue_length(m));
  ASSERT_TRUE(lp.feasible);

  const ValueIterationResult vi =
      value_iteration(m, metrics::queue_length(m), gamma);
  ASSERT_TRUE(vi.converged);
  // LP objective (per-step) vs p0 . v* scaled by (1 - gamma).
  const std::size_t s0 = m.index_of({ExampleSystem::kSpOn, 0, 0});
  EXPECT_NEAR(lp.objective_per_step, (1.0 - gamma) * vi.values[s0], 1e-6);
}

TEST(Optimizer, ConstraintIsRespected) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  const OptimizationResult r = opt.minimize_power(/*max_avg_queue=*/0.3);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.constraint_per_step.size(), 1u);
  EXPECT_LE(r.constraint_per_step[0], 0.3 + 1e-7);
}

TEST(Optimizer, ActiveConstraintRandomizesPolicy) {
  // Theorem A.2: when the constraint binds, the optimum is randomized.
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  // Pick a bound strictly between the unconstrained optimum queue and
  // the always-on queue so the constraint must bind.
  const OptimizationResult r = opt.minimize_power(0.3);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.constraint_per_step[0], 0.3, 1e-6)
      << "constraint expected to be active";
  EXPECT_FALSE(r.policy->is_deterministic(1e-6));
}

TEST(Optimizer, InfeasibleDetected) {
  // Queue-length average below the workload's floor is impossible
  // (Fig. 6's infeasible region).
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  const OptimizationResult r = opt.minimize_power(/*max_avg_queue=*/0.0001);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.lp_status, lp::LpStatus::kInfeasible);
}

TEST(Optimizer, ExtractedPolicyReproducesLpCosts) {
  // Evaluating the extracted policy exactly must reproduce the LP's
  // objective and constraint values (the frequencies ARE the policy's
  // discounted frequencies).
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, example_config(m, gamma));
  const OptimizationResult r = opt.minimize_power(0.35);
  ASSERT_TRUE(r.feasible);
  const PolicyEvaluation ev(m, *r.policy, gamma,
                            opt.config().initial_distribution);
  EXPECT_NEAR(ev.per_step(metrics::power(m)), r.objective_per_step, 1e-6);
  EXPECT_NEAR(ev.per_step(metrics::queue_length(m)),
              r.constraint_per_step[0], 1e-6);
}

TEST(Optimizer, OptimalBeatsHeuristicsUnderSameConstraint) {
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, example_config(m, gamma));
  const OptimizationResult r = opt.minimize_power(0.4);
  ASSERT_TRUE(r.feasible);
  // Any feasible heuristic meeting the same queue constraint cannot be
  // cheaper.  The always-on policy trivially meets it.
  const PolicyEvaluation on(m,
                            cases::always_on_policy(m, ExampleSystem::kCmdOn),
                            gamma, opt.config().initial_distribution);
  ASSERT_LE(on.per_step(metrics::queue_length(m)), 0.4);
  EXPECT_LE(r.objective_per_step,
            on.per_step(metrics::power(m)) + 1e-9);
}

TEST(Optimizer, RequestLossConstraintSupported) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  // The loss floor at this workload is ~0.155 (the requester's burst
  // tail overwhelms a capacity-1 queue even when always on); 0.18 is a
  // binding but feasible bound.
  const OptimizationResult r =
      opt.minimize_power(0.5, /*max_loss_rate=*/0.18);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.constraint_per_step.size(), 2u);
  EXPECT_LE(r.constraint_per_step[1], 0.18 + 1e-8);
}

TEST(Optimizer, TighterConstraintNeverCheaper) {
  // Monotonicity of the tradeoff curve f(P).
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  double last_power = -1.0;
  for (const double q : {0.6, 0.5, 0.4, 0.3, 0.25}) {
    const OptimizationResult r = opt.minimize_power(q);
    ASSERT_TRUE(r.feasible) << "queue bound " << q;
    EXPECT_GE(r.objective_per_step, last_power - 1e-8);
    last_power = r.objective_per_step;
  }
}

TEST(Optimizer, ParetoCurveIsConvex) {
  // Theorem 4.1: the efficient-allocation set is convex, so power as a
  // function of the queue bound has nonincreasing increments.
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  const std::vector<double> bounds{0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
  const auto curve = opt.sweep(metrics::power(m), metrics::queue_length(m),
                               "queue", bounds);
  ASSERT_EQ(curve.size(), bounds.size());
  for (const auto& pt : curve) ASSERT_TRUE(pt.feasible);
  for (std::size_t i = 2; i < curve.size(); ++i) {
    const double d1 = curve[i - 1].objective - curve[i - 2].objective;
    const double d2 = curve[i].objective - curve[i - 1].objective;
    // Equal spacing: slopes must be nondecreasing toward 0 (convex,
    // nonincreasing curve).
    EXPECT_LE(d1, d2 + 1e-6);
  }
}

TEST(Optimizer, SweepMarksInfeasiblePoints) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  const auto curve = opt.sweep(metrics::power(m), metrics::queue_length(m),
                               "queue", {0.0001, 0.5});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_FALSE(curve[0].feasible);
  EXPECT_TRUE(curve[1].feasible);
  EXPECT_FALSE(curve[0].policy.has_value());
}

TEST(Optimizer, WarmStartedSweepMatchesColdSolves) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m, 0.999));
  const std::vector<double> bounds{0.2, 0.3, 0.4, 0.5, 0.7};
  const std::vector<OptimizationConstraint> fixed{
      {metrics::request_loss(m), 0.3, "loss"}};

  // Warm-started sweep (revised-simplex default backend) vs. independent
  // cold solves of exactly the same instances.
  const auto curve = opt.sweep(metrics::power(m), metrics::queue_length(m),
                               "queue", bounds, fixed);
  ASSERT_EQ(curve.size(), bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    std::vector<OptimizationConstraint> constraints = fixed;
    constraints.push_back({metrics::queue_length(m), bounds[i], "queue"});
    const OptimizationResult cold = opt.minimize(metrics::power(m),
                                                 constraints);
    ASSERT_EQ(curve[i].feasible, cold.feasible) << "bound " << bounds[i];
    if (cold.feasible) {
      EXPECT_NEAR(curve[i].objective, cold.objective_per_step,
                  1e-6 * (1.0 + std::abs(cold.objective_per_step)))
          << "bound " << bounds[i];
    }
  }
}

TEST(Optimizer, InteriorPointBackendAgrees) {
  const SystemModel m = ExampleSystem::make_model();
  OptimizerConfig cfg = example_config(m, 0.99);
  const PolicyOptimizer simplex(m, cfg);
  cfg.backend = lp::Backend::kInteriorPoint;
  const PolicyOptimizer ipm(m, cfg);
  const OptimizationResult r1 = simplex.minimize_power(0.4);
  const OptimizationResult r2 = ipm.minimize_power(0.4);
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r2.feasible);
  EXPECT_NEAR(r1.objective_per_step, r2.objective_per_step, 1e-4);
}

TEST(Optimizer, Lp3Lp4Duality) {
  // Appendix A: "the minimum power consumption obtained by solving LP4
  // for a given performance constraint D is equal to the value we
  // should assign to the power constraint if we want to obtain a
  // solution of LP3 with minimum performance penalty D."
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  const double queue_bound = 0.35;
  const OptimizationResult lp4 = opt.minimize_power(queue_bound);
  ASSERT_TRUE(lp4.feasible);
  // Feed LP4's optimal power back as LP3's power budget:
  const OptimizationResult lp3 =
      opt.minimize_penalty(lp4.objective_per_step + 1e-9);
  ASSERT_TRUE(lp3.feasible);
  EXPECT_NEAR(lp3.objective_per_step, queue_bound, 1e-6);
}

TEST(Optimizer, MinimizePenaltyRespectsPowerBudget) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  for (const double budget : {1.5, 2.0, 2.5}) {
    const OptimizationResult r = opt.minimize_penalty(budget);
    ASSERT_TRUE(r.feasible) << "budget " << budget;
    EXPECT_LE(r.constraint_per_step[0], budget + 1e-7);
  }
}

TEST(Optimizer, PenaltyFallsWithPowerBudget) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  double last = 1e300;
  for (const double budget : {1.2, 1.6, 2.0, 2.4, 2.8}) {
    const OptimizationResult r = opt.minimize_penalty(budget);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.objective_per_step, last + 1e-8);
    last = r.objective_per_step;
  }
}

TEST(Optimizer, ExtractPolicyValidatesSize) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  EXPECT_THROW(opt.extract_policy(linalg::Vector(3, 1.0)), ModelError);
}

TEST(Optimizer, ExtractPolicyUniformOnUnreachable) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, example_config(m));
  linalg::Vector x(m.num_states() * m.num_commands(), 0.0);
  x[0] = 1.0;  // only state 0 / command 0 visited
  const Policy p = opt.extract_policy(x);
  EXPECT_DOUBLE_EQ(p.probability(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.probability(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(p.probability(1, 1), 0.5);
}

// Property: optimal cost from the LP can never beat the best of a large
// family of randomized-shutdown policies by being *worse* — i.e., the LP
// optimum lower-bounds every member (global optimality, Theorem A.1).
class GlobalOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(GlobalOptimalityTest, LpLowerBoundsRandomPolicies) {
  const int seed = GetParam();
  const SystemModel m = ExampleSystem::make_model();
  const double gamma = 0.995;
  const PolicyOptimizer opt(m, example_config(m, gamma));
  const OptimizationResult r = opt.minimize(metrics::power(m));
  ASSERT_TRUE(r.feasible);

  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  linalg::Matrix d(m.num_states(), m.num_commands());
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    const double p = u(gen);
    d(s, 0) = p;
    d(s, 1) = 1.0 - p;
  }
  const PolicyEvaluation ev(m, Policy::randomized(d), gamma,
                            opt.config().initial_distribution);
  EXPECT_GE(ev.per_step(metrics::power(m)),
            r.objective_per_step - 1e-8)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalOptimalityTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace dpm
