// Structural tests for the case-study models (Sec. VI) and the
// Appendix B sensitivity builders.
#include <gtest/gtest.h>

#include <cmath>

#include "cases/cpu_sa1100.h"
#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "cases/sensitivity.h"
#include "cases/web_server.h"
#include "markov/markov_chain.h"

namespace dpm::cases {
namespace {

// ---------------------------------------------------------------------
// Disk drive (Sec. VI-A)
// ---------------------------------------------------------------------

TEST(DiskDrive, TableIReproduced) {
  const auto& rows = DiskDrive::table_i();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_STREQ(rows[0].name, "active");
  EXPECT_DOUBLE_EQ(rows[0].power_w, 2.5);
  EXPECT_DOUBLE_EQ(rows[2].wake_time_ms, 40.0);
  EXPECT_DOUBLE_EQ(rows[4].power_w, 0.1);
}

TEST(DiskDrive, ElevenSpStatesFiveCommands) {
  const ServiceProvider sp = DiskDrive::make_provider();
  EXPECT_EQ(sp.num_states(), 11u);
  EXPECT_EQ(sp.commands().size(), 5u);
}

TEST(DiskDrive, ComposedModelHas66States) {
  const SystemModel m = DiskDrive::make_model();
  EXPECT_EQ(m.num_states(), 66u);  // 11 x 2 x 3, as in the paper
  for (std::size_t a = 0; a < m.num_commands(); ++a) {
    EXPECT_NO_THROW(
        markov::validate_stochastic(m.chain().matrix(a), "disk", 1e-9));
  }
}

TEST(DiskDrive, WakeTimesMatchTableI) {
  // Expected transition times (Eq. 2) through the wake transients must
  // equal Table I's datasheet numbers (in ms, tau = 1 ms).
  const ServiceProvider sp = DiskDrive::make_provider();
  EXPECT_NEAR(sp.expected_transition_time(DiskDrive::kIdle,
                                          DiskDrive::kActive,
                                          DiskDrive::kGoActive),
              1.0, 1e-12);
  EXPECT_NEAR(sp.expected_transition_time(DiskDrive::kWakeLpIdle,
                                          DiskDrive::kActive,
                                          DiskDrive::kGoActive),
              40.0, 1e-9);
  EXPECT_NEAR(sp.expected_transition_time(DiskDrive::kWakeStandby,
                                          DiskDrive::kActive,
                                          DiskDrive::kGoActive),
              2200.0, 1e-9);
  EXPECT_NEAR(sp.expected_transition_time(DiskDrive::kWakeSleep,
                                          DiskDrive::kActive,
                                          DiskDrive::kGoActive),
              6000.0, 1e-9);
}

TEST(DiskDrive, TransientStatesAreUncontrollable) {
  const ServiceProvider sp = DiskDrive::make_provider();
  for (std::size_t a = 1; a < DiskDrive::kNumCommands; ++a) {
    for (const auto s : {DiskDrive::kWakeSleep, DiskDrive::kDownSleep}) {
      EXPECT_DOUBLE_EQ(sp.chain().transition(s, s, a),
                       sp.chain().transition(s, s, 0))
          << "transient " << s << " reacted to command " << a;
    }
  }
}

TEST(DiskDrive, TransientsDissipateActivePower) {
  const ServiceProvider sp = DiskDrive::make_provider();
  for (std::size_t s = DiskDrive::kWakeLpIdle; s <= DiskDrive::kDownSleep;
       ++s) {
    EXPECT_DOUBLE_EQ(sp.power(s, DiskDrive::kGoActive), 2.5);
    EXPECT_TRUE(sp.is_sleep_state(s));  // zero service rate
  }
}

TEST(DiskDrive, OnlyActiveServes) {
  const ServiceProvider sp = DiskDrive::make_provider();
  for (std::size_t s = 0; s < sp.num_states(); ++s) {
    for (std::size_t a = 0; a < sp.commands().size(); ++a) {
      if (s == DiskDrive::kActive && a == DiskDrive::kGoActive) {
        EXPECT_GT(sp.service_rate(s, a), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(sp.service_rate(s, a), 0.0);
      }
    }
  }
}

TEST(DiskDrive, RequesterIsBursty) {
  const ServiceRequester sr = DiskDrive::make_requester();
  // Burst persistence: staying in the request state is more likely than
  // entering it from idle.
  EXPECT_GT(sr.chain().transition(1, 1), sr.chain().transition(0, 1));
}

// ---------------------------------------------------------------------
// Web server (Sec. VI-B)
// ---------------------------------------------------------------------

TEST(WebServer, EightComposedStates) {
  const SystemModel m = WebServer::make_model();
  EXPECT_EQ(m.num_states(), 8u);  // 4 SP x 2 SR, no queue
  EXPECT_EQ(m.num_commands(), 4u);
}

TEST(WebServer, ThroughputTable) {
  EXPECT_DOUBLE_EQ(WebServer::throughput(WebServer::kBothOn), 1.0);
  EXPECT_DOUBLE_EQ(WebServer::throughput(WebServer::kCpu1Only), 0.4);
  EXPECT_DOUBLE_EQ(WebServer::throughput(WebServer::kCpu2Only), 0.6);
  EXPECT_DOUBLE_EQ(WebServer::throughput(WebServer::kBothOff), 0.0);
  EXPECT_THROW(WebServer::throughput(7), ModelError);
}

TEST(WebServer, PowerTable) {
  const ServiceProvider sp = WebServer::make_provider();
  // Both on, commanded to stay: 1 + 2 = 3 W.
  EXPECT_DOUBLE_EQ(sp.power(WebServer::kBothOn, WebServer::kBothOn), 3.0);
  // Both off, commanded both on: turn-on costs (1+0.5) + (2+0.5).
  EXPECT_DOUBLE_EQ(sp.power(WebServer::kBothOff, WebServer::kBothOn), 4.0);
  // Both on, commanded both off: shutdown costs (1-0.5) + (2-0.5).
  EXPECT_DOUBLE_EQ(sp.power(WebServer::kBothOn, WebServer::kBothOff), 2.0);
  EXPECT_DOUBLE_EQ(sp.power(WebServer::kBothOff, WebServer::kBothOff), 0.0);
}

TEST(WebServer, TurnOnTakesTwoSlices) {
  const ServiceProvider sp = WebServer::make_provider();
  // From both-off toward both-on, each CPU flips on with p=0.5.
  EXPECT_NEAR(sp.chain().transition(WebServer::kBothOff, WebServer::kBothOn,
                                    WebServer::kBothOn),
              0.25, 1e-12);
  // Shut-down is deterministic in one slice.
  EXPECT_NEAR(sp.chain().transition(WebServer::kBothOn, WebServer::kBothOff,
                                    WebServer::kBothOff),
              1.0, 1e-12);
}

TEST(WebServer, ThroughputConstraintForm) {
  const SystemModel m = WebServer::make_model();
  const OptimizationConstraint c =
      WebServer::min_throughput_constraint(m, 0.5);
  // metric(-throughput) at a both-on state = -1.
  const std::size_t s = m.index_of({WebServer::kBothOn, 0, 0});
  EXPECT_DOUBLE_EQ(c.metric(s, WebServer::kBothOn), -1.0);
  EXPECT_DOUBLE_EQ(c.per_step_bound, -0.5);
}

// ---------------------------------------------------------------------
// CPU (Sec. VI-C)
// ---------------------------------------------------------------------

TEST(Cpu, ComposedModelShape) {
  const SystemModel m = CpuSa1100::make_model();
  EXPECT_EQ(m.num_states(), 6u);  // 3 SP x 2 SR, no queue
  EXPECT_EQ(m.num_commands(), 2u);
  for (std::size_t a = 0; a < 2; ++a) {
    EXPECT_NO_THROW(
        markov::validate_stochastic(m.chain().matrix(a), "cpu", 1e-9));
  }
}

TEST(Cpu, ReactiveWakeupOnArrival) {
  const SystemModel m = CpuSa1100::make_model();
  // From (sleep, idle): if the SR moves to "request", the SP must enter
  // the waking transient regardless of the command.
  const std::size_t from = m.index_of({CpuSa1100::kSleep, 0, 0});
  for (std::size_t a = 0; a < 2; ++a) {
    const double to_waking =
        m.chain().transition(from, m.index_of({CpuSa1100::kWaking, 1, 0}), a);
    const double sr_move = m.requester().chain().transition(0, 1);
    EXPECT_NEAR(to_waking, sr_move, 1e-12) << "command " << a;
    // It can NOT stay asleep while requests arrive.
    EXPECT_DOUBLE_EQ(
        m.chain().transition(from, m.index_of({CpuSa1100::kSleep, 1, 0}), a),
        0.0);
  }
}

TEST(Cpu, ActiveIgnoresShutdownUnderLoad) {
  const SystemModel m = CpuSa1100::make_model();
  const std::size_t from = m.index_of({CpuSa1100::kActive, 1, 0});
  // While the SR keeps issuing requests, shutdown has no effect.
  const double stay = m.chain().transition(
      from, m.index_of({CpuSa1100::kActive, 1, 0}), CpuSa1100::kShutdown);
  EXPECT_NEAR(stay, m.requester().chain().transition(1, 1), 1e-12);
}

TEST(Cpu, ShutdownWorksWhenIdle) {
  const SystemModel m = CpuSa1100::make_model();
  const std::size_t from = m.index_of({CpuSa1100::kActive, 0, 0});
  const double to_sleep = m.chain().transition(
      from, m.index_of({CpuSa1100::kSleep, 0, 0}), CpuSa1100::kShutdown);
  const double sr_stay = m.requester().chain().transition(0, 0);
  EXPECT_NEAR(to_sleep, sr_stay * CpuSa1100::kTransitionProb, 1e-12);
}

TEST(Cpu, PenaltyMetricCountsSleepingUnderLoad) {
  const SystemModel m = CpuSa1100::make_model();
  const StateActionMetric pen = CpuSa1100::penalty(m);
  EXPECT_DOUBLE_EQ(pen(m.index_of({CpuSa1100::kSleep, 1, 0}), 0), 1.0);
  EXPECT_DOUBLE_EQ(pen(m.index_of({CpuSa1100::kWaking, 1, 0}), 0), 1.0);
  EXPECT_DOUBLE_EQ(pen(m.index_of({CpuSa1100::kActive, 1, 0}), 0), 0.0);
  EXPECT_DOUBLE_EQ(pen(m.index_of({CpuSa1100::kSleep, 0, 0}), 0), 0.0);
}

TEST(Cpu, PowerNumbers) {
  const ServiceProvider sp = CpuSa1100::make_provider();
  EXPECT_DOUBLE_EQ(sp.power(CpuSa1100::kActive, CpuSa1100::kRun), 0.3);
  EXPECT_DOUBLE_EQ(sp.power(CpuSa1100::kSleep, CpuSa1100::kRun), 0.0);
  EXPECT_DOUBLE_EQ(sp.power(CpuSa1100::kWaking, CpuSa1100::kRun), 0.9);
}

// ---------------------------------------------------------------------
// Sensitivity builders (Appendix B)
// ---------------------------------------------------------------------

TEST(Sensitivity, StandardSleepStates) {
  const auto& specs = sensitivity::standard_sleep_states();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_DOUBLE_EQ(specs[0].power_w, 2.0);
  EXPECT_DOUBLE_EQ(specs[3].wake_prob, 0.001);
}

TEST(Sensitivity, SpShape) {
  const ServiceProvider sp =
      sensitivity::make_sp(sensitivity::standard_sleep_states());
  EXPECT_EQ(sp.num_states(), 5u);   // active + 4 sleeps
  EXPECT_EQ(sp.commands().size(), 5u);
  EXPECT_EQ(sp.state_name(0), "active");
  EXPECT_EQ(sp.state_name(4), "sleep4");
}

TEST(Sensitivity, WakeTimes) {
  const ServiceProvider sp =
      sensitivity::make_sp(sensitivity::standard_sleep_states());
  EXPECT_NEAR(sp.expected_transition_time(2, 0, 0), 10.0, 1e-9);
  EXPECT_NEAR(sp.expected_transition_time(4, 0, 0), 1000.0, 1e-9);
}

TEST(Sensitivity, TransitionPowerCharged) {
  const ServiceProvider sp =
      sensitivity::make_sp({{"sleep1", 2.0, 1.0}});
  EXPECT_DOUBLE_EQ(sp.power(0, 0), 3.0);  // active staying active
  EXPECT_DOUBLE_EQ(sp.power(0, 1), 4.0);  // commanded down
  EXPECT_DOUBLE_EQ(sp.power(1, 0), 4.0);  // waking
  EXPECT_DOUBLE_EQ(sp.power(1, 1), 2.0);  // sleeping
}

TEST(Sensitivity, ComposedBaseline) {
  const SystemModel m =
      sensitivity::make_model({{"sleep1", 2.0, 1.0}}, 0.01, 2);
  EXPECT_EQ(m.num_states(), 2u * 2u * 3u);
  const OptimizerConfig cfg = sensitivity::make_config(m, 1e5);
  EXPECT_NEAR(cfg.discount, 1.0 - 1e-5, 1e-12);
  EXPECT_THROW(sensitivity::make_config(m, 0.5), ModelError);
}

TEST(Sensitivity, RequiresASleepState) {
  EXPECT_THROW(sensitivity::make_sp({}), ModelError);
}

// ---------------------------------------------------------------------
// Heuristic Markov policies
// ---------------------------------------------------------------------

TEST(Heuristics, EagerPolicyStructure) {
  const SystemModel m = ExampleSystem::make_model();
  const Policy p = eager_policy(m, ExampleSystem::kCmdOff,
                                ExampleSystem::kCmdOn);
  // Idle state: sleep command; busy state: wake command.
  EXPECT_EQ(p.command_for(m.index_of({0, 0, 0})), ExampleSystem::kCmdOff);
  EXPECT_EQ(p.command_for(m.index_of({0, 1, 0})), ExampleSystem::kCmdOn);
  EXPECT_EQ(p.command_for(m.index_of({0, 0, 1})), ExampleSystem::kCmdOn);
}

TEST(Heuristics, RandomizedShutdownValidation) {
  const SystemModel m = ExampleSystem::make_model();
  EXPECT_THROW(
      randomized_shutdown_policy(m, 1, 0, 1.5), ModelError);
  const Policy p = randomized_shutdown_policy(m, 1, 0, 0.25);
  EXPECT_NEAR(p.probability(m.index_of({0, 0, 0}), 1), 0.25, 1e-12);
}

TEST(Heuristics, RandomizedShutdownDegenerateCases) {
  const SystemModel m = ExampleSystem::make_model();
  // p = 0 is always-on; p = 1 is eager.
  const Policy p0 = randomized_shutdown_policy(m, 1, 0, 0.0);
  const Policy p1 = randomized_shutdown_policy(m, 1, 0, 1.0);
  const Policy eager = eager_policy(m, 1, 0);
  const Policy on = always_on_policy(m, 0);
  EXPECT_EQ(linalg::Matrix::max_abs_diff(p0.matrix(), on.matrix()), 0.0);
  EXPECT_EQ(linalg::Matrix::max_abs_diff(p1.matrix(), eager.matrix()), 0.0);
}

}  // namespace
}  // namespace dpm::cases
