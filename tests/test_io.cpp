// Tests for the human-readable rendering layer.
#include <gtest/gtest.h>

#include <sstream>

#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/io.h"
#include "dpm/optimizer.h"

namespace dpm {
namespace {

using cases::ExampleSystem;

TEST(Io, ProviderContainsStatesAndCommands) {
  const ServiceProvider sp = ExampleSystem::make_provider();
  std::ostringstream os;
  io::print_provider(os, sp);
  const std::string s = os.str();
  EXPECT_NE(s.find("2 states"), std::string::npos);
  EXPECT_NE(s.find("P[s_on]"), std::string::npos);
  EXPECT_NE(s.find("P[s_off]"), std::string::npos);
  EXPECT_NE(s.find("off"), std::string::npos);
  EXPECT_NE(s.find("0.100"), std::string::npos);  // wake probability
}

TEST(Io, RequesterContainsEmissions) {
  const ServiceRequester sr = ExampleSystem::make_requester();
  std::ostringstream os;
  io::print_requester(os, sr);
  const std::string s = os.str();
  EXPECT_NE(s.find("emits 1"), std::string::npos);
  EXPECT_NE(s.find("emits 0"), std::string::npos);
  EXPECT_NE(s.find("0.850"), std::string::npos);  // burst persistence
}

TEST(Io, PolicyLabelsStatesAndClassifies) {
  const SystemModel m = ExampleSystem::make_model();
  std::ostringstream os;
  io::print_policy(os, m,
                   cases::always_on_policy(m, ExampleSystem::kCmdOn));
  const std::string s = os.str();
  EXPECT_NE(s.find("deterministic"), std::string::npos);
  EXPECT_NE(s.find("(on,idle,q=0)"), std::string::npos);
  EXPECT_NE(s.find("s_on=1.0000"), std::string::npos);

  std::ostringstream os2;
  io::print_policy(os2, m,
                   cases::randomized_shutdown_policy(
                       m, ExampleSystem::kCmdOff, ExampleSystem::kCmdOn,
                       0.3));
  EXPECT_NE(os2.str().find("randomized"), std::string::npos);
}

TEST(Io, PolicyHideBelowFiltersSmallEntries) {
  const SystemModel m = ExampleSystem::make_model();
  std::ostringstream os;
  io::print_policy(os, m,
                   cases::always_on_policy(m, ExampleSystem::kCmdOn),
                   /*hide_below=*/0.5);
  // The zero-probability s_off entries must be suppressed.
  EXPECT_EQ(os.str().find("s_off"), std::string::npos);
}

TEST(Io, ResultFeasibleAndInfeasible) {
  const SystemModel m = ExampleSystem::make_model();
  const PolicyOptimizer opt(m, ExampleSystem::make_config(m, 0.999));
  {
    const OptimizationResult r = opt.minimize_power(0.5);
    std::ostringstream os;
    io::print_result(os, m, r);
    EXPECT_NE(os.str().find("optimal per-step objective"),
              std::string::npos);
    EXPECT_NE(os.str().find("constraint[0]"), std::string::npos);
  }
  {
    const OptimizationResult r = opt.minimize_power(0.00001);
    std::ostringstream os;
    io::print_result(os, m, r);
    EXPECT_NE(os.str().find("infeasible"), std::string::npos);
  }
}

}  // namespace
}  // namespace dpm
