// Tests for trace handling, the Sec. V SR extractor (Example 5.1), and
// the synthetic workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "trace/generators.h"
#include "trace/request_trace.h"
#include "trace/sr_extractor.h"

namespace dpm::trace {
namespace {

TEST(RequestTrace, ValidatesTimestamps) {
  EXPECT_THROW(RequestTrace({-1.0}), TraceError);
  EXPECT_THROW(RequestTrace({2.0, 1.0}), TraceError);
  EXPECT_NO_THROW(RequestTrace({1.0, 1.0, 2.0}));
}

TEST(RequestTrace, Example51Discretization) {
  // Paper Example 5.1: trace [2,5,6,7,12] at tau = 1 ms becomes
  // [0,0,1,0,0,1,1,1,0,0,0,0,1].
  const RequestTrace t({2, 5, 6, 7, 12});
  const std::vector<unsigned> expected{0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1};
  EXPECT_EQ(t.discretize(1.0), expected);
  EXPECT_EQ(t.discretize_binary(1.0), expected);
}

TEST(RequestTrace, DiscretizeValidatesTau) {
  const RequestTrace t({1.0});
  EXPECT_THROW(t.discretize(0.0), TraceError);
  EXPECT_THROW(t.discretize(-1.0), TraceError);
}

TEST(RequestTrace, EmptyTrace) {
  const RequestTrace t;
  EXPECT_EQ(t.num_requests(), 0u);
  EXPECT_EQ(t.duration(), 0.0);
  EXPECT_TRUE(t.discretize(1.0).empty());
}

TEST(RequestTrace, CoarserResolutionMergesArrivals) {
  const RequestTrace t({2, 5, 6, 7, 12});
  const std::vector<unsigned> s = t.discretize(5.0);
  // ceil(2/5)=1, ceil(5/5)=1, ceil(6/5)=2, ceil(7/5)=2, ceil(12/5)=3.
  const std::vector<unsigned> expected{0, 2, 2, 1};
  EXPECT_EQ(s, expected);
}

TEST(RequestTrace, FromSlicesRoundTrip) {
  const std::vector<unsigned> arrivals{0, 2, 0, 1};
  const RequestTrace t = from_slices(arrivals, 1.0);
  EXPECT_EQ(t.num_requests(), 3u);
  EXPECT_EQ(t.discretize(1.0), arrivals);
}

// ---------------------------------------------------------------------
// SR extractor
// ---------------------------------------------------------------------

TEST(Extractor, Example51Probabilities) {
  // "there are three 01-sequences and eight occurrences of zero; hence
  // Prob[0 -> 1] = 3/8."  (The last zero has no successor in our count,
  // but the example's stream ends in 1, so all eight zeros have
  // successors.)
  const RequestTrace t({2, 5, 6, 7, 12});
  const std::vector<unsigned> stream = t.discretize_binary(1.0);
  const dpm::ServiceRequester sr = extract_sr(stream, {.memory = 1});
  EXPECT_EQ(sr.num_states(), 2u);
  EXPECT_NEAR(sr.chain().transition(0, 1), 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(sr.chain().transition(0, 0), 5.0 / 8.0, 1e-12);
  // Four ones, the final one has no successor: transitions out of 1 are
  // 1->0 twice (after slices 2 and 7), 1->1 twice (6->7, 7->8? bits 5,6,7
  // are ones: 5->6 and 6->7 are 1->1, 7->8 is 1->0; 2->3 is 1->0).
  EXPECT_NEAR(sr.chain().transition(1, 1), 2.0 / 4.0, 1e-12);
}

TEST(Extractor, RequestsFollowLastBit) {
  const std::vector<unsigned> stream{0, 1, 1, 0, 1, 0, 0, 1};
  const dpm::ServiceRequester sr = extract_sr(stream, {.memory = 2});
  EXPECT_EQ(sr.num_states(), 4u);
  EXPECT_EQ(sr.requests(0b00), 0u);
  EXPECT_EQ(sr.requests(0b01), 1u);
  EXPECT_EQ(sr.requests(0b10), 0u);
  EXPECT_EQ(sr.requests(0b11), 1u);
  EXPECT_EQ(sr.state_name(0b10), "h10");
}

TEST(Extractor, Validation) {
  EXPECT_THROW(extract_sr({0, 1}, {.memory = 0}), TraceError);
  EXPECT_THROW(extract_sr({0, 1}, {.memory = 21}), TraceError);
  EXPECT_THROW(extract_sr({0}, {.memory = 1}), TraceError);
}

TEST(Extractor, UnseenStatesGetValidRows) {
  // All-zero stream: state 1 (and any state with a 1-bit) never occurs.
  const std::vector<unsigned> stream(50, 0u);
  const dpm::ServiceRequester sr = extract_sr(stream, {.memory = 1});
  EXPECT_NEAR(sr.chain().transition(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(sr.chain().transition(1, 0) + sr.chain().transition(1, 1), 1.0,
              1e-12);
}

TEST(Extractor, SmoothingKeepsRowsStochastic) {
  const std::vector<unsigned> stream{0, 0, 1, 1, 0, 1};
  const dpm::ServiceRequester sr =
      extract_sr(stream, {.memory = 2, .smoothing = 1.0});
  for (std::size_t s = 0; s < 4; ++s) {
    double row = 0.0;
    for (std::size_t t = 0; t < 4; ++t) row += sr.chain().transition(s, t);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(Extractor, RecoverGilbertParameters) {
  // The extractor must recover the generating chain's parameters from a
  // long stream.
  const std::vector<unsigned> stream = gilbert_stream(500000, 0.15, 0.05, 9);
  const dpm::ServiceRequester sr = extract_sr(stream, {.memory = 1});
  EXPECT_NEAR(sr.chain().transition(0, 1), 0.15, 0.01);
  EXPECT_NEAR(sr.chain().transition(1, 0), 0.05, 0.01);
}

TEST(Extractor, HistoryTrackerFollowsBits) {
  const auto trk = history_tracker(2);
  std::size_t s = 0;
  s = trk(s, 1);
  EXPECT_EQ(s, 0b01u);
  s = trk(s, 1);
  EXPECT_EQ(s, 0b11u);
  s = trk(s, 0);
  EXPECT_EQ(s, 0b10u);
  s = trk(s, 5);  // any positive arrival count is a 1-bit
  EXPECT_EQ(s, 0b01u);
  EXPECT_THROW(history_tracker(0), TraceError);
}

TEST(Extractor, StreamStats) {
  const std::vector<unsigned> stream{1, 1, 0, 0, 0, 1, 0};
  const StreamStats st = analyze_stream(stream);
  EXPECT_NEAR(st.request_rate, 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(st.mean_burst_length, 1.5, 1e-12);   // runs: 2, 1
  EXPECT_NEAR(st.mean_idle_length, 2.0, 1e-12);    // runs: 3, 1
}

TEST(Extractor, StreamStatsEmpty) {
  const StreamStats st = analyze_stream({});
  EXPECT_EQ(st.request_rate, 0.0);
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

TEST(Generators, GilbertReproducible) {
  const auto a = gilbert_stream(1000, 0.2, 0.3, 4);
  const auto b = gilbert_stream(1000, 0.2, 0.3, 4);
  EXPECT_EQ(a, b);
  const auto c = gilbert_stream(1000, 0.2, 0.3, 5);
  EXPECT_NE(a, c);
}

TEST(Generators, GilbertValidation) {
  EXPECT_THROW(gilbert_stream(10, -0.1, 0.5, 1), TraceError);
  EXPECT_THROW(gilbert_stream(10, 0.1, 1.5, 1), TraceError);
}

TEST(Generators, GilbertLoadMatchesStationary) {
  // Load = p01 / (p01 + p10).
  const auto s = gilbert_stream(400000, 0.1, 0.3, 11);
  const StreamStats st = analyze_stream(s);
  EXPECT_NEAR(st.request_rate, 0.25, 0.01);
}

TEST(Generators, OnOffBurstLengths) {
  OnOffParams p;
  p.mean_burst = 5.0;
  p.mean_idle_short = 20.0;
  p.mean_idle_long = 20.0;  // degenerate mixture: idle mean 20
  p.long_idle_fraction = 0.5;
  const auto s = on_off_stream(400000, p, 13);
  const StreamStats st = analyze_stream(s);
  EXPECT_NEAR(st.mean_burst_length, 5.0, 0.5);
  EXPECT_NEAR(st.mean_idle_length, 20.0, 1.5);
}

TEST(Generators, EditingIsSparserThanCompilation) {
  const StreamStats edit = analyze_stream(editing_stream(200000, 17));
  const StreamStats comp = analyze_stream(compilation_stream(200000, 17));
  EXPECT_LT(edit.request_rate, 0.35);
  EXPECT_GT(comp.request_rate, 0.8);
}

TEST(Generators, ConcatStreams) {
  const std::vector<unsigned> a{1, 0};
  const std::vector<unsigned> b{0, 1, 1};
  const auto c = concat_streams(a, b);
  const std::vector<unsigned> expected{1, 0, 0, 1, 1};
  EXPECT_EQ(c, expected);
}

TEST(Generators, DiurnalModulatesLoad) {
  // Peak-phase load must exceed quiet-phase load.
  const std::size_t period = 20000;
  const auto s = diurnal_stream(period, period, 0.8, 0.02, 0.2, 23);
  // First half of the sine period is the busy phase.
  const std::vector<unsigned> busy(s.begin(), s.begin() + period / 2);
  const std::vector<unsigned> quiet(s.begin() + period / 2, s.end());
  EXPECT_GT(analyze_stream(busy).request_rate,
            analyze_stream(quiet).request_rate + 0.1);
  EXPECT_THROW(diurnal_stream(10, 0, 0.5, 0.1, 0.2, 1), TraceError);
}

}  // namespace
}  // namespace dpm::trace
