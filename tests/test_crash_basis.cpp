// Policy-iteration crash bases (dpm/crash.h + the engine's
// crash_columns option): a crash-seeded solve must reach the same
// optimum as the cold solve in (substantially) fewer pivots on
// structured MDP balance-equation LPs, and any defective seed — wrong
// shape, duplicate columns, a singular sub-basis — must degrade to the
// ordinary cold solve, never to a wrong answer.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "dpm/crash.h"
#include "lp/revised_simplex.h"
#include "markov/sparse_chain.h"
#include "robust/fault_injection.h"
#include "robust/supervisor.h"

namespace dpm {
namespace {

markov::SparseControlledChain random_chain(std::size_t n, std::size_t na,
                                           std::size_t succ,
                                           std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.05, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::vector<std::vector<markov::TransitionRow>> rows(
      na, std::vector<markov::TransitionRow>(n));
  for (std::size_t a = 0; a < na; ++a) {
    for (std::size_t s = 0; s < n; ++s) {
      double total = 0.0;
      for (std::size_t k = 0; k < succ; ++k) {
        rows[a][s].emplace_back(pick(gen), u(gen));
        total += rows[a][s].back().second;
      }
      for (auto& [to, w] : rows[a][s]) w /= total;
    }
  }
  return markov::SparseControlledChain(n, std::move(rows));
}

/// The LP2 shape: balance equalities over the chain, one loose metric
/// cap.  Returns the problem and the per-pair costs.
lp::LpProblem balance_lp(const markov::SparseControlledChain& chain,
                         double gamma, linalg::Matrix& cost_out,
                         std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::size_t n = chain.num_states();
  const std::size_t na = chain.num_commands();
  cost_out = linalg::Matrix(n, na);
  lp::LpProblem p;
  lp::Constraint cap;
  cap.sense = lp::Sense::kLe;
  double max_metric = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      const double c = 5.0 * u(gen);
      cost_out(s, a) = c;
      p.add_variable(c);
      const double m = 3.0 * u(gen);
      cap.terms.emplace_back(s * na + a, m);
      max_metric = std::max(max_metric, m);
    }
  }
  std::vector<lp::Constraint> balance(n);
  for (std::size_t j = 0; j < n; ++j) {
    balance[j].sense = lp::Sense::kEq;
    balance[j].rhs = 1.0 / static_cast<double>(n);
  }
  for (std::size_t a = 0; a < na; ++a) {
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t col = s * na + a;
      balance[s].terms.emplace_back(col, 1.0);
      for (const auto& [j, w] : chain.row(a, s)) {
        balance[j].terms.emplace_back(col, -gamma * w);
      }
    }
  }
  for (auto& c : balance) p.add_constraint(std::move(c));
  cap.rhs = 0.8 * max_metric / (1.0 - gamma);
  p.add_constraint(std::move(cap));
  return p;
}

// Crash vs cold on a structured model: identical objective, fewer
// pivots, and the stats record the seed's survival.
TEST(CrashBasis, MatchesColdObjectiveInFewerPivots) {
  const std::size_t n = 400, na = 4;
  const double gamma = 0.99;
  const markov::SparseControlledChain chain = random_chain(n, na, 4, 21);
  linalg::Matrix cost;
  const lp::LpProblem p = balance_lp(chain, gamma, cost, 23);

  lp::SimplexStats cold_stats;
  lp::RevisedSimplexOptions cold_opt;
  cold_opt.stats = &cold_stats;
  const lp::LpSolution cold = lp::solve_revised_simplex(p, cold_opt);
  ASSERT_EQ(cold.status, lp::LpStatus::kOptimal);
  EXPECT_FALSE(cold_stats.crash_basis_used);
  EXPECT_EQ(cold_stats.crash_pivots_saved, 0u);

  const std::vector<std::size_t> actions = greedy_crash_actions(
      chain, [&](std::size_t s, std::size_t a) { return cost(s, a); }, gamma);
  ASSERT_EQ(actions.size(), n);
  const std::vector<std::size_t> crash_cols =
      crash_columns_for_lp(actions, na, p.num_constraints());
  ASSERT_EQ(crash_cols.size(), n + 1);
  EXPECT_GE(crash_cols.back(), p.num_variables());  // metric row unseeded

  lp::SimplexStats crash_stats;
  lp::RevisedSimplexOptions crash_opt;
  crash_opt.stats = &crash_stats;
  crash_opt.crash_columns = &crash_cols;
  const lp::LpSolution crash = lp::solve_revised_simplex(p, crash_opt);
  ASSERT_EQ(crash.status, lp::LpStatus::kOptimal);
  EXPECT_TRUE(crash_stats.crash_basis_used);
  EXPECT_GT(crash_stats.crash_pivots_saved, 0u);
  EXPECT_NEAR(crash.objective, cold.objective,
              1e-7 * (1.0 + std::abs(cold.objective)));
  // The whole point: the seed skips the phase-1 walk.
  EXPECT_LT(crash.iterations, cold.iterations / 2)
      << "crash=" << crash.iterations << " cold=" << cold.iterations;
}

// A singular seed (two rows nominating proportional columns) must fall
// back to the cold solve and still return the right answer.
TEST(CrashBasis, SingularSeedFallsBackCold) {
  lp::LpProblem p;
  p.add_variable(1.0);  // x0, column [1, 1]
  p.add_variable(1.0);  // x1, column [2, 2] — a multiple of x0's
  p.add_variable(1.0);  // x2, column [1, 0]
  lp::Constraint r0, r1;
  r0.sense = lp::Sense::kEq;
  r0.rhs = 2.0;
  r0.terms = {{0, 1.0}, {1, 2.0}, {2, 1.0}};
  r1.sense = lp::Sense::kEq;
  r1.rhs = 1.0;
  r1.terms = {{0, 1.0}, {1, 2.0}};
  p.add_constraint(std::move(r0));
  p.add_constraint(std::move(r1));

  const lp::LpSolution reference = lp::solve_revised_simplex(p);
  ASSERT_EQ(reference.status, lp::LpStatus::kOptimal);

  const std::vector<std::size_t> crash_cols = {0, 1};  // singular pair
  lp::SimplexStats stats;
  lp::RevisedSimplexOptions opt;
  opt.stats = &stats;
  opt.crash_columns = &crash_cols;
  const lp::LpSolution sol = lp::solve_revised_simplex(p, opt);
  ASSERT_EQ(sol.status, lp::LpStatus::kOptimal);
  EXPECT_FALSE(stats.crash_basis_used);
  EXPECT_NEAR(sol.objective, reference.objective, 1e-9);
}

// Structurally defective seeds: wrong length, out-of-range and
// duplicate nominations.  All must solve cold-equivalent.
TEST(CrashBasis, DefectiveSeedsAreHarmless) {
  const std::size_t n = 60, na = 3;
  const markov::SparseControlledChain chain = random_chain(n, na, 3, 31);
  linalg::Matrix cost;
  const lp::LpProblem p = balance_lp(chain, 0.95, cost, 33);
  const lp::LpSolution reference = lp::solve_revised_simplex(p);
  ASSERT_EQ(reference.status, lp::LpStatus::kOptimal);

  const std::size_t none = std::numeric_limits<std::size_t>::max();
  const std::vector<std::vector<std::size_t>> bad = {
      std::vector<std::size_t>(n / 2, 0),       // wrong length
      std::vector<std::size_t>(n + 1, none),    // right length, no seeds
      std::vector<std::size_t>(n + 1, 7),       // all-duplicate nomination
  };
  for (const auto& crash_cols : bad) {
    lp::RevisedSimplexOptions opt;
    opt.crash_columns = &crash_cols;
    const lp::LpSolution sol = lp::solve_revised_simplex(p, opt);
    ASSERT_EQ(sol.status, lp::LpStatus::kOptimal);
    EXPECT_NEAR(sol.objective, reference.objective,
                1e-7 * (1.0 + std::abs(reference.objective)));
  }
}

// A single-shot injected fault on the crash-installation probe
// (FaultSite::kWarmBasis fires on the crash path when no warm basis is
// supplied) must surface as a typed failure that the supervisor's
// retry rung absorbs — and because the retry reuses the crash options
// verbatim, the recovered solution is byte-identical to fault-free.
TEST(CrashBasis, CorruptedCrashSeedRecoversBitwiseViaSupervisor) {
  const std::size_t n = 150, na = 3;
  const double gamma = 0.98;
  const markov::SparseControlledChain chain = random_chain(n, na, 3, 51);
  linalg::Matrix cost;
  const lp::LpProblem p = balance_lp(chain, gamma, cost, 53);
  const std::vector<std::size_t> actions = greedy_crash_actions(
      chain, [&](std::size_t s, std::size_t a) { return cost(s, a); }, gamma);
  const std::vector<std::size_t> crash_cols =
      crash_columns_for_lp(actions, na, p.num_constraints());

  robust::SupervisorOptions sopt;
  sopt.lp.crash_columns = &crash_cols;
  const robust::SolveSupervisor supervisor(sopt);
  const robust::SolveOutcome clean = supervisor.solve(p);
  ASSERT_TRUE(clean.determined());

  robust::FaultPlan plan;
  plan.site = robust::FaultSite::kWarmBasis;
  plan.fire_at = 1;
  robust::FaultScope scope(plan);
  const robust::SolveOutcome out = supervisor.solve(p);
  ASSERT_TRUE(out.determined());
  ASSERT_EQ(scope.fired(), 1u);
  EXPECT_TRUE(out.recovered());
  EXPECT_EQ(out.steps[0].status, lp::LpStatus::kNumericalFailure);
  ASSERT_EQ(out.solution.x.size(), clean.solution.x.size());
  EXPECT_EQ(std::memcmp(out.solution.x.data(), clean.solution.x.data(),
                        clean.solution.x.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&out.solution.objective, &clean.solution.objective,
                        sizeof(double)),
            0);
}

// The crash helper itself: deterministic actions, stabilizing rounds.
TEST(CrashBasis, GreedyActionsAreDeterministicAndInRange) {
  const std::size_t n = 120, na = 5;
  const markov::SparseControlledChain chain = random_chain(n, na, 3, 41);
  linalg::Matrix cost;
  balance_lp(chain, 0.97, cost, 43);
  const auto metric = [&](std::size_t s, std::size_t a) { return cost(s, a); };
  const std::vector<std::size_t> a1 =
      greedy_crash_actions(chain, metric, 0.97);
  const std::vector<std::size_t> a2 =
      greedy_crash_actions(chain, metric, 0.97);
  ASSERT_EQ(a1.size(), n);
  EXPECT_EQ(a1, a2);
  for (const std::size_t a : a1) EXPECT_LT(a, na);
}

}  // namespace
}  // namespace dpm
