// dpmd serving tier, multi-client contracts (src/serve/):
//   * N client threads against one in-process PolicyServer produce
//     responses bitwise-equal to per-request cold solves on a fresh
//     engine — the serving restatement of --jobs invariance;
//   * the admission layer's batched results equal the unbatched ones,
//     at any thread count;
//   * engine pivot counters reconcile exactly with the process-wide
//     lp::pivots_executed() odometer.
//
// Sized for the tsan preset: capacity-2 fleet designs solve in tens of
// pivots, so the whole suite stays fast under instrumentation.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "lp/revised_simplex.h"
#include "serve/engine.h"
#include "serve/fleet.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace dpm {
namespace {

using serve::ConstraintSpec;
using serve::EngineCounters;
using serve::EngineOptions;
using serve::Op;
using serve::PolicyEngine;
using serve::PolicyServer;
using serve::Request;
using serve::ServerOptions;

// A fleet-shaped request mix: few designs, several constraint points
// each, plus an interleaved evaluate — every line feasible at
// capacity 2 (worst variant minimum queue ~0.38).
std::vector<std::string> fleet_lines() {
  std::vector<std::string> lines;
  std::size_t next_id = 0;
  for (std::size_t variant = 0; variant < 2; ++variant) {
    for (const double bound : {0.45, 0.50, 0.55, 0.60}) {
      Request r;
      r.id = "c" + std::to_string(next_id++);
      r.op = Op::kOptimize;
      r.model = serve::fleet_model_spec(variant, /*queue_capacity=*/2);
      r.discount = 0.999;
      r.objective = "power";
      ConstraintSpec queue;
      queue.metric = "queue_length";
      queue.bound = bound;
      r.constraints.push_back(queue);
      r.want_policy = true;
      lines.push_back(serve::format_request(r));
    }
  }
  Request eval;
  eval.id = "c" + std::to_string(next_id++);
  eval.op = Op::kEvaluate;
  eval.model = serve::fleet_model_spec(0, 2);
  eval.discount = 0.999;
  const SystemModel model = eval.model->compose();
  eval.policy.assign(model.num_states(),
                     std::vector<double>(model.num_commands(), 0.0));
  for (auto& row : eval.policy) row[0] = 1.0;
  eval.metrics = {"power", "queue_length"};
  lines.push_back(serve::format_request(eval));
  return lines;
}

// The reference answer for one line: a fresh single-session engine with
// no cache and no warm state — a pure cold solve.
std::string cold_reference(const std::string& line) {
  EngineOptions opts;
  opts.cache = false;
  PolicyEngine fresh(opts);
  return fresh.handle_line(line);
}

std::string response_body(const std::string& response) {
  const std::size_t at = response.find("\"status\"");
  EXPECT_NE(at, std::string::npos) << response;
  return response.substr(at);
}

// --- admission batching ----------------------------------------------

TEST(ServeConcurrency, ThreadedSubmitMatchesColdSolvesBitwise) {
  const std::vector<std::string> lines = fleet_lines();
  std::vector<std::string> want(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    want[i] = cold_reference(lines[i]);
  }

  for (const std::size_t threads : {1u, 4u}) {
    PolicyEngine engine{EngineOptions{}};
    std::vector<std::string> got(lines.size());
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = t; i < lines.size(); i += threads) {
          got[i] = engine.submit(lines[i]);
        }
      });
    }
    for (std::thread& th : pool) th.join();

    // Same bytes as a cold solve for every request, whether the engine
    // served it cold, warm-repaired it in a batch, or replayed it.
    for (std::size_t i = 0; i < lines.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "request " << i << " at " << threads
                                 << " threads";
    }

    const EngineCounters counters = engine.counters();
    EXPECT_EQ(counters.requests, lines.size());
    EXPECT_EQ(counters.rejections, 0u);
    EXPECT_EQ(counters.failures, 0u);
    EXPECT_EQ(counters.evaluations, 1u);
    // 8 solve requests over 2 structures: however they were batched,
    // every one either solved cold, warm-repaired, or hit the cache.
    EXPECT_EQ(counters.cold_solves + counters.near_hits + counters.exact_hits,
              lines.size() - 1);
    EXPECT_GE(counters.cold_solves, 1u);
  }
}

TEST(ServeConcurrency, BatchedAndSequentialCountersReconcileWithOdometer) {
  const std::vector<std::string> lines = fleet_lines();

  PolicyEngine engine{EngineOptions{}};
  const std::uint64_t pivots_before = lp::pivots_executed();
  std::vector<std::string> batched = engine.handle_batch(lines);
  const std::uint64_t pivots_spent = lp::pivots_executed() - pivots_before;

  // The engine's own accounting must explain every pivot the process
  // odometer saw while serving the batch.
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.cold_pivots + counters.repair_pivots, pivots_spent);
  EXPECT_GT(counters.cold_pivots, 0u);

  // Replaying the same batch is all exact hits: zero new pivots, same
  // bytes.
  const std::uint64_t replay_before = lp::pivots_executed();
  std::vector<std::string> replay = engine.handle_batch(lines);
  EXPECT_EQ(lp::pivots_executed() - replay_before, 0u);
  ASSERT_EQ(replay.size(), batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(replay[i], batched[i]) << "replay " << i;
  }

  // And the batch answers match sequential handle_line on a twin.
  PolicyEngine twin{EngineOptions{}};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(twin.handle_line(lines[i]), batched[i]) << "sequential " << i;
  }
}

// --- admission shedding ----------------------------------------------

TEST(ServeConcurrency, SubmitShedsAtInflightCapWithTypedResponse) {
  EngineOptions opts;
  opts.max_inflight = 1;
  opts.batch_window_us = 300000;  // hold the leader long enough to observe
  PolicyEngine engine(opts);

  const std::string solve = fleet_lines().front();
  std::string admitted;
  std::thread leader([&] { admitted = engine.submit(solve); });
  // Wait until the leader holds the only admission slot (it sits in the
  // batch window), then submit over the budget: a deterministic shed.
  for (int tries = 0; engine.inflight() == 0 && tries < 1000; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(engine.inflight(), 1u);

  const std::string shed = engine.submit(R"({"id":"shed-me","op":"stats"})");
  EXPECT_NE(shed.find("\"code\":\"overloaded\""), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"id\":\"shed-me\""), std::string::npos) << shed;
  EXPECT_NE(shed.find("max_inflight=1"), std::string::npos) << shed;

  leader.join();
  EXPECT_NE(admitted.find("\"status\":\"ok\""), std::string::npos) << admitted;
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.sheds, 1u);
  // A shed line is never parsed or processed: only the admitted request
  // is in the request count.
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(engine.inflight(), 0u);
}

TEST(ServeConcurrency, SubmitFloodShedsStayAccountableAndWellFormed) {
  EngineOptions opts;
  opts.max_inflight = 2;
  opts.batch_window_us = 100000;
  PolicyEngine engine(opts);

  const std::vector<std::string> lines = fleet_lines();
  constexpr std::size_t kThreads = 4;
  std::vector<std::string> responses(kThreads);
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      ++ready;
      while (ready.load() < kThreads) std::this_thread::yield();
      responses[t] = engine.submit(lines[t]);
    });
  }
  for (std::thread& th : pool) th.join();

  std::size_t overloaded = 0;
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("\"status\":"), std::string::npos) << response;
    if (response.find("\"code\":\"overloaded\"") != std::string::npos) {
      ++overloaded;
    } else {
      EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
          << response;
    }
  }
  // Four simultaneous submitters against a budget of two, with a batch
  // window holding the leader open: someone must have been shed, and
  // the counters must account for every line exactly once.
  EXPECT_GE(overloaded, 1u);
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.sheds, overloaded);
  EXPECT_EQ(counters.requests, kThreads - overloaded);
  EXPECT_EQ(engine.inflight(), 0u);
}

// --- sockets: N clients, one server ----------------------------------

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

std::string roundtrip(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  for (std::size_t sent = 0; sent < out.size();) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    EXPECT_GT(n, 0);
    if (n <= 0) return {};
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    EXPECT_GT(n, 0);
    if (n <= 0) return {};
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response.substr(0, response.find('\n'));
}

TEST(ServeConcurrency, SocketClientsGetColdSolveBytes) {
  const std::vector<std::string> lines = fleet_lines();
  std::vector<std::string> want(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    want[i] = cold_reference(lines[i]);
  }

  PolicyEngine engine{EngineOptions{}};
  PolicyServer server(engine, ServerOptions{});  // ephemeral port
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr std::size_t kClients = 3;
  std::vector<std::string> got(lines.size());
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      const int fd = connect_to(server.port());
      for (std::size_t i = t; i < lines.size(); i += kClients) {
        got[i] = roundtrip(fd, lines[i]);
      }
      ::close(fd);
    });
  }
  for (std::thread& th : clients) th.join();
  server.stop();
  EXPECT_FALSE(server.running());

  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "socket request " << i;
  }
  EXPECT_EQ(engine.counters().requests, lines.size());
}

TEST(ServeConcurrency, ConnectionChurnReapsWorkerThreads) {
  PolicyEngine engine{EngineOptions{}};
  PolicyServer server(engine, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Many short-lived connections: each worker deregisters itself on
  // disconnect and the acceptor joins the handle, so the server's
  // thread bookkeeping must drain back to zero instead of growing by
  // one dead thread per connection.
  constexpr std::size_t kConnections = 20;
  for (std::size_t i = 0; i < kConnections; ++i) {
    const int fd = connect_to(server.port());
    const std::string stats = roundtrip(fd, R"({"id":"s","op":"stats"})");
    EXPECT_NE(stats.find("\"status\":\"ok\""), std::string::npos) << stats;
    ::close(fd);
  }
  for (int tries = 0; server.live_connections() != 0 && tries < 500;
       ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.live_connections(), 0u);
  EXPECT_EQ(engine.counters().requests, kConnections);
  server.stop();
}

TEST(ServeConcurrency, ClientDisconnectMidResponseDoesNotKillTheServer) {
  PolicyEngine engine{EngineOptions{}};
  PolicyServer server(engine, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Clients that fire a burst of solve requests and walk away without
  // reading: the workers' response writes land on a closed socket
  // (RST/EPIPE).  Without MSG_NOSIGNAL that raised SIGPIPE, whose
  // default action terminated the whole daemon.
  const std::vector<std::string> lines = fleet_lines();
  for (int round = 0; round < 3; ++round) {
    const int fd = connect_to(server.port());
    std::string burst;
    for (const std::string& line : lines) {
      burst += line;
      burst.push_back('\n');
    }
    (void)::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL);
    ::close(fd);  // never reads the multi-KB responses
  }

  // The daemon must survive and keep serving fresh clients.
  const int fd = connect_to(server.port());
  const std::string stats = roundtrip(fd, R"({"id":"s","op":"stats"})");
  EXPECT_NE(stats.find("\"status\":\"ok\""), std::string::npos) << stats;
  ::close(fd);
  server.stop();
}

// Reads one response line without sending anything (the server-pushed
// shed line), then optionally confirms the server closed the socket.
std::string read_pushed_line(int fd) {
  std::string response;
  char buf[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    EXPECT_GT(n, 0) << "connection closed before a line arrived";
    if (n <= 0) return response;
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response.substr(0, response.find('\n'));
}

bool reads_eof(int fd) {
  char buf[64];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    return n == 0;
  }
}

// --- overload bugfixes: bounded buffers, accept cap, bind resolve -----

TEST(ServeConcurrency, OversizedLineIsRejectedAndConnectionDropped) {
  PolicyEngine engine{EngineOptions{}};
  ServerOptions options;
  options.max_line_bytes = 4096;
  PolicyServer server(engine, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // A newline-free flood: before the fix this grew the per-connection
  // buffer without bound; now it must answer a typed bad-request and
  // drop the connection once the cap is crossed.
  const int fd = connect_to(server.port());
  const std::string flood(8192, 'x');
  for (std::size_t sent = 0; sent < flood.size();) {
    const ssize_t n = ::send(fd, flood.data() + sent, flood.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // server may already have dropped us
    sent += static_cast<std::size_t>(n);
  }
  const std::string rejection = read_pushed_line(fd);
  EXPECT_NE(rejection.find("\"code\":\"bad-request\""), std::string::npos)
      << rejection;
  EXPECT_NE(rejection.find("line too long"), std::string::npos) << rejection;
  EXPECT_TRUE(reads_eof(fd));
  ::close(fd);
  EXPECT_EQ(engine.counters().rejections, 1u);

  // The daemon survives and keeps serving bounded lines.
  const int fresh = connect_to(server.port());
  const std::string stats = roundtrip(fresh, R"({"id":"s","op":"stats"})");
  EXPECT_NE(stats.find("\"status\":\"ok\""), std::string::npos) << stats;
  ::close(fresh);
  server.stop();
}

TEST(ServeConcurrency, AcceptCapShedsWithTypedOverloadedLine) {
  PolicyEngine engine{EngineOptions{}};
  ServerOptions options;
  options.max_connections = 2;
  PolicyServer server(engine, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Fill the cap with two live connections (the round trips guarantee
  // both workers are registered before the flood starts).
  const int held1 = connect_to(server.port());
  const int held2 = connect_to(server.port());
  EXPECT_NE(roundtrip(held1, R"({"id":"a","op":"stats"})").find("\"ok\""),
            std::string::npos);
  EXPECT_NE(roundtrip(held2, R"({"id":"b","op":"stats"})").find("\"ok\""),
            std::string::npos);

  // Connection churn past the cap: every extra connection gets the
  // static typed overloaded line and an immediate close, and the live
  // worker count never exceeds the cap.
  constexpr std::size_t kFlood = 10;
  for (std::size_t i = 0; i < kFlood; ++i) {
    const int fd = connect_to(server.port());
    const std::string shed = read_pushed_line(fd);
    EXPECT_NE(shed.find("\"code\":\"overloaded\""), std::string::npos) << shed;
    EXPECT_TRUE(reads_eof(fd));
    ::close(fd);
    EXPECT_LE(server.live_connections(), 2u);
  }
  EXPECT_EQ(server.shed_connections(), kFlood);
  EXPECT_EQ(engine.counters().conn_sheds, kFlood);

  // Freeing a slot re-admits: close one held connection, wait for the
  // acceptor to reap its worker, and the next connect is served.
  ::close(held1);
  for (int tries = 0; server.live_connections() > 1 && tries < 500; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_LE(server.live_connections(), 1u);
  const int readmitted = connect_to(server.port());
  const std::string stats =
      roundtrip(readmitted, R"({"id":"c","op":"stats"})");
  EXPECT_NE(stats.find("\"status\":\"ok\""), std::string::npos) << stats;
  ::close(readmitted);
  ::close(held2);
  server.stop();
}

TEST(ServeConcurrency, BindResolvesHostnamesAndRejectsUnresolvable) {
  // "localhost" must resolve like the client side does (getaddrinfo),
  // not fail inet_pton.
  PolicyEngine engine{EngineOptions{}};
  ServerOptions options;
  options.bind_address = "localhost";
  PolicyServer server(engine, options);
  std::string error;
  PolicyServer::StartFailure failure;
  ASSERT_TRUE(server.start(&error, &failure)) << error;
  EXPECT_EQ(failure, PolicyServer::StartFailure::kNone);
  EXPECT_GT(server.port(), 0);
  server.stop();

  // An unresolvable name is a typed start failure with a clear message
  // (dpmd maps kResolve to exit 2).
  ServerOptions bad;
  bad.bind_address = "no-such-host.invalid";
  PolicyServer broken(engine, bad);
  EXPECT_FALSE(broken.start(&error, &failure));
  EXPECT_EQ(failure, PolicyServer::StartFailure::kResolve);
  EXPECT_NE(error.find("no-such-host.invalid"), std::string::npos) << error;
}

TEST(ServeConcurrency, StopWithLiveConnectionsShutsDownCleanly) {
  PolicyEngine engine{EngineOptions{}};
  PolicyServer server(engine, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Idle connections that never send a full line: stop() must still
  // return (it shuts the sockets down) and stay idempotent.
  const int idle1 = connect_to(server.port());
  const int idle2 = connect_to(server.port());
  const std::string stats =
      roundtrip(idle1, R"({"id":"s","op":"stats"})");
  EXPECT_NE(stats.find("\"status\":\"ok\""), std::string::npos) << stats;

  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
  ::close(idle1);
  ::close(idle2);
}

}  // namespace
}  // namespace dpm
