// Scenario-engine tests: registry integrity, deterministic seed
// streams, --jobs invariance, closed-loop LP/evaluation/simulation
// agreement on the disk case study, the registry-wide smoke gate
// (every registered scenario runs its smoke grid and passes its
// expected-shape assertions), content-hash properties of the result
// cache keys, and the cache round-trip/poisoning contract.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "lp/problem.h"
#include "lp/revised_simplex.h"
#include "markov/sparse_chain.h"
#include "scenario/cache.h"
#include "scenario/registry.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "sim/hash.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace dpm {
namespace {

using scenario::ExperimentRunner;
using scenario::RunnerOptions;
using scenario::ScenarioRunResult;

RunnerOptions quiet_smoke(std::size_t jobs) {
  RunnerOptions opts;
  opts.jobs = jobs;
  opts.smoke = true;
  opts.print = false;
  opts.write_json = false;
  return opts;
}

TEST(ScenarioRegistry, BuiltinRegistrationIsIdempotentAndComplete) {
  scenario::register_builtin();
  const std::size_t count = scenario::all().size();
  scenario::register_builtin();  // second call must not duplicate
  EXPECT_EQ(scenario::all().size(), count);
  // The acceptance bar: every paper figure is a registered scenario.
  EXPECT_GE(count, 12u);
  for (const char* name :
       {"example_a2", "fig06_pareto", "fig08_disk", "fig09a_webserver",
        "fig09b_cpu", "fig10_nonstationary", "fig12a_sleepstates",
        "fig12b_transition", "fig13a_burstiness", "fig13b_memory",
        "fig14a_horizon", "fig14b_queue", "po1_duality",
        "ablation_determinize", "adaptive", "average_cost"}) {
    EXPECT_NE(scenario::find(name), nullptr) << name;
  }
  EXPECT_EQ(scenario::find("no_such_scenario"), nullptr);
  // Names are unique and every scenario expands to at least one unit.
  for (const auto& sc : scenario::all()) {
    std::size_t hits = 0;
    for (const auto& other : scenario::all()) {
      if (other.name == sc.name) ++hits;
    }
    EXPECT_EQ(hits, 1u) << sc.name;
    EXPECT_GE(sc.units(true).size(), 1u) << sc.name;
  }
}

TEST(ScenarioRegistry, DuplicateNamesAreRejected) {
  scenario::register_builtin();
  scenario::Scenario dup;
  dup.name = "example_a2";
  dup.units = [](bool) { return std::vector<scenario::Unit>{}; };
  EXPECT_THROW(scenario::add(std::move(dup)), std::invalid_argument);
}

TEST(SeedStreams, DerivedSeedsAreStableAndSplit) {
  // Pure function of (scope, index, salt)...
  EXPECT_EQ(sim::derive_seed("fig08_disk", 3), sim::derive_seed("fig08_disk", 3));
  // ...and distinct across every argument.
  EXPECT_NE(sim::derive_seed("fig08_disk", 3), sim::derive_seed("fig08_disk", 4));
  EXPECT_NE(sim::derive_seed("fig08_disk", 3), sim::derive_seed("fig09b_cpu", 3));
  EXPECT_NE(sim::derive_seed("fig08_disk", 3, 0),
            sim::derive_seed("fig08_disk", 3, 1));
}

// --jobs N must reproduce --jobs 1 exactly: records (the JSON content)
// and the published value store are bitwise identical.  fig09b_cpu
// exercises both the warm-started sweep and Monte Carlo units.
TEST(ExperimentRunner, JobsDoNotChangeResults) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("fig09b_cpu");
  ASSERT_NE(sc, nullptr);
  const ScenarioRunResult serial = ExperimentRunner(quiet_smoke(1)).run_one(*sc);
  const ScenarioRunResult parallel =
      ExperimentRunner(quiet_smoke(4)).run_one(*sc);
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].name, parallel.records[i].name);
    EXPECT_EQ(serial.records[i].iterations, parallel.records[i].iterations);
    EXPECT_EQ(serial.records[i].objective, parallel.records[i].objective)
        << serial.records[i].name;
  }
  EXPECT_EQ(serial.values, parallel.values);
  EXPECT_EQ(serial.failures, parallel.failures);
}

// Closed-loop agreement on the disk drive: the LP optimum, the exact
// discounted evaluation of its policy, and the Monte Carlo simulation
// must tell one consistent story.
TEST(ClosedLoop, DiskLpPolicyMatchesEvaluationAndSimulation) {
  const SystemModel m = cases::DiskDrive::make_model(/*seed=*/42);
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, cases::DiskDrive::make_config(m, gamma));
  const OptimizationResult r = opt.minimize_power(0.4, 0.05);
  ASSERT_TRUE(r.feasible);

  // Exact evaluation of the extracted policy reproduces the LP's own
  // objective and constraint accounting (tight tolerance: both are
  // closed-form in the same model).
  const PolicyEvaluation ev(m, *r.policy, gamma,
                            opt.config().initial_distribution);
  EXPECT_NEAR(ev.per_step(metrics::power(m)), r.objective_per_step, 1e-6);
  EXPECT_NEAR(ev.per_step(metrics::queue_length(m)), r.constraint_per_step[0],
              1e-6);
  EXPECT_NEAR(ev.per_step(metrics::request_loss(m)), r.constraint_per_step[1],
              1e-6);

  // Session-restart Monte Carlo converges to the same per-step values
  // (loose tolerance: sampling noise).
  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig cfg;
  cfg.slices = 400000;
  cfg.initial_state = {cases::DiskDrive::kActive, 0, 0};
  cfg.session_restart_prob = 1.0 - gamma;
  cfg.seed = sim::derive_seed("closed_loop_disk", 0);
  const sim::SimulationResult s = simulator.run(ctl, cfg);
  EXPECT_NEAR(s.avg_power, r.objective_per_step,
              0.08 * r.objective_per_step);
  EXPECT_NEAR(s.avg_queue_length, r.constraint_per_step[0],
              0.15 * r.constraint_per_step[0] + 0.02);
}

// The warm-started sweep and per-point cold solves agree on the curve
// (same optima), while the warm restarts spend far fewer pivots.
TEST(ClosedLoop, WarmStartedSweepMatchesColdSolves) {
  const SystemModel m = cases::DiskDrive::make_model(/*seed=*/42);
  const PolicyOptimizer opt(m, cases::DiskDrive::make_config(m, 0.999));
  const std::vector<double> bounds{0.2, 0.3, 0.4, 0.6};
  const auto curve = opt.sweep(metrics::power(m), metrics::queue_length(m),
                               "queue", bounds,
                               {{metrics::request_loss(m), 0.05, "loss"}});
  ASSERT_EQ(curve.size(), bounds.size());
  std::size_t warm_pivots = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const OptimizationResult cold = opt.minimize_power(bounds[i], 0.05);
    ASSERT_EQ(curve[i].feasible, cold.feasible) << bounds[i];
    if (cold.feasible) {
      EXPECT_NEAR(curve[i].objective, cold.objective_per_step, 1e-7);
      ASSERT_FALSE(curve[i].constraint_per_step.empty());
      // Swept constraint is reported last; fixed (loss) first.
      EXPECT_NEAR(curve[i].constraint_per_step.back(),
                  cold.constraint_per_step[0], 1e-7);
    }
    if (i > 0) warm_pivots += curve[i].lp_iterations;
  }
  // Warm restarts should beat the cold first solve per point by a wide
  // margin on this sweep (ROADMAP: ~10x fewer pivots).
  EXPECT_LT(warm_pivots / (bounds.size() - 1.0),
            0.5 * curve.front().lp_iterations);
}

// Registry-wide smoke gate: every registered scenario runs its smoke
// grid on two workers and passes its expected-shape assertions.
// This intentionally overlaps the per-scenario ctest registrations
// (smoke_scenario_*): the ctest side exercises the bench_scenarios CLI
// in Release, this side runs in-process so the Debug/ASan+UBSan preset
// sweeps the whole engine too.  Smoke grids are sized to keep the
// doubled coverage cheap (~0.15 s total in Release).
class ScenarioSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioSmoke, SmokeGridPassesShapeAssertions) {
  const scenario::Scenario* sc = scenario::find(GetParam());
  ASSERT_NE(sc, nullptr);
  const ScenarioRunResult res = ExperimentRunner(quiet_smoke(2)).run_one(*sc);
  EXPECT_GE(res.records.size(), 1u);
  for (const std::string& failure : res.failures) {
    ADD_FAILURE() << sc->name << ": " << failure;
  }
}

std::vector<std::string> registered_scenario_names() {
  scenario::register_builtin();
  std::vector<std::string> names;
  for (const auto& sc : scenario::all()) names.push_back(sc.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, ScenarioSmoke,
                         ::testing::ValuesIn(registered_scenario_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Content-hash properties (the result cache's key contract)
// ---------------------------------------------------------------------

// A two-state, one-command chain assembled three ways: sorted entries,
// reversed insertion order, and duplicated entries that sum to the same
// probabilities.  Construction canonicalizes, so all three must hash
// equal; a fourth chain moving one probability by 1e-4 must not.
TEST(ContentHash, CsrRowsHashCanonicallyAcrossInsertionOrder) {
  using markov::SparseControlledChain;
  using markov::TransitionRow;
  const auto digest_of = [](const SparseControlledChain& c) {
    sim::Fnv1a h;
    c.hash_into(h);
    return h.digest();
  };
  const auto make = [](TransitionRow row0) {
    std::vector<std::vector<TransitionRow>> rows(1);
    rows[0].push_back(std::move(row0));
    rows[0].push_back({{1, 1.0}});
    return SparseControlledChain(2, std::move(rows));
  };
  // Dyadic probabilities so the duplicate sum is bit-exact (the hash
  // canonicalizes *structure*, not floating-point roundoff).
  const std::uint64_t sorted = digest_of(make({{0, 0.25}, {1, 0.75}}));
  const std::uint64_t reversed = digest_of(make({{1, 0.75}, {0, 0.25}}));
  const std::uint64_t duplicated =
      digest_of(make({{1, 0.75}, {0, 0.125}, {0, 0.125}}));
  EXPECT_EQ(sorted, reversed);
  EXPECT_EQ(sorted, duplicated);
  const std::uint64_t perturbed =
      digest_of(make({{0, 0.2501}, {1, 0.7499}}));
  EXPECT_NE(sorted, perturbed);
}

// Every LP ingredient must reach the hash: a cost, an upper bound, a
// constraint coefficient, the rhs, and the sense each produce a
// distinct digest.
TEST(ContentHash, LpProblemPerturbationsChangeTheDigest) {
  const auto build = [](double cost0, double upper1, double coeff,
                        double rhs, lp::Sense sense) {
    lp::LpProblem p;
    p.add_variable(cost0);
    p.add_variable(2.0);
    p.set_upper_bound(1, upper1);
    p.add_constraint({{{0, coeff}, {1, 1.0}}, sense, rhs, ""});
    sim::Fnv1a h;
    p.hash_into(h);
    return h.digest();
  };
  std::set<std::uint64_t> digests;
  digests.insert(build(1.0, 5.0, 1.0, 1.0, lp::Sense::kEq));  // base
  digests.insert(build(1.5, 5.0, 1.0, 1.0, lp::Sense::kEq));  // cost
  digests.insert(build(1.0, 4.0, 1.0, 1.0, lp::Sense::kEq));  // bound
  digests.insert(build(1.0, 5.0, 2.0, 1.0, lp::Sense::kEq));  // coefficient
  digests.insert(build(1.0, 5.0, 1.0, 2.0, lp::Sense::kEq));  // rhs
  digests.insert(build(1.0, 5.0, 1.0, 1.0, lp::Sense::kLe));  // sense
  EXPECT_EQ(digests.size(), 6u);
}

// A minimal perturbable system model for unit_key probes: `wake_prob`
// moves one transition probability, `on_power` one cost entry.
SystemModel tiny_model(double wake_prob, double on_power) {
  ServiceProvider::Builder b(2, CommandSet({"s_on", "s_off"}));
  b.transition(0, 0, 0, 1.0);
  b.transition(0, 1, 0, wake_prob);
  b.transition(0, 1, 1, 1.0 - wake_prob);
  b.transition(1, 0, 1, 0.8);
  b.transition(1, 0, 0, 0.2);
  b.transition(1, 1, 1, 1.0);
  b.service_rate(0, 0, 0.8);
  b.power(0, 0, on_power);
  b.power(0, 1, 4.0);
  b.power(1, 0, 4.0);
  return SystemModel::compose(std::move(b).build(),
                              ServiceRequester::two_state(0.05, 0.15),
                              /*queue_capacity=*/1);
}

scenario::Scenario tiny_scenario(double wake_prob, double on_power,
                                 std::vector<double> bounds) {
  scenario::Scenario sc;
  sc.name = "__unit_key_probe";
  sc.title = "hash probe";
  sc.what = "content-hash property probe (never registered)";
  sc.units = [wake_prob, on_power, bounds](bool) {
    scenario::SweepSpec spec;
    spec.series = "probe";
    spec.model = [wake_prob, on_power] {
      return tiny_model(wake_prob, on_power);
    };
    spec.config = [](const SystemModel& m) {
      OptimizerConfig cfg;
      cfg.discount = 0.999;
      cfg.initial_distribution = m.point_distribution({0, 0, 0});
      return cfg;
    };
    spec.objective = [](const SystemModel& m) { return metrics::power(m); };
    spec.swept = [](const SystemModel& m) { return metrics::queue_length(m); };
    spec.swept_name = "queue";
    spec.bounds = bounds;
    spec.smoke_points = 0;
    std::vector<scenario::Unit> units;
    units.push_back(scenario::sweep_unit(std::move(spec)));
    return units;
  };
  return sc;
}

// The acceptance property of the tentpole: identical inputs key equal;
// any single perturbation — one transition probability, one power
// cost, one grid point, the schema version, the smoke flag — changes
// unit_key().
TEST(ContentHash, UnitKeySeparatesEveryInput) {
  const std::vector<double> grid{0.2, 0.4};
  const std::uint64_t base =
      tiny_scenario(0.1, 3.0, grid).unit_key(0, /*smoke=*/false);
  // Deterministic and reproducible across expansions.
  EXPECT_EQ(base, tiny_scenario(0.1, 3.0, grid).unit_key(0, false));

  std::set<std::uint64_t> keys;
  keys.insert(base);
  keys.insert(tiny_scenario(0.1001, 3.0, grid).unit_key(0, false));  // prob
  keys.insert(tiny_scenario(0.1, 3.0001, grid).unit_key(0, false));  // cost
  keys.insert(
      tiny_scenario(0.1, 3.0, {0.2, 0.41}).unit_key(0, false));  // grid point
  keys.insert(tiny_scenario(0.1, 3.0, grid).unit_key(0, true));  // smoke grid
  keys.insert(tiny_scenario(0.1, 3.0, grid)
                  .unit_key(0, false, scenario::kResultSchemaVersion + 1));
  EXPECT_EQ(keys.size(), 6u);
}

// ---------------------------------------------------------------------
// Result cache round trip
// ---------------------------------------------------------------------

RunnerOptions cached_smoke(const std::string& dir) {
  RunnerOptions opts;
  opts.jobs = 2;
  opts.smoke = true;
  opts.print = false;
  opts.write_json = false;
  opts.cache = true;
  opts.cache_dir = dir;
  return opts;
}

// Second run replays from the cache: byte-identical JSON, every unit
// cached, zero simplex pivots executed.
TEST(ResultCache, ReplayIsByteIdenticalAndRunsZeroPivots) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("example_a2");
  ASSERT_NE(sc, nullptr);
  const std::string dir =
      testing::TempDir() + "/dpmopt_cache_roundtrip";
  std::filesystem::remove_all(dir);

  const ScenarioRunResult cold =
      ExperimentRunner(cached_smoke(dir)).run_one(*sc);
  ASSERT_TRUE(cold.failures.empty());
  EXPECT_EQ(cold.units_cached, 0u);
  const std::string cold_json =
      scenario::json_report_string(sc->name, cold.records);

  const std::uint64_t pivots_before = lp::pivots_executed();
  const ScenarioRunResult warm =
      ExperimentRunner(cached_smoke(dir)).run_one(*sc);
  EXPECT_EQ(lp::pivots_executed(), pivots_before)
      << "a cached replay must execute zero simplex pivots";
  EXPECT_EQ(warm.units_cached, warm.units);
  EXPECT_TRUE(warm.failures.empty());
  EXPECT_EQ(scenario::json_report_string(sc->name, warm.records), cold_json);
  EXPECT_EQ(warm.values, cold.values);
}

// The process-wide simplex odometers (pivots_executed, sweep_telemetry)
// are relaxed atomics, and the runner's workers write stats only into
// per-unit slots — so a parallel run must leave the odometers monotone
// and mutually consistent (every sweep the units executed is accounted
// for, with no torn or lost updates).
TEST(ExperimentRunner, ParallelRunKeepsOdometersConsistent) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("example_a2");
  ASSERT_NE(sc, nullptr);
  const std::uint64_t pivots0 = lp::pivots_executed();
  const lp::SweepTelemetry t0 = lp::sweep_telemetry();
  const ScenarioRunResult res =
      ExperimentRunner(quiet_smoke(4)).run_one(*sc);
  ASSERT_TRUE(res.failures.empty());
  const std::uint64_t pivots1 = lp::pivots_executed();
  const lp::SweepTelemetry t1 = lp::sweep_telemetry();
  EXPECT_GT(pivots1, pivots0) << "the scenario solves LPs";
  const std::uint64_t sweeps =
      (t1.sparse_sweeps - t0.sparse_sweeps) +
      (t1.dense_sweeps - t0.dense_sweeps);
  EXPECT_GT(sweeps, 0u);
  EXPECT_GE(t1.sparse_sweeps, t0.sparse_sweeps);
  EXPECT_GE(t1.dense_sweeps, t0.dense_sweeps);
  EXPECT_GE(t1.touched_entries, t0.touched_entries);
  // Each sweep touches at least one entry on any nontrivial basis.
  EXPECT_GE(t1.touched_entries - t0.touched_entries, sweeps);
}

// Poisoning one cached record must be detected (payload checksum) and
// answered with a recompute of exactly that unit — results stay
// correct either way.
TEST(ResultCache, PoisonedRecordIsDetectedAndRecomputed) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("example_a2");
  ASSERT_NE(sc, nullptr);
  const std::string dir = testing::TempDir() + "/dpmopt_cache_poison";
  std::filesystem::remove_all(dir);

  const ScenarioRunResult cold =
      ExperimentRunner(cached_smoke(dir)).run_one(*sc);
  ASSERT_TRUE(cold.failures.empty());
  ASSERT_GE(cold.units, 2u);
  const std::string cold_json =
      scenario::json_report_string(sc->name, cold.records);

  // Flip one digit of the first cached objective value in place.
  const std::string cache_file = dir + "/cache.jsonl";
  std::ifstream in(cache_file);
  ASSERT_TRUE(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t pos = text.find("\"objective\":");
  ASSERT_NE(pos, std::string::npos);
  std::size_t digit = text.find_first_of("0123456789", pos);
  ASSERT_NE(digit, std::string::npos);
  text[digit] = text[digit] == '9' ? '1' : '9';
  {
    std::ofstream out(cache_file, std::ios::trunc);
    out << text;
  }

  const std::uint64_t pivots_before = lp::pivots_executed();
  const ScenarioRunResult warm =
      ExperimentRunner(cached_smoke(dir)).run_one(*sc);
  // Exactly the poisoned unit recomputed; every clean unit replayed.
  EXPECT_EQ(warm.units_cached, warm.units - 1);
  EXPECT_TRUE(warm.failures.empty());
  EXPECT_EQ(scenario::json_report_string(sc->name, warm.records), cold_json)
      << "recomputation must reproduce the cold results exactly";
  // The recompute may or may not touch the LP (the poisoned line could
  // be a simulation unit); what matters is that a *full* replay did
  // not happen when the poisoned unit was the LP one.  Either way the
  // next run is fully cached again (the store healed itself).
  (void)pivots_before;
  const ScenarioRunResult healed =
      ExperimentRunner(cached_smoke(dir)).run_one(*sc);
  EXPECT_EQ(healed.units_cached, healed.units);
}

}  // namespace
}  // namespace dpm
