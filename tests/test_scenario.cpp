// Scenario-engine tests: registry integrity, deterministic seed
// streams, --jobs invariance, closed-loop LP/evaluation/simulation
// agreement on the disk case study, and the registry-wide smoke gate
// (every registered scenario runs its smoke grid and passes its
// expected-shape assertions).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cases/disk_drive.h"
#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace dpm {
namespace {

using scenario::ExperimentRunner;
using scenario::RunnerOptions;
using scenario::ScenarioRunResult;

RunnerOptions quiet_smoke(std::size_t jobs) {
  RunnerOptions opts;
  opts.jobs = jobs;
  opts.smoke = true;
  opts.print = false;
  opts.write_json = false;
  return opts;
}

TEST(ScenarioRegistry, BuiltinRegistrationIsIdempotentAndComplete) {
  scenario::register_builtin();
  const std::size_t count = scenario::all().size();
  scenario::register_builtin();  // second call must not duplicate
  EXPECT_EQ(scenario::all().size(), count);
  // The acceptance bar: every paper figure is a registered scenario.
  EXPECT_GE(count, 12u);
  for (const char* name :
       {"example_a2", "fig06_pareto", "fig08_disk", "fig09a_webserver",
        "fig09b_cpu", "fig10_nonstationary", "fig12a_sleepstates",
        "fig12b_transition", "fig13a_burstiness", "fig13b_memory",
        "fig14a_horizon", "fig14b_queue", "po1_duality",
        "ablation_determinize", "adaptive", "average_cost"}) {
    EXPECT_NE(scenario::find(name), nullptr) << name;
  }
  EXPECT_EQ(scenario::find("no_such_scenario"), nullptr);
  // Names are unique and every scenario expands to at least one unit.
  for (const auto& sc : scenario::all()) {
    std::size_t hits = 0;
    for (const auto& other : scenario::all()) {
      if (other.name == sc.name) ++hits;
    }
    EXPECT_EQ(hits, 1u) << sc.name;
    EXPECT_GE(sc.units(true).size(), 1u) << sc.name;
  }
}

TEST(ScenarioRegistry, DuplicateNamesAreRejected) {
  scenario::register_builtin();
  scenario::Scenario dup;
  dup.name = "example_a2";
  dup.units = [](bool) { return std::vector<scenario::Unit>{}; };
  EXPECT_THROW(scenario::add(std::move(dup)), std::invalid_argument);
}

TEST(SeedStreams, DerivedSeedsAreStableAndSplit) {
  // Pure function of (scope, index, salt)...
  EXPECT_EQ(sim::derive_seed("fig08_disk", 3), sim::derive_seed("fig08_disk", 3));
  // ...and distinct across every argument.
  EXPECT_NE(sim::derive_seed("fig08_disk", 3), sim::derive_seed("fig08_disk", 4));
  EXPECT_NE(sim::derive_seed("fig08_disk", 3), sim::derive_seed("fig09b_cpu", 3));
  EXPECT_NE(sim::derive_seed("fig08_disk", 3, 0),
            sim::derive_seed("fig08_disk", 3, 1));
}

// --jobs N must reproduce --jobs 1 exactly: records (the JSON content)
// and the published value store are bitwise identical.  fig09b_cpu
// exercises both the warm-started sweep and Monte Carlo units.
TEST(ExperimentRunner, JobsDoNotChangeResults) {
  scenario::register_builtin();
  const scenario::Scenario* sc = scenario::find("fig09b_cpu");
  ASSERT_NE(sc, nullptr);
  const ScenarioRunResult serial = ExperimentRunner(quiet_smoke(1)).run_one(*sc);
  const ScenarioRunResult parallel =
      ExperimentRunner(quiet_smoke(4)).run_one(*sc);
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].name, parallel.records[i].name);
    EXPECT_EQ(serial.records[i].iterations, parallel.records[i].iterations);
    EXPECT_EQ(serial.records[i].objective, parallel.records[i].objective)
        << serial.records[i].name;
  }
  EXPECT_EQ(serial.values, parallel.values);
  EXPECT_EQ(serial.failures, parallel.failures);
}

// Closed-loop agreement on the disk drive: the LP optimum, the exact
// discounted evaluation of its policy, and the Monte Carlo simulation
// must tell one consistent story.
TEST(ClosedLoop, DiskLpPolicyMatchesEvaluationAndSimulation) {
  const SystemModel m = cases::DiskDrive::make_model(/*seed=*/42);
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, cases::DiskDrive::make_config(m, gamma));
  const OptimizationResult r = opt.minimize_power(0.4, 0.05);
  ASSERT_TRUE(r.feasible);

  // Exact evaluation of the extracted policy reproduces the LP's own
  // objective and constraint accounting (tight tolerance: both are
  // closed-form in the same model).
  const PolicyEvaluation ev(m, *r.policy, gamma,
                            opt.config().initial_distribution);
  EXPECT_NEAR(ev.per_step(metrics::power(m)), r.objective_per_step, 1e-6);
  EXPECT_NEAR(ev.per_step(metrics::queue_length(m)), r.constraint_per_step[0],
              1e-6);
  EXPECT_NEAR(ev.per_step(metrics::request_loss(m)), r.constraint_per_step[1],
              1e-6);

  // Session-restart Monte Carlo converges to the same per-step values
  // (loose tolerance: sampling noise).
  sim::Simulator simulator(m);
  sim::PolicyController ctl(m, *r.policy);
  sim::SimulationConfig cfg;
  cfg.slices = 400000;
  cfg.initial_state = {cases::DiskDrive::kActive, 0, 0};
  cfg.session_restart_prob = 1.0 - gamma;
  cfg.seed = sim::derive_seed("closed_loop_disk", 0);
  const sim::SimulationResult s = simulator.run(ctl, cfg);
  EXPECT_NEAR(s.avg_power, r.objective_per_step,
              0.08 * r.objective_per_step);
  EXPECT_NEAR(s.avg_queue_length, r.constraint_per_step[0],
              0.15 * r.constraint_per_step[0] + 0.02);
}

// The warm-started sweep and per-point cold solves agree on the curve
// (same optima), while the warm restarts spend far fewer pivots.
TEST(ClosedLoop, WarmStartedSweepMatchesColdSolves) {
  const SystemModel m = cases::DiskDrive::make_model(/*seed=*/42);
  const PolicyOptimizer opt(m, cases::DiskDrive::make_config(m, 0.999));
  const std::vector<double> bounds{0.2, 0.3, 0.4, 0.6};
  const auto curve = opt.sweep(metrics::power(m), metrics::queue_length(m),
                               "queue", bounds,
                               {{metrics::request_loss(m), 0.05, "loss"}});
  ASSERT_EQ(curve.size(), bounds.size());
  std::size_t warm_pivots = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const OptimizationResult cold = opt.minimize_power(bounds[i], 0.05);
    ASSERT_EQ(curve[i].feasible, cold.feasible) << bounds[i];
    if (cold.feasible) {
      EXPECT_NEAR(curve[i].objective, cold.objective_per_step, 1e-7);
      ASSERT_FALSE(curve[i].constraint_per_step.empty());
      // Swept constraint is reported last; fixed (loss) first.
      EXPECT_NEAR(curve[i].constraint_per_step.back(),
                  cold.constraint_per_step[0], 1e-7);
    }
    if (i > 0) warm_pivots += curve[i].lp_iterations;
  }
  // Warm restarts should beat the cold first solve per point by a wide
  // margin on this sweep (ROADMAP: ~10x fewer pivots).
  EXPECT_LT(warm_pivots / (bounds.size() - 1.0),
            0.5 * curve.front().lp_iterations);
}

// Registry-wide smoke gate: every registered scenario runs its smoke
// grid on two workers and passes its expected-shape assertions.
// This intentionally overlaps the per-scenario ctest registrations
// (smoke_scenario_*): the ctest side exercises the bench_scenarios CLI
// in Release, this side runs in-process so the Debug/ASan+UBSan preset
// sweeps the whole engine too.  Smoke grids are sized to keep the
// doubled coverage cheap (~0.15 s total in Release).
class ScenarioSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioSmoke, SmokeGridPassesShapeAssertions) {
  const scenario::Scenario* sc = scenario::find(GetParam());
  ASSERT_NE(sc, nullptr);
  const ScenarioRunResult res = ExperimentRunner(quiet_smoke(2)).run_one(*sc);
  EXPECT_GE(res.records.size(), 1u);
  for (const std::string& failure : res.failures) {
    ADD_FAILURE() << sc->name << ": " << failure;
  }
}

std::vector<std::string> registered_scenario_names() {
  scenario::register_builtin();
  std::vector<std::string> names;
  for (const auto& sc : scenario::all()) names.push_back(sc.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, ScenarioSmoke,
                         ::testing::ValuesIn(registered_scenario_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dpm
