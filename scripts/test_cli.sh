#!/usr/bin/env bash
# CLI contract tests for bench_scenarios, run as a ctest entry
# (cli_bench_scenarios).  Everything here is observable only at the
# process boundary — exit codes, stderr wording, on-disk artifacts — so
# it lives in a script instead of gtest:
#
#   1. unknown --exact name exits 2 and suggests near misses;
#   2. a valid run exits 0;
#   3. --cache: a second run replays every unit and the emitted
#      BENCH_<scenario>.json is byte-identical;
#   4. --compare is green against a baseline written from its own
#      output and exits nonzero on an injected objective drift.
#
#   scripts/test_cli.sh <path-to-bench_scenarios>
set -euo pipefail

bench="${1:?usage: test_cli.sh <path-to-bench_scenarios>}"
bench="$(readlink -f "${bench}")"

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
cd "${workdir}"

fail() {
  echo "test_cli: FAIL — $*" >&2
  exit 1
}

# --- 1. unknown --exact: exit 2 plus near-miss suggestions ------------
set +e
out="$("${bench}" --exact fig08_dsk 2>&1)"
code=$?
set -e
[[ "${code}" -eq 2 ]] || fail "--exact with a typo exited ${code}, want 2"
grep -q "did you mean: fig08_disk" <<<"${out}" ||
  fail "typo'd --exact did not suggest fig08_disk: ${out}"

set +e
out="$("${bench}" --exact totally_bogus --list 2>&1)"
code=$?
set -e
[[ "${code}" -eq 2 ]] || fail "--list --exact unknown exited ${code}, want 2"

# --- 2. a valid selection runs green ----------------------------------
"${bench}" --exact example_a2 --smoke --quiet >/dev/null ||
  fail "valid --exact smoke run failed"

# --- 3. cache round trip: byte-identical JSON, all units replayed -----
"${bench}" --exact example_a2 --quiet --cache --cache-dir cachedir \
  >first.out || fail "first cached run failed"
cp BENCH_example_a2.json first.json
"${bench}" --exact example_a2 --quiet --cache --cache-dir cachedir \
  >second.out || fail "second cached run failed"
cmp -s BENCH_example_a2.json first.json ||
  fail "cached replay changed BENCH_example_a2.json"
units="$(awk '/^example_a2 /{print $2}' second.out)"
cached="$(awk '/^example_a2 /{print $3}' second.out)"
[[ -n "${units}" && "${units}" == "${cached}" ]] ||
  fail "second run cached ${cached:-?}/${units:-?} units, want all"
# --no-cache wins over --cache.
"${bench}" --exact example_a2 --quiet --cache --no-cache --cache-dir x \
  >nocache.out || fail "--no-cache run failed"
grep -q "result cache on" nocache.out &&
  fail "--no-cache did not disable the cache"

# --- 4. --compare: green on own output, red on injected drift ---------
"${bench}" --exact example_a2 --quiet --baseline-out base >/dev/null ||
  fail "--baseline-out run failed"
"${bench}" --exact example_a2 --quiet --compare base >/dev/null ||
  fail "--compare against own baseline failed"
# Inject an objective drift far beyond every declared tolerance.
python3 - <<'EOF' 2>/dev/null || sed -i 's/"objective": /"objective": 1/' base/example_a2.json
import json, io
path = "base/example_a2.json"
doc = json.load(open(path))
doc["results"][0]["objective"] += 1.0
json.dump(doc, open(path, "w"))
EOF
set +e
"${bench}" --exact example_a2 --quiet --compare base >/dev/null 2>compare.err
code=$?
set -e
[[ "${code}" -ne 0 ]] || fail "--compare accepted an injected drift"
grep -q "drifted from the baseline" compare.err ||
  fail "--compare drift did not report: $(cat compare.err)"

echo "test_cli: OK"
