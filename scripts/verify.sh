#!/usr/bin/env bash
# One-shot verification.
#
#   scripts/verify.sh            # Release + Debug/ASan+UBSan, full suites
#   scripts/verify.sh --release  # Release only, full suite
#   scripts/verify.sh --quick    # Release only: unit tests + scenario
#                                # smokes (skips the solver-scaling bench
#                                # smokes and the sanitizer pass)
#   scripts/verify.sh --golden   # Release build, then only the golden-
#                                # baseline regression gate (smoke-run
#                                # the baselined scenarios and --compare
#                                # against tests/golden/)
#   scripts/verify.sh --perf-smoke
#                                # Release build, then assert the
#                                # hypersparse sweep path stays the
#                                # common case (>50% of triangular
#                                # sweeps) on the fig08 disk scenario
#
# Full mode is the tier-1 gate plus the sanitizer sweep; --quick is the
# edit-compile-check loop (every gtest suite plus one smoke run of every
# registered scenario with shape assertions on).  Every mode ends with
# the docs drift gate and the golden-baseline comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  shift
  echo "=== configure/build/test: preset '${preset}' ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)" "$@"
}

check_docs() {
  echo "=== docs drift gate ==="
  scripts/check_docs.sh build/bench_scenarios
}

check_golden() {
  echo "=== golden baselines (tests/golden vs a fresh smoke run) ==="
  # One scenario per baseline file; --compare fails on any drift.
  local args=()
  for f in tests/golden/*.json; do
    args+=(--exact "$(basename "${f}" .json)")
  done
  build/bench_scenarios --smoke --quiet "${args[@]}" --compare tests/golden
}

build_release() {
  echo "=== configure/build: preset 'release' ==="
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
}

check_perf_smoke() {
  echo "=== perf smoke: hypersparse sweep share on fig08_disk ==="
  # The Gilbert-Peierls reachability path must carry the majority of
  # triangular sweeps on the case-study LPs — if it stops firing (a
  # probe-gate or reach regression), sweeps silently fall back to dense
  # scans and the hypersparse machinery is dead weight.
  local out pct
  out="$(build/bench_scenarios --smoke --quiet --no-cache --telemetry \
           --exact fig08_disk)"
  echo "${out}" | grep '^telemetry:'
  pct="$(echo "${out}" | sed -n 's/.*sparse_pct=\([0-9.]*\).*/\1/p')"
  if [[ -z "${pct}" ]]; then
    echo "perf smoke: FAILED (no telemetry line in bench_scenarios output)"
    return 1
  fi
  if ! awk -v p="${pct}" 'BEGIN { exit !(p > 50.0) }'; then
    echo "perf smoke: FAILED (sparse sweep share ${pct}% <= 50%)"
    return 1
  fi
  echo "perf smoke: ok (sparse sweep share ${pct}%)"
}

case "${1:-}" in
  --quick)
    # Everything except the solver-scaling bench smokes (the scenario
    # smoke tests are named smoke_scenario_* / smoke_scenarios_list and
    # stay in).
    run_preset release -E '^smoke_bench_'
    check_docs
    check_golden
    ;;
  --release)
    run_preset release
    check_docs
    check_golden
    check_perf_smoke
    ;;
  --golden)
    build_release
    check_golden
    ;;
  --perf-smoke)
    build_release
    check_perf_smoke
    ;;
  *)
    run_preset release
    check_docs
    check_golden
    check_perf_smoke
    run_preset debug
    ;;
esac
echo "verify: done"
