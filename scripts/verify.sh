#!/usr/bin/env bash
# One-shot verification.
#
#   scripts/verify.sh            # Release + Debug/ASan+UBSan, full suites
#   scripts/verify.sh --release  # Release only, full suite
#   scripts/verify.sh --quick    # Release only: unit tests + scenario
#                                # smokes (skips the solver-scaling bench
#                                # smokes and the sanitizer pass)
#   scripts/verify.sh --golden   # Release build, then only the golden-
#                                # baseline regression gate (smoke-run
#                                # the baselined scenarios and --compare
#                                # against tests/golden/)
#   scripts/verify.sh --perf-smoke
#                                # Release build, then assert the
#                                # hypersparse sweep path stays the
#                                # common case (>50% of triangular
#                                # sweeps) on the fig08 disk scenario,
#                                # the dense-tail block carries >30% of
#                                # sweeps on a mid-size MDP LP with the
#                                # crash basis at least halving the cold
#                                # pivot count, and tiny instances keep
#                                # the block machinery off
#   scripts/verify.sh --fault-smoke
#                                # Release build, then the injected-
#                                # fault matrix: every probe site over
#                                # the full smoke registry must exit 0
#                                # with JSON byte-identical to a clean
#                                # run, --jobs 1 == --jobs 4 under
#                                # injection included
#   scripts/verify.sh --serve-smoke
#                                # Release build, then the dpmd serving
#                                # smoke: start the daemon, replay the
#                                # example transcript twice over TCP,
#                                # assert exit codes, an exact-hit ratio
#                                # > 0.5 on the replay pass, and a clean
#                                # SIGTERM shutdown
#
# Full mode is the tier-1 gate plus the sanitizer sweep and the fault
# matrix; --quick is the edit-compile-check loop (every gtest suite
# plus one smoke run of every registered scenario with shape assertions
# on).  Every mode ends with the docs and robustness drift gates and
# the golden-baseline comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  shift
  echo "=== configure/build/test: preset '${preset}' ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)" "$@"
}

check_docs() {
  echo "=== docs drift gate ==="
  scripts/check_docs.sh build/bench_scenarios
  echo "=== robustness drift gate ==="
  scripts/check_robust.sh
}

check_golden() {
  echo "=== golden baselines (tests/golden vs a fresh smoke run) ==="
  # One scenario per baseline file; --compare fails on any drift.
  local args=()
  for f in tests/golden/*.json; do
    args+=(--exact "$(basename "${f}" .json)")
  done
  build/bench_scenarios --smoke --quiet "${args[@]}" --compare tests/golden
}

build_release() {
  echo "=== configure/build: preset 'release' ==="
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
}

check_perf_smoke() {
  echo "=== perf smoke: hypersparse sweep share on fig08_disk ==="
  # The Gilbert-Peierls reachability path must carry the majority of
  # triangular sweeps on the case-study LPs — if it stops firing (a
  # probe-gate or reach regression), sweeps silently fall back to dense
  # scans and the hypersparse machinery is dead weight.
  local out pct
  out="$(build/bench_scenarios --smoke --quiet --no-cache --telemetry \
           --exact fig08_disk)"
  echo "${out}" | grep '^telemetry:'
  pct="$(echo "${out}" | sed -n 's/.*sparse_pct=\([0-9.]*\).*/\1/p')"
  if [[ -z "${pct}" ]]; then
    echo "perf smoke: FAILED (no telemetry line in bench_scenarios output)"
    return 1
  fi
  if ! awk -v p="${pct}" 'BEGIN { exit !(p > 50.0) }'; then
    echo "perf smoke: FAILED (sparse sweep share ${pct}% <= 50%)"
    return 1
  fi
  echo "perf smoke: ok (sparse sweep share ${pct}%)"

  echo "=== perf smoke: dense-tail block + crash-basis pivots (bench_lp_scale --tail-smoke) ==="
  # One deterministic mid-size MDP LP (n*na = 8000, fixed seed).  Four
  # gates, all on pivot/sweep *counts* — never wall-clock:
  #   1. the dense-block kernels must carry a real share of the sweeps
  #      (block share > 30%; the tail machinery firing at all);
  #   2. tiny instances must keep the block off (tiny_block_sweeps == 0
  #      — the n*na = 500 small-size regression guard);
  #   3. the crash basis must beat the cold solve by at least 2x in
  #      pivots (the policy-iteration seed actually helping);
  #   4. the cold pivot count must not regress past its recorded
  #      baseline + 2% (2108 pivots at the fixed seed).
  local tail cold_pivots crash_pivots block_pct tiny
  tail="$(build/bench_lp_scale --tail-smoke)"
  echo "${tail}"
  cold_pivots="$(echo "${tail}" | sed -n 's/.*cold_pivots=\([0-9]*\).*/\1/p')"
  crash_pivots="$(echo "${tail}" | sed -n 's/.*crash_pivots=\([0-9]*\).*/\1/p')"
  block_pct="$(echo "${tail}" | sed -n 's/.*block_pct=\([0-9.]*\).*/\1/p')"
  tiny="$(echo "${tail}" | sed -n 's/.*tiny_block_sweeps=\([0-9]*\).*/\1/p')"
  if [[ -z "${cold_pivots}" || -z "${crash_pivots}" || -z "${block_pct}" \
        || -z "${tiny}" ]]; then
    echo "perf smoke: FAILED (no tail-smoke line in bench_lp_scale output)"
    return 1
  fi
  if ! awk -v p="${block_pct}" 'BEGIN { exit !(p > 30.0) }'; then
    echo "perf smoke: FAILED (dense-block sweep share ${block_pct}% <= 30%)"
    return 1
  fi
  if [[ "${tiny}" != "0" ]]; then
    echo "perf smoke: FAILED (dense block engaged on a tiny instance: ${tiny} sweeps)"
    return 1
  fi
  if (( crash_pivots * 2 >= cold_pivots )); then
    echo "perf smoke: FAILED (crash ${crash_pivots} pivots not 2x under cold ${cold_pivots})"
    return 1
  fi
  if (( cold_pivots > 2150 )); then
    echo "perf smoke: FAILED (cold pivot count ${cold_pivots} > baseline 2108 + 2%)"
    return 1
  fi
  echo "perf smoke: ok (block share ${block_pct}%, crash ${crash_pivots} vs cold ${cold_pivots} pivots)"
}

check_serve_smoke() {
  echo "=== serve smoke: dpmd replay, cache hits, overload sheds, clean shutdown ==="
  scripts/test_serve_cli.sh build/dpmd build/bench_serve_load
}

check_fault_smoke() {
  echo "=== fault smoke: injected-fault matrix over the smoke registry ==="
  # Acceptance bar from docs/robustness.md: under every single-fault
  # plan the run exits 0 (structured recovery, no crash) and the
  # emitted JSON is byte-identical to a fault-free run — the supervisor
  # and the runner's bounded retry absorb every injected fault without
  # changing a single answer.
  local out
  out="$(mktemp -d)"
  trap 'rm -rf "${out}"' RETURN
  build/bench_scenarios --smoke --quiet --no-cache \
    --baseline-out "${out}/clean" > /dev/null
  local site
  for site in lu-factorize ft-update ftran btran warm-basis cholesky \
              cache-line deadline; do
    build/bench_scenarios --smoke --quiet --no-cache \
      --fault-inject "${site}" --unit-retries 2 \
      --baseline-out "${out}/${site}" > /dev/null
    if ! diff -rq "${out}/clean" "${out}/${site}" > /dev/null; then
      echo "fault smoke: FAILED (--fault-inject ${site}: JSON differs from the clean run)"
      diff -rq "${out}/clean" "${out}/${site}" || true
      return 1
    fi
    echo "fault smoke: ${site} ok (exit 0, JSON byte-identical)"
  done
  # Determinism under injection: --jobs 4 must reproduce --jobs 1.
  build/bench_scenarios --smoke --quiet --no-cache --jobs 4 \
    --fault-inject ftran --unit-retries 2 \
    --baseline-out "${out}/jobs4" > /dev/null
  if ! diff -rq "${out}/ftran" "${out}/jobs4" > /dev/null; then
    echo "fault smoke: FAILED (--jobs 4 differs from --jobs 1 under injection)"
    return 1
  fi
  echo "fault smoke: ok (8 sites recovered byte-identically, --jobs invariant)"
}

case "${1:-}" in
  --quick)
    # Everything except the solver-scaling bench smokes (the scenario
    # smoke tests are named smoke_scenario_* / smoke_scenarios_list and
    # stay in).
    run_preset release -E '^smoke_bench_'
    check_docs
    check_golden
    ;;
  --release)
    run_preset release
    check_docs
    check_golden
    check_perf_smoke
    ;;
  --golden)
    build_release
    check_golden
    ;;
  --perf-smoke)
    build_release
    check_perf_smoke
    ;;
  --fault-smoke)
    build_release
    check_fault_smoke
    ;;
  --serve-smoke)
    build_release
    check_serve_smoke
    ;;
  *)
    run_preset release
    check_docs
    check_golden
    check_perf_smoke
    check_fault_smoke
    check_serve_smoke
    run_preset debug
    ;;
esac
echo "verify: done"
