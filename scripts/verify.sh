#!/usr/bin/env bash
# One-shot verification: Release build + full test suite (including the
# `bench`-labelled smoke runs), then the Debug/ASan+UBSan preset with the
# same suite.  This is the tier-1 gate plus the sanitizer sweep in one
# command:
#
#   scripts/verify.sh            # release + debug/asan
#   scripts/verify.sh --release  # release only (fast path)
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "=== configure/build/test: preset '${preset}' ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
}

run_preset release
if [[ "${1:-}" != "--release" ]]; then
  run_preset debug
fi
echo "verify: all presets green"
