#!/usr/bin/env bash
# One-shot verification.
#
#   scripts/verify.sh            # Release + Debug/ASan+UBSan, full suites
#   scripts/verify.sh --release  # Release only, full suite
#   scripts/verify.sh --quick    # Release only: unit tests + scenario
#                                # smokes (skips the solver-scaling bench
#                                # smokes and the sanitizer pass)
#   scripts/verify.sh --golden   # Release build, then only the golden-
#                                # baseline regression gate (smoke-run
#                                # the baselined scenarios and --compare
#                                # against tests/golden/)
#
# Full mode is the tier-1 gate plus the sanitizer sweep; --quick is the
# edit-compile-check loop (every gtest suite plus one smoke run of every
# registered scenario with shape assertions on).  Every mode ends with
# the docs drift gate and the golden-baseline comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  shift
  echo "=== configure/build/test: preset '${preset}' ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)" "$@"
}

check_docs() {
  echo "=== docs drift gate ==="
  scripts/check_docs.sh build/bench_scenarios
}

check_golden() {
  echo "=== golden baselines (tests/golden vs a fresh smoke run) ==="
  # One scenario per baseline file; --compare fails on any drift.
  local args=()
  for f in tests/golden/*.json; do
    args+=(--exact "$(basename "${f}" .json)")
  done
  build/bench_scenarios --smoke --quiet "${args[@]}" --compare tests/golden
}

build_release() {
  echo "=== configure/build: preset 'release' ==="
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
}

case "${1:-}" in
  --quick)
    # Everything except the solver-scaling bench smokes (the scenario
    # smoke tests are named smoke_scenario_* / smoke_scenarios_list and
    # stay in).
    run_preset release -E '^smoke_bench_'
    check_docs
    check_golden
    ;;
  --release)
    run_preset release
    check_docs
    check_golden
    ;;
  --golden)
    build_release
    check_golden
    ;;
  *)
    run_preset release
    check_docs
    check_golden
    run_preset debug
    ;;
esac
echo "verify: done"
