#!/usr/bin/env bash
# Documentation drift gate, run by scripts/verify.sh.
#
#   scripts/check_docs.sh <path-to-bench_scenarios>
#
# Five checks:
#   1. The scenario table in src/scenario/README.md lists exactly the
#      scenarios `bench_scenarios --list` reports (both directions).
#   2. Every repo-relative file or directory referenced from docs/*.md
#      and the per-subsystem src/*/README.md files (markdown links and
#      backticked src/... paths) exists.
#   3. The golden-baseline list in docs/bench-format.md matches the
#      files present under tests/golden/ (both directions), so the
#      documented regeneration procedure always names the real set.
#   4. The solver README documents every SimplexStats counter by name,
#      so instrumentation added to the solver cannot ship undocumented.
#   5. docs/serving.md documents every dpmd wire op and every
#      EngineCounters telemetry field by name, so the serving protocol
#      and its counters cannot drift undocumented.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_scenarios="${1:-build/bench_scenarios}"
if [[ ! -x "${bench_scenarios}" ]]; then
  echo "check_docs: bench_scenarios binary not found at ${bench_scenarios}" >&2
  echo "check_docs: build first, or pass the path as argument 1" >&2
  exit 2
fi

fail=0

# --- 1. scenario table vs registry -----------------------------------
# README rows look like:  | `name` | description |
readme_names="$(sed -n 's/^| `\([a-z0-9_]*\)` |.*/\1/p' src/scenario/README.md | sort)"
# --list output: "name  units  description" rows after the header line.
registry_names="$("${bench_scenarios}" --list | awk 'NR > 1 && NF > 1 {print $1}' | sort)"

if [[ -z "${readme_names}" ]]; then
  echo "check_docs: FAIL — no scenario rows found in src/scenario/README.md" >&2
  fail=1
fi
missing_in_readme="$(comm -13 <(echo "${readme_names}") <(echo "${registry_names}"))"
missing_in_registry="$(comm -23 <(echo "${readme_names}") <(echo "${registry_names}"))"
if [[ -n "${missing_in_readme}" ]]; then
  echo "check_docs: FAIL — registered scenarios missing from src/scenario/README.md:" >&2
  echo "${missing_in_readme}" | sed 's/^/  /' >&2
  fail=1
fi
if [[ -n "${missing_in_registry}" ]]; then
  echo "check_docs: FAIL — src/scenario/README.md lists unregistered scenarios:" >&2
  echo "${missing_in_registry}" | sed 's/^/  /' >&2
  fail=1
fi

# --- 2. files referenced from docs/ and src/*/README.md exist --------
for doc in docs/*.md src/*/README.md; do
  # Markdown link targets: strip any #fragment, drop external URLs and
  # pure in-page anchors.
  targets="$(grep -o '](\([^)]*\))' "${doc}" | sed 's/^](//; s/)$//; s/#.*//' |
             grep -v '^[a-z]*://' | grep -v '^$' || true)"
  # Backticked repo paths like `src/lp/README.md` or `bench/bench_lp_scale.cpp`.
  targets+=$'\n'"$(grep -o '`\(src\|bench\|tests\|docs\|scripts\|examples\)/[A-Za-z0-9_./-]*`' "${doc}" |
                   tr -d '\`' || true)"
  while IFS= read -r target; do
    [[ -z "${target}" ]] && continue
    # Resolve relative to the doc's directory, then repo root.
    if [[ ! -e "docs/${target}" && ! -e "${target}" ]]; then
      echo "check_docs: FAIL — ${doc} references missing file: ${target}" >&2
      fail=1
    fi
  done <<< "${targets}"
done

# --- 3. golden-scenario list vs tests/golden/ ------------------------
# `|| true` keeps set -e from killing the script before the FAIL
# diagnostics below can explain what drifted.
documented_golden="$(grep -o 'tests/golden/[A-Za-z0-9_]*\.json' \
                       docs/bench-format.md 2>/dev/null |
                     sed 's#tests/golden/##' | sort -u || true)"
present_golden="$( (cd tests/golden 2>/dev/null && ls -- *.json 2>/dev/null) |
                  sort -u || true)"
if [[ -z "${documented_golden}" ]]; then
  echo "check_docs: FAIL — docs/bench-format.md lists no golden baselines" >&2
  fail=1
fi
missing_in_docs="$(comm -13 <(echo "${documented_golden}") \
                            <(echo "${present_golden}"))"
missing_on_disk="$(comm -23 <(echo "${documented_golden}") \
                            <(echo "${present_golden}"))"
if [[ -n "${missing_in_docs}" ]]; then
  echo "check_docs: FAIL — golden files missing from docs/bench-format.md:" >&2
  echo "${missing_in_docs}" | sed 's/^/  /' >&2
  fail=1
fi
if [[ -n "${missing_on_disk}" ]]; then
  echo "check_docs: FAIL — docs/bench-format.md lists absent golden files:" >&2
  echo "${missing_on_disk}" | sed 's/^/  /' >&2
  fail=1
fi

# --- 4. SimplexStats counters are documented -------------------------
# Field names straight from the struct; each must appear in the solver
# README (plain or inside a backticked group like `sweep_ms`).
stats_fields="$(sed -n '/^struct SimplexStats/,/^};/p' src/lp/revised_simplex.h |
                grep -o '^  [a-z:]*[a-z_0-9<> ]* [a-z_0-9]* =' |
                awk '{print $(NF-1)}' || true)"
if [[ -z "${stats_fields}" ]]; then
  echo "check_docs: FAIL — could not parse SimplexStats fields from src/lp/revised_simplex.h" >&2
  fail=1
fi
while IFS= read -r field; do
  [[ -z "${field}" ]] && continue
  if ! grep -q "${field}" src/lp/README.md; then
    echo "check_docs: FAIL — SimplexStats::${field} is not documented in src/lp/README.md" >&2
    fail=1
  fi
done <<< "${stats_fields}"

# --- 5. dpmd ops and serve telemetry counters are documented ---------
# Op wire names from the protocol table in src/serve/protocol.cpp and
# counter fields from the EngineCounters struct; each must appear in
# docs/serving.md (in backticks or table rows).
serve_ops="$(sed -n '/^enum class Op/,/^};/p' src/serve/protocol.h |
             grep -o 'k[A-Z][A-Za-z]*' |
             sed 's/^k//' | tr '[:upper:]' '[:lower:]' || true)"
if [[ -z "${serve_ops}" ]]; then
  echo "check_docs: FAIL — could not parse Op values from src/serve/protocol.h" >&2
  fail=1
fi
while IFS= read -r op; do
  [[ -z "${op}" ]] && continue
  if ! grep -q "\`${op}\`" docs/serving.md; then
    echo "check_docs: FAIL — dpmd op \`${op}\` is not documented in docs/serving.md" >&2
    fail=1
  fi
done <<< "${serve_ops}"

serve_counters="$(sed -n '/^struct EngineCounters/,/^};/p' src/serve/engine.h |
                  grep -o '^  [a-z:]*[a-z_0-9<> ]* [a-z_0-9]* =' |
                  awk '{print $(NF-1)}' || true)"
if [[ -z "${serve_counters}" ]]; then
  echo "check_docs: FAIL — could not parse EngineCounters fields from src/serve/engine.h" >&2
  fail=1
fi
while IFS= read -r field; do
  [[ -z "${field}" ]] && continue
  if ! grep -q "${field}" docs/serving.md; then
    echo "check_docs: FAIL — EngineCounters::${field} is not documented in docs/serving.md" >&2
    fail=1
  fi
done <<< "${serve_counters}"

if [[ "${fail}" -ne 0 ]]; then
  exit 1
fi
echo "check_docs: OK (scenario table in sync, doc references exist, golden list in sync, SimplexStats documented, serving protocol documented)"
