#!/usr/bin/env bash
# End-to-end smoke for the dpmd serving daemon, run as a ctest entry
# (cli_dpmd_serve) and by scripts/verify.sh --serve-smoke.  Everything
# here is observable only at the process boundary — exit codes, stdout
# banners, response bytes on a real socket — so it lives in a script:
#
#   1. dpmd binds an ephemeral port and prints the listening banner;
#   2. replaying the canned example transcript answers every request
#      with exit 0 and no error/failed statuses;
#   3. a second replay is served from the response cache: byte-identical
#      non-stats responses and an exact-hit ratio > 0.5 for the pass;
#   4. SIGTERM shuts the server down cleanly (exit 0, "shutdown clean",
#      cache flushed to disk);
#   5. an unresolvable --bind is a usage error (exit 2);
#   6. overload: a daemon with tiny caps rejects an oversized line with
#      a typed bad-request, sheds a connection flood past
#      --max-connections with typed overloaded lines while staying
#      responsive, and still shuts down cleanly on SIGTERM;
#   7. (when a bench_serve_load path is given) the open-loop driver at
#      0.5x/1x/2x saturation against a --max-inflight 2 daemon: typed
#      request sheds, bounded admitted p99, stats round-trips under
#      load — the driver exits nonzero if any of that fails.
#
#   scripts/test_serve_cli.sh <path-to-dpmd> [<path-to-bench_serve_load>]
set -euo pipefail

dpmd="${1:?usage: test_serve_cli.sh <path-to-dpmd> [<path-to-bench_serve_load>]}"
dpmd="$(readlink -f "${dpmd}")"
loadgen="${2:-}"
[[ -n "${loadgen}" ]] && loadgen="$(readlink -f "${loadgen}")"

workdir="$(mktemp -d)"
server_pid=""
server2_pid=""
cleanup() {
  [[ -n "${server_pid}" ]] && kill -KILL "${server_pid}" 2>/dev/null || true
  [[ -n "${server2_pid}" ]] && kill -KILL "${server2_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT
cd "${workdir}"

fail() {
  echo "test_serve_cli: FAIL — $*" >&2
  [[ -f server.out ]] && sed 's/^/  server: /' server.out >&2
  exit 1
}

# --- 1. start the server on an ephemeral port -------------------------
"${dpmd}" --print-example-transcript > transcript.txt ||
  fail "--print-example-transcript failed"
requests="$(wc -l < transcript.txt)"
[[ "${requests}" -ge 10 ]] ||
  fail "example transcript has ${requests} lines, want >= 10"

"${dpmd}" --port 0 --cache-dir cachedir > server.out 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^dpmd: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
            server.out)"
  [[ -n "${port}" ]] && break
  kill -0 "${server_pid}" 2>/dev/null || fail "server exited before binding"
  sleep 0.05
done
[[ -n "${port}" ]] || fail "no listening banner within 5s"

# --- 2. first pass: every request answered, none rejected -------------
"${dpmd}" --connect "127.0.0.1:${port}" --transcript transcript.txt \
  > pass1.out || fail "first transcript replay exited nonzero"
answers="$(wc -l < pass1.out)"
[[ "${answers}" -eq "${requests}" ]] ||
  fail "first pass answered ${answers}/${requests} requests"
grep -q '"status":"error"' pass1.out &&
  fail "first pass rejected a canned request: $(grep '"status":"error"' pass1.out | head -1)"
grep -q '"status":"failed"' pass1.out &&
  fail "first pass failed a solve: $(grep '"status":"failed"' pass1.out | head -1)"

# --- 3. second pass: cache replay, exact-hit ratio > 0.5 --------------
"${dpmd}" --connect "127.0.0.1:${port}" --transcript transcript.txt \
  > pass2.out || fail "second transcript replay exited nonzero"

# Non-stats responses must replay byte-identically (the stats line is
# the one legitimately request-count-dependent response).
grep -v '"counters"' pass1.out > pass1.cmp
grep -v '"counters"' pass2.out > pass2.cmp
cmp -s pass1.cmp pass2.cmp ||
  fail "second pass responses are not byte-identical to the first"

hits1="$(grep -o '"exact_hits":[0-9]*' pass1.out | tail -1 | cut -d: -f2)"
hits2="$(grep -o '"exact_hits":[0-9]*' pass2.out | tail -1 | cut -d: -f2)"
[[ -n "${hits1}" && -n "${hits2}" ]] ||
  fail "stats responses carry no exact_hits counter"
pass_hits=$(( hits2 - hits1 ))
# The stats request itself is never cached; everything else can hit.
if (( 2 * pass_hits <= requests )); then
  fail "second-pass exact-hit ratio ${pass_hits}/${requests} is not > 0.5"
fi

# --- 4. SIGTERM: clean shutdown, cache flushed ------------------------
kill -TERM "${server_pid}"
server_exit=0
wait "${server_pid}" || server_exit=$?
server_pid=""
[[ "${server_exit}" -eq 0 ]] ||
  fail "server exited ${server_exit} on SIGTERM, want 0"
grep -q '^dpmd: shutdown clean$' server.out ||
  fail "server did not print the clean-shutdown banner"
ls cachedir/* >/dev/null 2>&1 ||
  fail "no response cache flushed to cachedir on shutdown"

# --- 5. unresolvable --bind is a usage error (exit 2) -----------------
bind_exit=0
"${dpmd}" --bind no-such-host.invalid --port 0 > bind.out 2>&1 || bind_exit=$?
[[ "${bind_exit}" -eq 2 ]] ||
  fail "--bind no-such-host.invalid exited ${bind_exit}, want 2"
grep -q 'no-such-host.invalid' bind.out ||
  fail "--bind failure message does not name the bad address"

# --- 6. overload: bounded line, connection-flood sheds, clean stop ----
"${dpmd}" --port 0 --no-cache --max-connections 1 --max-line-bytes 512 \
  > server2.out 2>&1 &
server2_pid=$!
port2=""
for _ in $(seq 1 100); do
  port2="$(sed -n 's/^dpmd: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
             server2.out)"
  [[ -n "${port2}" ]] && break
  kill -0 "${server2_pid}" 2>/dev/null ||
    fail "overload server exited before binding"
  sleep 0.05
done
[[ -n "${port2}" ]] || fail "no overload-server banner within 5s"

# 6a. a newline-free oversized line: typed bad-request, connection drop.
exec 5<>"/dev/tcp/127.0.0.1/${port2}" ||
  fail "cannot connect for the oversized-line check"
head -c 600 /dev/zero | tr '\0' 'x' >&5
oversize=""
IFS= read -r -t 5 oversize <&5 ||
  fail "oversized line got no response before the drop"
[[ "${oversize}" == *'"code":"bad-request"'* &&
   "${oversize}" == *'line too long'* ]] ||
  fail "expected typed line-too-long rejection, got: ${oversize}"
exec 5<&- || true
exec 5>&- || true

# 6b. hold the single admitted connection, then flood past the cap:
# every extra connection must get the static typed overloaded line.
# The dropped oversized connection's worker may not be reaped yet, so
# retry until the acceptor has a free slot.
held=""
for _ in $(seq 1 50); do
  exec 3<>"/dev/tcp/127.0.0.1/${port2}" || fail "cannot open held connection"
  printf '{"id":"hold","op":"stats"}\n' >&3
  IFS= read -r -t 5 held <&3 || fail "held connection got no stats response"
  [[ "${held}" == *'"status":"ok"'* ]] && break
  exec 3<&- || true
  exec 3>&- || true
  sleep 0.1
done
[[ "${held}" == *'"status":"ok"'* ]] ||
  fail "held connection never admitted after the oversized drop: ${held}"
flood=5
for i in $(seq 1 "${flood}"); do
  exec 4<>"/dev/tcp/127.0.0.1/${port2}" ||
    fail "flood connection ${i} failed to connect"
  shed=""
  IFS= read -r -t 5 shed <&4 ||
    fail "flood connection ${i} got no shed line"
  [[ "${shed}" == *'"code":"overloaded"'* ]] ||
    fail "flood connection ${i}: expected typed overloaded, got: ${shed}"
  exec 4<&- || true
  exec 4>&- || true
done

# 6c. the daemon is still responsive and accounts for every shed (the
# held-connection retries above may have shed too, so compare deltas).
sheds_before="$(grep -o '"conn_sheds":[0-9]*' <<<"${held}" | cut -d: -f2)"
printf '{"id":"after","op":"stats"}\n' >&3
IFS= read -r -t 5 stats2 <&3 || fail "stats after flood got no response"
sheds_after="$(grep -o '"conn_sheds":[0-9]*' <<<"${stats2}" | cut -d: -f2)"
[[ -n "${sheds_before}" && -n "${sheds_after}" ]] ||
  fail "stats responses carry no conn_sheds counter: ${stats2}"
(( sheds_after - sheds_before == flood )) ||
  fail "flood of ${flood} shed $((sheds_after - sheds_before)) connections: ${stats2}"
[[ "${stats2}" == *'"rejections":1'* ]] ||
  fail "stats after flood does not count the oversized line: ${stats2}"
exec 3<&- || true
exec 3>&- || true

kill -TERM "${server2_pid}"
server2_exit=0
wait "${server2_pid}" || server2_exit=$?
server2_pid=""
[[ "${server2_exit}" -eq 0 ]] ||
  fail "overload server exited ${server2_exit} on SIGTERM, want 0"
grep -q '^dpmd: shutdown clean$' server2.out ||
  fail "overload server did not print the clean-shutdown banner"

# --- 7. open-loop load driver at 0.5x/1x/2x saturation ----------------
if [[ -n "${loadgen}" ]]; then
  "${dpmd}" --port 0 --no-cache --max-inflight 2 > server3.out 2>&1 &
  server2_pid=$!
  port3=""
  for _ in $(seq 1 100); do
    port3="$(sed -n 's/^dpmd: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
               server3.out)"
    [[ -n "${port3}" ]] && break
    kill -0 "${server2_pid}" 2>/dev/null ||
      fail "loadgen server exited before binding"
    sleep 0.05
  done
  [[ -n "${port3}" ]] || fail "no loadgen-server banner within 5s"

  "${loadgen}" --smoke --connect "127.0.0.1:${port3}" --expect-sheds \
    --duration-ms 300 > loadgen.out 2>&1 ||
    fail "bench_serve_load failed: $(tail -5 loadgen.out)"
  grep -q 'all load-level checks passed' loadgen.out ||
    fail "load driver did not report a passing verdict"

  kill -TERM "${server2_pid}"
  server3_exit=0
  wait "${server2_pid}" || server3_exit=$?
  server2_pid=""
  [[ "${server3_exit}" -eq 0 ]] ||
    fail "loadgen server exited ${server3_exit} on SIGTERM, want 0"
  grep -q '^dpmd: shutdown clean$' server3.out ||
    fail "loadgen server did not print the clean-shutdown banner"
fi

echo "test_serve_cli: OK (${requests} requests, ${pass_hits} exact hits on replay, ${flood} connection sheds)"
