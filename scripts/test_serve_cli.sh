#!/usr/bin/env bash
# End-to-end smoke for the dpmd serving daemon, run as a ctest entry
# (cli_dpmd_serve) and by scripts/verify.sh --serve-smoke.  Everything
# here is observable only at the process boundary — exit codes, stdout
# banners, response bytes on a real socket — so it lives in a script:
#
#   1. dpmd binds an ephemeral port and prints the listening banner;
#   2. replaying the canned example transcript answers every request
#      with exit 0 and no error/failed statuses;
#   3. a second replay is served from the response cache: byte-identical
#      non-stats responses and an exact-hit ratio > 0.5 for the pass;
#   4. SIGTERM shuts the server down cleanly (exit 0, "shutdown clean",
#      cache flushed to disk).
#
#   scripts/test_serve_cli.sh <path-to-dpmd>
set -euo pipefail

dpmd="${1:?usage: test_serve_cli.sh <path-to-dpmd>}"
dpmd="$(readlink -f "${dpmd}")"

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "${server_pid}" ]] && kill -KILL "${server_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT
cd "${workdir}"

fail() {
  echo "test_serve_cli: FAIL — $*" >&2
  [[ -f server.out ]] && sed 's/^/  server: /' server.out >&2
  exit 1
}

# --- 1. start the server on an ephemeral port -------------------------
"${dpmd}" --print-example-transcript > transcript.txt ||
  fail "--print-example-transcript failed"
requests="$(wc -l < transcript.txt)"
[[ "${requests}" -ge 10 ]] ||
  fail "example transcript has ${requests} lines, want >= 10"

"${dpmd}" --port 0 --cache-dir cachedir > server.out 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^dpmd: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
            server.out)"
  [[ -n "${port}" ]] && break
  kill -0 "${server_pid}" 2>/dev/null || fail "server exited before binding"
  sleep 0.05
done
[[ -n "${port}" ]] || fail "no listening banner within 5s"

# --- 2. first pass: every request answered, none rejected -------------
"${dpmd}" --connect "127.0.0.1:${port}" --transcript transcript.txt \
  > pass1.out || fail "first transcript replay exited nonzero"
answers="$(wc -l < pass1.out)"
[[ "${answers}" -eq "${requests}" ]] ||
  fail "first pass answered ${answers}/${requests} requests"
grep -q '"status":"error"' pass1.out &&
  fail "first pass rejected a canned request: $(grep '"status":"error"' pass1.out | head -1)"
grep -q '"status":"failed"' pass1.out &&
  fail "first pass failed a solve: $(grep '"status":"failed"' pass1.out | head -1)"

# --- 3. second pass: cache replay, exact-hit ratio > 0.5 --------------
"${dpmd}" --connect "127.0.0.1:${port}" --transcript transcript.txt \
  > pass2.out || fail "second transcript replay exited nonzero"

# Non-stats responses must replay byte-identically (the stats line is
# the one legitimately request-count-dependent response).
grep -v '"counters"' pass1.out > pass1.cmp
grep -v '"counters"' pass2.out > pass2.cmp
cmp -s pass1.cmp pass2.cmp ||
  fail "second pass responses are not byte-identical to the first"

hits1="$(grep -o '"exact_hits":[0-9]*' pass1.out | tail -1 | cut -d: -f2)"
hits2="$(grep -o '"exact_hits":[0-9]*' pass2.out | tail -1 | cut -d: -f2)"
[[ -n "${hits1}" && -n "${hits2}" ]] ||
  fail "stats responses carry no exact_hits counter"
pass_hits=$(( hits2 - hits1 ))
# The stats request itself is never cached; everything else can hit.
if (( 2 * pass_hits <= requests )); then
  fail "second-pass exact-hit ratio ${pass_hits}/${requests} is not > 0.5"
fi

# --- 4. SIGTERM: clean shutdown, cache flushed ------------------------
kill -TERM "${server_pid}"
server_exit=0
wait "${server_pid}" || server_exit=$?
server_pid=""
[[ "${server_exit}" -eq 0 ]] ||
  fail "server exited ${server_exit} on SIGTERM, want 0"
grep -q '^dpmd: shutdown clean$' server.out ||
  fail "server did not print the clean-shutdown banner"
ls cachedir/* >/dev/null 2>&1 ||
  fail "no response cache flushed to cachedir on shutdown"

echo "test_serve_cli: OK (${requests} requests, ${pass_hits} exact hits on replay)"
