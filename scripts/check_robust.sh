#!/usr/bin/env bash
# Robustness drift gate, run by scripts/verify.sh.
#
#   scripts/check_robust.sh
#
# Three checks:
#   1. No process-killing exits on the solve path: `abort(` and
#      `exit(` must not appear anywhere under src/lp/ or src/linalg/.
#      Every failure there must surface as a structured LpStatus /
#      thrown typed error that robust::SolveSupervisor can catch and
#      escalate (see docs/robustness.md).
#   2. Every FaultSite enumerator in src/robust/probe.h is documented
#      by name in docs/robustness.md, so a probe point cannot ship
#      without its failure semantics written down.
#   3. Every RecoveryRung enumerator in src/robust/outcome.h appears in
#      both docs/robustness.md and the solver README's failure-
#      semantics section — the escalation ladder is a documented
#      contract, not an implementation detail.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. no abort()/exit() on the solve path --------------------------
# \b keeps matches to real calls (std::abort(), abort(), exit(1)) and
# out of identifiers like `sort_exit_cols`.
hits="$(grep -rnE --include='*.cpp' --include='*.h' \
          '\b(std::)?(abort|exit)\(' src/lp src/linalg || true)"
if [[ -n "${hits}" ]]; then
  echo "check_robust: FAIL — abort()/exit() on the solve path:" >&2
  echo "${hits}" | sed 's/^/  /' >&2
  echo "  (surface a structured LpStatus or throw a typed error instead;" >&2
  echo "   see docs/robustness.md)" >&2
  fail=1
fi

# --- 2. every FaultSite is documented --------------------------------
sites="$(sed -n '/^enum class FaultSite/,/^};/p' src/robust/probe.h |
         grep -o '^  k[A-Za-z0-9]*' | tr -d ' ' || true)"
if [[ -z "${sites}" ]]; then
  echo "check_robust: FAIL — could not parse FaultSite from src/robust/probe.h" >&2
  fail=1
fi
while IFS= read -r site; do
  [[ -z "${site}" ]] && continue
  if ! grep -q "${site}" docs/robustness.md; then
    echo "check_robust: FAIL — FaultSite::${site} is not documented in docs/robustness.md" >&2
    fail=1
  fi
done <<< "${sites}"

# --- 3. every RecoveryRung is documented -----------------------------
rungs="$(sed -n '/^enum class RecoveryRung/,/^};/p' src/robust/outcome.h |
         grep -o '^  k[A-Za-z0-9]*' | tr -d ' ' || true)"
if [[ -z "${rungs}" ]]; then
  echo "check_robust: FAIL — could not parse RecoveryRung from src/robust/outcome.h" >&2
  fail=1
fi
while IFS= read -r rung; do
  [[ -z "${rung}" ]] && continue
  for doc in docs/robustness.md src/lp/README.md; do
    if ! grep -q "${rung}" "${doc}"; then
      echo "check_robust: FAIL — RecoveryRung::${rung} is not documented in ${doc}" >&2
      fail=1
    fi
  done
done <<< "${rungs}"

if [[ "${fail}" -ne 0 ]]; then
  exit 1
fi
echo "check_robust: OK (no abort/exit on the solve path, FaultSite and RecoveryRung documented)"
