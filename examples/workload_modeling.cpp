// Workload modeling walkthrough — the paper's Fig. 7 tool pipeline:
//
//   time-stamped trace -> discretize (Example 5.1) -> extract a
//   k-memory Markov SR -> judge model fit by comparing trace statistics
//   with the fitted chain's predictions -> see how the fitted model's
//   quality affects the policies you get.
#include <cstdio>

#include "cases/sensitivity.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/request_trace.h"
#include "trace/sr_extractor.h"

using namespace dpm;

int main() {
  // --- Example 5.1, literally.
  const trace::RequestTrace tiny({2, 5, 6, 7, 12});
  const std::vector<unsigned> bits = tiny.discretize_binary(1.0);
  std::printf("Example 5.1 trace [2,5,6,7,12] at tau=1 discretizes to: ");
  for (unsigned b : bits) std::printf("%u", b);
  const ServiceRequester tiny_sr = trace::extract_sr(bits, {.memory = 1});
  std::printf("\n  => extracted Prob[0->1] = %.4f (paper: 3/8)\n\n",
              tiny_sr.chain().transition(0, 1));

  // --- A realistic stream whose idle times are NOT memoryless.
  trace::OnOffParams params;
  params.mean_burst = 4.0;
  params.mean_idle_short = 3.0;
  params.mean_idle_long = 60.0;
  params.long_idle_fraction = 0.3;
  const std::vector<unsigned> stream =
      trace::on_off_stream(300000, params, 2718);
  const trace::StreamStats stats = trace::analyze_stream(stream);
  std::printf("synthetic workload: request rate %.3f, mean burst %.2f, "
              "mean idle %.2f slices\n",
              stats.request_rate, stats.mean_burst_length,
              stats.mean_idle_length);

  // --- Fit SR models with increasing memory and compare the SHAPE of
  // the idle-length distribution against the trace.  The mean is matched
  // by any fit; what a memoryless (k=1) chain cannot match is the
  // mixture tail — the fraction of idle runs that are long.
  const auto long_idle_fraction = [](const std::vector<unsigned>& s,
                                     std::size_t threshold) {
    std::size_t idle_runs = 0, long_runs = 0, run = 0;
    for (const unsigned b : s) {
      if (b == 0) {
        ++run;
        continue;
      }
      if (run > 0) {
        ++idle_runs;
        if (run > threshold) ++long_runs;
      }
      run = 0;
    }
    if (run > 0) {
      ++idle_runs;
      if (run > threshold) ++long_runs;
    }
    return idle_runs > 0 ? static_cast<double>(long_runs) /
                               static_cast<double>(idle_runs)
                         : 0.0;
  };
  const double trace_tail = long_idle_fraction(stream, 40);
  std::printf("\n%-8s %-10s %-26s (trace: %.4f)\n", "memory", "states",
              "P(idle run > 40 slices)", trace_tail);
  for (std::size_t k = 1; k <= 4; ++k) {
    const ServiceRequester sr =
        trace::extract_sr(stream, {.memory = k, .smoothing = 0.5});
    // Generate from the fitted chain and measure the same statistic.
    sim::Rng rng(k);
    std::size_t state = 0;
    std::vector<unsigned> synth(400000);
    for (auto& b : synth) {
      state = rng.sample_row(
          [&](std::size_t j) { return sr.chain().transition(state, j); },
          sr.num_states());
      b = sr.requests(state);
    }
    std::printf("%-8zu %-10zu %-26.4f\n", k, sr.num_states(),
                long_idle_fraction(synth, 40));
  }
  std::printf("(a memoryless k=1 chain matches the mean idle length but "
              "not the long-idle tail; higher k narrows the gap)\n");

  // --- Model quality matters: optimize against k=1 and k=3 fits and
  // compare the resulting policies on the *raw trace*.
  std::printf("\npolicy quality on the raw trace, queue bound 0.3:\n");
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}}) {
    const ServiceRequester sr =
        trace::extract_sr(stream, {.memory = k, .smoothing = 0.5});
    const SystemModel m = SystemModel::compose(
        cases::sensitivity::make_sp(
            cases::sensitivity::standard_sleep_states()),
        sr, 2);
    const PolicyOptimizer opt(m,
                              cases::sensitivity::make_config(m, 1e4));
    const OptimizationResult r = opt.minimize_power(0.3);
    if (!r.feasible) continue;
    sim::Simulator simulator(m);
    sim::PolicyController ctl(m, *r.policy);
    sim::SimulationConfig cfg;
    cfg.slices = stream.size();
    cfg.session_restart_prob = 1e-4;
    const sim::SimulationResult s = simulator.run_trace(
        ctl, stream, cfg, trace::history_tracker(k));
    std::printf("  k=%zu: model expects %.4f W; trace-driven measures "
                "%.4f W (queue %.3f)\n",
                k, r.objective_per_step, s.avg_power, s.avg_queue_length);
  }
  return 0;
}
