// Session-length engineering: when does the discount matter?
//
// The optimizer's gamma is not a numerical knob — it encodes the
// expected battery session (paper Sec. IV: 8-12 h between recharges).
// This example walks a laptop-ish disk scenario through three framings:
//   * short sessions (frequent suspend/resume): the discounted optimum
//     exploits the session end and looks cheaper than it is in steady
//     state;
//   * long sessions: the discounted optimum approaches the horizon-free
//     average-cost optimum;
//   * the average-cost optimum itself as the "always plugged in"
//     reference point.
#include <cstdio>

#include "cases/disk_drive.h"
#include "dpm/average_optimizer.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"

using namespace dpm;
using cases::DiskDrive;

int main() {
  const SystemModel m = DiskDrive::make_model();
  const double q_bound = 0.4, loss_bound = 0.05;

  std::printf("disk drive, min power s.t. E[queue] <= %.1f, loss <= %.2f\n\n",
              q_bound, loss_bound);

  std::printf("%-28s %12s %14s\n", "session model", "LP power[W]",
              "steady-sim[W]");
  sim::Simulator simulator(m);
  for (const double horizon : {1e3, 1e4, 1e5}) {
    const double gamma = 1.0 - 1.0 / horizon;
    const PolicyOptimizer opt(m, DiskDrive::make_config(m, gamma));
    const OptimizationResult r = opt.minimize_power(q_bound, loss_bound);
    if (!r.feasible) continue;
    // What the same policy delivers in steady state (no session end):
    sim::PolicyController ctl(m, *r.policy);
    sim::SimulationConfig cfg;
    cfg.slices = 400000;
    cfg.warmup = 5000;
    cfg.initial_state = {DiskDrive::kActive, 0, 0};
    const sim::SimulationResult s = simulator.run(ctl, cfg);
    std::printf("sessions of ~%-8.0f slices %12.4f %14.4f\n", horizon,
                r.objective_per_step, s.avg_power);
  }

  const AverageCostOptimizer avg(m);
  const OptimizationResult a = avg.minimize_power(q_bound, loss_bound);
  if (a.feasible) {
    sim::PolicyController ctl(m, *a.policy);
    sim::SimulationConfig cfg;
    cfg.slices = 400000;
    cfg.warmup = 5000;
    cfg.initial_state = {DiskDrive::kActive, 0, 0};
    const sim::SimulationResult s = simulator.run(ctl, cfg);
    std::printf("%-28s %12.4f %14.4f%s\n", "average-cost (horizon-free)",
                a.objective_per_step, s.avg_power,
                avg.support_is_single_class(a)
                    ? ""
                    : "   [multichain mix]");
    if (!avg.support_is_single_class(a)) {
      std::printf(
          "  ^ the constrained average-cost optimum MIXES several\n"
          "    recurrent classes: its LP value holds as an expectation\n"
          "    over which class a trajectory settles in, so one long\n"
          "    run shows a single class's average instead.\n");
    }
  }

  std::printf(
      "\nTakeaway: if your device genuinely runs in sessions (battery\n"
      "windows, suspend cycles), the discounted LP's lower numbers are\n"
      "real — end-of-session shutdown is free power.  If it runs\n"
      "indefinitely, check AverageCostOptimizer::support_is_single_class\n"
      "before quoting the LP value for a single long run; mixed-class\n"
      "optima need per-session (or per-boot) randomization to realize.\n");
  return 0;
}
