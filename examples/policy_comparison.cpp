// Policy shoot-out on the SA-1100 CPU model: optimal stochastic control
// vs the heuristic families a practitioner would try (always-on, eager,
// fixed timeouts, randomized shutdown) — all measured by the same
// long-run simulation, the apples-to-apples version of Fig. 9(b).
#include <cstdio>
#include <memory>
#include <vector>

#include "cases/cpu_sa1100.h"
#include "cases/heuristics.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"

using namespace dpm;
using cases::CpuSa1100;

int main() {
  const SystemModel m = CpuSa1100::make_model();
  const double gamma = 0.9999;
  const PolicyOptimizer opt(m, CpuSa1100::make_config(m, gamma));
  const StateActionMetric pen = CpuSa1100::penalty(m);

  sim::Simulator simulator(m);
  const auto measure = [&](sim::Controller& ctl) {
    sim::SimulationConfig cfg;
    cfg.slices = 400000;
    cfg.warmup = 2000;
    cfg.initial_state = {CpuSa1100::kActive, 0, 0};
    cfg.seed = 77;
    return simulator.run(ctl, cfg);
  };

  std::printf("%-34s %10s %12s\n", "policy", "power[W]", "penalty");
  std::printf("%-34s %10s %12s\n", "------", "--------", "-------");

  // Heuristics.
  struct Named {
    std::string name;
    std::unique_ptr<sim::Controller> ctl;
  };
  std::vector<Named> heuristics;
  heuristics.push_back(
      {"always-on", std::make_unique<sim::ConstantController>(CpuSa1100::kRun)});
  heuristics.push_back(
      {"eager (greedy shutdown)",
       std::make_unique<sim::GreedyController>(CpuSa1100::kShutdown,
                                               CpuSa1100::kRun)});
  for (const std::size_t t : {5ul, 20ul, 60ul}) {
    heuristics.push_back(
        {"timeout " + std::to_string(t) + " slices",
         std::make_unique<sim::TimeoutController>(t, CpuSa1100::kShutdown,
                                                  CpuSa1100::kRun)});
  }

  double eager_penalty = 0.0;
  for (auto& h : heuristics) {
    const sim::SimulationResult r = measure(*h.ctl);
    if (h.name.rfind("eager", 0) == 0) eager_penalty = r.metric(pen);
    std::printf("%-34s %10.4f %12.4f\n", h.name.c_str(), r.avg_power,
                r.metric(pen));
  }

  // Randomized shutdown (the CPU case's single degree of freedom).
  for (const double p : {0.1, 0.5, 1.0}) {
    const Policy pol = cases::randomized_shutdown_policy(
        m, CpuSa1100::kShutdown, CpuSa1100::kRun, p);
    sim::PolicyController ctl(m, pol);
    const sim::SimulationResult r = measure(ctl);
    std::printf("randomized shutdown p=%-12.1f %10.4f %12.4f\n", p,
                r.avg_power, r.metric(pen));
  }

  // The optimum at the eager policy's penalty level: strictly cheaper.
  const OptimizationResult best = opt.minimize(
      metrics::power(m), {{pen, eager_penalty, "penalty"}});
  if (best.feasible) {
    sim::PolicyController ctl(m, *best.policy);
    const sim::SimulationResult r = measure(ctl);
    std::printf("%-34s %10.4f %12.4f   <- LP optimum at eager's penalty\n",
                "optimal stochastic control", r.avg_power, r.metric(pen));
  }
  return 0;
}
