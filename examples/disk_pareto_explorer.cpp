// Disk Pareto explorer: walk the power/performance tradeoff curve of the
// Travelstar disk model (Sec. VI-A) and inspect how the optimal policy's
// *structure* changes along it — which sleep states it uses, and where
// randomization appears.
//
// Usage: disk_pareto_explorer [loss_bound]   (default 0.05)
#include <cstdio>
#include <cstdlib>

#include "cases/disk_drive.h"
#include "dpm/optimizer.h"

using namespace dpm;
using cases::DiskDrive;

namespace {

// Discounted fraction of time the policy spends in each SP macro-state.
void print_occupancy_profile(const SystemModel& m,
                             const OptimizationResult& r, double gamma) {
  double by_sp[DiskDrive::kNumStates] = {};
  const std::size_t na = m.num_commands();
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    const std::size_t sp = m.decompose(s).sp;
    for (std::size_t a = 0; a < na; ++a) {
      by_sp[sp] += r.frequencies[s * na + a];
    }
  }
  std::printf("    time share:");
  for (std::size_t sp = 0; sp < DiskDrive::kNumStates; ++sp) {
    const double share = by_sp[sp] * (1.0 - gamma);
    if (share > 0.005) {
      std::printf(" %s=%.1f%%", m.provider().state_name(sp).c_str(),
                  100.0 * share);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double loss_bound = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::printf("disk drive Pareto exploration, request-loss bound %.3f\n",
              loss_bound);

  const SystemModel m = DiskDrive::make_model();
  const double gamma = 0.999;
  const PolicyOptimizer opt(m, DiskDrive::make_config(m, gamma));

  for (const double q : {0.1, 0.15, 0.2, 0.3, 0.45, 0.7, 1.0, 1.5}) {
    const OptimizationResult r = opt.minimize_power(q, loss_bound);
    if (!r.feasible) {
      std::printf("\n  queue <= %-5.2f : infeasible\n", q);
      continue;
    }
    std::printf("\n  queue <= %-5.2f : power %.4f W, %s policy\n", q,
                r.objective_per_step,
                r.policy->is_deterministic(1e-6) ? "deterministic"
                                                 : "randomized");
    print_occupancy_profile(m, r, gamma);
  }

  std::printf("\nReading the profile: the time shares show which inactive "
              "states the optimum exploits at each constraint level.  "
              "Whether the spun-down states (standby/sleep) appear "
              "depends on the loss bound — rerun with a looser bound "
              "(e.g. `disk_pareto_explorer 0.3`) to watch the optimizer "
              "dig deeper once losing burst heads becomes acceptable.\n");
  return 0;
}
