// Quickstart: model a power-managed device, optimize its policy, and
// check the result by simulation — the library's core loop in ~80 lines.
//
//   1. Describe the service provider (states, commands, transition
//      probabilities, service rates, power).
//   2. Describe the workload as a two-state Markov service requester.
//   3. Compose the system, pick a discount (expected session length),
//      and ask for the minimum-power policy under a performance bound.
//   4. Inspect the (generally randomized) optimal policy and verify it
//      by Monte Carlo.
#include <cstdio>

#include "dpm/evaluation.h"
#include "dpm/optimizer.h"
#include "sim/simulator.h"

using namespace dpm;

int main() {
  // --- 1. A two-state device: on (2 W, serves) / off (0 W, sleeps).
  // Waking takes 5 slices on average; shutting down is immediate.
  CommandSet commands({"wake", "sleep"});
  ServiceProvider::Builder builder(2, commands);
  builder.state_name(0, "on").state_name(1, "off");
  builder.transition(commands.index("wake"), 0, 0, 1.0);
  builder.transition(commands.index("wake"), 1, 0, 0.2);   // E[wake] = 5
  builder.transition(commands.index("wake"), 1, 1, 0.8);
  builder.transition(commands.index("sleep"), 0, 1, 1.0);  // instant
  builder.transition(commands.index("sleep"), 1, 1, 1.0);
  builder.service_rate(0, commands.index("wake"), 0.9);
  builder.power(0, commands.index("wake"), 2.0);
  builder.power(0, commands.index("sleep"), 2.5);  // switching costs extra
  builder.power(1, commands.index("wake"), 2.5);
  builder.power(1, commands.index("sleep"), 0.0);
  ServiceProvider sp = std::move(builder).build();

  // --- 2. A bursty workload: requests arrive in runs of ~5 slices,
  // separated by idle runs of ~20 slices.
  ServiceRequester sr = ServiceRequester::two_state(/*p01=*/0.05,
                                                    /*p10=*/0.2);

  // --- 3. Compose with a 2-deep queue and optimize for a session of
  // ~10,000 slices: minimize power with the average backlog <= 0.5.
  SystemModel model = SystemModel::compose(std::move(sp), std::move(sr),
                                           /*queue_capacity=*/2);
  OptimizerConfig config;
  config.discount = 1.0 - 1e-4;
  config.initial_distribution = model.point_distribution({0, 0, 0});
  PolicyOptimizer optimizer(model, config);
  OptimizationResult result = optimizer.minimize_power(/*max_avg_queue=*/0.5);
  if (!result.feasible) {
    std::printf("no policy meets the constraint\n");
    return 1;
  }

  std::printf("optimal expected power: %.4f W (always-on would pay 2 W)\n",
              result.objective_per_step);
  std::printf("achieved average backlog: %.4f (bound 0.5)\n",
              result.constraint_per_step[0]);
  std::printf("\noptimal policy (probability of each command per state):\n");
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    std::printf("  %-22s wake=%6.3f sleep=%6.3f\n",
                model.state_label(s).c_str(),
                result.policy->probability(s, 0),
                result.policy->probability(s, 1));
  }

  // --- 4. Monte Carlo check under the session model the optimizer used.
  sim::Simulator simulator(model);
  sim::PolicyController controller(model, *result.policy);
  sim::SimulationConfig sim_config;
  sim_config.slices = 500000;
  sim_config.session_restart_prob = 1.0 - config.discount;
  sim::SimulationResult sim_result = simulator.run(controller, sim_config);
  std::printf("\nsimulated power: %.4f W, simulated backlog: %.4f\n",
              sim_result.avg_power, sim_result.avg_queue_length);
  return 0;
}
