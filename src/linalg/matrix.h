// dpmopt — dense linear algebra substrate.
//
// A small, self-contained dense matrix/vector toolkit sized for the linear
// programs and Markov-chain computations that arise in DPM policy
// optimization (hundreds to a few thousand unknowns).  Row-major storage,
// value semantics, bounds checked via at(); unchecked operator() for hot
// loops after validated construction.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace dpm::linalg {

/// Thrown on dimension mismatches and numerically singular factorizations.
class LinalgError : public std::runtime_error {
 public:
  explicit LinalgError(const std::string& what) : std::runtime_error(what) {}
};

/// Dense column vector of doubles.  Thin alias plus free-function helpers
/// (see below) — a vector of numbers has no invariant worth a class
/// (Core Guidelines C.2).
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Invariant: data_.size() == rows_ * cols_.  Dimensions are fixed at
/// construction (no resize), which keeps every element access valid for
/// the lifetime of the object.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer lists; all rows must have equal
  /// length.  Throws LinalgError on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  /// Matrix whose diagonal is `d` (square, order d.size()).
  static Matrix diagonal(const Vector& d);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (hot paths).
  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked element access.  Throws LinalgError when out of range.
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  /// Raw storage access (row-major), for tight loops and tests.
  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  Matrix transposed() const;

  /// Elementwise operations; dimensions must match.
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  /// Matrix product (this->cols() must equal rhs.rows()).
  Matrix operator*(const Matrix& rhs) const;

  /// Matrix * column-vector product.
  Vector operator*(const Vector& v) const;

  /// Max |a_ij - b_ij|; matrices must have identical shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  bool operator==(const Matrix& rhs) const noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// row-vector^T * matrix  (returns a vector of length m.cols()).
Vector left_multiply(const Vector& v, const Matrix& m);

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v) noexcept;

/// Max |v_i|.
double norm_inf(const Vector& v) noexcept;

/// a + s*b, sizes must match.
Vector axpy(const Vector& a, double s, const Vector& b);

/// Elementwise sum of entries.
double sum(const Vector& v) noexcept;

/// Pretty-printers used by tests and example programs.
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace dpm::linalg
