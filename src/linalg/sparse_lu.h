// Sparse LU basis factorization for the revised simplex method.
//
// SparseLu factorizes a square matrix given as sparse columns with a
// right-looking elimination and dynamic Markowitz pivoting: at every
// step the pivot is chosen (among numerically safe candidates) to
// minimize the Markowitz fill bound (r-1)(c-1) over the *current* active
// submatrix, and the outer-product update is applied eagerly so row and
// column counts stay exact.  Flops are proportional to fill, and —
// unlike the earlier left-looking scheme — there is no O(n) scan per
// column, so refactorization cost tracks nnz(L+U), not n^2.
//
// BasisFactorization wraps it with a Forrest–Tomlin factor update: each
// simplex pivot replaces one column of U with the entering column's
// spike, restores triangularity with a cyclic permutation plus one
// sparse row eta, and the factorization is rebuilt from scratch only
// when the update pivot is numerically unsafe, the accumulated update
// fill exceeds the adaptive threshold, or the hard update-count cap is
// reached.  Unlike the product-form eta file it replaces, the transform
// list grows by a (usually tiny) row eta per pivot instead of a full
// B^{-1}a column, so the triangular-sweep cost per iteration stays
// near the fresh-factor cost across long pivot runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/dense_block.h"
#include "linalg/indexed_vector.h"
#include "linalg/matrix.h"

namespace dpm::linalg {

/// A sparse column: (row, value) pairs, unique rows.
using SparseColumn = std::vector<std::pair<std::size_t, double>>;

/// Adaptive reachability-probe gate.  A hypersparse solve starts with a
/// DFS probe whose only product, when the factor graph is well
/// connected, is the discovery that the dense sweep is cheaper — a pure
/// tax of up to the edge budget per sweep.  On expander-like bases every
/// probe is doomed, so after `kStrikeLimit` consecutive aborts the gate
/// sends sweeps straight to the dense path, re-arming a probe every
/// `kRetryPeriod` skipped sweeps (and on refactorization, when the
/// factor's structure changes wholesale) so a basis that turns sparse
/// again is noticed within a bounded delay.
struct ProbeGate {
  static constexpr std::size_t kStrikeLimit = 4;
  static constexpr std::size_t kRetryPeriod = 128;
  /// Below this dimension the gate is bypassed entirely (call sites
  /// short-circuit before allowed()): a doomed probe on a tiny basis
  /// costs next to nothing, while a lockout would send the small
  /// case-study models — which are genuinely hypersparse — through
  /// dense sweeps for up to kRetryPeriod iterations after one bad
  /// stretch.  Size-awareness added in PR 8 after the n*na = 500 bench
  /// point showed the lockout machinery costing more than it saved.
  static constexpr std::size_t kMinDim = 256;
  std::size_t strikes = 0;
  std::size_t skipped = 0;
  bool allowed() noexcept {
    if (strikes < kStrikeLimit) return true;
    if (++skipped >= kRetryPeriod) {
      skipped = 0;
      strikes = kStrikeLimit - 1;  // one retry; a failure re-arms the skip
      return true;
    }
    return false;
  }
  void report(bool sparse) noexcept { strikes = sparse ? 0 : strikes + 1; }
  void reset() noexcept {
    strikes = 0;
    skipped = 0;
  }
};

/// P A Q = LU of a square sparse matrix with dynamic Markowitz
/// pivoting: candidate columns are examined sparsest-first (count
/// buckets), and within a column the pivot row is chosen among
/// numerically safe entries (threshold partial pivoting,
/// |pivot| >= 0.1 * max of the column) to minimize (r-1)(c-1) — dense
/// rows (e.g. an LP's metric-constraint row) are deferred to the end
/// instead of spraying fill through every elimination step.
///
/// ftran solves B x = b (b indexed by original row, x indexed by the
/// caller's column); btran solves B^T y = c (c indexed by caller column,
/// y by original row).  This is exactly the index convention the revised
/// simplex needs: ftran maps right-hand sides to basic-variable values,
/// btran maps basic costs to row duals.
class SparseLu {
 public:
  SparseLu() = default;

  /// Factorizes the n x n matrix whose j-th column is `columns[j]`.
  /// Returns false (leaving the object unusable) when no pivot of
  /// magnitude above `pivot_tol` remains — numerically singular.
  bool factorize(std::size_t n, const std::vector<SparseColumn>& columns,
                 double pivot_tol = 1e-11);

  std::size_t order() const noexcept { return n_; }
  bool valid() const noexcept { return valid_; }

  /// Stored entries of L + U including the diagonal (fill metric for
  /// benches and tests; cached at factorization time).
  std::size_t factor_nonzeros() const noexcept { return factor_nnz_; }

  /// Deterministic work estimate of the last factorization: entries
  /// touched by the pivot search and the right-looking updates.  On
  /// low-fill bases it tracks nnz(L+U); on heavy-fill bases it grows
  /// superlinearly, exactly like the wall time — the cost model behind
  /// BasisFactorization's amortized refactorization trigger.
  std::size_t factor_ops() const noexcept { return factor_ops_; }

  /// In place: x (indexed by original row on input) becomes the solution
  /// of B x = input, indexed by the caller's columns.
  void ftran(Vector& x) const;

  /// In place: x (indexed by caller column on input) becomes the
  /// solution of B^T y = input, indexed by original row.
  void btran(Vector& x) const;

  // --- split solves and factor access (Forrest–Tomlin host hooks) ----
  // BasisFactorization owns a *dynamic* copy of U that evolves with
  // each basis change; it only needs the L half (and the permutations)
  // of this object, via the split solves below.

  /// First half of ftran: z <- L^{-1} P x, z indexed by elimination
  /// position.  Clobbers x (it is the scatter workspace).  When
  /// `support` is non-null it receives the positions written nonzero —
  /// the hook that lets BasisFactorization keep its update cost
  /// proportional to the spike's support instead of n.
  void lower_solve(Vector& x, Vector& z,
                   std::vector<std::size_t>* support = nullptr) const;

  /// Second half of btran: solves L^T s = t in place (t indexed by
  /// elimination position), then scatters x[original row] = s[position].
  void lower_transpose_solve(Vector& t, Vector& x) const;

  // --- hypersparse (Gilbert–Peierls) right-hand-side paths ------------
  // Reachability-driven variants of the split solves: a DFS over the
  // factor's nonzero graph from the rhs support finds the exact set of
  // positions the triangular solve can light up, and the replay visits
  // only that set — in the *same index order and loop form* as the
  // dense sweep, so results are bitwise identical.  When the reachable
  // set exceeds kSparseReachCap the call falls back to the dense sweep
  // internally (densifying the vectors) and returns false.

  /// Reachable-set cap as a fraction of n: above it, DFS + sorted
  /// replay costs more than the dense sweep it replaces.  The absolute
  /// floor keeps small bases (the case-study MDPs) on the sparse path
  /// unconditionally, where either sweep is cheap but telemetry and
  /// test coverage want the hypersparse code exercised.
  static constexpr double kSparseReachFraction = 0.3;
  static constexpr std::size_t kSparseReachFloor = 64;
  std::size_t sparse_reach_cap() const noexcept {
    const auto frac =
        static_cast<std::size_t>(kSparseReachFraction * static_cast<double>(n_));
    return frac < kSparseReachFloor ? kSparseReachFloor : frac;
  }

  /// DFS edge budget: successor enumeration is the dominant cost of a
  /// reachability attempt, and on a heavily filled factor a DFS can
  /// enumerate far more edges than the dense sweep it hoped to replace
  /// before its node count ever hits the reach cap.  Bounding the edges
  /// at a fraction of the dense sweep's work (n + factor nonzeros)
  /// turns the worst case into a ~1/6 tax instead of a 2x regression.
  static constexpr std::size_t kSparseEdgeFloor = 4096;
  std::size_t sparse_edge_budget() const noexcept {
    const std::size_t budget = (n_ + factor_nnz_) / 6;
    return budget < kSparseEdgeFloor ? kSparseEdgeFloor : budget;
  }

  /// Sparse lower_solve: z <- L^{-1} P x restricted to the positions
  /// reachable from x's pattern through L's nonzero graph.  Clobbers x
  /// (scatter workspace, pattern-maintained).  z must be clear() on
  /// entry.  Returns false when it fell back to the dense sweep (both
  /// vectors densified).
  bool lower_solve_sparse(IndexedVector& x, IndexedVector& z) const;

  /// Sparse lower_transpose_solve: solves L^T s = t over the positions
  /// reachable from t's pattern through L^T's nonzero graph (the row
  /// adjacency built at factorization), then scatters x[original row] =
  /// s[position].  x must be clear() on entry; t is clobbered.  Returns
  /// false on dense fallback.
  bool lower_transpose_solve_sparse(IndexedVector& t, IndexedVector& x) const;

  /// Moves the U half (columns + diagonal) out of this object — for a
  /// host that maintains its own dynamic U (BasisFactorization).  After
  /// the call only lower_solve / lower_transpose_solve and the
  /// accessors below remain usable; ftran/btran would read the gutted
  /// U and must not be called.  When the dense tail was retained the
  /// moved columns hold only the sparse heads of tail columns; the
  /// above-diagonal tail entries stay in `tail_values()` for the host
  /// to load into its own DenseBlock.
  void take_upper(std::vector<SparseColumn>& u_cols, Vector& u_diag) {
    u_cols = std::move(u_cols_);
    u_diag = std::move(u_diag_);
    u_cols_.clear();
    u_diag_.clear();
  }
  /// Elimination position -> caller column of the pivot chosen there.
  const std::vector<std::size_t>& col_of_position() const noexcept {
    return col_of_position_;
  }

  /// Extent of the dense-tail elimination of the last factorization:
  /// positions [order() - tail_dim(), order()) were eliminated by the
  /// contiguous kernel (0 when the whole factorization stayed sparse).
  std::size_t tail_dim() const noexcept { return tail_dim_; }
  std::size_t tail_start() const noexcept { return n_ - tail_dim_; }

  /// When true (compat/test hook), the dense-tail elimination re-emits
  /// its block into the sparse L/U pair storage as before PR 8, instead
  /// of retaining the contiguous buffer.  Takes effect at the next
  /// factorize().
  void set_emit_tail_sparse(bool emit) noexcept { emit_tail_sparse_ = emit; }

  /// True when the last factorization kept its dense tail in the
  /// contiguous buffer (tail columns' L entries and above-diagonal U
  /// entries live in tail_values(), not in the pair lists).
  bool tail_retained() const noexcept { return tail_retained_; }

  /// The retained elimination buffer: column-major tail_dim() x
  /// tail_dim(), tail slot s <-> elimination position tail_start() + s.
  /// L multipliers strictly below the diagonal, U on and above.
  const Vector& tail_values() const noexcept { return tail_; }

 private:
  // Dense-tail elimination: once the active submatrix of a
  // factorization crosses this density, scatter it into a contiguous
  // column-major block and finish with dense partial-pivoted Gaussian
  // elimination — the sparse update's per-entry scatter overhead loses
  // to contiguous axpy loops long before 15% fill.  The bounds keep
  // tiny tails on the sparse path (switch overhead) and cap the dense
  // buffer (kDenseTailMax^2 doubles).
  static constexpr std::size_t kDenseTailMin = 96;
  static constexpr std::size_t kDenseTailMax = 2048;
  static constexpr std::size_t kDenseTailCheck = 32;
  static constexpr double kDenseTailDensity = 0.15;
  bool dense_tail(std::size_t pos0, std::vector<SparseColumn>& acols,
                  std::vector<char>& col_active,
                  std::vector<SparseColumn>& u_stash, double pivot_tol);

  /// Dense sweep cores shared by the plain solves and the hypersparse
  /// fallbacks (both must run the exact same loop over the exact same
  /// storage for the bitwise contract).
  void lower_solve_core(Vector& x, Vector& z,
                        std::vector<std::size_t>* support) const;
  void lower_transpose_solve_core(Vector& t, Vector& x) const;

  std::size_t n_ = 0;
  bool valid_ = false;
  std::size_t factor_nnz_ = 0;
  std::size_t factor_ops_ = 0;
  std::size_t tail_dim_ = 0;
  std::size_t tail_nnz_ = 0;      // off-diagonal nonzeros of a retained tail
  bool emit_tail_sparse_ = false;
  bool tail_retained_ = false;
  Vector tail_;                    // retained elimination buffer (col-major)
  mutable Vector tail_work_;       // lower_solve tail gather workspace
  // L column k: multipliers at *original* row indices (unit diagonal
  // implicit).  U column k: entries U(k', k) at pivot positions k' < k,
  // plus the diagonal.  Positions follow the elimination order;
  // col_of_position_ maps them back to caller column indices.
  std::vector<SparseColumn> l_cols_;
  std::vector<SparseColumn> u_cols_;
  Vector u_diag_;
  std::vector<std::size_t> pivot_row_;     // pivot position -> original row
  std::vector<std::size_t> row_position_;  // original row -> pivot position
  std::vector<std::size_t> col_of_position_;  // position -> caller column
  // Row adjacency of L in position space: l_rows_[m] lists the columns
  // k whose l_cols_[k] holds an entry in pivot row m — the reverse
  // edges the sparse L^T solve's reachability walks.  Built once per
  // factorization (second pass, after the permutation is final).
  std::vector<std::vector<std::size_t>> l_rows_;
  // Reachability-DFS scratch (per-object, like the other mutable
  // workspaces: one thread per factorization object).
  mutable std::vector<char> reach_mark_;
  mutable std::vector<std::size_t> reach_stack_;
  mutable std::vector<std::size_t> reach_edge_;
  mutable std::vector<std::size_t> reach_;
  mutable std::vector<std::size_t> reach_seeds_;
  // Per-direction probe gates (the L and L^T graphs fill differently).
  mutable ProbeGate lower_gate_;
  mutable ProbeGate ltrans_gate_;
};

/// Basis handle for the revised simplex: a Markowitz LU refreshed by
/// Forrest–Tomlin updates between refactorizations.
///
/// Index spaces.  Each pivot of the initial factorization gets a stable
/// *label* (its elimination position).  The dynamic U is stored by
/// label, and a separate order array records the current triangular
/// order — a Forrest–Tomlin update never moves data, it only rewrites
/// the order (the cyclic permutation of the textbook presentation).
/// `slot_of_label_` maps labels back to the caller's basis slots, so
/// ftran/btran keep the exact index convention of SparseLu.
class BasisFactorization {
 public:
  explicit BasisFactorization(std::size_t refactor_interval = 64,
                              double pivot_tol = 1e-11,
                              double work_ratio = 1.0)
      : refactor_interval_(refactor_interval),
        pivot_tol_(pivot_tol),
        work_ratio_(work_ratio) {}

  /// (Re)factorizes from scratch; clears the update transforms.
  /// Returns false on a singular basis.
  bool refactorize(std::size_t n, const std::vector<SparseColumn>& columns);

  /// Dense-block toggle (default on): when enabled, the factorization's
  /// dense tail is kept as a real dense block — ftran/btran route it
  /// through contiguous kernels and update() patches it in place.  When
  /// disabled the tail is re-emitted into sparse pair storage (the
  /// pre-PR 8 path); results are bitwise identical either way, which is
  /// exactly what the property tests assert.  Takes effect at the next
  /// refactorize().
  void set_dense_block_enabled(bool enabled) noexcept {
    use_dense_block_ = enabled;
  }

  /// Smallest basis dimension that gets the dense block even when
  /// enabled: below it the whole factor fits in cache and the block's
  /// bookkeeping (load, FT patch-in-place, extent hints) costs more
  /// than its kernels save, so tiny instances keep the plain sparse
  /// tail (block_sweeps stays 0 — asserted by the bench smoke).
  static constexpr std::size_t kBlockMinBasis = 384;

  /// Dimension of the active dense block (0 when the basis has no dense
  /// tail or the block is disabled).
  std::size_t block_dim() const noexcept { return block_.dim(); }

  /// Forrest–Tomlin basis change: slot `r` is replaced by a column whose
  /// ftran image is `d` (i.e. d = B^{-1} a_entering, as produced by
  /// ftran()).  Replaces one column of U with the entering column's
  /// spike, appends one sparse row eta, and cyclically reorders.
  /// Returns false — leaving the factorization untouched, the caller
  /// must refactorize — when the transformed diagonal is numerically
  /// unsafe or the update-count cap is reached.
  ///
  /// Contract: `d` must come from the most recent `cache_spike` ftran()
  /// on this object (the entering-column solve).  That ftran stashes
  /// its partial result — the spike L^{-1} P a, before the U
  /// back-substitution — so the update costs O(spike + row eta) instead
  /// of a U matvec; when no cached partial is available (no
  /// `cache_spike` ftran since the last update/refactorize) the spike
  /// is recomputed as U d.
  bool update(std::size_t r, const Vector& d);

  /// Number of FT updates applied since the last refactorization.
  std::size_t updates_since_refactor() const noexcept { return etas_.size(); }

  /// Refactorization trigger: the hard update-count cap, or — the
  /// amortized rule — once the *extra sweep work* spent since the last
  /// refactorization exceeds `work_ratio` times the work of that
  /// refactorization.  Every ftran/btran pays `update_fill_` extra
  /// entries (row etas + net U growth) on top of the fresh-factor
  /// sweep; the accumulator integrates that over sweeps, and
  /// SparseLu::factor_ops() prices the rebuild in the same entry-ops
  /// currency.  This balances the two costs by construction — cheap
  /// factorizations (structured, low-fill bases) are refreshed eagerly
  /// to keep sweeps tight, while a heavy-fill rebuild is deferred
  /// until the updates have genuinely cost as much as redoing it —
  /// and, unlike a wall-clock rule, it is bit-deterministic.  The
  /// rebuild work is floored at kMinFactorWork: below that size both
  /// sides are measurement noise and the update-count cap governs.
  /// `work_ratio <= 0` disables the rule (pure fixed interval).
  static constexpr std::size_t kMinFactorWork = 4096;
  bool needs_refactor() const noexcept {
    return etas_.size() >= refactor_interval_ ||
           (work_ratio_ > 0.0 &&
            static_cast<double>(sweep_extra_) >
                work_ratio_ * static_cast<double>(
                                  std::max(lu_.factor_ops(), kMinFactorWork)));
  }
  bool valid() const noexcept { return lu_.valid(); }

  /// nnz(L+U) of the last from-scratch factorization.
  std::size_t factor_nonzeros() const noexcept {
    return lu_.factor_nonzeros();
  }
  /// Current transform size: base L + dynamic U + row etas — the
  /// per-sweep cost metric the adaptive trigger balances.
  std::size_t current_nonzeros() const noexcept {
    return l_nonzeros_ + u_nonzeros_ + n_ + eta_nonzeros_;
  }

  /// DFS edge budget over the dynamic U's graph — same rationale as
  /// SparseLu::sparse_edge_budget(), measured against the dynamic U +
  /// eta file a dense U sweep would scan.
  std::size_t u_edge_budget() const noexcept {
    const std::size_t budget = (n_ + u_nonzeros_ + eta_nonzeros_) / 6;
    return budget < SparseLu::kSparseEdgeFloor ? SparseLu::kSparseEdgeFloor
                                               : budget;
  }

  /// x <- B^{-1} x  (input indexed by original row, output by slot).
  /// Pass `cache_spike = true` when x is the entering column of a
  /// simplex pivot: the intermediate L^{-1} P a (and its support) is
  /// stashed so the following update() gets its spike for free.
  /// Other ftrans leave the cache untouched, so diagnostics between
  /// the entering solve and the update are harmless.
  void ftran(Vector& x, bool cache_spike = false) const;

  /// x <- B^{-T} x  (input indexed by slot, output by original row).
  void btran(Vector& x) const;

  // --- hypersparse sweeps ---------------------------------------------
  // Sparse-rhs ftran/btran: the L (or L^T) half runs the Gilbert–
  // Peierls solve in SparseLu, the row etas are applied in O(eta
  // terms), and the dynamic-U half runs its own reachability DFS over
  // ucols_/urows_ with an order-sorted replay.  Results are bitwise
  // identical to the dense ftran()/btran() on the same factorization
  // state; when any stage's reachable set blows past the density cap
  // the vector is densified and the remaining stages run the dense
  // loops.  The sparse/dense split and total touched entries are
  // recorded for the hypersparsity telemetry.

  /// Sparse x <- B^{-1} x.  x's pattern is the rhs support on entry and
  /// the solution's (superset) support on exit.  `cache_spike` as in
  /// the dense ftran.
  void ftran_sparse(IndexedVector& x, bool cache_spike = false) const;

  /// Sparse x <- B^{-T} x (input pattern indexed by slot, output by
  /// original row).
  void btran_sparse(IndexedVector& x) const;

  // Hypersparsity telemetry, cumulative over the object's life: sweeps
  // that stayed on the sparse path end-to-end, sweeps that fell dense
  // (including every dense ftran()/btran() call), and total entries
  // touched by sparse-path sweeps (dense sweeps count n each).
  std::uint64_t sparse_sweeps() const noexcept { return sparse_sweeps_; }
  std::uint64_t dense_sweeps() const noexcept { return dense_sweeps_; }
  std::uint64_t touched_entries() const noexcept { return touched_entries_; }
  // Dense-block telemetry: dense sweeps that routed their tail through
  // the block kernels, and the block nonzeros those sweeps applied.
  std::uint64_t block_sweeps() const noexcept { return block_sweeps_; }
  std::uint64_t block_entries() const noexcept { return block_entries_; }

 private:
  struct RowEta {
    std::size_t p = 0;     // spiked label (last in order at record time)
    SparseColumn terms;    // (label j, r_j): z[p] -= sum r_j z[j]
  };

  SparseLu lu_;
  std::size_t n_ = 0;
  // Dynamic U by stable label.  Invariant: every entry (row k, col j)
  // satisfies order_of_label_[k] < order_of_label_[j].  When the dense
  // block is active, entries with row *and* column label inside
  // [block_.start(), block_.end()) live in block_ instead of the pair
  // lists — same value set, contiguous storage.
  std::vector<SparseColumn> ucols_;  // (row label, value) off-diagonals
  std::vector<SparseColumn> urows_;  // mirror: (col label, value)
  DenseBlock block_;                 // dense tail of U (label suffix)
  bool use_dense_block_ = true;
  Vector udiag_;
  std::vector<std::size_t> order_of_label_;
  std::vector<std::size_t> label_at_order_;
  std::vector<std::size_t> slot_of_label_;  // label -> caller basis slot
  std::vector<std::size_t> label_of_slot_;  // caller basis slot -> label
  std::vector<RowEta> etas_;
  // Spike cache: ftran's intermediate z (post L-solve and row etas,
  // pre U back-substitution) plus its nonzero support — exactly the
  // spike update() needs for the column the caller is about to pivot
  // in.
  mutable Vector partial_;
  mutable std::vector<std::size_t> partial_support_;
  mutable bool partial_valid_ = false;
  // Reusable solve/update workspaces (allocation-free steady state).
  // acc_ is kept all-zero between updates (the heap-driven row-eta
  // solve re-zeroes every entry it touches).
  mutable Vector work_;
  mutable std::vector<std::size_t> support_;
  Vector acc_;
  std::size_t refactor_interval_;
  double pivot_tol_;
  double work_ratio_;
  std::size_t l_nonzeros_ = 0;    // base L entries (fixed per factorization)
  std::size_t u_nonzeros_ = 0;    // current off-diagonal U entries
  std::size_t u0_nonzeros_ = 0;   // U off-diagonals at the last refactor
  std::size_t eta_nonzeros_ = 0;  // row-eta entries accumulated
  std::size_t update_fill_ = 0;   // eta entries + net U growth per sweep
  mutable std::size_t sweep_extra_ = 0;  // integral of update_fill_ over
                                         // the sweeps since refactor
  // Hypersparse sweep state: the label-space work vector, the DFS
  // scratch for the dynamic-U reachability, and the telemetry counters.
  mutable IndexedVector zvec_;
  mutable std::vector<char> umark_;
  mutable std::vector<std::size_t> ustack_;
  mutable std::vector<std::size_t> uedge_;
  mutable std::vector<std::size_t> ureach_;
  mutable ProbeGate uftran_gate_;
  mutable ProbeGate ubtran_gate_;
  mutable std::uint64_t sparse_sweeps_ = 0;
  mutable std::uint64_t dense_sweeps_ = 0;
  mutable std::uint64_t touched_entries_ = 0;
  mutable std::uint64_t block_sweeps_ = 0;
  mutable std::uint64_t block_entries_ = 0;
};

}  // namespace dpm::linalg
