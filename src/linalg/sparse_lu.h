// Sparse LU basis factorization for the revised simplex method.
//
// SparseLu factorizes a square matrix given as sparse columns with a
// right-looking elimination and dynamic Markowitz pivoting: at every
// step the pivot is chosen (among numerically safe candidates) to
// minimize the Markowitz fill bound (r-1)(c-1) over the *current* active
// submatrix, and the outer-product update is applied eagerly so row and
// column counts stay exact.  Flops are proportional to fill, and —
// unlike the earlier left-looking scheme — there is no O(n) scan per
// column, so refactorization cost tracks nnz(L+U), not n^2.
//
// BasisFactorization wraps it with a Forrest–Tomlin factor update: each
// simplex pivot replaces one column of U with the entering column's
// spike, restores triangularity with a cyclic permutation plus one
// sparse row eta, and the factorization is rebuilt from scratch only
// when the update pivot is numerically unsafe, the accumulated update
// fill exceeds the adaptive threshold, or the hard update-count cap is
// reached.  Unlike the product-form eta file it replaces, the transform
// list grows by a (usually tiny) row eta per pivot instead of a full
// B^{-1}a column, so the triangular-sweep cost per iteration stays
// near the fresh-factor cost across long pivot runs.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace dpm::linalg {

/// A sparse column: (row, value) pairs, unique rows.
using SparseColumn = std::vector<std::pair<std::size_t, double>>;

/// P A Q = LU of a square sparse matrix with dynamic Markowitz
/// pivoting: candidate columns are examined sparsest-first (count
/// buckets), and within a column the pivot row is chosen among
/// numerically safe entries (threshold partial pivoting,
/// |pivot| >= 0.1 * max of the column) to minimize (r-1)(c-1) — dense
/// rows (e.g. an LP's metric-constraint row) are deferred to the end
/// instead of spraying fill through every elimination step.
///
/// ftran solves B x = b (b indexed by original row, x indexed by the
/// caller's column); btran solves B^T y = c (c indexed by caller column,
/// y by original row).  This is exactly the index convention the revised
/// simplex needs: ftran maps right-hand sides to basic-variable values,
/// btran maps basic costs to row duals.
class SparseLu {
 public:
  SparseLu() = default;

  /// Factorizes the n x n matrix whose j-th column is `columns[j]`.
  /// Returns false (leaving the object unusable) when no pivot of
  /// magnitude above `pivot_tol` remains — numerically singular.
  bool factorize(std::size_t n, const std::vector<SparseColumn>& columns,
                 double pivot_tol = 1e-11);

  std::size_t order() const noexcept { return n_; }
  bool valid() const noexcept { return valid_; }

  /// Stored entries of L + U including the diagonal (fill metric for
  /// benches and tests; cached at factorization time).
  std::size_t factor_nonzeros() const noexcept { return factor_nnz_; }

  /// Deterministic work estimate of the last factorization: entries
  /// touched by the pivot search and the right-looking updates.  On
  /// low-fill bases it tracks nnz(L+U); on heavy-fill bases it grows
  /// superlinearly, exactly like the wall time — the cost model behind
  /// BasisFactorization's amortized refactorization trigger.
  std::size_t factor_ops() const noexcept { return factor_ops_; }

  /// In place: x (indexed by original row on input) becomes the solution
  /// of B x = input, indexed by the caller's columns.
  void ftran(Vector& x) const;

  /// In place: x (indexed by caller column on input) becomes the
  /// solution of B^T y = input, indexed by original row.
  void btran(Vector& x) const;

  // --- split solves and factor access (Forrest–Tomlin host hooks) ----
  // BasisFactorization owns a *dynamic* copy of U that evolves with
  // each basis change; it only needs the L half (and the permutations)
  // of this object, via the split solves below.

  /// First half of ftran: z <- L^{-1} P x, z indexed by elimination
  /// position.  Clobbers x (it is the scatter workspace).  When
  /// `support` is non-null it receives the positions written nonzero —
  /// the hook that lets BasisFactorization keep its update cost
  /// proportional to the spike's support instead of n.
  void lower_solve(Vector& x, Vector& z,
                   std::vector<std::size_t>* support = nullptr) const;

  /// Second half of btran: solves L^T s = t in place (t indexed by
  /// elimination position), then scatters x[original row] = s[position].
  void lower_transpose_solve(Vector& t, Vector& x) const;

  /// Moves the U half (columns + diagonal) out of this object — for a
  /// host that maintains its own dynamic U (BasisFactorization).  After
  /// the call only lower_solve / lower_transpose_solve and the
  /// accessors below remain usable; ftran/btran would read the gutted
  /// U and must not be called.
  void take_upper(std::vector<SparseColumn>& u_cols, Vector& u_diag) {
    u_cols = std::move(u_cols_);
    u_diag = std::move(u_diag_);
    u_cols_.clear();
    u_diag_.clear();
  }
  /// Elimination position -> caller column of the pivot chosen there.
  const std::vector<std::size_t>& col_of_position() const noexcept {
    return col_of_position_;
  }

 private:
  std::size_t n_ = 0;
  bool valid_ = false;
  std::size_t factor_nnz_ = 0;
  std::size_t factor_ops_ = 0;
  // L column k: multipliers at *original* row indices (unit diagonal
  // implicit).  U column k: entries U(k', k) at pivot positions k' < k,
  // plus the diagonal.  Positions follow the elimination order;
  // col_of_position_ maps them back to caller column indices.
  std::vector<SparseColumn> l_cols_;
  std::vector<SparseColumn> u_cols_;
  Vector u_diag_;
  std::vector<std::size_t> pivot_row_;     // pivot position -> original row
  std::vector<std::size_t> row_position_;  // original row -> pivot position
  std::vector<std::size_t> col_of_position_;  // position -> caller column
};

/// Basis handle for the revised simplex: a Markowitz LU refreshed by
/// Forrest–Tomlin updates between refactorizations.
///
/// Index spaces.  Each pivot of the initial factorization gets a stable
/// *label* (its elimination position).  The dynamic U is stored by
/// label, and a separate order array records the current triangular
/// order — a Forrest–Tomlin update never moves data, it only rewrites
/// the order (the cyclic permutation of the textbook presentation).
/// `slot_of_label_` maps labels back to the caller's basis slots, so
/// ftran/btran keep the exact index convention of SparseLu.
class BasisFactorization {
 public:
  explicit BasisFactorization(std::size_t refactor_interval = 64,
                              double pivot_tol = 1e-11,
                              double work_ratio = 1.0)
      : refactor_interval_(refactor_interval),
        pivot_tol_(pivot_tol),
        work_ratio_(work_ratio) {}

  /// (Re)factorizes from scratch; clears the update transforms.
  /// Returns false on a singular basis.
  bool refactorize(std::size_t n, const std::vector<SparseColumn>& columns);

  /// Forrest–Tomlin basis change: slot `r` is replaced by a column whose
  /// ftran image is `d` (i.e. d = B^{-1} a_entering, as produced by
  /// ftran()).  Replaces one column of U with the entering column's
  /// spike, appends one sparse row eta, and cyclically reorders.
  /// Returns false — leaving the factorization untouched, the caller
  /// must refactorize — when the transformed diagonal is numerically
  /// unsafe or the update-count cap is reached.
  ///
  /// Contract: `d` must come from the most recent `cache_spike` ftran()
  /// on this object (the entering-column solve).  That ftran stashes
  /// its partial result — the spike L^{-1} P a, before the U
  /// back-substitution — so the update costs O(spike + row eta) instead
  /// of a U matvec; when no cached partial is available (no
  /// `cache_spike` ftran since the last update/refactorize) the spike
  /// is recomputed as U d.
  bool update(std::size_t r, const Vector& d);

  /// Number of FT updates applied since the last refactorization.
  std::size_t updates_since_refactor() const noexcept { return etas_.size(); }

  /// Refactorization trigger: the hard update-count cap, or — the
  /// amortized rule — once the *extra sweep work* spent since the last
  /// refactorization exceeds `work_ratio` times the work of that
  /// refactorization.  Every ftran/btran pays `update_fill_` extra
  /// entries (row etas + net U growth) on top of the fresh-factor
  /// sweep; the accumulator integrates that over sweeps, and
  /// SparseLu::factor_ops() prices the rebuild in the same entry-ops
  /// currency.  This balances the two costs by construction — cheap
  /// factorizations (structured, low-fill bases) are refreshed eagerly
  /// to keep sweeps tight, while a heavy-fill rebuild is deferred
  /// until the updates have genuinely cost as much as redoing it —
  /// and, unlike a wall-clock rule, it is bit-deterministic.  The
  /// rebuild work is floored at kMinFactorWork: below that size both
  /// sides are measurement noise and the update-count cap governs.
  /// `work_ratio <= 0` disables the rule (pure fixed interval).
  static constexpr std::size_t kMinFactorWork = 4096;
  bool needs_refactor() const noexcept {
    return etas_.size() >= refactor_interval_ ||
           (work_ratio_ > 0.0 &&
            static_cast<double>(sweep_extra_) >
                work_ratio_ * static_cast<double>(
                                  std::max(lu_.factor_ops(), kMinFactorWork)));
  }
  bool valid() const noexcept { return lu_.valid(); }

  /// nnz(L+U) of the last from-scratch factorization.
  std::size_t factor_nonzeros() const noexcept {
    return lu_.factor_nonzeros();
  }
  /// Current transform size: base L + dynamic U + row etas — the
  /// per-sweep cost metric the adaptive trigger balances.
  std::size_t current_nonzeros() const noexcept {
    return l_nonzeros_ + u_nonzeros_ + n_ + eta_nonzeros_;
  }

  /// x <- B^{-1} x  (input indexed by original row, output by slot).
  /// Pass `cache_spike = true` when x is the entering column of a
  /// simplex pivot: the intermediate L^{-1} P a (and its support) is
  /// stashed so the following update() gets its spike for free.
  /// Other ftrans leave the cache untouched, so diagnostics between
  /// the entering solve and the update are harmless.
  void ftran(Vector& x, bool cache_spike = false) const;

  /// x <- B^{-T} x  (input indexed by slot, output by original row).
  void btran(Vector& x) const;

 private:
  struct RowEta {
    std::size_t p = 0;     // spiked label (last in order at record time)
    SparseColumn terms;    // (label j, r_j): z[p] -= sum r_j z[j]
  };

  SparseLu lu_;
  std::size_t n_ = 0;
  // Dynamic U by stable label.  Invariant: every entry (row k, col j)
  // satisfies order_of_label_[k] < order_of_label_[j].
  std::vector<SparseColumn> ucols_;  // (row label, value) off-diagonals
  std::vector<SparseColumn> urows_;  // mirror: (col label, value)
  Vector udiag_;
  std::vector<std::size_t> order_of_label_;
  std::vector<std::size_t> label_at_order_;
  std::vector<std::size_t> slot_of_label_;  // label -> caller basis slot
  std::vector<std::size_t> label_of_slot_;  // caller basis slot -> label
  std::vector<RowEta> etas_;
  // Spike cache: ftran's intermediate z (post L-solve and row etas,
  // pre U back-substitution) plus its nonzero support — exactly the
  // spike update() needs for the column the caller is about to pivot
  // in.
  mutable Vector partial_;
  mutable std::vector<std::size_t> partial_support_;
  mutable bool partial_valid_ = false;
  // Reusable solve/update workspaces (allocation-free steady state).
  // acc_ is kept all-zero between updates (the heap-driven row-eta
  // solve re-zeroes every entry it touches).
  mutable Vector work_;
  mutable std::vector<std::size_t> support_;
  Vector acc_;
  std::size_t refactor_interval_;
  double pivot_tol_;
  double work_ratio_;
  std::size_t l_nonzeros_ = 0;    // base L entries (fixed per factorization)
  std::size_t u_nonzeros_ = 0;    // current off-diagonal U entries
  std::size_t u0_nonzeros_ = 0;   // U off-diagonals at the last refactor
  std::size_t eta_nonzeros_ = 0;  // row-eta entries accumulated
  std::size_t update_fill_ = 0;   // eta entries + net U growth per sweep
  mutable std::size_t sweep_extra_ = 0;  // integral of update_fill_ over
                                         // the sweeps since refactor
};

}  // namespace dpm::linalg
