// Sparse LU basis factorization for the revised simplex method.
//
// SparseLu factorizes a square matrix given as sparse columns with a
// right-looking elimination and dynamic Markowitz pivoting: at every
// step the pivot is chosen (among numerically safe candidates) to
// minimize the Markowitz fill bound (r-1)(c-1) over the *current* active
// submatrix, and the outer-product update is applied eagerly so row and
// column counts stay exact.  Flops are proportional to fill, and —
// unlike the earlier left-looking scheme — there is no O(n) scan per
// column, so refactorization cost tracks nnz(L+U), not n^2.
//
// BasisFactorization wraps it with a product-form eta file: each simplex
// pivot appends one eta column instead of refactorizing, and the
// factorization is rebuilt from scratch every `refactor_interval`
// updates (or sooner when an update pivot is too small) to bound error
// accumulation — the classic eta-update / periodic-refactorization
// scheme of sparse simplex codes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace dpm::linalg {

/// A sparse column: (row, value) pairs, unique rows.
using SparseColumn = std::vector<std::pair<std::size_t, double>>;

/// P A Q = LU of a square sparse matrix with dynamic Markowitz
/// pivoting: candidate columns are examined sparsest-first (count
/// buckets), and within a column the pivot row is chosen among
/// numerically safe entries (threshold partial pivoting,
/// |pivot| >= 0.1 * max of the column) to minimize (r-1)(c-1) — dense
/// rows (e.g. an LP's metric-constraint row) are deferred to the end
/// instead of spraying fill through every elimination step.
///
/// ftran solves B x = b (b indexed by original row, x indexed by the
/// caller's column); btran solves B^T y = c (c indexed by caller column,
/// y by original row).  This is exactly the index convention the revised
/// simplex needs: ftran maps right-hand sides to basic-variable values,
/// btran maps basic costs to row duals.
class SparseLu {
 public:
  SparseLu() = default;

  /// Factorizes the n x n matrix whose j-th column is `columns[j]`.
  /// Returns false (leaving the object unusable) when no pivot of
  /// magnitude above `pivot_tol` remains — numerically singular.
  bool factorize(std::size_t n, const std::vector<SparseColumn>& columns,
                 double pivot_tol = 1e-11);

  std::size_t order() const noexcept { return n_; }
  bool valid() const noexcept { return valid_; }

  /// Stored entries of L + U including the diagonal (fill metric for
  /// benches and tests; cached at factorization time).
  std::size_t factor_nonzeros() const noexcept { return factor_nnz_; }

  /// In place: x (indexed by original row on input) becomes the solution
  /// of B x = input, indexed by the caller's columns.
  void ftran(Vector& x) const;

  /// In place: x (indexed by caller column on input) becomes the
  /// solution of B^T y = input, indexed by original row.
  void btran(Vector& x) const;

 private:
  std::size_t n_ = 0;
  bool valid_ = false;
  std::size_t factor_nnz_ = 0;
  // L column k: multipliers at *original* row indices (unit diagonal
  // implicit).  U column k: entries U(k', k) at pivot positions k' < k,
  // plus the diagonal.  Positions follow the elimination order;
  // col_of_position_ maps them back to caller column indices.
  std::vector<SparseColumn> l_cols_;
  std::vector<SparseColumn> u_cols_;
  Vector u_diag_;
  std::vector<std::size_t> pivot_row_;     // pivot position -> original row
  std::vector<std::size_t> row_position_;  // original row -> pivot position
  std::vector<std::size_t> col_of_position_;  // position -> caller column
};

/// Basis handle for the revised simplex: LU plus an eta file.
class BasisFactorization {
 public:
  explicit BasisFactorization(std::size_t refactor_interval = 64,
                              double pivot_tol = 1e-11,
                              double eta_ratio = 2.0)
      : refactor_interval_(refactor_interval),
        pivot_tol_(pivot_tol),
        eta_ratio_(eta_ratio) {}

  /// (Re)factorizes from scratch; clears the eta file.  Returns false on
  /// a singular basis.
  bool refactorize(std::size_t n, const std::vector<SparseColumn>& columns);

  /// Rank-one basis change: position `r` is replaced by a column whose
  /// ftran image is `d` (i.e. d = B^{-1} a_entering, as produced by
  /// ftran()).  Appends one eta column.  Returns false when |d[r]| is
  /// too small or the eta file is full — the caller must refactorize.
  bool update(std::size_t r, const Vector& d);

  /// Number of eta columns appended since the last refactorization.
  std::size_t updates_since_refactor() const noexcept { return etas_.size(); }
  /// Refactorization trigger: the hard eta-count cap, or — the adaptive
  /// rule — once the eta file holds `eta_ratio` times more nonzeros than
  /// the LU factors.  A triangular solve costs ~1 flop per stored
  /// nonzero while rebuilding the factorization costs many (pivot
  /// search, scatter, fill bookkeeping), so the balance point sits well
  /// above parity; the ratio self-scales with fill: heavily filling
  /// bases (expensive factorizations) tolerate long eta files, cheap
  /// ones refactorize often.  The factor count is floored at
  /// kMinFactorNonzeros: below that size both rebuild and eta sweeps
  /// are measurement noise and a ratio of tiny numbers would thrash —
  /// small bases are effectively governed by the eta-count cap alone.
  /// `eta_ratio <= 0` disables the adaptive rule (pure fixed interval).
  static constexpr std::size_t kMinFactorNonzeros = 4096;
  bool needs_refactor() const noexcept {
    return etas_.size() >= refactor_interval_ ||
           (eta_ratio_ > 0.0 &&
            static_cast<double>(eta_nonzeros_) >
                eta_ratio_ * static_cast<double>(std::max(
                                 lu_.factor_nonzeros(), kMinFactorNonzeros)));
  }
  bool valid() const noexcept { return lu_.valid(); }

  std::size_t factor_nonzeros() const noexcept {
    return lu_.factor_nonzeros();
  }

  /// x <- B^{-1} x  (input indexed by original row, output by position).
  void ftran(Vector& x) const;

  /// x <- B^{-T} x  (input indexed by position, output by original row).
  void btran(Vector& x) const;

 private:
  struct Eta {
    std::size_t r = 0;     // replaced basis position
    SparseColumn column;   // eta column entries (position, value), incl. r
  };

  SparseLu lu_;
  std::vector<Eta> etas_;
  std::size_t refactor_interval_;
  double pivot_tol_;
  double eta_ratio_;
  std::size_t eta_nonzeros_ = 0;
};

}  // namespace dpm::linalg
