#include "linalg/cholesky.h"

#include <cmath>

namespace dpm::linalg {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a, double shift,
                                             double pivot_tol) {
  if (a.rows() != a.cols()) {
    throw LinalgError("cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + shift;
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag < pivot_tol) {
      throw LinalgError("cholesky: matrix is not positive definite");
    }
    l_(j, j) = std::sqrt(diag);
    const double inv = 1.0 / l_(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc * inv;
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  const std::size_t n = order();
  if (b.size() != n) {
    throw LinalgError("cholesky: rhs size mismatch");
  }
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

}  // namespace dpm::linalg
