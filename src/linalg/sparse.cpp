#include "linalg/sparse.h"

#include <algorithm>
#include <string>

namespace dpm::linalg {

SparseMatrixCsc SparseMatrixCsc::from_triplets(
    std::size_t rows, std::size_t cols, const std::vector<Triplet>& entries) {
  SparseMatrixCsc m;
  m.rows_ = rows;
  m.cols_ = cols;

  // Count entries per column, then bucket-place; duplicates are merged
  // in a second pass over each sorted column.
  std::vector<std::size_t> count(cols + 1, 0);
  for (const Triplet& t : entries) {
    if (t.row >= rows || t.col >= cols) {
      throw LinalgError("sparse: triplet (" + std::to_string(t.row) + "," +
                        std::to_string(t.col) + ") out of range");
    }
    ++count[t.col + 1];
  }
  std::vector<std::size_t> start(cols + 1, 0);
  for (std::size_t j = 0; j < cols; ++j) start[j + 1] = start[j] + count[j + 1];

  std::vector<std::size_t> rows_tmp(entries.size());
  std::vector<double> vals_tmp(entries.size());
  {
    std::vector<std::size_t> next(start.begin(), start.end() - 1);
    for (const Triplet& t : entries) {
      const std::size_t k = next[t.col]++;
      rows_tmp[k] = t.row;
      vals_tmp[k] = t.value;
    }
  }

  m.col_ptr_.assign(cols + 1, 0);
  m.row_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < cols; ++j) {
    order.assign(rows_tmp.begin() + static_cast<std::ptrdiff_t>(start[j]),
                 rows_tmp.begin() + static_cast<std::ptrdiff_t>(start[j + 1]));
    std::sort(order.begin(), order.end());
    order.erase(std::unique(order.begin(), order.end()), order.end());
    // Sum duplicates: for each distinct row, accumulate matching values.
    for (const std::size_t r : order) {
      double v = 0.0;
      for (std::size_t k = start[j]; k < start[j + 1]; ++k) {
        if (rows_tmp[k] == r) v += vals_tmp[k];
      }
      if (v != 0.0) {
        m.row_idx_.push_back(r);
        m.values_.push_back(v);
      }
    }
    m.col_ptr_[j + 1] = m.row_idx_.size();
  }
  return m;
}

double SparseMatrixCsc::coeff(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) {
    throw LinalgError("sparse: coeff index out of range");
  }
  const auto first =
      row_idx_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[j]);
  const auto last =
      row_idx_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[j + 1]);
  const auto it = std::lower_bound(first, last, i);
  if (it == last || *it != i) return 0.0;
  return values_[static_cast<std::size_t>(it - row_idx_.begin())];
}

Vector SparseMatrixCsc::multiply(const Vector& x) const {
  if (x.size() != cols_) throw LinalgError("sparse: multiply size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t j = 0; j < cols_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::size_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      y[row_idx_[k]] += values_[k] * xj;
    }
  }
  return y;
}

Vector SparseMatrixCsc::multiply_transposed(const Vector& x) const {
  if (x.size() != rows_) {
    throw LinalgError("sparse: multiply_transposed size mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t j = 0; j < cols_; ++j) {
    double acc = 0.0;
    for (std::size_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      acc += values_[k] * x[row_idx_[k]];
    }
    y[j] = acc;
  }
  return y;
}

Matrix SparseMatrixCsc::to_dense() const {
  Matrix d(rows_, cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    for (std::size_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      d(row_idx_[k], j) = values_[k];
    }
  }
  return d;
}

}  // namespace dpm::linalg
