// Dense-block kernels for the factorization's dense tail.
//
// Simplex bases of well-connected chains (and every expander-style
// model) fill toward the end of the elimination: PR 6's dense-tail
// switch already *eliminates* the trailing block with a contiguous
// kernel, but then re-emitted it into sparse (row, value) pair storage,
// so every triangular sweep walked 16 bytes + a cache miss per entry
// over what is really a dense matrix.  This header keeps that tail as a
// first-class dense block:
//
//  * `DenseBlock` is BasisFactorization's dynamic-U tail — a dim x dim
//    block over the contiguous label range [start, start + dim), stored
//    in *both* column-major and row-major layouts so ftran's column
//    scatters and btran's row scatters are each contiguous.  A
//    Forrest–Tomlin update patches it in place (zero_col / zero_row /
//    set) instead of churning sparse pair lists and their mirrors.
//  * The `tail_*` free functions are SparseLu's L-tail kernels: L never
//    changes between refactorizations, so the lower solves run straight
//    off the retained elimination buffer (column-major, L strictly
//    below the diagonal).
//
// Bitwise contract: an absent entry is stored as exact 0.0 and every
// kernel skips zeros, so the block applies exactly the term set the
// sparse pair storage would — results are bit-for-bit identical to the
// sparse-storage sweeps (property-tested in test_dense_block.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace dpm::linalg {

/// Dynamic dense tail of BasisFactorization's U, indexed by label
/// offset: entry (row label start+bi, column label start+bj) lives at
/// cm[bi + bj*dim] and rm[bj + bi*dim].  Invariant: value 0.0 <=>
/// entry absent (exactly the convention of the sparse storage, whose
/// emission drops exact zeros).
class DenseBlock {
 public:
  /// Blocks below this dimension stay in sparse storage: the dense
  /// representation only pays past the point where pair-list walks and
  /// mirror churn dominate (kDenseTailMin-sized tails are borderline;
  /// anything the dense-tail elimination produces qualifies).
  static constexpr std::size_t kMinDim = 96;

  void clear() noexcept {
    start_ = 0;
    dim_ = 0;
    nnz_ = 0;
  }
  /// Re-shapes to a zeroed dim x dim block over labels [start, ..).
  void reset(std::size_t start, std::size_t dim);
  /// Loads the strictly-above-diagonal entries of a retained
  /// elimination buffer (column-major r x r, SparseLu::tail_values()
  /// layout) as a fresh r x r block over labels [start, start + r).
  void load_upper(const double* lu, std::size_t r, std::size_t start);

  bool active() const noexcept { return dim_ > 0; }
  std::size_t start() const noexcept { return start_; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t end() const noexcept { return start_ + dim_; }
  bool contains(std::size_t label) const noexcept {
    return label >= start_ && label < start_ + dim_;
  }
  /// Stored nonzero entries (maintained by set / zero_col / zero_row —
  /// the accounting BasisFactorization's refactorization trigger reads).
  std::size_t nonzeros() const noexcept { return nnz_; }

  double at(std::size_t bi, std::size_t bj) const noexcept {
    return cm_[bi + bj * dim_];
  }
  /// Writes entry (bi, bj) into both layouts, keeping the nonzero count
  /// exact (the slot may hold an older value).
  void set(std::size_t bi, std::size_t bj, double v) noexcept {
    double& slot = cm_[bi + bj * dim_];
    nnz_ += (v != 0.0) - (slot != 0.0);
    slot = v;
    rm_[bj + bi * dim_] = v;
    if (v != 0.0) {
      if (bi + 1 > col_hi_[bj]) col_hi_[bj] = bi + 1;
      if (bj + 1 > row_hi_[bi]) row_hi_[bi] = bj + 1;
      if (bj < row_lo_[bi]) row_lo_[bi] = bj;
    }
  }
  /// Zeroes column bj (contiguous in cm, strided in rm); returns the
  /// number of nonzeros removed.
  std::size_t zero_col(std::size_t bj) noexcept;
  /// Zeroes row bi (contiguous in rm, strided in cm); returns removed.
  std::size_t zero_row(std::size_t bi) noexcept;

  /// ftran column scatter: z[bi] -= xj * U(bi, bj) over the column's
  /// nonzeros, z addressed at label `start` (caller passes z + start).
  /// Out-of-line: dense_block.cpp is compiled with vector-ISA flags so
  /// the zero-guarded loops if-convert to masked SIMD (bitwise-exact —
  /// absent slots are never operated on).
  void col_axpy_sub(std::size_t bj, double xj, double* z) const noexcept;
  /// Spike-fallback column accumulate: s[bi] += dj * U(bi, bj) over the
  /// column's nonzeros, s addressed at label `start`.
  void col_axpy_add(std::size_t bj, double dj, double* s) const noexcept;
  /// btran row scatter: v[bj] -= tj * U(bi, bj) over the row's
  /// nonzeros, v addressed at label `start`.
  void row_axpy_sub(std::size_t bi, double tj, double* v) const noexcept;
  /// Unguarded row accumulate for the update's eta solve:
  /// acc[bj] -= rj * U(bi, bj) over the row's hinted range with NO
  /// zero test — absent slots subtract an exact zero.  Only safe where
  /// the caller cannot observe the sign of a zero accumulator (the eta
  /// solve skips zero pops sign-insensitively); the sweep kernels must
  /// keep their guards.
  void row_axpy_sub_all(std::size_t bi, double rj, double* acc) const noexcept;
  /// Copies the row's hinted range verbatim into acc (slots outside the
  /// range are untouched; the caller guarantees they are already zero).
  void copy_row(std::size_t bi, double* acc) const noexcept;
  /// Row view (row-major, contiguous) — the update's row-eta solve
  /// walks rows of U to propagate the elimination.
  const double* row(std::size_t bi) const noexcept {
    return rm_.data() + bi * dim_;
  }
  /// One past the last column that can be nonzero in row bi (an upper
  /// bound; slots beyond it are exact zeros).  Bounds row() walks.
  std::size_t row_extent(std::size_t bi) const noexcept { return row_hi_[bi]; }
  /// First column that can be nonzero in row bi (a lower bound; slots
  /// before it are exact zeros).  U rows live right of the diagonal, so
  /// skipping the prefix halves the average row walk.
  std::size_t row_begin(std::size_t bi) const noexcept { return row_lo_[bi]; }

 private:
  std::size_t start_ = 0;
  std::size_t dim_ = 0;
  std::size_t nnz_ = 0;
  Vector cm_;  // column-major values
  Vector rm_;  // row-major values
  // Nonzero-extent hints: col_hi_[bj] / row_hi_[bi] are one past the
  // last slot that can hold a nonzero in that column / row, and
  // row_lo_[bi] is the first.  Exact after load_upper (triangular:
  // col_hi_[bj] <= bj, row_lo_[bi] > bi), widened by set(), reset by
  // zero_col / zero_row.  Kernels iterate only the hinted range —
  // slots outside it are exact zeros, so skipping them is a pure
  // optimization with no bitwise effect.
  std::vector<std::size_t> col_hi_;
  std::vector<std::size_t> row_hi_;
  std::vector<std::size_t> row_lo_;
};

// --- SparseLu L-tail kernels -----------------------------------------
// `tail` is the retained dense elimination buffer: column-major r x r,
// L multipliers strictly below the diagonal (unit diagonal implicit),
// U on and above (ignored here).  All kernels skip exact zeros — the
// bitwise contract with the sparse-storage sweeps.

/// Forward L-solve over the tail in position space: w[s] is the
/// accumulated rhs for tail slot s on entry; on exit w[s] holds z
/// values (w[s] == z[pos0 + s]).  Returns nothing; zero rhs slots are
/// skipped exactly like the sparse loop.
void tail_lower_solve(const double* tail, std::size_t r, double* w) noexcept;

/// Transposed L-solve over the tail: t (position space, addressed at
/// pos0) is solved in place, descending — the exact gather order of the
/// sparse column storage (entries were emitted ascending).
void tail_lower_transpose_solve(const double* tail, std::size_t r,
                                double* t) noexcept;

/// U back-substitution over the tail for SparseLu's standalone ftran:
/// z (position space, addressed at pos0) already divided?  No — z[s]
/// holds the post-L rhs; diag[s] is U(s, s); on exit z[s] holds the
/// solution for tail slot s.  Scatter form, descending columns.
void tail_upper_solve(const double* tail, std::size_t r, const double* diag,
                      double* z) noexcept;

/// Transposed-U forward solve for SparseLu's standalone btran: gather
/// form per column (static factor, ascending entries), t addressed at
/// pos0, rhs in t on entry, solution on exit.
void tail_upper_transpose_solve(const double* tail, std::size_t r,
                                const double* diag, double* t) noexcept;

}  // namespace dpm::linalg
