// This translation unit is compiled with vector-ISA flags plus
// -ffp-contract=off (see src/CMakeLists rules): the zero-guarded axpy
// loops below if-convert to masked SIMD, while contraction stays off so
// every multiply-subtract rounds exactly like the scalar sparse-storage
// sweeps — the bitwise contract in dense_block.h depends on it.
#include "linalg/dense_block.h"

#include <algorithm>

namespace dpm::linalg {

void DenseBlock::reset(std::size_t start, std::size_t dim) {
  start_ = start;
  dim_ = dim;
  nnz_ = 0;
  cm_.assign(dim * dim, 0.0);
  rm_.assign(dim * dim, 0.0);
  col_hi_.assign(dim, 0);
  row_hi_.assign(dim, 0);
  row_lo_.assign(dim, dim);
}

void DenseBlock::load_upper(const double* lu, std::size_t r,
                            std::size_t start) {
  reset(start, r);
  for (std::size_t bj = 0; bj < r; ++bj) {
    const double* src = lu + bj * r;
    double* dst = cm_.data() + bj * r;
    for (std::size_t bi = 0; bi < bj; ++bi) {
      const double v = src[bi];
      if (v == 0.0) continue;
      dst[bi] = v;
      rm_[bj + bi * r] = v;
      ++nnz_;
      col_hi_[bj] = bi + 1;
      if (bj + 1 > row_hi_[bi]) row_hi_[bi] = bj + 1;
      if (bj < row_lo_[bi]) row_lo_[bi] = bj;
    }
  }
}

std::size_t DenseBlock::zero_col(std::size_t bj) noexcept {
  double* c = cm_.data() + bj * dim_;
  double* r = rm_.data() + bj;
  std::size_t removed = 0;
  const std::size_t hi = col_hi_[bj];
  for (std::size_t bi = 0; bi < hi; ++bi) {
    if (c[bi] != 0.0) {
      ++removed;
      c[bi] = 0.0;
      r[bi * dim_] = 0.0;
    }
  }
  nnz_ -= removed;
  col_hi_[bj] = 0;
  return removed;
}

std::size_t DenseBlock::zero_row(std::size_t bi) noexcept {
  double* r = rm_.data() + bi * dim_;
  double* c = cm_.data() + bi;
  std::size_t removed = 0;
  const std::size_t hi = row_hi_[bi];
  for (std::size_t bj = row_lo_[bi]; bj < hi; ++bj) {
    if (r[bj] != 0.0) {
      ++removed;
      r[bj] = 0.0;
      c[bj * dim_] = 0.0;
    }
  }
  nnz_ -= removed;
  row_hi_[bi] = 0;
  row_lo_[bi] = dim_;
  return removed;
}

void DenseBlock::col_axpy_sub(std::size_t bj, double xj,
                              double* z) const noexcept {
  const double* c = cm_.data() + bj * dim_;
  const std::size_t hi = col_hi_[bj];
  for (std::size_t bi = 0; bi < hi; ++bi) {
    const double u = c[bi];
    if (u != 0.0) z[bi] -= xj * u;
  }
}

void DenseBlock::col_axpy_add(std::size_t bj, double dj,
                              double* s) const noexcept {
  const double* c = cm_.data() + bj * dim_;
  const std::size_t hi = col_hi_[bj];
  for (std::size_t bi = 0; bi < hi; ++bi) {
    const double u = c[bi];
    if (u != 0.0) s[bi] += dj * u;
  }
}

void DenseBlock::row_axpy_sub(std::size_t bi, double tj,
                              double* v) const noexcept {
  const double* w = rm_.data() + bi * dim_;
  const std::size_t hi = row_hi_[bi];
  for (std::size_t bj = row_lo_[bi]; bj < hi; ++bj) {
    const double u = w[bj];
    if (u != 0.0) v[bj] -= tj * u;
  }
}

void DenseBlock::row_axpy_sub_all(std::size_t bi, double rj,
                                  double* acc) const noexcept {
  const double* w = rm_.data() + bi * dim_;
  const std::size_t hi = row_hi_[bi];
  for (std::size_t bj = row_lo_[bi]; bj < hi; ++bj) acc[bj] -= rj * w[bj];
}

void DenseBlock::copy_row(std::size_t bi, double* acc) const noexcept {
  const double* w = rm_.data() + bi * dim_;
  const std::size_t hi = row_hi_[bi];
  for (std::size_t bj = row_lo_[bi]; bj < hi; ++bj) acc[bj] = w[bj];
}

void tail_lower_solve(const double* tail, std::size_t r, double* w) noexcept {
  for (std::size_t s = 0; s < r; ++s) {
    const double zs = w[s];
    if (zs == 0.0) continue;
    const double* col = tail + s * r;
    for (std::size_t i = s + 1; i < r; ++i) {
      const double lv = col[i];
      if (lv != 0.0) w[i] -= zs * lv;
    }
  }
}

void tail_lower_transpose_solve(const double* tail, std::size_t r,
                                double* t) noexcept {
  for (std::size_t s = r; s-- > 0;) {
    const double* col = tail + s * r;
    double acc = t[s];
    for (std::size_t i = s + 1; i < r; ++i) {
      const double lv = col[i];
      if (lv != 0.0) acc -= lv * t[i];
    }
    t[s] = acc;
  }
}

void tail_upper_solve(const double* tail, std::size_t r, const double* diag,
                      double* z) noexcept {
  // Divide-then-skip, the exact form of SparseLu::ftran's sparse loop
  // (a zero rhs still records the signed zero the division produces).
  for (std::size_t s = r; s-- > 0;) {
    const double xs = z[s] / diag[s];
    z[s] = xs;
    if (xs == 0.0) continue;
    const double* col = tail + s * r;
    for (std::size_t i = 0; i < s; ++i) {
      const double uv = col[i];
      if (uv != 0.0) z[i] -= xs * uv;
    }
  }
}

void tail_upper_transpose_solve(const double* tail, std::size_t r,
                                const double* diag, double* t) noexcept {
  // Unconditional divide, the exact form of SparseLu::btran's loop.
  for (std::size_t s = 0; s < r; ++s) {
    const double* col = tail + s * r;
    double acc = t[s];
    for (std::size_t i = 0; i < s; ++i) {
      const double uv = col[i];
      if (uv != 0.0) acc -= uv * t[i];
    }
    t[s] = acc / diag[s];
  }
}

}  // namespace dpm::linalg
