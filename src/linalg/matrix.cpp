#include "linalg/matrix.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dpm::linalg {

namespace {

[[noreturn]] void throw_shape(const char* op, std::size_t ar, std::size_t ac,
                              std::size_t br, std::size_t bc) {
  std::ostringstream os;
  os << "linalg: shape mismatch in " << op << ": (" << ar << "x" << ac
     << ") vs (" << br << "x" << bc << ")";
  throw LinalgError(os.str());
}

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw LinalgError("linalg: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) {
    throw LinalgError("linalg: index out of range");
  }
  return data_[i * cols_ + j];
}

double Matrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) {
    throw LinalgError("linalg: index out of range");
  }
  return data_[i * cols_ + j];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw_shape("operator+=", rows_, cols_, rhs.rows_, rhs.cols_);
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw_shape("operator-=", rows_, cols_, rhs.rows_, rhs.cols_);
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw_shape("operator*", rows_, cols_, rhs.rows_, rhs.cols_);
  }
  Matrix out(rows_, rhs.cols_);
  // ikj loop order: streams through both operands row-major.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  if (cols_ != v.size()) {
    throw_shape("matvec", rows_, cols_, v.size(), 1);
  }
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* row = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) {
    throw_shape("max_abs_diff", a.rows_, a.cols_, b.rows_, b.cols_);
  }
  double m = 0.0;
  for (std::size_t k = 0; k < a.data_.size(); ++k) {
    m = std::max(m, std::abs(a.data_[k] - b.data_[k]));
  }
  return m;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

Vector left_multiply(const Vector& v, const Matrix& m) {
  if (v.size() != m.rows()) {
    throw LinalgError("linalg: left_multiply size mismatch");
  }
  Vector out(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += vi * m(i, j);
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw LinalgError("linalg: dot size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(const Vector& v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  if (a.size() != b.size()) {
    throw LinalgError("linalg: axpy size mismatch");
  }
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

double sum(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[[" : " [");
    for (std::size_t j = 0; j < m.cols(); ++j) {
      os << std::setw(10) << std::setprecision(4) << m(i, j)
         << (j + 1 < m.cols() ? ", " : "");
    }
    os << (i + 1 < m.rows() ? "]\n" : "]]");
  }
  return os;
}

}  // namespace dpm::linalg
