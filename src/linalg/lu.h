// LU factorization with partial pivoting.
//
// Used by the DPM core for exact discounted policy evaluation
// (solving (I - gamma * P_delta)^T x = p0) and by tests to cross-check
// LP solutions.
#pragma once

#include "linalg/matrix.h"

namespace dpm::linalg {

/// PA = LU factorization of a square matrix, computed once, reusable for
/// many right-hand sides.
///
/// Throws LinalgError when the matrix is non-square or numerically
/// singular (pivot magnitude below `pivot_tol`).
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a, double pivot_tol = 1e-12);

  std::size_t order() const noexcept { return lu_.rows(); }

  /// Solve A x = b.
  Vector solve(const Vector& b) const;

  /// Solve A^T x = b (useful for left-eigenvector style systems without
  /// forming the transpose).
  Vector solve_transposed(const Vector& b) const;

  /// Inverse of A (n solves); prefer solve() when possible.
  Matrix inverse() const;

  /// Determinant (product of pivots with permutation sign).
  double determinant() const noexcept;

 private:
  Matrix lu_;                      // packed L (unit lower) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
Vector solve(const Matrix& a, const Vector& b);

}  // namespace dpm::linalg
