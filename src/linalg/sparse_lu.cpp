#include "linalg/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

namespace dpm::linalg {

namespace {

constexpr std::size_t kNoPosition = std::numeric_limits<std::size_t>::max();

/// Threshold partial pivoting factor: entries within 1/10 of the
/// column's largest magnitude are numerically acceptable pivots.
constexpr double kPivotThreshold = 0.1;

/// How many numerically acceptable candidate columns the Markowitz
/// search examines before settling (Suhl-style bounded search; the
/// classic compromise between fill quality and search cost).
constexpr std::size_t kMarkowitzCandidates = 8;

/// Forrest–Tomlin update acceptance: the transformed diagonal must
/// clear an absolute floor (mirroring the eta-file's old pivot check)
/// and a relative floor against the spike magnitude, else the update
/// would amplify roundoff and the caller refactorizes instead.
constexpr double kUpdateAbsTol = 1e-9;
constexpr double kUpdateRelTol = 1e-10;

/// Spike / row-eta entries below this fraction of the spike's largest
/// magnitude are dropped — near-cancellation junk that would only bloat
/// the update fill (periodic refactorization bounds the drift).
constexpr double kDropTol = 1e-13;

}  // namespace

bool SparseLu::factorize(std::size_t n,
                         const std::vector<SparseColumn>& columns,
                         double pivot_tol) {
  if (columns.size() != n) {
    throw LinalgError("sparse-lu: column count does not match order");
  }
  n_ = n;
  valid_ = false;
  factor_nnz_ = 0;
  factor_ops_ = 0;
  l_cols_.assign(n, {});
  u_cols_.assign(n, {});
  u_diag_.assign(n, 0.0);
  pivot_row_.assign(n, 0);
  row_position_.assign(n, kNoPosition);
  col_of_position_.assign(n, 0);

  // --- active-submatrix working set -------------------------------------
  // Column-wise values (authoritative) + row-wise patterns (may hold
  // stale column ids, filtered on use) + exact row/column counts.
  std::vector<SparseColumn> acols(n);
  std::vector<std::vector<std::size_t>> row_cols(n);
  std::vector<std::size_t> row_count(n, 0), col_count(n, 0);
  std::vector<char> col_active(n, 1);

  // Dense scatter workspace for merging duplicates and applying updates:
  // pos_in_col[r] = 1 + index of row r inside the column being touched.
  std::vector<std::size_t> pos_in_col(n, 0);

  for (std::size_t j = 0; j < n; ++j) {
    SparseColumn& col = acols[j];
    col.reserve(columns[j].size());
    for (const auto& [r, v] : columns[j]) {
      if (r >= n) throw LinalgError("sparse-lu: row index out of range");
      if (v == 0.0) continue;
      if (pos_in_col[r] == 0) {
        col.emplace_back(r, v);
        pos_in_col[r] = col.size();
      } else {
        col[pos_in_col[r] - 1].second += v;
      }
    }
    for (const auto& [r, v] : col) pos_in_col[r] = 0;
    col_count[j] = col.size();
    for (const auto& [r, v] : col) {
      ++row_count[r];
      row_cols[r].push_back(j);
    }
  }

  // Column-count buckets (lazy: a column is re-pushed whenever its count
  // changes; stale entries are filtered when popped).
  std::vector<std::vector<std::size_t>> buckets(n + 1);
  for (std::size_t j = 0; j < n; ++j) buckets[col_count[j]].push_back(j);

  // U(k', k) entries accumulate per *caller column* while the column is
  // still active; they become u_cols_ when the column is pivoted.
  std::vector<SparseColumn> u_stash(n);

  for (std::size_t pos = 0; pos < n; ++pos) {
    // --- Markowitz pivot search ---------------------------------------
    std::size_t best_col = kNoPosition, best_row = kNoPosition;
    double best_val = 0.0;
    std::size_t best_cost = kNoPosition;
    std::size_t candidates = 0;
    for (std::size_t count = 0; count <= n && best_cost > 0; ++count) {
      if (count == 0) {
        // A count-0 active column has no entry in any unpivoted row:
        // structurally singular.
        bool empty_active = false;
        for (const std::size_t j : buckets[0]) {
          if (col_active[j] && col_count[j] == 0) empty_active = true;
        }
        if (empty_active) return false;
        continue;
      }
      // Lower bound for any column of this count is (count-1) * 0; the
      // classic search cutoff accepts the incumbent once no column of
      // the next count can beat it under the (c-1)^2 heuristic bound.
      if (best_cost != kNoPosition && best_cost <= (count - 1) * (count - 1)) {
        break;
      }
      std::vector<std::size_t>& bucket = buckets[count];
      for (std::size_t bi = 0; bi < bucket.size();) {
        const std::size_t j = bucket[bi];
        if (!col_active[j] || col_count[j] != count) {
          // Stale: drop via swap-pop.
          bucket[bi] = bucket.back();
          bucket.pop_back();
          continue;
        }
        ++bi;
        factor_ops_ += acols[j].size();  // candidate scan work
        double max_abs = 0.0;
        for (const auto& [r, v] : acols[j]) {
          max_abs = std::max(max_abs, std::abs(v));
        }
        if (max_abs <= pivot_tol) continue;  // numerically unusable now
        const double threshold = kPivotThreshold * max_abs;
        std::size_t cand_row = kNoPosition;
        double cand_val = 0.0;
        std::size_t cand_cost = kNoPosition;
        double cand_abs = 0.0;
        for (const auto& [r, v] : acols[j]) {
          const double a = std::abs(v);
          if (a < threshold) continue;
          const std::size_t cost = (row_count[r] - 1) * (count - 1);
          if (cost < cand_cost || (cost == cand_cost && a > cand_abs)) {
            cand_cost = cost;
            cand_abs = a;
            cand_row = r;
            cand_val = v;
          }
        }
        if (cand_row == kNoPosition) continue;
        ++candidates;
        if (cand_cost < best_cost) {
          best_cost = cand_cost;
          best_col = j;
          best_row = cand_row;
          best_val = cand_val;
        }
        if (candidates >= kMarkowitzCandidates || best_cost == 0) break;
      }
      if (candidates >= kMarkowitzCandidates) break;
    }
    if (best_col == kNoPosition) return false;  // numerically singular

    // --- record pivot -------------------------------------------------
    const std::size_t cp = best_col, rp = best_row;
    const double piv = best_val;
    u_diag_[pos] = piv;
    pivot_row_[pos] = rp;
    row_position_[rp] = pos;
    col_of_position_[pos] = cp;
    u_cols_[pos] = std::move(u_stash[cp]);
    col_active[cp] = 0;

    // L multipliers: the pivot column's remaining active entries.
    SparseColumn& lcol = l_cols_[pos];
    lcol.reserve(acols[cp].size() - 1);
    for (const auto& [r, v] : acols[cp]) {
      if (r == rp) continue;
      lcol.emplace_back(r, v / piv);
      --row_count[r];  // entry (r, cp) leaves the active matrix
    }
    acols[cp].clear();
    acols[cp].shrink_to_fit();

    // --- right-looking update of every column with an entry in row rp -
    std::vector<std::size_t>& prow = row_cols[rp];
    for (const std::size_t j : prow) {
      if (!col_active[j]) continue;  // stale or already pivoted
      SparseColumn& col = acols[j];
      // Locate and extract the U entry (rp, j).
      double urj = 0.0;
      bool found = false;
      for (std::size_t k = 0; k < col.size(); ++k) {
        if (col[k].first == rp) {
          urj = col[k].second;
          col[k] = col.back();
          col.pop_back();
          found = true;
          break;
        }
      }
      if (!found) continue;  // stale row entry
      u_stash[j].emplace_back(pos, urj);
      --col_count[j];
      factor_ops_ += col.size();  // row-entry search + scatter setup
      if (urj != 0.0 && !lcol.empty()) {
        factor_ops_ += lcol.size() + col.size();
        // col_j -= (urj / piv) * col_cp, via scatter on the column.
        for (std::size_t k = 0; k < col.size(); ++k) {
          pos_in_col[col[k].first] = k + 1;
        }
        for (const auto& [r, l] : lcol) {
          const std::size_t where = pos_in_col[r];
          if (where != 0) {
            col[where - 1].second -= l * urj;
          } else {
            col.emplace_back(r, -l * urj);  // fill-in
            pos_in_col[r] = col.size();
            ++col_count[j];
            ++row_count[r];
            row_cols[r].push_back(j);
          }
        }
        for (const auto& [r, v] : col) pos_in_col[r] = 0;
      }
      buckets[col_count[j]].push_back(j);
    }
    prow.clear();
    prow.shrink_to_fit();
    row_count[rp] = 0;
  }
  factor_nnz_ = n;  // U diagonal
  for (const SparseColumn& c : l_cols_) factor_nnz_ += c.size();
  for (const SparseColumn& c : u_cols_) factor_nnz_ += c.size();
  valid_ = true;
  return true;
}

void SparseLu::lower_solve(Vector& x, Vector& z,
                           std::vector<std::size_t>* support) const {
  if (x.size() != n_) throw LinalgError("sparse-lu: ftran size mismatch");
  // Forward solve L z = P x, column oriented over original row indices;
  // x is the scatter workspace and is clobbered.
  z.assign(n_, 0.0);
  if (support != nullptr) support->clear();
  for (std::size_t k = 0; k < n_; ++k) {
    const double zk = x[pivot_row_[k]];
    z[k] = zk;
    if (zk == 0.0) continue;
    if (support != nullptr) support->push_back(k);
    for (const auto& [r, lv] : l_cols_[k]) x[r] -= zk * lv;
  }
}

void SparseLu::lower_transpose_solve(Vector& t, Vector& x) const {
  if (t.size() != n_ || x.size() != n_) {
    throw LinalgError("sparse-lu: btran size mismatch");
  }
  // Back solve L^T s = t: s[k] = t[k] - sum_{m > k} L(m, k) s[m], where
  // the L entry at original row r belongs to pivot position
  // row_position_[r] > k.
  for (std::size_t kk = n_; kk-- > 0;) {
    double acc = t[kk];
    for (const auto& [r, lv] : l_cols_[kk]) acc -= lv * t[row_position_[r]];
    t[kk] = acc;
  }
  // Scatter back to original row indexing: y[pivot_row_[k]] = t[k].
  for (std::size_t k = 0; k < n_; ++k) x[pivot_row_[k]] = t[k];
}

void SparseLu::ftran(Vector& x) const {
  Vector z;
  lower_solve(x, z);
  // Back substitution U out = z, column oriented.
  for (std::size_t jj = n_; jj-- > 0;) {
    const double xj = z[jj] / u_diag_[jj];
    z[jj] = xj;
    if (xj == 0.0) continue;
    for (const auto& [k, ukj] : u_cols_[jj]) z[k] -= xj * ukj;
  }
  // Undo the fill-reducing column permutation: position jj solved for
  // the caller's column col_of_position_[jj].
  for (std::size_t jj = 0; jj < n_; ++jj) x[col_of_position_[jj]] = z[jj];
}

void SparseLu::btran(Vector& x) const {
  if (x.size() != n_) throw LinalgError("sparse-lu: btran size mismatch");
  // Forward solve U^T t = c: u_cols_[j] holds exactly the U(k, j), k < j.
  // Input is indexed by caller column; map it through the fill-reducing
  // column permutation first.
  Vector t(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    double acc = x[col_of_position_[j]];
    for (const auto& [k, ukj] : u_cols_[j]) acc -= ukj * t[k];
    t[j] = acc / u_diag_[j];
  }
  lower_transpose_solve(t, x);
}

// ---------------------------------------------------------------------
// BasisFactorization: Forrest–Tomlin updates over a dynamic U
// ---------------------------------------------------------------------

bool BasisFactorization::refactorize(std::size_t n,
                                     const std::vector<SparseColumn>& columns) {
  etas_.clear();
  eta_nonzeros_ = 0;
  update_fill_ = 0;
  sweep_extra_ = 0;
  partial_valid_ = false;
  if (!lu_.factorize(n, columns, pivot_tol_)) return false;
  n_ = n;

  // Move U into the dynamic (label-indexed) structure — the SparseLu
  // keeps only its L half and permutations, which is all the split
  // solves need.  Labels start as elimination positions, the order as
  // the identity; updates only ever rewrite the order arrays.
  lu_.take_upper(ucols_, udiag_);
  // Rebuild the row mirror, keeping each row's capacity across
  // refactorizations (a fresh assign would free + reallocate thousands
  // of small buffers per refactor).
  if (urows_.size() != n) {
    urows_.assign(n, {});
  } else {
    for (SparseColumn& row : urows_) row.clear();
  }
  u_nonzeros_ = 0;
  for (std::size_t j = 0; j < n; ++j) {
    u_nonzeros_ += ucols_[j].size();
    for (const auto& [k, v] : ucols_[j]) urows_[k].emplace_back(j, v);
  }
  u0_nonzeros_ = u_nonzeros_;
  l_nonzeros_ = lu_.factor_nonzeros() - u_nonzeros_ - n;

  label_at_order_.resize(n);
  order_of_label_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    label_at_order_[i] = i;
    order_of_label_[i] = i;
  }
  acc_.assign(n, 0.0);
  slot_of_label_ = lu_.col_of_position();
  label_of_slot_.assign(n, 0);
  for (std::size_t lbl = 0; lbl < n; ++lbl) {
    label_of_slot_[slot_of_label_[lbl]] = lbl;
  }
  return true;
}

bool BasisFactorization::update(std::size_t r, const Vector& d) {
  if (etas_.size() >= refactor_interval_) return false;
  const std::size_t p = label_of_slot_[r];
  const std::size_t op = order_of_label_[p];

  // --- spike s = L^{-1} P a (label space) -----------------------------
  // Normally the cached partial (and its nonzero support) of the ftran
  // that produced `d`, taken by swap; the fallback reconstructs it as
  // U d (d is the full image B^{-1} a, and the U back-substitution is
  // the only step between the two).
  Vector s;
  std::vector<std::size_t>& s_support = support_;
  if (partial_valid_) {
    s.swap(partial_);
    s_support.swap(partial_support_);
  } else {
    s.assign(n_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      const double dj = d[slot_of_label_[j]];
      if (dj == 0.0) continue;
      s[j] += udiag_[j] * dj;
      for (const auto& [k, u] : ucols_[j]) s[k] += u * dj;
    }
    s_support.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) s_support[k] = k;
  }
  double smax = 0.0;
  for (const std::size_t k : s_support) {
    smax = std::max(smax, std::abs(s[k]));
  }

  // --- row eta: r^T restricted to labels ordered after p --------------
  // Eliminating the old row p of U (which becomes the last row after
  // the cyclic shift) against the diagonals of the later columns is a
  // sparse triangular solve r^T U_after = w^T.  A min-heap over order
  // indices visits exactly the reachable labels in triangular order —
  // cost proportional to the row's fan-out, not to n.  Every touched
  // acc_ entry is re-zeroed, so acc_ stays all-zero between updates.
  // Nothing is mutated yet: the solve never reads row p or column p.
  using OrderedLabel = std::pair<std::size_t, std::size_t>;  // (order, label)
  std::priority_queue<OrderedLabel, std::vector<OrderedLabel>,
                      std::greater<OrderedLabel>>
      heap;
  for (const auto& [j, u] : urows_[p]) {
    acc_[j] = u;
    heap.emplace(order_of_label_[j], j);
  }
  SparseColumn eta_terms;
  while (!heap.empty()) {
    const auto [oi, j] = heap.top();
    heap.pop();
    const double aj = acc_[j];
    if (aj == 0.0) continue;  // duplicate pop or exact cancellation
    acc_[j] = 0.0;
    const double rj = aj / udiag_[j];
    if (std::abs(rj) < kDropTol) continue;
    eta_terms.emplace_back(j, rj);
    for (const auto& [l, u] : urows_[j]) {
      if (acc_[l] == 0.0) heap.emplace(order_of_label_[l], l);
      acc_[l] -= rj * u;
    }
  }

  // --- transformed diagonal + stability test --------------------------
  double new_diag = s[p];
  for (const auto& [j, rj] : eta_terms) new_diag -= rj * s[j];
  if (!std::isfinite(new_diag) || std::abs(new_diag) < kUpdateAbsTol ||
      std::abs(new_diag) < kUpdateRelTol * smax) {
    s.swap(partial_);  // hand the buffer back for reuse
    s_support.swap(partial_support_);
    return false;  // unsafe pivot: caller refactorizes from scratch
  }

  // --- commit: drop old column p and old row p ------------------------
  const std::size_t removed = ucols_[p].size() + urows_[p].size();
  for (const auto& [k, u] : ucols_[p]) {
    SparseColumn& mirror = urows_[k];
    for (std::size_t i = 0; i < mirror.size(); ++i) {
      if (mirror[i].first == p) {
        mirror[i] = mirror.back();
        mirror.pop_back();
        break;
      }
    }
  }
  for (const auto& [j, u] : urows_[p]) {
    SparseColumn& col = ucols_[j];
    for (std::size_t i = 0; i < col.size(); ++i) {
      if (col[i].first == p) {
        col[i] = col.back();
        col.pop_back();
        break;
      }
    }
  }
  ucols_[p].clear();
  urows_[p].clear();

  // --- install the spike as the new last column -----------------------
  // Zeroing installed entries guards against duplicate support labels
  // (a row eta can re-light a position the L-solve already listed).
  const double drop = kDropTol * std::max(smax, 1.0);
  SparseColumn& spike_col = ucols_[p];
  for (const std::size_t k : s_support) {
    const double v = s[k];
    if (k == p || std::abs(v) <= drop) continue;
    spike_col.emplace_back(k, v);
    urows_[k].emplace_back(p, v);
    s[k] = 0.0;
  }
  udiag_[p] = new_diag;
  s.swap(partial_);  // hand the buffer back for reuse
  s_support.swap(partial_support_);

  // --- cyclic reorder: p moves to the end, later labels shift up ------
  for (std::size_t oi = op; oi + 1 < n_; ++oi) {
    const std::size_t lbl = label_at_order_[oi + 1];
    label_at_order_[oi] = lbl;
    order_of_label_[lbl] = oi;
  }
  label_at_order_[n_ - 1] = p;
  order_of_label_[p] = n_ - 1;

  // --- bookkeeping ----------------------------------------------------
  u_nonzeros_ += spike_col.size();
  u_nonzeros_ -= removed;
  eta_nonzeros_ += eta_terms.size();
  // The adaptive-refactorization metric tracks what a sweep actually
  // pays on top of a fresh factorization: the row-eta file plus U's
  // *net* growth — the spike replaces a column and retires a row, so
  // gross spike fill would wildly overstate the drift.
  update_fill_ =
      eta_nonzeros_ +
      (u_nonzeros_ > u0_nonzeros_ ? u_nonzeros_ - u0_nonzeros_ : 0);
  etas_.push_back(RowEta{p, std::move(eta_terms)});
  partial_valid_ = false;  // the factorization changed under the cache
  return true;
}

void BasisFactorization::ftran(Vector& x, bool cache_spike) const {
  sweep_extra_ += update_fill_;
  Vector& z = work_;
  lu_.lower_solve(x, z, cache_spike ? &support_ : nullptr);
  // Row etas, chronological: each one folds the eliminated old pivot
  // row of its update into the spiked label's component.
  for (const RowEta& e : etas_) {
    double acc = z[e.p];
    for (const auto& [j, rj] : e.terms) acc -= rj * z[j];
    if (cache_spike && z[e.p] == 0.0 && acc != 0.0) support_.push_back(e.p);
    z[e.p] = acc;
  }
  if (cache_spike) {
    // Stash the partial result + support: update() reuses it as the
    // spike of this entering column.
    partial_ = z;
    partial_support_ = support_;
    partial_valid_ = true;
  }
  // Back substitution over the dynamic U in current order.
  for (std::size_t oi = n_; oi-- > 0;) {
    const std::size_t j = label_at_order_[oi];
    const double xj = z[j] / udiag_[j];
    z[j] = xj;
    if (xj == 0.0) continue;
    for (const auto& [k, u] : ucols_[j]) z[k] -= xj * u;
  }
  for (std::size_t lbl = 0; lbl < n_; ++lbl) x[slot_of_label_[lbl]] = z[lbl];
}

void BasisFactorization::btran(Vector& x) const {
  if (x.size() != n_) throw LinalgError("basis-factorization: btran size");
  sweep_extra_ += update_fill_;
  Vector& v = work_;
  v.resize(n_);
  for (std::size_t lbl = 0; lbl < n_; ++lbl) v[lbl] = x[slot_of_label_[lbl]];
  // Forward solve U^T in current order.
  for (std::size_t oi = 0; oi < n_; ++oi) {
    const std::size_t j = label_at_order_[oi];
    double a = v[j];
    for (const auto& [k, u] : ucols_[j]) a -= u * v[k];
    v[j] = a / udiag_[j];
  }
  // Row etas transposed, reverse chronological.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const double vp = v[it->p];
    if (vp == 0.0) continue;
    for (const auto& [j, rj] : it->terms) v[j] -= rj * vp;
  }
  lu_.lower_transpose_solve(v, x);
}

}  // namespace dpm::linalg
