#include "linalg/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

#include "robust/probe.h"

namespace dpm::linalg {

namespace {

/// Injected-fault spike (robust::FaultSite::kFtranSpike /
/// kBtranSpike): models a detected non-finite solve result.  Thrown
/// (not silently poisoned) because a NaN that lands in a heuristic
/// vector — Devex weights, DSE taus — would steer the pivot trajectory
/// without ever failing a correctness check; the typed error makes the
/// corruption a structured, recoverable failure at the point of
/// detection.  Only ever runs when an armed fault plan fires.
[[noreturn]] void injected_spike(const char* op) {
  throw LinalgError(std::string("basis-factorization: injected nonfinite ") +
                    op + " spike");
}

constexpr std::size_t kNoPosition = std::numeric_limits<std::size_t>::max();

/// Threshold partial pivoting factor: entries within 1/10 of the
/// column's largest magnitude are numerically acceptable pivots.
constexpr double kPivotThreshold = 0.1;

/// How many numerically acceptable candidate columns the Markowitz
/// search examines before settling (Suhl-style bounded search; the
/// classic compromise between fill quality and search cost).
constexpr std::size_t kMarkowitzCandidates = 8;

/// Forrest–Tomlin update acceptance: the transformed diagonal must
/// clear an absolute floor (mirroring the eta-file's old pivot check)
/// and a relative floor against the spike magnitude, else the update
/// would amplify roundoff and the caller refactorizes instead.
constexpr double kUpdateAbsTol = 1e-9;
constexpr double kUpdateRelTol = 1e-10;

/// Spike / row-eta entries below this fraction of the spike's largest
/// magnitude are dropped — near-cancellation junk that would only bloat
/// the update fill (periodic refactorization bounds the drift).
constexpr double kDropTol = 1e-13;

}  // namespace

bool SparseLu::factorize(std::size_t n,
                         const std::vector<SparseColumn>& columns,
                         double pivot_tol) {
  if (columns.size() != n) {
    throw LinalgError("sparse-lu: column count does not match order");
  }
  n_ = n;
  valid_ = false;
  // Fault injection: report this basis as singular, exactly like a
  // structurally deficient matrix below.
  if (robust::probe(robust::FaultSite::kLuFactorize)) return false;
  factor_nnz_ = 0;
  factor_ops_ = 0;
  tail_dim_ = 0;
  tail_nnz_ = 0;
  tail_retained_ = false;
  lower_gate_.reset();
  ltrans_gate_.reset();
  l_cols_.assign(n, {});
  u_cols_.assign(n, {});
  u_diag_.assign(n, 0.0);
  pivot_row_.assign(n, 0);
  row_position_.assign(n, kNoPosition);
  col_of_position_.assign(n, 0);

  // --- active-submatrix working set -------------------------------------
  // Column-wise values (authoritative) + row-wise patterns (may hold
  // stale column ids, filtered on use) + exact row/column counts.
  std::vector<SparseColumn> acols(n);
  std::vector<std::vector<std::size_t>> row_cols(n);
  std::vector<std::size_t> row_count(n, 0), col_count(n, 0);
  std::vector<char> col_active(n, 1);

  // Dense scatter workspace for merging duplicates and applying updates:
  // pos_in_col[r] = 1 + index of row r inside the column being touched.
  std::vector<std::size_t> pos_in_col(n, 0);

  for (std::size_t j = 0; j < n; ++j) {
    SparseColumn& col = acols[j];
    col.reserve(columns[j].size());
    for (const auto& [r, v] : columns[j]) {
      if (r >= n) throw LinalgError("sparse-lu: row index out of range");
      if (v == 0.0) continue;
      if (pos_in_col[r] == 0) {
        col.emplace_back(r, v);
        pos_in_col[r] = col.size();
      } else {
        col[pos_in_col[r] - 1].second += v;
      }
    }
    for (const auto& [r, v] : col) pos_in_col[r] = 0;
    col_count[j] = col.size();
    for (const auto& [r, v] : col) {
      ++row_count[r];
      row_cols[r].push_back(j);
    }
  }

  // Column-count buckets (lazy: a column is re-pushed whenever its count
  // changes; stale entries are filtered when popped).
  std::vector<std::vector<std::size_t>> buckets(n + 1);
  for (std::size_t j = 0; j < n; ++j) buckets[col_count[j]].push_back(j);

  // U(k', k) entries accumulate per *caller column* while the column is
  // still active; they become u_cols_ when the column is pivoted.
  std::vector<SparseColumn> u_stash(n);

  for (std::size_t pos = 0; pos < n; ++pos) {
    // --- dense-tail switch --------------------------------------------
    // Simplex bases of well-connected chains fill toward the end of the
    // elimination: the trailing few-hundred-square block routinely
    // reaches 80%+ density, where the scatter-based sparse update pays
    // hundreds of ns per entry against the ~1 flop/cycle of a
    // contiguous kernel.  Once the active submatrix crosses the density
    // threshold, finish it with dense partial-pivoted elimination.
    if (n - pos >= kDenseTailMin && n - pos <= kDenseTailMax &&
        pos % kDenseTailCheck == 0) {
      const std::size_t r = n - pos;
      std::size_t act = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (col_active[j]) act += acols[j].size();
      }
      if (static_cast<double>(act) >=
          kDenseTailDensity * static_cast<double>(r) * static_cast<double>(r)) {
        if (!dense_tail(pos, acols, col_active, u_stash, pivot_tol)) {
          return false;
        }
        break;
      }
    }
    // --- Markowitz pivot search ---------------------------------------
    std::size_t best_col = kNoPosition, best_row = kNoPosition;
    double best_val = 0.0;
    std::size_t best_cost = kNoPosition;
    std::size_t candidates = 0;
    for (std::size_t count = 0; count <= n && best_cost > 0; ++count) {
      if (count == 0) {
        // A count-0 active column has no entry in any unpivoted row:
        // structurally singular.
        bool empty_active = false;
        for (const std::size_t j : buckets[0]) {
          if (col_active[j] && col_count[j] == 0) empty_active = true;
        }
        if (empty_active) return false;
        continue;
      }
      // Lower bound for any column of this count is (count-1) * 0; the
      // classic search cutoff accepts the incumbent once no column of
      // the next count can beat it under the (c-1)^2 heuristic bound.
      if (best_cost != kNoPosition && best_cost <= (count - 1) * (count - 1)) {
        break;
      }
      std::vector<std::size_t>& bucket = buckets[count];
      for (std::size_t bi = 0; bi < bucket.size();) {
        const std::size_t j = bucket[bi];
        if (!col_active[j] || col_count[j] != count) {
          // Stale: drop via swap-pop.
          bucket[bi] = bucket.back();
          bucket.pop_back();
          continue;
        }
        ++bi;
        factor_ops_ += acols[j].size();  // candidate scan work
        double max_abs = 0.0;
        for (const auto& [r, v] : acols[j]) {
          max_abs = std::max(max_abs, std::abs(v));
        }
        if (max_abs <= pivot_tol) continue;  // numerically unusable now
        const double threshold = kPivotThreshold * max_abs;
        std::size_t cand_row = kNoPosition;
        double cand_val = 0.0;
        std::size_t cand_cost = kNoPosition;
        double cand_abs = 0.0;
        for (const auto& [r, v] : acols[j]) {
          const double a = std::abs(v);
          if (a < threshold) continue;
          const std::size_t cost = (row_count[r] - 1) * (count - 1);
          if (cost < cand_cost || (cost == cand_cost && a > cand_abs)) {
            cand_cost = cost;
            cand_abs = a;
            cand_row = r;
            cand_val = v;
          }
        }
        if (cand_row == kNoPosition) continue;
        ++candidates;
        if (cand_cost < best_cost) {
          best_cost = cand_cost;
          best_col = j;
          best_row = cand_row;
          best_val = cand_val;
        }
        if (candidates >= kMarkowitzCandidates || best_cost == 0) break;
      }
      if (candidates >= kMarkowitzCandidates) break;
    }
    if (best_col == kNoPosition) return false;  // numerically singular

    // --- record pivot -------------------------------------------------
    const std::size_t cp = best_col, rp = best_row;
    const double piv = best_val;
    u_diag_[pos] = piv;
    pivot_row_[pos] = rp;
    row_position_[rp] = pos;
    col_of_position_[pos] = cp;
    u_cols_[pos] = std::move(u_stash[cp]);
    col_active[cp] = 0;

    // L multipliers: the pivot column's remaining active entries.
    SparseColumn& lcol = l_cols_[pos];
    lcol.reserve(acols[cp].size() - 1);
    for (const auto& [r, v] : acols[cp]) {
      if (r == rp) continue;
      lcol.emplace_back(r, v / piv);
      --row_count[r];  // entry (r, cp) leaves the active matrix
    }
    acols[cp].clear();
    acols[cp].shrink_to_fit();

    // --- right-looking update of every column with an entry in row rp -
    std::vector<std::size_t>& prow = row_cols[rp];
    for (const std::size_t j : prow) {
      if (!col_active[j]) continue;  // stale or already pivoted
      SparseColumn& col = acols[j];
      // Locate and extract the U entry (rp, j).
      double urj = 0.0;
      bool found = false;
      for (std::size_t k = 0; k < col.size(); ++k) {
        if (col[k].first == rp) {
          urj = col[k].second;
          col[k] = col.back();
          col.pop_back();
          found = true;
          break;
        }
      }
      if (!found) continue;  // stale row entry
      u_stash[j].emplace_back(pos, urj);
      --col_count[j];
      factor_ops_ += col.size();  // row-entry search + scatter setup
      if (urj != 0.0 && !lcol.empty()) {
        factor_ops_ += lcol.size() + col.size();
        // col_j -= (urj / piv) * col_cp, via scatter on the column.
        for (std::size_t k = 0; k < col.size(); ++k) {
          pos_in_col[col[k].first] = k + 1;
        }
        for (const auto& [r, l] : lcol) {
          const std::size_t where = pos_in_col[r];
          if (where != 0) {
            col[where - 1].second -= l * urj;
          } else {
            col.emplace_back(r, -l * urj);  // fill-in
            pos_in_col[r] = col.size();
            ++col_count[j];
            ++row_count[r];
            row_cols[r].push_back(j);
          }
        }
        for (const auto& [r, v] : col) pos_in_col[r] = 0;
      }
      buckets[col_count[j]].push_back(j);
    }
    prow.clear();
    prow.shrink_to_fit();
    row_count[rp] = 0;
  }
  factor_nnz_ = n + tail_nnz_;  // U diagonal + retained-tail off-diagonals
  for (const SparseColumn& c : l_cols_) factor_nnz_ += c.size();
  for (const SparseColumn& c : u_cols_) factor_nnz_ += c.size();

  // Row adjacency of L for the sparse L^T reachability (the permutation
  // is only final here, hence the second pass).  Row buffers keep their
  // capacity across refactorizations.
  if (l_rows_.size() != n) {
    l_rows_.assign(n, {});
  } else {
    for (std::vector<std::size_t>& row : l_rows_) row.clear();
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (const auto& [r, lv] : l_cols_[k]) l_rows_[row_position_[r]].push_back(k);
  }
  reach_mark_.assign(n, 0);
  reach_stack_.clear();
  reach_edge_.clear();
  reach_.clear();
  valid_ = true;
  return true;
}

bool SparseLu::dense_tail(std::size_t pos0, std::vector<SparseColumn>& acols,
                          std::vector<char>& col_active,
                          std::vector<SparseColumn>& u_stash,
                          double pivot_tol) {
  const std::size_t n = n_;
  const std::size_t r = n - pos0;
  tail_dim_ = r;
  // Remaining (unpivoted) rows and active columns, ascending.
  std::vector<std::size_t> rrow;  // dense row slot -> original row
  rrow.reserve(r);
  std::vector<std::size_t> rof(n, kNoPosition);  // original row -> slot
  for (std::size_t i = 0; i < n; ++i) {
    if (row_position_[i] == kNoPosition) {
      rof[i] = rrow.size();
      rrow.push_back(i);
    }
  }
  std::vector<std::size_t> rcol;  // dense col slot -> caller column
  rcol.reserve(r);
  for (std::size_t j = 0; j < n; ++j) {
    if (col_active[j]) rcol.push_back(j);
  }
  if (rrow.size() != r || rcol.size() != r) {
    throw LinalgError("sparse-lu: dense-tail bookkeeping mismatch");
  }

  // Column-major scatter; the sparse working columns are consumed.
  Vector d(r * r, 0.0);
  for (std::size_t cs = 0; cs < r; ++cs) {
    double* col = d.data() + cs * r;
    for (const auto& [row, v] : acols[rcol[cs]]) col[rof[row]] = v;
    acols[rcol[cs]].clear();
    acols[rcol[cs]].shrink_to_fit();
  }

  // Right-looking elimination, row partial pivoting (strongest-in-column
  // — stricter than the sparse phase's threshold rule; the tail has no
  // sparsity left to preserve).  Row swaps are physical so the trailing
  // update stays a contiguous axpy.
  for (std::size_t s = 0; s < r; ++s) {
    double* cs = d.data() + s * r;
    std::size_t pr = s;
    double best = std::abs(cs[s]);
    for (std::size_t i = s + 1; i < r; ++i) {
      const double a = std::abs(cs[i]);
      if (a > best) {
        best = a;
        pr = i;
      }
    }
    if (best <= pivot_tol) return false;  // numerically singular
    if (pr != s) {
      for (std::size_t cj = 0; cj < r; ++cj) {
        std::swap(d[cj * r + s], d[cj * r + pr]);
      }
      std::swap(rrow[s], rrow[pr]);
    }
    const double inv = 1.0 / cs[s];
    for (std::size_t i = s + 1; i < r; ++i) cs[i] *= inv;
    for (std::size_t cj = s + 1; cj < r; ++cj) {
      double* c = d.data() + cj * r;
      const double u = c[s];
      if (u == 0.0) continue;
      for (std::size_t i = s + 1; i < r; ++i) c[i] -= u * cs[i];
    }
  }
  // Count the tail in the factorization's work estimate at a fraction
  // of its raw flops: the contiguous kernel retires several ops per
  // cycle where the sparse phase's scatter update pays a cache miss per
  // entry, and the estimate feeds the amortized refactorization trigger
  // — overpricing rebuilds would starve the sweeps of fresh factors.
  factor_ops_ += r * r * r / 10;

  // Pivot bookkeeping is identical either way; what differs is where
  // the block's entries end up living.
  for (std::size_t s = 0; s < r; ++s) {
    const std::size_t p = pos0 + s;
    const std::size_t cj = rcol[s];
    u_diag_[p] = d[s * r + s];
    pivot_row_[p] = rrow[s];
    row_position_[rrow[s]] = p;
    col_of_position_[p] = cj;
    u_cols_[p] = std::move(u_stash[cj]);
    col_active[cj] = 0;
  }
  if (emit_tail_sparse_) {
    // Compat path: emit into the factor's sparse pair structures (exact
    // zeros dropped) — every sweep walks them entry by entry.
    for (std::size_t s = 0; s < r; ++s) {
      const std::size_t p = pos0 + s;
      const double* cs = d.data() + s * r;
      for (std::size_t t = 0; t < s; ++t) {
        if (cs[t] != 0.0) u_cols_[p].emplace_back(pos0 + t, cs[t]);
      }
      SparseColumn& lcol = l_cols_[p];
      lcol.reserve(r - s - 1);
      for (std::size_t i = s + 1; i < r; ++i) {
        if (cs[i] != 0.0) lcol.emplace_back(rrow[i], cs[i]);
      }
    }
    tail_.clear();
    return true;
  }
  // Retain the elimination buffer: the tail's L and U halves stay
  // contiguous and the solves run dense kernels over them.  Only the
  // off-diagonal nonzero count is extracted (the fill accounting must
  // not depend on the storage mode).
  tail_retained_ = true;
  tail_ = std::move(d);
  for (std::size_t s = 0; s < r; ++s) {
    const double* cs = tail_.data() + s * r;
    for (std::size_t i = 0; i < r; ++i) {
      if (i != s && cs[i] != 0.0) ++tail_nnz_;
    }
  }
  return true;
}

namespace {

/// Iterative DFS from `seeds` over the directed graph described by
/// `succ_count`/`succ_at`: collects every visited node into `reach`
/// (pre-order, unsorted) and clears its marks again before returning.
/// Returns false — reach emptied, marks cleared — once more than `cap`
/// nodes are visited; past that point the caller's dense sweep is the
/// cheaper plan.  Nodes at or past `node_limit` bail immediately: the
/// caller keeps those in a dense block whose edges this graph cannot
/// see, and any solve whose pattern touches the block is dense-tail
/// work by definition — the dense sweep's contiguous kernels are the
/// cheaper plan there anyway.
template <class SuccCount, class SuccAt>
bool reach_from(const std::vector<std::size_t>& seeds, std::size_t cap,
                std::size_t edge_budget, std::size_t node_limit,
                SuccCount succ_count, SuccAt succ_at, std::vector<char>& mark,
                std::vector<std::size_t>& node_stack,
                std::vector<std::size_t>& edge_stack,
                std::vector<std::size_t>& reach) {
  reach.clear();
  node_stack.clear();
  edge_stack.clear();
  std::size_t edges = 0;
  const auto bail = [&]() {
    for (const std::size_t v : reach) mark[v] = 0;
    reach.clear();
    node_stack.clear();
    edge_stack.clear();
    return false;
  };
  const auto visit = [&](std::size_t v) {
    mark[v] = 1;
    reach.push_back(v);
    node_stack.push_back(v);
    edge_stack.push_back(0);
  };
  for (const std::size_t seed : seeds) {
    if (mark[seed]) continue;
    if (reach.size() >= cap || seed >= node_limit) return bail();
    visit(seed);
    while (!node_stack.empty()) {
      const std::size_t v = node_stack.back();
      const std::size_t ei = edge_stack.back();
      if (ei == succ_count(v)) {
        node_stack.pop_back();
        edge_stack.pop_back();
        continue;
      }
      edge_stack.back() = ei + 1;
      // The edge budget bounds the cost of a *doomed* DFS on a filled
      // factor: enumerating successors is the dominant DFS expense, so
      // bailing once it exceeds a fraction of the dense sweep's work
      // keeps the failed-attempt overhead a bounded tax instead of a
      // 2x sweep regression on dense-ish bases.
      if (++edges > edge_budget) return bail();
      const std::size_t w = succ_at(v, ei);
      if (mark[w]) continue;
      if (reach.size() >= cap || w >= node_limit) return bail();
      visit(w);
    }
  }
  for (const std::size_t v : reach) mark[v] = 0;
  return true;
}

}  // namespace

bool SparseLu::lower_solve_sparse(IndexedVector& x, IndexedVector& z) const {
  if (x.size() != n_ || z.size() != n_) {
    throw LinalgError("sparse-lu: sparse ftran size mismatch");
  }
  // x's pattern lives in original-row space; the DFS walks positions.
  reach_seeds_.clear();
  for (const std::size_t r : x.pattern) reach_seeds_.push_back(row_position_[r]);
  // Position k is lit when x has support in pivot row k, or when a lit
  // position's L column scatters into k's pivot row.  A retained dense
  // tail is invisible to the pair-list graph, so any reach touching it
  // bails to the dense sweep (whose tail is the contiguous kernel).
  const std::size_t limit = tail_retained_ ? n_ - tail_dim_ : n_;
  bool sparse = false;
  if (n_ < ProbeGate::kMinDim || lower_gate_.allowed()) {
    sparse = reach_from(
        reach_seeds_, sparse_reach_cap(), sparse_edge_budget(), limit,
        [&](std::size_t k) { return l_cols_[k].size(); },
        [&](std::size_t k, std::size_t i) {
          return row_position_[l_cols_[k][i].first];
        },
        reach_mark_, reach_stack_, reach_edge_, reach_);
    lower_gate_.report(sparse);
  }
  if (!sparse) {
    // Dense fallback: the exact loop of lower_solve over the raw values.
    x.densify();
    z.densify();
    lower_solve_core(x.values, z.values, nullptr);
    return false;
  }
  // Topological replay in the dense sweep's ascending-position order —
  // every scatter target's position is itself reachable, so x's pattern
  // stays a superset of its support.
  std::sort(reach_.begin(), reach_.end());
  for (const std::size_t k : reach_) {
    const double zk = x.values[pivot_row_[k]];
    if (zk == 0.0) continue;
    z.set(k, zk);
    for (const auto& [r, lv] : l_cols_[k]) {
      x.touch(r);
      x.values[r] -= zk * lv;
    }
  }
  return true;
}

bool SparseLu::lower_transpose_solve_sparse(IndexedVector& t,
                                            IndexedVector& x) const {
  if (t.size() != n_ || x.size() != n_) {
    throw LinalgError("sparse-lu: sparse btran size mismatch");
  }
  // t's pattern is already in position space; position k is lit when an
  // L entry in a lit pivot row belongs to column k (the l_rows_ edges).
  // As in the forward solve, a pattern that reaches the retained tail
  // bails to the dense sweep.
  const std::size_t limit = tail_retained_ ? n_ - tail_dim_ : n_;
  bool sparse = false;
  if (n_ < ProbeGate::kMinDim || ltrans_gate_.allowed()) {
    sparse = reach_from(
        t.pattern, sparse_reach_cap(), sparse_edge_budget(), limit,
        [&](std::size_t m) { return l_rows_[m].size(); },
        [&](std::size_t m, std::size_t i) { return l_rows_[m][i]; },
        reach_mark_, reach_stack_, reach_edge_, reach_);
    ltrans_gate_.report(sparse);
  }
  if (!sparse) {
    t.densify();
    x.densify();
    lower_transpose_solve_core(t.values, x.values);
    return false;
  }
  // Descending-position replay: position kk gathers from positions
  // > kk, all of which are reachable whenever their value is nonzero
  // (edge m -> kk exists exactly when the gather at kk reads m).
  std::sort(reach_.begin(), reach_.end(), std::greater<std::size_t>());
  for (const std::size_t kk : reach_) {
    t.touch(kk);
    double acc = t.values[kk];
    for (const auto& [r, lv] : l_cols_[kk]) {
      acc -= lv * t.values[row_position_[r]];
    }
    t.values[kk] = acc;
  }
  // Scatter back to original-row indexing, values verbatim (the dense
  // sweep writes computed zeros too; unreached positions hold the same
  // exact +0.0 either way).
  for (const std::size_t kk : reach_) x.set(pivot_row_[kk], t.values[kk]);
  return true;
}

void SparseLu::lower_solve_core(Vector& x, Vector& z,
                                std::vector<std::size_t>* support) const {
  // Forward solve L z = P x, column oriented over original row indices;
  // x is the scatter workspace and is clobbered.  The sparse phase runs
  // the pair lists; a retained tail finishes in a contiguous gather /
  // dense-kernel / write-back sequence that accumulates the exact same
  // subtractions into the exact same slots in the same order.
  const std::size_t limit = tail_retained_ ? n_ - tail_dim_ : n_;
  for (std::size_t k = 0; k < limit; ++k) {
    const double zk = x[pivot_row_[k]];
    if (zk == 0.0) continue;  // z[k] stays the exact +0.0 of the assign —
                              // the invariant the sparse replay matches
    z[k] = zk;
    if (support != nullptr) support->push_back(k);
    for (const auto& [r, lv] : l_cols_[k]) x[r] -= zk * lv;
  }
  if (tail_retained_ && tail_dim_ > 0) {
    const std::size_t r = tail_dim_;
    tail_work_.resize(r);
    double* w = tail_work_.data();
    for (std::size_t s = 0; s < r; ++s) w[s] = x[pivot_row_[limit + s]];
    tail_lower_solve(tail_.data(), r, w);
    for (std::size_t s = 0; s < r; ++s) {
      const double zs = w[s];
      if (zs == 0.0) continue;
      z[limit + s] = zs;
      if (support != nullptr) support->push_back(limit + s);
    }
  }
}

void SparseLu::lower_solve(Vector& x, Vector& z,
                           std::vector<std::size_t>* support) const {
  if (x.size() != n_) throw LinalgError("sparse-lu: ftran size mismatch");
  z.assign(n_, 0.0);
  if (support != nullptr) support->clear();
  lower_solve_core(x, z, support);
}

void SparseLu::lower_transpose_solve_core(Vector& t, Vector& x) const {
  // Back solve L^T s = t: s[k] = t[k] - sum_{m > k} L(m, k) s[m], where
  // the L entry at original row r belongs to pivot position
  // row_position_[r] > k.  Tail positions gather first (they only read
  // later tail positions, contiguous in t), then the pair lists.
  const std::size_t limit = tail_retained_ ? n_ - tail_dim_ : n_;
  if (tail_retained_ && tail_dim_ > 0) {
    tail_lower_transpose_solve(tail_.data(), tail_dim_, t.data() + limit);
  }
  for (std::size_t kk = limit; kk-- > 0;) {
    double acc = t[kk];
    for (const auto& [r, lv] : l_cols_[kk]) acc -= lv * t[row_position_[r]];
    t[kk] = acc;
  }
  // Scatter back to original row indexing: y[pivot_row_[k]] = t[k].
  for (std::size_t k = 0; k < n_; ++k) x[pivot_row_[k]] = t[k];
}

void SparseLu::lower_transpose_solve(Vector& t, Vector& x) const {
  if (t.size() != n_ || x.size() != n_) {
    throw LinalgError("sparse-lu: btran size mismatch");
  }
  lower_transpose_solve_core(t, x);
}

void SparseLu::ftran(Vector& x) const {
  Vector z;
  lower_solve(x, z);
  // Back substitution U out = z, column oriented.  A retained tail runs
  // the dense kernel (descending columns, divide-then-skip), then
  // scatters the tail columns' sparse heads — head slots are only read
  // below the tail boundary, so the contribution order per slot is
  // unchanged: descending column position either way.
  const std::size_t limit = tail_retained_ ? n_ - tail_dim_ : n_;
  if (tail_retained_ && tail_dim_ > 0) {
    tail_upper_solve(tail_.data(), tail_dim_, u_diag_.data() + limit,
                     z.data() + limit);
    for (std::size_t jj = n_; jj-- > limit;) {
      const double xj = z[jj];
      if (xj == 0.0) continue;
      for (const auto& [k, ukj] : u_cols_[jj]) z[k] -= xj * ukj;
    }
  }
  for (std::size_t jj = limit; jj-- > 0;) {
    const double xj = z[jj] / u_diag_[jj];
    z[jj] = xj;
    if (xj == 0.0) continue;
    for (const auto& [k, ukj] : u_cols_[jj]) z[k] -= xj * ukj;
  }
  // Undo the fill-reducing column permutation: position jj solved for
  // the caller's column col_of_position_[jj].
  for (std::size_t jj = 0; jj < n_; ++jj) x[col_of_position_[jj]] = z[jj];
}

void SparseLu::btran(Vector& x) const {
  if (x.size() != n_) throw LinalgError("sparse-lu: btran size mismatch");
  // Forward solve U^T t = c: u_cols_[j] holds exactly the U(k, j), k < j.
  // Input is indexed by caller column; map it through the fill-reducing
  // column permutation first.  Tail columns gather their sparse heads
  // here (those slots are final by then), then the dense kernel folds
  // the tail-tail terms and divides — the same per-slot term order as
  // the single interleaved pair list.
  Vector t(n_);
  const std::size_t limit = tail_retained_ ? n_ - tail_dim_ : n_;
  for (std::size_t j = 0; j < limit; ++j) {
    double acc = x[col_of_position_[j]];
    for (const auto& [k, ukj] : u_cols_[j]) acc -= ukj * t[k];
    t[j] = acc / u_diag_[j];
  }
  if (tail_retained_ && tail_dim_ > 0) {
    for (std::size_t j = limit; j < n_; ++j) {
      double acc = x[col_of_position_[j]];
      for (const auto& [k, ukj] : u_cols_[j]) acc -= ukj * t[k];
      t[j] = acc;
    }
    tail_upper_transpose_solve(tail_.data(), tail_dim_,
                               u_diag_.data() + limit, t.data() + limit);
  }
  lower_transpose_solve(t, x);
}

// ---------------------------------------------------------------------
// BasisFactorization: Forrest–Tomlin updates over a dynamic U
// ---------------------------------------------------------------------

bool BasisFactorization::refactorize(std::size_t n,
                                     const std::vector<SparseColumn>& columns) {
  etas_.clear();
  eta_nonzeros_ = 0;
  update_fill_ = 0;
  sweep_extra_ = 0;
  partial_valid_ = false;
  uftran_gate_.reset();
  ubtran_gate_.reset();
  // Block off (or the basis too small to earn it) => the tail must
  // land in the pair lists (pre-PR 8 path).
  lu_.set_emit_tail_sparse(!use_dense_block_ || n < kBlockMinBasis);
  if (!lu_.factorize(n, columns, pivot_tol_)) return false;
  n_ = n;

  // Move U into the dynamic (label-indexed) structure — the SparseLu
  // keeps only its L half and permutations, which is all the split
  // solves need.  Labels start as elimination positions, the order as
  // the identity; updates only ever rewrite the order arrays.  A
  // retained dense tail becomes the dense block: its labels are exactly
  // the suffix [tail_start, n), so block offsets are label offsets.
  lu_.take_upper(ucols_, udiag_);
  if (lu_.tail_retained()) {
    block_.load_upper(lu_.tail_values().data(), lu_.tail_dim(),
                      lu_.tail_start());
  } else {
    block_.clear();
  }
  // Rebuild the row mirror, keeping each row's capacity across
  // refactorizations (a fresh assign would free + reallocate thousands
  // of small buffers per refactor).
  if (urows_.size() != n) {
    urows_.assign(n, {});
  } else {
    for (SparseColumn& row : urows_) row.clear();
  }
  u_nonzeros_ = block_.nonzeros();
  for (std::size_t j = 0; j < n; ++j) {
    u_nonzeros_ += ucols_[j].size();
    for (const auto& [k, v] : ucols_[j]) urows_[k].emplace_back(j, v);
  }
  u0_nonzeros_ = u_nonzeros_;
  l_nonzeros_ = lu_.factor_nonzeros() - u_nonzeros_ - n;

  label_at_order_.resize(n);
  order_of_label_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    label_at_order_[i] = i;
    order_of_label_[i] = i;
  }
  acc_.assign(n, 0.0);
  zvec_.resize(n);
  umark_.assign(n, 0);
  slot_of_label_ = lu_.col_of_position();
  label_of_slot_.assign(n, 0);
  for (std::size_t lbl = 0; lbl < n; ++lbl) {
    label_of_slot_[slot_of_label_[lbl]] = lbl;
  }
  return true;
}

bool BasisFactorization::update(std::size_t r, const Vector& d) {
  // Fault injection: an update refusal storm that refactorization
  // cannot keep up with.  A single organic refusal (the interval check
  // below) is normal protocol — the caller just refactorizes — so the
  // injected terminal state is a typed error, not one more false.
  if (robust::probe(robust::FaultSite::kFtUpdate)) {
    throw LinalgError("basis-factorization: injected update refusal storm");
  }
  if (etas_.size() >= refactor_interval_) return false;
  const std::size_t p = label_of_slot_[r];
  const std::size_t op = order_of_label_[p];

  // --- spike s = L^{-1} P a (label space) -----------------------------
  // Normally the cached partial (and its nonzero support) of the ftran
  // that produced `d`, taken by swap; the fallback reconstructs it as
  // U d (d is the full image B^{-1} a, and the U back-substitution is
  // the only step between the two).
  Vector s;
  std::vector<std::size_t>& s_support = support_;
  if (partial_valid_) {
    s.swap(partial_);
    s_support.swap(partial_support_);
  } else {
    s.assign(n_, 0.0);
    const std::size_t bstart = block_.start();
    for (std::size_t j = 0; j < n_; ++j) {
      const double dj = d[slot_of_label_[j]];
      if (dj == 0.0) continue;
      s[j] += udiag_[j] * dj;
      for (const auto& [k, u] : ucols_[j]) s[k] += u * dj;
      if (block_.contains(j)) {
        block_.col_axpy_add(j - bstart, dj, s.data() + bstart);
      }
    }
    s_support.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) s_support[k] = k;
  }
  double smax = 0.0;
  for (const std::size_t k : s_support) {
    smax = std::max(smax, std::abs(s[k]));
  }

  // --- row eta: r^T restricted to labels ordered after p --------------
  // Eliminating the old row p of U (which becomes the last row after
  // the cyclic shift) against the diagonals of the later columns is a
  // sparse triangular solve r^T U_after = w^T.  A min-heap over order
  // indices visits exactly the reachable labels in triangular order —
  // cost proportional to the row's fan-out, not to n.  Every touched
  // acc_ entry is re-zeroed, so acc_ stays all-zero between updates.
  // Nothing is mutated yet: the solve never reads row p or column p.
  using OrderedLabel = std::pair<std::size_t, std::size_t>;  // (order, label)
  std::priority_queue<OrderedLabel, std::vector<OrderedLabel>,
                      std::greater<OrderedLabel>>
      heap;
  const std::size_t bstart = block_.start();
  for (const auto& [j, u] : urows_[p]) {
    acc_[j] = u;
    heap.emplace(order_of_label_[j], j);
  }
  if (block_.active()) {
    // Block rows are near-dense, so per-entry push-if-zero bookkeeping
    // (and its branchy row walks) costs more than it saves.  Instead,
    // pre-push every tail label ordered after p once: pops with a zero
    // accumulator are skipped below exactly like duplicate pops, so the
    // popped sequence of *nonzero* labels — and hence eta_terms — is
    // bit-for-bit what the lazy pushes produce.  The block-row
    // accumulations then run unguarded (branchless, vectorized): absent
    // slots contribute exact-zero terms, which cannot change a nonzero
    // accumulator and at worst flip the sign of a zero one — invisible
    // to the `aj == 0.0` skip.
    for (std::size_t bj = 0; bj < block_.dim(); ++bj) {
      const std::size_t l = bstart + bj;
      const std::size_t ol = order_of_label_[l];
      if (ol > op) heap.emplace(ol, l);
    }
    if (block_.contains(p)) {
      block_.copy_row(p - bstart, acc_.data() + bstart);
    }
  }
  SparseColumn eta_terms;
  while (!heap.empty()) {
    const auto [oi, j] = heap.top();
    heap.pop();
    const double aj = acc_[j];
    if (aj == 0.0) continue;  // duplicate / pre-pushed pop or cancellation
    acc_[j] = 0.0;
    const double rj = aj / udiag_[j];
    if (std::abs(rj) < kDropTol) continue;
    eta_terms.emplace_back(j, rj);
    for (const auto& [l, u] : urows_[j]) {
      if (acc_[l] == 0.0) heap.emplace(order_of_label_[l], l);
      acc_[l] -= rj * u;
    }
    if (block_.contains(j)) {
      block_.row_axpy_sub_all(j - bstart, rj, acc_.data() + bstart);
    }
  }

  // --- transformed diagonal + stability test --------------------------
  double new_diag = s[p];
  for (const auto& [j, rj] : eta_terms) new_diag -= rj * s[j];
  if (!std::isfinite(new_diag) || std::abs(new_diag) < kUpdateAbsTol ||
      std::abs(new_diag) < kUpdateRelTol * smax) {
    s.swap(partial_);  // hand the buffer back for reuse
    s_support.swap(partial_support_);
    return false;  // unsafe pivot: caller refactorizes from scratch
  }

  // --- commit: drop old column p and old row p ------------------------
  // The block's share of row/column p is a pair of in-place zero-fills
  // (contiguous in one layout, strided in the other) — no pair-list or
  // mirror churn for the dense tail.
  std::size_t removed = ucols_[p].size() + urows_[p].size();
  if (block_.contains(p)) {
    removed += block_.zero_col(p - bstart);
    removed += block_.zero_row(p - bstart);
  }
  for (const auto& [k, u] : ucols_[p]) {
    SparseColumn& mirror = urows_[k];
    for (std::size_t i = 0; i < mirror.size(); ++i) {
      if (mirror[i].first == p) {
        mirror[i] = mirror.back();
        mirror.pop_back();
        break;
      }
    }
  }
  for (const auto& [j, u] : urows_[p]) {
    SparseColumn& col = ucols_[j];
    for (std::size_t i = 0; i < col.size(); ++i) {
      if (col[i].first == p) {
        col[i] = col.back();
        col.pop_back();
        break;
      }
    }
  }
  ucols_[p].clear();
  urows_[p].clear();

  // --- install the spike as the new last column -----------------------
  // Zeroing installed entries guards against duplicate support labels
  // (a row eta can re-light a position the L-solve already listed).
  // The support is sorted first so the installed entry order — and with
  // it the rounding of every later gather over this column — is a
  // canonical function of the spike's value set, not of which path
  // (dense sweep, hypersparse replay, or the U d fallback) produced the
  // support list.
  std::sort(s_support.begin(), s_support.end());
  const double drop = kDropTol * std::max(smax, 1.0);
  SparseColumn& spike_col = ucols_[p];
  std::size_t added = 0;
  const bool spike_in_block = block_.contains(p);
  for (const std::size_t k : s_support) {
    const double v = s[k];
    if (k == p || std::abs(v) <= drop) continue;
    // The spike's tail segment patches the block column directly (it
    // was just zeroed); everything else goes through the pair lists.
    if (spike_in_block && block_.contains(k)) {
      block_.set(k - bstart, p - bstart, v);
    } else {
      spike_col.emplace_back(k, v);
      urows_[k].emplace_back(p, v);
    }
    ++added;
    s[k] = 0.0;
  }
  udiag_[p] = new_diag;
  s.swap(partial_);  // hand the buffer back for reuse
  s_support.swap(partial_support_);

  // --- cyclic reorder: p moves to the end, later labels shift up ------
  for (std::size_t oi = op; oi + 1 < n_; ++oi) {
    const std::size_t lbl = label_at_order_[oi + 1];
    label_at_order_[oi] = lbl;
    order_of_label_[lbl] = oi;
  }
  label_at_order_[n_ - 1] = p;
  order_of_label_[p] = n_ - 1;

  // --- bookkeeping ----------------------------------------------------
  u_nonzeros_ += added;
  u_nonzeros_ -= removed;
  eta_nonzeros_ += eta_terms.size();
  // The adaptive-refactorization metric tracks what a sweep actually
  // pays on top of a fresh factorization: the row-eta file plus U's
  // *net* growth — the spike replaces a column and retires a row, so
  // gross spike fill would wildly overstate the drift.
  update_fill_ =
      eta_nonzeros_ +
      (u_nonzeros_ > u0_nonzeros_ ? u_nonzeros_ - u0_nonzeros_ : 0);
  etas_.push_back(RowEta{p, std::move(eta_terms)});
  partial_valid_ = false;  // the factorization changed under the cache
  return true;
}

void BasisFactorization::ftran(Vector& x, bool cache_spike) const {
  sweep_extra_ += update_fill_;
  Vector& z = work_;
  lu_.lower_solve(x, z, cache_spike ? &support_ : nullptr);
  // Row etas, chronological: each one folds the eliminated old pivot
  // row of its update into the spiked label's component.
  for (const RowEta& e : etas_) {
    double acc = z[e.p];
    for (const auto& [j, rj] : e.terms) acc -= rj * z[j];
    if (cache_spike && z[e.p] == 0.0 && acc != 0.0) support_.push_back(e.p);
    z[e.p] = acc;
  }
  if (cache_spike) {
    // Stash the partial result + support: update() reuses it as the
    // spike of this entering column.
    partial_ = z;
    partial_support_ = support_;
    partial_valid_ = true;
  }
  // Back substitution over the dynamic U in current order.  Zero
  // entries are skipped *before* the divide so untouched positions keep
  // an exact +0.0 — the form the hypersparse replay reproduces.  A
  // column inside the dense block scatters its tail segment through the
  // contiguous column kernel (same entry set, same per-target single
  // contribution, so bitwise identical to the pair-list walk).
  const std::size_t bstart = block_.start();
  for (std::size_t oi = n_; oi-- > 0;) {
    const std::size_t j = label_at_order_[oi];
    const double zj = z[j];
    if (zj == 0.0) continue;
    const double xj = zj / udiag_[j];
    z[j] = xj;
    if (xj == 0.0) continue;
    for (const auto& [k, u] : ucols_[j]) z[k] -= xj * u;
    if (block_.contains(j)) {
      block_.col_axpy_sub(j - bstart, xj, z.data() + bstart);
    }
  }
  for (std::size_t lbl = 0; lbl < n_; ++lbl) x[slot_of_label_[lbl]] = z[lbl];
  ++dense_sweeps_;
  touched_entries_ += n_;
  if (block_.active()) {
    ++block_sweeps_;
    block_entries_ += block_.nonzeros();
  }
  if (robust::probe(robust::FaultSite::kFtranSpike)) injected_spike("ftran");
}

void BasisFactorization::btran(Vector& x) const {
  if (x.size() != n_) throw LinalgError("basis-factorization: btran size");
  sweep_extra_ += update_fill_;
  Vector& v = work_;
  v.resize(n_);
  for (std::size_t lbl = 0; lbl < n_; ++lbl) v[lbl] = x[slot_of_label_[lbl]];
  // Forward solve U^T in current order, scatter form: once v[j] is
  // final it is pushed through row j (the mirror, plus the block row's
  // contiguous kernel).  Per accumulator, terms arrive in ascending
  // current order of their source — a canonical order shared with the
  // hypersparse replay, and independent of how the entries are stored
  // (each (j, l) entry lives in exactly one of mirror/block).  Zero
  // accumulations are normalized to exact +0.0 instead of divided, so
  // positions the replay never visits match bit for bit.
  const std::size_t bstart = block_.start();
  for (std::size_t oi = 0; oi < n_; ++oi) {
    const std::size_t j = label_at_order_[oi];
    const double a = v[j];
    const double tj = (a == 0.0) ? 0.0 : a / udiag_[j];
    v[j] = tj;
    if (tj == 0.0) continue;
    for (const auto& [l, u] : urows_[j]) v[l] -= u * tj;
    if (block_.contains(j)) {
      block_.row_axpy_sub(j - bstart, tj, v.data() + bstart);
    }
  }
  // Row etas transposed, reverse chronological.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const double vp = v[it->p];
    if (vp == 0.0) continue;
    for (const auto& [j, rj] : it->terms) v[j] -= rj * vp;
  }
  lu_.lower_transpose_solve(v, x);
  ++dense_sweeps_;
  touched_entries_ += n_;
  if (block_.active()) {
    ++block_sweeps_;
    block_entries_ += block_.nonzeros();
  }
  if (robust::probe(robust::FaultSite::kBtranSpike)) injected_spike("btran");
}

// ---------------------------------------------------------------------
// Hypersparse sweeps: Gilbert–Peierls reachability + order-sorted replay
// over the dynamic U, bitwise-identical to the dense loops above.
// ---------------------------------------------------------------------

void BasisFactorization::ftran_sparse(IndexedVector& x, bool cache_spike) const {
  if (x.size() != n_) throw LinalgError("basis-factorization: ftran size");
  sweep_extra_ += update_fill_;
  IndexedVector& z = zvec_;
  z.clear();
  lu_.lower_solve_sparse(x, z);

  // Row etas, chronological — same full gather as the dense sweep (an
  // eta's cost is its term count either way), with pattern upkeep on
  // the one written entry.
  if (z.dense()) {
    for (const RowEta& e : etas_) {
      double acc = z.values[e.p];
      for (const auto& [j, rj] : e.terms) acc -= rj * z.values[j];
      z.values[e.p] = acc;
    }
  } else {
    for (const RowEta& e : etas_) {
      double acc = z.values[e.p];
      for (const auto& [j, rj] : e.terms) acc -= rj * z.values[j];
      if (acc != 0.0 || z.in_pattern(e.p)) z.set(e.p, acc);
    }
  }

  if (cache_spike) {
    if (z.dense()) {
      partial_ = z.values;
      partial_support_.resize(n_);
      for (std::size_t k = 0; k < n_; ++k) partial_support_[k] = k;
    } else {
      partial_.assign(n_, 0.0);
      for (const std::size_t k : z.pattern) partial_[k] = z.values[k];
      partial_support_ = z.pattern;
    }
    partial_valid_ = true;
  }

  // Dynamic-U back substitution: DFS over the column graph from z's
  // pattern, replayed in descending current order — the dense loop's
  // exact visit order restricted to the reachable labels.  The replay
  // and the dense sweep are strict alternatives: touching the reach can
  // fill z's pattern (dense() turns true), so gating the dense sweep on
  // dense() afterwards would run the substitution twice.
  bool u_replayed = false;
  if (!z.dense()) {
    // Block labels are a bail trigger, exactly like SparseLu's retained
    // tail: their edges live in the dense block, invisible to the pair
    // lists, and a pattern that lights the block is dense-tail work.
    const std::size_t ulimit = block_.active() ? block_.start() : n_;
    bool usparse = false;
    if (n_ < ProbeGate::kMinDim || uftran_gate_.allowed()) {
      usparse = reach_from(
          z.pattern, lu_.sparse_reach_cap(), u_edge_budget(), ulimit,
          [&](std::size_t j) { return ucols_[j].size(); },
          [&](std::size_t j, std::size_t i) { return ucols_[j][i].first; },
          umark_, ustack_, uedge_, ureach_);
      uftran_gate_.report(usparse);
    }
    if (usparse) {
      std::sort(ureach_.begin(), ureach_.end(),
                [&](std::size_t a, std::size_t b) {
                  return order_of_label_[a] > order_of_label_[b];
                });
      for (const std::size_t lbl : ureach_) z.touch(lbl);
      for (const std::size_t lbl : ureach_) {
        const double zj = z.values[lbl];
        if (zj == 0.0) continue;
        const double xj = zj / udiag_[lbl];
        z.values[lbl] = xj;
        if (xj == 0.0) continue;
        for (const auto& [k, u] : ucols_[lbl]) z.values[k] -= xj * u;
      }
      u_replayed = true;
    } else {
      z.densify();
    }
  }
  if (!u_replayed) {
    const std::size_t bstart = block_.start();
    for (std::size_t oi = n_; oi-- > 0;) {
      const std::size_t j = label_at_order_[oi];
      const double zj = z.values[j];
      if (zj == 0.0) continue;
      const double xj = zj / udiag_[j];
      z.values[j] = xj;
      if (xj == 0.0) continue;
      for (const auto& [k, u] : ucols_[j]) z.values[k] -= xj * u;
      if (block_.contains(j)) {
        block_.col_axpy_sub(j - bstart, xj, z.values.data() + bstart);
      }
    }
  }

  // Scatter to caller slots, values verbatim (zeros included, so even a
  // cancelled or underflowed entry lands bit-for-bit like the dense
  // copy loop).
  x.clear();
  if (z.dense()) {
    x.densify();
    for (std::size_t lbl = 0; lbl < n_; ++lbl) {
      x.values[slot_of_label_[lbl]] = z.values[lbl];
    }
    ++dense_sweeps_;
    touched_entries_ += n_;
    if (block_.active()) {
      ++block_sweeps_;
      block_entries_ += block_.nonzeros();
    }
  } else {
    for (const std::size_t lbl : z.pattern) {
      x.set(slot_of_label_[lbl], z.values[lbl]);
    }
    ++sparse_sweeps_;
    touched_entries_ += z.entries();
  }
  if (robust::probe(robust::FaultSite::kFtranSpike)) injected_spike("ftran");
}

void BasisFactorization::btran_sparse(IndexedVector& x) const {
  if (x.size() != n_) throw LinalgError("basis-factorization: btran size");
  sweep_extra_ += update_fill_;
  IndexedVector& v = zvec_;
  v.clear();
  // Slot -> label remap of the rhs support (zero-valued pattern slots
  // contribute nothing, exactly like the dense copy of a zero).
  for (const std::size_t slot : x.pattern) {
    const double val = x.values[slot];
    if (val == 0.0) continue;
    v.set(label_of_slot_[slot], val);
  }

  // U^T forward solve: DFS over the row graph, ascending-order replay
  // in the dense sweep's scatter form (block labels bail, as in ftran).
  const std::size_t ulimit = block_.active() ? block_.start() : n_;
  bool usparse = false;
  if (n_ < ProbeGate::kMinDim || ubtran_gate_.allowed()) {
    usparse = reach_from(
        v.pattern, lu_.sparse_reach_cap(), u_edge_budget(), ulimit,
        [&](std::size_t k) { return urows_[k].size(); },
        [&](std::size_t k, std::size_t i) { return urows_[k][i].first; },
        umark_, ustack_, uedge_, ureach_);
    ubtran_gate_.report(usparse);
  }
  if (usparse) {
    std::sort(ureach_.begin(), ureach_.end(),
              [&](std::size_t a, std::size_t b) {
                return order_of_label_[a] < order_of_label_[b];
              });
    for (const std::size_t lbl : ureach_) v.touch(lbl);
    for (const std::size_t lbl : ureach_) {
      const double a = v.values[lbl];
      const double tj = (a == 0.0) ? 0.0 : a / udiag_[lbl];
      v.values[lbl] = tj;
      if (tj == 0.0) continue;
      // Every scatter target is a DFS successor of lbl, hence reached
      // and pre-touched.
      for (const auto& [l, u] : urows_[lbl]) v.values[l] -= u * tj;
    }
  } else {
    v.densify();
    const std::size_t bstart = block_.start();
    for (std::size_t oi = 0; oi < n_; ++oi) {
      const std::size_t j = label_at_order_[oi];
      const double a = v.values[j];
      const double tj = (a == 0.0) ? 0.0 : a / udiag_[j];
      v.values[j] = tj;
      if (tj == 0.0) continue;
      for (const auto& [l, u] : urows_[j]) v.values[l] -= u * tj;
      if (block_.contains(j)) {
        block_.row_axpy_sub(j - bstart, tj, v.values.data() + bstart);
      }
    }
  }

  // Row etas transposed, reverse chronological (scatter form).
  if (v.dense()) {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const double vp = v.values[it->p];
      if (vp == 0.0) continue;
      for (const auto& [j, rj] : it->terms) v.values[j] -= rj * vp;
    }
  } else {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const double vp = v.values[it->p];  // off-pattern reads exact +0.0
      if (vp == 0.0) continue;
      for (const auto& [j, rj] : it->terms) {
        v.touch(j);
        v.values[j] -= rj * vp;
      }
    }
  }

  // L^T tail back to original-row indexing.
  x.clear();
  bool tail_sparse = false;
  if (v.dense()) {
    x.densify();
    lu_.lower_transpose_solve(v.values, x.values);
  } else {
    tail_sparse = lu_.lower_transpose_solve_sparse(v, x);
  }
  if (tail_sparse) {
    ++sparse_sweeps_;
    touched_entries_ += v.entries();
  } else {
    ++dense_sweeps_;
    touched_entries_ += n_;
    if (block_.active()) {
      ++block_sweeps_;
      block_entries_ += block_.nonzeros();
    }
  }
  if (robust::probe(robust::FaultSite::kBtranSpike)) injected_spike("btran");
}

}  // namespace dpm::linalg
