#include "linalg/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dpm::linalg {

namespace {
constexpr std::size_t kNoPosition = std::numeric_limits<std::size_t>::max();
}  // namespace

bool SparseLu::factorize(std::size_t n, const std::vector<SparseColumn>& columns,
                         double pivot_tol) {
  if (columns.size() != n) {
    throw LinalgError("sparse-lu: column count does not match order");
  }
  n_ = n;
  valid_ = false;
  l_cols_.assign(n, {});
  u_cols_.assign(n, {});
  u_diag_.assign(n, 0.0);
  pivot_row_.assign(n, 0);
  row_position_.assign(n, kNoPosition);

  // Fill reduction, part 1: eliminate sparse columns first (unit slack
  // columns become free triangular steps), dense columns last.
  col_of_position_.resize(n);
  for (std::size_t j = 0; j < n; ++j) col_of_position_[j] = j;
  std::stable_sort(col_of_position_.begin(), col_of_position_.end(),
                   [&columns](std::size_t a, std::size_t b) {
                     return columns[a].size() < columns[b].size();
                   });

  // Fill reduction, part 2: Markowitz-style row counts.  row_count_[r]
  // approximates how many not-yet-eliminated columns touch row r;
  // pivoting on a low-count row keeps its pattern out of L.
  std::vector<std::size_t> row_count(n, 0);
  for (const SparseColumn& col : columns) {
    for (const auto& [r, v] : col) {
      if (r >= n) throw LinalgError("sparse-lu: row index out of range");
      (void)v;
      ++row_count[r];
    }
  }

  // Dense workspace + touched list: flops stay proportional to fill,
  // only the k-scan below is O(position) per column.
  Vector work(n, 0.0);
  std::vector<char> marked(n, 0);
  std::vector<std::size_t> touched;
  touched.reserve(n);

  for (std::size_t pos = 0; pos < n; ++pos) {
    const SparseColumn& column = columns[col_of_position_[pos]];
    touched.clear();
    for (const auto& [r, v] : column) {
      if (!marked[r]) {
        marked[r] = 1;
        touched.push_back(r);
        work[r] = v;
      } else {
        work[r] += v;
      }
      --row_count[r];  // this column leaves the "remaining" set
    }
    // Left-looking elimination against the already-computed columns, in
    // pivot order.  Only columns whose pivot row currently holds a
    // nonzero contribute any flops.
    SparseColumn& uj = u_cols_[pos];
    for (std::size_t k = 0; k < pos; ++k) {
      const std::size_t pr = pivot_row_[k];
      const double ukj = marked[pr] ? work[pr] : 0.0;
      if (ukj == 0.0) continue;
      uj.emplace_back(k, ukj);
      work[pr] = 0.0;  // consumed into U
      for (const auto& [r, lv] : l_cols_[k]) {
        if (!marked[r]) {
          marked[r] = 1;
          touched.push_back(r);
          work[r] = 0.0;
        }
        work[r] -= ukj * lv;
      }
    }
    // Threshold pivoting: among rows within a factor 10 of the largest
    // candidate (numerical safety), take the lowest Markowitz row count
    // (fill avoidance), breaking count ties by magnitude.
    double max_abs = 0.0;
    for (const std::size_t r : touched) {
      if (row_position_[r] != kNoPosition) continue;
      max_abs = std::max(max_abs, std::abs(work[r]));
    }
    std::size_t best_row = kNoPosition;
    double best_abs = 0.0;
    std::size_t best_count = kNoPosition;
    if (max_abs > pivot_tol) {
      const double threshold = 0.1 * max_abs;
      for (const std::size_t r : touched) {
        if (row_position_[r] != kNoPosition) continue;
        const double a = std::abs(work[r]);
        if (a < threshold) continue;
        if (row_count[r] < best_count ||
            (row_count[r] == best_count && a > best_abs)) {
          best_count = row_count[r];
          best_abs = a;
          best_row = r;
        }
      }
    }
    if (best_row == kNoPosition) {
      for (const std::size_t r : touched) {
        marked[r] = 0;
        work[r] = 0.0;
      }
      return false;  // numerically singular
    }
    const double diag = work[best_row];
    u_diag_[pos] = diag;
    pivot_row_[pos] = best_row;
    row_position_[best_row] = pos;
    SparseColumn& lj = l_cols_[pos];
    for (const std::size_t r : touched) {
      if (r != best_row && row_position_[r] == kNoPosition &&
          work[r] != 0.0) {
        lj.emplace_back(r, work[r] / diag);
      }
      marked[r] = 0;
      work[r] = 0.0;
    }
  }
  valid_ = true;
  return true;
}

void SparseLu::ftran(Vector& x) const {
  if (x.size() != n_) throw LinalgError("sparse-lu: ftran size mismatch");
  // Forward solve L z = P x, column oriented over original row indices.
  Vector z(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double zk = x[pivot_row_[k]];
    z[k] = zk;
    if (zk == 0.0) continue;
    for (const auto& [r, lv] : l_cols_[k]) x[r] -= zk * lv;
  }
  // Back substitution U out = z, column oriented.
  for (std::size_t jj = n_; jj-- > 0;) {
    const double xj = z[jj] / u_diag_[jj];
    z[jj] = xj;
    if (xj == 0.0) continue;
    for (const auto& [k, ukj] : u_cols_[jj]) z[k] -= xj * ukj;
  }
  // Undo the fill-reducing column permutation: position jj solved for
  // the caller's column col_of_position_[jj].
  for (std::size_t jj = 0; jj < n_; ++jj) x[col_of_position_[jj]] = z[jj];
}

void SparseLu::btran(Vector& x) const {
  if (x.size() != n_) throw LinalgError("sparse-lu: btran size mismatch");
  // Forward solve U^T t = c: u_cols_[j] holds exactly the U(k, j), k < j.
  // Input is indexed by caller column; map it through the fill-reducing
  // column permutation first.
  Vector t(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    double acc = x[col_of_position_[j]];
    for (const auto& [k, ukj] : u_cols_[j]) acc -= ukj * t[k];
    t[j] = acc / u_diag_[j];
  }
  // Back solve L^T s = t: s[k] = t[k] - sum_{m > k} L(m, k) s[m], where
  // the L entry at original row r belongs to pivot position
  // row_position_[r] > k.
  for (std::size_t kk = n_; kk-- > 0;) {
    double acc = t[kk];
    for (const auto& [r, lv] : l_cols_[kk]) acc -= lv * t[row_position_[r]];
    t[kk] = acc;
  }
  // Scatter back to original row indexing: y[pivot_row_[k]] = s[k].
  for (std::size_t k = 0; k < n_; ++k) x[pivot_row_[k]] = t[k];
}

bool BasisFactorization::refactorize(std::size_t n,
                                     const std::vector<SparseColumn>& columns) {
  etas_.clear();
  return lu_.factorize(n, columns, pivot_tol_);
}

bool BasisFactorization::update(std::size_t r, const Vector& d) {
  if (etas_.size() >= refactor_interval_) return false;
  const double dr = d[r];
  // A small update pivot makes the eta column explosive; force a fresh
  // factorization instead of poisoning every later solve.
  if (std::abs(dr) < 1e-9) return false;
  Eta eta;
  eta.r = r;
  const double inv = 1.0 / dr;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i == r) {
      eta.column.emplace_back(i, inv);
    } else if (d[i] != 0.0) {
      eta.column.emplace_back(i, -d[i] * inv);
    }
  }
  etas_.push_back(std::move(eta));
  return true;
}

void BasisFactorization::ftran(Vector& x) const {
  lu_.ftran(x);
  for (const Eta& e : etas_) {
    const double t = x[e.r];
    if (t == 0.0) continue;
    x[e.r] = 0.0;
    for (const auto& [i, v] : e.column) x[i] += v * t;
  }
}

void BasisFactorization::btran(Vector& x) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = 0.0;
    for (const auto& [i, v] : it->column) acc += v * x[i];
    x[it->r] = acc;
  }
  lu_.btran(x);
}

}  // namespace dpm::linalg
