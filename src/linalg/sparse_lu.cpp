#include "linalg/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dpm::linalg {

namespace {

constexpr std::size_t kNoPosition = std::numeric_limits<std::size_t>::max();

/// Threshold partial pivoting factor: entries within 1/10 of the
/// column's largest magnitude are numerically acceptable pivots.
constexpr double kPivotThreshold = 0.1;

/// How many numerically acceptable candidate columns the Markowitz
/// search examines before settling (Suhl-style bounded search; the
/// classic compromise between fill quality and search cost).
constexpr std::size_t kMarkowitzCandidates = 8;

}  // namespace

bool SparseLu::factorize(std::size_t n,
                         const std::vector<SparseColumn>& columns,
                         double pivot_tol) {
  if (columns.size() != n) {
    throw LinalgError("sparse-lu: column count does not match order");
  }
  n_ = n;
  valid_ = false;
  factor_nnz_ = 0;
  l_cols_.assign(n, {});
  u_cols_.assign(n, {});
  u_diag_.assign(n, 0.0);
  pivot_row_.assign(n, 0);
  row_position_.assign(n, kNoPosition);
  col_of_position_.assign(n, 0);

  // --- active-submatrix working set -------------------------------------
  // Column-wise values (authoritative) + row-wise patterns (may hold
  // stale column ids, filtered on use) + exact row/column counts.
  std::vector<SparseColumn> acols(n);
  std::vector<std::vector<std::size_t>> row_cols(n);
  std::vector<std::size_t> row_count(n, 0), col_count(n, 0);
  std::vector<char> col_active(n, 1);

  // Dense scatter workspace for merging duplicates and applying updates:
  // pos_in_col[r] = 1 + index of row r inside the column being touched.
  std::vector<std::size_t> pos_in_col(n, 0);

  for (std::size_t j = 0; j < n; ++j) {
    SparseColumn& col = acols[j];
    col.reserve(columns[j].size());
    for (const auto& [r, v] : columns[j]) {
      if (r >= n) throw LinalgError("sparse-lu: row index out of range");
      if (v == 0.0) continue;
      if (pos_in_col[r] == 0) {
        col.emplace_back(r, v);
        pos_in_col[r] = col.size();
      } else {
        col[pos_in_col[r] - 1].second += v;
      }
    }
    for (const auto& [r, v] : col) pos_in_col[r] = 0;
    col_count[j] = col.size();
    for (const auto& [r, v] : col) {
      ++row_count[r];
      row_cols[r].push_back(j);
    }
  }

  // Column-count buckets (lazy: a column is re-pushed whenever its count
  // changes; stale entries are filtered when popped).
  std::vector<std::vector<std::size_t>> buckets(n + 1);
  for (std::size_t j = 0; j < n; ++j) buckets[col_count[j]].push_back(j);

  // U(k', k) entries accumulate per *caller column* while the column is
  // still active; they become u_cols_ when the column is pivoted.
  std::vector<SparseColumn> u_stash(n);

  for (std::size_t pos = 0; pos < n; ++pos) {
    // --- Markowitz pivot search ---------------------------------------
    std::size_t best_col = kNoPosition, best_row = kNoPosition;
    double best_val = 0.0;
    std::size_t best_cost = kNoPosition;
    std::size_t candidates = 0;
    for (std::size_t count = 0; count <= n && best_cost > 0; ++count) {
      if (count == 0) {
        // A count-0 active column has no entry in any unpivoted row:
        // structurally singular.
        bool empty_active = false;
        for (const std::size_t j : buckets[0]) {
          if (col_active[j] && col_count[j] == 0) empty_active = true;
        }
        if (empty_active) return false;
        continue;
      }
      // Lower bound for any column of this count is (count-1) * 0; the
      // classic search cutoff accepts the incumbent once no column of
      // the next count can beat it under the (c-1)^2 heuristic bound.
      if (best_cost != kNoPosition && best_cost <= (count - 1) * (count - 1)) {
        break;
      }
      std::vector<std::size_t>& bucket = buckets[count];
      for (std::size_t bi = 0; bi < bucket.size();) {
        const std::size_t j = bucket[bi];
        if (!col_active[j] || col_count[j] != count) {
          // Stale: drop via swap-pop.
          bucket[bi] = bucket.back();
          bucket.pop_back();
          continue;
        }
        ++bi;
        double max_abs = 0.0;
        for (const auto& [r, v] : acols[j]) {
          max_abs = std::max(max_abs, std::abs(v));
        }
        if (max_abs <= pivot_tol) continue;  // numerically unusable now
        const double threshold = kPivotThreshold * max_abs;
        std::size_t cand_row = kNoPosition;
        double cand_val = 0.0;
        std::size_t cand_cost = kNoPosition;
        double cand_abs = 0.0;
        for (const auto& [r, v] : acols[j]) {
          const double a = std::abs(v);
          if (a < threshold) continue;
          const std::size_t cost = (row_count[r] - 1) * (count - 1);
          if (cost < cand_cost || (cost == cand_cost && a > cand_abs)) {
            cand_cost = cost;
            cand_abs = a;
            cand_row = r;
            cand_val = v;
          }
        }
        if (cand_row == kNoPosition) continue;
        ++candidates;
        if (cand_cost < best_cost) {
          best_cost = cand_cost;
          best_col = j;
          best_row = cand_row;
          best_val = cand_val;
        }
        if (candidates >= kMarkowitzCandidates || best_cost == 0) break;
      }
      if (candidates >= kMarkowitzCandidates) break;
    }
    if (best_col == kNoPosition) return false;  // numerically singular

    // --- record pivot -------------------------------------------------
    const std::size_t cp = best_col, rp = best_row;
    const double piv = best_val;
    u_diag_[pos] = piv;
    pivot_row_[pos] = rp;
    row_position_[rp] = pos;
    col_of_position_[pos] = cp;
    u_cols_[pos] = std::move(u_stash[cp]);
    col_active[cp] = 0;

    // L multipliers: the pivot column's remaining active entries.
    SparseColumn& lcol = l_cols_[pos];
    lcol.reserve(acols[cp].size() - 1);
    for (const auto& [r, v] : acols[cp]) {
      if (r == rp) continue;
      lcol.emplace_back(r, v / piv);
      --row_count[r];  // entry (r, cp) leaves the active matrix
    }
    acols[cp].clear();
    acols[cp].shrink_to_fit();

    // --- right-looking update of every column with an entry in row rp -
    std::vector<std::size_t>& prow = row_cols[rp];
    for (const std::size_t j : prow) {
      if (!col_active[j]) continue;  // stale or already pivoted
      SparseColumn& col = acols[j];
      // Locate and extract the U entry (rp, j).
      double urj = 0.0;
      bool found = false;
      for (std::size_t k = 0; k < col.size(); ++k) {
        if (col[k].first == rp) {
          urj = col[k].second;
          col[k] = col.back();
          col.pop_back();
          found = true;
          break;
        }
      }
      if (!found) continue;  // stale row entry
      u_stash[j].emplace_back(pos, urj);
      --col_count[j];
      if (urj != 0.0 && !lcol.empty()) {
        // col_j -= (urj / piv) * col_cp, via scatter on the column.
        for (std::size_t k = 0; k < col.size(); ++k) {
          pos_in_col[col[k].first] = k + 1;
        }
        for (const auto& [r, l] : lcol) {
          const std::size_t where = pos_in_col[r];
          if (where != 0) {
            col[where - 1].second -= l * urj;
          } else {
            col.emplace_back(r, -l * urj);  // fill-in
            pos_in_col[r] = col.size();
            ++col_count[j];
            ++row_count[r];
            row_cols[r].push_back(j);
          }
        }
        for (const auto& [r, v] : col) pos_in_col[r] = 0;
      }
      buckets[col_count[j]].push_back(j);
    }
    prow.clear();
    prow.shrink_to_fit();
    row_count[rp] = 0;
  }
  factor_nnz_ = n;  // U diagonal
  for (const SparseColumn& c : l_cols_) factor_nnz_ += c.size();
  for (const SparseColumn& c : u_cols_) factor_nnz_ += c.size();
  valid_ = true;
  return true;
}

void SparseLu::ftran(Vector& x) const {
  if (x.size() != n_) throw LinalgError("sparse-lu: ftran size mismatch");
  // Forward solve L z = P x, column oriented over original row indices.
  Vector z(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double zk = x[pivot_row_[k]];
    z[k] = zk;
    if (zk == 0.0) continue;
    for (const auto& [r, lv] : l_cols_[k]) x[r] -= zk * lv;
  }
  // Back substitution U out = z, column oriented.
  for (std::size_t jj = n_; jj-- > 0;) {
    const double xj = z[jj] / u_diag_[jj];
    z[jj] = xj;
    if (xj == 0.0) continue;
    for (const auto& [k, ukj] : u_cols_[jj]) z[k] -= xj * ukj;
  }
  // Undo the fill-reducing column permutation: position jj solved for
  // the caller's column col_of_position_[jj].
  for (std::size_t jj = 0; jj < n_; ++jj) x[col_of_position_[jj]] = z[jj];
}

void SparseLu::btran(Vector& x) const {
  if (x.size() != n_) throw LinalgError("sparse-lu: btran size mismatch");
  // Forward solve U^T t = c: u_cols_[j] holds exactly the U(k, j), k < j.
  // Input is indexed by caller column; map it through the fill-reducing
  // column permutation first.
  Vector t(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    double acc = x[col_of_position_[j]];
    for (const auto& [k, ukj] : u_cols_[j]) acc -= ukj * t[k];
    t[j] = acc / u_diag_[j];
  }
  // Back solve L^T s = t: s[k] = t[k] - sum_{m > k} L(m, k) s[m], where
  // the L entry at original row r belongs to pivot position
  // row_position_[r] > k.
  for (std::size_t kk = n_; kk-- > 0;) {
    double acc = t[kk];
    for (const auto& [r, lv] : l_cols_[kk]) acc -= lv * t[row_position_[r]];
    t[kk] = acc;
  }
  // Scatter back to original row indexing: y[pivot_row_[k]] = s[k].
  for (std::size_t k = 0; k < n_; ++k) x[pivot_row_[k]] = t[k];
}

bool BasisFactorization::refactorize(std::size_t n,
                                     const std::vector<SparseColumn>& columns) {
  etas_.clear();
  eta_nonzeros_ = 0;
  return lu_.factorize(n, columns, pivot_tol_);
}

bool BasisFactorization::update(std::size_t r, const Vector& d) {
  if (etas_.size() >= refactor_interval_) return false;
  const double dr = d[r];
  // A small update pivot makes the eta column explosive; force a fresh
  // factorization instead of poisoning every later solve.
  if (std::abs(dr) < 1e-9) return false;
  Eta eta;
  eta.r = r;
  const double inv = 1.0 / dr;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i == r) {
      eta.column.emplace_back(i, inv);
    } else if (d[i] != 0.0) {
      eta.column.emplace_back(i, -d[i] * inv);
    }
  }
  eta_nonzeros_ += eta.column.size();
  etas_.push_back(std::move(eta));
  return true;
}

void BasisFactorization::ftran(Vector& x) const {
  lu_.ftran(x);
  for (const Eta& e : etas_) {
    const double t = x[e.r];
    if (t == 0.0) continue;
    x[e.r] = 0.0;
    for (const auto& [i, v] : e.column) x[i] += v * t;
  }
}

void BasisFactorization::btran(Vector& x) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = 0.0;
    for (const auto& [i, v] : it->column) acc += v * x[i];
    x[it->r] = acc;
  }
  lu_.btran(x);
}

}  // namespace dpm::linalg
