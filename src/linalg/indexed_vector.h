// Indexed sparse work vector for hypersparse triangular solves.
//
// The revised simplex's right-hand sides are almost always sparse: an
// entering column has a handful of nonzeros, a pricing btran starts
// from one unit entry.  The Gilbert–Peierls solves in sparse_lu.{h,cpp}
// and the pivot loop in lp/revised_simplex.cpp pass their vectors in
// this representation — dense values for O(1) random access, plus an
// explicit nonzero pattern so loops cost O(entries touched), not O(n).
//
// Invariants:
//  * `values[i] == 0.0` for every i not in `pattern` (clear() restores
//    this by zeroing only the listed entries);
//  * `pattern` lists each index at most once (`marked` is the presence
//    mask that enforces it);
//  * an index MAY appear in `pattern` with value exactly 0.0 (numerical
//    cancellation) — consumers treat the pattern as a superset of the
//    true support, exactly like the positions a dense sweep writes.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace dpm::linalg {

class IndexedVector {
 public:
  IndexedVector() = default;
  explicit IndexedVector(std::size_t n) { resize(n); }

  /// Grows/shrinks to dimension n and clears to the all-zero state.
  void resize(std::size_t n) {
    values.assign(n, 0.0);
    marked.assign(n, 0);
    pattern.clear();
  }

  std::size_t size() const noexcept { return values.size(); }
  std::size_t entries() const noexcept { return pattern.size(); }
  bool empty_pattern() const noexcept { return pattern.empty(); }

  /// Back to all-zero in O(entries): zeroes exactly the touched
  /// positions and forgets the pattern.
  void clear() {
    for (const std::size_t i : pattern) {
      values[i] = 0.0;
      marked[i] = 0;
    }
    pattern.clear();
  }

  double operator[](std::size_t i) const { return values[i]; }
  bool in_pattern(std::size_t i) const { return marked[i] != 0; }

  /// values[i] = v, entering i into the pattern if absent.
  void set(std::size_t i, double v) {
    if (!marked[i]) {
      marked[i] = 1;
      pattern.push_back(i);
    }
    values[i] = v;
  }

  /// values[i] += v, entering i into the pattern if absent.
  void add(std::size_t i, double v) {
    if (!marked[i]) {
      marked[i] = 1;
      pattern.push_back(i);
    }
    values[i] += v;
  }

  /// Records i in the pattern without touching the value (the value is
  /// zero by invariant; triangular replays write it later).
  void touch(std::size_t i) {
    if (!marked[i]) {
      marked[i] = 1;
      pattern.push_back(i);
    }
  }

  /// Declares every index nonzero-capable: the dense-fallback state.
  /// After this, loops over `pattern` cost O(n) — exactly the dense
  /// sweep the caller decided to pay.
  void densify() {
    pattern.resize(values.size());
    for (std::size_t i = 0; i < pattern.size(); ++i) pattern[i] = i;
    marked.assign(values.size(), 1);
  }

  /// True once densify() ran (pattern covers every index).
  bool dense() const noexcept { return pattern.size() == values.size(); }

  // Open members: the triangular solvers and the simplex pivot loop
  // manipulate all three in concert; accessor indirection would only
  // obscure the invariants documented above.
  Vector values;                     // dense storage, zero off-pattern
  std::vector<std::size_t> pattern;  // touched indices, unordered
  std::vector<char> marked;          // presence mask over values
};

}  // namespace dpm::linalg
