// Cholesky factorization for symmetric positive-definite systems.
//
// The interior-point LP solver forms normal equations A D A^T dy = r with
// D diagonal positive; Cholesky is the right factorization for them (and
// mirrors what PCx, the solver used in the paper, does internally).
#pragma once

#include "linalg/matrix.h"

namespace dpm::linalg {

/// A = L L^T factorization of a symmetric positive-definite matrix.
///
/// Only the lower triangle of the input is read.  A small diagonal
/// regularization `shift` can be supplied to keep nearly-singular normal
/// equations factorizable (standard practice in interior-point codes).
/// Throws LinalgError if a pivot falls below `pivot_tol` even after the
/// shift.
class CholeskyDecomposition {
 public:
  explicit CholeskyDecomposition(const Matrix& a, double shift = 0.0,
                                 double pivot_tol = 1e-13);

  std::size_t order() const noexcept { return l_.rows(); }

  /// Solve A x = b via forward + back substitution.
  Vector solve(const Vector& b) const;

  /// The lower-triangular factor.
  const Matrix& factor() const noexcept { return l_; }

 private:
  Matrix l_;
};

}  // namespace dpm::linalg
