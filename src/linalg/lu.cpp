#include "linalg/lu.h"

#include <cmath>
#include <numeric>

namespace dpm::linalg {

LuDecomposition::LuDecomposition(Matrix a, double pivot_tol)
    : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw LinalgError("lu: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| in column k to the
    // diagonal.
    std::size_t piv = k;
    double piv_val = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > piv_val) {
        piv = i;
        piv_val = v;
      }
    }
    if (piv_val < pivot_tol) {
      throw LinalgError("lu: matrix is singular to working precision");
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu_(k, j), lu_(piv, j));
      }
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_piv = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double l = lu_(i, k) * inv_piv;
      lu_(i, k) = l;
      if (l == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= l * lu_(k, j);
      }
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = order();
  if (b.size() != n) {
    throw LinalgError("lu: rhs size mismatch");
  }
  // Forward substitution on Pb with unit-lower L.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution with U.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Vector LuDecomposition::solve_transposed(const Vector& b) const {
  const std::size_t n = order();
  if (b.size() != n) {
    throw LinalgError("lu: rhs size mismatch");
  }
  // A^T = (P^T L U)^T = U^T L^T P.  Solve U^T y = b, then L^T z = y,
  // then x = P^T z.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * y[j];
    y[i] = acc / lu_(i, i);
  }
  Vector z(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * z[j];
    z[ii] = acc;
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
  return x;
}

Matrix LuDecomposition::inverse() const {
  const std::size_t n = order();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const Vector col = solve(e);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

double LuDecomposition::determinant() const noexcept {
  double det = perm_sign_;
  for (std::size_t i = 0; i < order(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace dpm::linalg
