// Compressed-sparse-column matrix.
//
// The MDP balance-equation matrices this library produces have a handful
// of nonzeros per column (one +1 diagonal flow term plus the few
// successor states each (state, command) pair can reach).  The revised
// simplex backend and the basis factorization operate on this type
// instead of densifying.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace dpm::linalg {

/// One (row, col, value) coordinate entry; duplicates are summed on
/// assembly, exact zeros are dropped.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSC sparse matrix (column pointers + row indices + values,
/// rows sorted within each column).
class SparseMatrixCsc {
 public:
  /// Empty 0x0 matrix.
  SparseMatrixCsc() = default;

  /// Assembles from coordinate entries.  Duplicate (row, col) pairs are
  /// summed; entries that sum to exactly zero are kept out of the
  /// pattern.  Throws LinalgError on out-of-range indices.
  static SparseMatrixCsc from_triplets(std::size_t rows, std::size_t cols,
                                       const std::vector<Triplet>& entries);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nonzeros() const noexcept { return values_.size(); }

  /// Half-open range [col_begin(j), col_end(j)) into row_indices()/
  /// values() holding column j.
  std::size_t col_begin(std::size_t j) const { return col_ptr_.at(j); }
  std::size_t col_end(std::size_t j) const { return col_ptr_.at(j + 1); }

  const std::vector<std::size_t>& row_indices() const noexcept {
    return row_idx_;
  }
  const std::vector<double>& values() const noexcept { return values_; }

  /// Element lookup by binary search within the column; zero when the
  /// entry is not in the pattern.  O(log nnz(col)); for tests and
  /// spot-checks, not hot loops.
  double coeff(std::size_t i, std::size_t j) const;

  /// y = A x   (x.size() == cols()).
  Vector multiply(const Vector& x) const;

  /// y = A^T x (x.size() == rows()).
  Vector multiply_transposed(const Vector& x) const;

  /// Densify (tests and small-problem fallbacks only).
  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> col_ptr_;  // size cols_ + 1
  std::vector<std::size_t> row_idx_;  // size nnz, sorted per column
  std::vector<double> values_;        // size nnz
};

}  // namespace dpm::linalg
