#include "serve/fleet.h"

namespace dpm::serve {

ModelSpec fleet_model_spec(std::size_t variant, std::size_t queue_capacity) {
  // Small deterministic parameter tables cycled by variant: distinct
  // designs with the same shape, in the neighborhood of the paper's
  // running example (service rate 0.8, wake expectation 10 slices).
  static constexpr double kServiceRate[] = {0.80, 0.70, 0.90, 0.75};
  static constexpr double kWakeProb[] = {0.10, 0.12, 0.08, 0.15};
  static constexpr double kShutdownProb[] = {0.80, 0.70, 0.90, 0.60};
  static constexpr double kPowerOn[] = {3.0, 3.5, 2.8, 3.2};
  static constexpr double kPowerTransition[] = {4.0, 4.5, 3.6, 4.2};
  static constexpr double kBurstPersist[] = {0.85, 0.80, 0.90, 0.75};
  static constexpr double kBurstStart[] = {0.05, 0.08, 0.04, 0.10};
  constexpr std::size_t kNumTables = 4;
  const std::size_t v = variant % kNumTables;

  const double sr = kServiceRate[v];
  const double wake = kWakeProb[v];
  const double shutdown = kShutdownProb[v];
  const double p_on = kPowerOn[v];
  const double p_tr = kPowerTransition[v];

  ModelSpec spec;
  spec.commands = {"s_on", "s_off"};

  // Provider states: 0 = on, 1 = off; commands: 0 = s_on, 1 = s_off.
  spec.power = linalg::Matrix(2, 2);
  spec.power(0, 0) = p_on;  // keep running
  spec.power(0, 1) = p_tr;  // shutting down
  spec.power(1, 0) = p_tr;  // waking up
  spec.power(1, 1) = 0.0;   // staying off

  spec.service_rate = linalg::Matrix(2, 2);
  spec.service_rate(0, 0) = sr;  // serves only while on under s_on

  linalg::Matrix t_on(2, 2);
  t_on(0, 0) = 1.0;
  t_on(1, 0) = wake;
  t_on(1, 1) = 1.0 - wake;
  linalg::Matrix t_off(2, 2);
  t_off(0, 0) = 1.0 - shutdown;
  t_off(0, 1) = shutdown;
  t_off(1, 1) = 1.0;
  spec.transitions = {t_on, t_off};

  // Bursty two-state requester: state 1 issues one request per slice.
  spec.requester_transitions = linalg::Matrix(2, 2);
  spec.requester_transitions(0, 0) = 1.0 - kBurstStart[v];
  spec.requester_transitions(0, 1) = kBurstStart[v];
  spec.requester_transitions(1, 0) = 1.0 - kBurstPersist[v];
  spec.requester_transitions(1, 1) = kBurstPersist[v];
  spec.requests_per_state = {0, 1};

  spec.queue_capacity = queue_capacity;
  return spec;
}

std::vector<std::string> example_transcript() {
  std::vector<std::string> lines;
  std::size_t next_id = 0;
  const auto with_id = [&next_id](Request r) {
    r.id = "t" + std::to_string(next_id++);
    return format_request(r);
  };

  for (std::size_t variant = 0; variant < 2; ++variant) {
    Request optimize;
    optimize.op = Op::kOptimize;
    optimize.model = fleet_model_spec(variant, /*queue_capacity=*/2);
    optimize.discount = 0.999;
    optimize.objective = "power";
    ConstraintSpec queue;
    queue.metric = "queue_length";
    queue.bound = 0.5;
    optimize.constraints.push_back(queue);
    lines.push_back(with_id(optimize));

    // Moved-bound re-optimizations: same structure, different rhs —
    // near hits on first sight, exact hits on a replay.
    for (const double bound : {0.45, 0.55, 0.65}) {
      Request reopt = optimize;
      reopt.op = Op::kReoptimize;
      reopt.constraints[0].bound = bound;
      lines.push_back(with_id(reopt));
    }
  }

  Request evaluate;
  evaluate.op = Op::kEvaluate;
  evaluate.model = fleet_model_spec(0, /*queue_capacity=*/2);
  evaluate.discount = 0.999;
  const SystemModel model = evaluate.model->compose();
  evaluate.policy.assign(model.num_states(),
                         std::vector<double>(model.num_commands(), 0.0));
  for (auto& row : evaluate.policy) row[0] = 1.0;  // always-on policy
  evaluate.metrics = {"power", "queue_length"};
  lines.push_back(with_id(evaluate));

  Request stats;
  stats.op = Op::kStats;
  lines.push_back(with_id(stats));
  return lines;
}

}  // namespace dpm::serve
