// PolicyServer: the TCP front of dpmd.
//
// Plain TCP, one JSON request per line, one JSON response per line
// (protocol.h).  The server owns only sockets and threads — every
// request is forwarded to a PolicyEngine, whose admission layer
// coalesces concurrent connections into batches.  One acceptor thread
// polls with a short timeout so stop() (SIGTERM path in apps/dpmd.cpp)
// is honored promptly; each connection gets a worker thread, reaped by
// the acceptor when the connection closes and joined on stop, so
// shutdown is deterministic and leak-free under ASan/TSan and memory
// stays bounded under connection churn.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/engine.h"

namespace dpm::serve {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Loopback by default: dpmd is a local accelerator daemon, not an
  /// internet-facing service.  Resolved via getaddrinfo, so hostnames
  /// ("localhost") and IPv6 literals ("::1") work like the client side.
  std::string bind_address = "127.0.0.1";
  int backlog = 64;
  /// Connection cap: past this many live connections, accept() answers
  /// a static typed "overloaded" line and closes immediately, so a
  /// connection flood cannot exhaust threads or fds.  0 = unbounded.
  std::size_t max_connections = 64;
  /// Framing bound: a connection streaming more than this many bytes
  /// without a newline gets a typed bad-request ("line too long") and
  /// is dropped — per-connection buffer memory stays bounded.
  std::size_t max_line_bytes = std::size_t{4} << 20;  // 4 MiB
};

class PolicyServer {
 public:
  PolicyServer(PolicyEngine& engine, ServerOptions options = {});
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Why start() failed: an unresolvable bind address is a usage error
  /// (dpmd exits 2), everything else an environment error (exit 1).
  enum class StartFailure : std::uint8_t { kNone, kResolve, kSocket };

  /// Binds, listens, and starts the acceptor thread.  Returns false and
  /// fills `error`/`failure` (when non-null) on resolve/bind/listen
  /// failure.
  bool start(std::string* error = nullptr, StartFailure* failure = nullptr);

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; also called by the destructor.
  void stop();

  /// The bound port (resolves port 0 after start()).
  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept { return running_.load(); }

  /// Connection workers not yet joined (live + awaiting reap).  Churn
  /// test surface: returns to 0 once closed connections are reaped.
  std::size_t live_connections() const;

  /// Connections refused at the max_connections cap since start (also
  /// folded into the engine's conn_sheds counter).
  std::size_t shed_connections() const noexcept {
    return shed_connections_.load();
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished();

  PolicyEngine& engine_;
  ServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  mutable std::mutex workers_mutex_;
  /// Live connection workers, keyed by their socket.  A worker moves
  /// its own handle to reaped_ when its connection closes; the acceptor
  /// joins reaped handles each loop iteration.
  std::unordered_map<int, std::thread> workers_;
  std::vector<std::thread> reaped_;
  std::vector<int> worker_fds_;
  std::atomic<std::size_t> shed_connections_{0};
};

}  // namespace dpm::serve
