// PolicyServer: the TCP front of dpmd.
//
// Plain TCP, one JSON request per line, one JSON response per line
// (protocol.h).  The server owns only sockets and threads — every
// request is forwarded to a PolicyEngine, whose admission layer
// coalesces concurrent connections into batches.  One acceptor thread
// polls with a short timeout so stop() (SIGTERM path in apps/dpmd.cpp)
// is honored promptly; each connection gets a worker thread, reaped by
// the acceptor when the connection closes and joined on stop, so
// shutdown is deterministic and leak-free under ASan/TSan and memory
// stays bounded under connection churn.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/engine.h"

namespace dpm::serve {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Loopback by default: dpmd is a local accelerator daemon, not an
  /// internet-facing service.
  std::string bind_address = "127.0.0.1";
  int backlog = 64;
};

class PolicyServer {
 public:
  PolicyServer(PolicyEngine& engine, ServerOptions options = {});
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Binds, listens, and starts the acceptor thread.  Returns false and
  /// fills `error` (when non-null) on bind/listen failure.
  bool start(std::string* error = nullptr);

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; also called by the destructor.
  void stop();

  /// The bound port (resolves port 0 after start()).
  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept { return running_.load(); }

  /// Connection workers not yet joined (live + awaiting reap).  Churn
  /// test surface: returns to 0 once closed connections are reaped.
  std::size_t live_connections() const;

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished();

  PolicyEngine& engine_;
  ServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  mutable std::mutex workers_mutex_;
  /// Live connection workers, keyed by their socket.  A worker moves
  /// its own handle to reaped_ when its connection closes; the acceptor
  /// joins reaped handles each loop iteration.
  std::unordered_map<int, std::thread> workers_;
  std::vector<std::thread> reaped_;
  std::vector<int> worker_fds_;
};

}  // namespace dpm::serve
