// dpmd wire protocol: line-delimited JSON over plain TCP.
//
// Every request is one JSON object on one line; every response is one
// JSON object on one line.  The JSON layer is src/scenario/json.* — the
// exact-round-trip (%.17g) serializer the result cache already depends
// on — so response bytes are a pure function of the response values and
// a cached response replays byte-identically.
//
// Requests (see docs/serving.md for the full field tables):
//   {"id":"r1","op":"optimize","model":{...},"discount":0.999,
//    "objective":"power","constraints":[{"metric":"queue_length",
//    "bound":0.5}],"want_policy":true}
//   {"id":"r2","op":"reoptimize","model_ref":"<16-hex structural key>",
//    "constraints":[...]}
//   {"id":"r3","op":"evaluate","model":{...},"policy":[[...]],
//    "metrics":["power","queue_length"]}
//   {"id":"r4","op":"stats"}        {"id":"r5","op":"shutdown"}
//
// Responses always echo the id and carry a status:
//   "ok"     — the request was served; payload depends on the op;
//   "error"  — the request was rejected before any solve (typed code:
//              bad-json, bad-request, unknown-op, bad-model,
//              unknown-metric, unknown-model, overloaded — shed by an
//              admission or connection limit; plus "internal" when the
//              daemon itself could not process the line, e.g. resource
//              exhaustion mid-batch);
//   "failed" — the solve ran but the supervisor could not determine the
//              model (robust::SolveFailure: reason, rung, detail).
//
// Request keys (the serving generalization of Scenario::unit_key):
//   * the *structural* key hashes everything that fixes the LP matrix —
//     the composed SystemModel, the discount, the objective metric and
//     the constraint metric/sense list.  Requests sharing it differ at
//     most in rhs data (initial distribution, constraint bounds), so a
//     basis from one warm-starts another (the boxed dual repairs the
//     moved rhs) and the batching layer groups by it.
//   * the *full* key adds the assembled LP (costs, rhs, bounds — the
//     constraint point) and the response-shape flags; it fronts the
//     scenario::ResultCache, so an exact repeat replays the recorded
//     response bytes with zero simplex pivots.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dpm/metrics.h"
#include "dpm/system_model.h"
#include "lp/problem.h"
#include "robust/outcome.h"
#include "scenario/json.h"

namespace dpm::serve {

/// Folded into every request key: bump when the wire semantics change
/// (field meanings, metric catalogue, response layout) so stale cached
/// responses cannot replay across a protocol change.
inline constexpr std::uint64_t kProtocolVersion = 1;

/// Typed request rejection: `code` is one of the stable strings listed
/// in docs/serving.md ("bad-json", "bad-request", "unknown-op",
/// "bad-model", "unknown-metric", "unknown-model", "overloaded").
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& detail)
      : std::runtime_error(detail), code_(std::move(code)) {}
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

enum class Op : std::uint8_t {
  kOptimize = 0,  ///< compose model, solve the constrained policy LP
  kReoptimize,    ///< re-solve against a registered model (by model_ref)
  kEvaluate,      ///< closed-form policy evaluation of named metrics
  kStats,         ///< admin endpoint: telemetry counters + latency
  kShutdown,      ///< ask the server to stop accepting and exit cleanly
};
inline constexpr std::size_t kNumOps = 5;

/// Stable lower-case wire name ("optimize", ...); nullptr out of range.
const char* to_string(Op op) noexcept;
/// Parses a wire name; nullopt for unknown ops.
std::optional<Op> parse_op(std::string_view name) noexcept;

/// Wire description of a composable system model (provider x requester
/// x queue).  Mirrors the ServiceProvider::Builder / ServiceRequester
/// constructor surface; compose() performs the full model validation.
struct ModelSpec {
  std::vector<std::string> commands;           // provider command names
  linalg::Matrix power;                        // S_sp x A, Watts
  linalg::Matrix service_rate;                 // S_sp x A, [0,1]
  std::vector<linalg::Matrix> transitions;     // per command, S_sp x S_sp
  linalg::Matrix requester_transitions;        // S_sr x S_sr
  std::vector<unsigned> requests_per_state;    // S_sr
  std::size_t queue_capacity = 0;

  /// Builds the composed SystemModel; throws ProtocolError("bad-model")
  /// on validation failure (non-stochastic rows, shape mismatches).
  SystemModel compose() const;
};

/// One per-step metric constraint.  sense "le" bounds the metric above;
/// "ge" bounds it below (implemented by negating metric and bound, so
/// the LP still sees a kLe row).
struct ConstraintSpec {
  std::string metric;
  bool lower_bound = false;  // wire "sense":"ge"
  double bound = 0.0;
  std::string name;          // optional label, cosmetic
};

struct Request {
  std::string id;
  Op op = Op::kOptimize;
  std::optional<ModelSpec> model;          // optimize/evaluate; reoptimize may omit
  std::string model_ref;                   // reoptimize: 16-hex structural key
  double discount = 0.99999;
  bool has_discount = false;               // 'discount' present on the wire
  std::vector<double> initial;             // empty = uniform
  std::string objective = "power";         // metric name
  bool has_objective = false;              // 'objective' present on the wire
  std::vector<ConstraintSpec> constraints;
  bool want_policy = false;                // include the policy matrix
  // evaluate only:
  std::vector<std::vector<double>> policy; // S x A decision rows
  std::vector<std::string> metrics;        // metric names to evaluate
};

/// Parses one request line.  Throws ProtocolError with a typed code on
/// malformed input; never returns a partially valid request.
Request parse_request(const std::string& line);

/// Serializes a request back to one line (clients, tests, transcripts).
/// parse_request(format_request(r)) reproduces r field-for-field.
std::string format_request(const Request& request);

/// Resolves a metric name on a model.  Supported names: "power",
/// "queue_length", "request_loss", "active_sleep", "throughput".
/// Throws ProtocolError("unknown-metric") otherwise.  The returned
/// callable references `model` and must not outlive it.
StateActionMetric metric_by_name(const SystemModel& model,
                                 const std::string& name);
bool is_known_metric(const std::string& name) noexcept;

// --- request keys -----------------------------------------------------

/// Structural key: H(version, model, discount, objective name,
/// constraint metric/sense list).  Excludes bounds and the initial
/// distribution — exactly the rhs data a warm basis survives.
std::uint64_t structural_request_key(
    const SystemModel& model, double discount, const std::string& objective,
    const std::vector<ConstraintSpec>& constraints);

/// Full solve key: the structural key plus the assembled LP (costs,
/// rhs, bounds — the constraint point) and the response-shape flags.
std::uint64_t solve_request_key(std::uint64_t structural_key,
                                const lp::LpProblem& lp, bool want_policy);

/// Full key of an evaluate request (no LP: model, discount, p0, policy,
/// metric list).
std::uint64_t evaluate_request_key(const SystemModel& model, double discount,
                                   const linalg::Vector& initial,
                                   const linalg::Matrix& policy,
                                   const std::vector<std::string>& metrics);

/// Renders a key as the 16-hex string used by model_ref and responses.
std::string key_to_hex(std::uint64_t key);
/// Parses a 16-hex key; nullopt on malformed input.
std::optional<std::uint64_t> key_from_hex(std::string_view hex);

// --- response assembly ------------------------------------------------
//
// Response *bodies* are complete JSON objects starting at "status"; the
// id is spliced in front on send.  The cache stores bodies, so a replay
// for a different request id still yields byte-identical payload bytes.

/// JSON array-of-rows rendering of a matrix / plain array rendering of
/// a vector — shared by request formatting and response bodies.
scenario::JsonValue json_matrix(const linalg::Matrix& m);
scenario::JsonValue json_vector(const std::vector<double>& v);

/// `{"id":<id>,` + body without its leading '{'.
std::string compose_response(const std::string& id, const std::string& body);

/// `{"status":"error","error":{"code":...,"detail":...}}`
std::string error_body(const std::string& code, const std::string& detail);

/// `{"status":"failed","failure":{"reason":...,"rung":...,"detail":...}}`
std::string failure_body(const robust::SolveFailure& failure);

}  // namespace dpm::serve
