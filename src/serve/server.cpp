#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dpm::serve {

namespace {

/// Writes the whole buffer, retrying on short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

PolicyServer::PolicyServer(PolicyEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

PolicyServer::~PolicyServer() { stop(); }

bool PolicyServer::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.backlog) < 0) return fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void PolicyServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    // Shut the sockets down so blocked reads return; the workers then
    // close their own fds and exit.
    for (const int fd : worker_fds_) ::shutdown(fd, SHUT_RDWR);
    workers = std::move(workers_);
    workers_.clear();
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void PolicyServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(workers_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    worker_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void PolicyServer::serve_connection(int fd) {
  std::string pending;
  char buf[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, error, or shutdown() from stop()
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = engine_.submit(line);
      response.push_back('\n');
      if (!write_all(fd, response.data(), response.size())) {
        open = false;
        break;
      }
    }
    pending.erase(0, start);
  }
  // Deregister before closing so stop() never shuts down a reused
  // descriptor.
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    for (std::size_t i = 0; i < worker_fds_.size(); ++i) {
      if (worker_fds_[i] == fd) {
        worker_fds_.erase(worker_fds_.begin() + static_cast<long>(i));
        break;
      }
    }
  }
  ::close(fd);
}

}  // namespace dpm::serve
