#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dpm::serve {

namespace {

/// Writes the whole buffer, retrying on short writes and EINTR.
/// MSG_NOSIGNAL: a client that disconnects mid-response must surface as
/// EPIPE here, not as a SIGPIPE that terminates the whole daemon.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

PolicyServer::PolicyServer(PolicyEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

PolicyServer::~PolicyServer() { stop(); }

bool PolicyServer::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.backlog) < 0) return fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void PolicyServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    // Shut the sockets down so blocked reads return; the workers then
    // close their own fds and exit.
    for (const int fd : worker_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [fd, worker] : workers_) workers.push_back(std::move(worker));
    workers_.clear();
    for (std::thread& worker : reaped_) workers.push_back(std::move(worker));
    reaped_.clear();
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t PolicyServer::live_connections() const {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  return workers_.size() + reaped_.size();
}

void PolicyServer::reap_finished() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    finished.swap(reaped_);
  }
  // These threads have already deregistered themselves; joining only
  // waits out their final close().
  for (std::thread& worker : finished) {
    if (worker.joinable()) worker.join();
  }
}

void PolicyServer::accept_loop() {
  while (!stopping_.load()) {
    reap_finished();
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(workers_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    worker_fds_.push_back(fd);
    // The new thread cannot reach its own cleanup (which needs
    // workers_mutex_, held here) before this emplace completes.
    workers_.emplace(fd, std::thread([this, fd] { serve_connection(fd); }));
  }
}

void PolicyServer::serve_connection(int fd) {
  std::string pending;
  char buf[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, error, or shutdown() from stop()
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response;
      try {
        response = engine_.submit(line);
      } catch (...) {
        // Last-resort backstop (the engine's own error paths failed,
        // e.g. allocation exhaustion mid-batch): answer with a static
        // typed error and drop the connection instead of letting the
        // exception terminate the daemon.
        static constexpr char kInternalError[] =
            "{\"id\":\"\",\"status\":\"error\",\"error\":{\"code\":"
            "\"internal\",\"detail\":\"request processing failed\"}}\n";
        write_all(fd, kInternalError, sizeof kInternalError - 1);
        open = false;
        break;
      }
      response.push_back('\n');
      if (!write_all(fd, response.data(), response.size())) {
        open = false;
        break;
      }
    }
    pending.erase(0, start);
  }
  // Deregister before closing so stop() never shuts down a reused
  // descriptor, and hand this thread's own handle to the acceptor for
  // joining — workers_ stays bounded by the live connection count under
  // arbitrary connection churn.
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    for (std::size_t i = 0; i < worker_fds_.size(); ++i) {
      if (worker_fds_[i] == fd) {
        worker_fds_.erase(worker_fds_.begin() + static_cast<long>(i));
        break;
      }
    }
    const auto self = workers_.find(fd);
    if (self != workers_.end()) {
      reaped_.push_back(std::move(self->second));
      workers_.erase(self);
    }
  }
  ::close(fd);
}

}  // namespace dpm::serve
