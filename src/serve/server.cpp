#include "serve/server.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dpm::serve {

namespace {

/// Writes the whole buffer, retrying on short writes and EINTR.
/// MSG_NOSIGNAL: a client that disconnects mid-response must surface as
/// EPIPE here, not as a SIGPIPE that terminates the whole daemon.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Static shed line for connections refused at the max_connections cap:
/// built once, written whole, no allocation on the overload path.
constexpr char kOverloadedLine[] =
    "{\"id\":\"\",\"status\":\"error\",\"error\":{\"code\":\"overloaded\","
    "\"detail\":\"connection limit reached; retry later\"}}\n";

/// Static rejection for a request line exceeding the framing bound.
constexpr char kLineTooLongLine[] =
    "{\"id\":\"\",\"status\":\"error\",\"error\":{\"code\":\"bad-request\","
    "\"detail\":\"line too long (exceeds max_line_bytes)\"}}\n";

}  // namespace

PolicyServer::PolicyServer(PolicyEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

PolicyServer::~PolicyServer() { stop(); }

bool PolicyServer::start(std::string* error, StartFailure* failure) {
  if (failure != nullptr) *failure = StartFailure::kSocket;
  const auto fail = [&](const std::string& what, bool with_errno = true) {
    if (error != nullptr) {
      *error = with_errno ? what + ": " + std::strerror(errno) : what;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  // Resolve like the client side: getaddrinfo accepts IPv4/IPv6 literals
  // and hostnames alike, so --bind ::1 and --bind localhost both work.
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(options_.port);
  const int rc = ::getaddrinfo(options_.bind_address.c_str(), service.c_str(),
                               &hints, &results);
  if (rc != 0) {
    if (failure != nullptr) *failure = StartFailure::kResolve;
    return fail("cannot resolve bind address '" + options_.bind_address +
                    "': " + ::gai_strerror(rc),
                /*with_errno=*/false);
  }

  std::string bind_error = "bind";
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    listen_fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (listen_fd_ < 0) continue;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
    bind_error = "bind(" + options_.bind_address + ")";
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::freeaddrinfo(results);
  if (listen_fd_ < 0) return fail(bind_error);

  if (::listen(listen_fd_, options_.backlog) < 0) return fail("listen");

  sockaddr_storage bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return fail("getsockname");
  }
  if (bound.ss_family == AF_INET6) {
    port_ = ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port);
  } else {
    port_ = ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
  }

  if (failure != nullptr) *failure = StartFailure::kNone;
  stopping_.store(false);
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void PolicyServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    // Shut the sockets down so blocked reads return; the workers then
    // close their own fds and exit.
    for (const int fd : worker_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [fd, worker] : workers_) workers.push_back(std::move(worker));
    workers_.clear();
    for (std::thread& worker : reaped_) workers.push_back(std::move(worker));
    reaped_.clear();
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t PolicyServer::live_connections() const {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  return workers_.size() + reaped_.size();
}

void PolicyServer::reap_finished() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    finished.swap(reaped_);
  }
  // These threads have already deregistered themselves; joining only
  // waits out their final close().
  for (std::thread& worker : finished) {
    if (worker.joinable()) worker.join();
  }
}

void PolicyServer::accept_loop() {
  while (!stopping_.load()) {
    reap_finished();
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(workers_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    // Connection cap: refuse with a static typed line before spawning
    // anything — a flood costs one write+close per connection, never a
    // thread or a tracked fd.  reaped_ counts too: those threads exist
    // until joined, and the cap bounds threads, not just open sockets.
    if (options_.max_connections > 0 &&
        workers_.size() + reaped_.size() >= options_.max_connections) {
      write_all(fd, kOverloadedLine, sizeof kOverloadedLine - 1);
      ::close(fd);
      shed_connections_.fetch_add(1);
      engine_.note_shed_connection();
      continue;
    }
    worker_fds_.push_back(fd);
    // The new thread cannot reach its own cleanup (which needs
    // workers_mutex_, held here) before this emplace completes.
    workers_.emplace(fd, std::thread([this, fd] { serve_connection(fd); }));
  }
}

void PolicyServer::serve_connection(int fd) {
  std::string pending;
  char buf[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, error, or shutdown() from stop()
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    // Framing bound: a peer streaming bytes with no newline must not
    // grow `pending` without limit.  Checked before line extraction so
    // a single oversized line is rejected even if later bytes contain
    // the terminator.
    if (options_.max_line_bytes > 0 &&
        pending.size() > options_.max_line_bytes) {
      write_all(fd, kLineTooLongLine, sizeof kLineTooLongLine - 1);
      engine_.note_oversized_line();
      break;
    }
    for (std::size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response;
      try {
        response = engine_.submit(line);
      } catch (...) {
        // Last-resort backstop (the engine's own error paths failed,
        // e.g. allocation exhaustion mid-batch): answer with a static
        // typed error and drop the connection instead of letting the
        // exception terminate the daemon.
        static constexpr char kInternalError[] =
            "{\"id\":\"\",\"status\":\"error\",\"error\":{\"code\":"
            "\"internal\",\"detail\":\"request processing failed\"}}\n";
        write_all(fd, kInternalError, sizeof kInternalError - 1);
        open = false;
        break;
      }
      response.push_back('\n');
      if (!write_all(fd, response.data(), response.size())) {
        open = false;
        break;
      }
    }
    pending.erase(0, start);
  }
  // Deregister before closing so stop() never shuts down a reused
  // descriptor, and hand this thread's own handle to the acceptor for
  // joining — workers_ stays bounded by the live connection count under
  // arbitrary connection churn.
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    for (std::size_t i = 0; i < worker_fds_.size(); ++i) {
      if (worker_fds_[i] == fd) {
        worker_fds_.erase(worker_fds_.begin() + static_cast<long>(i));
        break;
      }
    }
    const auto self = workers_.find(fd);
    if (self != workers_.end()) {
      reaped_.push_back(std::move(self->second));
      workers_.erase(self);
    }
  }
  ::close(fd);
}

}  // namespace dpm::serve
