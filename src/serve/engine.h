// PolicyEngine: the dpmd request processor.
//
// One engine owns the full serving state — the model/LP session table,
// the content-addressed response cache, and the telemetry counters —
// behind a single mutex, so every request sequence produces the same
// responses at any client thread count (the serving restatement of the
// scenario engine's --jobs invariance).
//
// Three economic tiers per solve request (docs/serving.md):
//   * exact hit  — the full request key (protocol.h) matches a cached
//     response: replay the recorded bytes, zero simplex pivots;
//   * near hit   — the structural key matches a live session: reuse its
//     LP and warm-start the boxed dual simplex from the session's last
//     optimal basis (the 303-vs-10480-pivot economics of PR 4);
//   * cold solve — first sighting of a structure: build the LP once,
//     solve from scratch (policy-iteration crash basis at >= 4096
//     columns, mirroring PolicyOptimizer), register the session.
//
// Determinism of response bytes: every optimal solve is finished
// *canonically* — after the working solve (warm or cold) lands on an
// optimal basis, the solution is recomputed from a fresh factorization
// of that basis (a zero-pivot warm re-solve).  The reported numbers are
// then a pure function of (LP, optimal basis), so a warm-started repair
// and a cold solve that reach the same vertex answer with identical
// bytes, and a cached replay is indistinguishable from a recompute.
//
// All solves run under robust::SolveSupervisor with an optional
// cooperative per-request deadline: a poisoned or over-budget request
// degrades to a typed {"status":"failed"} response (never cached) and
// the worker survives to serve the next line.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dpm/optimizer.h"
#include "lp/revised_simplex.h"
#include "scenario/cache.h"
#include "serve/protocol.h"

namespace dpm::serve {

struct EngineOptions {
  /// Response cache on/off (exact-hit tier).  Sessions (near-hit tier)
  /// are always kept.
  bool cache = true;
  /// Cache directory; empty keeps the cache in memory only (no load on
  /// construction, flush_cache() is a no-op).
  std::string cache_dir;
  std::size_t cache_entries = scenario::ResultCache::kDefaultMaxEntries;
  /// Cooperative per-request solve deadline in wall ms; 0 disables.
  double request_deadline_ms = 0.0;
  /// Admission window: how long a submit() leader waits to coalesce
  /// concurrent requests into one batch.  0 disables coalescing.
  std::size_t batch_window_us = 200;
  /// Admission budget: requests concurrently inside submit() (queued in
  /// the batch window or executing).  A caller arriving at the cap is
  /// shed with a typed "overloaded" error response instead of queuing —
  /// the engine's memory and latency stay bounded under a request
  /// flood.  0 disables shedding (unbounded).
  std::size_t max_inflight = 64;
  /// LRU bound on live sessions (the near-hit warm-start state: one
  /// built LP + optimal basis per model structure).  Inserting past the
  /// cap evicts the least-recently-used session; the next request for
  /// an evicted structure pays a cold solve whose response bytes are
  /// identical to the original cold solve (the canonical-finish
  /// invariant).  0 disables eviction (unbounded).
  std::size_t max_sessions = 256;
};

/// Per-engine request accounting.  Plain members guarded by the engine
/// mutex — deterministic for a deterministic request sequence, unlike
/// the process-wide odometers.  scripts/check_docs.sh gates this field
/// list against docs/serving.md.
struct EngineCounters {
  std::uint64_t requests = 0;       ///< lines accepted (any op)
  std::uint64_t exact_hits = 0;     ///< replayed from the response cache
  std::uint64_t near_hits = 0;      ///< warm-started from a session basis
  std::uint64_t cold_solves = 0;    ///< solved with no warm basis
  std::uint64_t evaluations = 0;    ///< evaluate requests computed
  std::uint64_t rejections = 0;     ///< typed protocol errors returned
  std::uint64_t failures = 0;       ///< solves abandoned (SolveFailure)
  std::uint64_t repair_pivots = 0;  ///< simplex iterations on near hits
  std::uint64_t cold_pivots = 0;    ///< simplex iterations on cold solves
  std::uint64_t batches = 0;        ///< multi-request admission groups
  std::uint64_t sheds = 0;          ///< requests shed by the admission budget
  std::uint64_t conn_sheds = 0;     ///< connections refused at the accept cap
  std::uint64_t session_evictions = 0;  ///< sessions evicted by the LRU bound
};

/// Process-wide serving telemetry (relaxed atomics, same contract as
/// lp::sweep_telemetry): aggregates every PolicyEngine since process
/// start.  For the deterministic per-engine numbers use counters().
EngineCounters serve_telemetry() noexcept;

/// Request-handling latency summary from a bounded reservoir of recent
/// samples.  Real wall time — admin/stdout surface only, never part of
/// a deterministic record.
struct LatencySummary {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::size_t samples = 0;
};

class PolicyEngine {
 public:
  explicit PolicyEngine(EngineOptions options = {});
  ~PolicyEngine();

  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  /// Serves one request line; always returns exactly one response line
  /// (never throws, never returns empty).
  std::string handle_line(const std::string& line);

  /// Serves a batch: responses index-aligned with `lines`.  Solve
  /// requests are grouped by structural key, in first-appearance order,
  /// so one representative per group solves cold/warm and the rest of
  /// the group dual-repairs from its basis.
  std::vector<std::string> handle_batch(const std::vector<std::string>& lines);

  /// Thread-safe entry point with admission coalescing: concurrent
  /// callers inside one batch window are grouped into a single
  /// handle_batch.  Blocks until this caller's response is ready.
  std::string submit(const std::string& line);

  /// Folds a server-side event into this engine's counters so `stats`
  /// sees the whole overload picture: a connection refused at the
  /// accept cap (the static overloaded line)…
  void note_shed_connection();
  /// …or a request line dropped for exceeding the framing bound (the
  /// server answered a typed bad-request and closed the connection).
  void note_oversized_line();

  /// Requests currently inside submit() — queued in the admission
  /// window or executing.  The quantity the max_inflight budget bounds.
  std::size_t inflight() const;

  /// Persists the response cache (no-op for in-memory engines).
  bool flush_cache();

  /// True once a shutdown request has been served.
  bool shutdown_requested() const noexcept;

  EngineCounters counters() const;
  LatencySummary latency() const;
  scenario::CacheStats cache_stats() const;
  std::size_t num_sessions() const;

 private:
  struct Session;
  struct Parsed;

  Parsed parse_one(const std::string& line) const;
  std::string process(Parsed& parsed);
  std::string process_solve(Parsed& parsed);
  std::string process_evaluate(const Parsed& parsed);
  std::string stats_body() const;

  Session& resolve_session(Parsed& parsed);
  std::string solve_in_session(Session& session, const Request& request);

  EngineOptions options_;

  mutable std::mutex mutex_;  // engine state: sessions, cache, counters
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t session_clock_ = 0;  // LRU clock for session eviction
  std::unique_ptr<scenario::ResultCache> cache_;
  EngineCounters counters_;
  std::vector<double> latency_samples_;  // bounded reservoir, ms
  bool shutdown_ = false;

  // Admission layer (submit only).
  struct Slot;
  mutable std::mutex adm_mutex_;
  std::condition_variable adm_cv_;
  std::vector<std::shared_ptr<Slot>> adm_pending_;
  bool adm_leader_ = false;
  std::size_t adm_inflight_ = 0;  // submit() callers admitted, not done
};

}  // namespace dpm::serve
