// Deterministic fleet request material for the serving tier.
//
// A fleet in the paper's setting is millions of devices running a
// handful of distinct power-managed designs: the model *structures*
// number a few, while the per-device constraint points (bounds, initial
// states) vary.  These helpers generate that shape deterministically —
// the same variant index always yields the same ModelSpec, so the
// bench_serve scenario, the dpmd example transcript, and the protocol
// tests all speak about identical models without sharing files.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace dpm::serve {

/// A two-state on/off provider x two-state bursty requester design in
/// the style of the paper's running example, with service rate, wake
/// probability, and power table varied per `variant` (cycled from small
/// deterministic tables).  `queue_capacity` scales the composed state
/// space: 2 x 2 x (capacity + 1) states, 2 commands.
ModelSpec fleet_model_spec(std::size_t variant, std::size_t queue_capacity);

/// A canned request transcript over fleet_model_spec(0..1, capacity 2):
/// optimize, reoptimize with moved bounds, an evaluate, and a stats
/// probe — the replay material of `scripts/test_serve_cli.sh`, emitted
/// by `dpmd --print-example-transcript`.  Sending the transcript twice
/// makes every solve line an exact cache hit on the second pass.
std::vector<std::string> example_transcript();

}  // namespace dpm::serve
