#include "serve/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <utility>

#include "dpm/crash.h"
#include "dpm/evaluation.h"
#include "robust/probe.h"
#include "robust/supervisor.h"

namespace dpm::serve {

namespace {

using scenario::JsonValue;

/// Mirrors the PolicyOptimizer threshold: below this many columns the
/// crash machinery costs more than the pivots it saves.
constexpr std::size_t kCrashMinColumns = 4096;

/// Bounded latency reservoir (stats endpoint only).
constexpr std::size_t kMaxLatencySamples = 4096;

/// Process-wide aggregate across every engine (relaxed atomics, same
/// contract as lp::sweep_telemetry).
struct TelemetryCells {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> exact_hits{0};
  std::atomic<std::uint64_t> near_hits{0};
  std::atomic<std::uint64_t> cold_solves{0};
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> rejections{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> repair_pivots{0};
  std::atomic<std::uint64_t> cold_pivots{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> sheds{0};
  std::atomic<std::uint64_t> conn_sheds{0};
  std::atomic<std::uint64_t> session_evictions{0};
};
TelemetryCells g_telemetry;

void add_telemetry(const EngineCounters& delta) noexcept {
  const auto add = [](std::atomic<std::uint64_t>& cell, std::uint64_t v) {
    if (v != 0) cell.fetch_add(v, std::memory_order_relaxed);
  };
  add(g_telemetry.requests, delta.requests);
  add(g_telemetry.exact_hits, delta.exact_hits);
  add(g_telemetry.near_hits, delta.near_hits);
  add(g_telemetry.cold_solves, delta.cold_solves);
  add(g_telemetry.evaluations, delta.evaluations);
  add(g_telemetry.rejections, delta.rejections);
  add(g_telemetry.failures, delta.failures);
  add(g_telemetry.repair_pivots, delta.repair_pivots);
  add(g_telemetry.cold_pivots, delta.cold_pivots);
  add(g_telemetry.batches, delta.batches);
  add(g_telemetry.sheds, delta.sheds);
  add(g_telemetry.conn_sheds, delta.conn_sheds);
  add(g_telemetry.session_evictions, delta.session_evictions);
}

/// Best-effort request-id recovery for responses produced *without*
/// parsing the line (admission sheds): a shed must stay cheap, so this
/// only recognizes a top-level "id" whose value is a plain string with
/// no escapes — anything else echoes an empty id.  Responses still
/// arrive in request order per connection, so clients can always match
/// by position.
std::string peek_id(const std::string& line) {
  const std::size_t at = line.find("\"id\"");
  if (at == std::string::npos) return {};
  std::size_t i = at + 4;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != ':') return {};
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != '"') return {};
  const std::size_t start = ++i;
  while (i < line.size() && line[i] != '"' && line[i] != '\\') ++i;
  if (i >= line.size() || line[i] != '"') return {};
  return line.substr(start, i - start);
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Arms the cooperative solve deadline for the current request; always
/// cleared on exit so worker threads never leak a stale deadline.
class DeadlineGuard {
 public:
  explicit DeadlineGuard(double wall_ms) : armed_(wall_ms > 0.0) {
    if (armed_) robust::set_thread_deadline(wall_ms);
  }
  ~DeadlineGuard() {
    if (armed_) robust::clear_thread_deadline();
  }
  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;

 private:
  bool armed_;
};

// Pivots attributable to the *answer*: the determining (final) rung's
// iterations.  Abandoned rungs burn pivots too, but counting them
// would make the serving economics depend on absorbed transient
// faults (the supervisor's retry rung replays the clean trajectory
// bit-identically, so the final rung's count is fault-invariant); the
// process-wide lp::pivots_executed() odometer still sees every pivot.
std::uint64_t outcome_pivots(const robust::SolveOutcome& outcome) {
  return outcome.steps.empty() ? 0 : outcome.steps.back().iterations;
}

/// Validates a wire initial distribution against the model and returns
/// the effective p0 (uniform when empty).
linalg::Vector resolve_initial(const SystemModel& model,
                               const std::vector<double>& initial) {
  if (initial.empty()) return model.uniform_distribution();
  if (initial.size() != model.num_states()) {
    throw ProtocolError("bad-request",
                        "'initial' must have one entry per composed state");
  }
  double mass = 0.0;
  for (const double v : initial) {
    if (v < -1e-12) {
      throw ProtocolError("bad-request", "'initial' entries must be >= 0");
    }
    mass += v;
  }
  if (std::abs(mass - 1.0) > 1e-7) {
    throw ProtocolError("bad-request", "'initial' must sum to 1");
  }
  return initial;
}

}  // namespace

EngineCounters serve_telemetry() noexcept {
  EngineCounters t;
  t.requests = g_telemetry.requests.load(std::memory_order_relaxed);
  t.exact_hits = g_telemetry.exact_hits.load(std::memory_order_relaxed);
  t.near_hits = g_telemetry.near_hits.load(std::memory_order_relaxed);
  t.cold_solves = g_telemetry.cold_solves.load(std::memory_order_relaxed);
  t.evaluations = g_telemetry.evaluations.load(std::memory_order_relaxed);
  t.rejections = g_telemetry.rejections.load(std::memory_order_relaxed);
  t.failures = g_telemetry.failures.load(std::memory_order_relaxed);
  t.repair_pivots = g_telemetry.repair_pivots.load(std::memory_order_relaxed);
  t.cold_pivots = g_telemetry.cold_pivots.load(std::memory_order_relaxed);
  t.batches = g_telemetry.batches.load(std::memory_order_relaxed);
  t.sheds = g_telemetry.sheds.load(std::memory_order_relaxed);
  t.conn_sheds = g_telemetry.conn_sheds.load(std::memory_order_relaxed);
  t.session_evictions =
      g_telemetry.session_evictions.load(std::memory_order_relaxed);
  return t;
}

/// One registered model structure: the composed model, its LP (rhs
/// mutated per request), the crash seed, and the last optimal basis the
/// next near-hit warm-starts from.  Heap-allocated so the metric
/// closures and the optimizer's model pointer stay valid for the
/// session's lifetime.
struct PolicyEngine::Session {
  SystemModel model;
  double discount = 0.0;
  std::string objective_name;
  std::vector<ConstraintSpec> specs;  // structural (bounds ignored)
  std::unique_ptr<PolicyOptimizer> optimizer;
  std::vector<OptimizationConstraint> constraints;  // ge senses negated
  lp::LpProblem lp;
  std::vector<std::size_t> crash_cols;  // empty below kCrashMinColumns
  lp::SimplexBasis basis;               // last optimal basis
  std::uint64_t structural = 0;
  std::uint64_t lru = 0;  // engine session_clock_ at last use

  Session(SystemModel m, const Request& request, std::uint64_t key)
      : model(std::move(m)),
        discount(request.discount),
        objective_name(request.objective),
        specs(request.constraints),
        structural(key) {
    OptimizerConfig config;
    config.discount = discount;
    optimizer = std::make_unique<PolicyOptimizer>(model, config);
    for (const ConstraintSpec& spec : specs) {
      OptimizationConstraint oc;
      const StateActionMetric metric = metric_by_name(model, spec.metric);
      // "ge" bounds below: negate metric and bound so the LP keeps its
      // all-kLe constraint block and the warm-start row layout.
      oc.metric = spec.lower_bound
                      ? StateActionMetric([metric](std::size_t s,
                                                   std::size_t a) {
                          return -metric(s, a);
                        })
                      : metric;
      oc.per_step_bound = spec.lower_bound ? -spec.bound : spec.bound;
      oc.name = spec.name;
      constraints.push_back(std::move(oc));
    }
    lp = optimizer->build_lp(metric_by_name(model, objective_name),
                             constraints);
    if (model.num_states() * model.num_commands() >= kCrashMinColumns) {
      const std::vector<std::size_t> actions = greedy_crash_actions(
          model.chain().sparse(), metric_by_name(model, objective_name),
          discount);
      crash_cols = crash_columns_for_lp(actions, model.num_commands(),
                                        lp.num_constraints());
    }
  }
};

struct PolicyEngine::Parsed {
  Request req;
  std::string error_code;    // non-empty: rejected before processing
  std::string error_detail;
  std::optional<SystemModel> model;  // composed inline model
  std::uint64_t structural = 0;      // solve ops only
  bool has_structural = false;
};

struct PolicyEngine::Slot {
  std::string line;
  std::promise<std::string> promise;
};

PolicyEngine::PolicyEngine(EngineOptions options)
    : options_(std::move(options)) {
  if (options_.cache) {
    // An empty dir keeps the store purely in memory: ResultCache only
    // touches the filesystem in load()/flush(), which we then skip.
    cache_ = std::make_unique<scenario::ResultCache>(options_.cache_dir,
                                                     options_.cache_entries);
    if (!options_.cache_dir.empty()) cache_->load();
  }
}

PolicyEngine::~PolicyEngine() = default;

PolicyEngine::Parsed PolicyEngine::parse_one(const std::string& line) const {
  Parsed p;
  try {
    p.req = parse_request(line);
    if (p.req.model) p.model = p.req.model->compose();
    if (p.req.op == Op::kOptimize || p.req.op == Op::kReoptimize) {
      if (p.model) {
        p.structural = structural_request_key(*p.model, p.req.discount,
                                              p.req.objective,
                                              p.req.constraints);
      } else {
        const std::optional<std::uint64_t> ref = key_from_hex(p.req.model_ref);
        if (!ref) {
          throw ProtocolError("bad-request",
                              "'model_ref' must be a 16-hex request key");
        }
        p.structural = *ref;
      }
      p.has_structural = true;
    }
  } catch (const ProtocolError& e) {
    p.error_code = e.code();
    p.error_detail = e.what();
  } catch (const std::exception& e) {
    p.error_code = "bad-request";
    p.error_detail = e.what();
  }
  return p;
}

std::string PolicyEngine::handle_line(const std::string& line) {
  Parsed parsed = parse_one(line);
  return compose_response(parsed.req.id, process(parsed));
}

std::vector<std::string> PolicyEngine::handle_batch(
    const std::vector<std::string>& lines) {
  std::vector<Parsed> parsed;
  parsed.reserve(lines.size());
  for (const std::string& line : lines) parsed.push_back(parse_one(line));

  // Group solve requests by structural key, preserving first-appearance
  // order: the group's first request solves cold (or warm from a prior
  // session), the rest dual-repair from the basis it just installed.
  std::vector<std::size_t> order;
  order.reserve(lines.size());
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  std::vector<std::uint64_t> group_order;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const Parsed& p = parsed[i];
    if (p.error_code.empty() && p.has_structural) {
      auto [it, inserted] = groups.try_emplace(p.structural);
      if (inserted) group_order.push_back(p.structural);
      it->second.push_back(i);
    } else {
      order.push_back(i);  // non-solve requests keep arrival order
    }
  }
  for (const std::uint64_t key : group_order) {
    for (const std::size_t i : groups[key]) order.push_back(i);
  }

  std::vector<std::string> responses(lines.size());
  for (const std::size_t i : order) {
    responses[i] = compose_response(parsed[i].req.id, process(parsed[i]));
  }
  if (lines.size() > 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.batches += 1;
    EngineCounters delta;
    delta.batches = 1;
    add_telemetry(delta);
  }
  return responses;
}

std::string PolicyEngine::submit(const std::string& line) {
  auto slot = std::make_shared<Slot>();
  slot->line = line;
  std::future<std::string> response = slot->promise.get_future();

  std::unique_lock<std::mutex> lock(adm_mutex_);
  if (options_.max_inflight > 0 && adm_inflight_ >= options_.max_inflight) {
    // Admission budget exhausted: shed instead of queuing.  The line is
    // never parsed (shedding must stay cheap under a flood), so the id
    // echo is best-effort and the detail names the budget that fired.
    lock.unlock();
    {
      std::lock_guard<std::mutex> guard(mutex_);
      counters_.sheds += 1;
    }
    EngineCounters delta;
    delta.sheds = 1;
    add_telemetry(delta);
    return compose_response(
        peek_id(line),
        error_body("overloaded",
                   "admission budget exhausted (max_inflight=" +
                       std::to_string(options_.max_inflight) +
                       "); retry later"));
  }
  ++adm_inflight_;
  // Every exit from here on must release the admission slot, including
  // a response.get() that rethrows the leader's set_exception and any
  // throw while adm_mutex_ is still held (the guard reuses the caller's
  // unique_lock so it never self-deadlocks).
  struct InflightGuard {
    PolicyEngine* engine;
    std::unique_lock<std::mutex>* lock;
    ~InflightGuard() {
      if (!lock->owns_lock()) lock->lock();
      --engine->adm_inflight_;
      lock->unlock();
    }
  } inflight_guard{this, &lock};
  adm_pending_.push_back(slot);
  if (!adm_leader_) {
    // Become the admission leader: hold the window open so concurrent
    // submitters coalesce into one batch, then serve it for everyone.
    adm_leader_ = true;
    if (options_.batch_window_us > 0) {
      adm_cv_.wait_for(lock,
                       std::chrono::microseconds(options_.batch_window_us));
    }
    std::vector<std::shared_ptr<Slot>> batch = std::move(adm_pending_);
    adm_pending_.clear();
    adm_leader_ = false;
    lock.unlock();

    // Every slot's promise must be fulfilled no matter what: a follower
    // blocked in get() on a destroyed-unfulfilled promise would see a
    // future_error escape its connection thread and terminate the
    // daemon.
    std::size_t delivered = 0;
    try {
      std::vector<std::string> batch_lines;
      batch_lines.reserve(batch.size());
      for (const auto& s : batch) batch_lines.push_back(s->line);
      std::vector<std::string> batch_responses = handle_batch(batch_lines);
      for (; delivered < batch.size(); ++delivered) {
        batch[delivered]->promise.set_value(
            std::move(batch_responses[delivered]));
      }
    } catch (...) {
      for (std::size_t i = delivered; i < batch.size(); ++i) {
        try {
          batch[i]->promise.set_value(compose_response(
              "", error_body("internal", "batch processing failed")));
        } catch (...) {
          // Even the error body failed to build (allocation exhaustion):
          // hand the exception itself over; serve_connection's catch
          // around submit() is the final backstop.
          try {
            batch[i]->promise.set_exception(std::current_exception());
          } catch (...) {
          }
        }
      }
    }
  } else {
    lock.unlock();
  }
  return response.get();
}

std::string PolicyEngine::process(Parsed& parsed) {
  const double t0 = now_ms();
  std::string body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EngineCounters before = counters_;
    counters_.requests += 1;
    if (!parsed.error_code.empty()) {
      counters_.rejections += 1;
      body = error_body(parsed.error_code, parsed.error_detail);
    } else {
      try {
        switch (parsed.req.op) {
          case Op::kOptimize:
          case Op::kReoptimize:
            body = process_solve(parsed);
            break;
          case Op::kEvaluate:
            body = process_evaluate(parsed);
            break;
          case Op::kStats:
            body = stats_body();
            break;
          case Op::kShutdown: {
            shutdown_ = true;
            JsonValue o = JsonValue::object();
            o.set("status", JsonValue::string("ok"));
            o.set("shutting_down", JsonValue::boolean(true));
            body = o.dump();
            break;
          }
        }
      } catch (const ProtocolError& e) {
        counters_.rejections += 1;
        body = error_body(e.code(), e.what());
      } catch (const std::exception& e) {
        counters_.rejections += 1;
        body = error_body("bad-request", e.what());
      }
    }
    // Mirror this request's counter delta into the process aggregate.
    EngineCounters delta;
    delta.requests = counters_.requests - before.requests;
    delta.exact_hits = counters_.exact_hits - before.exact_hits;
    delta.near_hits = counters_.near_hits - before.near_hits;
    delta.cold_solves = counters_.cold_solves - before.cold_solves;
    delta.evaluations = counters_.evaluations - before.evaluations;
    delta.rejections = counters_.rejections - before.rejections;
    delta.failures = counters_.failures - before.failures;
    delta.repair_pivots = counters_.repair_pivots - before.repair_pivots;
    delta.cold_pivots = counters_.cold_pivots - before.cold_pivots;
    delta.session_evictions =
        counters_.session_evictions - before.session_evictions;
    add_telemetry(delta);

    const double elapsed = now_ms() - t0;
    if (latency_samples_.size() >= kMaxLatencySamples) {
      latency_samples_[counters_.requests % kMaxLatencySamples] = elapsed;
    } else {
      latency_samples_.push_back(elapsed);
    }
  }
  return body;
}

PolicyEngine::Session& PolicyEngine::resolve_session(Parsed& parsed) {
  auto it = sessions_.find(parsed.structural);
  if (it != sessions_.end()) {
    it->second->lru = ++session_clock_;
    return *it->second;
  }
  if (!parsed.model) {
    throw ProtocolError("unknown-model",
                        "model_ref " + key_to_hex(parsed.structural) +
                            " is not registered; send the model inline");
  }
  try {
    auto session = std::make_unique<Session>(std::move(*parsed.model),
                                             parsed.req, parsed.structural);
    // LRU bound on the warm-start state: inserting past the cap drops
    // the stalest structure.  Its next request re-registers and pays a
    // cold solve — whose canonical finish makes the response bytes
    // identical to the evicted session's original cold solve, so
    // eviction is a pure economics (never correctness) event.
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      auto stalest = sessions_.begin();
      for (auto probe = sessions_.begin(); probe != sessions_.end(); ++probe) {
        if (probe->second->lru < stalest->second->lru) stalest = probe;
      }
      sessions_.erase(stalest);
      counters_.session_evictions += 1;
    }
    session->lru = ++session_clock_;
    auto [slot, inserted] =
        sessions_.emplace(parsed.structural, std::move(session));
    return *slot->second;
  } catch (const ProtocolError&) {
    throw;
  } catch (const ModelError& e) {
    throw ProtocolError("bad-model", e.what());
  } catch (const lp::LpError& e) {
    throw ProtocolError("bad-model", e.what());
  }
}

std::string PolicyEngine::process_solve(Parsed& parsed) {
  Session& session = resolve_session(parsed);
  const Request& request = parsed.req;

  // A model_ref request must match the session's structural constraint
  // list — the bounds are the only per-request degrees of freedom.
  if (request.constraints.size() != session.specs.size()) {
    throw ProtocolError("bad-request",
                        "constraint list does not match the referenced model "
                        "structure");
  }
  for (std::size_t k = 0; k < session.specs.size(); ++k) {
    if (request.constraints[k].metric != session.specs[k].metric ||
        request.constraints[k].lower_bound != session.specs[k].lower_bound) {
      throw ProtocolError("bad-request",
                          "constraint list does not match the referenced "
                          "model structure");
    }
  }
  // A model_ref request cannot re-derive the structural inputs, so any
  // it supplies explicitly must agree with the session — silently
  // solving with the session's values would answer a different problem
  // than the one the client described.  Omitted fields default to the
  // session's.  (With an inline model these cannot mismatch: discount
  // and objective are part of the structural key that found the
  // session.)
  if (request.has_discount && request.discount != session.discount) {
    throw ProtocolError("bad-request",
                        "'discount' does not match the referenced model "
                        "(the structural key fixes the discount; omit the "
                        "field to reuse the session's)");
  }
  if (request.has_objective && request.objective != session.objective_name) {
    throw ProtocolError("bad-request",
                        "'objective' does not match the referenced model "
                        "(the structural key fixes the objective; omit the "
                        "field to reuse the session's)");
  }

  return solve_in_session(session, request);
}

std::string PolicyEngine::solve_in_session(Session& session,
                                           const Request& request) {
  const std::size_t n = session.model.num_states();
  const double horizon = 1.0 / (1.0 - session.discount);

  // Install the request's constraint point: balance rows carry p0, the
  // metric rows carry bound * horizon (matrix and senses never change,
  // so the session basis stays structurally valid — the warm-start
  // contract of lp::LpProblem::set_rhs).
  const linalg::Vector p0 = resolve_initial(session.model, request.initial);
  for (std::size_t j = 0; j < n; ++j) session.lp.set_rhs(j, p0[j]);
  for (std::size_t k = 0; k < request.constraints.size(); ++k) {
    const ConstraintSpec& spec = request.constraints[k];
    const double bound = spec.lower_bound ? -spec.bound : spec.bound;
    session.lp.set_rhs(n + k, bound * horizon);
  }

  const std::uint64_t key =
      solve_request_key(session.structural, session.lp, request.want_policy);
  if (cache_) {
    scenario::UnitOutput cached;
    if (cache_->lookup(key, cached) && !cached.lines.empty()) {
      counters_.exact_hits += 1;
      return cached.lines.front();
    }
  }

  const bool warm = !session.basis.empty();
  robust::SupervisorOptions opts;
  if (!warm && !session.crash_cols.empty()) {
    opts.lp.crash_columns = &session.crash_cols;
  }
  const robust::SolveSupervisor supervisor(opts);

  DeadlineGuard deadline(options_.request_deadline_ms);
  lp::SimplexBasis basis_out;
  robust::SolveOutcome outcome = supervisor.solve(
      session.lp, warm ? &session.basis : nullptr, &basis_out);
  std::uint64_t pivots = outcome_pivots(outcome);

  if (outcome.determined() &&
      outcome.solution.status == lp::LpStatus::kOptimal) {
    // Canonical finish: recompute the solution from a fresh
    // factorization of the optimal basis (a zero-pivot warm re-solve),
    // so the reported numbers depend only on (LP, optimal basis) — a
    // warm repair and a cold solve landing on the same vertex answer
    // with identical bytes.
    robust::SupervisorOptions certify_opts;
    const robust::SolveSupervisor certifier(certify_opts);
    lp::SimplexBasis certified_basis;
    robust::SolveOutcome certified =
        certifier.solve(session.lp, &basis_out, &certified_basis);
    pivots += outcome_pivots(certified);
    if (certified.determined()) {
      outcome = std::move(certified);
      basis_out = std::move(certified_basis);
    } else {
      outcome = std::move(certified);  // carry the failure out
    }
  }

  if (!outcome.determined()) {
    // An abandoned solve is its own tier: it contributes to no hit or
    // pivot economics (the work bought no reusable answer), and the
    // response is never cached so a retry recomputes from scratch.
    counters_.failures += 1;
    return failure_body(*outcome.failure);  // never cached: must recompute
  }

  if (warm) {
    counters_.near_hits += 1;
    counters_.repair_pivots += pivots;
  } else {
    counters_.cold_solves += 1;
    counters_.cold_pivots += pivots;
  }

  std::string body;
  if (outcome.solution.status != lp::LpStatus::kOptimal) {
    JsonValue o = JsonValue::object();
    o.set("status", JsonValue::string("ok"));
    o.set("feasible", JsonValue::boolean(false));
    o.set("lp_status", JsonValue::string(lp::to_string(
                           outcome.solution.status)));
    o.set("model_ref", JsonValue::string(key_to_hex(session.structural)));
    body = o.dump();
  } else {
    session.basis = std::move(basis_out);
    const double one_minus_gamma = 1.0 - session.discount;
    const linalg::Vector& x = outcome.solution.x;
    const std::size_t na = session.model.num_commands();

    JsonValue o = JsonValue::object();
    o.set("status", JsonValue::string("ok"));
    o.set("feasible", JsonValue::boolean(true));
    o.set("model_ref", JsonValue::string(key_to_hex(session.structural)));
    o.set("objective", JsonValue::string(session.objective_name));
    o.set("objective_per_step",
          JsonValue::number(one_minus_gamma * outcome.solution.objective));
    JsonValue achieved = JsonValue::array();
    for (std::size_t k = 0; k < session.constraints.size(); ++k) {
      double total = 0.0;
      for (std::size_t col = 0; col < x.size(); ++col) {
        if (x[col] != 0.0) {
          total += session.constraints[k].metric(col / na, col % na) * x[col];
        }
      }
      double value = one_minus_gamma * total;
      if (session.specs[k].lower_bound) value = -value;  // report as requested
      achieved.push_back(JsonValue::number(value));
    }
    o.set("constraint_per_step", std::move(achieved));
    if (request.want_policy) {
      o.set("policy",
            json_matrix(session.optimizer->extract_policy(x).matrix()));
    }
    body = o.dump();
  }

  if (cache_) {
    scenario::UnitOutput out;
    out.lines.push_back(body);
    cache_->store(key, "dpmd", key_to_hex(key), out);
  }
  return body;
}

std::string PolicyEngine::process_evaluate(const Parsed& parsed) {
  const Request& request = parsed.req;
  const SystemModel& model = *parsed.model;
  const std::size_t n = model.num_states();
  const std::size_t na = model.num_commands();

  if (request.policy.size() != n) {
    throw ProtocolError("bad-request",
                        "'policy' must have one row per composed state");
  }
  linalg::Matrix decisions(n, na);
  for (std::size_t s = 0; s < n; ++s) {
    if (request.policy[s].size() != na) {
      throw ProtocolError("bad-request",
                          "'policy' rows must have one entry per command");
    }
    for (std::size_t a = 0; a < na; ++a) decisions(s, a) = request.policy[s][a];
  }
  const linalg::Vector p0 = resolve_initial(model, request.initial);

  const std::uint64_t key = evaluate_request_key(model, request.discount, p0,
                                                 decisions, request.metrics);
  if (cache_) {
    scenario::UnitOutput cached;
    if (cache_->lookup(key, cached) && !cached.lines.empty()) {
      counters_.exact_hits += 1;
      return cached.lines.front();
    }
  }

  std::string body;
  try {
    const Policy policy = Policy::randomized(std::move(decisions));
    const PolicyEvaluation evaluation(model, policy, request.discount, p0);
    JsonValue values = JsonValue::object();
    for (const std::string& name : request.metrics) {
      values.set(name, JsonValue::number(
                           evaluation.per_step(metric_by_name(model, name))));
    }
    JsonValue o = JsonValue::object();
    o.set("status", JsonValue::string("ok"));
    o.set("metrics", std::move(values));
    body = o.dump();
  } catch (const ModelError& e) {
    throw ProtocolError("bad-request", e.what());
  } catch (const linalg::LinalgError& e) {
    throw ProtocolError("bad-request", e.what());
  }
  counters_.evaluations += 1;

  if (cache_) {
    scenario::UnitOutput out;
    out.lines.push_back(body);
    cache_->store(key, "dpmd", key_to_hex(key), out);
  }
  return body;
}

std::string PolicyEngine::stats_body() const {
  JsonValue c = JsonValue::object();
  c.set("requests", JsonValue::number(double(counters_.requests)));
  c.set("exact_hits", JsonValue::number(double(counters_.exact_hits)));
  c.set("near_hits", JsonValue::number(double(counters_.near_hits)));
  c.set("cold_solves", JsonValue::number(double(counters_.cold_solves)));
  c.set("evaluations", JsonValue::number(double(counters_.evaluations)));
  c.set("rejections", JsonValue::number(double(counters_.rejections)));
  c.set("failures", JsonValue::number(double(counters_.failures)));
  c.set("repair_pivots", JsonValue::number(double(counters_.repair_pivots)));
  c.set("cold_pivots", JsonValue::number(double(counters_.cold_pivots)));
  c.set("batches", JsonValue::number(double(counters_.batches)));
  c.set("sheds", JsonValue::number(double(counters_.sheds)));
  c.set("conn_sheds", JsonValue::number(double(counters_.conn_sheds)));
  c.set("session_evictions",
        JsonValue::number(double(counters_.session_evictions)));

  JsonValue cache = JsonValue::object();
  if (cache_) {
    const scenario::CacheStats& s = cache_->stats();
    cache.set("hits", JsonValue::number(double(s.hits)));
    cache.set("misses", JsonValue::number(double(s.misses)));
    cache.set("rejected", JsonValue::number(double(s.rejected)));
    cache.set("evicted", JsonValue::number(double(s.evicted)));
  }

  std::vector<double> samples = latency_samples_;
  std::sort(samples.begin(), samples.end());
  JsonValue latency = JsonValue::object();
  if (!samples.empty()) {
    latency.set("p50_ms",
                JsonValue::number(samples[samples.size() / 2]));
    latency.set("p99_ms",
                JsonValue::number(samples[(samples.size() * 99) / 100]));
    latency.set("max_ms", JsonValue::number(samples.back()));
  }
  latency.set("samples", JsonValue::number(double(samples.size())));

  JsonValue o = JsonValue::object();
  o.set("status", JsonValue::string("ok"));
  o.set("counters", std::move(c));
  o.set("sessions", JsonValue::number(double(sessions_.size())));
  o.set("cache", std::move(cache));
  o.set("latency", std::move(latency));
  return o.dump();
}

void PolicyEngine::note_shed_connection() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.conn_sheds += 1;
  }
  EngineCounters delta;
  delta.conn_sheds = 1;
  add_telemetry(delta);
}

void PolicyEngine::note_oversized_line() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.rejections += 1;
  }
  EngineCounters delta;
  delta.rejections = 1;
  add_telemetry(delta);
}

std::size_t PolicyEngine::inflight() const {
  std::lock_guard<std::mutex> lock(adm_mutex_);
  return adm_inflight_;
}

bool PolicyEngine::flush_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!cache_ || options_.cache_dir.empty()) return true;
  return cache_->flush();
}

bool PolicyEngine::shutdown_requested() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

EngineCounters PolicyEngine::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

LatencySummary PolicyEngine::latency() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LatencySummary summary;
  if (latency_samples_.empty()) return summary;
  std::vector<double> samples = latency_samples_;
  std::sort(samples.begin(), samples.end());
  summary.samples = samples.size();
  summary.p50_ms = samples[samples.size() / 2];
  summary.p99_ms = samples[(samples.size() * 99) / 100];
  summary.max_ms = samples.back();
  return summary;
}

scenario::CacheStats PolicyEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_ ? cache_->stats() : scenario::CacheStats{};
}

std::size_t PolicyEngine::num_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace dpm::serve
