#include "serve/protocol.h"

#include "markov/markov_chain.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace dpm::serve {

namespace {

using scenario::JsonError;
using scenario::JsonValue;

/// Wire names, indexed by Op.  The docs drift gate
/// (scripts/check_docs.sh) parses this table, so every name here must
/// appear in docs/serving.md.
constexpr const char* kOpNames[kNumOps] = {
    "optimize", "reoptimize", "evaluate", "stats", "shutdown",
};

constexpr const char* kMetricNames[] = {
    "power", "queue_length", "request_loss", "active_sleep", "throughput",
};

[[noreturn]] void bad_request(const std::string& detail) {
  throw ProtocolError("bad-request", detail);
}

/// Typed field readers: JsonError (missing/mistyped member) becomes a
/// bad-request rejection naming the field, never an escaping exception.
double require_number(const JsonValue& o, const char* field) {
  try {
    return o.number_at(field);
  } catch (const JsonError& e) {
    bad_request(e.what());
  }
}

const std::string& require_string(const JsonValue& o, const char* field) {
  try {
    return o.string_at(field);
  } catch (const JsonError& e) {
    bad_request(e.what());
  }
}

const JsonValue& require_member(const JsonValue& o, const char* field) {
  const JsonValue* v = o.get(field);
  if (v == nullptr) bad_request(std::string("missing field '") + field + "'");
  return *v;
}

std::vector<double> number_array(const JsonValue& v, const char* field) {
  if (!v.is_array()) {
    bad_request(std::string("field '") + field + "' must be an array");
  }
  std::vector<double> out;
  out.reserve(v.items().size());
  for (const JsonValue& item : v.items()) {
    if (!item.is_number()) {
      bad_request(std::string("field '") + field + "' must hold numbers");
    }
    out.push_back(item.as_number());
  }
  return out;
}

linalg::Matrix matrix_from(const JsonValue& v, const char* field) {
  if (!v.is_array() || v.items().empty()) {
    bad_request(std::string("field '") + field +
                "' must be a non-empty array of rows");
  }
  const std::size_t rows = v.items().size();
  const std::vector<double> first = number_array(v.items()[0], field);
  linalg::Matrix m(rows, first.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const std::vector<double> row = number_array(v.items()[i], field);
    if (row.size() != first.size()) {
      bad_request(std::string("field '") + field + "' has ragged rows");
    }
    for (std::size_t j = 0; j < row.size(); ++j) m(i, j) = row[j];
  }
  return m;
}

ModelSpec model_spec_from(const JsonValue& v) {
  if (!v.is_object()) bad_request("field 'model' must be an object");
  ModelSpec spec;
  const JsonValue& provider = require_member(v, "provider");
  if (!provider.is_object()) bad_request("'model.provider' must be an object");
  const JsonValue& commands = require_member(provider, "commands");
  if (!commands.is_array() || commands.items().empty()) {
    bad_request("'provider.commands' must be a non-empty array of names");
  }
  for (const JsonValue& name : commands.items()) {
    if (!name.is_string()) bad_request("'provider.commands' must hold strings");
    spec.commands.push_back(name.as_string());
  }
  spec.power = matrix_from(require_member(provider, "power"), "provider.power");
  spec.service_rate = matrix_from(require_member(provider, "service_rate"),
                                  "provider.service_rate");
  const JsonValue& transitions = require_member(provider, "transitions");
  if (!transitions.is_array()) {
    bad_request("'provider.transitions' must be an array of matrices");
  }
  for (const JsonValue& t : transitions.items()) {
    spec.transitions.push_back(matrix_from(t, "provider.transitions"));
  }
  const JsonValue& requester = require_member(v, "requester");
  if (!requester.is_object()) bad_request("'model.requester' must be an object");
  spec.requester_transitions = matrix_from(
      require_member(requester, "transitions"), "requester.transitions");
  for (const double r :
       number_array(require_member(requester, "requests"), "requester.requests")) {
    if (r < 0.0 || r != std::floor(r)) {
      bad_request("'requester.requests' must hold nonnegative integers");
    }
    spec.requests_per_state.push_back(static_cast<unsigned>(r));
  }
  const double cap = require_number(v, "queue_capacity");
  if (cap < 0.0 || cap != std::floor(cap)) {
    bad_request("'queue_capacity' must be a nonnegative integer");
  }
  spec.queue_capacity = static_cast<std::size_t>(cap);
  return spec;
}

JsonValue model_spec_json(const ModelSpec& spec) {
  JsonValue provider = JsonValue::object();
  JsonValue commands = JsonValue::array();
  for (const std::string& name : spec.commands) {
    commands.push_back(JsonValue::string(name));
  }
  provider.set("commands", std::move(commands));
  provider.set("power", json_matrix(spec.power));
  provider.set("service_rate", json_matrix(spec.service_rate));
  JsonValue transitions = JsonValue::array();
  for (const linalg::Matrix& t : spec.transitions) {
    transitions.push_back(json_matrix(t));
  }
  provider.set("transitions", std::move(transitions));

  JsonValue requester = JsonValue::object();
  requester.set("transitions", json_matrix(spec.requester_transitions));
  JsonValue requests = JsonValue::array();
  for (const unsigned r : spec.requests_per_state) {
    requests.push_back(JsonValue::number(static_cast<double>(r)));
  }
  requester.set("requests", std::move(requests));

  JsonValue model = JsonValue::object();
  model.set("provider", std::move(provider));
  model.set("requester", std::move(requester));
  model.set("queue_capacity",
            JsonValue::number(static_cast<double>(spec.queue_capacity)));
  return model;
}

std::string require_metric_name(const std::string& name) {
  if (!is_known_metric(name)) {
    throw ProtocolError("unknown-metric", "unknown metric '" + name + "'");
  }
  return name;
}

}  // namespace

JsonValue json_matrix(const linalg::Matrix& m) {
  JsonValue rows = JsonValue::array();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    JsonValue row = JsonValue::array();
    for (std::size_t j = 0; j < m.cols(); ++j) {
      row.push_back(JsonValue::number(m(i, j)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

JsonValue json_vector(const std::vector<double>& v) {
  JsonValue out = JsonValue::array();
  for (const double x : v) out.push_back(JsonValue::number(x));
  return out;
}

const char* to_string(Op op) noexcept {
  const auto i = static_cast<std::size_t>(op);
  return i < kNumOps ? kOpNames[i] : nullptr;
}

std::optional<Op> parse_op(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (name == kOpNames[i]) return static_cast<Op>(i);
  }
  return std::nullopt;
}

SystemModel ModelSpec::compose() const {
  try {
    const std::size_t na = commands.size();
    const std::size_t sp_n = power.rows();
    if (na == 0) throw ModelError("model: provider needs >= 1 command");
    if (sp_n == 0) throw ModelError("model: provider needs >= 1 state");
    if (power.cols() != na || service_rate.rows() != sp_n ||
        service_rate.cols() != na) {
      throw ModelError("model: power/service_rate must be S_sp x A");
    }
    if (transitions.size() != na) {
      throw ModelError("model: need one transition matrix per command");
    }
    ServiceProvider::Builder builder(sp_n, CommandSet(commands));
    for (std::size_t a = 0; a < na; ++a) {
      if (transitions[a].rows() != sp_n || transitions[a].cols() != sp_n) {
        throw ModelError("model: provider transition matrices must be square");
      }
      builder.transition_matrix(a, transitions[a]);
    }
    for (std::size_t s = 0; s < sp_n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        builder.service_rate(s, a, service_rate(s, a));
        builder.power(s, a, power(s, a));
      }
    }
    ServiceProvider sp = std::move(builder).build();
    ServiceRequester sr(requester_transitions, requests_per_state);
    return SystemModel::compose(std::move(sp), std::move(sr), queue_capacity);
  } catch (const ModelError& e) {
    throw ProtocolError("bad-model", e.what());
  } catch (const markov::MarkovError& e) {
    throw ProtocolError("bad-model", e.what());
  } catch (const linalg::LinalgError& e) {
    throw ProtocolError("bad-model", e.what());
  }
}

Request parse_request(const std::string& line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const JsonError& e) {
    throw ProtocolError("bad-json", e.what());
  }
  if (!doc.is_object()) bad_request("request must be a JSON object");

  Request req;
  if (const JsonValue* id = doc.get("id")) {
    if (!id->is_string()) bad_request("'id' must be a string");
    req.id = id->as_string();
  }
  const std::string& op_name = require_string(doc, "op");
  const std::optional<Op> op = parse_op(op_name);
  if (!op) throw ProtocolError("unknown-op", "unknown op '" + op_name + "'");
  req.op = *op;

  if (const JsonValue* model = doc.get("model")) {
    req.model = model_spec_from(*model);
  }
  if (const JsonValue* ref = doc.get("model_ref")) {
    if (!ref->is_string()) bad_request("'model_ref' must be a string");
    req.model_ref = ref->as_string();
  }
  if (const JsonValue* discount = doc.get("discount")) {
    if (!discount->is_number()) bad_request("'discount' must be a number");
    req.discount = discount->as_number();
    req.has_discount = true;
    if (!(req.discount > 0.0) || !(req.discount < 1.0)) {
      bad_request("'discount' must lie in (0,1)");
    }
  }
  if (const JsonValue* initial = doc.get("initial")) {
    req.initial = number_array(*initial, "initial");
  }

  const bool is_solve = req.op == Op::kOptimize || req.op == Op::kReoptimize;
  if (req.op == Op::kOptimize && !req.model) {
    bad_request("'optimize' requires a 'model'");
  }
  if (req.op == Op::kReoptimize && !req.model && req.model_ref.empty()) {
    bad_request("'reoptimize' requires a 'model' or a 'model_ref'");
  }
  if (is_solve) {
    if (const JsonValue* objective = doc.get("objective")) {
      if (!objective->is_string()) bad_request("'objective' must be a string");
      req.objective = objective->as_string();
      req.has_objective = true;
    }
    require_metric_name(req.objective);
    if (const JsonValue* constraints = doc.get("constraints")) {
      if (!constraints->is_array()) {
        bad_request("'constraints' must be an array");
      }
      for (const JsonValue& c : constraints->items()) {
        if (!c.is_object()) bad_request("each constraint must be an object");
        ConstraintSpec spec;
        spec.metric = require_metric_name(require_string(c, "metric"));
        spec.bound = require_number(c, "bound");
        if (const JsonValue* sense = c.get("sense")) {
          if (!sense->is_string() ||
              (sense->as_string() != "le" && sense->as_string() != "ge")) {
            bad_request("constraint 'sense' must be \"le\" or \"ge\"");
          }
          spec.lower_bound = sense->as_string() == "ge";
        }
        if (const JsonValue* name = c.get("name")) {
          if (!name->is_string()) bad_request("constraint 'name' must be a string");
          spec.name = name->as_string();
        }
        req.constraints.push_back(std::move(spec));
      }
    }
    if (const JsonValue* want = doc.get("want_policy")) {
      try {
        req.want_policy = want->as_bool();
      } catch (const JsonError&) {
        bad_request("'want_policy' must be a boolean");
      }
    }
  }

  if (req.op == Op::kEvaluate) {
    if (!req.model) bad_request("'evaluate' requires a 'model'");
    const JsonValue& policy = require_member(doc, "policy");
    if (!policy.is_array() || policy.items().empty()) {
      bad_request("'policy' must be a non-empty array of decision rows");
    }
    for (const JsonValue& row : policy.items()) {
      req.policy.push_back(number_array(row, "policy"));
    }
    const JsonValue& metrics = require_member(doc, "metrics");
    if (!metrics.is_array() || metrics.items().empty()) {
      bad_request("'metrics' must be a non-empty array of metric names");
    }
    for (const JsonValue& m : metrics.items()) {
      if (!m.is_string()) bad_request("'metrics' must hold strings");
      req.metrics.push_back(require_metric_name(m.as_string()));
    }
  }
  return req;
}

std::string format_request(const Request& request) {
  JsonValue o = JsonValue::object();
  if (!request.id.empty()) o.set("id", JsonValue::string(request.id));
  o.set("op", JsonValue::string(to_string(request.op)));
  if (request.model) o.set("model", model_spec_json(*request.model));
  if (!request.model_ref.empty()) {
    o.set("model_ref", JsonValue::string(request.model_ref));
  }
  o.set("discount", JsonValue::number(request.discount));
  if (!request.initial.empty()) o.set("initial", json_vector(request.initial));
  if (request.op == Op::kOptimize || request.op == Op::kReoptimize) {
    o.set("objective", JsonValue::string(request.objective));
    if (!request.constraints.empty()) {
      JsonValue cs = JsonValue::array();
      for (const ConstraintSpec& c : request.constraints) {
        JsonValue cj = JsonValue::object();
        cj.set("metric", JsonValue::string(c.metric));
        cj.set("bound", JsonValue::number(c.bound));
        if (c.lower_bound) cj.set("sense", JsonValue::string("ge"));
        if (!c.name.empty()) cj.set("name", JsonValue::string(c.name));
        cs.push_back(std::move(cj));
      }
      o.set("constraints", std::move(cs));
    }
    if (request.want_policy) o.set("want_policy", JsonValue::boolean(true));
  }
  if (request.op == Op::kEvaluate) {
    JsonValue rows = JsonValue::array();
    for (const std::vector<double>& row : request.policy) {
      rows.push_back(json_vector(row));
    }
    o.set("policy", std::move(rows));
    JsonValue names = JsonValue::array();
    for (const std::string& m : request.metrics) {
      names.push_back(JsonValue::string(m));
    }
    o.set("metrics", std::move(names));
  }
  return o.dump();
}

StateActionMetric metric_by_name(const SystemModel& model,
                                 const std::string& name) {
  if (name == "power") return metrics::power(model);
  if (name == "queue_length") return metrics::queue_length(model);
  if (name == "request_loss") return metrics::request_loss(model);
  if (name == "active_sleep") return metrics::active_request_while_sleeping(model);
  if (name == "throughput") return metrics::throughput(model);
  throw ProtocolError("unknown-metric", "unknown metric '" + name + "'");
}

bool is_known_metric(const std::string& name) noexcept {
  for (const char* known : kMetricNames) {
    if (name == known) return true;
  }
  return false;
}

std::uint64_t structural_request_key(
    const SystemModel& model, double discount, const std::string& objective,
    const std::vector<ConstraintSpec>& constraints) {
  sim::Fnv1a h;
  h.add_u64(kProtocolVersion);
  h.add_string("structural");
  model.hash_into(h);
  h.add_double(discount);
  h.add_string(objective);
  h.add_size(constraints.size());
  for (const ConstraintSpec& c : constraints) {
    h.add_string(c.metric);
    h.add_u64(c.lower_bound ? 1 : 0);
  }
  return h.digest();
}

std::uint64_t solve_request_key(std::uint64_t structural_key,
                                const lp::LpProblem& lp, bool want_policy) {
  sim::Fnv1a h;
  h.add_u64(kProtocolVersion);
  h.add_string("solve");
  h.add_u64(structural_key);
  lp.hash_into(h);
  h.add_u64(want_policy ? 1 : 0);
  return h.digest();
}

std::uint64_t evaluate_request_key(const SystemModel& model, double discount,
                                   const linalg::Vector& initial,
                                   const linalg::Matrix& policy,
                                   const std::vector<std::string>& metrics) {
  sim::Fnv1a h;
  h.add_u64(kProtocolVersion);
  h.add_string("evaluate");
  model.hash_into(h);
  h.add_double(discount);
  h.add_size(initial.size());
  for (const double p : initial) h.add_double(p);
  h.add_size(policy.rows());
  h.add_size(policy.cols());
  for (std::size_t s = 0; s < policy.rows(); ++s) {
    for (std::size_t a = 0; a < policy.cols(); ++a) {
      h.add_double(policy(s, a));
    }
  }
  h.add_size(metrics.size());
  for (const std::string& m : metrics) h.add_string(m);
  return h.digest();
}

std::string key_to_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::optional<std::uint64_t> key_from_hex(std::string_view hex) {
  if (hex.size() != 16) return std::nullopt;
  std::uint64_t key = 0;
  for (const char c : hex) {
    key <<= 4;
    if (c >= '0' && c <= '9') {
      key |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      key |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return key;
}

std::string compose_response(const std::string& id, const std::string& body) {
  // The body is a complete JSON object; splice the id member in front of
  // its first field so a cached body replays byte-identically under any
  // request id.
  std::string out = "{\"id\":\"" + scenario::json_escape(id) + "\",";
  out.append(body, 1, body.size() - 1);
  return out;
}

std::string error_body(const std::string& code, const std::string& detail) {
  JsonValue err = JsonValue::object();
  err.set("code", JsonValue::string(code));
  err.set("detail", JsonValue::string(detail));
  JsonValue o = JsonValue::object();
  o.set("status", JsonValue::string("error"));
  o.set("error", std::move(err));
  return o.dump();
}

std::string failure_body(const robust::SolveFailure& failure) {
  JsonValue f = JsonValue::object();
  f.set("reason", JsonValue::string(robust::to_string(failure.reason)));
  f.set("rung", JsonValue::string(robust::to_string(failure.rung)));
  f.set("detail", JsonValue::string(failure.detail));
  JsonValue o = JsonValue::object();
  o.set("status", JsonValue::string("failed"));
  o.set("failure", std::move(f));
  return o.dump();
}

}  // namespace dpm::serve
