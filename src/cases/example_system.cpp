#include "cases/example_system.h"

namespace dpm::cases {

ServiceProvider ExampleSystem::make_provider() {
  CommandSet commands({"s_on", "s_off"});
  ServiceProvider::Builder b(2, std::move(commands));
  b.state_name(kSpOn, "on").state_name(kSpOff, "off");

  // Command s_on: the off->on wake is geometric with mean 10 slices.
  b.transition(kCmdOn, kSpOn, kSpOn, 1.0);
  b.transition(kCmdOn, kSpOff, kSpOn, 0.1);
  b.transition(kCmdOn, kSpOff, kSpOff, 0.9);

  // Command s_off: the on->off shutdown is fast but not instantaneous.
  b.transition(kCmdOff, kSpOn, kSpOff, 0.8);
  b.transition(kCmdOff, kSpOn, kSpOn, 0.2);
  b.transition(kCmdOff, kSpOff, kSpOff, 1.0);

  // Service only in (on, s_on) (Example 3.3): rate 0.8.
  b.service_rate(kSpOn, kCmdOn, 0.8);

  // Power table of Example A.2: switching costs more than staying on,
  // off is free.
  b.power(kSpOn, kCmdOn, 3.0);
  b.power(kSpOn, kCmdOff, 4.0);
  b.power(kSpOff, kCmdOn, 4.0);
  b.power(kSpOff, kCmdOff, 0.0);
  return std::move(b).build();
}

ServiceRequester ExampleSystem::make_requester() {
  // Burst persistence 0.85 is legible in the paper (mean burst 6.67
  // slices); the burst-start probability is not.  0.05 gives offered
  // load 0.25, leaving the idle time the optimal policy exploits for
  // its near-2x saving (Example A.2).
  return ServiceRequester::two_state(/*p01=*/0.05, /*p10=*/0.15);
}

SystemModel ExampleSystem::make_model() {
  return SystemModel::compose(make_provider(), make_requester(),
                              /*queue_capacity=*/1);
}

OptimizerConfig ExampleSystem::make_config(const SystemModel& model,
                                           double gamma) {
  OptimizerConfig cfg;
  cfg.discount = gamma;
  cfg.initial_distribution =
      model.point_distribution({kSpOn, /*sr=*/0, /*q=*/0});
  return cfg;
}

}  // namespace dpm::cases
