// SA-1100 CPU case study (paper Sec. VI-C, Figs. 9b and 10).
//
// The paper folds the processor's active+idle states into one macro
// "active" state, leaving {active, sleep}.  Shut-down and turn-on take
// ~100 ms (2 slices at tau = 50 ms) at 0.3 W and 0.9 W respectively;
// active power 0.3 W, sleep power 0.  The CPU is *reactive*: whenever
// requests arrive the SP ignores PM commands, and a sleeping CPU starts
// waking unconditionally on arrival.  Requests are not enqueued
// (capacity 0); the penalty metric is Pr{SR active while SP sleeps}.
//
// Modeling note: the paper's 2-state SP cannot charge the 0.9 W wake
// power to any (state, command) pair, so we add an explicit uncontrolled
// "waking" transient (geometric, mean 2 slices, 0.9 W) — the same device
// behaviour with honest energy bookkeeping.  The controllable degree of
// freedom is unchanged: only the shut-down decision in (active, SR idle)
// matters, exactly as the paper observes.
#pragma once

#include "dpm/optimizer.h"
#include "dpm/system_model.h"

namespace dpm::cases {

struct CpuSa1100 {
  enum State : std::size_t {
    kActive = 0,
    kSleep = 1,
    kWaking = 2,
    kNumStates = 3
  };
  enum Command : std::size_t { kRun = 0, kShutdown = 1, kNumCommands = 2 };

  static constexpr double kTauMs = 50.0;
  static constexpr double kActivePower = 0.3;
  static constexpr double kSleepPower = 0.0;
  static constexpr double kWakePower = 0.9;
  static constexpr double kShutdownPower = 0.3;
  /// 100 ms transitions at 50 ms slices => p = 0.5 per slice.
  static constexpr double kTransitionProb = 0.5;

  static ServiceProvider make_provider();

  /// Reactive-wakeup override (see SystemModel::compose): with incoming
  /// requests the SP is insensitive to commands and a sleeping CPU
  /// starts its turn-on transition unconditionally.
  static SpTransitionOverride make_override(const ServiceProvider& sp);

  /// Two-state SR from a synthetic interactive-usage stream (substitute
  /// for the traces of [28]).
  static ServiceRequester make_requester(std::uint64_t seed = 11);
  static std::vector<unsigned> make_trace(std::size_t slices,
                                          std::uint64_t seed = 11);

  /// SR extracted from an arbitrary stream (used by the nonstationary
  /// Fig. 10 experiment).
  static SystemModel make_model_from_stream(
      const std::vector<unsigned>& stream);

  /// 6-state composed model (3 SP x 2 SR, no queue).
  static SystemModel make_model(std::uint64_t seed = 11);

  static OptimizerConfig make_config(const SystemModel& model,
                                     double gamma = 0.99999);

  /// The Sec. VI-C penalty: Pr{request arrives while the CPU is not
  /// active}.
  static StateActionMetric penalty(const SystemModel& model);
};

}  // namespace dpm::cases
