#include "cases/sensitivity.h"

#include "trace/generators.h"

namespace dpm::cases::sensitivity {

const std::vector<SleepStateSpec>& standard_sleep_states() {
  static const std::vector<SleepStateSpec> specs{
      {"sleep1", 2.0, 1.0},
      {"sleep2", 1.0, 0.1},
      {"sleep3", 0.5, 0.01},
      {"sleep4", 0.0, 0.001},
  };
  return specs;
}

ServiceProvider make_sp(const std::vector<SleepStateSpec>& sleep_states,
                        const SpParams& params) {
  if (sleep_states.empty()) {
    throw ModelError("sensitivity::make_sp: needs at least one sleep state");
  }
  std::vector<std::string> command_names{"go_active"};
  for (const auto& s : sleep_states) command_names.push_back("go_" + s.name);
  CommandSet commands(std::move(command_names));

  const std::size_t n = 1 + sleep_states.size();  // active + sleeps
  ServiceProvider::Builder b(n, std::move(commands));
  b.state_name(0, "active");
  for (std::size_t i = 0; i < sleep_states.size(); ++i) {
    b.state_name(1 + i, sleep_states[i].name);
  }

  // go_active: wake each sleep state geometrically; active stays.
  b.transition(0, 0, 0, 1.0);
  for (std::size_t i = 0; i < sleep_states.size(); ++i) {
    const double p = sleep_states[i].wake_prob;
    b.transition(0, 1 + i, 0, p);
    if (p < 1.0) b.transition(0, 1 + i, 1 + i, 1.0 - p);
  }
  // go_<sleep_i>: one-slice entry from active; other states ignore the
  // command (builder default self-loops).
  for (std::size_t i = 0; i < sleep_states.size(); ++i) {
    b.transition(1 + i, 0, 1 + i, 1.0);
  }

  b.service_rate(0, 0, params.service_rate);  // active under go_active

  // Power: state power when the command leaves the state alone, the
  // transition power while a state change is being forced.
  for (std::size_t cmd = 0; cmd < 1 + sleep_states.size(); ++cmd) {
    // active state: go_active keeps it active; any go_sleep is a switch.
    b.power(0, cmd, cmd == 0 ? params.active_power : params.transition_power);
    for (std::size_t i = 0; i < sleep_states.size(); ++i) {
      const bool waking = cmd == 0;
      b.power(1 + i, cmd,
              waking ? params.transition_power : sleep_states[i].power_w);
    }
  }
  return std::move(b).build();
}

ServiceRequester make_sr(double flip_prob) {
  return ServiceRequester::two_state(flip_prob, flip_prob);
}

SystemModel make_model(const std::vector<SleepStateSpec>& sleep_states,
                       double flip_prob, std::size_t queue_capacity,
                       const SpParams& params) {
  return SystemModel::compose(make_sp(sleep_states, params),
                              make_sr(flip_prob), queue_capacity);
}

OptimizerConfig make_config(const SystemModel& model, double horizon_slices) {
  if (horizon_slices <= 1.0) {
    throw ModelError("sensitivity::make_config: horizon must exceed 1 slice");
  }
  OptimizerConfig cfg;
  cfg.discount = 1.0 - 1.0 / horizon_slices;
  cfg.initial_distribution = model.point_distribution({0, 0, 0});
  return cfg;
}

std::vector<unsigned> memory_study_stream(std::size_t slices,
                                          std::uint64_t seed) {
  trace::OnOffParams wp;
  wp.mean_burst = 4.0;
  wp.mean_idle_short = 3.0;
  wp.mean_idle_long = 60.0;
  wp.long_idle_fraction = 0.3;
  return trace::on_off_stream(slices, wp, seed);
}

}  // namespace dpm::cases::sensitivity
