// Disk-drive case study (paper Sec. VI-A, Table I, Fig. 8).
//
// IBM Travelstar VP model: five operational states (Table I) plus six
// transient states modeling the non-unitary, uninterruptible transitions
// between the active state and the three spun-down/low-power states.
// Time resolution tau = 1 ms (the fastest transition, active<->idle).
// With a two-state SR and queue capacity 2 the composed system has
// 11 * 2 * 3 = 66 states, as in the paper.
//
// Table I (datasheet values):
//   state    T(->active)  power
//   active        -       2.5 W
//   idle        1.0 ms    1.0 W
//   LPidle       40 ms    0.8 W
//   standby     2.2 s     0.3 W
//   sleep       6.0 s     0.1 W
// Transient states have zero service rate and dissipate 2.5 W (paper:
// "when in transient states the SP has zero service rate but its power
// consumption is high: 2.5 W").  Spin-down (entry) times are not in
// Table I; we use LPidle 10 ms, standby 1.0 s, sleep 2.0 s — typical
// datasheet ratios (entry faster than exit) — and record the assumption
// in EXPERIMENTS.md.
#pragma once

#include <array>
#include <string>

#include "dpm/optimizer.h"
#include "dpm/system_model.h"

namespace dpm::cases {

struct DiskDrive {
  // SP state indices.
  enum State : std::size_t {
    kActive = 0,
    kIdle = 1,
    kLpIdle = 2,
    kStandby = 3,
    kSleep = 4,
    kWakeLpIdle = 5,    // LPidle -> active in progress
    kWakeStandby = 6,   // standby -> active
    kWakeSleep = 7,     // sleep -> active
    kDownLpIdle = 8,    // active -> LPidle
    kDownStandby = 9,   // active -> standby
    kDownSleep = 10,    // active -> sleep
    kNumStates = 11
  };

  // Commands.
  enum Command : std::size_t {
    kGoActive = 0,
    kGoIdle = 1,
    kGoLpIdle = 2,
    kGoStandby = 3,
    kGoSleep = 4,
    kNumCommands = 5
  };

  /// Time resolution: 1 ms per slice.
  static constexpr double kTauMs = 1.0;

  /// Per-slice probability of completing a request while active and
  /// commanded active (mean access time 2 ms at tau = 1 ms).
  static constexpr double kServiceRate = 0.5;

  struct Row {
    const char* name;
    double wake_time_ms;  // expected transition time to active (Table I)
    double power_w;
  };
  /// Table I, reproduced verbatim for printing by the bench harness.
  static const std::array<Row, 5>& table_i();

  static ServiceProvider make_provider();

  /// Two-state SR extracted from a synthetic bursty file-access stream
  /// (substitute for the Auspex traces; see DESIGN.md).  `seed` controls
  /// the generator so experiments are reproducible.
  static ServiceRequester make_requester(std::uint64_t seed = 42);

  /// The generated binary arrival stream itself (for trace-driven
  /// simulation, Fig. 8b circles).
  static std::vector<unsigned> make_trace(std::size_t slices,
                                          std::uint64_t seed = 42);

  /// 66-state composed model (queue capacity 2).
  static SystemModel make_model(std::uint64_t seed = 42);

  /// Fig. 8b setup: horizon one million slices => gamma = 1 - 1e-6;
  /// initial state (active, idle SR, empty queue).
  static OptimizerConfig make_config(const SystemModel& model,
                                     double gamma = 0.999999);
};

}  // namespace dpm::cases
