// Two-processor web-server case study (paper Sec. VI-B, Fig. 9a).
//
// Two heterogeneous processors: CPU2 is 1.5x faster and 2x hungrier than
// CPU1.  The SP state is the pair (CPU1 on/off, CPU2 on/off); four
// commands independently target each combination.  Throughput: 1.0 with
// both on, 0.4 with only CPU1, 0.6 with only CPU2, 0 when both sleep.
// Power: 1 W / 2 W active; turn-on transitions add 0.5 W over active
// power; shut-downs cost 0.5 W less than active.  Expected turn-on time
// 2 slices (p = 0.5), shut-down 1 slice.  Time resolution 10 s; horizon
// one day = 8640 slices.  No request queue (capacity 0): the composed
// model has 4 x 2 = 8 states as in the paper.
#pragma once

#include "dpm/optimizer.h"
#include "dpm/system_model.h"

namespace dpm::cases {

struct WebServer {
  /// SP states encode the on/off pair: bit 0 = CPU1, bit 1 = CPU2.
  enum State : std::size_t {
    kBothOff = 0,
    kCpu1Only = 1,
    kCpu2Only = 2,
    kBothOn = 3,
    kNumStates = 4
  };
  /// Command c targets SP state c (same bit encoding).
  static constexpr std::size_t kNumCommands = 4;

  static constexpr double kTauSeconds = 10.0;
  /// One-day horizon in slices (86400 s / 10 s).
  static constexpr std::size_t kHorizonSlices = 8640;

  /// Throughput of each SP state (fraction of offered load served).
  static double throughput(std::size_t state);

  static ServiceProvider make_provider();

  /// Two-state SR extracted from a synthetic diurnal web-traffic stream
  /// (substitute for the Internet Traffic Archive logs).
  static ServiceRequester make_requester(std::uint64_t seed = 7);
  static std::vector<unsigned> make_trace(std::size_t slices,
                                          std::uint64_t seed = 7);

  /// 8-state composed model (no queue).
  static SystemModel make_model(std::uint64_t seed = 7);

  static OptimizerConfig make_config(const SystemModel& model);

  /// Constraint helper: expected throughput >= min_throughput, expressed
  /// as the <=-form metric the optimizer consumes.
  static OptimizationConstraint min_throughput_constraint(
      const SystemModel& model, double min_throughput);
};

}  // namespace dpm::cases
