#include "cases/web_server.h"

#include "trace/generators.h"
#include "trace/sr_extractor.h"

namespace dpm::cases {

namespace {

// Per-processor constants: CPU2 is 1.5x the performance at 2x the power.
constexpr double kActivePower[2] = {1.0, 2.0};
constexpr double kTurnOnExtra = 0.5;   // over active power
constexpr double kShutdownSave = 0.5;  // below active power
constexpr double kTurnOnProb = 0.5;    // expected turn-on time 2 slices
constexpr double kShutdownProb = 1.0;  // expected shut-down time 1 slice

bool bit(std::size_t v, std::size_t i) { return ((v >> i) & 1u) != 0; }

// One processor's transition probability from `on` to `on_next` given
// the commanded target.
double proc_transition(bool on, bool on_next, bool target) {
  if (on == target) return on == on_next ? 1.0 : 0.0;  // already there
  if (!on) {  // turning on
    return on_next ? kTurnOnProb : 1.0 - kTurnOnProb;
  }
  // shutting down
  return on_next ? 1.0 - kShutdownProb : kShutdownProb;
}

// One processor's power draw given its state and commanded target.
double proc_power(bool on, bool target, std::size_t i) {
  if (on && target) return kActivePower[i];
  if (on && !target) return kActivePower[i] - kShutdownSave;
  if (!on && target) return kActivePower[i] + kTurnOnExtra;
  return 0.0;
}

}  // namespace

double WebServer::throughput(std::size_t state) {
  switch (state) {
    case kBothOff:
      return 0.0;
    case kCpu1Only:
      return 0.4;
    case kCpu2Only:
      return 0.6;
    case kBothOn:
      return 1.0;
    default:
      throw ModelError("WebServer: bad state");
  }
}

ServiceProvider WebServer::make_provider() {
  CommandSet commands({"both_off", "cpu1_only", "cpu2_only", "both_on"});
  ServiceProvider::Builder b(kNumStates, std::move(commands));
  b.state_name(kBothOff, "00")
      .state_name(kCpu1Only, "10")
      .state_name(kCpu2Only, "01")
      .state_name(kBothOn, "11");

  for (std::size_t cmd = 0; cmd < kNumCommands; ++cmd) {
    for (std::size_t s = 0; s < kNumStates; ++s) {
      for (std::size_t t = 0; t < kNumStates; ++t) {
        double p = 1.0;
        for (std::size_t i = 0; i < 2; ++i) {
          p *= proc_transition(bit(s, i), bit(t, i), bit(cmd, i));
        }
        if (p > 0.0) b.transition(cmd, s, t, p);
      }
      double power = 0.0;
      for (std::size_t i = 0; i < 2; ++i) {
        power += proc_power(bit(s, i), bit(cmd, i), i);
      }
      b.power(s, cmd, power);
      b.service_rate(s, cmd, throughput(s));
    }
  }
  return std::move(b).build();
}

std::vector<unsigned> WebServer::make_trace(std::size_t slices,
                                            std::uint64_t seed) {
  // Busy-site traffic with a diurnal cycle (period = one day of 10-s
  // slices); always some load at night, saturated bursts at peak.
  return trace::diurnal_stream(slices, kHorizonSlices,
                               /*peak_p01=*/0.7, /*quiet_p01=*/0.1,
                               /*p10=*/0.2, seed);
}

ServiceRequester WebServer::make_requester(std::uint64_t seed) {
  const std::vector<unsigned> stream = make_trace(10 * kHorizonSlices, seed);
  return trace::extract_sr(stream, {.memory = 1, .smoothing = 0.0});
}

SystemModel WebServer::make_model(std::uint64_t seed) {
  return SystemModel::compose(make_provider(), make_requester(seed),
                              /*queue_capacity=*/0);
}

OptimizerConfig WebServer::make_config(const SystemModel& model) {
  OptimizerConfig cfg;
  // One-day horizon: gamma = 1 - 1/8640.
  cfg.discount = 1.0 - 1.0 / static_cast<double>(kHorizonSlices);
  cfg.initial_distribution =
      model.point_distribution({kBothOn, /*sr=*/0, /*q=*/0});
  return cfg;
}

OptimizationConstraint WebServer::min_throughput_constraint(
    const SystemModel& model, double min_throughput) {
  // E[throughput] >= T  <=>  E[-throughput] <= -T.
  return OptimizationConstraint{
      [&model](std::size_t s, std::size_t a) {
        return -model.service_rate(s, a);
      },
      -min_throughput, "throughput"};
}

}  // namespace dpm::cases
