#include "cases/cpu_sa1100.h"

#include "trace/generators.h"
#include "trace/sr_extractor.h"

namespace dpm::cases {

ServiceProvider CpuSa1100::make_provider() {
  CommandSet commands({"run", "shutdown"});
  ServiceProvider::Builder b(kNumStates, std::move(commands));
  b.state_name(kActive, "active")
      .state_name(kSleep, "sleep")
      .state_name(kWaking, "waking");

  // Baseline (no-request) dynamics; the reactive override below replaces
  // these rows whenever requests are incoming.
  // run: stay put everywhere (a sleeping CPU wakes only on requests).
  b.transition(kRun, kActive, kActive, 1.0);
  b.transition(kRun, kSleep, kSleep, 1.0);
  // shutdown: geometric 2-slice shut-down from active; no effect asleep.
  b.transition(kShutdown, kActive, kSleep, kTransitionProb);
  b.transition(kShutdown, kActive, kActive, 1.0 - kTransitionProb);
  b.transition(kShutdown, kSleep, kSleep, 1.0);
  // The waking transient is uncontrollable and uninterruptible.
  for (std::size_t cmd = 0; cmd < kNumCommands; ++cmd) {
    b.transition(cmd, kWaking, kActive, kTransitionProb);
    b.transition(cmd, kWaking, kWaking, 1.0 - kTransitionProb);
  }

  // The CPU handles any request arriving while active (no queue).
  b.service_rate(kActive, kRun, 1.0);
  b.service_rate(kActive, kShutdown, 1.0);

  b.power(kActive, kRun, kActivePower);
  b.power(kActive, kShutdown, kShutdownPower);
  b.power(kSleep, kRun, kSleepPower);
  b.power(kSleep, kShutdown, kSleepPower);
  b.power(kWaking, kRun, kWakePower);
  b.power(kWaking, kShutdown, kWakePower);
  return std::move(b).build();
}

SpTransitionOverride CpuSa1100::make_override(const ServiceProvider& sp) {
  // Capture the baseline chain by value (matrices are small).
  const markov::ControlledMarkovChain chain = sp.chain();
  return [chain](std::size_t from, std::size_t to, std::size_t command,
                 std::size_t sr_to) -> double {
    const bool requests_incoming = sr_to == 1;  // two-state SR: state 1
    if (!requests_incoming) {
      return chain.transition(from, to, command);
    }
    // Requests incoming: the SP ignores PM commands.
    switch (from) {
      case kActive:  // keeps running regardless of shutdown commands
        return to == kActive ? 1.0 : 0.0;
      case kSleep:  // unconditional turn-on begins
        return to == kWaking ? 1.0 : 0.0;
      case kWaking:  // transition continues
        if (to == kActive) return kTransitionProb;
        if (to == kWaking) return 1.0 - kTransitionProb;
        return 0.0;
      default:
        return 0.0;
    }
  };
}

std::vector<unsigned> CpuSa1100::make_trace(std::size_t slices,
                                            std::uint64_t seed) {
  return trace::editing_stream(slices, seed);
}

ServiceRequester CpuSa1100::make_requester(std::uint64_t seed) {
  const std::vector<unsigned> stream = make_trace(200000, seed);
  return trace::extract_sr(stream, {.memory = 1, .smoothing = 0.0});
}

SystemModel CpuSa1100::make_model_from_stream(
    const std::vector<unsigned>& stream) {
  ServiceProvider sp = make_provider();
  SpTransitionOverride ov = make_override(sp);
  ServiceRequester sr = trace::extract_sr(stream, {.memory = 1});
  return SystemModel::compose(std::move(sp), std::move(sr),
                              /*queue_capacity=*/0, std::move(ov));
}

SystemModel CpuSa1100::make_model(std::uint64_t seed) {
  ServiceProvider sp = make_provider();
  SpTransitionOverride ov = make_override(sp);
  return SystemModel::compose(std::move(sp), make_requester(seed),
                              /*queue_capacity=*/0, std::move(ov));
}

OptimizerConfig CpuSa1100::make_config(const SystemModel& model,
                                       double gamma) {
  OptimizerConfig cfg;
  cfg.discount = gamma;
  cfg.initial_distribution =
      model.point_distribution({kActive, /*sr=*/0, /*q=*/0});
  return cfg;
}

StateActionMetric CpuSa1100::penalty(const SystemModel& model) {
  return metrics::active_request_while_sleeping(model);
}

}  // namespace dpm::cases
