// Heuristic policies expressed as stationary Markov policies, so they
// can be evaluated exactly (PolicyEvaluation) as well as simulated.
//
// Timeout heuristics need history and live in sim::TimeoutController;
// the greedy/eager and always-on comparison policies of Figs. 8b/9b are
// state-functions and belong here.
#pragma once

#include "dpm/policy.h"
#include "dpm/system_model.h"

namespace dpm::cases {

/// Eager/greedy policy (paper Sec. I, Example 3.4, Fig. 8b triangles):
/// issue `sleep_command` whenever there is no pending work (empty queue,
/// SR not issuing), `wake_command` otherwise.
Policy eager_policy(const SystemModel& model, std::size_t sleep_command,
                    std::size_t wake_command);

/// The trivial policy that never powers down.
Policy always_on_policy(const SystemModel& model, std::size_t wake_command);

/// Randomized stationary blend: in idle states issue `sleep_command`
/// with probability p, `wake_command` otherwise; wake when work is
/// pending.  The Markov-policy counterpart of the CPU case's single
/// degree of freedom (Sec. VI-C).
Policy randomized_shutdown_policy(const SystemModel& model,
                                  std::size_t sleep_command,
                                  std::size_t wake_command,
                                  double sleep_probability);

/// Rounds a randomized policy to the nearest deterministic one (argmax
/// command per state).  Used by the Theorem A.2 ablation: with active
/// constraints the rounded policy either violates them or pays more
/// power (bench_ablation_determinize).
Policy determinize(const Policy& policy);

}  // namespace dpm::cases
