#include "cases/disk_drive.h"

#include "trace/generators.h"
#include "trace/sr_extractor.h"

namespace dpm::cases {

const std::array<DiskDrive::Row, 5>& DiskDrive::table_i() {
  static const std::array<Row, 5> rows{{
      {"active", 0.0, 2.5},
      {"idle", 1.0, 1.0},
      {"LPidle", 40.0, 0.8},
      {"standby", 2200.0, 0.3},
      {"sleep", 6000.0, 0.1},
  }};
  return rows;
}

ServiceProvider DiskDrive::make_provider() {
  CommandSet commands(
      {"go_active", "go_idle", "go_lpidle", "go_standby", "go_sleep"});
  ServiceProvider::Builder b(kNumStates, std::move(commands));
  b.state_name(kActive, "active")
      .state_name(kIdle, "idle")
      .state_name(kLpIdle, "LPidle")
      .state_name(kStandby, "standby")
      .state_name(kSleep, "sleep")
      .state_name(kWakeLpIdle, "wake<-LPidle")
      .state_name(kWakeStandby, "wake<-standby")
      .state_name(kWakeSleep, "wake<-sleep")
      .state_name(kDownLpIdle, "down->LPidle")
      .state_name(kDownStandby, "down->standby")
      .state_name(kDownSleep, "down->sleep");

  // --- controllable transitions from the active state ------------------
  // active <-> idle takes one slice in each direction (Table I: 1.0 ms).
  b.transition(kGoIdle, kActive, kIdle, 1.0);
  // Deeper states are entered through uninterruptible spin-down
  // transients (entry times: LPidle 10 ms, standby 1 s, sleep 2 s).
  b.transition(kGoLpIdle, kActive, kDownLpIdle, 1.0);
  b.transition(kGoStandby, kActive, kDownStandby, 1.0);
  b.transition(kGoSleep, kActive, kDownSleep, 1.0);
  // go_active (or any other command, via default self-loops) keeps the
  // disk active.

  // --- controllable transitions from the inactive states ---------------
  // Wake-ups: idle returns in one slice; the rest start geometric
  // transients matching the Table I expected times at tau = 1 ms.
  b.transition(kGoActive, kIdle, kActive, 1.0);
  b.transition(kGoActive, kLpIdle, kWakeLpIdle, 1.0);
  b.transition(kGoActive, kStandby, kWakeStandby, 1.0);
  b.transition(kGoActive, kSleep, kWakeSleep, 1.0);
  // Commands naming a *different* inactive state are ignored while
  // inactive (the paper omits inactive-to-inactive transitions); the
  // builder's default self-loops implement that.

  // --- transient states: insensitive to commands ----------------------
  // (paper: "transitions from transient states have constant conditional
  // probabilities that cannot be controlled by commands").
  const struct {
    State transient;
    State destination;
    double exit_prob;
  } chains[] = {
      {kWakeLpIdle, kActive, 1.0 / 40.0},     // 40 ms
      {kWakeStandby, kActive, 1.0 / 2200.0},  // 2.2 s
      {kWakeSleep, kActive, 1.0 / 6000.0},    // 6.0 s
      {kDownLpIdle, kLpIdle, 1.0 / 10.0},     // 10 ms
      {kDownStandby, kStandby, 1.0 / 1000.0}, // 1.0 s
      {kDownSleep, kSleep, 1.0 / 2000.0},     // 2.0 s
  };
  for (const auto& c : chains) {
    for (std::size_t cmd = 0; cmd < kNumCommands; ++cmd) {
      b.transition(cmd, c.transient, c.destination, c.exit_prob);
      b.transition(cmd, c.transient, c.transient, 1.0 - c.exit_prob);
    }
  }

  // --- service rates ---------------------------------------------------
  // The disk serves only while active and commanded to stay active.
  b.service_rate(kActive, kGoActive, kServiceRate);

  // --- power -----------------------------------------------------------
  const double state_power[kNumStates] = {
      2.5, 1.0, 0.8, 0.3, 0.1,  // Table I operational states
      2.5, 2.5, 2.5,            // wake transients (spin-up current)
      2.5, 2.5, 2.5,            // spin-down transients
  };
  for (std::size_t s = 0; s < kNumStates; ++s) {
    for (std::size_t cmd = 0; cmd < kNumCommands; ++cmd) {
      b.power(s, cmd, state_power[s]);
    }
  }
  return std::move(b).build();
}

std::vector<unsigned> DiskDrive::make_trace(std::size_t slices,
                                            std::uint64_t seed) {
  // File-system access pattern: bursts of requests (reads/writes of a
  // few ms) separated by idle gaps with a long-tailed mixture — the
  // structure disk traces such as Auspex's exhibit.  The long mode
  // (user think time, tens of seconds) is what makes the spun-down
  // states pay off despite their multi-second wake times.
  trace::OnOffParams p;
  p.mean_burst = 12.0;          // ~12 ms request bursts
  p.mean_idle_short = 300.0;    // ~0.3 s intra-task gaps
  p.mean_idle_long = 30000.0;   // ~30 s user think time
  p.long_idle_fraction = 0.3;
  return trace::on_off_stream(slices, p, seed);
}

ServiceRequester DiskDrive::make_requester(std::uint64_t seed) {
  const std::vector<unsigned> stream = make_trace(200000, seed);
  return trace::extract_sr(stream, {.memory = 1, .smoothing = 0.0});
}

SystemModel DiskDrive::make_model(std::uint64_t seed) {
  return SystemModel::compose(make_provider(), make_requester(seed),
                              /*queue_capacity=*/2);
}

OptimizerConfig DiskDrive::make_config(const SystemModel& model,
                                       double gamma) {
  OptimizerConfig cfg;
  cfg.discount = gamma;
  cfg.initial_distribution =
      model.point_distribution({kActive, /*sr=*/0, /*q=*/0});
  return cfg;
}

}  // namespace dpm::cases
