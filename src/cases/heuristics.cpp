#include "cases/heuristics.h"

namespace dpm::cases {

namespace {

bool idle_state(const SystemModel& model, std::size_t s) {
  const SystemState st = model.decompose(s);
  return st.q == 0 && model.requester().requests(st.sr) == 0;
}

}  // namespace

Policy eager_policy(const SystemModel& model, std::size_t sleep_command,
                    std::size_t wake_command) {
  std::vector<std::size_t> actions(model.num_states());
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    actions[s] = idle_state(model, s) ? sleep_command : wake_command;
  }
  return Policy::deterministic(actions, model.num_commands());
}

Policy always_on_policy(const SystemModel& model, std::size_t wake_command) {
  return Policy::constant(model.num_states(), model.num_commands(),
                          wake_command);
}

Policy randomized_shutdown_policy(const SystemModel& model,
                                  std::size_t sleep_command,
                                  std::size_t wake_command,
                                  double sleep_probability) {
  if (sleep_probability < 0.0 || sleep_probability > 1.0) {
    throw ModelError("randomized_shutdown_policy: probability out of range");
  }
  linalg::Matrix d(model.num_states(), model.num_commands());
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    if (idle_state(model, s)) {
      d(s, sleep_command) = sleep_probability;
      d(s, wake_command) += 1.0 - sleep_probability;
    } else {
      d(s, wake_command) = 1.0;
    }
  }
  return Policy::randomized(std::move(d));
}

Policy determinize(const Policy& policy) {
  std::vector<std::size_t> actions(policy.num_states());
  for (std::size_t s = 0; s < policy.num_states(); ++s) {
    actions[s] = policy.command_for(s);
  }
  return Policy::deterministic(actions, policy.num_commands());
}

}  // namespace dpm::cases
