// The paper's running example (Examples 3.1-3.7, A.1, A.2).
//
// Two-state SP {on, off} with commands {s_on, s_off}, two-state bursty
// SR, queue capacity 1 — an 8-state composed system.  Where the scanned
// paper text leaves exact matrix entries unreadable, values are chosen to
// match every legible statement (wake expectation 10 slices, service
// rate 0.8, SR burst persistence 0.85, Example A.2's power table); the
// choices are recorded here and cross-referenced in EXPERIMENTS.md.
#pragma once

#include "dpm/optimizer.h"
#include "dpm/system_model.h"

namespace dpm::cases {

struct ExampleSystem {
  static constexpr std::size_t kCmdOn = 0;   // "s_on"
  static constexpr std::size_t kCmdOff = 1;  // "s_off"
  static constexpr std::size_t kSpOn = 0;
  static constexpr std::size_t kSpOff = 1;

  /// SP of Example 3.1: wake transition off->on under s_on is geometric
  /// with mean 10 slices (p = 0.1); shutdown on->off under s_off has
  /// p = 0.8; service rate 0.8 only in (on, s_on); Example A.2 powers
  /// c(on,s_on)=3, c(on,s_off)=4, c(off,s_on)=4, c(off,s_off)=0.
  static ServiceProvider make_provider();

  /// SR of Example 3.2: burst persistence Prob[1->1] = 0.85 (mean burst
  /// 6.67 slices); burst-start probability Prob[0->1] = 0.05 (offered
  /// load 0.25).
  static ServiceRequester make_requester();

  /// The composed 8-state system (queue capacity 1).
  static SystemModel make_model();

  /// Example A.1/A.2 setup: gamma = 0.99999 (expected horizon 1e5
  /// slices), initial state (on, idle, empty queue).
  static OptimizerConfig make_config(const SystemModel& model,
                                     double gamma = 0.99999);
};

}  // namespace dpm::cases
