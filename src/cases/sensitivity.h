// Parameterized system builders for the Appendix B sensitivity studies
// (Figs. 12-14).
//
// Baseline (Appendix B): SP with an active state (3 W) and sleep1 (2 W,
// one-slice transitions each way); 4 W dissipated while transitioning;
// two-state SR with flip probability 0.01 each way; queue capacity 2.
// Deeper sleep states (Fig. 12a): sleep2 (1 W, wake p = 0.1), sleep3
// (0.5 W, p = 0.01), sleep4 (0 W, p = 0.001).
#pragma once

#include <vector>

#include "dpm/optimizer.h"
#include "dpm/system_model.h"

namespace dpm::cases::sensitivity {

/// One sleep state: its power draw and the per-slice probability of
/// completing the wake transition back to active.
struct SleepStateSpec {
  std::string name;
  double power_w = 0.0;
  double wake_prob = 1.0;
};

/// The four sleep states of Fig. 12(a), index 0 = sleep1 (baseline).
const std::vector<SleepStateSpec>& standard_sleep_states();

struct SpParams {
  double active_power = 3.0;
  double transition_power = 4.0;  // dissipated while switching
  double service_rate = 1.0;      // b(active, go_active)
};

/// Builds an SP with the active state plus the given sleep states.
/// Commands: go_active plus one go_<sleep> per sleep state.  Entering a
/// sleep state takes one slice (the baseline's "transitions from active
/// to sleep1 require only one time slice"); waking is geometric with the
/// spec's wake_prob.
ServiceProvider make_sp(const std::vector<SleepStateSpec>& sleep_states,
                        const SpParams& params = {});

/// Baseline SR: two states, symmetric flip probability (default 0.01 —
/// strongly bursty; the request probability stays 0.5 regardless of the
/// flip probability, which is what Fig. 13a exploits).
ServiceRequester make_sr(double flip_prob = 0.01);

/// Composed baseline-family model.
SystemModel make_model(const std::vector<SleepStateSpec>& sleep_states,
                       double flip_prob = 0.01, std::size_t queue_capacity = 2,
                       const SpParams& params = {});

/// Optimizer config: horizon = expected session slices => gamma =
/// 1 - 1/horizon; starts active/idle/empty.
OptimizerConfig make_config(const SystemModel& model, double horizon_slices);

/// The Fig. 13(b) workload: idle lengths are a mixture of short
/// intra-burst gaps and long think times — NOT memoryless, which is
/// exactly the structure a k-memory SR model can exploit.
std::vector<unsigned> memory_study_stream(std::size_t slices,
                                          std::uint64_t seed = 99);

}  // namespace dpm::cases::sensitivity
