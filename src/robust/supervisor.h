// Supervised solve pipeline: runs the declared escalation ladder over
// the LP backends and guarantees a structured outcome — a determination
// or a typed SolveFailure, never an escaping exception or an abort.
//
// Ladder (see RecoveryRung in outcome.h):
//   1. kPlain             — as requested: warm basis if provided,
//                           presolve on.
//   2. kRetryRefactorize  — the same configuration again with every
//                           factorization rebuilt; a transient fault
//                           (consumed single-shot injection) re-solves
//                           along the identical pivot trajectory, so
//                           the recovered answer matches the fault-free
//                           run bit-for-bit.
//   3. kColdRestart       — drop the warm basis; fresh start.  Same
//                           exact problem, so a recovered solve matches
//                           the fault-free objective bit-for-bit.
//   4. kPerturb           — deterministic rhs perturbation breaks
//                           degenerate wedges; the objective is
//                           re-evaluated on the original problem.
//   5. kNoPresolve        — presolve off; isolates presolve/postsolve
//                           trouble.
//   6. kCrossCheck        — an independent backend answers instead: the
//                           dense tableau below
//                           `cross_check_tableau_limit` columns, the
//                           interior point above it.
// kIterationLimit, kNumericalFailure, and converted exceptions escalate;
// kDeadline and kBadModel stop the ladder immediately (retrying cannot
// help within the same deadline, and malformed input never heals).
//
// Recovery counts are kept in process-wide telemetry (relaxed atomics,
// same contract as lp::pivots_executed) and printed by
// `bench_scenarios --telemetry`.
#pragma once

#include <cstdint>

#include "lp/revised_simplex.h"
#include "lp/solver.h"
#include "robust/outcome.h"

namespace dpm::robust {

struct SupervisorOptions {
  /// Base options applied to every simplex rung (presolve is forced off
  /// on the kNoPresolve rung regardless of this value).
  lp::RevisedSimplexOptions lp;
  /// Preferred backend for the kPlain rung.  kInteriorPoint and
  /// kSimplex failures escalate straight onto the simplex ladder — this
  /// is how an IPM Cholesky breakdown becomes a simplex fallback
  /// instead of an escaping exception.
  lp::Backend backend = lp::Backend::kRevisedSimplex;
  bool allow_perturb = true;
  bool allow_cross_check = true;
  /// Columns at or below which the kCrossCheck rung uses the dense
  /// tableau (O(rows x cols) per pivot); above it, the interior point.
  std::size_t cross_check_tableau_limit = 600;
};

/// Process-wide recovery telemetry, aggregated across every supervised
/// solve since process start.
struct RecoveryTelemetry {
  std::uint64_t supervised = 0;    ///< supervised solves total
  std::uint64_t first_try = 0;     ///< determined on the kPlain rung
  std::uint64_t recovered = 0;     ///< determined after >= 1 escalation
  std::uint64_t unrecovered = 0;   ///< ladder exhausted or hard-stopped
  std::uint64_t rung_attempts[kNumRecoveryRungs] = {};
};
RecoveryTelemetry recovery_telemetry() noexcept;

class SolveSupervisor {
 public:
  explicit SolveSupervisor(SupervisorOptions options = {})
      : options_(options) {}

  /// Runs the ladder.  `warm`/`basis_out` follow the
  /// solve_revised_simplex contract; `basis_out` is only filled by
  /// simplex rungs (a cross-check determination leaves it untouched).
  /// Never throws on solver trouble; LpError from model validation
  /// surfaces as FailureReason::kBadModel.
  SolveOutcome solve(const lp::LpProblem& problem,
                     const lp::SimplexBasis* warm = nullptr,
                     lp::SimplexBasis* basis_out = nullptr) const;

  const SupervisorOptions& options() const noexcept { return options_; }

 private:
  SupervisorOptions options_;
};

}  // namespace dpm::robust
