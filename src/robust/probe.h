// Fault-injection probe points for the solve path.
//
// This header is the *only* robustness header the hot layers (linalg,
// lp, scenario) include.  It is deliberately self-contained — nothing
// above <atomic>/<cstdint> — so the lowest layer (`src/linalg`) can
// compile probes in without a dependency inversion.  The richer
// machinery (FaultPlan construction, scoped arming, the supervisor)
// lives in `src/robust/fault_injection.h` / `supervisor.h` and is only
// included by tests, the scenario runner, and the bench CLI.
//
// Contract:
//   * `probe(site)` returns true when an armed fault plan fires at this
//     probe point.  When no plan is armed anywhere in the process the
//     cost is one relaxed atomic load and a predictable branch — the
//     hot loops pay nothing measurable in production builds.
//   * Plans are armed per *thread* (see FaultScope).  Firing depends
//     only on the armed plan and the calling thread's own probe
//     sequence, never on other threads — this is what keeps
//     `--jobs 1` == `--jobs N` byte-identical under injection.
//   * `deadline_expired()` implements the cooperative per-unit
//     wall-clock deadline.  Solvers poll it inside their pivot loops;
//     it is false whenever no deadline is armed on the calling thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dpm::robust {

/// Named probe points compiled into the hot layers.  Each enumerator is
/// one failure mode the fault matrix exercises; docs/robustness.md
/// documents where each probe physically sits and what firing does.
enum class FaultSite : std::uint8_t {
  kLuFactorize = 0,  ///< BasisFactorization::refactorize reports singular
  kFtUpdate,         ///< Forrest-Tomlin update refuses (stability/cap storm)
  kFtranSpike,       ///< ftran result poisoned with a quiet NaN
  kBtranSpike,       ///< btran result poisoned with a quiet NaN
  kWarmBasis,        ///< warm-start basis rejected as corrupted
  kCholesky,         ///< IPM normal-equations Cholesky breakdown
  kCacheLine,        ///< scenario result cache flush writes a poisoned line
  kDeadline,         ///< per-unit wall-clock deadline expires immediately
};
inline constexpr std::size_t kNumFaultSites = 8;

/// Stable lower-case name for CLI flags and telemetry ("lu-factorize",
/// "ft-update", ...).  Returns nullptr for out-of-range values.
const char* to_string(FaultSite site) noexcept;

namespace detail {
/// Number of threads with an armed plan; zero in production, so the
/// fast path below is a single relaxed load of a never-written word.
extern std::atomic<int> g_armed_threads;
bool probe_slow(FaultSite site) noexcept;
}  // namespace detail

/// True when an armed fault plan fires at this probe point (and consumes
/// one firing from the plan's budget).  Zero-cost when disabled.
inline bool probe(FaultSite site) noexcept {
  if (detail::g_armed_threads.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return detail::probe_slow(site);
}

/// Total faults fired process-wide since start (relaxed; telemetry only).
std::uint64_t faults_fired() noexcept;

/// Arms a cooperative wall-clock deadline on the calling thread,
/// `wall_ms` from now.  Solvers poll `deadline_expired()`; nothing is
/// interrupted preemptively.  `wall_ms <= 0` disarms.
void set_thread_deadline(double wall_ms) noexcept;
void clear_thread_deadline() noexcept;

/// True when the calling thread's armed deadline has passed, or when an
/// injected kDeadline fault fires.  False when no deadline is armed —
/// the no-deadline check is one thread-local flag read.
bool deadline_expired() noexcept;

}  // namespace dpm::robust
