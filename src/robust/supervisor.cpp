#include "robust/supervisor.h"

#include <atomic>
#include <cstring>
#include <string>

#include "linalg/matrix.h"

namespace dpm::robust {
namespace {

std::atomic<std::uint64_t> g_supervised{0};
std::atomic<std::uint64_t> g_first_try{0};
std::atomic<std::uint64_t> g_recovered{0};
std::atomic<std::uint64_t> g_unrecovered{0};
std::atomic<std::uint64_t> g_rung_attempts[kNumRecoveryRungs]{};

/// Types a failed (undetermined) solver return via its status + note.
FailureReason reason_from(const lp::LpSolution& sol) noexcept {
  switch (sol.status) {
    case lp::LpStatus::kDeadline:
      return FailureReason::kDeadlineExpired;
    case lp::LpStatus::kIterationLimit:
      return FailureReason::kIterationLimit;
    default:
      break;
  }
  if (sol.note != nullptr) {
    if (std::strcmp(sol.note, "singular-refactorization") == 0 ||
        std::strcmp(sol.note, "warm-basis-corrupted") == 0 ||
        std::strcmp(sol.note, "crash-basis-corrupted") == 0) {
      return FailureReason::kSingularBasis;
    }
    if (std::strcmp(sol.note, "cholesky-breakdown") == 0) {
      return FailureReason::kCholeskyBreakdown;
    }
  }
  return FailureReason::kNonFinite;
}

}  // namespace

const char* to_string(FailureReason r) noexcept {
  switch (r) {
    case FailureReason::kSingularBasis: return "singular-basis";
    case FailureReason::kNonFinite: return "non-finite";
    case FailureReason::kIterationLimit: return "iteration-limit";
    case FailureReason::kDeadlineExpired: return "deadline-expired";
    case FailureReason::kCholeskyBreakdown: return "cholesky-breakdown";
    case FailureReason::kInvariantViolation: return "invariant-violation";
    case FailureReason::kBadModel: return "bad-model";
  }
  return nullptr;
}

const char* to_string(RecoveryRung r) noexcept {
  switch (r) {
    case RecoveryRung::kPlain: return "plain";
    case RecoveryRung::kRetryRefactorize: return "retry-refactorize";
    case RecoveryRung::kColdRestart: return "cold-restart";
    case RecoveryRung::kPerturb: return "perturb";
    case RecoveryRung::kNoPresolve: return "no-presolve";
    case RecoveryRung::kCrossCheck: return "cross-check";
  }
  return nullptr;
}

RecoveryTelemetry recovery_telemetry() noexcept {
  RecoveryTelemetry t;
  t.supervised = g_supervised.load(std::memory_order_relaxed);
  t.first_try = g_first_try.load(std::memory_order_relaxed);
  t.recovered = g_recovered.load(std::memory_order_relaxed);
  t.unrecovered = g_unrecovered.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumRecoveryRungs; ++i) {
    t.rung_attempts[i] = g_rung_attempts[i].load(std::memory_order_relaxed);
  }
  return t;
}

SolveOutcome SolveSupervisor::solve(const lp::LpProblem& problem,
                                    const lp::SimplexBasis* warm,
                                    lp::SimplexBasis* basis_out) const {
  SolveOutcome out;
  g_supervised.fetch_add(1, std::memory_order_relaxed);

  // Runs one ladder rung.  Returns true when the ladder must stop:
  // either the model is determined, or the failure is one escalation
  // cannot help with (expired deadline, malformed model).
  const auto attempt = [&](RecoveryRung rung, auto&& fn) -> bool {
    g_rung_attempts[static_cast<std::size_t>(rung)].fetch_add(
        1, std::memory_order_relaxed);
    RecoveryStep step;
    step.rung = rung;
    try {
      out.solution = fn();
      step.status = out.solution.status;
      step.iterations = out.solution.iterations;
      out.steps.push_back(step);
      if (out.determined()) {
        out.failure.reset();
        return true;
      }
      SolveFailure f;
      f.reason = reason_from(out.solution);
      f.rung = rung;
      f.detail = out.solution.note != nullptr ? out.solution.note : "";
      out.failure = f;
      return f.reason == FailureReason::kDeadlineExpired;
    } catch (const lp::LpError& e) {
      const std::string what = e.what();
      const bool invariant = what.find("invariant") != std::string::npos;
      step.threw = true;
      step.status = lp::LpStatus::kNumericalFailure;
      out.steps.push_back(step);
      out.solution = lp::LpSolution{};
      out.solution.status = lp::LpStatus::kNumericalFailure;
      out.failure = SolveFailure{invariant ? FailureReason::kInvariantViolation
                                           : FailureReason::kBadModel,
                                 rung, what};
      return !invariant;  // malformed input never heals; invariants escalate
    } catch (const linalg::LinalgError& e) {
      const std::string what = e.what();
      step.threw = true;
      step.status = lp::LpStatus::kNumericalFailure;
      out.steps.push_back(step);
      out.solution = lp::LpSolution{};
      out.solution.status = lp::LpStatus::kNumericalFailure;
      const FailureReason reason =
          what.find("nonfinite") != std::string::npos
              ? FailureReason::kNonFinite
              : FailureReason::kSingularBasis;
      out.failure = SolveFailure{reason, rung, what};
      return false;
    } catch (const std::exception& e) {
      step.threw = true;
      step.status = lp::LpStatus::kNumericalFailure;
      out.steps.push_back(step);
      out.solution = lp::LpSolution{};
      out.solution.status = lp::LpStatus::kNumericalFailure;
      out.failure =
          SolveFailure{FailureReason::kInvariantViolation, rung, e.what()};
      return false;
    }
  };

  const auto done = [&]() -> SolveOutcome& {
    if (out.determined()) {
      if (out.steps.size() <= 1) {
        g_first_try.fetch_add(1, std::memory_order_relaxed);
      } else {
        g_recovered.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      g_unrecovered.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
  };

  // The kPlain configuration, reused verbatim by the retry rung.
  const auto plain = [&] {
    switch (options_.backend) {
      case lp::Backend::kInteriorPoint:
        return lp::solve_interior_point(problem);
      case lp::Backend::kSimplex:
        return lp::solve_simplex(problem);
      case lp::Backend::kRevisedSimplex:
        break;
    }
    return lp::solve_revised_simplex(problem, options_.lp, warm, basis_out);
  };

  // Rung 1: as requested.  A non-default backend that fails lands on
  // the simplex ladder below — the IPM Cholesky-breakdown -> simplex
  // fallback path.
  if (attempt(RecoveryRung::kPlain, plain)) {
    return done();
  }

  // Rung 2: the same configuration again, every factorization rebuilt.
  // Transient trouble (a consumed single-shot fault, a cosmic-ray NaN)
  // re-solves along the identical pivot trajectory, so the recovered
  // answer — objective, vertex, iteration count — matches the
  // fault-free run bit-for-bit.
  if (attempt(RecoveryRung::kRetryRefactorize, plain)) {
    return done();
  }

  // Rung 3: the exact same problem, cold — no warm basis AND no crash
  // seed, so persistent hand-off trouble (stale, corrupted, or
  // unfactorable seeds of either kind) clears with a bit-identical
  // objective on success.
  const auto cold_opts = [&] {
    lp::RevisedSimplexOptions opts = options_.lp;
    opts.crash_columns = nullptr;
    return opts;
  };
  if (attempt(RecoveryRung::kColdRestart, [&] {
        return lp::solve_revised_simplex(problem, cold_opts(), nullptr,
                                         basis_out);
      })) {
    return done();
  }

  // Rung 4: perturbed copy (same matrix, nudged rhs) breaks degenerate
  // wedges; objective re-evaluated on the original problem.
  if (options_.allow_perturb &&
      attempt(RecoveryRung::kPerturb, [&] {
        lp::LpSolution sol = lp::solve_revised_simplex(
            lp::perturbed_copy(problem, 1e-7), cold_opts(), nullptr,
            basis_out);
        if (sol.status == lp::LpStatus::kOptimal) {
          sol.objective = problem.objective(sol.x);
        }
        return sol;
      })) {
    return done();
  }

  // Rung 5: presolve off — isolates presolve/postsolve trouble and
  // changes the pivot trajectory from the first iteration.
  if (attempt(RecoveryRung::kNoPresolve, [&] {
        lp::RevisedSimplexOptions opts = cold_opts();
        opts.presolve = false;
        return lp::solve_revised_simplex(problem, opts, nullptr, basis_out);
      })) {
    return done();
  }

  // Rung 6: an independent backend answers instead.
  if (options_.allow_cross_check) {
    attempt(RecoveryRung::kCrossCheck, [&] {
      if (problem.num_variables() <= options_.cross_check_tableau_limit) {
        return lp::solve_simplex(problem);
      }
      return lp::solve_interior_point(problem);
    });
  }
  return done();
}

}  // namespace dpm::robust
