// Deterministic fault plans and scoped arming for the probe points in
// robust/probe.h.
//
// A FaultPlan says *which* probe site fires and *when* (the N-th time
// the armed thread passes that probe).  Plans are derived from
// (scope, index) through sim::derive_seed, so the same unit always
// sees the same fault regardless of thread count or scheduling — the
// fault matrix inherits the scenario engine's determinism contract.
//
// Arming is per-thread and RAII-scoped: the scenario runner constructs
// one FaultScope per unit (outside its retry loop, so a single-shot
// fault consumed on attempt 0 stays consumed and the retry runs
// clean), tests construct one per solve.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "robust/probe.h"

namespace dpm::robust {

/// One injected fault: `site` fires on probe ordinals
/// [fire_at, fire_at + count) of the armed thread, then never again.
/// `count > 1` models refusal *storms* (e.g. consecutive FT update
/// rejections); the default single shot models a transient.
struct FaultPlan {
  FaultSite site = FaultSite::kLuFactorize;
  std::uint64_t fire_at = 1;  ///< 1-based ordinal of the firing probe
  std::uint64_t count = 1;    ///< consecutive firings from fire_at

  /// Derives the firing ordinal deterministically from (scope, index)
  /// via sim::derive_seed, landing in [1, window].  Window 0 or 1 pins
  /// the fault to the very first probe.
  static FaultPlan derive(FaultSite site, std::string_view scope,
                          std::uint64_t index, std::uint64_t window,
                          std::uint64_t count = 1) noexcept;
};

/// Parameters for deriving one FaultPlan per unit inside the scenario
/// runner (RunnerOptions carries an optional FaultSpec; the runner
/// calls FaultPlan::derive(site, scenario_name, unit_index, window,
/// count) for each unit).
struct FaultSpec {
  FaultSite site = FaultSite::kLuFactorize;
  std::uint64_t window = 16;  ///< firing ordinal drawn from [1, window]
  std::uint64_t count = 1;
};

/// Parses a CLI spec "site[:window[:count]]" (site names as printed by
/// to_string(FaultSite)).  Returns nullopt on an unknown site or a
/// malformed number.
std::optional<FaultSpec> parse_fault_spec(std::string_view text) noexcept;

/// RAII arming of a FaultPlan on the calling thread.  Probe hit
/// counters live in the scope's thread-local slot and reset when a new
/// scope is constructed — never in between, so retries inside one
/// scope see an already-consumed single-shot fault as clean.
class FaultScope {
 public:
  explicit FaultScope(const FaultPlan& plan) noexcept;
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Probe ordinals of `plan.site` seen by this thread so far.
  std::uint64_t hits() const noexcept;
  /// Firings consumed from this scope's plan so far.
  std::uint64_t fired() const noexcept;

 private:
  // Saved outer state: scopes nest, and the destructor restores the
  // enclosing scope's plan together with its counters.
  FaultPlan prev_plan_;
  std::uint64_t prev_hits_ = 0;
  std::uint64_t prev_fired_ = 0;
  bool prev_armed_ = false;
};

}  // namespace dpm::robust
