#include "robust/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "sim/rng.h"

namespace dpm::robust {
namespace {

/// Per-thread armed plan + probe counters.  Thread-locality is what
/// makes injection deterministic under `--jobs N`: a unit's faults
/// depend only on its own probe sequence.
struct ActivePlan {
  FaultPlan plan;
  std::uint64_t hits = 0;   // probe ordinals of plan.site seen
  std::uint64_t fired = 0;  // firings consumed
  bool armed = false;
};

thread_local ActivePlan t_plan;

/// Per-thread cooperative deadline.  `active` keeps the disarmed check
/// to one thread-local flag read (no clock call).
struct ThreadDeadline {
  std::chrono::steady_clock::time_point at{};
  bool active = false;
};

thread_local ThreadDeadline t_deadline;

std::atomic<std::uint64_t> g_faults_fired{0};

}  // namespace

namespace detail {

std::atomic<int> g_armed_threads{0};

bool probe_slow(FaultSite site) noexcept {
  ActivePlan& ap = t_plan;
  if (!ap.armed || ap.plan.site != site) return false;
  const std::uint64_t ordinal = ++ap.hits;
  if (ordinal < ap.plan.fire_at || ordinal >= ap.plan.fire_at + ap.plan.count) {
    return false;
  }
  ++ap.fired;
  g_faults_fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace detail

const char* to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kLuFactorize: return "lu-factorize";
    case FaultSite::kFtUpdate: return "ft-update";
    case FaultSite::kFtranSpike: return "ftran";
    case FaultSite::kBtranSpike: return "btran";
    case FaultSite::kWarmBasis: return "warm-basis";
    case FaultSite::kCholesky: return "cholesky";
    case FaultSite::kCacheLine: return "cache-line";
    case FaultSite::kDeadline: return "deadline";
  }
  return nullptr;
}

std::uint64_t faults_fired() noexcept {
  return g_faults_fired.load(std::memory_order_relaxed);
}

void set_thread_deadline(double wall_ms) noexcept {
  if (wall_ms <= 0.0) {
    clear_thread_deadline();
    return;
  }
  t_deadline.at = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(wall_ms));
  t_deadline.active = true;
}

void clear_thread_deadline() noexcept { t_deadline.active = false; }

bool deadline_expired() noexcept {
  if (probe(FaultSite::kDeadline)) return true;
  if (!t_deadline.active) return false;
  return std::chrono::steady_clock::now() >= t_deadline.at;
}

FaultPlan FaultPlan::derive(FaultSite site, std::string_view scope,
                            std::uint64_t index, std::uint64_t window,
                            std::uint64_t count) noexcept {
  FaultPlan plan;
  plan.site = site;
  const std::uint64_t span = window < 2 ? 1 : window;
  const std::uint64_t salt =
      0xFA017ull ^ (static_cast<std::uint64_t>(site) << 8);
  plan.fire_at = 1 + sim::derive_seed(scope, index, salt) % span;
  plan.count = count < 1 ? 1 : count;
  return plan;
}

std::optional<FaultSpec> parse_fault_spec(std::string_view text) noexcept {
  FaultSpec spec;
  const std::size_t c1 = text.find(':');
  const std::string_view name = text.substr(0, c1);
  bool known = false;
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == to_string(site)) {
      spec.site = site;
      known = true;
      break;
    }
  }
  if (!known) return std::nullopt;
  const auto parse_u64 = [](std::string_view s,
                            std::uint64_t& out) noexcept -> bool {
    if (s.empty()) return false;
    std::uint64_t v = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
  };
  if (c1 != std::string_view::npos) {
    const std::string_view rest = text.substr(c1 + 1);
    const std::size_t c2 = rest.find(':');
    if (!parse_u64(rest.substr(0, c2), spec.window)) return std::nullopt;
    if (c2 != std::string_view::npos &&
        !parse_u64(rest.substr(c2 + 1), spec.count)) {
      return std::nullopt;
    }
  }
  if (spec.window < 1) spec.window = 1;
  if (spec.count < 1) spec.count = 1;
  return spec;
}

FaultScope::FaultScope(const FaultPlan& plan) noexcept
    : prev_plan_(t_plan.plan),
      prev_hits_(t_plan.hits),
      prev_fired_(t_plan.fired),
      prev_armed_(t_plan.armed) {
  t_plan.plan = plan;
  t_plan.hits = 0;
  t_plan.fired = 0;
  t_plan.armed = true;
  if (!prev_armed_) {
    detail::g_armed_threads.fetch_add(1, std::memory_order_relaxed);
  }
}

FaultScope::~FaultScope() {
  t_plan.plan = prev_plan_;
  t_plan.hits = prev_hits_;
  t_plan.fired = prev_fired_;
  t_plan.armed = prev_armed_;
  if (!prev_armed_) {
    detail::g_armed_threads.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::uint64_t FaultScope::hits() const noexcept { return t_plan.hits; }

std::uint64_t FaultScope::fired() const noexcept { return t_plan.fired; }

}  // namespace dpm::robust
