// Structured solve outcomes: the failure taxonomy the supervised solve
// pipeline speaks instead of aborts and stray exceptions.
//
// Every solve attempt ends in one of three ways:
//   * a *determination* — kOptimal / kInfeasible / kUnbounded, a final
//     answer about the model;
//   * a *failure* — the solver hit a wall (numerical, budget, deadline)
//     and the answer is unknown.  SolveSupervisor escalates these;
//   * an *exception* — converted at the supervisor boundary into a
//     typed failure, never propagated to callers.
// A SolveOutcome records the full attempt history, so telemetry and
// tests can see exactly which ladder rung produced the answer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lp/problem.h"

namespace dpm::robust {

/// Why a solve attempt failed to determine the model.  Coarse on
/// purpose: each reason implies a different remedy, and the ladder in
/// SolveSupervisor is keyed off exactly these distinctions.
enum class FailureReason : std::uint8_t {
  kSingularBasis = 0,   ///< refactorization failed; basis numerically wedged
  kNonFinite,           ///< NaN/Inf detected mid-solve (data or injection)
  kIterationLimit,      ///< pivot budget exhausted, perturbed retries included
  kDeadlineExpired,     ///< cooperative per-unit wall-clock deadline hit
  kCholeskyBreakdown,   ///< IPM normal equations hopeless at max shift
  kInvariantViolation,  ///< internal invariant check tripped (verify builds)
  kBadModel,            ///< malformed input; retrying cannot help
};
inline constexpr std::size_t kNumFailureReasons = 7;

const char* to_string(FailureReason r) noexcept;

/// The declared escalation ladder, in firing order.  Each rung is a
/// strictly "colder" (more conservative, more expensive) way to ask the
/// same question of the same model.
enum class RecoveryRung : std::uint8_t {
  kPlain = 0,          ///< as requested: warm basis if provided, presolve on
  kRetryRefactorize,   ///< the exact same configuration again, every
                       ///< factorization rebuilt from scratch: heals
                       ///< transient (e.g. consumed single-shot injected)
                       ///< faults with a pivot-for-pivot identical
                       ///< trajectory, so recovered results match the
                       ///< fault-free bytes exactly
  kColdRestart,        ///< drop the warm basis, fresh start from scratch
  kPerturb,            ///< solve a deterministically perturbed copy,
                       ///< objective re-evaluated on the original problem
  kNoPresolve,         ///< presolve disabled (isolates presolve bugs)
  kCrossCheck,         ///< independent backend: dense tableau (small
                       ///< problems) or interior point
};
inline constexpr std::size_t kNumRecoveryRungs = 6;

const char* to_string(RecoveryRung r) noexcept;

/// A typed failure: what went wrong, on which rung, with context.
struct SolveFailure {
  FailureReason reason = FailureReason::kBadModel;
  RecoveryRung rung = RecoveryRung::kPlain;  ///< rung that produced it
  std::string detail;                        ///< solver note / exception text
};

/// One ladder attempt, recorded in order.
struct RecoveryStep {
  RecoveryRung rung = RecoveryRung::kPlain;
  lp::LpStatus status = lp::LpStatus::kIterationLimit;
  std::size_t iterations = 0;
  bool threw = false;  ///< attempt ended in an exception (converted)
};

/// The result of a supervised solve: the attempt history plus either a
/// determination (solution valid) or a typed failure (solution holds
/// the last attempt's state; do not trust its x/objective).
struct SolveOutcome {
  lp::LpSolution solution;
  std::vector<RecoveryStep> steps;
  std::optional<SolveFailure> failure;

  /// True when the model was determined: optimal, infeasible, or
  /// unbounded.  (`failure` is empty exactly when this holds.)
  bool determined() const noexcept {
    return solution.status == lp::LpStatus::kOptimal ||
           solution.status == lp::LpStatus::kInfeasible ||
           solution.status == lp::LpStatus::kUnbounded;
  }

  /// True when the answer needed at least one escalation past kPlain.
  bool recovered() const noexcept { return determined() && steps.size() > 1; }
};

}  // namespace dpm::robust
