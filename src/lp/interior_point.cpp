#include "lp/interior_point.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

#include "linalg/cholesky.h"
#include "lp/revised_simplex.h"
#include "robust/probe.h"

namespace dpm::lp {

namespace {

using linalg::CholeskyDecomposition;
using linalg::Matrix;
using linalg::Vector;

// Standard form min c^T x, A x = b, x >= 0 with slacks appended for
// inequality rows.
struct StandardForm {
  Matrix a;
  Vector b;
  Vector c;
  std::size_t n_orig = 0;
};

StandardForm to_standard_form(const LpProblem& p) {
  const std::size_t m = p.num_constraints();
  std::size_t n_slack = 0;
  for (const auto& c : p.constraints()) {
    if (c.sense != Sense::kEq) ++n_slack;
  }
  StandardForm sf;
  sf.n_orig = p.num_variables();
  const std::size_t n = sf.n_orig + n_slack;
  sf.a = Matrix(m, n);
  sf.b.assign(m, 0.0);
  sf.c.assign(n, 0.0);
  for (std::size_t j = 0; j < sf.n_orig; ++j) sf.c[j] = p.costs()[j];

  std::size_t next_slack = sf.n_orig;
  for (std::size_t i = 0; i < m; ++i) {
    const Constraint& c = p.constraints()[i];
    for (const auto& [col, coeff] : c.terms) sf.a(i, col) = coeff;
    sf.b[i] = c.rhs;
    if (c.sense == Sense::kLe) {
      sf.a(i, next_slack++) = 1.0;
    } else if (c.sense == Sense::kGe) {
      sf.a(i, next_slack++) = -1.0;
    }
  }
  return sf;
}

// Solves (A Theta A^T + reg I) y = rhs with Theta = diag(theta).
class NormalEquations {
 public:
  NormalEquations(const Matrix& a, const Vector& theta) {
    // Fault injection: a hopeless Cholesky, the same LinalgError the
    // last-resort shift below raises — typed by the caller as
    // cholesky-breakdown, mapped by the supervisor to simplex fallback.
    if (robust::probe(robust::FaultSite::kCholesky)) {
      throw linalg::LinalgError("normal-equations: injected breakdown");
    }
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix ada(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = i; k < m; ++k) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          acc += a(i, j) * theta[j] * a(k, j);
        }
        ada(i, k) = acc;
        ada(k, i) = acc;
      }
    }
    // Regularize only as much as factorization demands: policy LPs can
    // carry a redundant balance row (the frequencies sum is implied),
    // which makes A Theta A^T semidefinite, but a fixed fraction of the
    // diagonal would perturb the primal solution visibly once Theta
    // grows near convergence.  Escalate the shift from zero until the
    // Cholesky succeeds.
    double max_diag = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      max_diag = std::max(max_diag, ada(i, i));
    }
    for (double rel_shift = 0.0; rel_shift < 1e-3; rel_shift =
             (rel_shift == 0.0 ? 1e-15 : rel_shift * 100.0)) {
      try {
        chol_.emplace(ada, rel_shift * max_diag);
        return;
      } catch (const linalg::LinalgError&) {
        // escalate
      }
    }
    chol_.emplace(ada, 1e-3 * max_diag);  // last resort; throws if hopeless
  }

  Vector solve(const Vector& rhs) const { return chol_->solve(rhs); }

 private:
  std::optional<CholeskyDecomposition> chol_;
};

double max_step(const Vector& v, const Vector& dv) {
  // Largest alpha in (0,1] with v + alpha*dv >= 0.
  double alpha = 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (dv[i] < 0.0) alpha = std::min(alpha, -v[i] / dv[i]);
  }
  return alpha;
}

LpSolution mehrotra_solve(const LpProblem& problem,
                          const InteriorPointOptions& options);

}  // namespace

LpSolution solve_interior_point(const LpProblem& problem,
                                const InteriorPointOptions& options) {
  if (problem.num_variables() == 0) {
    throw LpError("interior-point: problem has no variables");
  }
  if (options.dense_column_limit != 0 &&
      problem.num_variables() > options.dense_column_limit) {
    // The normal equations are dense (O(m^2) memory, O(m^3) per
    // iteration): above the limit this backend silently takes minutes,
    // so route the solve to the sparse revised simplex instead.
    std::fprintf(stderr,
                 "[lp] interior-point: %zu columns exceeds the dense limit "
                 "of %zu; falling back to the revised simplex\n",
                 problem.num_variables(), options.dense_column_limit);
    return solve_revised_simplex(problem);
  }
  if (problem.has_finite_upper_bounds()) {
    // No native bound handling; solve the explicit-row reformulation.
    return solve_interior_point(bounds_as_rows(problem), options);
  }
  // Structured failure instead of an escaping exception: a Cholesky
  // that is hopeless even at the last-resort shift surfaces as
  // kNumericalFailure, which robust::SolveSupervisor maps to the
  // simplex fallback rungs.
  try {
    return mehrotra_solve(problem, options);
  } catch (const linalg::LinalgError&) {
    LpSolution sol;
    sol.status = LpStatus::kNumericalFailure;
    sol.note = "cholesky-breakdown";
    return sol;
  }
}

namespace {

LpSolution mehrotra_solve(const LpProblem& problem,
                          const InteriorPointOptions& options) {
  const StandardForm sf = to_standard_form(problem);
  const Matrix& a = sf.a;
  const Matrix at = a.transposed();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // --- Mehrotra starting point ---------------------------------------
  Vector x(n, 1.0), s(n, 1.0), y(m, 0.0);
  {
    NormalEquations ne(a, Vector(n, 1.0));
    // x0 = A^T (A A^T)^-1 b;  y0 = (A A^T)^-1 A c;  s0 = c - A^T y0.
    const Vector w = ne.solve(sf.b);
    x = at * w;
    const Vector ac = a * sf.c;
    y = ne.solve(ac);
    const Vector aty = at * y;
    for (std::size_t j = 0; j < n; ++j) s[j] = sf.c[j] - aty[j];

    double dx = 0.0, ds = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      dx = std::max(dx, -1.5 * x[j]);
      ds = std::max(ds, -1.5 * s[j]);
    }
    dx += 0.1;
    ds += 0.1;
    double xs = 0.0, xsum = 0.0, ssum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      xs += (x[j] + dx) * (s[j] + ds);
      xsum += x[j] + dx;
      ssum += s[j] + ds;
    }
    const double dx2 = dx + 0.5 * xs / std::max(ssum, 1e-12);
    const double ds2 = ds + 0.5 * xs / std::max(xsum, 1e-12);
    for (std::size_t j = 0; j < n; ++j) {
      x[j] += dx2;
      s[j] += ds2;
    }
  }

  const double b_norm = 1.0 + linalg::norm_inf(sf.b);
  const double c_norm = 1.0 + linalg::norm_inf(sf.c);

  // The diagonal regularization in the normal equations bounds how far
  // the primal residual can be driven; when complementarity is already
  // far below target and rp stops improving, the iterate is optimal to
  // working precision and we accept it.
  double best_rp = std::numeric_limits<double>::infinity();
  std::size_t rp_stall = 0;

  LpSolution sol;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (robust::deadline_expired()) {
      sol.status = LpStatus::kDeadline;
      sol.note = "deadline";
      sol.iterations = iter;
      sol.x.assign(sf.n_orig, 0.0);
      for (std::size_t j = 0; j < sf.n_orig; ++j) {
        sol.x[j] = std::max(0.0, x[j]);
      }
      sol.objective = problem.objective(sol.x);
      return sol;
    }
    // Residuals.
    const Vector ax = a * x;
    Vector rp(m);
    for (std::size_t i = 0; i < m; ++i) rp[i] = sf.b[i] - ax[i];
    const Vector aty = at * y;
    Vector rd(n);
    for (std::size_t j = 0; j < n; ++j) rd[j] = sf.c[j] - aty[j] - s[j];
    double mu = 0.0;
    for (std::size_t j = 0; j < n; ++j) mu += x[j] * s[j];
    mu /= static_cast<double>(n);

    const double rel_gap = mu / (1.0 + std::abs(linalg::dot(sf.c, x)));
    const double rp_rel = linalg::norm_inf(rp) / b_norm;
    if (rp_rel < 0.95 * best_rp) {
      best_rp = rp_rel;
      rp_stall = 0;
    } else {
      ++rp_stall;
    }
    const bool rp_ok =
        rp_rel < options.tolerance ||
        (rp_stall >= 3 && rel_gap < 1e-3 * options.tolerance &&
         rp_rel < 1e2 * options.tolerance);
    if (rp_ok && linalg::norm_inf(rd) / c_norm < options.tolerance &&
        rel_gap < options.tolerance) {
      sol.status = LpStatus::kOptimal;
      sol.iterations = iter;
      sol.x.assign(sf.n_orig, 0.0);
      for (std::size_t j = 0; j < sf.n_orig; ++j) sol.x[j] = std::max(0.0, x[j]);
      sol.objective = problem.objective(sol.x);
      return sol;
    }

    Vector theta(n);
    for (std::size_t j = 0; j < n; ++j) theta[j] = x[j] / s[j];
    NormalEquations ne(a, theta);

    // Shared reduction: given the complementarity rhs rc (length n),
    // compute (dx, dy, ds).
    const auto kkt_solve = [&](const Vector& rc, Vector& dx, Vector& dy,
                               Vector& ds) {
      // dy from A Theta A^T dy = rp + A Theta (rd - rc ./ x).
      Vector t(n);
      for (std::size_t j = 0; j < n; ++j) {
        t[j] = theta[j] * (rd[j] - rc[j] / x[j]);
      }
      Vector rhs = a * t;
      for (std::size_t i = 0; i < m; ++i) rhs[i] += rp[i];
      dy = ne.solve(rhs);
      const Vector atdy = at * dy;
      ds.assign(n, 0.0);
      dx.assign(n, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        ds[j] = rd[j] - atdy[j];
        dx[j] = (rc[j] - x[j] * ds[j]) / s[j];
      }
    };

    // Predictor (affine scaling) step: rc = -x.*s.
    Vector rc(n);
    for (std::size_t j = 0; j < n; ++j) rc[j] = -x[j] * s[j];
    Vector dx_aff, dy_aff, ds_aff;
    kkt_solve(rc, dx_aff, dy_aff, ds_aff);

    const double ap_aff = max_step(x, dx_aff);
    const double ad_aff = max_step(s, ds_aff);
    double mu_aff = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      mu_aff += (x[j] + ap_aff * dx_aff[j]) * (s[j] + ad_aff * ds_aff[j]);
    }
    mu_aff /= static_cast<double>(n);
    const double sigma = std::pow(mu_aff / std::max(mu, 1e-300), 3.0);

    // Corrector: rc = sigma*mu - x.*s - dx_aff.*ds_aff.
    for (std::size_t j = 0; j < n; ++j) {
      rc[j] = sigma * mu - x[j] * s[j] - dx_aff[j] * ds_aff[j];
    }
    Vector dx, dy, ds;
    kkt_solve(rc, dx, dy, ds);

    const double ap = std::min(1.0, options.step_scale * max_step(x, dx));
    const double ad = std::min(1.0, options.step_scale * max_step(s, ds));
    for (std::size_t j = 0; j < n; ++j) {
      x[j] += ap * dx[j];
      s[j] += ad * ds[j];
    }
    for (std::size_t i = 0; i < m; ++i) y[i] += ad * dy[i];
    sol.iterations = iter + 1;
  }

  sol.status = LpStatus::kIterationLimit;
  sol.x.assign(sf.n_orig, 0.0);
  for (std::size_t j = 0; j < sf.n_orig; ++j) sol.x[j] = std::max(0.0, x[j]);
  sol.objective = problem.objective(sol.x);
  return sol;
}

}  // namespace

}  // namespace dpm::lp
