#include "lp/presolve.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <unordered_map>

namespace dpm::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mirrors RevisedSimplex::absorb_row's keep/absorb decision (not its
/// feasibility checks — postsolve only runs on solvable problems): the
/// engine folds empty rows, singleton upper-bound rows, and singleton
/// lower bounds implied by x >= 0 into the bound set.
bool engine_keeps_row(const Constraint& c, double tol) {
  std::size_t nz = 0;
  double coeff = 0.0;
  for (const auto& [j, v] : c.terms) {
    if (v != 0.0) {
      ++nz;
      coeff = v;
    }
  }
  if (nz == 0) return false;
  if (nz != 1 || c.sense == Sense::kEq) return true;
  const double bound = c.rhs / coeff;
  const bool is_upper = (c.sense == Sense::kLe) == (coeff > 0.0);
  if (is_upper) return false;
  return bound > tol;
}

}  // namespace

void Presolve::fix_column(std::size_t j, double v, Action::Kind kind,
                          std::size_t row, double coeff) {
  col_alive_[j] = 0;
  ++cols_removed_;
  for (const auto& [r, a] : cols_[j]) {
    if (row_alive_[r]) rhs_[r] -= a * v;
  }
  Action act;
  act.kind = kind;
  act.col = j;
  act.row = row;
  act.coeff = coeff;
  act.value = v;
  stack_.push_back(std::move(act));
}

bool Presolve::row_pass() {
  bool changed = false;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!row_alive_[i]) continue;
    const Sense sense = orig_.constraints()[i].sense;
    const double b = rhs_[i];

    std::size_t nz = 0;
    std::size_t var = 0;
    double coeff = 0.0;
    double lmin = 0.0, lmax = 0.0;  // row activity range over 0 <= x <= ub
    for (const auto& [j, a] : rows_[i]) {
      if (!col_alive_[j]) continue;
      ++nz;
      var = j;
      coeff = a;
      if (a > 0.0) {
        lmax += a * ub_[j];
      } else {
        lmin += a * ub_[j];
      }
    }

    auto kill_row = [&](Action::Kind kind) {
      row_alive_[i] = 0;
      ++rows_removed_;
      Action act;
      act.kind = kind;
      act.row = i;
      stack_.push_back(std::move(act));
      changed = true;
    };

    if (nz == 0) {
      const bool ok = sense == Sense::kEq   ? std::abs(b) <= tol_
                      : sense == Sense::kLe ? b >= -tol_
                                            : b <= tol_;
      if (!ok) {
        status_ = PresolveStatus::kInfeasible;
        return changed;
      }
      kill_row(Action::kRowRedundant);
      continue;
    }

    if (nz == 1) {
      if (sense == Sense::kEq) {
        // a x = b: fixes the variable outright.
        double v = b / coeff;
        if (v < -tol_ || v > ub_[var] + tol_) {
          status_ = PresolveStatus::kInfeasible;
          return changed;
        }
        v = std::min(std::max(v, 0.0), ub_[var]);
        row_alive_[i] = 0;
        ++rows_removed_;
        changed = true;
        fix_column(var, v, Action::kRowSingletonFix, i, coeff);
        continue;
      }
      const double bound = b / coeff;
      const bool is_upper = (sense == Sense::kLe) == (coeff > 0.0);
      if (is_upper) {
        if (bound < -tol_) {
          status_ = PresolveStatus::kInfeasible;
          return changed;
        }
        const double nb = std::max(bound, 0.0);
        if (nb < ub_[var]) {
          ub_[var] = nb;
          row_alive_[i] = 0;
          ++rows_removed_;
          Action act;
          act.kind = Action::kRowSingletonUb;
          act.row = i;
          act.col = var;
          act.coeff = coeff;
          act.value = nb;
          stack_.push_back(std::move(act));
          changed = true;
        } else {
          kill_row(Action::kRowRedundant);  // an existing bound dominates
        }
        continue;
      }
      // Lower bound `x >= bound` (bound = b/coeff).
      if (bound > ub_[var] + tol_) {
        status_ = PresolveStatus::kInfeasible;
        return changed;
      }
      if (bound <= tol_) {
        kill_row(Action::kRowRedundant);  // implied by x >= 0
      } else if (std::isfinite(ub_[var]) && bound >= ub_[var] - tol_) {
        // The box collapses: x is forced to its upper bound.
        row_alive_[i] = 0;
        ++rows_removed_;
        changed = true;
        fix_column(var, ub_[var], Action::kRowSingletonFix, i, coeff);
      }
      // else: positive lower bounds are not representable in the
      // 0 <= x <= u form — the row stays.
      continue;
    }

    // Multi-term rows: redundant / forcing by the activity interval.
    const bool lo_inf = std::isinf(lmin);
    const bool hi_inf = std::isinf(lmax);
    if (sense == Sense::kLe) {
      if (!lo_inf && lmin > b + tol_) {
        status_ = PresolveStatus::kInfeasible;
        return changed;
      }
      if (!hi_inf && lmax <= b) {
        kill_row(Action::kRowRedundant);
        continue;
      }
      if (!lo_inf && lmin >= b) {
        // Binding at the minimum: every member sits at its attaining
        // bound (a > 0 -> 0, a < 0 -> ub, finite since lmin is).
        force_row(i, /*at_min=*/true);
        changed = true;
      }
      continue;
    }
    if (sense == Sense::kGe) {
      if (!hi_inf && lmax < b - tol_) {
        status_ = PresolveStatus::kInfeasible;
        return changed;
      }
      if (!lo_inf && lmin >= b) {
        kill_row(Action::kRowRedundant);
        continue;
      }
      if (!hi_inf && lmax <= b) {
        force_row(i, /*at_min=*/false);
        changed = true;
      }
      continue;
    }
    // Equality.
    if ((!lo_inf && lmin > b + tol_) || (!hi_inf && lmax < b - tol_)) {
      status_ = PresolveStatus::kInfeasible;
      return changed;
    }
    if ((!lo_inf && lmin >= b) || (!hi_inf && lmax <= b)) {
      force_row(i, /*at_min=*/!lo_inf && lmin >= b);
      changed = true;
    }
  }
  return changed;
}

void Presolve::force_row(std::size_t i, bool at_min) {
  // The attaining bound per member: at the activity minimum a positive
  // coefficient sits at 0 and a negative one at its (finite) upper
  // bound; the maximum mirrors.
  std::vector<std::pair<std::size_t, char>> forced;
  for (const auto& [j, a] : rows_[i]) {
    if (col_alive_[j]) forced.emplace_back(j, (a < 0.0) == at_min ? 1 : 0);
  }
  Action act;
  act.kind = Action::kRowForcing;
  act.row = i;
  act.forced = forced;
  stack_.push_back(std::move(act));
  row_alive_[i] = 0;
  ++rows_removed_;
  for (const auto& [j, up] : forced) {
    fix_column(j, up ? ub_[j] : 0.0, Action::kColFixed);
  }
}

bool Presolve::column_pass() {
  bool changed = false;
  const std::size_t n = cols_.size();

  for (std::size_t j = 0; j < n; ++j) {
    if (!col_alive_[j]) continue;
    if (ub_[j] <= tol_) {  // zero-width box
      fix_column(j, 0.0, Action::kColFixed);
      changed = true;
      continue;
    }
    bool empty = true;
    for (const auto& [r, a] : cols_[j]) {
      if (row_alive_[r]) {
        empty = false;
        break;
      }
    }
    if (empty) {
      const double c = orig_.costs()[j];
      if (c >= 0.0) {
        fix_column(j, 0.0, Action::kColFixed);
        changed = true;
      } else if (std::isfinite(ub_[j])) {
        fix_column(j, ub_[j], Action::kColFixed);
        changed = true;
      }
      // else: a constraint-free negative-cost ray — left for reduce()'s
      // final verdict (or the solver's unboundedness proof).
      continue;
    }
  }

  // Duplicate / dominated columns: group by an exact hash of the alive
  // support, verify exactly within groups.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t j = 0; j < n; ++j) {
    if (!col_alive_[j]) continue;
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (const auto& [r, a] : cols_[j]) {
      if (!row_alive_[r]) continue;
      std::uint64_t bits = 0;
      std::memcpy(&bits, &a, sizeof(bits));
      mix(r);
      mix(bits);
    }
    groups[h].push_back(j);
  }
  auto same_support = [&](std::size_t a, std::size_t b) {
    std::size_t ia = 0, ib = 0;
    const auto& ca = cols_[a];
    const auto& cb = cols_[b];
    for (;;) {
      while (ia < ca.size() && !row_alive_[ca[ia].first]) ++ia;
      while (ib < cb.size() && !row_alive_[cb[ib].first]) ++ib;
      if (ia == ca.size() || ib == cb.size()) {
        return ia == ca.size() && ib == cb.size();
      }
      if (ca[ia].first != cb[ib].first || ca[ia].second != cb[ib].second) {
        return false;
      }
      ++ia;
      ++ib;
    }
  };
  for (auto& [h, members] : groups) {
    if (members.size() < 2) continue;
    // Partition the hash bucket into exact-support classes.
    std::vector<std::vector<std::size_t>> classes;
    for (const std::size_t j : members) {
      bool placed = false;
      for (auto& cls : classes) {
        if (same_support(cls.front(), j)) {
          cls.push_back(j);
          placed = true;
          break;
        }
      }
      if (!placed) classes.push_back({j});
    }
    for (auto& cls : classes) {
      if (cls.size() < 2) continue;
      std::sort(cls.begin(), cls.end(), [&](std::size_t a, std::size_t b) {
        const double ca = orig_.costs()[a], cb = orig_.costs()[b];
        return ca != cb ? ca < cb : a < b;
      });
      const std::size_t primary = cls.front();
      for (std::size_t k = 1; k < cls.size(); ++k) {
        const std::size_t extra = cls[k];
        if (orig_.costs()[extra] == orig_.costs()[primary]) {
          // Equal column, equal cost: merge; capacities add.
          Action act;
          act.kind = Action::kColDuplicate;
          act.col = extra;
          act.other = primary;
          act.coeff = ub_[primary];  // primary's capacity before the merge
          act.value = ub_[extra];
          stack_.push_back(std::move(act));
          ub_[primary] += ub_[extra];  // inf-aware
          col_alive_[extra] = 0;
          ++cols_removed_;
          changed = true;
        } else if (std::isinf(ub_[primary])) {
          // Dominated: the cheaper copy has unlimited capacity, so the
          // pricier one never carries flow at an optimum.
          fix_column(extra, 0.0, Action::kColFixed);
          changed = true;
        }
      }
    }
  }
  return changed;
}

PresolveStatus Presolve::reduce(const LpProblem& p, double feas_tol) {
  orig_ = p;
  tol_ = feas_tol;
  status_ = PresolveStatus::kUnchanged;
  const std::size_t m = p.num_constraints();
  const std::size_t n = p.num_variables();
  row_alive_.assign(m, 1);
  col_alive_.assign(n, 1);
  ub_ = p.upper_bounds();
  rhs_.resize(m);
  rows_.assign(m, {});
  for (std::size_t i = 0; i < m; ++i) {
    const Constraint& c = p.constraints()[i];
    rhs_[i] = c.rhs;
    for (const auto& [j, v] : c.terms) {
      if (v != 0.0) rows_[i].emplace_back(j, v);
    }
  }
  cols_.assign(n, {});
  for (std::size_t i = 0; i < m; ++i) {
    for (const auto& [j, v] : rows_[i]) cols_[j].emplace_back(i, v);
  }
  stack_.clear();
  col_map_.assign(n, kNone);
  row_map_.assign(m, kNone);
  rows_removed_ = 0;
  cols_removed_ = 0;

  bool changed = true;
  while (changed && status_ != PresolveStatus::kInfeasible) {
    changed = row_pass();
    if (status_ == PresolveStatus::kInfeasible) break;
    if (column_pass()) changed = true;
  }
  if (status_ == PresolveStatus::kInfeasible) return status_;

  if (rows_removed_ == m) {
    if (cols_removed_ == n) {
      status_ = PresolveStatus::kEmpty;
    } else {
      // Only constraint-free negative-cost rays survive (everything
      // else was fixed), and the fixed assignment is feasible by
      // construction: the problem is unbounded.
      status_ = PresolveStatus::kUnbounded;
    }
    return status_;
  }
  if (rows_removed_ == 0 && cols_removed_ == 0) {
    status_ = PresolveStatus::kUnchanged;
    return status_;
  }
  build_reduced();
  status_ = PresolveStatus::kReduced;
  return status_;
}

void Presolve::build_reduced() {
  reduced_ = LpProblem{};
  const std::size_t m = orig_.num_constraints();
  const std::size_t n = orig_.num_variables();
  for (std::size_t j = 0; j < n; ++j) {
    if (!col_alive_[j]) continue;
    col_map_[j] = reduced_.add_variable(orig_.costs()[j], orig_.variable_name(j));
    if (std::isfinite(ub_[j])) reduced_.set_upper_bound(col_map_[j], ub_[j]);
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (!row_alive_[i]) continue;
    const Constraint& src = orig_.constraints()[i];
    Constraint c;
    c.sense = src.sense;
    c.rhs = rhs_[i];
    c.name = src.name;
    for (const auto& [j, a] : rows_[i]) {
      if (col_alive_[j]) c.terms.emplace_back(col_map_[j], a);
    }
    row_map_[i] = reduced_.num_constraints();
    reduced_.add_constraint(std::move(c));
  }
}

LpSolution Presolve::postsolve(const LpSolution& red,
                               const SimplexBasis* red_basis,
                               SimplexBasis* basis_out,
                               bool absorb_singleton_rows) const {
  const std::size_t m = orig_.num_constraints();
  const std::size_t n = orig_.num_variables();
  LpSolution sol;
  sol.status = status_ == PresolveStatus::kEmpty ? LpStatus::kOptimal
                                                 : red.status;
  sol.note = red.note;  // failure detail survives the postsolve
  sol.iterations = red.iterations;
  if (sol.status != LpStatus::kOptimal) return sol;

  // --- primal: kept variables, then reverse replay ------------------
  sol.x.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (col_map_[j] != kNone && col_map_[j] < red.x.size()) {
      sol.x[j] = red.x[col_map_[j]];
    }
  }
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    const Action& a = *it;
    switch (a.kind) {
      case Action::kColFixed:
      case Action::kRowSingletonFix:
        sol.x[a.col] = a.value;
        break;
      case Action::kColDuplicate: {
        // Split the merged mass: the primary keeps up to its pre-merge
        // capacity (a.coeff), the extra takes the spill up to its own
        // bound (a.value).  All-but-one member lands exactly on a
        // bound, so the split stays basis-representable.
        const double mass = sol.x[a.other];
        double take = mass - a.coeff;
        if (!(take > 0.0)) take = 0.0;
        if (take > a.value) take = a.value;
        sol.x[a.col] = take;
        sol.x[a.other] = mass - take;
        break;
      }
      default:
        break;
    }
  }
  sol.objective = orig_.objective(sol.x);

  // --- dual: kept rows, then reverse reconstruction -----------------
  // Reverse order makes each step see exactly the duals of the
  // subproblem it was removed from: rows removed earlier are still
  // "absent" (zero) when a later row's multiplier is reconstructed.
  sol.duals.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (row_map_[i] != kNone && row_map_[i] < red.duals.size()) {
      sol.duals[i] = red.duals[row_map_[i]];
    }
  }
  auto rc_of = [&](std::size_t j) {
    double rc = orig_.costs()[j];
    for (const auto& [r, a] : cols_[j]) rc -= a * sol.duals[r];
    return rc;
  };
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    const Action& a = *it;
    switch (a.kind) {
      case Action::kRowSingletonUb: {
        const double xj = sol.x[a.col];
        if (xj < a.value - tol_) break;  // row slack: y = 0 (compl. slack.)
        const double rc = rc_of(a.col);
        const double ou = orig_.upper_bounds()[a.col];
        double y;
        if (xj <= tol_) {
          y = rc >= 0.0 ? 0.0 : rc / a.coeff;  // also at the intrinsic lower
        } else if (xj >= ou - tol_) {
          y = rc <= 0.0 ? 0.0 : rc / a.coeff;  // bound coincides with ub
        } else {
          y = rc / a.coeff;  // interior w.r.t. the box: rc must vanish
        }
        sol.duals[a.row] = y;
        break;
      }
      case Action::kRowSingletonFix: {
        const double v = a.value;
        const double rc = rc_of(a.col);
        const double ou = orig_.upper_bounds()[a.col];
        double y;
        if (v <= tol_) {
          y = rc >= 0.0 ? 0.0 : rc / a.coeff;
        } else if (v >= ou - tol_) {
          y = rc <= 0.0 ? 0.0 : rc / a.coeff;
        } else {
          y = rc / a.coeff;
        }
        sol.duals[a.row] = y;
        break;
      }
      case Action::kRowForcing: {
        // Admissible multiplier interval: each member pinned at a bound
        // constrains y through its reduced-cost sign.
        double lo = -kInf, hi = kInf;
        for (const auto& [j, up] : a.forced) {
          double aij = 0.0;
          for (const auto& [jj, v] : rows_[a.row]) {
            if (jj == j) {
              aij = v;
              break;
            }
          }
          if (aij == 0.0) continue;
          const double ratio = rc_of(j) / aij;
          // at lower (up == 0): rc - aij*y >= 0; at upper: <= 0.
          const bool upper_cap = (up == 0) == (aij > 0.0);
          if (upper_cap) {
            hi = std::min(hi, ratio);
          } else {
            lo = std::max(lo, ratio);
          }
        }
        double y = 0.0;
        if (lo > hi) {
          y = 0.5 * (lo + hi);  // numerically empty interval: best effort
        } else {
          y = std::min(std::max(y, lo), hi);
        }
        sol.duals[a.row] = y;
        break;
      }
      default:
        break;
    }
  }

  // --- basis: map the reduced basis into the original standard form --
  if (basis_out != nullptr &&
      (red_basis != nullptr || status_ == PresolveStatus::kEmpty)) {
    const auto& rows = orig_.constraints();
    // Replicate the original-problem engine layout (absorb pass, row
    // remap, slack/artificial column numbering).
    std::vector<char> keep(m, 1);
    if (absorb_singleton_rows) {
      for (std::size_t i = 0; i < m; ++i) {
        keep[i] = engine_keeps_row(rows[i], tol_) ? 1 : 0;
      }
    }
    // Engine-side structural bounds (absorbed singleton rows tighten).
    linalg::Vector eng_ub = orig_.upper_bounds();
    if (absorb_singleton_rows) {
      for (std::size_t i = 0; i < m; ++i) {
        if (keep[i]) continue;
        std::size_t nz = 0, var = 0;
        double coeff = 0.0;
        for (const auto& [j, v] : rows[i].terms) {
          if (v != 0.0) {
            ++nz;
            var = j;
            coeff = v;
          }
        }
        if (nz != 1 || rows[i].sense == Sense::kEq) continue;
        const double bound = rows[i].rhs / coeff;
        if ((rows[i].sense == Sense::kLe) == (coeff > 0.0)) {
          eng_ub[var] = std::min(eng_ub[var], std::max(bound, 0.0));
        }
      }
    }
    std::size_t m_eng = 0;
    std::vector<std::size_t> eng_row(m, kNone), slack_of(m, kNone);
    for (std::size_t i = 0; i < m; ++i) {
      if (keep[i]) eng_row[i] = m_eng++;
    }
    std::size_t next = n;
    for (std::size_t i = 0; i < m; ++i) {
      if (keep[i] && rows[i].sense != Sense::kEq) slack_of[i] = next++;
    }
    const std::size_t first_art = next;

    // Reduced-problem engine layout (its absorb pass finds nothing:
    // presolve already folded every absorbable row).
    const std::size_t mr = reduced_.num_constraints();
    const std::size_t nr = reduced_.num_variables();
    std::vector<std::size_t> red_slack_row(mr, kNone);
    std::size_t rnext = nr;
    for (std::size_t r = 0; r < mr; ++r) {
      if (reduced_.constraints()[r].sense != Sense::kEq) {
        red_slack_row[r] = rnext++;
      }
    }
    const std::size_t red_first_art = rnext;

    std::vector<std::size_t> orig_col(nr, kNone), orig_row(mr, kNone);
    for (std::size_t j = 0; j < n; ++j) {
      if (col_map_[j] != kNone) orig_col[col_map_[j]] = j;
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (row_map_[i] != kNone) orig_row[row_map_[i]] = i;
    }

    // Duplicate-merge closure: for each surviving primary, the members
    // whose mass it carried (used to re-seat a basic merged column on
    // whichever member ended strictly inside its box).
    std::vector<std::vector<std::size_t>> dup_members(n);
    for (const Action& a : stack_) {
      if (a.kind == Action::kColDuplicate) {
        std::size_t root = a.other;
        while (!col_alive_[root]) {
          bool hop = false;
          for (const Action& b : stack_) {
            if (b.kind == Action::kColDuplicate && b.col == root) {
              root = b.other;
              hop = true;
              break;
            }
          }
          if (!hop) break;
        }
        dup_members[root].push_back(a.col);
      }
    }
    auto at_eng_upper = [&](std::size_t j) {
      return std::isfinite(eng_ub[j]) && eng_ub[j] > tol_ &&
             sol.x[j] >= eng_ub[j] - tol_;
    };

    basis_out->basic.assign(m_eng, kNone);
    basis_out->at_upper.assign(first_art + m_eng, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (col_map_[j] != kNone && red_basis != nullptr &&
          col_map_[j] < red_basis->at_upper.size()) {
        basis_out->at_upper[j] = red_basis->at_upper[col_map_[j]];
      } else if (col_map_[j] == kNone) {
        basis_out->at_upper[j] = at_eng_upper(j) ? 1 : 0;
      }
    }
    // Pass A: rows that survived into the reduced problem take the
    // reduced basis's column for that row, mapped back.
    std::vector<char> used(n, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (!keep[i] || row_map_[i] == kNone) continue;
      const std::size_t er = eng_row[i];
      const std::size_t r = row_map_[i];
      const std::size_t bcol = red_basis->basic[r];
      std::size_t oc;
      if (bcol < nr) {
        oc = orig_col[bcol];
        if (!dup_members[oc].empty()) {
          // A basic merged column re-seats on the member that ended
          // strictly inside its box (greedy splitting leaves at most
          // one); every displaced member rests on the bound it landed
          // on.
          const std::size_t primary = oc;
          for (const std::size_t e : dup_members[primary]) {
            if (sol.x[e] > tol_ && sol.x[e] < eng_ub[e] - tol_) {
              oc = e;
              break;
            }
          }
          basis_out->at_upper[primary] = at_eng_upper(primary) ? 1 : 0;
          for (const std::size_t e : dup_members[primary]) {
            basis_out->at_upper[e] = at_eng_upper(e) ? 1 : 0;
          }
        }
        basis_out->at_upper[oc] = 0;
        used[oc] = 1;
      } else if (bcol < red_first_art) {
        // Reduced slack: find its row, map to the original slack.
        std::size_t rr = kNone;
        for (std::size_t r2 = 0; r2 < mr; ++r2) {
          if (red_slack_row[r2] == bcol) {
            rr = r2;
            break;
          }
        }
        oc = slack_of[orig_row[rr]];
      } else {
        oc = first_art + eng_row[orig_row[bcol - red_first_art]];
      }
      basis_out->basic[er] = oc;
    }

    // Pass B: rows presolve removed but the engine keeps.  The
    // reconstructed multiplier decides the seat.  y_i == 0: the row's
    // slack (feasible — the row holds at sol.x) or a degenerate
    // artificial for an equality row, both of which price the row at
    // zero, matching the reconstruction.  y_i != 0: a zero slack or
    // artificial would pin the engine's recomputed dual at y_i = 0 and
    // wreck dual feasibility problem-wide, so seat the original column
    // whose reduced cost pinned y_i during reconstruction — its total
    // reduced cost is zero, exactly the basic condition.  (If no such
    // column is free the slack/artificial fallback stands; the warm
    // start then falls back to a cold solve, costing pivots, not
    // correctness.)
    auto total_rc = [&](std::size_t j) {
      double rc = orig_.costs()[j];
      for (const auto& [k, v] : cols_[j]) rc -= v * sol.duals[k];
      return rc;
    };
    for (std::size_t i = 0; i < m; ++i) {
      if (!keep[i] || row_map_[i] != kNone) continue;
      const std::size_t er = eng_row[i];
      std::size_t seat = kNone;
      if (std::abs(sol.duals[i]) > 1e-11) {
        for (const auto& [j, v] : rows_[i]) {
          if (used[j] || v == 0.0) continue;
          if (std::abs(total_rc(j)) <= 1e-6 * (1.0 + std::abs(orig_.costs()[j]))) {
            seat = j;
            break;
          }
        }
      }
      if (seat != kNone) {
        used[seat] = 1;
        basis_out->at_upper[seat] = 0;
        basis_out->basic[er] = seat;
      } else {
        basis_out->basic[er] =
            slack_of[i] != kNone ? slack_of[i] : first_art + er;
      }
    }
  }
  return sol;
}

}  // namespace dpm::lp
