#include "lp/revised_simplex.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "linalg/indexed_vector.h"
#include "linalg/sparse_lu.h"
#include "lp/presolve.h"
#include "robust/probe.h"

namespace dpm::lp {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifdef DPM_VERIFY_SPARSE
/// Verification-build invariant breach: a structured throw the
/// supervisor types as invariant-violation (the word "invariant" in
/// the message is the contract), replacing the old fprintf+abort.
[[noreturn]] void invariant_failure(const char* check, std::size_t i,
                                    double dense_val, double sparse_val) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "revised-simplex invariant: %s i=%zu dense=%.17g sparse=%.17g",
                check, i, dense_val, sparse_val);
  throw LpError(buf);
}
#endif

// Process-wide hypersparsity odometer, aggregated once per solve from
// each factorization's cumulative counters (see sweep_telemetry()).
std::atomic<std::uint64_t> g_sparse_sweeps{0};
std::atomic<std::uint64_t> g_dense_sweeps{0};
std::atomic<std::uint64_t> g_touched_entries{0};
std::atomic<std::uint64_t> g_block_sweeps{0};
std::atomic<std::uint64_t> g_block_entries{0};

// Standard-form engine: columns [structural | slack/surplus | artificial]
// over equality rows A x = b, 0 <= x <= u (u = +inf unless the problem
// bounds the variable or a singleton row was absorbed into the bound
// set).  Artificials carry an implicit upper bound of zero outside
// phase 1 and are never allowed to enter.
class RevisedSimplex {
 public:
  RevisedSimplex(const LpProblem& p, const RevisedSimplexOptions& opt)
      : opt_(opt),
        n_struct_(p.num_variables()),
        factor_(opt.refactor_interval, 1e-11, opt.refactor_work_ratio) {
    // --- bound setup + singleton-row absorption ----------------------
    upper_struct_.assign(n_struct_, kInf);
    for (std::size_t j = 0; j < n_struct_; ++j) {
      upper_struct_[j] = p.upper_bounds()[j];
    }
    std::vector<char> keep_row(p.num_constraints(), 1);
    if (opt_.absorb_singleton_rows) {
      for (std::size_t i = 0; i < p.num_constraints(); ++i) {
        if (!absorb_row(p.constraints()[i], keep_row[i])) {
          infeasible_by_bounds_ = true;
          return;
        }
      }
    }

    // --- row remap + structural columns ------------------------------
    row_map_.assign(p.num_constraints(), kNone);
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      if (keep_row[i]) {
        row_map_[i] = m_;
        ++m_;
      }
    }
    const linalg::SparseMatrixCsc a = p.constraint_csc();
    cols_.reserve(n_struct_ + 2 * m_);
    for (std::size_t j = 0; j < n_struct_; ++j) {
      linalg::SparseColumn col;
      col.reserve(a.col_end(j) - a.col_begin(j));
      for (std::size_t k = a.col_begin(j); k < a.col_end(j); ++k) {
        const std::size_t i = row_map_[a.row_indices()[k]];
        if (i != kNone) col.emplace_back(i, a.values()[k]);
      }
      cols_.push_back(std::move(col));
    }

    // --- logical columns ---------------------------------------------
    rhs_.resize(m_);
    slack_of_row_.assign(m_, kNone);
    for (std::size_t i0 = 0; i0 < p.num_constraints(); ++i0) {
      if (!keep_row[i0]) continue;
      const Constraint& c = p.constraints()[i0];
      const std::size_t i = row_map_[i0];
      rhs_[i] = c.rhs;
      if (c.sense != Sense::kEq) {
        slack_of_row_[i] = cols_.size();
        cols_.push_back({{i, c.sense == Sense::kLe ? 1.0 : -1.0}});
      }
    }
    first_artificial_ = cols_.size();
    for (std::size_t i = 0; i < m_; ++i) {
      cols_.push_back({{i, rhs_[i] < 0.0 ? -1.0 : 1.0}});
    }
    n_cols_ = cols_.size();

    upper_.assign(n_cols_, kInf);
    for (std::size_t j = 0; j < n_struct_; ++j) {
      upper_[j] = upper_struct_[j];
      if (std::isfinite(upper_[j])) finite_ub_cols_.push_back(j);
    }
    at_upper_.assign(n_cols_, 0);

    cost2_.assign(n_cols_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) cost2_[j] = p.costs()[j];
    cost1_.assign(n_cols_, 0.0);
    for (std::size_t j = first_artificial_; j < n_cols_; ++j) cost1_[j] = 1.0;

    // Row-wise mirror of the pivotable columns (structural + logical,
    // never artificial).  The dual ratio test walks the pivot row's
    // support through this view, touching only columns that intersect
    // it — O(nnz of those rows) instead of a full O(nnz(A)) scan.
    rows_.assign(m_, {});
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      for (const auto& [r, v] : cols_[j]) rows_[r].emplace_back(j, v);
    }

    // Hypersparse pivot-loop scratch (sized once; clear() is O(touched)).
    dwork_.resize(m_);
    rhowork_.resize(m_);
    tauwork_.resize(m_);
    flipwork_.resize(m_);
    alpha_acc_.assign(first_artificial_, 0.0);
    alpha_mark_.assign(first_artificial_, 0);
  }

  bool infeasible_by_bounds() const noexcept { return infeasible_by_bounds_; }
  bool is_artificial(std::size_t j) const { return j >= first_artificial_; }

  /// Cold start: slack basis where the slack sign admits it, artificial
  /// elsewhere.  Returns true when any artificial entered the basis
  /// (phase 1 required).
  bool install_cold_basis() {
    basis_.assign(m_, kNone);
    std::fill(at_upper_.begin(), at_upper_.end(), 0);
    bool need_phase1 = false;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t s = slack_of_row_[i];
      if (s != kNone) {
        const double sigma = cols_[s].front().second;
        if (rhs_[i] / sigma >= 0.0) {
          basis_[i] = s;
          continue;
        }
      }
      basis_[i] = first_artificial_ + i;
      need_phase1 = true;
    }
    rebuild_in_basis();
    return need_phase1;
  }

  /// Crash start: for each original constraint row the caller nominated
  /// a structural column (see RevisedSimplexOptions::crash_columns);
  /// rows without a valid, unused nomination complete with their slack,
  /// or an artificial where the row has none (equality rows).  Returns
  /// false when the nomination array has the wrong length or no seed
  /// landed — the caller falls back to install_cold_basis.  Whether the
  /// seeded set actually factors is decided by the refactorize that
  /// follows, exactly as for a warm basis.
  bool install_crash_basis(const std::vector<std::size_t>& crash) {
    if (crash.size() != row_map_.size()) return false;
    basis_.assign(m_, kNone);
    std::fill(at_upper_.begin(), at_upper_.end(), 0);
    crash_seeded_.assign(n_struct_, 0);
    std::size_t seeded = 0;
    for (std::size_t i0 = 0; i0 < row_map_.size(); ++i0) {
      const std::size_t i = row_map_[i0];
      if (i == kNone) continue;
      const std::size_t j = crash[i0];
      if (j < n_struct_ && !crash_seeded_[j] && !cols_[j].empty() &&
          upper_[j] > 0.0) {
        crash_seeded_[j] = 1;
        basis_[i] = j;
        ++seeded;
        continue;
      }
      const std::size_t s = slack_of_row_[i];
      basis_[i] = s != kNone ? s : first_artificial_ + i;
    }
    if (seeded == 0) return false;
    rebuild_in_basis();
    return true;
  }

  /// Crash-seeded structural columns still basic right now.  Read at
  /// optimality, each one is a basic column the simplex never had to
  /// pivot in — the deterministic "pivots saved" proxy behind
  /// SimplexStats::crash_pivots_saved.
  std::size_t crash_survivors() const {
    std::size_t count = 0;
    for (const std::size_t j : basis_) {
      if (j < n_struct_ && crash_seeded_[j]) ++count;
    }
    return count;
  }

  bool install_warm_basis(const SimplexBasis& warm) {
    if (warm.basic.size() != m_) return false;
    std::vector<char> seen(n_cols_, 0);
    for (const std::size_t j : warm.basic) {
      if (j >= n_cols_) return false;
      if (seen[j] != 0) return false;  // repeated column: structural junk
      seen[j] = 1;
    }
    basis_ = warm.basic;
    // Restore nonbasic bound status.  Only columns whose bound is
    // finite *now* may rest at upper — a bound relaxed to +inf since
    // the basis was saved drops its column to the lower bound (the
    // dual-feasibility gate below falls back cold if that breaks
    // optimality conditions).
    std::fill(at_upper_.begin(), at_upper_.end(), 0);
    if (warm.at_upper.size() == n_cols_) {
      for (const std::size_t j : finite_ub_cols_) {
        at_upper_[j] = warm.at_upper[j];
      }
    }
    rebuild_in_basis();
    for (const std::size_t j : basis_) at_upper_[j] = 0;
    return true;
  }

  /// Saves the basis + nonbasic bound flags for a later warm start.
  void save_basis(SimplexBasis* out) const {
    if (out == nullptr) return;
    out->basic = basis_;
    out->at_upper.assign(at_upper_.begin(), at_upper_.end());
  }

  bool refactorize() {
    std::vector<linalg::SparseColumn> bcols(m_);
    for (std::size_t i = 0; i < m_; ++i) bcols[i] = cols_[basis_[i]];
    const double t0 = now_ms();
    const bool ok = factor_.refactorize(m_, bcols);
    if (opt_.stats != nullptr) {
      opt_.stats->refactorizations += 1;
      opt_.stats->refactor_ms += now_ms() - t0;
      if (ok) opt_.stats->factor_nonzeros = factor_.factor_nonzeros();
    }
    return ok;
  }

  // Timed triangular-sweep wrappers: every B^{-1}/B^{-T} application in
  // the solver funnels through these two so SimplexStats can report the
  // update-vs-sweep cost split without instrumenting each call site.
  // `entering = true` marks the ftran of a candidate entering column,
  // whose intermediate result the factorization caches as the spike of
  // the upcoming Forrest-Tomlin update.
  void solve_ftran(linalg::Vector& v, bool entering = false) const {
    if (opt_.stats == nullptr) {
      factor_.ftran(v, entering);
      return;
    }
    const double t0 = now_ms();
    factor_.ftran(v, entering);
    opt_.stats->sweep_ms += now_ms() - t0;
  }

  void solve_btran(linalg::Vector& v) const {
    if (opt_.stats == nullptr) {
      factor_.btran(v);
      return;
    }
    const double t0 = now_ms();
    factor_.btran(v);
    opt_.stats->sweep_ms += now_ms() - t0;
  }

  // Sparse-rhs counterparts: the pivot loop's entering-column ftrans and
  // pivot-row btrans carry a handful of nonzeros, so they take the
  // Gilbert–Peierls reachability path (bitwise-identical results,
  // O(touched) cost; dense fallback is handled inside the factorization).
  void solve_ftran(linalg::IndexedVector& v, bool entering = false) const {
#ifdef DPM_VERIFY_SPARSE
    for (std::size_t i = 0; i < m_; ++i) {
      if (v.values[i] != 0.0 && !v.dense() && !v.in_pattern(i)) {
        invariant_failure("FTRAN input pattern", i, 0.0, v.values[i]);
      }
    }
    linalg::Vector dense = v.values;
    factor_.ftran(dense, false);
#endif
    const double t0 = opt_.stats != nullptr ? now_ms() : 0.0;
    factor_.ftran_sparse(v, entering);
    if (opt_.stats != nullptr) opt_.stats->sweep_ms += now_ms() - t0;
#ifdef DPM_VERIFY_SPARSE
    for (std::size_t i = 0; i < m_; ++i) {
      if (std::memcmp(&dense[i], &v.values[i], sizeof(double)) != 0) {
        invariant_failure("FTRAN mismatch", i, dense[i], v.values[i]);
      }
      if (v.values[i] != 0.0 && !v.dense() && !v.in_pattern(i)) {
        invariant_failure("FTRAN pattern miss", i, dense[i], v.values[i]);
      }
    }
#endif
  }

  void solve_btran(linalg::IndexedVector& v) const {
#ifdef DPM_VERIFY_SPARSE
    for (std::size_t i = 0; i < m_; ++i) {
      if (v.values[i] != 0.0 && !v.dense() && !v.in_pattern(i)) {
        invariant_failure("BTRAN input pattern", i, 0.0, v.values[i]);
      }
    }
    linalg::Vector dense = v.values;
    factor_.btran(dense);
#endif
    const double t0 = opt_.stats != nullptr ? now_ms() : 0.0;
    factor_.btran_sparse(v);
    if (opt_.stats != nullptr) opt_.stats->sweep_ms += now_ms() - t0;
#ifdef DPM_VERIFY_SPARSE
    for (std::size_t i = 0; i < m_; ++i) {
      if (std::memcmp(&dense[i], &v.values[i], sizeof(double)) != 0) {
        invariant_failure("BTRAN mismatch", i, dense[i], v.values[i]);
      }
      if (v.values[i] != 0.0 && !v.dense() && !v.in_pattern(i)) {
        invariant_failure("BTRAN pattern miss", i, dense[i], v.values[i]);
      }
    }
#endif
  }

  void recompute_xb() {
    xb_ = rhs_;
    for (const std::size_t j : finite_ub_cols_) {
      if (!at_upper_[j]) continue;
      for (const auto& [r, v] : cols_[j]) xb_[r] -= upper_[j] * v;
    }
    solve_ftran(xb_);
  }

  linalg::Vector duals(const linalg::Vector& cost) const {
    linalg::Vector y(m_);
    for (std::size_t i = 0; i < m_; ++i) y[i] = cost[basis_[i]];
    solve_btran(y);
    return y;
  }

  /// Recomputes the maintained dual vector y_ exactly (one full btran).
  /// Between refreshes the pivot loops update y_ incrementally — one
  /// rounding step of drift per pivot — so a refresh runs at every
  /// refactorization, on phase entry, and before optimality is declared.
  void refresh_y(const linalg::Vector& cost) {
    y_ = duals(cost);
    y_pivots_ = 0;
    y_stale_ = false;
  }

  double column_dot(std::size_t j, const linalg::Vector& y) const {
    double acc = 0.0;
    for (const auto& [r, v] : cols_[j]) acc += v * y[r];
    return acc;
  }

  double primal_infeasibility() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      worst = std::max(worst, -xb_[i]);
      const double u = upper_[basis_[i]];
      if (std::isfinite(u)) worst = std::max(worst, xb_[i] - u);
    }
    return worst;
  }

  /// True when any artificial column sits in the basis (a redundant
  /// row's placeholder, legitimate only at value zero).  Warm starts
  /// must refuse such bases: a rhs change can push the artificial
  /// positive — which neither the boxed dual simplex (an artificial's
  /// implicit zero cap is not in upper_, so it sees no violation) nor
  /// phase 2 (it only caps artificial growth) can repair — and the
  /// dual phase's infeasibility certificate is only sound when every
  /// basic variable is genuinely sign-constrained.  An artificial-free
  /// basis stays artificial-free: no phase ever lets one enter.
  bool basis_has_artificial() const {
    for (const std::size_t j : basis_) {
      if (is_artificial(j)) return true;
    }
    return false;
  }

  double dual_infeasibility() const {
    const linalg::Vector y = duals(cost2_);
    double worst = 0.0;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (in_basis_[j]) continue;
      const double rc = cost2_[j] - column_dot(j, y);
      // At-lower columns need rc >= 0, at-upper columns rc <= 0.
      worst = std::max(worst, at_upper_[j] ? rc : -rc);
    }
    return worst;
  }

  /// True when the cold slack/artificial basis is already dual feasible:
  /// its basic columns all cost zero, so y = 0 exactly, and every
  /// at-lower nonbasic prices at rc_j = c_j >= 0.  The MDP LPs (all
  /// nonnegative power/latency costs) hit this on every cold solve.
  bool dual_cold_eligible() const {
    // Disabled after measurement: on the balance-equation LPs the
    // phase-1-free dual route runs ~2x the pivots of classic two-phase
    // (each paying an extra steepest-edge ftran), a 4x wall-time loss
    // at n*na = 20k.  The boxed dual earns its keep on warm repairs,
    // where the pivot count is small by construction; cold solves keep
    // the primal phases.  (It also selects a different vertex on
    // degenerate optima, which the small case studies are sensitive
    // to.)  Kept compilable behind this gate for future experiments.
    constexpr bool kDualColdStart = false;
    if (!kDualColdStart || m_ < 512) return false;
    for (std::size_t j = 0; j < n_struct_; ++j) {
      if (cost2_[j] < 0.0) return false;
    }
    return true;
  }

  /// Phase-1-free cold start support: an explicit zero upper bound
  /// makes the boxed dual see a basic artificial at positive value as a
  /// bound violation and drive it out — the feasibility work of phase 1
  /// done by dual pivots that simultaneously optimize phase 2's cost.
  /// uncap restores the implicit-cap convention the primal phases use;
  /// it MUST run before falling back to classic phase 1 (a finite zero
  /// bound would freeze artificials in the phase-1 ratio test).
  void cap_artificials() {
    for (std::size_t j = first_artificial_; j < n_cols_; ++j) {
      upper_[j] = 0.0;
    }
  }
  void uncap_artificials() {
    for (std::size_t j = first_artificial_; j < n_cols_; ++j) {
      upper_[j] = kInf;
    }
  }

  /// Folds the factorization's cumulative hypersparsity counters into
  /// the per-solve stats sink and the process-wide odometer.  Called
  /// exactly once, when the engine is done (the counters are cumulative
  /// over the factorization's life).
  void flush_sweep_telemetry() const {
    const std::uint64_t s = factor_.sparse_sweeps();
    const std::uint64_t dn = factor_.dense_sweeps();
    const std::uint64_t t = factor_.touched_entries();
    const std::uint64_t bs = factor_.block_sweeps();
    const std::uint64_t be = factor_.block_entries();
    if (opt_.stats != nullptr) {
      opt_.stats->sparse_sweeps += s;
      opt_.stats->dense_sweeps += dn;
      opt_.stats->touched_entries += t;
      opt_.stats->block_sweeps += bs;
      opt_.stats->block_entries += be;
    }
    g_sparse_sweeps.fetch_add(s, std::memory_order_relaxed);
    g_dense_sweeps.fetch_add(dn, std::memory_order_relaxed);
    g_touched_entries.fetch_add(t, std::memory_order_relaxed);
    g_block_sweeps.fetch_add(bs, std::memory_order_relaxed);
    g_block_entries.fetch_add(be, std::memory_order_relaxed);
  }

  struct PhaseResult {
    LpStatus status = LpStatus::kIterationLimit;
    std::size_t iterations = 0;
    const char* note = nullptr;  // failure detail (see LpSolution::note)
  };

  /// Primal simplex minimizing `cost` from the current factorized basis.
  /// `artificial_cap` enforces the zero upper bound on basic artificials
  /// (phase 2); phase 1 lets them move freely down to zero.
  ///
  /// Hypersparse inner loop: the entering column's ftran and the pivot
  /// row's btran ride IndexedVectors through the reachability solves,
  /// and every O(m) scan they used to feed (ratio test, xb update) is
  /// restricted to the result's support.  Duals are maintained
  /// incrementally (y' = y + (rc_q/alpha_r) rho_r) instead of a full
  /// btran per iteration; optimality is only declared after re-pricing
  /// against freshly recomputed duals.
  PhaseResult primal(const linalg::Vector& cost, bool artificial_cap) {
    PhaseResult res;
    std::size_t stall = 0;
    bool bland = false;
    double best_obj = std::numeric_limits<double>::infinity();
    if (devex_pricing()) devex_.assign(n_cols_, 1.0);
    y_stale_ = true;

    while (res.iterations < opt_.max_iterations) {
      if (robust::deadline_expired()) {
        res.status = LpStatus::kDeadline;
        res.note = "deadline";
        return res;
      }
      if (!factor_.valid()) {  // numerically wedged
        res.status = LpStatus::kNumericalFailure;
        res.note = "singular-refactorization";
        return res;
      }
      if (factor_.needs_refactor()) {
        if (!refactorize()) {
          res.status = LpStatus::kNumericalFailure;
          res.note = "singular-refactorization";
          return res;
        }
        recompute_xb();
        y_stale_ = true;
      }
      if (y_stale_) refresh_y(cost);

      const auto [enter, enter_rc] = price(cost, y_, bland);
      if (enter == kNone) {
        if (y_pivots_ > 0) {
          // The maintained duals have drifted since the last exact
          // btran; never certify optimality off them.
          refresh_y(cost);
          continue;
        }
        res.status = LpStatus::kOptimal;
        return res;
      }
      // sigma: +1 when the entering variable rises off its lower bound,
      // -1 when it falls off its upper bound; basics move by -sigma*t*d.
      const double sigma = at_upper_[enter] ? -1.0 : 1.0;

      // --- sparse ftran + two-sided ratio test over d's support ---
      // Off-support rows have d[i] exactly 0, for which leave_ratio is
      // +inf by definition — skipping them is exact, not approximate.
      linalg::IndexedVector& d = dwork_;
      d.clear();
      for (const auto& [r, v] : cols_[enter]) d.add(r, v);
      solve_ftran(d, /*entering=*/true);

      const auto ratio = [&](std::size_t i) {
        return leave_ratio(i, sigma * d.values[i], artificial_cap);
      };
      double best_ratio = kInf;
      for (const std::size_t i : d.pattern) {
        best_ratio = std::min(best_ratio, ratio(i));
      }
      const double own_bound = upper_[enter];  // flip distance
      if (best_ratio == kInf && own_bound == kInf) {
        res.status = LpStatus::kUnbounded;
        return res;
      }

      if (own_bound <= best_ratio) {
        // Bound flip: the entering variable crosses to its other bound
        // before any basic variable blocks — no basis change, no
        // factorization update.
        for (const std::size_t i : d.pattern) {
          xb_[i] -= sigma * own_bound * d.values[i];
        }
        at_upper_[enter] ^= 1;
        ++res.iterations;
        if (opt_.stats != nullptr) opt_.stats->bound_flips += 1;
      } else {
        const double cut = best_ratio + 1e-9 * (1.0 + std::abs(best_ratio));
        std::size_t leave = kNone;
        double best_pivot = 0.0;
        for (const std::size_t i : d.pattern) {
          if (ratio(i) > cut) continue;
          if (bland) {
            if (leave == kNone || basis_[i] < basis_[leave]) leave = i;
          } else if (std::abs(d.values[i]) > best_pivot) {
            best_pivot = std::abs(d.values[i]);
            leave = i;
          }
        }

        const double theta = std::max(best_ratio, 0.0);
        for (const std::size_t i : d.pattern) {
          xb_[i] -= sigma * theta * d.values[i];
        }
        // Which bound does the leaving variable settle at?
        const std::size_t leaving_col = basis_[leave];
        at_upper_[leaving_col] =
            (sigma * d.values[leave] < 0.0 &&
             std::isfinite(upper_[leaving_col]))
                ? 1
                : 0;
        xb_[leave] = at_upper_[enter] ? upper_[enter] - theta : theta;

        // One sparse btran of the pivot row serves both the Devex
        // weight update and the incremental dual update.
        linalg::IndexedVector& rho = rhowork_;
        rho.clear();
        rho.set(leave, 1.0);
        solve_btran(rho);
        if (devex_pricing() && !bland) update_devex(enter, leave, d, rho);
        const double theta_d = enter_rc / d.values[leave];
        for (const std::size_t k : rho.pattern) {
          y_[k] += theta_d * rho.values[k];
        }
        ++y_pivots_;
        change_basis(leave, enter, d.values);
        ++res.iterations;
      }

      double obj = 0.0;
      for (std::size_t i = 0; i < m_; ++i) obj += cost[basis_[i]] * xb_[i];
      for (const std::size_t j : finite_ub_cols_) {
        if (at_upper_[j]) obj += cost[j] * upper_[j];
      }
      if (!std::isfinite(obj)) {
        // A NaN/Inf reached the basic values (poisoned sweep, overflow):
        // no pivot can repair it, and comparisons below would silently
        // misbehave.  Surface it as a typed failure instead.
        res.status = LpStatus::kNumericalFailure;
        res.note = "nonfinite-values";
        return res;
      }
      if (obj < best_obj - 1e-12) {
        best_obj = obj;
        stall = 0;
        // Progress means we are off the degenerate plateau: resume
        // aggressive pricing.  Termination is still guaranteed — the
        // objective milestones strictly decrease, and each Bland
        // episode between them terminates on its own.
        bland = false;
      } else if (++stall >=
                 (bland ? opt_.bland_stall_abort : opt_.stall_limit)) {
        if (bland) return res;  // give up; caller retries perturbed
        bland = true;
        stall = 0;
        // Anti-cycling wants the sharpest reduced costs available.
        y_stale_ = true;
      }
    }
    return res;
  }

  /// Boxed dual simplex from a dual-feasible basis — the warm-restart
  /// engine after a rhs move or a bound change, and (via the capped
  /// artificials of the dual-cold path) a phase-1 replacement whenever
  /// the cold basis already prices dual feasible.  The leaving basic is
  /// chosen by dual steepest edge (violation^2 / ||B^{-T}e_i||^2, exact
  /// Forrest–Goldfarb weight recurrence); the dual ratio test runs over
  /// bounded nonbasics at both bounds; and candidates whose whole bound
  /// range is absorbed before the violation is covered are bound
  /// *flipped* instead of pivoted (the long-step rule — the dual step
  /// passes their reduced-cost breakpoint, so the flip preserves dual
  /// feasibility).  Stops as soon as the basis is primal feasible;
  /// returns kOptimal in that case (a phase-2 polish confirms
  /// optimality).
  ///
  /// Hypersparse inner loop: xb is maintained incrementally (all flips
  /// of an iteration batched into ONE sparse ftran, plus the pivot
  /// step over d's support) instead of a full recompute per iteration;
  /// alpha_j = rho^T a_j is accumulated over rho's support through the
  /// row-wise matrix; duals update incrementally off the same rho.
  /// Feasibility is only declared after re-scanning freshly recomputed
  /// basic values.
  PhaseResult dual(std::size_t max_iters) {
    PhaseResult res;
    recompute_xb();
    refresh_y(cost2_);
    dse_w_.assign(m_, 1.0);
    std::size_t xb_pivots = 0;   // incremental-xb steps since last solve
    std::size_t bad_pivots = 0;  // consecutive drifted-pivot resyncs

    while (res.iterations < max_iters) {
      if (robust::deadline_expired()) {
        res.status = LpStatus::kDeadline;
        res.note = "deadline";
        return res;
      }
      if (!factor_.valid()) {
        res.status = LpStatus::kNumericalFailure;
        res.note = "singular-refactorization";
        return res;
      }
      if (factor_.needs_refactor()) {
        if (!refactorize()) {
          res.status = LpStatus::kNumericalFailure;
          res.note = "singular-refactorization";
          return res;
        }
        recompute_xb();
        xb_pivots = 0;
        y_stale_ = true;
      }
      if (y_stale_) refresh_y(cost2_);

      // --- leaving row: steepest-edge-scaled worst bound violation ---
      std::size_t leave = kNone;
      double best_score = 0.0;
      double viol = 0.0;
      bool above_upper = false;
      for (std::size_t i = 0; i < m_; ++i) {
        if (!std::isfinite(xb_[i])) {
          res.status = LpStatus::kNumericalFailure;
          res.note = "nonfinite-values";
          return res;
        }
        double v = -xb_[i];
        bool up = false;
        const double u = upper_[basis_[i]];
        if (std::isfinite(u) && xb_[i] - u > v) {
          v = xb_[i] - u;
          up = true;
        }
        if (v <= opt_.feas_tol) continue;
        const double score = v * v / dse_w_[i];
        if (leave == kNone || score > best_score) {
          best_score = score;
          leave = i;
          viol = v;
          above_upper = up;
        }
      }
      if (leave == kNone) {
        if (xb_pivots > 0) {
          // xb drifts one rounding step per incremental update; never
          // certify feasibility off it.
          recompute_xb();
          xb_pivots = 0;
          continue;
        }
        res.status = LpStatus::kOptimal;
        return res;
      }
      // Sign the leaving basic must move: up toward 0, or down toward u.
      const double dir = above_upper ? -1.0 : 1.0;

      linalg::IndexedVector& rho = rhowork_;
      rho.clear();
      rho.set(leave, 1.0);
      solve_btran(rho);
      // A sorted support makes the alpha accumulation order (and hence
      // every downstream tie-break) deterministic.
      std::sort(rho.pattern.begin(), rho.pattern.end());

      // --- boxed dual ratio test, row-wise ---
      // alpha_j = rho^T a_j accumulated over rho's support: only
      // columns intersecting the pivot row are touched, O(nnz of those
      // rows) instead of a dot product per nonbasic column.
      for (const std::size_t i : rho.pattern) {
        const double ri = rho.values[i];
        if (ri == 0.0) continue;
        for (const auto& [j, v] : rows_[i]) {
          if (!alpha_mark_[j]) {
            alpha_mark_[j] = 1;
            alpha_touched_.push_back(j);
            alpha_acc_[j] = 0.0;
          }
          alpha_acc_[j] += ri * v;
        }
      }
      std::sort(alpha_touched_.begin(), alpha_touched_.end());

      // Eligible: nonbasic j whose feasible move (up from lower, down
      // from upper) pushes the leaving basic toward its violated
      // bound.  Ratio = distance of the reduced cost to its sign
      // boundary per unit of row entry.
      struct Cand {
        std::size_t j;
        double ratio;
        double alpha_abs;
        double rc;
      };
      std::vector<Cand> cands;
      cands.reserve(alpha_touched_.size());
      for (const std::size_t j : alpha_touched_) {
        if (in_basis_[j] || upper_[j] <= 0.0) continue;
        const double alpha = alpha_acc_[j];
        if (std::abs(alpha) <= opt_.pivot_tol) continue;
        const double e = dir * alpha;
        if (at_upper_[j] ? (e <= 0.0) : (e >= 0.0)) continue;
        const double rc = cost2_[j] - column_dot(j, y_);
        const double dist = at_upper_[j] ? std::max(-rc, 0.0)
                                         : std::max(rc, 0.0);
        cands.push_back({j, dist / std::abs(alpha), std::abs(alpha), rc});
      }
      for (const std::size_t j : alpha_touched_) alpha_mark_[j] = 0;
      alpha_touched_.clear();
      if (cands.empty()) {
        res.status = LpStatus::kInfeasible;
        return res;
      }
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) {
                  if (a.ratio != b.ratio) return a.ratio < b.ratio;
                  return a.alpha_abs > b.alpha_abs;
                });

      // --- long step: flip fully absorbed candidates, pivot the rest --
      std::size_t enter = kNone;
      double enter_rc = 0.0;
      double enter_ratio = 0.0;
      double remaining = viol;
      linalg::IndexedVector& flip = flipwork_;
      flip.clear();
      bool any_flip = false;
      for (const Cand& c : cands) {
        const double range = upper_[c.j];
        const bool absorbable =
            std::isfinite(range) && c.alpha_abs * range < remaining;
        if (enter != kNone) {
          // Flip-rich extension: candidates *tied* with the chosen
          // blocker's ratio sit exactly on their reduced-cost sign
          // boundary at the dual step about to be taken, so flipping
          // them preserves dual feasibility — and each flip absorbs
          // more of the violation before the pivot, shrinking the
          // primal step (degenerate ratio-0 ties, the common case on
          // the bound-tightened MDP sweeps, cost nothing at all).
          // The sort makes ties adjacent; past them, stop.
          if (c.ratio > enter_ratio) break;
          if (!absorbable) continue;
        } else if (!absorbable) {
          enter = c.j;
          enter_rc = c.rc;
          enter_ratio = c.ratio;
          continue;
        }
        // Dual bound flip: no basis change.  Batch the basic-value
        // shift u_j * a_j (signed by the flip direction) for one
        // collective ftran below.
        const double s = at_upper_[c.j] ? -1.0 : 1.0;
        at_upper_[c.j] ^= 1;
        remaining -= c.alpha_abs * range;
        for (const auto& [r, v] : cols_[c.j]) flip.add(r, s * range * v);
        any_flip = true;
        if (opt_.stats != nullptr) opt_.stats->bound_flips += 1;
      }
      if (enter == kNone) {
        // Every candidate's whole range was absorbed and violation
        // remains: the dual objective rises along this ray without
        // bound — primal infeasible.
        res.status = LpStatus::kInfeasible;
        return res;
      }
      if (any_flip) {
        solve_ftran(flip);
        for (const std::size_t i : flip.pattern) xb_[i] -= flip.values[i];
      }

      linalg::IndexedVector& d = dwork_;
      d.clear();
      for (const auto& [r, v] : cols_[enter]) d.add(r, v);
      solve_ftran(d, /*entering=*/true);
      const double alpha_r = d.values[leave];
      if (std::abs(alpha_r) <= opt_.pivot_tol) {
        // The factorized pivot disagrees with the ratio-test alpha
        // (update drift): resync everything and retry the row; give up
        // if it keeps happening.
        if (++bad_pivots > 3) return res;
        if (!refactorize()) {
          res.status = LpStatus::kNumericalFailure;
          res.note = "singular-refactorization";
          return res;
        }
        recompute_xb();
        xb_pivots = 0;
        y_stale_ = true;
        continue;
      }
      bad_pivots = 0;

      // --- primal step: entering leaves its bound by t >= 0 ---
      const std::size_t leaving_col = basis_[leave];
      const double target = above_upper ? upper_[leaving_col] : 0.0;
      const double sigma_q = at_upper_[enter] ? -1.0 : 1.0;
      double t = (xb_[leave] - target) / (sigma_q * alpha_r);
      if (!(t > 0.0)) t = 0.0;  // degenerate (or drift-negative) step
      for (const std::size_t i : d.pattern) {
        xb_[i] -= sigma_q * t * d.values[i];
      }
      xb_[leave] = at_upper_[enter] ? upper_[enter] - t : t;

      // --- exact dual steepest-edge recurrence (Forrest–Goldfarb) ---
      // w_r is exact (rho in hand); the others need tau = B^{-1} rho.
      double w_r = 0.0;
      for (const std::size_t k : rho.pattern) {
        w_r += rho.values[k] * rho.values[k];
      }
      linalg::IndexedVector& tau = tauwork_;
      tau.clear();
      for (const std::size_t k : rho.pattern) {
        if (rho.values[k] != 0.0) tau.set(k, rho.values[k]);
      }
      solve_ftran(tau);
      const double inv_a = 1.0 / alpha_r;
      for (const std::size_t i : d.pattern) {
        if (i == leave) continue;
        const double kappa = d.values[i] * inv_a;
        if (kappa == 0.0) continue;
        const double w =
            dse_w_[i] - 2.0 * kappa * tau.values[i] + kappa * kappa * w_r;
        dse_w_[i] = std::max(w, 1e-4);
      }
      dse_w_[leave] = std::max(w_r * inv_a * inv_a, 1e-4);

      // --- incremental duals + basis change ---
      const double theta_d = enter_rc * inv_a;
      for (const std::size_t k : rho.pattern) {
        y_[k] += theta_d * rho.values[k];
      }
      ++y_pivots_;
      at_upper_[leaving_col] = above_upper ? 1 : 0;
      change_basis(leave, enter, d.values);
      // y_stale_ flags that change_basis had to refactorize (and with it
      // recompute xb), so the incremental-drift counter restarts.
      xb_pivots = y_stale_ ? 0 : xb_pivots + 1;
      ++res.iterations;
      if (opt_.stats != nullptr) opt_.stats->dual_iterations += 1;
    }
    return res;
  }

  /// Post-phase-1 cleanup: swap basic artificials for structural or
  /// slack columns where a usable pivot exists; redundant rows keep
  /// their artificial basic at zero (phase 2 never lets it grow).
  void drive_out_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (!factor_.valid()) return;
      if (!is_artificial(basis_[i])) continue;
      linalg::Vector rho(m_, 0.0);
      rho[i] = 1.0;
      solve_btran(rho);
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (in_basis_[j]) continue;
        if (std::abs(column_dot(j, rho)) <= opt_.pivot_tol) continue;
        linalg::Vector d(m_, 0.0);
        for (const auto& [r, v] : cols_[j]) d[r] = v;
        solve_ftran(d, /*entering=*/true);
        change_basis(i, j, d);
        break;
      }
    }
    if (!factor_.valid()) return;
    recompute_xb();
  }

  double phase1_objective() const {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (is_artificial(basis_[i])) obj += std::max(xb_[i], 0.0);
    }
    return obj;
  }

  LpSolution extract(const LpProblem& p) const {
    LpSolution sol;
    sol.status = LpStatus::kOptimal;
    sol.x.assign(n_struct_, 0.0);
    for (const std::size_t j : finite_ub_cols_) {
      if (at_upper_[j] && j < n_struct_) sol.x[j] = upper_[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) {
        sol.x[basis_[i]] = std::max(xb_[i], 0.0);
      }
    }
    sol.objective = p.objective(sol.x);
    // Shadow prices: y = B^{-T} c_B, computed fresh from the final basis
    // (y_ may serve a different cost vector mid-phase), then mapped back
    // through the row remap.  Absorbed singleton rows report 0 — the
    // presolve postsolve reconstructs those from reduced costs instead.
    sol.duals.assign(p.num_constraints(), 0.0);
    if (m_ > 0) {
      linalg::Vector y(m_, 0.0);
      for (std::size_t i = 0; i < m_; ++i) y[i] = cost2_[basis_[i]];
      factor_.btran(y);
      for (std::size_t i0 = 0; i0 < p.num_constraints(); ++i0) {
        if (row_map_[i0] != kNone) sol.duals[i0] = y[row_map_[i0]];
      }
    }
    return sol;
  }

  const std::vector<std::size_t>& basis() const noexcept { return basis_; }
  std::size_t rows() const noexcept { return m_; }
  const linalg::Vector& phase1_cost() const noexcept { return cost1_; }
  const linalg::Vector& phase2_cost() const noexcept { return cost2_; }

 private:
  /// Folds a singleton (or degenerate) row into the bound set.  Returns
  /// false when the row alone is infeasible against x >= 0; sets `keep`
  /// to 0 when the row is absorbed or redundant.
  bool absorb_row(const Constraint& c, char& keep) {
    // Count structural terms with nonzero coefficients.
    std::size_t nz = 0;
    std::size_t var = 0;
    double coeff = 0.0;
    for (const auto& [j, v] : c.terms) {
      if (v != 0.0) {
        ++nz;
        var = j;
        coeff = v;
      }
    }
    if (nz == 0) {
      // 0 (sense) rhs: decide feasibility outright, to the same
      // tolerance phase 1 would apply to the residual.
      const bool ok = c.sense == Sense::kEq
                          ? std::abs(c.rhs) <= opt_.feas_tol
                          : c.sense == Sense::kLe ? c.rhs >= -opt_.feas_tol
                                                  : c.rhs <= opt_.feas_tol;
      if (!ok) return false;
      keep = 0;
      return true;
    }
    if (nz != 1 || c.sense == Sense::kEq) return true;  // keep as a row
    const double bound = c.rhs / coeff;
    const bool is_upper = (c.sense == Sense::kLe) == (coeff > 0.0);
    if (is_upper) {
      // x_var <= bound: infeasible against x >= 0 when bound < 0
      // (beyond the feasibility tolerance; a within-tolerance negative
      // bound clamps to "fixed at zero").
      if (bound < -opt_.feas_tol) return false;
      upper_struct_[var] = std::min(upper_struct_[var], std::max(bound, 0.0));
      keep = 0;
    } else if (bound <= opt_.feas_tol) {
      keep = 0;  // x_var >= bound <~ 0: implied by nonnegativity
    }
    // Positive lower bounds are not representable; keep the row.
    return true;
  }

  void rebuild_in_basis() {
    in_basis_.assign(n_cols_, 0);
    for (const std::size_t j : basis_) in_basis_[j] = 1;
  }

  /// True when column j may price in: nonbasic, not artificial, and not
  /// fixed at zero by a zero upper bound.
  bool price_eligible(std::size_t j) const {
    return !in_basis_[j] && upper_[j] > 0.0;
  }

  /// Devex reference weights active (full-scan or fused with partial
  /// sections)?
  bool devex_pricing() const noexcept {
    return opt_.pricing == RevisedSimplexOptions::Pricing::kSteepestEdge ||
           opt_.pricing == RevisedSimplexOptions::Pricing::kPartialDevex;
  }

  /// Entering-column selection.  Returns {kNone, 0} at optimality.
  /// Bland mode always scans everything by index (anti-cycling); Devex
  /// scans everything weighted; Dantzig scans everything; partial
  /// pricing scans rotating sections and returns the best candidate of
  /// the first section that has one.
  std::pair<std::size_t, double> price(const linalg::Vector& cost,
                                       const linalg::Vector& y, bool bland) {
    const auto reduced_cost = [&](std::size_t j) {
      return cost[j] - column_dot(j, y);
    };
    // Attractive = can improve the objective moving off its bound.
    const auto attractive = [&](std::size_t j, double rc) {
      return at_upper_[j] ? rc > opt_.reduced_cost_tol
                          : rc < -opt_.reduced_cost_tol;
    };
    if (bland) {
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (!price_eligible(j)) continue;
        const double rc = reduced_cost(j);
        if (attractive(j, rc)) return {j, rc};
      }
      return {kNone, 0.0};
    }
    const bool devex = devex_pricing();
    const bool partial =
        opt_.pricing == RevisedSimplexOptions::Pricing::kPartial ||
        opt_.pricing == RevisedSimplexOptions::Pricing::kPartialDevex;
    const std::size_t section =
        !partial ? first_artificial_
                 : (opt_.partial_section != 0
                        ? opt_.partial_section
                        : std::max<std::size_t>(
                              256, 4 * static_cast<std::size_t>(std::sqrt(
                                       static_cast<double>(
                                           first_artificial_)))));

    std::size_t enter = kNone;
    double enter_rc = 0.0;
    double best_score = 0.0;
    std::size_t scanned = 0;
    std::size_t j = partial ? price_start_ % first_artificial_ : 0;
    while (scanned < first_artificial_) {
      const std::size_t chunk =
          std::min(section, first_artificial_ - scanned);
      for (std::size_t k = 0; k < chunk; ++k) {
        if (price_eligible(j)) {
          const double rc = reduced_cost(j);
          if (attractive(j, rc)) {
            double score = std::abs(rc);
            if (devex) score = rc * rc / devex_[j];
            if (enter == kNone || score > best_score) {
              best_score = score;
              enter = j;
              enter_rc = rc;
            }
          }
        }
        if (++j == first_artificial_) j = 0;
      }
      scanned += chunk;
      if (partial && enter != kNone) break;
    }
    if (partial) price_start_ = j;
    section_size_ = section;
    return {enter, enter_rc};
  }

  /// Ratio contributed by basic position i when the entering column
  /// moves the basics by -delta_i per unit step; +inf when i cannot
  /// limit the step.  Decreasing basics stop at zero; increasing basics
  /// stop at their upper bound.  Basic artificials outside phase 1 also
  /// block movement *upward* (their upper bound is zero), which keeps
  /// phase 2 from re-entering infeasibility through a redundant row.
  double leave_ratio(std::size_t i, double delta, bool artificial_cap) const {
    if (delta > opt_.pivot_tol) {
      return std::max(xb_[i], 0.0) / delta;
    }
    if (delta < -opt_.pivot_tol) {
      const std::size_t b = basis_[i];
      if (artificial_cap && is_artificial(b)) {
        return std::max(-xb_[i], 0.0) / -delta;
      }
      if (std::isfinite(upper_[b])) {
        return std::max(upper_[b] - xb_[i], 0.0) / -delta;
      }
    }
    return kInf;
  }

  void change_basis(std::size_t leave, std::size_t enter,
                    const linalg::Vector& d) {
    in_basis_[basis_[leave]] = 0;
    in_basis_[enter] = 1;
    at_upper_[enter] = 0;  // basic variables are never at a bound marker
    basis_[leave] = enter;
    const double t0 = opt_.stats != nullptr ? now_ms() : 0.0;
    const bool updated = factor_.update(leave, d);
    if (opt_.stats != nullptr) {
      opt_.stats->update_ms += now_ms() - t0;
      if (updated) opt_.stats->ft_updates += 1;
    }
    if (!updated) {
      if (refactorize()) {
        recompute_xb();
      }
      // Whatever happened, the maintained duals no longer match the
      // factorization's rounding; a singular refactorization leaves
      // factor_ invalid and the next loop iteration reports it.
      y_stale_ = true;
    }
  }

  /// Devex reference-weight update (Forrest–Goldfarb approximation of
  /// steepest edge): consumes the pivot row `rho` the caller already
  /// btran'd for the incremental dual update (no extra sweep).  Under
  /// fused partial pricing the weight propagation is restricted to the
  /// section the *next* pricing pass will scan first (the rotation
  /// makes that section known now), so the candidates about to compete
  /// carry weights reflecting this pivot at the same cost as the scan
  /// itself.  Columns beyond the next section keep stale (smaller)
  /// weights, which only makes them look slightly more attractive when
  /// their turn comes — a bias, not an error.
  void update_devex(std::size_t enter, std::size_t leave,
                    const linalg::IndexedVector& d,
                    const linalg::IndexedVector& rho) {
    const double dr = d.values[leave];
    if (std::abs(dr) < 1e-12) return;
    const double wq = devex_[enter];
    const bool restrict_scan =
        opt_.pricing == RevisedSimplexOptions::Pricing::kPartialDevex &&
        section_size_ < first_artificial_;
    const std::size_t count =
        restrict_scan ? section_size_ : first_artificial_;
    double max_w = 0.0;
    std::size_t j = restrict_scan ? price_start_ % first_artificial_ : 0;
    for (std::size_t k = 0; k < count; ++k) {
      if (!in_basis_[j] && j != enter) {
        const double alpha = column_dot(j, rho.values);
        if (alpha != 0.0) {
          const double cand = (alpha / dr) * (alpha / dr) * wq;
          if (cand > devex_[j]) devex_[j] = cand;
          max_w = std::max(max_w, devex_[j]);
        }
      }
      if (++j == first_artificial_) j = 0;
    }
    devex_[basis_[leave]] = std::max(wq / (dr * dr), 1.0);
    if (max_w > 1e8) devex_.assign(n_cols_, 1.0);  // reference reset
  }

  RevisedSimplexOptions opt_;
  std::size_t m_ = 0;
  std::size_t n_struct_ = 0;
  std::size_t n_cols_ = 0;
  std::size_t first_artificial_ = 0;
  bool infeasible_by_bounds_ = false;
  std::vector<linalg::SparseColumn> cols_;
  std::vector<std::size_t> slack_of_row_;
  std::vector<std::size_t> row_map_;  // original row -> engine row / kNone
  linalg::Vector rhs_;
  linalg::Vector upper_struct_;  // structural bounds incl. absorbed rows
  linalg::Vector upper_;         // per standard-form column
  std::vector<std::size_t> finite_ub_cols_;
  std::vector<char> at_upper_;
  linalg::Vector cost1_, cost2_;
  std::vector<std::size_t> basis_;
  std::vector<char> in_basis_;
  std::vector<char> crash_seeded_;  // structural columns a crash seeded
  linalg::Vector xb_;
  linalg::Vector devex_;
  std::size_t price_start_ = 0;
  std::size_t section_size_ = 0;  // last pricing section, for the
                                  // section-local Devex weight update
  // Row-wise mirror of cols_[0..first_artificial_) for the dual ratio
  // test's support-driven alpha accumulation.
  std::vector<linalg::SparseColumn> rows_;
  // Maintained dual vector (see refresh_y) + drift bookkeeping.
  linalg::Vector y_;
  std::size_t y_pivots_ = 0;
  bool y_stale_ = true;
  // Dual steepest-edge weights, one per basis row.
  linalg::Vector dse_w_;
  // Hypersparse pivot-loop scratch: entering column, pivot row, DSE
  // tau, batched flip rhs, and the dual ratio test's alpha scatter.
  linalg::IndexedVector dwork_, rhowork_, tauwork_, flipwork_;
  linalg::Vector alpha_acc_;
  std::vector<char> alpha_mark_;
  std::vector<std::size_t> alpha_touched_;
  linalg::BasisFactorization factor_;
};

LpSolution run_phases(RevisedSimplex& engine, const LpProblem& problem,
                      const RevisedSimplexOptions& opt,
                      const SimplexBasis* warm, SimplexBasis* basis_out) {
  LpSolution sol;
  if (engine.infeasible_by_bounds()) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }

  // --- warm-started path -------------------------------------------
  // The basis stays dual feasible under rhs moves and bound changes
  // alike (neither touches the costs), so the boxed dual simplex can
  // repair whichever primal infeasibility the perturbation introduced.
  bool warm_done = false;
  if (warm != nullptr && !warm->empty()) {
    // Fault injection: a corrupted warm basis is detected before the
    // install and surfaces as a structured failure — the supervisor's
    // retry rung re-reads the caller's pristine basis and reproduces
    // the fault-free pivot trajectory exactly.  (A structurally
    // incompatible basis below still falls through to the cold path:
    // that is a stale hand-off, not a fault.)
    if (robust::probe(robust::FaultSite::kWarmBasis)) {
      sol.status = LpStatus::kNumericalFailure;
      sol.note = "warm-basis-corrupted";
      return sol;
    }
    const bool installed = engine.install_warm_basis(*warm);
    if (installed && !engine.refactorize()) {
      // A basis that installs but will not factor is numerical trouble,
      // not staleness: surface it instead of silently going cold, so
      // the supervised path can retry deterministically.
      sol.status = LpStatus::kNumericalFailure;
      sol.note = "singular-refactorization";
      return sol;
    }
    if (installed) {
      // The basis may carry artificials basic at zero: a presolve-
      // recovered basis re-enters removed equality rows that way, and
      // drive-out leaves one on each truly redundant row.  Cap them so
      // the boxed dual sees any artificial mass as a zero-bound
      // violation to repair, never as free flow.
      engine.cap_artificials();
      engine.recompute_xb();
      if (engine.dual_infeasibility() <= 1e-6) {
        RevisedSimplex::PhaseResult dres = {LpStatus::kOptimal, 0};
        if (engine.primal_infeasibility() > opt.feas_tol) {
          dres = engine.dual(opt.max_dual_iterations);
          sol.iterations += dres.iterations;
        }
        if (dres.status == LpStatus::kNumericalFailure ||
            dres.status == LpStatus::kDeadline) {
          sol.status = dres.status;
          sol.note = dres.note;
          return sol;
        }
        if (dres.status == LpStatus::kInfeasible) {
          sol.status = LpStatus::kInfeasible;
          return sol;
        }
        if (dres.status == LpStatus::kOptimal) {
          // Polish / confirm with phase-2 pivots (usually zero).
          const auto r2 = engine.primal(engine.phase2_cost(),
                                        /*artificial_cap=*/true);
          sol.iterations += r2.iterations;
          if (r2.status == LpStatus::kNumericalFailure ||
              r2.status == LpStatus::kDeadline) {
            sol.status = r2.status;
            sol.note = r2.note;
            return sol;
          }
          if (r2.status == LpStatus::kOptimal) {
            const std::size_t iters = sol.iterations;
            sol = engine.extract(problem);
            sol.iterations = iters;
            warm_done = true;
          }
        }
      }
    }
    if (warm_done) {
      engine.save_basis(basis_out);
      return sol;
    }
    // Fall through to a cold solve on any *semantic* warm-start trouble
    // (stale shape, dual infeasibility, pivot-budget trouble); the
    // primal phases need the implicit infinite artificial cap back.
    engine.uncap_artificials();
    sol = LpSolution{};
  }

  // --- crash-started path ------------------------------------------
  // A policy-iteration crash seed: the caller nominates one structural
  // column per original row (the occupation-measure columns of a greedy
  // deterministic policy; slacks complete the rest).  The nominated
  // (I - gamma P_pi)^T sub-basis is nonsingular for any policy and
  // gamma < 1, and its basic values are the policy's occupation measure
  // — nonnegative by construction — so the common outcome is a primal
  // feasible near-optimal vertex that phase 2 polishes in a fraction of
  // the cold pivot count.  A seed that leaves primal infeasibility
  // (greedy policy violating a metric row) is repaired by the boxed
  // dual when the basis prices dual feasible; anything less — singular
  // factorization, neither feasibility — falls back to the ordinary
  // cold start.
  if ((warm == nullptr || warm->empty()) && opt.crash_columns != nullptr) {
    // Fault injection: same site as a warm hand-off (the crash seed IS
    // a warm start the optimizer fabricated).  The supervised retry
    // re-reads the caller's pristine crash columns and reproduces the
    // fault-free trajectory exactly.
    if (robust::probe(robust::FaultSite::kWarmBasis)) {
      sol.status = LpStatus::kNumericalFailure;
      sol.note = "crash-basis-corrupted";
      return sol;
    }
    bool attempted = false;
    RevisedSimplex::PhaseResult pres = {LpStatus::kIterationLimit, 0,
                                        nullptr};
    if (engine.install_crash_basis(*opt.crash_columns) &&
        engine.refactorize()) {
      // A crash seed that will not factor is *expected* occasionally
      // (caller heuristics are allowed to be wrong) — unlike the warm
      // path this silently falls back cold instead of surfacing a
      // numerical failure.
      engine.cap_artificials();
      engine.recompute_xb();
      bool dual_ok = true;
      if (engine.primal_infeasibility() > opt.feas_tol) {
        dual_ok = engine.dual_infeasibility() <= 1e-6;
        if (dual_ok) {
          attempted = true;
          const auto dres = engine.dual(opt.max_dual_iterations);
          sol.iterations += dres.iterations;
          if (dres.status == LpStatus::kNumericalFailure ||
              dres.status == LpStatus::kDeadline) {
            sol.status = dres.status;
            sol.note = dres.note;
            return sol;
          }
          if (dres.status == LpStatus::kInfeasible) {
            sol.status = LpStatus::kInfeasible;
            return sol;
          }
          dual_ok = dres.status == LpStatus::kOptimal;
        }
      }
      if (dual_ok) {
        attempted = true;
        pres = engine.primal(engine.phase2_cost(), /*artificial_cap=*/true);
        sol.iterations += pres.iterations;
        if (pres.status == LpStatus::kNumericalFailure ||
            pres.status == LpStatus::kDeadline) {
          sol.status = pres.status;
          sol.note = pres.note;
          return sol;
        }
      }
    }
    if (attempted && pres.status == LpStatus::kOptimal) {
      const std::size_t iters = sol.iterations;
      sol = engine.extract(problem);
      sol.iterations = iters;
      if (opt.stats != nullptr) {
        opt.stats->crash_basis_used = true;
        opt.stats->crash_pivots_saved = engine.crash_survivors();
      }
      engine.save_basis(basis_out);
      return sol;
    }
    engine.uncap_artificials();
    sol = LpSolution{};
  }

  // --- cold path ----------------------------------------------------
  const bool need_phase1 = engine.install_cold_basis();
  if (!engine.refactorize()) {
    sol.status = LpStatus::kNumericalFailure;  // cold basis wouldn't factor
    sol.note = "singular-refactorization";
    return sol;
  }
  engine.recompute_xb();

  if (need_phase1 && engine.dual_cold_eligible()) {
    // Dual-cold start: the slack/artificial basis is dual feasible at
    // y = 0, so the boxed dual simplex (artificials capped at zero)
    // reaches feasibility *and* optimality in one run of pivots,
    // skipping primal phase 1 entirely.  Any other outcome — including
    // a dual infeasibility claim — falls back to the classic two-phase
    // path, which owns the status certificates.
    engine.cap_artificials();
    const auto rd = engine.dual(opt.max_iterations);
    sol.iterations += rd.iterations;
    if (rd.status == LpStatus::kNumericalFailure ||
        rd.status == LpStatus::kDeadline) {
      // Numerical trouble (or an expired deadline) must surface, not
      // silently reroute through the two-phase path with a different
      // pivot trajectory — the supervised retry reproduces this one.
      sol.status = rd.status;
      sol.note = rd.note;
      return sol;
    }
    if (rd.status == LpStatus::kOptimal) {
      engine.drive_out_artificials();
      const auto rp = engine.primal(engine.phase2_cost(),
                                    /*artificial_cap=*/true);
      sol.iterations += rp.iterations;
      if (rp.status == LpStatus::kNumericalFailure ||
          rp.status == LpStatus::kDeadline) {
        sol.status = rp.status;
        sol.note = rp.note;
        return sol;
      }
      if (rp.status == LpStatus::kOptimal) {
        const std::size_t iters = sol.iterations;
        sol = engine.extract(problem);
        sol.iterations = iters;
        engine.save_basis(basis_out);
        return sol;
      }
    }
    engine.uncap_artificials();
    engine.install_cold_basis();
    if (!engine.refactorize()) {
      sol.status = LpStatus::kNumericalFailure;
      sol.note = "singular-refactorization";
      return sol;
    }
    engine.recompute_xb();
  }

  if (need_phase1) {
    const auto r1 = engine.primal(engine.phase1_cost(),
                                  /*artificial_cap=*/false);
    sol.iterations += r1.iterations;
    if (r1.status != LpStatus::kOptimal) {
      sol.status = r1.status == LpStatus::kUnbounded ? LpStatus::kIterationLimit
                                                     : r1.status;
      sol.note = r1.note;
      return sol;
    }
    if (engine.phase1_objective() > opt.feas_tol) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    engine.drive_out_artificials();
  }

  const auto r2 = engine.primal(engine.phase2_cost(),
                                /*artificial_cap=*/true);
  sol.iterations += r2.iterations;
  sol.status = r2.status;
  sol.note = r2.note;
  if (r2.status != LpStatus::kOptimal) return sol;

  const std::size_t iters = sol.iterations;
  sol = engine.extract(problem);
  sol.iterations = iters;
  engine.save_basis(basis_out);
  return sol;
}

LpSolution solve_once(const LpProblem& problem,
                      const RevisedSimplexOptions& opt,
                      const SimplexBasis* warm, SimplexBasis* basis_out) {
  RevisedSimplex engine(problem, opt);
  const LpSolution sol = run_phases(engine, problem, opt, warm, basis_out);
  engine.flush_sweep_telemetry();
  return sol;
}

/// Final poison audit: an optimal result carrying non-finite numbers
/// (e.g. a corrupted sweep surviving into extract()'s dual btran, where
/// no pivot-loop guard runs) must never be reported as success.
void audit_finite(LpSolution& sol) {
  if (sol.status != LpStatus::kOptimal) return;
  bool ok = std::isfinite(sol.objective);
  for (const double v : sol.x) ok = ok && std::isfinite(v);
  for (const double v : sol.duals) ok = ok && std::isfinite(v);
  if (!ok) {
    sol.status = LpStatus::kNumericalFailure;
    sol.note = "nonfinite-values";
  }
}

// Process-wide pivot odometer (monotone, never reset): lets tests
// assert that a cached scenario replay executed *zero* simplex work,
// not merely that it produced the same numbers.
std::atomic<std::uint64_t> g_pivots_executed{0};

}  // namespace

std::uint64_t pivots_executed() noexcept {
  return g_pivots_executed.load(std::memory_order_relaxed);
}

SweepTelemetry sweep_telemetry() noexcept {
  SweepTelemetry t;
  t.sparse_sweeps = g_sparse_sweeps.load(std::memory_order_relaxed);
  t.dense_sweeps = g_dense_sweeps.load(std::memory_order_relaxed);
  t.touched_entries = g_touched_entries.load(std::memory_order_relaxed);
  t.block_sweeps = g_block_sweeps.load(std::memory_order_relaxed);
  t.block_entries = g_block_entries.load(std::memory_order_relaxed);
  return t;
}

LpSolution solve_revised_simplex(const LpProblem& problem,
                                 const RevisedSimplexOptions& options,
                                 const SimplexBasis* warm,
                                 SimplexBasis* basis_out) {
  if (problem.num_variables() == 0) {
    throw LpError("revised-simplex: problem has no variables");
  }
  const double t0 = now_ms();
  if (options.stats != nullptr) *options.stats = SimplexStats{};

  // --- structural presolve (cold solves only) ------------------------
  // Warm starts skip it: the caller's basis is laid out over the *full*
  // problem's standard form, and a short dual repair beats re-reducing.
  // Crash seeds skip it for the same reason — the nominated columns
  // index the full problem, and the seed already does presolve's job of
  // shortcutting the solve.
  if (options.presolve && (warm == nullptr || warm->empty()) &&
      options.crash_columns == nullptr) {
    Presolve ps;
    const PresolveStatus pst = ps.reduce(problem, options.feas_tol);
    if (pst != PresolveStatus::kUnchanged) {
      LpSolution out;
      if (pst == PresolveStatus::kInfeasible) {
        out.status = LpStatus::kInfeasible;
      } else if (pst == PresolveStatus::kUnbounded) {
        out.status = LpStatus::kUnbounded;
      } else if (pst == PresolveStatus::kEmpty) {
        out = ps.postsolve(LpSolution{}, nullptr, basis_out,
                           options.absorb_singleton_rows);
      } else {
        RevisedSimplexOptions inner = options;
        inner.presolve = false;  // the reduction is already a fixpoint
        SimplexBasis red_basis;
        const LpSolution red =
            solve_revised_simplex(ps.reduced(), inner, nullptr, &red_basis);
        out = ps.postsolve(red, &red_basis, basis_out,
                           options.absorb_singleton_rows);
      }
      if (options.stats != nullptr) {
        options.stats->presolve_rows_removed = ps.rows_removed();
        options.stats->presolve_cols_removed = ps.cols_removed();
        options.stats->solve_ms = now_ms() - t0;
        options.stats->iterations = out.iterations;
      }
      audit_finite(out);
      return out;
    }
  }

  LpSolution sol = solve_once(problem, options, warm, basis_out);
  audit_finite(sol);
  if (sol.status != LpStatus::kIterationLimit) {
    if (options.stats != nullptr) {
      options.stats->solve_ms = now_ms() - t0;
      options.stats->iterations = sol.iterations;
    }
    g_pivots_executed.fetch_add(sol.iterations, std::memory_order_relaxed);
    return sol;
  }

  // Degeneracy stall: retry cold on deterministically perturbed copies,
  // the same remedy (and helper) the dense tableau uses.
  for (const double eps : {1e-11, 1e-9, 1e-7}) {
    const LpProblem copy = perturbed_copy(problem, eps);
    LpSolution retry = solve_once(copy, options, nullptr, basis_out);
    audit_finite(retry);
    if (retry.status != LpStatus::kIterationLimit) {
      LpSolution out = retry;
      if (out.status == LpStatus::kOptimal) {
        out.objective = problem.objective(out.x);
      }
      out.iterations += sol.iterations;
      if (options.stats != nullptr) {
        options.stats->solve_ms = now_ms() - t0;
        options.stats->iterations = out.iterations;
      }
      g_pivots_executed.fetch_add(out.iterations, std::memory_order_relaxed);
      return out;
    }
  }
  if (options.stats != nullptr) {
    options.stats->solve_ms = now_ms() - t0;
    options.stats->iterations = sol.iterations;
  }
  g_pivots_executed.fetch_add(sol.iterations, std::memory_order_relaxed);
  return sol;
}

}  // namespace dpm::lp
